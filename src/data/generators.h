#ifndef RRR_DATA_GENERATORS_H_
#define RRR_DATA_GENERATORS_H_

#include <cstdint>

#include "data/dataset.h"

namespace rrr {
namespace data {

/// \name Distribution-shaped synthetic generators
///
/// Standard multi-criteria benchmark distributions (Borzsony et al. skyline
/// conventions). All values land in [0, 1] with higher-better semantics, so
/// the output feeds the RRR algorithms directly. Deterministic in `seed`.
///@{

/// Independent uniform attributes.
Dataset GenerateUniform(size_t n, size_t d, uint64_t seed);

/// Positively correlated attributes: a per-row level plus small noise.
/// Correlated data has tiny skylines/convex hulls; `rho` in (0, 1) controls
/// the correlation strength (1 = identical columns).
Dataset GenerateCorrelated(size_t n, size_t d, uint64_t seed,
                           double rho = 0.7);

/// Anticorrelated attributes: rows near the simplex sum(x) ~= const; the
/// adversarial case with huge skylines and many k-sets.
Dataset GenerateAnticorrelated(size_t n, size_t d, uint64_t seed);

/// Gaussian clusters with uniformly placed centers; mimics segmented
/// catalogs (e.g. budget/mid/premium products).
Dataset GenerateClustered(size_t n, size_t d, uint64_t seed,
                          size_t clusters = 5);
///@}

/// \name Paper-dataset substitutes (see DESIGN.md section 4)
///@{

/// \brief Synthetic stand-in for the US DOT on-time flight database
/// (Section 6.1): 8 attributes with the paper's schema.
///
/// Columns (raw semantics -> all normalized to higher-better [0, 1]):
///   dep_delay (lower), taxi_out (lower), actual_elapsed (lower),
///   arrival_delay (lower), air_time (higher), distance (higher),
///   taxi_in (lower), crs_elapsed (lower).
/// Delay columns are zero-inflated exponentials (most flights on time, a
/// heavy tail of long delays); air_time/distance/elapsed are strongly
/// positively correlated as in real schedules. The resulting score
/// congregation - many tuples in a narrow score band - is what makes
/// rank-regret diverge from score-regret, the paper's central motivation.
Dataset GenerateDotLike(size_t n, uint64_t seed);

/// \brief Synthetic stand-in for the Blue Nile diamond catalog
/// (Section 6.1): 5 attributes carat, depth, lwratio, table (higher-better)
/// and price (lower-better), normalized to higher-better [0, 1].
///
/// Price grows superlinearly in carat with heavy multiplicative noise,
/// reproducing the paper's anecdote that a 0.03 carat difference can move
/// the price by 30%.
Dataset GenerateBnLike(size_t n, uint64_t seed);
///@}

}  // namespace data
}  // namespace rrr

#endif  // RRR_DATA_GENERATORS_H_
