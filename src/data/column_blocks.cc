#include "data/column_blocks.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "common/parallel.h"

namespace rrr {
namespace data {

namespace {

constexpr size_t kBlockRows = ColumnBlocks::kBlockRows;

/// Transposes rows [row_begin, row_end) of `dataset` into physical lanes
/// [lane_begin, lane_begin + (row_end - row_begin)) of `cells`.
void TransposeInto(const Dataset& dataset, size_t row_begin, size_t row_end,
                   size_t lane_begin, size_t d, std::vector<double>* cells) {
  for (size_t r = row_begin; r < row_end; ++r) {
    const size_t lane = lane_begin + (r - row_begin);
    const size_t b = lane / kBlockRows;
    const size_t l = lane % kBlockRows;
    double* out = cells->data() + b * d * kBlockRows;
    const double* row = dataset.row(r);
    for (size_t j = 0; j < d; ++j) {
      out[j * kBlockRows + l] = row[j];
    }
  }
}

/// Computes the conservative column bounds of blocks [b_begin, b_end) from
/// the already-transposed cells: for each block, d maxima then d minima over
/// the non-padding lanes (dead lanes included — conservative by design). A
/// NaN anywhere in a column poisons that column's bounds to +/-inf so no
/// upper bound folded from them can justify a skip.
void ComputeBounds(const std::vector<double>& cells, size_t d,
                   size_t physical, size_t b_begin, size_t b_end,
                   std::vector<double>* bounds) {
  for (size_t b = b_begin; b < b_end; ++b) {
    const double* block = cells.data() + b * d * kBlockRows;
    const size_t rows = std::min(kBlockRows, physical - b * kBlockRows);
    double* bmax = bounds->data() + b * 2 * d;
    double* bmin = bmax + d;
    for (size_t j = 0; j < d; ++j) {
      const double* col = block + j * kBlockRows;
      double mx = -std::numeric_limits<double>::infinity();
      double mn = std::numeric_limits<double>::infinity();
      bool poisoned = false;
      for (size_t lane = 0; lane < rows; ++lane) {
        const double v = col[lane];
        if (v != v) {
          poisoned = true;
          break;
        }
        if (v > mx) mx = v;
        if (v < mn) mn = v;
      }
      if (poisoned) {
        mx = std::numeric_limits<double>::infinity();
        mn = -std::numeric_limits<double>::infinity();
      }
      bmax[j] = mx;
      bmin[j] = mn;
    }
  }
}

}  // namespace

Result<ColumnBlocks> ColumnBlocks::Build(const Dataset& dataset,
                                         size_t threads,
                                         const ExecContext& ctx) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  const size_t n = dataset.size();
  const size_t d = dataset.dims();
  if (n == 0) {
    return ColumnBlocks(&dataset, 0, 0, d, 0,
                        std::make_shared<const std::vector<double>>(),
                        nullptr, nullptr, nullptr);
  }
  const size_t num_blocks = (n + kBlockRows - 1) / kBlockRows;

  std::vector<double> cells(num_blocks * d * kBlockRows, 0.0);
  std::vector<double> bounds(num_blocks * 2 * d, 0.0);
  std::atomic<bool> preempted{false};
  ParallelForChunked(
      ResolveThreads(ctx.ThreadsOver(threads)), num_blocks, 8,
      [&](size_t begin, size_t end) {
        if (preempted.load(std::memory_order_relaxed)) return;
        if (!ctx.CheckPreempted().ok()) {
          preempted.store(true, std::memory_order_relaxed);
          return;
        }
        for (size_t b = begin; b < end; ++b) {
          double* out = cells.data() + b * d * kBlockRows;
          const size_t rows =
              b + 1 < num_blocks ? kBlockRows : n - b * kBlockRows;
          for (size_t lane = 0; lane < rows; ++lane) {
            const double* row = dataset.row(b * kBlockRows + lane);
            for (size_t j = 0; j < d; ++j) {
              out[j * kBlockRows + lane] = row[j];
            }
          }
        }
        // Bounds ride the transpose pass while the tiles are cache-hot.
        ComputeBounds(cells, d, n, begin, end, &bounds);
      });
  if (preempted.load()) {
    Status cause = ctx.CheckPreempted();
    if (cause.ok()) cause = Status::Cancelled("column mirror build preempted");
    return cause;
  }
  return ColumnBlocks(
      &dataset, n, n, d, num_blocks,
      std::make_shared<const std::vector<double>>(std::move(cells)), nullptr,
      nullptr,
      std::make_shared<const std::vector<double>>(std::move(bounds)));
}

Result<ColumnBlocks> ColumnBlocks::BuildAppended(const ColumnBlocks& base,
                                                 const Dataset& grown,
                                                 const ExecContext& ctx) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  if (grown.dims() != base.d_) {
    return Status::InvalidArgument(
        "BuildAppended: grown dataset dimension mismatches the base mirror");
  }
  if (grown.size() < base.live_) {
    return Status::InvalidArgument(
        "BuildAppended: grown dataset is smaller than the base mirror");
  }
  if (base.live_ == 0) return Build(grown, 1, ctx);
  const size_t d = base.d_;
  const size_t appended = grown.size() - base.live_;
#ifndef NDEBUG
  // The appended-tile contract: grown's first live_ rows ARE the base's
  // mirrored live rows. Spot-check the first and last of them.
  for (size_t probe : {size_t{0}, base.live_ - 1}) {
    const size_t lane = base.PhysicalOfLive(probe);
    const double* row = grown.row(probe);
    for (size_t j = 0; j < d; ++j) {
      RRR_DCHECK(base.column(lane / kBlockRows, j)[lane % kBlockRows] ==
                 row[j])
          << "BuildAppended: grown does not extend the base mirror";
    }
  }
#endif
  const size_t physical = base.physical_ + appended;
  const size_t num_blocks = (physical + kBlockRows - 1) / kBlockRows;

  std::vector<double> cells(num_blocks * d * kBlockRows, 0.0);
  std::memcpy(cells.data(), base.cell_base_,
              base.num_blocks_ * d * kBlockRows * sizeof(double));
  TransposeInto(grown, base.live_, grown.size(), base.physical_, d, &cells);
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());

  // Bounds: blocks the append never touches inherit the base's (possibly
  // stale, always conservative); the boundary block and fresh tail blocks
  // are recomputed from the now-final cells.
  std::vector<double> bounds(num_blocks * 2 * d, 0.0);
  const size_t boundary = base.physical_ / kBlockRows;
  const size_t copied = std::min(boundary, base.num_blocks_);
  if (base.bounds_base_ != nullptr) {
    std::memcpy(bounds.data(), base.bounds_base_,
                copied * 2 * d * sizeof(double));
    ComputeBounds(cells, d, physical, copied, num_blocks, &bounds);
  } else {
    ComputeBounds(cells, d, physical, 0, num_blocks, &bounds);
  }

  std::shared_ptr<const std::vector<uint64_t>> mask;
  std::shared_ptr<const std::vector<uint32_t>> prefix;
  if (base.mask_ != nullptr) {
    // Extend the base's validity bookkeeping: appended lanes are all live.
    std::vector<uint64_t> grown_mask(num_blocks, 0);
    std::copy(base.mask_->begin(), base.mask_->end(), grown_mask.begin());
    for (size_t lane = base.physical_; lane < physical; ++lane) {
      grown_mask[lane / kBlockRows] |= uint64_t{1} << (lane % kBlockRows);
    }
    std::vector<uint32_t> grown_prefix(num_blocks, 0);
    uint32_t live = 0;
    for (size_t b = 0; b < num_blocks; ++b) {
      grown_prefix[b] = live;
      live += static_cast<uint32_t>(__builtin_popcountll(grown_mask[b]));
    }
    mask = std::make_shared<const std::vector<uint64_t>>(
        std::move(grown_mask));
    prefix = std::make_shared<const std::vector<uint32_t>>(
        std::move(grown_prefix));
  }
  return ColumnBlocks(
      &grown, physical, grown.size(), d, num_blocks,
      std::make_shared<const std::vector<double>>(std::move(cells)),
      std::move(mask), std::move(prefix),
      std::make_shared<const std::vector<double>>(std::move(bounds)));
}

size_t ColumnBlocks::PhysicalOfLive(size_t live_index) const {
  RRR_DCHECK(live_index < live_) << "PhysicalOfLive: index out of range";
  if (mask_ == nullptr) return live_index;
  // Find the block by its live prefix, then select the (live_index -
  // prefix)-th set bit of its mask.
  size_t b = 0;
  for (; b + 1 < num_blocks_; ++b) {
    if ((*live_prefix_)[b + 1] > live_index) break;
  }
  uint64_t m = (*mask_)[b];
  size_t remaining = live_index - (*live_prefix_)[b];
  for (size_t lane = 0; lane < kBlockRows; ++lane) {
    if (!((m >> lane) & 1)) continue;
    if (remaining == 0) return b * kBlockRows + lane;
    --remaining;
  }
  RRR_CHECK(false) << "PhysicalOfLive: live prefix and mask disagree";
  return 0;
}

Result<ColumnBlocks> ColumnBlocks::WithoutRow(const Dataset* compacted_source,
                                              size_t live_index) const {
  if (compacted_source == nullptr) {
    return Status::InvalidArgument("WithoutRow: null compacted source");
  }
  if (live_ < 2) {
    return Status::InvalidArgument(
        "WithoutRow: cannot delete from a mirror with fewer than two rows");
  }
  if (live_index >= live_) {
    return Status::InvalidArgument("WithoutRow: row index out of range");
  }
  if (compacted_source->size() != live_ - 1 ||
      compacted_source->dims() != d_) {
    return Status::InvalidArgument(
        "WithoutRow: compacted source shape mismatch");
  }
  const size_t lane = PhysicalOfLive(live_index);

  std::vector<uint64_t> mask(num_blocks_, 0);
  if (mask_ != nullptr) {
    std::copy(mask_->begin(), mask_->end(), mask.begin());
  } else {
    for (size_t b = 0; b < num_blocks_; ++b) mask[b] = block_mask(b);
  }
  mask[lane / kBlockRows] &= ~(uint64_t{1} << (lane % kBlockRows));

  std::vector<uint32_t> prefix(num_blocks_, 0);
  uint32_t live = 0;
  for (size_t b = 0; b < num_blocks_; ++b) {
    prefix[b] = live;
    live += static_cast<uint32_t>(__builtin_popcountll(mask[b]));
  }
  RRR_DCHECK(live == live_ - 1) << "WithoutRow: mask bookkeeping broke";
  // Bounds are shared unchanged: the deleted lane's values may keep a bound
  // wider than the live lanes need, which is stale but still conservative.
  return ColumnBlocks(
      compacted_source, physical_, live_ - 1, d_, num_blocks_, cells_,
      std::make_shared<const std::vector<uint64_t>>(std::move(mask)),
      std::make_shared<const std::vector<uint32_t>>(std::move(prefix)),
      bounds_);
}

void ColumnBlocks::RebindSource(const Dataset* source) {
  RRR_CHECK(source != nullptr) << "RebindSource: null source";
  RRR_CHECK(source->size() == live_ && source->dims() == d_)
      << "RebindSource: source shape mismatches the mirror";
#ifndef NDEBUG
  if (live_ > 0) {
    for (size_t probe : {size_t{0}, live_ - 1}) {
      const size_t lane = PhysicalOfLive(probe);
      const double* row = source->row(probe);
      for (size_t j = 0; j < d_; ++j) {
        RRR_DCHECK(column(lane / kBlockRows, j)[lane % kBlockRows] == row[j])
            << "RebindSource: source values mismatch the mirror";
      }
    }
  }
#endif
  source_ = source;
}

}  // namespace data
}  // namespace rrr
