#include "data/column_blocks.h"

#include <atomic>

#include "common/parallel.h"

namespace rrr {
namespace data {

Result<ColumnBlocks> ColumnBlocks::Build(const Dataset& dataset,
                                         size_t threads,
                                         const ExecContext& ctx) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  const size_t n = dataset.size();
  const size_t d = dataset.dims();
  if (n == 0) return ColumnBlocks(&dataset, 0, d, 0, {});
  const size_t num_blocks = (n + kBlockRows - 1) / kBlockRows;

  std::vector<double> cells(num_blocks * d * kBlockRows, 0.0);
  std::atomic<bool> preempted{false};
  ParallelForChunked(
      ResolveThreads(ctx.ThreadsOver(threads)), num_blocks, 8,
      [&](size_t begin, size_t end) {
        if (preempted.load(std::memory_order_relaxed)) return;
        if (!ctx.CheckPreempted().ok()) {
          preempted.store(true, std::memory_order_relaxed);
          return;
        }
        for (size_t b = begin; b < end; ++b) {
          double* out = cells.data() + b * d * kBlockRows;
          const size_t rows =
              b + 1 < num_blocks ? kBlockRows : n - b * kBlockRows;
          for (size_t lane = 0; lane < rows; ++lane) {
            const double* row = dataset.row(b * kBlockRows + lane);
            for (size_t j = 0; j < d; ++j) {
              out[j * kBlockRows + lane] = row[j];
            }
          }
        }
      });
  if (preempted.load()) {
    Status cause = ctx.CheckPreempted();
    if (cause.ok()) cause = Status::Cancelled("column mirror build preempted");
    return cause;
  }
  return ColumnBlocks(&dataset, n, d, num_blocks, std::move(cells));
}

}  // namespace data
}  // namespace rrr
