#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace rrr {
namespace data {

Dataset::Dataset(std::vector<double> cells, size_t n, size_t d,
                 std::vector<std::string> names)
    : n_(n), d_(d), cells_(std::move(cells)), names_(std::move(names)) {
  if (names_.empty()) {
    names_.reserve(d_);
    for (size_t j = 0; j < d_; ++j) names_.push_back(StrFormat("a%zu", j));
  }
}

Result<Dataset> Dataset::FromFlat(std::vector<double> cells, size_t n,
                                  size_t d, std::vector<std::string> names) {
  if (d == 0 && n > 0) {
    return Status::InvalidArgument("rows require at least one column");
  }
  if (cells.size() != n * d) {
    return Status::InvalidArgument(
        StrFormat("flat buffer has %zu cells, expected %zu", cells.size(),
                  n * d));
  }
  if (!names.empty() && names.size() != d) {
    return Status::InvalidArgument("column name count != d");
  }
  return Dataset(std::move(cells), n, d, std::move(names));
}

Result<Dataset> Dataset::FromRows(const std::vector<std::vector<double>>& rows,
                                  std::vector<std::string> names) {
  if (rows.empty()) {
    return Dataset(std::vector<double>{}, 0, names.size(), std::move(names));
  }
  const size_t d = rows[0].size();
  std::vector<double> cells;
  cells.reserve(rows.size() * d);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != d) {
      return Status::InvalidArgument(
          StrFormat("row %zu has %zu columns, expected %zu", i,
                    rows[i].size(), d));
    }
    cells.insert(cells.end(), rows[i].begin(), rows[i].end());
  }
  return FromFlat(std::move(cells), rows.size(), d, std::move(names));
}

double Dataset::at(size_t i, size_t j) const {
  RRR_DCHECK(i < n_ && j < d_) << "Dataset::at out of range";
  return cells_[i * d_ + j];
}

Dataset Dataset::Head(size_t m) const {
  const size_t keep = std::min(m, n_);
  std::vector<double> cells(cells_.begin(),
                            cells_.begin() + static_cast<long>(keep * d_));
  return Dataset(std::move(cells), keep, d_, names_);
}

Dataset Dataset::Sample(size_t m, Rng* rng) const {
  RRR_CHECK(rng != nullptr) << "Sample: null rng";
  const size_t keep = std::min(m, n_);
  std::vector<int32_t> idx(n_);
  std::iota(idx.begin(), idx.end(), 0);
  rng->Shuffle(&idx);
  idx.resize(keep);
  std::sort(idx.begin(), idx.end());  // preserve original relative order
  std::vector<double> cells;
  cells.reserve(keep * d_);
  for (int32_t i : idx) {
    const double* r = row(static_cast<size_t>(i));
    cells.insert(cells.end(), r, r + d_);
  }
  return Dataset(std::move(cells), keep, d_, names_);
}

Dataset Dataset::ProjectPrefix(size_t dims) const {
  const size_t keep = std::min(dims, d_);
  std::vector<int32_t> cols(keep);
  std::iota(cols.begin(), cols.end(), 0);
  Result<Dataset> projected = Project(cols);
  RRR_CHECK(projected.ok()) << projected.status().ToString();
  return std::move(projected).value();
}

bool Dataset::AllFinite() const {
  for (double v : cells_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

Status Dataset::CheckFinite() const {
  for (size_t idx = 0; idx < cells_.size(); ++idx) {
    if (!std::isfinite(cells_[idx])) {
      const size_t i = idx / d_;
      const size_t j = idx % d_;
      return Status::InvalidArgument(StrFormat(
          "non-finite value %g at row %zu, column '%s'; NaN/inf scores make "
          "comparator ordering undefined — clean the data first",
          cells_[idx], i, names_[j].c_str()));
    }
  }
  return Status::OK();
}

Result<Dataset> Dataset::Project(const std::vector<int32_t>& columns) const {
  for (int32_t c : columns) {
    if (c < 0 || static_cast<size_t>(c) >= d_) {
      return Status::OutOfRange(StrFormat("column %d out of range", c));
    }
  }
  std::vector<double> cells;
  cells.reserve(n_ * columns.size());
  std::vector<std::string> names;
  names.reserve(columns.size());
  for (int32_t c : columns) names.push_back(names_[static_cast<size_t>(c)]);
  for (size_t i = 0; i < n_; ++i) {
    const double* r = row(i);
    for (int32_t c : columns) cells.push_back(r[c]);
  }
  return Dataset(std::move(cells), n_, columns.size(), std::move(names));
}

}  // namespace data
}  // namespace rrr
