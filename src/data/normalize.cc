#include "data/normalize.h"

#include <algorithm>
#include <limits>

#include "common/string_util.h"

namespace rrr {
namespace data {

Result<Dataset> MinMaxNormalize(const Dataset& input,
                                const std::vector<Direction>& directions,
                                const NormalizeOptions& options) {
  if (directions.size() != input.dims()) {
    return Status::InvalidArgument(
        StrFormat("got %zu directions for %zu columns", directions.size(),
                  input.dims()));
  }
  RRR_RETURN_IF_ERROR(input.CheckFinite());
  const size_t n = input.size();
  const size_t d = input.dims();
  std::vector<double> lo(d, std::numeric_limits<double>::infinity());
  std::vector<double> hi(d, -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < n; ++i) {
    const double* r = input.row(i);
    for (size_t j = 0; j < d; ++j) {
      lo[j] = std::min(lo[j], r[j]);
      hi[j] = std::max(hi[j], r[j]);
    }
  }
  if (n > 0 &&
      options.constant_columns == ConstantColumnPolicy::kReject) {
    for (size_t j = 0; j < d; ++j) {
      if (hi[j] - lo[j] <= 0.0) {
        return Status::InvalidArgument(StrFormat(
            "column '%s' has zero range (constant value %g); it carries no "
            "ranking information — drop it, or normalize with "
            "ConstantColumnPolicy::kMapToHalf",
            input.column_names()[j].c_str(), lo[j]));
      }
    }
  }
  std::vector<double> cells;
  cells.reserve(n * d);
  for (size_t i = 0; i < n; ++i) {
    const double* r = input.row(i);
    for (size_t j = 0; j < d; ++j) {
      const double range = hi[j] - lo[j];
      double v;
      if (range <= 0.0) {
        v = 0.5;
      } else if (directions[j] == Direction::kHigherBetter) {
        v = (r[j] - lo[j]) / range;
      } else {
        v = (hi[j] - r[j]) / range;
      }
      cells.push_back(v);
    }
  }
  return Dataset::FromFlat(std::move(cells), n, d, input.column_names());
}

Result<Dataset> MinMaxNormalize(const Dataset& input,
                                const NormalizeOptions& options) {
  return MinMaxNormalize(
      input, std::vector<Direction>(input.dims(), Direction::kHigherBetter),
      options);
}

}  // namespace data
}  // namespace rrr
