#ifndef RRR_DATA_DATASET_H_
#define RRR_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace rrr {
namespace data {

/// \brief In-memory table of n tuples over d numeric attributes,
/// row-major contiguous storage.
///
/// This is the "database D" of the paper (Section 2): d scalar attributes
/// that participate in linear preference functions. Algorithms assume values
/// are already normalized so that *higher is better on every column* (use
/// MinMaxNormalize from normalize.h for raw data with mixed directions).
class Dataset {
 public:
  /// Empty dataset with zero columns.
  Dataset() = default;

  /// Dataset from a flat row-major buffer; cells.size() must be n*d.
  static Result<Dataset> FromFlat(std::vector<double> cells, size_t n,
                                  size_t d,
                                  std::vector<std::string> names = {});

  /// Dataset from a row-of-rows representation; rows must be rectangular.
  static Result<Dataset> FromRows(
      const std::vector<std::vector<double>>& rows,
      std::vector<std::string> names = {});

  size_t size() const { return n_; }
  size_t dims() const { return d_; }
  bool empty() const { return n_ == 0; }

  /// Pointer to row i (d contiguous doubles).
  const double* row(size_t i) const { return cells_.data() + i * d_; }

  /// Cell accessor with bounds enforced in debug builds.
  double at(size_t i, size_t j) const;

  /// Flat row-major buffer (n*d doubles).
  const double* flat() const { return cells_.data(); }

  /// Column names; defaults to "a0".."a{d-1}" when not supplied.
  const std::vector<std::string>& column_names() const { return names_; }

  /// First min(m, size()) rows (used by dataset-size sweeps so that a
  /// smaller run is always a prefix of a larger one).
  Dataset Head(size_t m) const;

  /// Uniform sample without replacement of min(m, size()) rows.
  Dataset Sample(size_t m, Rng* rng) const;

  /// New dataset keeping only the first `dims` columns (used by
  /// dimensionality sweeps).
  Dataset ProjectPrefix(size_t dims) const;

  /// New dataset with the selected columns, in the given order.
  Result<Dataset> Project(const std::vector<int32_t>& columns) const;

  /// True iff every cell is finite (no NaN/inf). The solvers require finite
  /// input; NaN scores would silently corrupt every comparison.
  bool AllFinite() const;

  /// OK when every cell is finite; otherwise InvalidArgument naming the
  /// first offending row/column. Use this at validation boundaries (CSV
  /// ingest, normalization) where the caller needs to know *where* the NaN
  /// or infinity came from; AllFinite() is the cheap boolean form.
  Status CheckFinite() const;

 private:
  Dataset(std::vector<double> cells, size_t n, size_t d,
          std::vector<std::string> names);

  size_t n_ = 0;
  size_t d_ = 0;
  std::vector<double> cells_;
  std::vector<std::string> names_;
};

}  // namespace data
}  // namespace rrr

#endif  // RRR_DATA_DATASET_H_
