#ifndef RRR_DATA_CSV_H_
#define RRR_DATA_CSV_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace rrr {
namespace data {

/// Options for ReadCsv.
struct CsvOptions {
  /// Field separator.
  char separator = ',';
  /// When true the first line provides column names.
  bool has_header = true;
  /// When true, rows with any non-numeric or empty field are silently
  /// dropped (mirrors the paper's "after removing the records with missing
  /// values"); when false such rows are an error.
  bool skip_bad_rows = false;
};

/// \brief Loads a numeric CSV file into a Dataset.
///
/// Every retained field must parse as a double. This is how real DOT/BN
/// extracts are plugged into the benchmarks in place of the bundled
/// synthetic generators.
Result<Dataset> ReadCsv(const std::string& path,
                        const CsvOptions& options = CsvOptions());

/// Writes `dataset` as CSV (header + rows, '.17g' floats, '\n' endings).
Status WriteCsv(const std::string& path, const Dataset& dataset,
                const CsvOptions& options = CsvOptions());

}  // namespace data
}  // namespace rrr

#endif  // RRR_DATA_CSV_H_
