#ifndef RRR_DATA_NORMALIZE_H_
#define RRR_DATA_NORMALIZE_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace rrr {
namespace data {

/// Preference direction of a raw attribute.
enum class Direction {
  kHigherBetter,
  kLowerBetter,
};

/// \brief Min-max normalizes every column into [0, 1] so that 1 is always
/// the preferred end (Section 6.1 of the paper):
///   higher-better:  (v - min) / (max - min)
///   lower-better:   (max - v) / (max - min)
///
/// Constant columns (max == min) carry no ranking information and map to
/// 0.5. `directions` must have one entry per column.
Result<Dataset> MinMaxNormalize(const Dataset& input,
                                const std::vector<Direction>& directions);

/// Convenience overload: all columns higher-better.
Result<Dataset> MinMaxNormalize(const Dataset& input);

}  // namespace data
}  // namespace rrr

#endif  // RRR_DATA_NORMALIZE_H_
