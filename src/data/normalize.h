#ifndef RRR_DATA_NORMALIZE_H_
#define RRR_DATA_NORMALIZE_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace rrr {
namespace data {

/// Preference direction of a raw attribute.
enum class Direction {
  kHigherBetter,
  kLowerBetter,
};

/// What MinMaxNormalize does with a zero-range (constant) column.
enum class ConstantColumnPolicy {
  /// Fail with InvalidArgument naming the column. A constant column carries
  /// no ranking information, and silently keeping it degrades every solver
  /// (it inflates d, and its weight never changes any comparison) — the
  /// safe default is to make the caller drop or fix the column.
  kReject,
  /// Map the column to 0.5 (the historical behavior; useful when the
  /// column set is fixed by an external schema).
  kMapToHalf,
};

/// Options for MinMaxNormalize.
struct NormalizeOptions {
  ConstantColumnPolicy constant_columns = ConstantColumnPolicy::kReject;
};

/// \brief Min-max normalizes every column into [0, 1] so that 1 is always
/// the preferred end (Section 6.1 of the paper):
///   higher-better:  (v - min) / (max - min)
///   lower-better:   (max - v) / (max - min)
///
/// `directions` must have one entry per column.
///
/// Degenerate inputs are rejected with InvalidArgument instead of being
/// propagated into scores (where NaN makes every comparator's ordering
/// undefined and the 2D sweep can cycle): any NaN or infinite cell fails,
/// and constant (zero-range) columns fail under the default policy — pass
/// ConstantColumnPolicy::kMapToHalf to keep them at 0.5 instead.
Result<Dataset> MinMaxNormalize(const Dataset& input,
                                const std::vector<Direction>& directions,
                                const NormalizeOptions& options = {});

/// Convenience overload: all columns higher-better.
Result<Dataset> MinMaxNormalize(const Dataset& input,
                                const NormalizeOptions& options = {});

}  // namespace data
}  // namespace rrr

#endif  // RRR_DATA_NORMALIZE_H_
