#include "data/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace rrr {
namespace data {

namespace {

/// Splits one CSV record into fields, honoring RFC-4180 quoting: a field
/// wrapped in double quotes may contain the separator, and a doubled quote
/// inside a quoted field is a literal quote. Returns InvalidArgument for a
/// quote that is never closed (the caller attaches the line number).
Result<std::vector<std::string>> SplitCsvRecord(std::string_view line,
                                                char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');  // escaped quote
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      // Opening quote (only honored at field start, like common parsers).
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  fields.push_back(std::move(current));
  return fields;
}

/// True when `field` must be quoted on output to survive a round trip.
/// (Line breaks are rejected by WriteCsv before this is consulted — the
/// line-based reader cannot parse a field spanning physical lines.)
bool NeedsQuoting(std::string_view field, char sep) {
  return field.find(sep) != std::string_view::npos ||
         field.find('"') != std::string_view::npos;
}

std::string QuoteField(std::string_view field) {
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Result<Dataset> ReadCsv(const std::string& path, const CsvOptions& options) {
  RRR_FAILPOINT("data.csv.read");
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  // File size for the cell-buffer reserve heuristic below. Non-seekable
  // inputs (FIFOs, character devices) fail the probe: clear the stream
  // state so parsing proceeds normally, just without a size estimate.
  in.seekg(0, std::ios::end);
  const std::streamoff file_bytes = in.tellg();
  if (in.good() && file_bytes > 0) {
    in.seekg(0, std::ios::beg);
  } else {
    in.clear();
  }
  std::string line;
  std::vector<std::string> names;
  size_t d = 0;
  bool first = true;
  std::vector<double> cells;
  std::vector<double> row;  // hoisted: one buffer for every record
  size_t n = 0;
  size_t line_no = 0;
  // std::getline yields the final record whether or not the file ends with
  // a newline; a trailing CRLF '\r' is stripped below before splitting so a
  // Windows file never corrupts its last field.
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view record = line;
    if (!record.empty() && record.back() == '\r') record.remove_suffix(1);
    if (Trim(record).empty()) continue;
    Result<std::vector<std::string>> split =
        SplitCsvRecord(record, options.separator);
    if (!split.ok()) {
      if (options.skip_bad_rows) continue;
      return Status::InvalidArgument(
          StrFormat("line %zu: %s", line_no,
                    split.status().message().c_str()));
    }
    std::vector<std::string>& fields = *split;
    if (first) {
      first = false;
      if (options.has_header) {
        for (auto& f : fields) names.emplace_back(Trim(f));
        d = names.size();
        continue;
      }
      d = fields.size();
    }
    if (fields.size() != d) {
      if (options.skip_bad_rows) continue;
      return Status::InvalidArgument(
          StrFormat("line %zu: %zu fields, expected %zu", line_no,
                    fields.size(), d));
    }
    if (cells.capacity() == 0 && d > 0 && file_bytes > 0) {
      // Size the flat buffer once, from the first data record: estimated
      // rows = file size / this record's byte length (+1 for the
      // newline). Large ingests then grow the buffer zero or a few times
      // instead of O(log n) reallocation-and-copy cycles. The estimate
      // only reserves (never resizes), and is doubly capped so an
      // atypically short first record cannot turn a long file into a
      // multi-GB speculative allocation: by the content bound (a cell
      // costs at least 2 file bytes — one character plus its separator)
      // and by an absolute 1 << 25 cells (256 MiB of doubles), past which
      // geometric growth is amortized anyway.
      const size_t approx_row_bytes = record.size() + 1;
      const size_t approx_rows =
          static_cast<size_t>(file_bytes) / std::max<size_t>(1,
                                                             approx_row_bytes);
      const size_t cap_cells = std::min<size_t>(
          size_t{1} << 25, static_cast<size_t>(file_bytes) / 2);
      const size_t approx_cells = approx_rows >= cap_cells / d
                                      ? cap_cells
                                      : (approx_rows + 1) * d;
      cells.reserve(std::min(approx_cells, cap_cells));
    }
    row.clear();
    row.reserve(d);
    bool bad = false;
    for (const auto& f : fields) {
      Result<double> v = ParseDouble(f);
      if (!v.ok()) {
        bad = true;
        if (!options.skip_bad_rows) {
          return Status::InvalidArgument(
              StrFormat("line %zu: %s", line_no,
                        v.status().message().c_str()));
        }
        break;
      }
      row.push_back(*v);
    }
    if (bad) continue;
    cells.insert(cells.end(), row.begin(), row.end());
    ++n;
  }
  return Dataset::FromFlat(std::move(cells), n, d, std::move(names));
}

Status WriteCsv(const std::string& path, const Dataset& dataset,
                const CsvOptions& options) {
  RRR_FAILPOINT("data.csv.write");
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const char sep = options.separator;
  if (options.has_header) {
    std::vector<std::string> header;
    header.reserve(dataset.column_names().size());
    for (const std::string& name : dataset.column_names()) {
      if (name.find('\n') != std::string::npos ||
          name.find('\r') != std::string::npos) {
        // The line-based reader cannot parse a quoted field spanning
        // physical lines, so such a file would not round-trip: refuse to
        // write it rather than emit something ReadCsv rejects.
        return Status::InvalidArgument(
            "column name contains a line break; rename the column before "
            "writing CSV");
      }
      header.push_back(NeedsQuoting(name, sep) ? QuoteField(name) : name);
    }
    out << Join(header, std::string(1, sep)) << '\n';
  }
  std::ostringstream line;
  for (size_t i = 0; i < dataset.size(); ++i) {
    line.str("");
    const double* r = dataset.row(i);
    for (size_t j = 0; j < dataset.dims(); ++j) {
      if (j > 0) line << sep;
      line << StrFormat("%.17g", r[j]);
    }
    out << line.str() << '\n';
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace data
}  // namespace rrr
