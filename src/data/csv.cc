#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace rrr {
namespace data {

Result<Dataset> ReadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  std::vector<std::string> names;
  size_t d = 0;
  bool first = true;
  std::vector<double> cells;
  size_t n = 0;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::vector<std::string> fields = Split(std::string(trimmed),
                                            options.separator);
    if (first) {
      first = false;
      if (options.has_header) {
        for (auto& f : fields) names.emplace_back(Trim(f));
        d = names.size();
        continue;
      }
      d = fields.size();
    }
    if (fields.size() != d) {
      if (options.skip_bad_rows) continue;
      return Status::InvalidArgument(
          StrFormat("line %zu: %zu fields, expected %zu", line_no,
                    fields.size(), d));
    }
    std::vector<double> row;
    row.reserve(d);
    bool bad = false;
    for (const auto& f : fields) {
      Result<double> v = ParseDouble(f);
      if (!v.ok()) {
        bad = true;
        if (!options.skip_bad_rows) {
          return Status::InvalidArgument(
              StrFormat("line %zu: %s", line_no,
                        v.status().message().c_str()));
        }
        break;
      }
      row.push_back(*v);
    }
    if (bad) continue;
    cells.insert(cells.end(), row.begin(), row.end());
    ++n;
  }
  return Dataset::FromFlat(std::move(cells), n, d, std::move(names));
}

Status WriteCsv(const std::string& path, const Dataset& dataset,
                const CsvOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const char sep = options.separator;
  if (options.has_header) {
    out << Join(dataset.column_names(), std::string(1, sep)) << '\n';
  }
  std::ostringstream line;
  for (size_t i = 0; i < dataset.size(); ++i) {
    line.str("");
    const double* r = dataset.row(i);
    for (size_t j = 0; j < dataset.dims(); ++j) {
      if (j > 0) line << sep;
      line << StrFormat("%.17g", r[j]);
    }
    out << line.str() << '\n';
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace data
}  // namespace rrr
