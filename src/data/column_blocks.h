#ifndef RRR_DATA_COLUMN_BLOCKS_H_
#define RRR_DATA_COLUMN_BLOCKS_H_

#include <cstddef>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "data/dataset.h"

namespace rrr {
namespace data {

/// \brief Immutable column-major mirror of a Dataset, tiled in blocks of
/// kBlockRows rows — the data layout behind topk/score_kernel.h.
///
/// The row-major Dataset is the canonical storage (algorithms that walk one
/// tuple's attributes stay on it); ColumnBlocks is a derived, read-only view
/// optimized for the opposite access pattern: evaluating one linear function
/// over *many* tuples. Each block holds dims() columns of kBlockRows
/// contiguous doubles, so a scoring kernel can vectorize across rows while
/// accumulating each row's d terms in exactly the attribute order of the
/// scalar loop — the layout is what makes the kernel's bit-identity
/// contract cheap to keep.
///
/// The final block is zero-padded up to kBlockRows rows; consumers must use
/// block_rows() to ignore the padding lanes (their scores are computed and
/// discarded, never surfaced).
///
/// Build cost is one O(n d) transpose pass (parallel over blocks,
/// ExecContext-cancellable); PreparedDataset builds the mirror lazily and
/// shares it across every query. The source Dataset must outlive the mirror
/// (block data is copied, but consumers identity-check source()).
class ColumnBlocks {
 public:
  /// Rows per block. 64 keeps a block's column (512 bytes) a small whole
  /// number of cache lines and a d <= 16 block inside L1.
  static constexpr size_t kBlockRows = 64;

  /// Builds the mirror. `threads` follows the library convention
  /// (0 = hardware concurrency, 1 = serial; the mirror is identical for
  /// every thread count); `ctx` can preempt the transpose with
  /// Cancelled/DeadlineExceeded.
  static Result<ColumnBlocks> Build(const Dataset& dataset,
                                    size_t threads = 0,
                                    const ExecContext& ctx = {});

  ColumnBlocks() = default;

  /// Mirrored (unpadded) row count — equals source()->size().
  size_t rows() const { return n_; }
  size_t dims() const { return d_; }
  bool empty() const { return n_ == 0; }

  /// Number of kBlockRows-row tiles (ceil(rows / kBlockRows)).
  size_t num_blocks() const { return num_blocks_; }

  /// Valid rows in block `b`: kBlockRows except possibly for the last
  /// block. Lanes >= block_rows(b) are zero padding.
  size_t block_rows(size_t b) const {
    return b + 1 < num_blocks_ ? kBlockRows : n_ - b * kBlockRows;
  }

  /// The dims() * kBlockRows doubles of block `b`; column j starts at
  /// offset j * kBlockRows.
  const double* block(size_t b) const {
    return cells_.data() + b * d_ * kBlockRows;
  }

  /// Column j of block b (kBlockRows contiguous doubles, padded).
  const double* column(size_t b, size_t j) const {
    return block(b) + j * kBlockRows;
  }

  /// The dataset this mirror was built from (identity-checked by
  /// consumers that take both).
  const Dataset* source() const { return source_; }

 private:
  ColumnBlocks(const Dataset* source, size_t n, size_t d, size_t num_blocks,
               std::vector<double> cells)
      : source_(source),
        n_(n),
        d_(d),
        num_blocks_(num_blocks),
        cells_(std::move(cells)) {}

  const Dataset* source_ = nullptr;
  size_t n_ = 0;
  size_t d_ = 0;
  size_t num_blocks_ = 0;
  std::vector<double> cells_;  // num_blocks_ * d_ * kBlockRows, zero padded
};

}  // namespace data
}  // namespace rrr

#endif  // RRR_DATA_COLUMN_BLOCKS_H_
