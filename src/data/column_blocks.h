#ifndef RRR_DATA_COLUMN_BLOCKS_H_
#define RRR_DATA_COLUMN_BLOCKS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "data/dataset.h"

namespace rrr {
namespace data {

/// \brief Immutable column-major mirror of a Dataset, tiled in blocks of
/// kBlockRows rows — the data layout behind topk/score_kernel.h.
///
/// The row-major Dataset is the canonical storage (algorithms that walk one
/// tuple's attributes stay on it); ColumnBlocks is a derived, read-only view
/// optimized for the opposite access pattern: evaluating one linear function
/// over *many* tuples. Each block holds dims() columns of kBlockRows
/// contiguous doubles, so a scoring kernel can vectorize across rows while
/// accumulating each row's d terms in exactly the attribute order of the
/// scalar loop — the layout is what makes the kernel's bit-identity
/// contract cheap to keep.
///
/// The final block is zero-padded up to kBlockRows rows; consumers must use
/// block_rows() to ignore the padding lanes (their scores are computed and
/// discarded, never surfaced).
///
/// \par Derived mirrors for versioned datasets
/// Two construction paths let the dynamic-update layer (core/
/// dataset_updates.h) maintain a version's mirror incrementally instead of
/// re-transposing n rows per update:
///  - BuildAppended reuses the base mirror's tiles wholesale and transposes
///    only the appended rows (new rows fill the last partial tile, then
///    open fresh ones);
///  - WithoutRow shares the base mirror's tile storage outright and marks
///    the deleted row's lane dead in a per-block validity mask.
/// A masked mirror's lanes therefore carry *physical* positions that no
/// longer equal source() row ids; the kernel entry points
/// (ScoreAll/TopKScan/MaxScore/CountOutranking) honor the mask — dead lanes
/// are scored and discarded exactly like padding, and live lanes map to ids
/// through the compacted order — so a masked mirror is bit-identical in
/// every kernel result to a fresh dense mirror of the same source dataset.
/// Code that walks blocks directly must consult block_mask()/live_before()
/// instead of assuming lane == id (dense mirrors keep that equality).
///
/// Build cost is one O(n d) transpose pass (parallel over blocks,
/// ExecContext-cancellable); PreparedDataset builds the mirror lazily and
/// shares it across every query. The source Dataset must outlive the mirror
/// (block data is copied or shared, but consumers identity-check source()).
class ColumnBlocks {
 public:
  /// Rows per block. 64 keeps a block's column (512 bytes) a small whole
  /// number of cache lines and a d <= 16 block inside L1.
  static constexpr size_t kBlockRows = 64;

  /// Builds a dense mirror. `threads` follows the library convention
  /// (0 = hardware concurrency, 1 = serial; the mirror is identical for
  /// every thread count); `ctx` can preempt the transpose with
  /// Cancelled/DeadlineExceeded.
  static Result<ColumnBlocks> Build(const Dataset& dataset,
                                    size_t threads = 0,
                                    const ExecContext& ctx = {});

  /// \brief Appendable-tile path: mirrors `grown` by reusing every tile of
  /// `base` (whose mirrored rows must be exactly the first base.rows() rows
  /// of `grown`, value-identical) and transposing only the appended tail.
  ///
  /// Cost is O(copy of base tiles + appended * d) instead of O(n d)
  /// transpose work; the result is bit-identical to Build(grown). Works on
  /// masked bases too — appended rows occupy fresh physical lanes after the
  /// base's, which is exactly their compacted position since appends take
  /// the largest ids. Fails with InvalidArgument on shape mismatch.
  static Result<ColumnBlocks> BuildAppended(const ColumnBlocks& base,
                                            const Dataset& grown,
                                            const ExecContext& ctx = {});

  ColumnBlocks() = default;

  /// Mirrored live (source-visible) row count — equals source()->size().
  size_t rows() const { return live_; }
  size_t dims() const { return d_; }
  bool empty() const { return live_ == 0; }

  /// Number of kBlockRows-row tiles over the physical lanes.
  size_t num_blocks() const { return num_blocks_; }

  /// Physical lanes in block `b`: kBlockRows except possibly for the last
  /// block. Lanes >= block_rows(b) are zero padding; for a masked mirror
  /// some lanes below it are dead too — consult block_mask().
  size_t block_rows(size_t b) const {
    return b + 1 < num_blocks_ ? kBlockRows : physical_ - b * kBlockRows;
  }

  /// The dims() * kBlockRows doubles of block `b`; column j starts at
  /// offset j * kBlockRows.
  const double* block(size_t b) const {
    return cell_base_ + b * d_ * kBlockRows;
  }

  /// Column j of block b (kBlockRows contiguous doubles, padded).
  const double* column(size_t b, size_t j) const {
    return block(b) + j * kBlockRows;
  }

  /// True when per-block column bounds are available (every build path
  /// produces them for non-empty mirrors; only a default-constructed or
  /// empty mirror lacks them).
  bool has_block_bounds() const { return bounds_base_ != nullptr; }

  /// \brief Per-column maxima of block `b`: dims() doubles, block_max(b)[j]
  /// >= every value of column j in the block's non-padding lanes.
  ///
  /// Bounds are *conservative*, not tight: they cover dead (masked) lanes
  /// too, and derived mirrors inherit their base's bounds unchanged
  /// (WithoutRow) or widened (BuildAppended) — a stale bound is still a
  /// valid bound. A column containing NaN has its max poisoned to +inf and
  /// its min to -inf, so any upper bound folded from it can never claim a
  /// block is skippable. Consumers: topk/score_kernel.h's BlockUpperBound.
  const double* block_max(size_t b) const {
    return bounds_base_ + b * 2 * d_;
  }

  /// Per-column minima of block `b` (same conservativeness contract as
  /// block_max); the upper-bound fold uses the min for negative weights.
  const double* block_min(size_t b) const {
    return bounds_base_ + b * 2 * d_ + d_;
  }

  /// True when some physical lanes are dead (rows deleted after the mirror
  /// was built). Dense mirrors (every build path except WithoutRow) are
  /// unmasked and keep lane == source row id.
  bool masked() const { return mask_ != nullptr; }

  /// Live-lane bitmap of block `b` (bit l set iff lane l holds a live
  /// row). For dense mirrors this is every lane below block_rows(b).
  uint64_t block_mask(size_t b) const {
    if (mask_ != nullptr) return (*mask_)[b];
    const size_t rows = block_rows(b);
    return rows >= 64 ? ~uint64_t{0} : (uint64_t{1} << rows) - 1;
  }

  /// Live lanes strictly before block `b` — the source row id of block
  /// b's first live lane (ids are compacted over live lanes in physical
  /// order).
  size_t live_before(size_t b) const {
    return mask_ != nullptr ? (*live_prefix_)[b] : b * kBlockRows;
  }

  /// Dead fraction of the physical lanes (0 for dense mirrors) — the
  /// dynamic layer's compaction trigger: past a threshold, scans waste
  /// enough work on dead lanes that a dense rebuild pays for itself.
  double dead_fraction() const {
    return physical_ == 0
               ? 0.0
               : static_cast<double>(physical_ - live_) /
                     static_cast<double>(physical_);
  }

  /// \brief Masked-delete path: a mirror of `compacted_source` (this
  /// mirror's source minus the row at `live_index`) sharing this mirror's
  /// tile storage — O(num_blocks) mask bookkeeping, no cell copies.
  ///
  /// Every kernel result over the derived mirror is bit-identical to a
  /// fresh Build over `compacted_source`. Fails with InvalidArgument on
  /// shape mismatch (compacted_source must hold exactly rows() - 1 rows).
  Result<ColumnBlocks> WithoutRow(const Dataset* compacted_source,
                                  size_t live_index) const;

  /// \brief Rebinds source() to `source`, which must hold exactly the
  /// mirrored live rows, in order, value-identical (checked in debug
  /// builds).
  ///
  /// Needed by the versioned-update layer: a derived mirror is built
  /// against a staging Dataset whose final resting address — inside the
  /// new PreparedDataset — exists only after construction.
  void RebindSource(const Dataset* source);

  /// The dataset this mirror was built from (identity-checked by
  /// consumers that take both).
  const Dataset* source() const { return source_; }

  /// Approximate heap footprint of the mirror in bytes. Derived mirrors
  /// (WithoutRow) share their base's tile storage, so summing ApproxBytes
  /// over related mirrors over-counts — this is an eviction-budget signal
  /// (upper bound per mirror), not an allocation census.
  size_t ApproxBytes() const {
    size_t bytes = 0;
    if (cells_ != nullptr) bytes += cells_->size() * sizeof(double);
    if (mask_ != nullptr) bytes += mask_->size() * sizeof(uint64_t);
    if (live_prefix_ != nullptr) {
      bytes += live_prefix_->size() * sizeof(uint32_t);
    }
    if (bounds_ != nullptr) bytes += bounds_->size() * sizeof(double);
    return bytes;
  }

 private:
  ColumnBlocks(const Dataset* source, size_t physical, size_t live, size_t d,
               size_t num_blocks,
               std::shared_ptr<const std::vector<double>> cells,
               std::shared_ptr<const std::vector<uint64_t>> mask,
               std::shared_ptr<const std::vector<uint32_t>> live_prefix,
               std::shared_ptr<const std::vector<double>> bounds)
      : source_(source),
        physical_(physical),
        live_(live),
        d_(d),
        num_blocks_(num_blocks),
        cells_(std::move(cells)),
        cell_base_(cells_ == nullptr ? nullptr : cells_->data()),
        mask_(std::move(mask)),
        live_prefix_(std::move(live_prefix)),
        bounds_(std::move(bounds)),
        bounds_base_(bounds_ == nullptr ? nullptr : bounds_->data()) {}

  /// Physical lane (global, block-major) of the live row `live_index`.
  size_t PhysicalOfLive(size_t live_index) const;

  const Dataset* source_ = nullptr;
  size_t physical_ = 0;  // mirrored lanes, dead ones included
  size_t live_ = 0;      // live lanes == source()->size()
  size_t d_ = 0;
  size_t num_blocks_ = 0;
  /// num_blocks_ * d_ * kBlockRows doubles, zero padded; shared so derived
  /// mirrors (WithoutRow) cost no copies.
  std::shared_ptr<const std::vector<double>> cells_;
  const double* cell_base_ = nullptr;
  /// Per-block live bitmaps; null for dense mirrors.
  std::shared_ptr<const std::vector<uint64_t>> mask_;
  /// Per-block live-lane prefix sums; set iff mask_ is.
  std::shared_ptr<const std::vector<uint32_t>> live_prefix_;
  /// num_blocks_ * 2 * d_ doubles: per block, d_ column maxima then d_
  /// column minima (conservative — see block_max()); shared so WithoutRow
  /// mirrors inherit their base's bounds for free.
  std::shared_ptr<const std::vector<double>> bounds_;
  const double* bounds_base_ = nullptr;
};

}  // namespace data
}  // namespace rrr

#endif  // RRR_DATA_COLUMN_BLOCKS_H_
