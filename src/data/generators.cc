#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "data/normalize.h"

namespace rrr {
namespace data {

namespace {

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

Dataset FinishRaw(std::vector<double> cells, size_t n, size_t d,
                  std::vector<std::string> names,
                  const std::vector<Direction>& directions) {
  Result<Dataset> raw =
      Dataset::FromFlat(std::move(cells), n, d, std::move(names));
  RRR_CHECK(raw.ok()) << raw.status().ToString();
  // Tiny n can legitimately produce a constant column (e.g. n = 1), so the
  // generators keep the permissive map-to-0.5 policy.
  NormalizeOptions norm_options;
  norm_options.constant_columns = ConstantColumnPolicy::kMapToHalf;
  Result<Dataset> normalized = MinMaxNormalize(*raw, directions,
                                               norm_options);
  RRR_CHECK(normalized.ok()) << normalized.status().ToString();
  return std::move(normalized).value();
}

}  // namespace

Dataset GenerateUniform(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> cells(n * d);
  for (double& c : cells) c = rng.Uniform();
  Result<Dataset> ds = Dataset::FromFlat(std::move(cells), n, d);
  RRR_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

Dataset GenerateCorrelated(size_t n, size_t d, uint64_t seed, double rho) {
  RRR_CHECK(rho >= 0.0 && rho <= 1.0) << "rho out of [0,1]: " << rho;
  Rng rng(seed);
  std::vector<double> cells(n * d);
  const double noise = 1.0 - rho;
  for (size_t i = 0; i < n; ++i) {
    const double level = rng.Uniform();
    double* row = cells.data() + i * d;
    for (size_t j = 0; j < d; ++j) {
      row[j] = Clamp01(rho * level + noise * rng.Uniform());
    }
  }
  Result<Dataset> ds = Dataset::FromFlat(std::move(cells), n, d);
  RRR_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

Dataset GenerateAnticorrelated(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  // Rows are generated in place in the flat buffer (the two passes — draw,
  // then shift onto the simplex — reuse the row slice, no temporaries).
  std::vector<double> cells(n * d);
  for (size_t i = 0; i < n; ++i) {
    // Points concentrated near the plane sum(x) = d/2: good on some
    // attributes exactly when bad on others.
    const double target = 0.5 * static_cast<double>(d) +
                          rng.Gaussian(0.0, 0.05 * static_cast<double>(d));
    double* row = cells.data() + i * d;
    double sum = 0.0;
    for (size_t j = 0; j < d; ++j) {
      row[j] = rng.Uniform();
      sum += row[j];
    }
    const double shift = (target - sum) / static_cast<double>(d);
    for (size_t j = 0; j < d; ++j) row[j] = Clamp01(row[j] + shift);
  }
  Result<Dataset> ds = Dataset::FromFlat(std::move(cells), n, d);
  RRR_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

Dataset GenerateClustered(size_t n, size_t d, uint64_t seed, size_t clusters) {
  RRR_CHECK(clusters >= 1) << "clusters must be positive";
  Rng rng(seed);
  // Flat center table (clusters x d, row-major) — same draw order as the
  // old vector-of-vectors, without the per-center heap allocations.
  std::vector<double> centers(clusters * d);
  for (double& v : centers) v = rng.Uniform(0.15, 0.85);
  std::vector<double> cells(n * d);
  for (size_t i = 0; i < n; ++i) {
    const double* c = centers.data() +
                      static_cast<size_t>(rng.UniformInt(
                          0, static_cast<int64_t>(clusters) - 1)) *
                          d;
    double* row = cells.data() + i * d;
    for (size_t j = 0; j < d; ++j) {
      row[j] = Clamp01(c[j] + rng.Gaussian(0.0, 0.08));
    }
  }
  Result<Dataset> ds = Dataset::FromFlat(std::move(cells), n, d);
  RRR_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

Dataset GenerateDotLike(size_t n, uint64_t seed) {
  Rng rng(seed);
  constexpr size_t kDims = 8;
  std::vector<std::string> names = {
      "dep_delay", "taxi_out",  "actual_elapsed", "arrival_delay",
      "air_time",  "distance",  "taxi_in",        "crs_elapsed"};
  std::vector<Direction> directions = {
      Direction::kLowerBetter,  Direction::kLowerBetter,
      Direction::kLowerBetter,  Direction::kLowerBetter,
      Direction::kHigherBetter, Direction::kHigherBetter,
      Direction::kLowerBetter,  Direction::kLowerBetter};
  std::vector<double> cells;
  cells.reserve(n * kDims);
  for (size_t i = 0; i < n; ++i) {
    // Zero-inflated exponential departure delay (minutes): ~55% of flights
    // leave within 5 minutes of schedule, the rest follow a heavy tail.
    const double dep_delay =
        rng.Bernoulli(0.55) ? rng.Uniform(0.0, 5.0)
                            : std::min(rng.Exponential(1.0 / 28.0), 480.0);
    const double taxi_out = std::max(4.0, rng.Gaussian(17.0, 6.0));
    const double taxi_in = std::max(2.0, rng.Gaussian(7.0, 3.0));
    // Route length (miles), lognormal: many short hops, few long hauls.
    const double distance =
        std::clamp(rng.LogNormal(std::log(750.0), 0.65), 80.0, 5000.0);
    // Cruise ~460 mph plus fixed climb/descent overhead.
    const double air_time =
        std::max(20.0, distance / 7.7 + rng.Gaussian(18.0, 9.0));
    const double actual_elapsed =
        air_time + taxi_out + taxi_in + std::max(0.0, rng.Gaussian(12.0, 8.0));
    // Arrival delay correlates with departure delay minus slack recovered
    // in the air.
    const double arrival_delay =
        std::max(-35.0, dep_delay + rng.Gaussian(-4.0, 14.0));
    const double crs_elapsed =
        std::max(25.0, actual_elapsed - arrival_delay + dep_delay +
                           rng.Gaussian(0.0, 6.0));
    cells.push_back(dep_delay);
    cells.push_back(taxi_out);
    cells.push_back(actual_elapsed);
    cells.push_back(arrival_delay);
    cells.push_back(air_time);
    cells.push_back(distance);
    cells.push_back(taxi_in);
    cells.push_back(crs_elapsed);
  }
  return FinishRaw(std::move(cells), n, kDims, std::move(names), directions);
}

Dataset GenerateBnLike(size_t n, uint64_t seed) {
  Rng rng(seed);
  constexpr size_t kDims = 5;
  std::vector<std::string> names = {"carat", "depth", "lwratio", "table",
                                    "price"};
  std::vector<Direction> directions = {
      Direction::kHigherBetter, Direction::kHigherBetter,
      Direction::kHigherBetter, Direction::kHigherBetter,
      Direction::kLowerBetter};
  std::vector<double> cells;
  cells.reserve(n * kDims);
  for (size_t i = 0; i < n; ++i) {
    const double carat =
        std::clamp(rng.LogNormal(std::log(0.9), 0.55), 0.23, 20.97);
    const double depth = std::clamp(rng.Gaussian(61.8, 1.4), 50.0, 75.0);
    const double lwratio = std::clamp(rng.Gaussian(1.05, 0.12), 0.75, 2.75);
    const double table = std::clamp(rng.Gaussian(57.5, 2.2), 50.0, 70.0);
    // Price scales superlinearly with carat; the 0.3-sigma multiplicative
    // noise reproduces the paper's "0.50 vs 0.53 carat, +30% price" jumps.
    const double price =
        2500.0 * std::pow(carat, 2.2) * std::exp(rng.Gaussian(0.0, 0.30));
    cells.push_back(carat);
    cells.push_back(depth);
    cells.push_back(lwratio);
    cells.push_back(table);
    cells.push_back(price);
  }
  return FinishRaw(std::move(cells), n, kDims, std::move(names), directions);
}

}  // namespace data
}  // namespace rrr
