#include "geometry/dominance.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace rrr {
namespace geometry {

bool Dominates(const double* a, const double* b, size_t d) {
  bool strict = false;
  for (size_t j = 0; j < d; ++j) {
    if (a[j] < b[j]) return false;
    if (a[j] > b[j]) strict = true;
  }
  return strict;
}

namespace {

std::vector<int32_t> Skyline2D(const double* rows, size_t n) {
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Sort by x descending; ties by y descending so the first of an x-tie
  // group is the only survivor candidate.
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    const double ax = rows[2 * a], bx = rows[2 * b];
    if (ax != bx) return ax > bx;
    const double ay = rows[2 * a + 1], by = rows[2 * b + 1];
    if (ay != by) return ay > by;
    return a < b;
  });
  std::vector<int32_t> sky;
  double best_y = -std::numeric_limits<double>::infinity();
  for (int32_t idx : order) {
    const double y = rows[2 * idx + 1];
    // A point survives iff its y strictly beats every point with >= x seen
    // so far; exact duplicates keep only the lowest index (sort order).
    if (y > best_y) {
      sky.push_back(idx);
      best_y = y;
    }
  }
  std::sort(sky.begin(), sky.end());
  return sky;
}

}  // namespace

std::vector<int32_t> KSkyband(const double* rows, size_t n, size_t d,
                              size_t k) {
  RRR_CHECK(rows != nullptr || n == 0) << "KSkyband: null rows";
  RRR_CHECK(k >= 1) << "KSkyband: k must be >= 1";
  std::vector<int32_t> band;
  for (size_t i = 0; i < n; ++i) {
    size_t dominators = 0;
    for (size_t j = 0; j < n && dominators < k; ++j) {
      if (j == i) continue;
      if (Dominates(rows + j * d, rows + i * d, d)) {
        ++dominators;
      } else if (j < i) {
        // An exact earlier duplicate outranks i under the id tie-break.
        bool equal = true;
        for (size_t c = 0; c < d; ++c) {
          if (rows[j * d + c] != rows[i * d + c]) {
            equal = false;
            break;
          }
        }
        if (equal) ++dominators;
      }
    }
    if (dominators < k) band.push_back(static_cast<int32_t>(i));
  }
  return band;
}

std::vector<int32_t> Skyline(const double* rows, size_t n, size_t d) {
  RRR_CHECK(rows != nullptr || n == 0) << "Skyline: null rows";
  if (n == 0) return {};
  if (d == 2) return Skyline2D(rows, n);
  std::vector<int32_t> sky;
  for (size_t i = 0; i < n; ++i) {
    bool dominated = false;
    for (size_t j = 0; j < n && !dominated; ++j) {
      if (j == i) continue;
      if (Dominates(rows + j * d, rows + i * d, d)) dominated = true;
      // Exact duplicates: keep only the lowest index.
      if (!dominated && j < i) {
        bool equal = true;
        for (size_t c = 0; c < d; ++c) {
          if (rows[j * d + c] != rows[i * d + c]) {
            equal = false;
            break;
          }
        }
        if (equal) dominated = true;
      }
    }
    if (!dominated) sky.push_back(static_cast<int32_t>(i));
  }
  return sky;
}

}  // namespace geometry
}  // namespace rrr
