#ifndef RRR_GEOMETRY_DOMINANCE_H_
#define RRR_GEOMETRY_DOMINANCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rrr {
namespace geometry {

/// \brief True iff row `a` Pareto-dominates row `b`: a >= b on every
/// coordinate and a > b on at least one (all attributes higher-preferred;
/// normalize first for mixed directions).
bool Dominates(const double* a, const double* b, size_t d);

/// \brief Indices of the Pareto-optimal (skyline) rows of the n x d
/// row-major matrix `rows`, in increasing index order.
///
/// The skyline is the maxima representation for monotone ranking functions
/// (Section 2). Uses a sort-based O(n log n) scan for d = 2 and a
/// block-nested-loop for d > 2.
std::vector<int32_t> Skyline(const double* rows, size_t n, size_t d);

/// \brief Indices of the k-skyband: rows dominated by fewer than k other
/// rows, in increasing index order.
///
/// A tuple dominated by >= k others can never rank in the top-k of any
/// monotone — in particular any linear — function, so the k-skyband is a
/// sound search-space prefilter for every RRR algorithm (an optimization
/// the paper leaves implicit; see the micro_skyband ablation bench).
/// Exact duplicates count as dominators of the higher-indexed copy so the
/// filter composes with the library-wide id tie-break. O(n^2 d).
std::vector<int32_t> KSkyband(const double* rows, size_t n, size_t d,
                              size_t k);

}  // namespace geometry
}  // namespace rrr

#endif  // RRR_GEOMETRY_DOMINANCE_H_
