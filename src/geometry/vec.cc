#include "geometry/vec.h"

#include <cmath>

#include "common/logging.h"

namespace rrr {
namespace geometry {

double Dot(const Vec& a, const Vec& b) {
  RRR_CHECK(a.size() == b.size()) << "Dot: size mismatch";
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Dot(const Vec& a, const double* row, size_t d) {
  RRR_CHECK(a.size() == d) << "Dot: size mismatch";
  double s = 0.0;
  for (size_t i = 0; i < d; ++i) s += a[i] * row[i];
  return s;
}

double L2Norm(const Vec& a) { return std::sqrt(Dot(a, a)); }

Vec Normalized(const Vec& a) {
  const double n = L2Norm(a);
  RRR_CHECK(n > 0.0) << "Normalized: zero vector";
  Vec out(a);
  for (double& v : out) v /= n;
  return out;
}

Vec Add(const Vec& a, const Vec& b) {
  RRR_CHECK(a.size() == b.size()) << "Add: size mismatch";
  Vec out(a);
  for (size_t i = 0; i < b.size(); ++i) out[i] += b[i];
  return out;
}

Vec Sub(const Vec& a, const Vec& b) {
  RRR_CHECK(a.size() == b.size()) << "Sub: size mismatch";
  Vec out(a);
  for (size_t i = 0; i < b.size(); ++i) out[i] -= b[i];
  return out;
}

Vec Scale(const Vec& a, double s) {
  Vec out(a);
  for (double& v : out) v *= s;
  return out;
}

bool ApproxEqual(const Vec& a, const Vec& b, double tol) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace geometry
}  // namespace rrr
