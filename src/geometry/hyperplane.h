#ifndef RRR_GEOMETRY_HYPERPLANE_H_
#define RRR_GEOMETRY_HYPERPLANE_H_

#include "geometry/vec.h"

namespace rrr {
namespace geometry {

/// \brief Hyperplane { x : normal . x = offset } in R^d.
///
/// The paper's dual transform (Equation 2) maps a tuple t to the hyperplane
/// d(t): sum_i t[i] * x_i = 1, i.e. Hyperplane{normal = t, offset = 1}.
struct Hyperplane {
  Vec normal;
  double offset = 0.0;

  /// Signed evaluation: positive above (away from the origin side when
  /// offset > 0), zero on the plane, negative below.
  double Eval(const Vec& x) const { return Dot(normal, x) - offset; }
};

/// Dual hyperplane d(t) of a tuple (Equation 2 of the paper).
Hyperplane DualOf(const Vec& tuple);

/// \brief Parameter of the intersection of a dual hyperplane with the ray
/// {s * w : s >= 0} of a ranking function w.
///
/// Returns s such that d(t) meets the ray at s * w, i.e. s = 1 / (w . t);
/// +infinity when the ray is parallel (w . t <= 0). In the dual space,
/// *smaller* s means *better* rank (Section 3), so ordering tuples by this
/// parameter reproduces the ranking of f_w.
double RayIntersectionParam(const Hyperplane& dual, const Vec& w);

}  // namespace geometry
}  // namespace rrr

#endif  // RRR_GEOMETRY_HYPERPLANE_H_
