#include "geometry/onion.h"

#include <algorithm>

#include "common/logging.h"
#include "geometry/convex_hull.h"
#include "geometry/dominance.h"

namespace rrr {
namespace geometry {

Result<std::vector<std::vector<int32_t>>> OnionLayers(const double* rows,
                                                      size_t n, size_t d) {
  if (rows == nullptr && n > 0) return Status::InvalidArgument("null rows");
  std::vector<std::vector<int32_t>> layers;
  // Active points, compacted each peel; `alive[i]` maps compact index to
  // original id.
  std::vector<int32_t> alive(n);
  for (size_t i = 0; i < n; ++i) alive[i] = static_cast<int32_t>(i);
  std::vector<double> cells(rows, rows + n * d);

  while (!alive.empty()) {
    std::vector<int32_t> maxima_compact;
    RRR_ASSIGN_OR_RETURN(
        maxima_compact, ConvexMaxima(cells.data(), alive.size(), d));
    if (maxima_compact.empty()) {
      // Remaining points are all non-extreme (e.g. exact duplicates of each
      // other): close the onion with them as one final layer, keeping the
      // invariant that every point lands in exactly one layer.
      layers.push_back(alive);
      break;
    }
    std::vector<int32_t> layer;
    layer.reserve(maxima_compact.size());
    std::vector<char> peel(alive.size(), 0);
    for (int32_t c : maxima_compact) {
      layer.push_back(alive[static_cast<size_t>(c)]);
      peel[static_cast<size_t>(c)] = 1;
    }
    layers.push_back(std::move(layer));

    // Compact the survivors.
    std::vector<int32_t> next_alive;
    std::vector<double> next_cells;
    next_alive.reserve(alive.size() - maxima_compact.size());
    next_cells.reserve(next_alive.capacity() * d);
    for (size_t i = 0; i < alive.size(); ++i) {
      if (peel[i]) continue;
      next_alive.push_back(alive[i]);
      next_cells.insert(next_cells.end(), cells.begin() + i * d,
                        cells.begin() + (i + 1) * d);
    }
    alive = std::move(next_alive);
    cells = std::move(next_cells);
  }
  return layers;
}

Result<std::vector<int32_t>> FirstKOnionLayers(const double* rows, size_t n,
                                               size_t d, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  std::vector<std::vector<int32_t>> layers;
  RRR_ASSIGN_OR_RETURN(layers, OnionLayers(rows, n, d));
  std::vector<int32_t> out;
  for (size_t i = 0; i < layers.size() && i < k; ++i) {
    out.insert(out.end(), layers[i].begin(), layers[i].end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace geometry
}  // namespace rrr
