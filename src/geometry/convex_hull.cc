#include "geometry/convex_hull.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/parallel.h"
#include "lp/separation.h"

namespace rrr {
namespace geometry {

namespace {

/// Twice the signed area of triangle (o, a, b); positive for a left turn.
double Cross(const double* rows, int32_t o, int32_t a, int32_t b) {
  const double ox = rows[2 * o], oy = rows[2 * o + 1];
  return (rows[2 * a] - ox) * (rows[2 * b + 1] - oy) -
         (rows[2 * a + 1] - oy) * (rows[2 * b] - ox);
}

}  // namespace

std::vector<int32_t> ConvexHull2D(const double* rows, size_t n) {
  RRR_CHECK(rows != nullptr || n == 0) << "ConvexHull2D: null rows";
  if (n == 0) return {};
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    if (rows[2 * a] != rows[2 * b]) return rows[2 * a] < rows[2 * b];
    if (rows[2 * a + 1] != rows[2 * b + 1]) {
      return rows[2 * a + 1] < rows[2 * b + 1];
    }
    return a < b;
  });
  // Drop duplicate coordinates (keep lowest index, which sorts first).
  order.erase(std::unique(order.begin(), order.end(),
                          [&](int32_t a, int32_t b) {
                            return rows[2 * a] == rows[2 * b] &&
                                   rows[2 * a + 1] == rows[2 * b + 1];
                          }),
              order.end());
  const size_t m = order.size();
  if (m <= 2) return order;

  std::vector<int32_t> hull(2 * m);
  size_t h = 0;
  // Lower chain.
  for (size_t i = 0; i < m; ++i) {
    while (h >= 2 && Cross(rows, hull[h - 2], hull[h - 1], order[i]) <= 0) {
      --h;
    }
    hull[h++] = order[i];
  }
  // Upper chain.
  const size_t lower_size = h + 1;
  for (size_t i = m - 1; i-- > 0;) {
    while (h >= lower_size &&
           Cross(rows, hull[h - 2], hull[h - 1], order[i]) <= 0) {
      --h;
    }
    hull[h++] = order[i];
  }
  hull.resize(h - 1);  // last point equals the first
  return hull;
}

Result<std::vector<int32_t>> ConvexMaxima(const double* rows, size_t n,
                                          size_t d, size_t threads,
                                          const std::vector<char>* certified) {
  if (rows == nullptr) return Status::InvalidArgument("null rows");
  if (certified != nullptr && certified->size() != n) {
    return Status::InvalidArgument("certified mask size != n");
  }
  std::vector<int32_t> maxima;
  if (n == 0) return maxima;
  if (n == 1) return std::vector<int32_t>{0};
  // One independent separation LP per candidate; flags keep the output in
  // ascending index order regardless of which thread ran which candidate.
  // Caller-certified rows are maxima by witness and skip their LP.
  std::vector<char> is_maximum(n, 0);
  std::vector<Status> errors(n);
  ParallelFor(ResolveThreads(threads), n, [&](size_t i) {
    if (certified != nullptr && (*certified)[i] != 0) {
      is_maximum[i] = 1;
      return;
    }
    Result<lp::SeparationResult> sep = lp::FindSeparatingWeights(
        rows, n, d, {static_cast<int32_t>(i)});
    if (!sep.ok()) {
      errors[i] = sep.status();
      return;
    }
    if (sep->separable) is_maximum[i] = 1;
  });
  for (size_t i = 0; i < n; ++i) {
    if (!errors[i].ok()) return errors[i];
    if (is_maximum[i]) maxima.push_back(static_cast<int32_t>(i));
  }
  return maxima;
}

}  // namespace geometry
}  // namespace rrr
