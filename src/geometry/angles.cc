#include "geometry/angles.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rrr {
namespace geometry {

Vec AnglesToWeights(const Vec& angles) {
  const size_t d = angles.size() + 1;
  Vec w(d, 0.0);
  double sin_prod = 1.0;
  for (size_t i = 0; i + 1 < d; ++i) {
    RRR_DCHECK(angles[i] >= -1e-12 && angles[i] <= kHalfPi + 1e-12)
        << "angle out of [0, pi/2]: " << angles[i];
    w[i] = sin_prod * std::cos(angles[i]);
    sin_prod *= std::sin(angles[i]);
  }
  w[d - 1] = sin_prod;
  // Clamp roundoff so downstream code can rely on non-negativity.
  for (double& wi : w) wi = std::max(wi, 0.0);
  return w;
}

Result<Vec> WeightsToAngles(const Vec& weights) {
  const size_t d = weights.size();
  if (d < 1) return Status::InvalidArgument("empty weight vector");
  double norm2 = 0.0;
  for (double wi : weights) {
    if (wi < 0.0) {
      return Status::InvalidArgument("negative weight in angle conversion");
    }
    norm2 += wi * wi;
  }
  if (norm2 == 0.0) return Status::InvalidArgument("zero weight vector");
  const double norm = std::sqrt(norm2);

  Vec angles(d - 1, 0.0);
  // Residual norm of the suffix w_i..w_{d-1} shrinks as we peel angles off.
  double residual = norm;
  for (size_t i = 0; i + 1 < d; ++i) {
    if (residual <= 1e-300) {
      angles[i] = 0.0;  // canonical choice for an all-zero suffix
      continue;
    }
    double c = weights[i] / residual;
    c = std::clamp(c, -1.0, 1.0);
    angles[i] = std::acos(c);
    // sin(angle) * residual is the norm of the remaining suffix.
    residual *= std::sqrt(std::max(0.0, 1.0 - c * c));
  }
  return angles;
}

}  // namespace geometry
}  // namespace rrr
