#ifndef RRR_GEOMETRY_CONVEX_HULL_H_
#define RRR_GEOMETRY_CONVEX_HULL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace rrr {
namespace geometry {

/// \brief Indices of the vertices of the 2D convex hull of the n x 2
/// row-major matrix `rows`, counter-clockwise starting from the
/// lexicographically smallest point (Andrew's monotone chain).
///
/// Collinear interior points are excluded; duplicate points contribute one
/// vertex. Degenerate inputs (all collinear) return the two extremes, or one
/// index when all points coincide.
std::vector<int32_t> ConvexHull2D(const double* rows, size_t n);

/// \brief The maxima representation for linear ranking functions: all rows
/// that are the unique top-1 of some ranking function with non-negative
/// weights (Section 2 — the order-1 rank-regret representative).
///
/// For each candidate row this solves the separation LP (is {i} a 1-set?);
/// works in any dimension. O(n) LP solves of n constraints each, so intended
/// for small/medium n (tests, examples, ground truth).
///
/// The per-candidate LPs are independent; `threads` fans them out (0 =
/// hardware concurrency; the default 1 stays serial). Candidates are
/// reported in ascending index order for every thread count.
///
/// `certified` (may be null, else size n) marks rows already proven to be
/// maxima by the caller — e.g. a strict top-1 under some probe function
/// with a margin above the LP tolerance, which the scoring kernel finds in
/// one blocked scan (see PreparedDataset::SharedConvexMaxima). Certified
/// rows skip their LP; the output is identical because their LP could only
/// have confirmed what the witness already proves.
Result<std::vector<int32_t>> ConvexMaxima(const double* rows, size_t n,
                                          size_t d, size_t threads = 1,
                                          const std::vector<char>* certified =
                                              nullptr);

}  // namespace geometry
}  // namespace rrr

#endif  // RRR_GEOMETRY_CONVEX_HULL_H_
