#include "geometry/hyperplane.h"

#include <limits>

namespace rrr {
namespace geometry {

Hyperplane DualOf(const Vec& tuple) { return Hyperplane{tuple, 1.0}; }

double RayIntersectionParam(const Hyperplane& dual, const Vec& w) {
  const double denom = Dot(dual.normal, w);
  if (denom <= 0.0) return std::numeric_limits<double>::infinity();
  return dual.offset / denom;
}

}  // namespace geometry
}  // namespace rrr
