#ifndef RRR_GEOMETRY_VEC_H_
#define RRR_GEOMETRY_VEC_H_

#include <cstddef>
#include <vector>

namespace rrr {
namespace geometry {

/// Dense d-dimensional vector; doubles as a point and a weight vector.
using Vec = std::vector<double>;

/// Inner product; requires equal sizes.
double Dot(const Vec& a, const Vec& b);

/// Inner product against a raw row pointer of length `d`.
double Dot(const Vec& a, const double* row, size_t d);

/// Euclidean norm.
double L2Norm(const Vec& a);

/// Returns a / |a|_2; requires a nonzero vector.
Vec Normalized(const Vec& a);

/// Component-wise a + b.
Vec Add(const Vec& a, const Vec& b);

/// Component-wise a - b.
Vec Sub(const Vec& a, const Vec& b);

/// s * a.
Vec Scale(const Vec& a, double s);

/// True iff |a_i - b_i| <= tol for all i (and sizes match).
bool ApproxEqual(const Vec& a, const Vec& b, double tol = 1e-12);

}  // namespace geometry
}  // namespace rrr

#endif  // RRR_GEOMETRY_VEC_H_
