#ifndef RRR_GEOMETRY_ANGLES_H_
#define RRR_GEOMETRY_ANGLES_H_

#include "common/result.h"
#include "geometry/vec.h"

namespace rrr {
namespace geometry {

/// Half pi, the upper bound of every angle coordinate.
inline constexpr double kHalfPi = 1.5707963267948966;

/// \brief Maps d-1 angles in [0, pi/2]^(d-1) to a unit weight vector in the
/// first orthant of R^d (the paper's parameterization of the linear ranking
/// function space, Section 5.3).
///
/// Spherical coordinates restricted to the first orthant:
///   w_1 = cos a_1
///   w_i = sin a_1 ... sin a_{i-1} cos a_i        (1 < i < d)
///   w_d = sin a_1 ... sin a_{d-1}
/// Every w_i is non-negative and |w|_2 = 1. With zero angles the vector is
/// the first axis; with all angles pi/2 it is the last axis. For d = 2 this
/// is the paper's single sweep angle theta with w = (cos theta, sin theta).
Vec AnglesToWeights(const Vec& angles);

/// \brief Inverse of AnglesToWeights for non-negative nonzero vectors; the
/// input is normalized internally.
///
/// When a suffix of the vector is entirely zero the trailing angles are not
/// uniquely determined; this returns 0 for them (the canonical choice that
/// AnglesToWeights maps back onto the same weights).
Result<Vec> WeightsToAngles(const Vec& weights);

/// Number of weight dimensions for an angle vector (angles.size() + 1).
inline size_t WeightDims(const Vec& angles) { return angles.size() + 1; }

}  // namespace geometry
}  // namespace rrr

#endif  // RRR_GEOMETRY_ANGLES_H_
