#ifndef RRR_GEOMETRY_ONION_H_
#define RRR_GEOMETRY_ONION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace rrr {
namespace geometry {

/// \brief Onion (convex-maxima layer) decomposition [Chang et al.'s onion
/// technique, cited in the paper's §7 as a top-k index].
///
/// Layer 0 is the convex maxima of the full point set; layer i is the
/// maxima of what is left after peeling layers 0..i-1. Every point lands in
/// exactly one layer. The classic property making this a top-k index — and
/// a natural (if bulky) rank-regret representative — is that the top-k of
/// any non-negative linear function lies within the first k layers.
///
/// Uses the separation-LP maxima test per layer: O(L * n * LP) where L is
/// the layer count; intended for moderate n.
Result<std::vector<std::vector<int32_t>>> OnionLayers(const double* rows,
                                                      size_t n, size_t d);

/// \brief The union of the first min(k, L) onion layers: a valid order-k
/// rank-regret representative (usually far larger than the RRR optimum —
/// used as the size baseline in the ablation bench).
Result<std::vector<int32_t>> FirstKOnionLayers(const double* rows, size_t n,
                                               size_t d, size_t k);

}  // namespace geometry
}  // namespace rrr

#endif  // RRR_GEOMETRY_ONION_H_
