#ifndef RRR_CORE_CANDIDATE_INDEX_H_
#define RRR_CORE_CANDIDATE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "core/sweep.h"
#include "data/column_blocks.h"
#include "data/dataset.h"
#include "topk/scoring.h"
#include "topk/threshold_algorithm.h"

namespace rrr {
namespace core {

/// Tuning for CandidateIndex::Create. The defaults are conservative: the
/// index declines to build (Outcome.index == nullptr) whenever the dominance
/// structure of the data suggests pruning would not pay for itself, so
/// callers can request an index unconditionally and fall back to full scans
/// on a null result.
struct CandidateIndexOptions {
  /// Worker threads for the dominance count: 0 = hardware concurrency,
  /// 1 = serial. The counts (and therefore the band) are identical for
  /// every thread count; only the decline decision of the work budget can
  /// depend on scheduling, and a declined index never changes any result.
  size_t threads = 0;
  /// Datasets smaller than this decline immediately: a full scan over a few
  /// thousand rows is cheaper than maintaining a second dataset + index.
  size_t min_dataset_size = 4096;
  /// Decline when the band would keep more than this fraction of the rows
  /// (scanning the band would barely beat scanning everything).
  double max_band_fraction = 0.85;
  /// Sampled pre-check: estimate the band fraction from this many randomly
  /// chosen rows, counting each one's dominators only within the best
  /// `precheck_prefix_factor * k` rows by coordinate sum. Anti-correlated
  /// data — where the count itself would cost O(n^2 d) — is declined here
  /// for O(sample * k * d). 0 disables the pre-check.
  size_t precheck_sample = 256;
  size_t precheck_prefix_factor = 8;
  /// Decline when the pre-check estimates a band fraction above this.
  double precheck_max_band_fraction = 0.6;
  /// Hard budget on the dominance count, measured in scanned candidate
  /// pairs: (k + budget_slack_per_tuple) * n. The count aborts (declines)
  /// past it — the backstop for data that slips through the pre-check but
  /// would still cost far more to index than the scans it saves. n * k
  /// pairs is the unavoidable floor (every dominated row must surface k
  /// dominators), so the slack is the per-row allowance beyond it; the
  /// default keeps speculative build work at roughly one second per 100k
  /// rows. Consumers with heavy query volume (many sampler draws or
  /// evaluator functions per dataset) should raise it — or set 0
  /// (unlimited) — via PreparedDataset::Options::candidate. 0 = unlimited.
  size_t budget_slack_per_tuple = 2048;
};

/// \brief The always-outranks predicate under the library tie order: true
/// when row j beats row i under EVERY non-negative, not-all-zero weight
/// vector — strict coordinate dominance, or weak dominance with j's id
/// smaller (covers exact duplicates and zero-weight corner functions; see
/// the CandidateIndex class comment).
///
/// Exported as the shared primitive of k-skyband maintenance: Create's
/// dominance count uses it, and the dynamic-update layer
/// (core/dataset_updates.h) applies it pairwise to keep always-outranker
/// counts exact across inserts and deletes without a full recount.
bool AlwaysOutranks(const double* j_row, int32_t j, const double* i_row,
                    int32_t i, size_t d);

/// \brief k-skyband candidate-pruning layer: the set of tuples that can
/// appear in the top-k of *some* non-negative linear ranking function,
/// materialized as a compact dataset + Threshold Algorithm index so every
/// top-k hot path (MDRC corner evaluations, K-SETr draws, k-set-graph
/// candidates, the sampled evaluator, the 2D sweep) runs over it instead of
/// the raw dataset.
///
/// The pruning rule extends the paper's skyline argument (Section 3) from
/// k = 1 to general k, sharpened for the library's deterministic tie order
/// (score desc, id asc — topk::Outranks). Tuple j *always outranks* tuple i
/// when j beats i under every non-negative, not-all-zero weight vector:
///
///   - j > i strictly on every coordinate (strict score dominance for any
///     such function), or
///   - j >= i on every coordinate and j's id is smaller (scores can tie —
///     e.g. under an axis-aligned corner function that ignores the strict
///     coordinates — but the id tie-break then still favors j).
///
/// A tuple with >= k always-outrankers has rank > k under every function,
/// so dropping it can never change a top-k. Plain Pareto dominance is NOT
/// sufficient here: a dominator with a larger id loses the tie-break under
/// zero-weight (axis/corner endpoint) functions, which MDRC corners and the
/// 2D sweep endpoints probe. The band therefore satisfies the *bit-identical
/// contract*: for every function with non-negative weights and every
/// k' <= k, the ordered top-k' of the band (ids mapped back) equals the
/// ordered top-k' of the full dataset. The band is monotone in k — the
/// (k+1)-band contains the k-band — which is what lets PreparedDataset
/// cache the largest computed dominance count and slice it for smaller k.
///
/// Cost: the count sorts rows by coordinate sum (only earlier rows in that
/// order can always-outrank a row) and scans each row's prefix with an
/// early exit at k, parallel over rows and cancellable via ExecContext;
/// O(n log n + sum of per-row scan lengths), worst case O(n^2 d) — which is
/// why Create declines on data whose pre-check predicts a useless band.
///
/// Thread-safety: all query methods are const and safe to call
/// concurrently. The referenced full dataset must outlive the index.
class CandidateIndex {
 public:
  /// Outcome of Create: `index` is null when the build declined (the data
  /// would not benefit); `decline_reason` then says why. A declined build
  /// is not an error — callers fall back to unpruned scans.
  struct Outcome {
    std::shared_ptr<const CandidateIndex> index;
    std::string decline_reason;
    /// The dominance counts computed on the way (capped at min(k, n)),
    /// non-null when counting completed — PreparedDataset caches them for
    /// the monotone slice path. Null when the build declined before or
    /// during the count.
    std::shared_ptr<const std::vector<uint32_t>> counts;
  };

  /// Builds the k-band index over `dataset` (which must be non-empty, all
  /// finite, and outlive the index). `counts`, when non-null, must be
  /// always-outranker counts for this dataset capped at >= min(k, n); the
  /// pre-check and work budget are then skipped (the expensive part is
  /// already paid). `blocks` (may be null) is the dataset's columnar
  /// mirror: the sort-by-sum pass of the dominance count then runs through
  /// the blocked scoring kernel (all-ones function — identical sums).
  /// Fails only on preemption (Cancelled/DeadlineExceeded) or invalid
  /// arguments; an unprofitable build declines instead.
  static Result<Outcome> Create(
      const data::Dataset& dataset, size_t k,
      const CandidateIndexOptions& options = {}, const ExecContext& ctx = {},
      const std::vector<uint32_t>* counts = nullptr,
      const data::ColumnBlocks* blocks = nullptr);

  /// Per-row always-outranker counts, capped at `cap` (rows with >= cap
  /// outrankers report exactly cap). Deterministic for every thread count.
  /// Exposed for the slice cache and the monotonicity tests; Create is the
  /// usual entry point. `blocks` as in Create.
  static Result<std::vector<uint32_t>> CountAlwaysOutrankers(
      const data::Dataset& dataset, size_t cap, size_t threads = 0,
      const ExecContext& ctx = {},
      const data::ColumnBlocks* blocks = nullptr);

  /// Band parameter: queries are valid for any k' <= k.
  size_t k() const { return k_; }
  /// The full dataset this index prunes (identity-checked by consumers).
  const data::Dataset* full_dataset() const { return full_; }
  /// The pruned rows as a compact dataset, in ascending original-id order.
  const data::Dataset& band() const { return band_; }
  /// band() row -> original dataset id (ascending).
  const std::vector<int32_t>& band_ids() const { return band_ids_; }
  size_t band_size() const { return band_ids_.size(); }
  bool in_band(int32_t id) const {
    return in_band_[static_cast<size_t>(id)] != 0;
  }
  /// Angular sweep over the band; non-null iff the data is 2D.
  const AngularSweep* band_sweep() const { return band_sweep_.get(); }
  /// Columnar mirror of band() (always built — the band is the hot scan
  /// surface, and the mirror costs one O(band * d) pass).
  const data::ColumnBlocks* band_blocks() const { return band_blocks_.get(); }

  /// Ids of the top-k' tuples of the FULL dataset under `f`, best first —
  /// bit-identical to topk::TopK(full, f, k') for k' <= k(), answered by a
  /// Threshold Algorithm query over the band. RRR_CHECKs k' <= k().
  std::vector<int32_t> TopK(const topk::LinearFunction& f, size_t k) const;

  /// TopK + ascending-sorted ids — bit-identical to topk::TopKSet.
  std::vector<int32_t> TopKSet(const topk::LinearFunction& f, size_t k) const;

  /// The single best tuple under `f` (== TopK(f, 1).front()).
  int32_t Top1(const topk::LinearFunction& f) const;

  /// \brief Exact minimum rank of `subset` under `f` over the FULL dataset —
  /// bit-identical to topk::MinRankOfSubset — computed over the band when
  /// the answer is <= k() (the common case for representatives) and by a
  /// full fallback scan otherwise.
  ///
  /// Sound because the band's ordered top-k equals the full top-k: a best
  /// member that is in the band with fewer than k() band outrankers has
  /// exactly that rank in the full dataset too. `full_scan_fallbacks`
  /// (may be null) is incremented when the fallback fires. The band count
  /// always runs through the blocked kernel (band_blocks()); `full_blocks`
  /// (may be null, must mirror the full dataset) routes the fallback scan
  /// through it too.
  int64_t MinRankOfSubset(const topk::LinearFunction& f,
                          const std::vector<int32_t>& subset,
                          size_t* full_scan_fallbacks = nullptr,
                          const data::ColumnBlocks* full_blocks =
                              nullptr) const;

  /// Approximate heap footprint in bytes: the band dataset, its id maps,
  /// the band's columnar mirror, the Threshold Algorithm index, and the 2D
  /// band sweep. The service layer's eviction budget reads this; it is an
  /// estimate, not an allocation census.
  size_t ApproxBytes() const;

 private:
  CandidateIndex(const data::Dataset& full, size_t k, data::Dataset band,
                 std::vector<int32_t> band_ids, std::vector<char> in_band);

  const data::Dataset* full_;
  size_t k_;
  data::Dataset band_;
  std::vector<int32_t> band_ids_;
  std::vector<char> in_band_;  // indexed by original id
  std::unique_ptr<data::ColumnBlocks> band_blocks_;
  std::unique_ptr<topk::ThresholdAlgorithmIndex> ta_;
  std::unique_ptr<AngularSweep> band_sweep_;  // d == 2 only
};

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_CANDIDATE_INDEX_H_
