#include "core/engine.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/evaluator.h"
#include "topk/score_kernel.h"

namespace rrr {
namespace core {

std::string Diagnostics::ToString() const {
  std::string out = StrFormat("%s %.6fs cached=%s reuse=%s",
                              AlgorithmName(algorithm_used).c_str(), seconds,
                              result_from_cache ? "yes" : "no",
                              reused_prepared_artifacts ? "yes" : "no");
  if (mdrc.nodes > 0) {
    out += StrFormat(
        " mdrc{nodes=%zu leaves=%zu evals=%zu hits=%zu depth=%zu}",
        mdrc.nodes, mdrc.leaves, mdrc.corner_evals, mdrc.cache_hits,
        mdrc.max_depth);
  }
  if (sampler_samples_drawn > 0 || sampler_ksets > 0) {
    out += StrFormat(" sampler{draws=%zu ksets=%zu cached=%s}",
                     sampler_samples_drawn, sampler_ksets,
                     sampler_from_cache ? "yes" : "no");
  }
  if (eval_functions_sampled > 0) {
    out += StrFormat(" eval{functions=%zu}", eval_functions_sampled);
  }
  if (skyband_size > 0) {
    out += StrFormat(" skyband{size=%zu rows_saved=%zu}", skyband_size,
                     skyband_scan_rows_saved);
  }
  if (columnar_kernel) out += " kernel=columnar";
  if (blocks_scanned > 0 || blocks_skipped > 0) {
    out += StrFormat(" blockskip{scanned=%llu skipped=%llu}",
                     static_cast<unsigned long long>(blocks_scanned),
                     static_cast<unsigned long long>(blocks_skipped));
  }
  if (degraded) out += " degraded";
  if (dataset_version.assigned()) out += " " + dataset_version.ToString();
  return out;
}

size_t RrrEngine::ResultKeyHash::operator()(const ResultKey& key) const {
  uint64_t h = FnvMix(kFnvOffsetBasis, key.version.origin);
  h = FnvMix(h, key.version.ordinal);
  h = FnvMix(h, key.k);
  h = FnvMix(h, static_cast<uint64_t>(key.algorithm));
  return static_cast<size_t>(h);
}

RrrEngine::RrrEngine(std::shared_ptr<const PreparedDataset> prepared,
                     SnapshotFn source, EngineOptions options)
    : prepared_(std::move(prepared)),
      snapshot_source_(std::move(source)),
      options_(std::move(options)),
      result_cache_(options_.max_result_cache_entries) {}

Result<std::shared_ptr<RrrEngine>> RrrEngine::Create(data::Dataset dataset,
                                                     EngineOptions options) {
  std::shared_ptr<const PreparedDataset> prepared;
  RRR_ASSIGN_OR_RETURN(
      prepared, PreparedDataset::Create(std::move(dataset), options.prepared));
  return Create(std::move(prepared), std::move(options));
}

Result<std::shared_ptr<RrrEngine>> RrrEngine::Create(
    std::shared_ptr<const PreparedDataset> prepared, EngineOptions options) {
  if (prepared == nullptr) {
    return Status::InvalidArgument("null PreparedDataset");
  }
  // Not make_shared: the constructor is private.
  return std::shared_ptr<RrrEngine>(
      new RrrEngine(std::move(prepared), nullptr, std::move(options)));
}

Result<std::shared_ptr<RrrEngine>> RrrEngine::CreateDynamic(
    SnapshotFn source, EngineOptions options) {
  if (source == nullptr) {
    return Status::InvalidArgument("null snapshot source");
  }
  std::shared_ptr<const PreparedDataset> initial = source();
  if (initial == nullptr) {
    return Status::InvalidArgument("snapshot source returned null");
  }
  return std::shared_ptr<RrrEngine>(new RrrEngine(
      std::move(initial), std::move(source), std::move(options)));
}

std::shared_ptr<const PreparedDataset> RrrEngine::ResolveSnapshot(
    const QueryOptions& query) const {
  if (query.snapshot != nullptr) return query.snapshot;
  if (snapshot_source_ != nullptr) {
    std::shared_ptr<const PreparedDataset> current = snapshot_source_();
    if (current != nullptr) return current;
  }
  return prepared_;
}

Result<Algorithm> RrrEngine::ResolveAlgorithm(const PreparedDataset& prepared,
                                              size_t k,
                                              const QueryOptions& query) const {
  Algorithm algorithm = query.algorithm != Algorithm::kAuto
                            ? query.algorithm
                            : options_.defaults.algorithm;
  if (algorithm == Algorithm::kAuto) {
    if (prepared.dims() == 2) {
      algorithm = Algorithm::k2dRrr;
    } else if (k == 1 && prepared.dims() > 2) {
      algorithm = Algorithm::kConvexMaxima;
    } else {
      algorithm = Algorithm::kMdRc;
    }
  }
  if (algorithm == Algorithm::k2dRrr && prepared.dims() != 2) {
    return Status::InvalidArgument("2DRRR requires a 2D dataset");
  }
  if (algorithm == Algorithm::kConvexMaxima && k != 1) {
    return Status::InvalidArgument(
        "convex maxima solve is exact only for k == 1");
  }
  return algorithm;
}

bool RrrEngine::ArtifactInCooldown(ArtifactKind kind) const {
  if (options_.artifact_failure_cooldown_ms == 0) return false;
  MutexLock lock(degrade_mu_);
  return std::chrono::steady_clock::now() <
         artifact_retry_after_[static_cast<size_t>(kind)];
}

void RrrEngine::NoteArtifactFailure(ArtifactKind kind) const {
  MutexLock lock(degrade_mu_);
  artifact_retry_after_[static_cast<size_t>(kind)] =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.artifact_failure_cooldown_ms);
}

Result<std::shared_ptr<const CandidateIndex>>
RrrEngine::DegradableCandidateIndex(const PreparedDataset& prepared, size_t k,
                                    const ExecContext& ctx,
                                    bool* degraded) const {
  if (ArtifactInCooldown(ArtifactKind::kCandidates)) {
    *degraded = true;
    return std::shared_ptr<const CandidateIndex>();
  }
  Result<std::shared_ptr<const CandidateIndex>> built =
      prepared.SharedCandidateIndex(
          k, ResolveThreads(ctx.ThreadsOver(options_.defaults.threads)), ctx);
  if (built.ok()) return built;
  const StatusCode code = built.status().code();
  if (code == StatusCode::kCancelled ||
      code == StatusCode::kDeadlineExceeded) {
    return built;
  }
  RRR_LOG(WARNING) << "candidate-index build failed ("
                   << built.status().ToString()
                   << "); query degrades to the unpruned path";
  NoteArtifactFailure(ArtifactKind::kCandidates);
  *degraded = true;
  return std::shared_ptr<const CandidateIndex>();
}

Result<std::shared_ptr<const data::ColumnBlocks>>
RrrEngine::DegradableColumnBlocks(const PreparedDataset& prepared,
                                  const ExecContext& ctx,
                                  bool* degraded) const {
  if (ArtifactInCooldown(ArtifactKind::kBlocks)) {
    *degraded = true;
    return std::shared_ptr<const data::ColumnBlocks>();
  }
  Result<std::shared_ptr<const data::ColumnBlocks>> built =
      prepared.SharedColumnBlocks(
          ResolveThreads(ctx.ThreadsOver(options_.defaults.threads)), ctx);
  if (built.ok()) return built;
  const StatusCode code = built.status().code();
  if (code == StatusCode::kCancelled ||
      code == StatusCode::kDeadlineExceeded) {
    return built;
  }
  RRR_LOG(WARNING) << "columnar-mirror build failed ("
                   << built.status().ToString()
                   << "); query degrades to the row-major scan";
  NoteArtifactFailure(ArtifactKind::kBlocks);
  *degraded = true;
  return std::shared_ptr<const data::ColumnBlocks>();
}

Result<QueryResult> RrrEngine::RunAlgorithm(const PreparedDataset& prepared,
                                            size_t k, Algorithm algorithm,
                                            const ExecContext& ctx) const {
  const RrrOptions& defaults = options_.defaults;
  const data::Dataset& dataset = prepared.dataset();
  const size_t n = dataset.size();

  QueryResult result;
  result.diagnostics.algorithm_used = algorithm;
  result.diagnostics.dataset_version = prepared.version();

  // Every top-k-driven path asks for the shared k-skyband index up front; a
  // null result (declined or failed build) just means the path runs
  // unpruned — see DegradableCandidateIndex for the failure contract. The
  // convex-maxima path has its own skyline prefilter and skips the ask.
  auto shared_candidates =
      [&]() -> Result<std::shared_ptr<const CandidateIndex>> {
    return DegradableCandidateIndex(prepared, k, ctx,
                                    &result.diagnostics.degraded);
  };
  // Likewise the shared columnar mirror: every scan-shaped loop below runs
  // through the blocked scoring kernel with it (bit-identical results; the
  // one O(n d) transpose amortizes across all queries).
  auto shared_blocks =
      [&]() -> Result<std::shared_ptr<const data::ColumnBlocks>> {
    return DegradableColumnBlocks(prepared, ctx, &result.diagnostics.degraded);
  };
  Stopwatch timer;
  // Block-max pruning accounting: delta of the process-global scan
  // counters around the compute. Concurrent queries interleave their
  // blocks into each other's deltas — approximate per query, exact in sum
  // (the service's STATS totals), zero on memo hits.
  const topk::ScanStats scan_before = topk::ScanCountersSnapshot();
  switch (algorithm) {
    case Algorithm::k2dRrr: {
      std::shared_ptr<const CandidateIndex> candidates;
      RRR_ASSIGN_OR_RETURN(candidates, shared_candidates());
      std::shared_ptr<const data::ColumnBlocks> blocks;
      RRR_ASSIGN_OR_RETURN(blocks, shared_blocks());
      // With a candidate index the scans run over the band, not the
      // mirror — report the mirror only when it is what actually scanned.
      result.diagnostics.columnar_kernel = candidates == nullptr;
      // The prepared sweep replaces the per-call O(n log n) initial sort;
      // with an index the sweep runs over the band instead.
      RRR_ASSIGN_OR_RETURN(
          result.representative,
          Solve2dRrr(dataset, k, defaults.rrr2d, ctx, prepared.sweep(),
                     candidates.get(), blocks.get()));
      result.diagnostics.reused_prepared_artifacts =
          prepared.sweep() != nullptr;
      if (candidates != nullptr) {
        result.diagnostics.skyband_size = candidates->band_size();
      }
      break;
    }
    case Algorithm::kMdRrr: {
      std::shared_ptr<const CandidateIndex> candidates;
      RRR_ASSIGN_OR_RETURN(candidates, shared_candidates());
      KSetSamplerOptions sampler = defaults.sampler;
      if (defaults.threads != 0) sampler.threads = defaults.threads;
      bool sample_hit = false;
      std::shared_ptr<const KSetSampleResult> sample;
      RRR_ASSIGN_OR_RETURN(
          sample, prepared.SharedKSets(k, sampler, ctx, &sample_hit,
                                       candidates.get()));
      RRR_ASSIGN_OR_RETURN(
          result.representative,
          SolveMdrrr(dataset, sample->ksets, defaults.mdrrr, ctx));
      result.diagnostics.sampler_samples_drawn = sample->samples_drawn;
      result.diagnostics.sampler_ksets = sample->ksets.size();
      result.diagnostics.sampler_from_cache = sample_hit;
      result.diagnostics.reused_prepared_artifacts = sample_hit;
      // The mirror only feeds the sampler's full-dataset draw path;
      // SharedKSets skips it when an index or the prefilter supersedes it,
      // and a cached sample means no scans ran at all.
      result.diagnostics.columnar_kernel =
          !sample_hit && candidates == nullptr && !sampler.skyband_prefilter;
      if (candidates != nullptr) {
        result.diagnostics.skyband_size = candidates->band_size();
        if (!sample_hit) {
          result.diagnostics.skyband_scan_rows_saved =
              sample->samples_drawn * (n - candidates->band_size());
        }
      }
      break;
    }
    case Algorithm::kMdRc: {
      std::shared_ptr<const CandidateIndex> candidates;
      RRR_ASSIGN_OR_RETURN(candidates, shared_candidates());
      std::shared_ptr<const data::ColumnBlocks> blocks;
      RRR_ASSIGN_OR_RETURN(blocks, shared_blocks());
      // Corner evaluations consult the candidate index first; the mirror
      // scans only when no index superseded it.
      result.diagnostics.columnar_kernel = candidates == nullptr;
      MdrcOptions mdrc = defaults.mdrc;
      if (defaults.threads != 0) mdrc.threads = defaults.threads;
      // Cross-query warmth, not intra-solve sibling hits: sibling cells
      // share corners within any single solve, so stats.cache_hits > 0
      // even on a cold engine. Corners stored before this query started
      // are the actual prepared-artifact signal.
      const bool cache_was_warm = prepared.corner_cache()->entries() > 0;
      MdrcStats stats;
      RRR_ASSIGN_OR_RETURN(
          result.representative,
          SolveMdrc(dataset, k, mdrc, &stats, ctx, prepared.corner_cache(),
                    candidates.get(), blocks.get()));
      result.diagnostics.mdrc = stats;
      result.diagnostics.reused_prepared_artifacts = cache_was_warm;
      if (candidates != nullptr) {
        result.diagnostics.skyband_size = candidates->band_size();
        result.diagnostics.skyband_scan_rows_saved =
            stats.corner_evals * (n - candidates->band_size());
      }
      break;
    }
    case Algorithm::kConvexMaxima: {
      const size_t threads =
          ResolveThreads(ctx.ThreadsOver(defaults.threads));
      bool maxima_hit = false;
      std::shared_ptr<const std::vector<int32_t>> maxima;
      RRR_ASSIGN_OR_RETURN(
          maxima, prepared.SharedConvexMaxima(threads, ctx, &maxima_hit));
      result.representative = *maxima;
      result.diagnostics.reused_prepared_artifacts = maxima_hit;
      break;
    }
    case Algorithm::kAuto:
      return Status::Internal("kAuto must be resolved before dispatch");
  }
  const topk::ScanStats scan_after = topk::ScanCountersSnapshot();
  result.diagnostics.blocks_scanned =
      scan_after.blocks_scanned - scan_before.blocks_scanned;
  result.diagnostics.blocks_skipped =
      scan_after.blocks_skipped - scan_before.blocks_skipped;
  result.diagnostics.seconds = timer.ElapsedSeconds();
  return result;
}

Result<QueryResult> RrrEngine::Solve(size_t k,
                                     const QueryOptions& query) const {
  RRR_RETURN_IF_ERROR(query.exec.CheckPreempted());
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  // One resolution per query: everything below — algorithm choice, memo
  // key, solver input — sees this one immutable version even if a writer
  // publishes a newer one mid-query.
  const std::shared_ptr<const PreparedDataset> snapshot =
      ResolveSnapshot(query);
  Algorithm algorithm;
  RRR_ASSIGN_OR_RETURN(algorithm, ResolveAlgorithm(*snapshot, k, query));

  if (!options_.memoize_results || !query.use_cache) {
    return RunAlgorithm(*snapshot, k, algorithm, query.exec);
  }

  Stopwatch timer;
  bool memo_hit = false;
  std::shared_ptr<const QueryResult> cached;
  RRR_ASSIGN_OR_RETURN(
      cached,
      result_cache_.GetOrCompute(
          ResultKey{snapshot->version(), k, algorithm}, query.exec, &memo_hit,
          [&] { return RunAlgorithm(*snapshot, k, algorithm, query.exec); }));
  QueryResult result = *cached;  // cached entries are immutable; copy out
  if (memo_hit) {
    // The counters describe the original computing run; re-stamp the
    // query-local facts.
    result.diagnostics.result_from_cache = true;
    result.diagnostics.reused_prepared_artifacts = true;
    result.diagnostics.seconds = timer.ElapsedSeconds();
  }
  return result;
}

Result<DualResult> RrrEngine::SolveDual(size_t max_size,
                                        const QueryOptions& query) const {
  RRR_RETURN_IF_ERROR(query.exec.CheckPreempted());
  if (max_size == 0) return Status::InvalidArgument("max_size must be >= 1");

  // Pin every probe to one snapshot resolved NOW: a version swap between
  // probes would otherwise binary-search over answers from different
  // datasets — the classic torn read.
  QueryOptions pinned = query;
  pinned.snapshot = ResolveSnapshot(query);

  // Binary search the smallest feasible k in [1, n] (Section 2's reduction:
  // log n calls to the primal solver). Every probe goes through Solve, so
  // probes share the prepared artifacts and land in the result memo.
  size_t lo = 1;
  size_t hi = pinned.snapshot->size();
  DualResult best;
  bool found = false;
  size_t exhausted_probes = 0;
  Stopwatch total_timer;
  while (lo <= hi) {
    RRR_RETURN_IF_ERROR(query.exec.CheckPreempted());
    const size_t mid = lo + (hi - lo) / 2;
    Result<QueryResult> probe = Solve(mid, pinned);
    DualProbe record;
    record.k = mid;
    if (!probe.ok() &&
        probe.status().code() == StatusCode::kResourceExhausted) {
      // The solver could not finish at this k (e.g. MDRC's node budget for
      // tiny k in high dimension): treat as infeasible and search upward.
      record.status = StatusCode::kResourceExhausted;
      best.probes.push_back(record);
      ++exhausted_probes;
      lo = mid + 1;
      continue;
    }
    if (!probe.ok()) return probe.status();
    QueryResult res = std::move(probe).value();
    record.algorithm_used = res.diagnostics.algorithm_used;
    record.seconds = res.diagnostics.seconds;
    record.representative_size = res.representative.size();
    record.from_cache = res.diagnostics.result_from_cache;
    record.feasible = res.representative.size() <= max_size;
    best.degraded |= res.diagnostics.degraded;
    if (!record.from_cache) {
      best.blocks_scanned += res.diagnostics.blocks_scanned;
      best.blocks_skipped += res.diagnostics.blocks_skipped;
    }
    best.probes.push_back(record);
    if (record.feasible) {
      best.k = mid;
      best.representative = std::move(res.representative);
      best.algorithm_used = res.diagnostics.algorithm_used;
      found = true;
      if (mid == 1) break;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  best.seconds = total_timer.ElapsedSeconds();
  if (!found) {
    if (!best.probes.empty() && exhausted_probes == best.probes.size()) {
      // Every probe died on the solver's own resource budget, so "no k met
      // the size budget" would misattribute the failure: the search never
      // saw a representative at all. Surface the real cause so callers can
      // raise the algorithm budget instead of the size budget.
      return Status::ResourceExhausted(
          "every probe of the dual binary search exhausted the solver's "
          "budget before producing a representative (raise the algorithm's "
          "resource limits, e.g. MdrcOptions::max_nodes)");
    }
    return Status::NotFound(
        "no k in [1, n] met the size budget with this algorithm");
  }
  return best;
}

Result<EvalReport> RrrEngine::Evaluate(
    const std::vector<int32_t>& representative, size_t k,
    const QueryOptions& query) const {
  RRR_RETURN_IF_ERROR(query.exec.CheckPreempted());
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  // Resolved once, like Solve: the audit must measure the representative
  // against one consistent version.
  const std::shared_ptr<const PreparedDataset> snapshot =
      ResolveSnapshot(query);

  EvalReport report;
  report.diagnostics.dataset_version = snapshot->version();
  Stopwatch timer;
  const topk::ScanStats scan_before = topk::ScanCountersSnapshot();
  if (snapshot->dims() == 2) {
    RRR_ASSIGN_OR_RETURN(
        report.rank_regret,
        SweepExactRankRegret2D(snapshot->dataset(), representative,
                               query.exec, snapshot->sweep()));
    report.exact = true;
    report.diagnostics.reused_prepared_artifacts = true;
  } else {
    std::shared_ptr<const CandidateIndex> candidates;
    RRR_ASSIGN_OR_RETURN(
        candidates,
        DegradableCandidateIndex(*snapshot, k, query.exec,
                                 &report.diagnostics.degraded));
    std::shared_ptr<const data::ColumnBlocks> blocks;
    RRR_ASSIGN_OR_RETURN(
        blocks, DegradableColumnBlocks(*snapshot, query.exec,
                                       &report.diagnostics.degraded));
    SampledRegretOptions sampled;
    sampled.num_functions = options_.eval_num_functions;
    sampled.seed = options_.eval_seed;
    sampled.threads = options_.defaults.threads;
    SampledRegretStats eval_stats;
    RRR_ASSIGN_OR_RETURN(
        report.rank_regret,
        SampledRankRegretEstimate(snapshot->dataset(), representative,
                                  sampled, query.exec, candidates.get(),
                                  &eval_stats, blocks.get()));
    report.exact = false;
    report.diagnostics.eval_functions_sampled = sampled.num_functions;
    // Without an index every rank scan runs on the mirror; with one, only
    // the certified-past-the-band fallbacks do.
    report.diagnostics.columnar_kernel =
        candidates == nullptr || eval_stats.full_scan_fallbacks > 0;
    if (candidates != nullptr) {
      report.diagnostics.skyband_size = candidates->band_size();
      report.diagnostics.skyband_scan_rows_saved =
          eval_stats.skyband_scans *
          (snapshot->size() - candidates->band_size());
    }
  }
  const topk::ScanStats scan_after = topk::ScanCountersSnapshot();
  report.diagnostics.blocks_scanned =
      scan_after.blocks_scanned - scan_before.blocks_scanned;
  report.diagnostics.blocks_skipped =
      scan_after.blocks_skipped - scan_before.blocks_skipped;
  report.within_k = report.rank_regret <= static_cast<int64_t>(k);
  report.diagnostics.seconds = timer.ElapsedSeconds();
  return report;
}

size_t RrrEngine::ApproxMemoBytes() const {
  size_t bytes = 0;
  result_cache_.ForEachReady(
      [&bytes](const ResultKey&, const QueryResult& result) {
        bytes += sizeof(ResultKey) + sizeof(QueryResult) +
                 result.representative.capacity() * sizeof(int32_t);
      });
  return bytes;
}

size_t RrrEngine::EvictMemos() const {
  const size_t freed = ApproxMemoBytes();
  result_cache_.Clear();
  return freed;
}

}  // namespace core
}  // namespace rrr
