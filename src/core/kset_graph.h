#ifndef RRR_CORE_KSET_GRAPH_H_
#define RRR_CORE_KSET_GRAPH_H_

#include "common/exec_context.h"
#include "common/result.h"
#include "core/kset.h"
#include "data/column_blocks.h"
#include "data/dataset.h"

namespace rrr {
namespace core {

class CandidateIndex;

/// Tuning for EnumerateKSetsGraph.
struct KSetGraphOptions {
  /// Abort with ResourceExhausted once this many k-sets are found
  /// (safety valve: the collection can be Theta(n^{d-eps}) large).
  size_t max_ksets = 1u << 20;
  /// Positivity tolerance for the separation LP.
  double lp_tolerance = 1e-7;
};

/// \brief Algorithm 6: exact k-set enumeration in any dimension via BFS over
/// the k-set graph (nodes are k-sets; edges join sets sharing k-1 items).
///
/// Starts from the top-k on the first attribute and, per Theorem 7 (the
/// k-set graph is connected), discovers all k-sets by swapping one member at
/// a time and validating candidates with the separation LP of Equation 4.
/// Cost is O(|S| * k * (n-k)) LP solves — faithful to the paper, which notes
/// it "does not scale beyond a few hundred items"; use SampleKSets (K-SETr)
/// for larger inputs.
///
/// Fails with InvalidArgument for k == 0 or k >= n (no hyperplane can leave
/// a proper complement), or ResourceExhausted past options.max_ksets.
/// Returns Cancelled/DeadlineExceeded (no partial collection) when `ctx`
/// preempts the BFS, which is checked before each candidate LP solve.
///
/// `candidates` (may be null; the legacy free-function path passes none and
/// keeps the local full scans) answers the seed top-k queries from the
/// shared TA/skyband index and restricts the swap-candidate loop to the
/// k-skyband. That restriction is exactly output-preserving: a k-set
/// containing a tuple with >= k always-outrankers can never pass the strict
/// separation LP (one of the outrankers is outside the set and scores at
/// least as high under every non-negative weight vector), so the skipped
/// candidates were doomed LP rejections. Must be built over `dataset` with
/// candidates->k() >= k. `blocks` (may be null, must mirror `dataset`)
/// routes the unpruned seed top-k scans through the blocked scoring kernel.
Result<KSetCollection> EnumerateKSetsGraph(
    const data::Dataset& dataset, size_t k,
    const KSetGraphOptions& options = {}, const ExecContext& ctx = {},
    const CandidateIndex* candidates = nullptr,
    const data::ColumnBlocks* blocks = nullptr);

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_KSET_GRAPH_H_
