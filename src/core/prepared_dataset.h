#ifndef RRR_CORE_PREPARED_DATASET_H_
#define RRR_CORE_PREPARED_DATASET_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/version.h"
#include "core/candidate_index.h"
#include "core/kset_sampler.h"
#include "core/mdrc.h"
#include "core/sweep.h"
#include "data/column_blocks.h"
#include "data/dataset.h"

namespace rrr {
namespace core {

namespace internal {

/// \brief One compute-once slot with in-flight waiting and failure retry.
///
/// Concurrent GetOrCompute callers block (in 10 ms polls, honoring their
/// own ExecContext) while one thread computes; a failed compute clears the
/// slot so a later call retries. That retry matters for preemption: a
/// Cancelled/DeadlineExceeded compute is the *caller's* failure, and must
/// not poison the cache for callers with laxer budgets.
template <typename V>
class LazyCell {
 public:
  /// `compute` is a callable returning Result<V>, invoked at most once
  /// concurrently. On success every caller shares one immutable value;
  /// `cache_hit` (may be null) reports whether this call found it ready.
  /// Seeds the slot with an already-computed value; later GetOrCompute
  /// callers share it as a hit. Only valid before any compute started
  /// (the versioned-update path seeds incrementally-maintained artifacts
  /// at construction, when the cell is necessarily idle).
  void Put(V value) {
    MutexLock lock(mu_);
    RRR_CHECK(state_ == State::kIdle)
        << "LazyCell::Put on a cell that already computed";
    value_ = std::make_shared<const V>(std::move(value));
    state_ = State::kReady;
    cv_.NotifyAll();
  }

  /// The value if already computed (or Put), else null — never triggers or
  /// waits for a compute. The dynamic-update layer peeks so an update only
  /// maintains artifacts that some query actually paid for.
  std::shared_ptr<const V> Peek() const {
    MutexLock lock(mu_);
    return state_ == State::kReady ? value_ : nullptr;
  }

  /// \brief Evictable-cell protocol: drops a ready value so the next
  /// GetOrCompute recomputes it. Returns true iff a value was dropped.
  ///
  /// Safe against in-flight readers — they hold the value by shared_ptr,
  /// so eviction only severs the cell's reference; the artifact stays
  /// alive until the last query using it finishes. A kComputing cell is
  /// left alone (the computing caller will publish into it normally); an
  /// idle cell has nothing to drop. Deterministic compute makes the
  /// recompute bit-identical to the evicted value.
  bool Evict() {
    MutexLock lock(mu_);
    if (state_ != State::kReady) return false;
    value_.reset();
    state_ = State::kIdle;
    return true;
  }

  template <typename Fn>
  Result<std::shared_ptr<const V>> GetOrCompute(const ExecContext& ctx,
                                                bool* cache_hit,
                                                Fn&& compute) {
    // Explicitly balanced lock/unlock rather than RAII: the capability
    // must be dropped across the compute() call, which a scoped lock
    // cannot express to the analysis.
    mu_.lock();
    for (;;) {
      if (state_ == State::kReady) {
        std::shared_ptr<const V> value = value_;
        mu_.unlock();
        if (cache_hit != nullptr) *cache_hit = true;
        return value;
      }
      if (state_ == State::kIdle) break;
      // Someone else is computing: wait for them, but keep honoring our
      // own cancellation/deadline (they may be laxer than ours).
      cv_.WaitFor(mu_, std::chrono::milliseconds(10));
      const Status preempted = ctx.CheckPreempted();
      if (!preempted.ok()) {
        mu_.unlock();
        return preempted;
      }
    }
    state_ = State::kComputing;
    mu_.unlock();
    // The failpoint models compute() dying mid-build; it must sit inside
    // the computing window so the failure path below restores kIdle and
    // wakes waiters (an early return here would leave them polling a slot
    // nobody owns).
    Result<V> computed = [&]() -> Result<V> {
      RRR_FAILPOINT("core.lazycell.compute");
      return compute();
    }();
    mu_.lock();
    if (!computed.ok()) {
      state_ = State::kIdle;  // let a later (or concurrent) caller retry
      cv_.NotifyAll();
      mu_.unlock();
      return computed.status();
    }
    std::shared_ptr<const V> value =
        std::make_shared<const V>(std::move(computed).value());
    value_ = value;
    state_ = State::kReady;
    cv_.NotifyAll();
    mu_.unlock();
    if (cache_hit != nullptr) *cache_hit = false;
    return value;
  }

 private:
  enum class State { kIdle, kComputing, kReady };
  mutable Mutex mu_;
  CondVar cv_;
  State state_ RRR_GUARDED_BY(mu_) = State::kIdle;
  std::shared_ptr<const V> value_ RRR_GUARDED_BY(mu_);
};

/// \brief Keyed collection of LazyCells with an entry cap: past the cap,
/// new keys compute without being cached (bounded memory, never wrong).
template <typename K, typename V, typename Hash = std::hash<K>>
class KeyedLazyCache {
 public:
  explicit KeyedLazyCache(size_t max_entries) : max_entries_(max_entries) {}

  template <typename Fn>
  Result<std::shared_ptr<const V>> GetOrCompute(const K& key,
                                                const ExecContext& ctx,
                                                bool* cache_hit,
                                                Fn&& compute) {
    std::shared_ptr<LazyCell<V>> cell;
    {
      MutexLock lock(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        cell = it->second;
      } else if (map_.size() < max_entries_) {
        cell = std::make_shared<LazyCell<V>>();
        map_.emplace(key, cell);
      }
    }
    if (cell == nullptr) {  // cache at capacity: compute uncached
      Result<V> computed = compute();
      if (!computed.ok()) return computed.status();
      if (cache_hit != nullptr) *cache_hit = false;
      return std::make_shared<const V>(std::move(computed).value());
    }
    return cell->GetOrCompute(ctx, cache_hit, std::forward<Fn>(compute));
  }

  size_t entries() const {
    MutexLock lock(mu_);
    return map_.size();
  }

  /// Drops the cell for `key`, so the next GetOrCompute recomputes it.
  /// Callers already waiting on the dropped cell finish against it
  /// unaffected; they just no longer share with future callers.
  void Invalidate(const K& key) {
    MutexLock lock(mu_);
    map_.erase(key);
  }

  /// Drops every cell (the keyed form of LazyCell::Evict); in-flight
  /// callers keep their cells by shared_ptr and finish unaffected.
  void Clear() {
    std::unordered_map<K, std::shared_ptr<LazyCell<V>>, Hash> dropped;
    MutexLock lock(mu_);
    dropped.swap(map_);
  }

  /// Invokes `fn(key, value)` for every cell whose value is ready —
  /// the size-accounting walk. Cells are snapshotted under the lock and
  /// peeked outside it, so fn never runs while the map mutex is held.
  template <typename Fn>
  void ForEachReady(Fn&& fn) const {
    std::vector<std::pair<K, std::shared_ptr<LazyCell<V>>>> cells;
    {
      MutexLock lock(mu_);
      cells.reserve(map_.size());
      for (const auto& kv : map_) cells.emplace_back(kv.first, kv.second);
    }
    for (const auto& kv : cells) {
      std::shared_ptr<const V> value = kv.second->Peek();
      if (value != nullptr) fn(kv.first, *value);
    }
  }

 private:
  mutable Mutex mu_;
  size_t max_entries_;  // immutable after construction
  std::unordered_map<K, std::shared_ptr<LazyCell<V>>, Hash> map_
      RRR_GUARDED_BY(mu_);
};

}  // namespace internal

/// \brief Immutable prepared form of a dataset: validated once, owning the
/// expensive artifacts that are pure functions of the data so every query
/// against it — any k, any algorithm, any thread — shares them.
///
/// Owned artifacts:
///  - the validated (non-empty, all-finite) dataset itself;
///  - for d == 2, the AngularSweep (initial ranked order) behind FindRanges
///    and the exact evaluator, built once instead of per call;
///  - lazily-materialized shared caches: the skyline prefilter, the
///    convex-maxima LP results (the exact k = 1 representative), K-SETr
///    samples keyed by (k, sampler options), and the MDRC corner-top-k
///    memo keyed by (k, corner angles).
///
/// All methods are safe to call concurrently; laziness is internal
/// (compute-once slots with in-flight waiting). A preempted lazy compute
/// (Cancelled/DeadlineExceeded) is not cached — the next caller retries.
///
/// Construction is via Create (shared_ptr, so RrrEngine instances and
/// long-lived callers can share one prepared dataset); the object is
/// immutable from the caller's perspective thereafter.
class PreparedDataset {
 public:
  struct Options {
    /// Cap on the shared MDRC corner-top-k memo, counted in stored corners
    /// across every k (same meaning as MdrcOptions::max_cache_entries).
    size_t max_corner_cache_entries = size_t{1} << 21;
    /// Cap on distinct (k, sampler-options) K-SETr samples kept alive.
    size_t max_kset_cache_entries = 64;
    /// Build policy for the shared k-skyband candidate indexes (decline
    /// thresholds and the dominance-count work budget); `threads` inside is
    /// superseded by the per-call thread budget of SharedCandidateIndex.
    CandidateIndexOptions candidate;
    /// Cap on distinct per-k candidate indexes kept alive.
    size_t max_candidate_cache_entries = 64;
  };

  /// \brief Pre-built artifacts handed to CreateVersioned by the
  /// dynamic-update layer (core/dataset_updates.h), so a new version starts
  /// life with incrementally-maintained state instead of recomputing from
  /// scratch on first query.
  ///
  /// Everything here must be a pure function of the new dataset — the seed
  /// changes first-query cost, never any result. `blocks`, when non-null,
  /// is a mirror of exactly the new dataset's rows (possibly masked or
  /// appended-to; its source pointer is rebound to the prepared copy).
  /// `counts`, when non-null, are always-outranker counts capped at
  /// `counts_cap` (the CandidateIndex::CountAlwaysOutrankers contract).
  struct UpdateSeed {
    /// Version token of the new dataset state; must be assigned().
    DatasetVersion version;
    std::unique_ptr<data::ColumnBlocks> blocks;
    size_t counts_cap = 0;
    std::shared_ptr<const std::vector<uint32_t>> counts;
  };

  /// Validates `dataset` (non-empty, every cell finite — InvalidArgument
  /// otherwise) and takes ownership. For d == 2 also builds the shared
  /// angular sweep (O(n log n)). Data is assumed already normalized
  /// higher-is-better, as every solver requires. The prepared dataset gets
  /// a fresh version token (its own lineage, ordinal 0).
  static Result<std::shared_ptr<const PreparedDataset>> Create(
      data::Dataset dataset, const Options& options);
  static Result<std::shared_ptr<const PreparedDataset>> Create(
      data::Dataset dataset) {
    return Create(std::move(dataset), Options());
  }

  /// Create for the dynamic-update layer: the new version carries the
  /// token and the incrementally-maintained artifacts in `seed`. Identical
  /// to Create in every query-visible way.
  static Result<std::shared_ptr<const PreparedDataset>> CreateVersioned(
      data::Dataset dataset, const Options& options, UpdateSeed seed);

  const data::Dataset& dataset() const { return data_; }
  size_t size() const { return data_.size(); }
  size_t dims() const { return data_.dims(); }

  /// This dataset state's identity token — the engine's memo key
  /// component. Distinct row states never share a token.
  DatasetVersion version() const { return version_; }

  /// Shared sweep artifacts; non-null iff dims() == 2.
  const AngularSweep* sweep() const { return sweep_.get(); }

  /// \brief Shared columnar mirror of the dataset (data/column_blocks.h),
  /// built lazily once — one O(n d) transpose — and handed by the engine to
  /// every scoring hot path (corner top-k scans, sampler draws, endpoint
  /// patches, evaluator rank scans) so they run through the blocked scoring
  /// kernel (topk/score_kernel.h). Results are bit-identical with and
  /// without the mirror; only throughput changes. `threads` fans the
  /// transpose out on the first call.
  Result<std::shared_ptr<const data::ColumnBlocks>> SharedColumnBlocks(
      size_t threads = 0, const ExecContext& ctx = {},
      bool* cache_hit = nullptr) const;

  /// The shared mirror if some query already built it (or the update seed
  /// carried it), else null — never builds. The dynamic-update layer peeks
  /// so updates only maintain artifacts queries actually paid for.
  std::shared_ptr<const data::ColumnBlocks> MaybeColumnBlocks() const {
    return column_blocks_.Peek();
  }

  /// The cached always-outranker counts and their cap (0 when no candidate
  /// build has computed counts yet). The dynamic-update layer reads these
  /// to maintain them incrementally across versions.
  std::pair<size_t, std::shared_ptr<const std::vector<uint32_t>>>
  CandidateCountsSnapshot() const {
    MutexLock lock(candidate_counts_mu_);
    return {candidate_counts_.cap, candidate_counts_.counts};
  }

  /// Skyline ids (lazy, memoized; the prefilter for the convex-maxima
  /// solve and a useful standalone summary).
  Result<std::shared_ptr<const std::vector<int32_t>>> SharedSkyline(
      const ExecContext& ctx = {}, bool* cache_hit = nullptr) const;

  /// Exact order-1 representative (skyline prefilter + per-candidate
  /// separation LPs), lazy and memoized — the convex-maxima LP results
  /// cache. `threads` fans the LPs out on the *first* call.
  Result<std::shared_ptr<const std::vector<int32_t>>> SharedConvexMaxima(
      size_t threads, const ExecContext& ctx = {},
      bool* cache_hit = nullptr) const;

  /// K-SETr sample for (k, options), computed once and shared across
  /// queries (keyed by k plus every option that affects the sampled
  /// collection: seed, termination_count, max_samples — `threads` and the
  /// query-strategy flags don't, by the sampler's invariance contracts).
  /// `candidates` (may be null) is handed to SampleKSets on a cache miss;
  /// it does not key the cache because the sampled collection is
  /// bit-identical with and without it.
  Result<std::shared_ptr<const KSetSampleResult>> SharedKSets(
      size_t k, const KSetSamplerOptions& options, const ExecContext& ctx = {},
      bool* cache_hit = nullptr,
      const CandidateIndex* candidates = nullptr) const;

  /// Shared MDRC corner-top-k memo (pass to SolveMdrc).
  CornerTopKCache* corner_cache() const { return corner_cache_.get(); }

  /// \brief Shared k-skyband candidate index for rank budget `k`
  /// (core/candidate_index.h), computed once per k and shared by every
  /// top-k hot path of the engine (MDRC corners, K-SETr draws, the 2D
  /// sweep, the sampled evaluator).
  ///
  /// Returns a null pointer — not an error — when the build declined
  /// (small dataset, near-full band, or over-budget dominance count; see
  /// CandidateIndexOptions); callers then run unpruned, with bit-identical
  /// results either way. The underlying dominance counts are monotone in k
  /// (the (k+1)-band contains the k-band), so the largest computed count
  /// vector is cached and sliced for every smaller k instead of recounting.
  ///
  /// `threads` fans the dominance count out on the first call for a given
  /// k; like every shared artifact, the result is identical for every
  /// thread count.
  Result<std::shared_ptr<const CandidateIndex>> SharedCandidateIndex(
      size_t k, size_t threads = 0, const ExecContext& ctx = {},
      bool* cache_hit = nullptr) const;

  /// \brief Approximate heap footprint of the dataset and its shared
  /// artifact caches, broken down per artifact family — the size signal
  /// behind the service layer's memory budget. Estimates (capacity-based
  /// upper bounds), not an allocation census.
  struct ArtifactBytes {
    size_t dataset = 0;        // the validated rows themselves
    size_t column_blocks = 0;  // lazy columnar mirror
    size_t skyline = 0;
    size_t convex_maxima = 0;
    size_t ksets = 0;           // K-SETr sample cache, every key
    size_t candidates = 0;      // per-k candidate indexes, every key
    size_t corner_topk = 0;     // MDRC corner memo
    size_t candidate_counts = 0;

    /// Bytes EvictSharedArtifacts can free (everything but the dataset).
    size_t evictable() const {
      return column_blocks + skyline + convex_maxima + ksets + candidates +
             corner_topk + candidate_counts;
    }
    size_t total() const { return dataset + evictable(); }
  };

  /// Current footprint snapshot; safe to call concurrently with queries.
  ArtifactBytes ApproxArtifactBytes() const;

  /// \brief Sheds every shared artifact cache (evictable-cell protocol):
  /// ready lazy cells revert to idle, keyed caches and the corner memo are
  /// emptied, cached candidate counts are dropped. The dataset itself (and
  /// the d == 2 sweep, which is construction-owned) stay.
  ///
  /// Returns the approximate bytes freed. Never races an in-flight query:
  /// queries hold artifacts by shared_ptr, so eviction only severs the
  /// cache references — the next query recomputes, bit-identically (every
  /// artifact is a deterministic pure function of the data).
  size_t EvictSharedArtifacts() const;

 private:
  struct KSetKey {
    size_t k;
    uint64_t seed;
    size_t termination_count;
    size_t max_samples;
    bool operator==(const KSetKey& other) const {
      return k == other.k && seed == other.seed &&
             termination_count == other.termination_count &&
             max_samples == other.max_samples;
    }
  };
  struct KSetKeyHash {
    size_t operator()(const KSetKey& key) const;
  };

  /// Cached outcome of one per-k candidate-index build; `index` is null
  /// for a declined build (negative caching — the decline is as shareable
  /// as the index). `built_from_counts` records whether the cached counts
  /// fed the build: a counts-less decline is invalidated and retried once
  /// a larger-k build has paid for counts that cover it (the slice path
  /// then skips the pre-check and budget entirely).
  struct CandidateSlot {
    std::shared_ptr<const CandidateIndex> index;
    bool built_from_counts = false;
  };

  /// Always-outranker counts from the largest successful build, capped at
  /// `cap` = that build's min(k, n); any k <= cap slices these instead of
  /// recounting. (Counts capped at a smaller cap cannot be extended —
  /// saturated rows lose their exact values — so ascending-k query
  /// patterns recount per k, each recount budget-bounded by the build
  /// policy; descending patterns slice for free.)
  struct CandidateCounts {
    size_t cap = 0;
    std::shared_ptr<const std::vector<uint32_t>> counts;
  };

  PreparedDataset(data::Dataset dataset, const Options& options,
                  DatasetVersion version);

  data::Dataset data_;
  Options options_;
  DatasetVersion version_;
  std::unique_ptr<AngularSweep> sweep_;  // d == 2 only
  std::unique_ptr<CornerTopKCache> corner_cache_;
  mutable internal::LazyCell<data::ColumnBlocks> column_blocks_;
  mutable internal::LazyCell<std::vector<int32_t>> skyline_;
  mutable internal::LazyCell<std::vector<int32_t>> convex_maxima_;
  mutable internal::KeyedLazyCache<KSetKey, KSetSampleResult, KSetKeyHash>
      kset_cache_;
  mutable internal::KeyedLazyCache<size_t, CandidateSlot> candidate_cache_;
  mutable Mutex candidate_counts_mu_;
  mutable CandidateCounts candidate_counts_
      RRR_GUARDED_BY(candidate_counts_mu_);
};

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_PREPARED_DATASET_H_
