#include "core/find_ranges.h"

#include <memory>

#include "core/sweep.h"
#include "geometry/angles.h"

namespace rrr {
namespace core {

Result<std::vector<ItemRange>> FindRanges(const data::Dataset& dataset,
                                          size_t k, const ExecContext& ctx,
                                          const AngularSweep* sweep) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  if (dataset.dims() != 2) {
    return Status::InvalidArgument("FindRanges requires a 2D dataset");
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  const size_t n = dataset.size();
  std::vector<ItemRange> ranges(n);
  if (n == 0) return ranges;

  std::unique_ptr<AngularSweep> own_sweep;
  if (sweep == nullptr) {
    own_sweep = std::make_unique<AngularSweep>(dataset);
    sweep = own_sweep.get();
  }
  const auto& order = sweep->InitialOrder();
  const size_t kk = std::min(k, n);

  // Items in the top-k at theta = 0 start their range there.
  std::vector<char> in_topk_now(n, 0);
  for (size_t i = 0; i < kk; ++i) {
    const auto id = static_cast<size_t>(order[i]);
    ranges[id].in_topk = true;
    ranges[id].begin = 0.0;
    in_topk_now[id] = 1;
  }

  PreemptionGate gate(ctx, 1024);
  if (kk < n) {
    sweep->Run([&](const SweepEvent& ev) {
      if (gate.Preempted()) return false;
      if (ev.upper_position == kk) {
        // ev.item_up enters the top-k, ev.item_down leaves it.
        const auto up = static_cast<size_t>(ev.item_up);
        const auto down = static_cast<size_t>(ev.item_down);
        if (!ranges[up].in_topk) {
          ranges[up].in_topk = true;
          ranges[up].begin = ev.angle;
        }
        in_topk_now[up] = 1;
        if (ranges[down].begin == ev.angle) {
          // Entered and left at the same angle: a transient visitor of an
          // equal-angle tie cascade. Its net range is empty — drop it so a
          // zero-width phantom interval can never be picked as a cover.
          ranges[down].in_topk = false;
        } else {
          ranges[down].end = ev.angle;  // overwritten on re-entry/re-exit
        }
        in_topk_now[down] = 0;
      }
      return true;
    });
  }
  RRR_RETURN_IF_ERROR(gate.status());

  // Items still in the top-k at theta = pi/2 extend to the end.
  for (size_t id = 0; id < n; ++id) {
    if (in_topk_now[id]) ranges[id].end = geometry::kHalfPi;
  }
  return ranges;
}

}  // namespace core
}  // namespace rrr
