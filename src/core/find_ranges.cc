#include "core/find_ranges.h"

#include <algorithm>
#include <memory>

#include "core/candidate_index.h"
#include "core/sweep.h"
#include "geometry/angles.h"

namespace rrr {
namespace core {

Result<std::vector<ItemRange>> FindRanges(const data::Dataset& dataset,
                                          size_t k, const ExecContext& ctx,
                                          const AngularSweep* sweep,
                                          const CandidateIndex* candidates) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  if (dataset.dims() != 2) {
    return Status::InvalidArgument("FindRanges requires a 2D dataset");
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  const size_t n = dataset.size();
  if (n == 0) return std::vector<ItemRange>();
  const size_t kk = std::min(k, n);

  // The sweep runs over the k-skyband when an index is available: the
  // boundary exchanges are identical (only band members ever cross the
  // top-k border, at the same exchange angles), so the per-item ranges
  // match the full sweep bit for bit while E shrinks to O(band^2).
  const data::Dataset* work = &dataset;
  if (candidates != nullptr) {
    RRR_CHECK(candidates->full_dataset() == &dataset)
        << "CandidateIndex built over a different dataset";
    RRR_CHECK(candidates->k() >= kk)
        << "CandidateIndex band too small for this k";
    RRR_CHECK(candidates->band_sweep() != nullptr)
        << "CandidateIndex over 2D data is missing its band sweep";
    work = &candidates->band();
    sweep = candidates->band_sweep();
  }
  std::unique_ptr<AngularSweep> own_sweep;
  if (sweep == nullptr) {
    own_sweep = std::make_unique<AngularSweep>(dataset);
    sweep = own_sweep.get();
  }
  const size_t m = work->size();  // kk <= m: the band contains every top-k
  std::vector<ItemRange> local(m);
  const auto& order = sweep->InitialOrder();

  // Items in the top-k at theta = 0 start their range there.
  std::vector<char> in_topk_now(m, 0);
  for (size_t i = 0; i < kk; ++i) {
    const auto id = static_cast<size_t>(order[i]);
    local[id].in_topk = true;
    local[id].begin = 0.0;
    in_topk_now[id] = 1;
  }

  PreemptionGate gate(ctx, 1024);
  if (kk < m) {
    sweep->Run([&](const SweepEvent& ev) {
      if (gate.Preempted()) return false;
      if (ev.upper_position == kk) {
        // ev.item_up enters the top-k, ev.item_down leaves it.
        const auto up = static_cast<size_t>(ev.item_up);
        const auto down = static_cast<size_t>(ev.item_down);
        if (!local[up].in_topk) {
          local[up].in_topk = true;
          local[up].begin = ev.angle;
        }
        in_topk_now[up] = 1;
        if (local[down].begin == ev.angle) {
          // Entered and left at the same angle: a transient visitor of an
          // equal-angle tie cascade. Its net range is empty — drop it so a
          // zero-width phantom interval can never be picked as a cover.
          local[down].in_topk = false;
        } else {
          local[down].end = ev.angle;  // overwritten on re-entry/re-exit
        }
        in_topk_now[down] = 0;
      }
      return true;
    });
  }
  RRR_RETURN_IF_ERROR(gate.status());

  // Items still in the top-k at theta = pi/2 extend to the end.
  for (size_t id = 0; id < m; ++id) {
    if (in_topk_now[id]) local[id].end = geometry::kHalfPi;
  }

  if (candidates == nullptr) return local;
  // Scatter band-local results back to original ids; pruned items keep the
  // default never-in-top-k range, which is exactly what the full sweep
  // reports for them.
  std::vector<ItemRange> ranges(n);
  for (size_t r = 0; r < m; ++r) {
    ranges[static_cast<size_t>(candidates->band_ids()[r])] = local[r];
  }
  return ranges;
}

}  // namespace core
}  // namespace rrr
