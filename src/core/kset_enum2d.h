#ifndef RRR_CORE_KSET_ENUM2D_H_
#define RRR_CORE_KSET_ENUM2D_H_

#include "common/result.h"
#include "core/kset.h"
#include "data/dataset.h"

namespace rrr {
namespace core {

/// \brief Exact 2D k-set enumeration by following the k-border during the
/// angular sweep (Section 6.2 and Appendix B).
///
/// The sweep starts from the top-k at theta = 0 and records a new k-set at
/// every exchange across the k/k+1 boundary; by Lemma 5 this visits every
/// k-set exactly once (under general position). O(E log n) where E is the
/// total number of rank exchanges.
///
/// Fails with InvalidArgument unless dims == 2 and k >= 1; cannot fail
/// otherwise (no LP is involved on the 2D path).
Result<KSetCollection> EnumerateKSets2D(const data::Dataset& dataset,
                                        size_t k);

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_KSET_ENUM2D_H_
