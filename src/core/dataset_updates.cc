#include "core/dataset_updates.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/mutex.h"
#include "core/candidate_index.h"
#include "data/column_blocks.h"

namespace rrr {
namespace core {

namespace {

/// `appended_from` sentinel in PublishNext: this update is a delete.
constexpr size_t kNoAppend = std::numeric_limits<size_t>::max();

}  // namespace

Result<std::vector<uint32_t>> ExtendOutrankerCountsForAppend(
    const data::Dataset& grown, size_t old_rows, size_t cap,
    const std::vector<uint32_t>& old_counts, const ExecContext& ctx) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  const size_t n = grown.size();
  const size_t d = grown.dims();
  if (old_rows > n) {
    return Status::InvalidArgument(
        "ExtendOutrankerCountsForAppend: old_rows exceeds the grown size");
  }
  if (old_counts.size() != old_rows) {
    return Status::InvalidArgument(
        "ExtendOutrankerCountsForAppend: counts size mismatches old_rows");
  }
  if (cap == 0) return Status::InvalidArgument("cap must be >= 1");
  const uint32_t capped = static_cast<uint32_t>(std::min(cap, n));

  std::vector<uint32_t> counts(old_counts);
  counts.resize(n, 0);
  for (size_t i = old_rows; i < n; ++i) {
    RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
    const double* i_row = grown.row(i);
    const int32_t i_id = static_cast<int32_t>(i);
    uint32_t mine = 0;
    for (size_t j = 0; j < i; ++j) {
      const double* j_row = grown.row(j);
      const int32_t j_id = static_cast<int32_t>(j);
      // The appended row has the larger id, so it only outranks an earlier
      // row via the strict arm of the predicate — which is why an existing
      // exact count can only grow, never needs recounting.
      if (counts[j] < capped && AlwaysOutranks(i_row, i_id, j_row, j_id, d)) {
        ++counts[j];
      }
      if (mine < capped && AlwaysOutranks(j_row, j_id, i_row, i_id, d)) {
        ++mine;
      }
    }
    counts[i] = mine;
  }
  return counts;
}

Result<ShrinkCountsOutcome> ShrinkOutrankerCountsForDelete(
    const data::Dataset& old_data, size_t deleted_id, size_t cap,
    const std::vector<uint32_t>& old_counts, size_t max_recounts,
    const ExecContext& ctx) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  const size_t n = old_data.size();
  const size_t d = old_data.dims();
  if (n < 2) {
    return Status::InvalidArgument(
        "ShrinkOutrankerCountsForDelete: need at least two rows");
  }
  if (deleted_id >= n) {
    return Status::InvalidArgument(
        "ShrinkOutrankerCountsForDelete: deleted_id out of range");
  }
  if (old_counts.size() != n) {
    return Status::InvalidArgument(
        "ShrinkOutrankerCountsForDelete: counts size mismatches the dataset");
  }
  if (cap == 0) return Status::InvalidArgument("cap must be >= 1");
  // Old counts saturate at min(cap, n); the compacted dataset's saturate at
  // min(cap, n - 1) — the value a fresh count over it would use.
  const uint32_t capped_old = static_cast<uint32_t>(std::min(cap, n));
  const uint32_t capped_new = static_cast<uint32_t>(std::min(cap, n - 1));
  const double* deleted_row = old_data.row(deleted_id);
  const int32_t deleted = static_cast<int32_t>(deleted_id);

  ShrinkCountsOutcome out;
  out.maintained = true;
  out.counts.reserve(n - 1);
  for (size_t j = 0; j < n; ++j) {
    if (j == deleted_id) continue;
    if ((j & 255) == 0) RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
    const double* j_row = old_data.row(j);
    const int32_t j_id = static_cast<int32_t>(j);
    uint32_t c = old_counts[j];
    // Survivor pairs keep their relative id order under compaction, so
    // their pairwise relations — and therefore this row's count — change
    // only by the deleted row's own contribution.
    if (AlwaysOutranks(deleted_row, deleted, j_row, j_id, d)) {
      if (c < capped_old) {
        RRR_DCHECK(c > 0) << "a counted outranker vanished from an exact "
                             "count of zero";
        --c;
      } else {
        // Saturated: the true count is only known to be >= capped_old, so
        // losing one outranker forces a recount — early-exited at the new
        // cap, and bounded in number by the locality budget.
        if (out.recounts == max_recounts) {
          out.maintained = false;
          out.counts.clear();
          return out;
        }
        ++out.recounts;
        c = 0;
        for (size_t i = 0; i < n && c < capped_new; ++i) {
          if (i == j || i == deleted_id) continue;
          if (AlwaysOutranks(old_data.row(i), static_cast<int32_t>(i), j_row,
                             j_id, d)) {
            ++c;
          }
        }
      }
    }
    out.counts.push_back(c);
  }
  return out;
}

DynamicDataset::DynamicDataset(
    std::shared_ptr<const PreparedDataset> initial,
    DynamicDatasetOptions options)
    : options_(std::move(options)), current_(std::move(initial)) {}

Result<std::shared_ptr<DynamicDataset>> DynamicDataset::Create(
    data::Dataset initial, DynamicDatasetOptions options) {
  std::shared_ptr<const PreparedDataset> prepared;
  RRR_ASSIGN_OR_RETURN(
      prepared, PreparedDataset::Create(std::move(initial), options.prepared));
  return std::shared_ptr<DynamicDataset>(
      new DynamicDataset(std::move(prepared), std::move(options)));
}

std::shared_ptr<const PreparedDataset> DynamicDataset::Snapshot() const {
  MutexLock lock(mu_);
  return current_;
}

Result<DatasetVersion> DynamicDataset::Insert(const std::vector<double>& row,
                                              const ExecContext& ctx) {
  return BatchAppend({row}, ctx);
}

Result<DatasetVersion> DynamicDataset::BatchAppend(
    const std::vector<std::vector<double>>& rows, const ExecContext& ctx) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  MutexLock writer(writer_mu_);
  const std::shared_ptr<const PreparedDataset> base = Snapshot();
  if (rows.empty()) return base->version();
  const size_t d = base->dims();
  for (const std::vector<double>& row : rows) {
    if (row.size() != d) {
      return Status::InvalidArgument("appended row dimension mismatch");
    }
  }
  const size_t old_rows = base->size();
  std::vector<double> cells;
  cells.reserve((old_rows + rows.size()) * d);
  cells.assign(base->dataset().flat(),
               base->dataset().flat() + old_rows * d);
  for (const std::vector<double>& row : rows) {
    cells.insert(cells.end(), row.begin(), row.end());
  }
  return PublishNext(base, std::move(cells), old_rows + rows.size(),
                     old_rows, 0, ctx);
}

Result<DatasetVersion> DynamicDataset::Delete(int32_t id,
                                              const ExecContext& ctx) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  MutexLock writer(writer_mu_);
  const std::shared_ptr<const PreparedDataset> base = Snapshot();
  const size_t n = base->size();
  if (id < 0 || static_cast<size_t>(id) >= n) {
    return Status::InvalidArgument("delete id out of range");
  }
  if (n == 1) {
    return Status::InvalidArgument(
        "deleting the last row would leave an empty dataset");
  }
  const size_t d = base->dims();
  const size_t deleted = static_cast<size_t>(id);
  const double* flat = base->dataset().flat();
  std::vector<double> cells;
  cells.reserve((n - 1) * d);
  cells.insert(cells.end(), flat, flat + deleted * d);
  cells.insert(cells.end(), flat + (deleted + 1) * d, flat + n * d);
  return PublishNext(base, std::move(cells), n - 1, kNoAppend, deleted, ctx);
}

Result<DatasetVersion> DynamicDataset::PublishNext(
    const std::shared_ptr<const PreparedDataset>& base,
    std::vector<double> cells, size_t new_rows, size_t appended_from,
    size_t deleted_id, const ExecContext& ctx) {
  const size_t d = base->dims();
  data::Dataset grown;
  RRR_ASSIGN_OR_RETURN(
      grown, data::Dataset::FromFlat(std::move(cells), new_rows, d,
                                     base->dataset().column_names()));
  // Fail before any maintenance work: a bad batch must leave the current
  // version untouched, and the predicates below assume finite values.
  RRR_RETURN_IF_ERROR(grown.CheckFinite());

  PreparedDataset::UpdateSeed seed;
  const DatasetVersion version{base->version().origin,
                               base->version().ordinal + 1};
  seed.version = version;

  if (options_.incremental_artifacts) {
    // Peek, never build: an update only maintains artifacts some query
    // already paid for. Every branch below is cost-only — the new version
    // answers bit-identically with or without the seed.
    const std::shared_ptr<const data::ColumnBlocks> base_blocks =
        base->MaybeColumnBlocks();
    const std::pair<size_t, std::shared_ptr<const std::vector<uint32_t>>>
        base_counts = base->CandidateCountsSnapshot();
    if (appended_from != kNoAppend) {
      if (base_blocks != nullptr) {
        data::ColumnBlocks grown_blocks;
        RRR_ASSIGN_OR_RETURN(
            grown_blocks,
            data::ColumnBlocks::BuildAppended(*base_blocks, grown, ctx));
        seed.blocks =
            std::make_unique<data::ColumnBlocks>(std::move(grown_blocks));
      }
      if (base_counts.first > 0 && base_counts.second != nullptr) {
        std::vector<uint32_t> extended;
        RRR_ASSIGN_OR_RETURN(
            extended,
            ExtendOutrankerCountsForAppend(grown, appended_from,
                                           base_counts.first,
                                           *base_counts.second, ctx));
        seed.counts_cap = base_counts.first;
        seed.counts = std::make_shared<const std::vector<uint32_t>>(
            std::move(extended));
      }
    } else {
      if (base_blocks != nullptr) {
        data::ColumnBlocks masked;
        RRR_ASSIGN_OR_RETURN(masked,
                             base_blocks->WithoutRow(&grown, deleted_id));
        // Compaction decision point: past the dead-lane threshold the
        // masked mirror is abandoned and the next query re-transposes
        // densely, instead of every scan wading through dead tiles.
        if (masked.dead_fraction() <= options_.max_dead_fraction) {
          seed.blocks =
              std::make_unique<data::ColumnBlocks>(std::move(masked));
        }
      }
      if (base_counts.first > 0 && base_counts.second != nullptr) {
        ShrinkCountsOutcome shrunk;
        RRR_ASSIGN_OR_RETURN(
            shrunk, ShrinkOutrankerCountsForDelete(
                        base->dataset(), deleted_id, base_counts.first,
                        *base_counts.second, options_.max_delete_recounts,
                        ctx));
        // Locality bound exceeded: drop the counts; the next candidate
        // build recounts from scratch (full-rebuild fallback).
        if (shrunk.maintained) {
          seed.counts_cap = std::min(base_counts.first, new_rows);
          seed.counts = std::make_shared<const std::vector<uint32_t>>(
              std::move(shrunk.counts));
        }
      }
    }
  }

  std::shared_ptr<const PreparedDataset> next;
  RRR_ASSIGN_OR_RETURN(
      next, PreparedDataset::CreateVersioned(std::move(grown),
                                             options_.prepared,
                                             std::move(seed)));
  {
    MutexLock lock(mu_);
    current_ = std::move(next);
  }
  return version;
}

Result<std::shared_ptr<RrrEngine>> NewDynamicEngine(
    std::shared_ptr<const DynamicDataset> source, EngineOptions options) {
  if (source == nullptr) {
    return Status::InvalidArgument("null DynamicDataset");
  }
  return RrrEngine::CreateDynamic(
      [source]() { return source->Snapshot(); }, std::move(options));
}

}  // namespace core
}  // namespace rrr
