#include "core/sweep.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "common/logging.h"
#include "geometry/angles.h"
#include "topk/score_kernel.h"
#include "topk/scoring.h"

namespace rrr {
namespace core {

namespace {

/// Heap entry: a candidate exchange between `upper` and `lower`, valid only
/// if they are still adjacent in that order when popped.
struct Event {
  double angle;
  int32_t upper;
  int32_t lower;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.angle != b.angle) return a.angle > b.angle;
    if (a.upper != b.upper) return a.upper > b.upper;
    return a.lower > b.lower;
  }
};

}  // namespace

AngularSweep::AngularSweep(const data::Dataset& dataset,
                           const data::ColumnBlocks* blocks)
    : dataset_(dataset) {
  RRR_CHECK(dataset.dims() == 2) << "AngularSweep requires a 2D dataset";
  const size_t n = dataset.size();
  initial_order_.resize(n);
  std::iota(initial_order_.begin(), initial_order_.end(), 0);
  // Order at theta = 0 exactly: score = x, score ties by lower id — the
  // library-wide tie-break (topk::Outranks), so the sweep and the top-k
  // scans agree at the endpoint function w = (1, 0). Same-x groups are then
  // bubbled into the theta > 0 order (y descending) by exchange events at
  // angle 0 during Run.
  if (blocks != nullptr && n > 0) {
    RRR_CHECK(blocks->source() == &dataset)
        << "AngularSweep: blocks mirror a different dataset";
    // Kernel path: materialize the endpoint scores (1*x + 0*y == x
    // value-wise, so the comparator sees the same ordering as the strided
    // row reads) contiguously, then sort on them.
    std::vector<double> xs(n);
    topk::ScoreAll(topk::LinearFunction({1.0, 0.0}), *blocks, xs.data());
    std::sort(initial_order_.begin(), initial_order_.end(),
              [&xs](int32_t a, int32_t b) {
                const double ax = xs[static_cast<size_t>(a)];
                const double bx = xs[static_cast<size_t>(b)];
                if (ax != bx) return ax > bx;
                return a < b;
              });
    return;
  }
  const double* rows = dataset.flat();
  std::sort(initial_order_.begin(), initial_order_.end(),
            [rows](int32_t a, int32_t b) {
              const double ax = rows[2 * a], bx = rows[2 * b];
              if (ax != bx) return ax > bx;
              return a < b;
            });
}

double AngularSweep::ExchangeAngle(const double* a, const double* b) {
  // `a` currently outranks `b`. Scores cross where
  // cos(t)*(a.x - b.x) = sin(t)*(b.y - a.y). dx == 0 with dy > 0 is the
  // same-x tie resolved by id at theta = 0: the exchange fires at angle 0
  // (atan2(0, dy)), restoring the y-descending order for every theta > 0.
  const double dx = a[0] - b[0];
  const double dy = b[1] - a[1];
  if (dy <= 0.0 || dx < 0.0) return -1.0;  // b never overtakes a
  return std::atan2(dx, dy);
}

size_t AngularSweep::Run(const SweepCallback& cb) const {
  const size_t n = dataset_.size();
  if (n < 2) return 0;
  const double* rows = dataset_.flat();

  std::vector<int32_t> order = initial_order_;
  std::vector<size_t> pos(n);
  for (size_t i = 0; i < n; ++i) pos[static_cast<size_t>(order[i])] = i;

  std::priority_queue<Event, std::vector<Event>, EventLater> heap;
  auto push_pair = [&](size_t upper_idx) {
    const int32_t u = order[upper_idx];
    const int32_t l = order[upper_idx + 1];
    double angle = ExchangeAngle(rows + 2 * u, rows + 2 * l);
    if (angle < 0.0 && u > l && rows[2 * u + 1] == rows[2 * l + 1] &&
        rows[2 * u] > rows[2 * l]) {
      // Same-y pair held in x order but out of id order: their scores tie
      // at exactly theta = pi/2, where the library-wide tie-break (lower id
      // first, topk::Outranks) takes over. Exchange at the endpoint so the
      // sweep's final order matches the top-k scan under w = (0, 1).
      angle = geometry::kHalfPi;
    }
    if (angle >= 0.0) heap.push(Event{angle, u, l});
  };
  for (size_t i = 0; i + 1 < n; ++i) push_pair(i);

  size_t exchanges = 0;
  // rrr-lint: disable(missing-preemption-gate) reason=cancellable through the callback protocol: cb returning false stops the sweep, and every engine-path caller checks its ExecContext inside cb
  while (!heap.empty()) {
    const Event ev = heap.top();
    heap.pop();
    const size_t pu = pos[static_cast<size_t>(ev.upper)];
    const size_t pl = pos[static_cast<size_t>(ev.lower)];
    if (pl != pu + 1) continue;  // stale: the pair is no longer adjacent

    // Apply the exchange.
    std::swap(order[pu], order[pl]);
    pos[static_cast<size_t>(ev.upper)] = pl;
    pos[static_cast<size_t>(ev.lower)] = pu;
    ++exchanges;

    SweepEvent out;
    out.angle = ev.angle;
    out.upper_position = pu + 1;  // 1-based rank of the upper slot
    out.item_down = ev.upper;
    out.item_up = ev.lower;

    // New adjacencies created by the exchange (pushed before the settled
    // peek so same-angle cascade continuations are visible).
    if (pu > 0) push_pair(pu - 1);
    if (pl + 1 < n) push_pair(pl);

    // The event is settled when no valid exchange at this exact angle
    // remains: discard stale same-angle heads (they would be skipped on
    // pop anyway) until a live one or a different angle surfaces.
    out.settled = true;
    while (!heap.empty()) {
      const Event& top = heap.top();
      if (top.angle != ev.angle) break;
      if (pos[static_cast<size_t>(top.lower)] ==
          pos[static_cast<size_t>(top.upper)] + 1) {
        out.settled = false;
        break;
      }
      heap.pop();
    }

    if (!cb(out)) break;
  }
  return exchanges;
}

}  // namespace core
}  // namespace rrr
