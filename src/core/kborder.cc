#include "core/kborder.h"

#include "core/sweep.h"
#include "geometry/angles.h"

namespace rrr {
namespace core {

Result<std::vector<KBorderSegment>> ComputeKBorder2D(
    const data::Dataset& dataset, size_t k) {
  if (dataset.dims() != 2) {
    return Status::InvalidArgument("ComputeKBorder2D requires a 2D dataset");
  }
  if (k == 0 || k > dataset.size()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }

  AngularSweep sweep(dataset);
  std::vector<KBorderSegment> border;
  int32_t current = sweep.InitialOrder()[k - 1];
  int32_t pending = current;
  double segment_start = 0.0;

  sweep.Run([&](const SweepEvent& ev) {
    // The k-th ranked tuple changes only when the exchange touches rank k.
    // Track it through every exchange, but emit a segment only at settled
    // orders — mid-cascade holders of rank k (equal-angle tie groups) are
    // bookkeeping states, not ranks any function realizes, and would
    // produce zero-width phantom segments.
    if (ev.upper_position == k) {
      // Ranks k and k+1 swapped: the riser now holds rank k.
      pending = ev.item_up;
    } else if (k >= 2 && ev.upper_position == k - 1) {
      // Ranks k-1 and k swapped: the dropper now holds rank k.
      pending = ev.item_down;
    }
    if (ev.settled && pending != current) {
      border.push_back(KBorderSegment{segment_start, ev.angle, current});
      segment_start = ev.angle;
      current = pending;
    }
    return true;
  });
  border.push_back(
      KBorderSegment{segment_start, geometry::kHalfPi, current});
  return border;
}

}  // namespace core
}  // namespace rrr
