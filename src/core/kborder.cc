#include "core/kborder.h"

#include "core/sweep.h"
#include "geometry/angles.h"

namespace rrr {
namespace core {

Result<std::vector<KBorderSegment>> ComputeKBorder2D(
    const data::Dataset& dataset, size_t k) {
  if (dataset.dims() != 2) {
    return Status::InvalidArgument("ComputeKBorder2D requires a 2D dataset");
  }
  if (k == 0 || k > dataset.size()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }

  AngularSweep sweep(dataset);
  std::vector<KBorderSegment> border;
  int32_t current = sweep.InitialOrder()[k - 1];
  double segment_start = 0.0;

  sweep.Run([&](const SweepEvent& ev) {
    // The k-th ranked tuple changes only when the exchange touches rank k.
    int32_t next = current;
    if (ev.upper_position == k) {
      // Ranks k and k+1 swapped: the riser now holds rank k.
      next = ev.item_up;
    } else if (k >= 2 && ev.upper_position == k - 1) {
      // Ranks k-1 and k swapped: the dropper now holds rank k.
      next = ev.item_down;
    }
    if (next != current) {
      border.push_back(KBorderSegment{segment_start, ev.angle, current});
      segment_start = ev.angle;
      current = next;
    }
    return true;
  });
  border.push_back(
      KBorderSegment{segment_start, geometry::kHalfPi, current});
  return border;
}

}  // namespace core
}  // namespace rrr
