#include "core/kset_graph.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "core/candidate_index.h"
#include "lp/separation.h"
#include "topk/scoring.h"
#include "topk/topk.h"

namespace rrr {
namespace core {

Result<KSetCollection> EnumerateKSetsGraph(const data::Dataset& dataset,
                                           size_t k,
                                           const KSetGraphOptions& options,
                                           const ExecContext& ctx,
                                           const CandidateIndex* candidates,
                                           const data::ColumnBlocks* blocks) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  const size_t n = dataset.size();
  const size_t d = dataset.dims();
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (k >= n) {
    return Status::InvalidArgument(
        "k must be < n for k-set enumeration (a k-set needs a non-empty "
        "complement)");
  }
  if (candidates != nullptr) {
    RRR_CHECK(candidates->full_dataset() == &dataset)
        << "CandidateIndex built over a different dataset";
    RRR_CHECK(candidates->k() >= k)
        << "CandidateIndex band too small for this k";
  }

  // Initial step: the top-k on the first attribute is a k-set under general
  // position (the function with weights e_1, ties id-broken). Tied data can
  // make an axis top-k non-separable, so validate the seed and fall back to
  // the other axes and the diagonal before giving up.
  std::vector<geometry::Vec> seed_functions;
  seed_functions.reserve(d + 1);
  for (size_t axis = 0; axis < d; ++axis) {
    geometry::Vec w(d, 0.0);
    w[axis] = 1.0;
    seed_functions.push_back(std::move(w));
  }
  seed_functions.push_back(geometry::Vec(d, 1.0));
  KSet first;
  bool seeded = false;
  for (const auto& w : seed_functions) {
    KSet candidate;
    const topk::LinearFunction f(w);
    candidate.ids = candidates != nullptr
                        ? candidates->TopKSet(f, k)
                        : topk::TopKSet(dataset, f, k, blocks);
    lp::SeparationResult sep;
    RRR_ASSIGN_OR_RETURN(
        sep, lp::FindSeparatingWeights(dataset.flat(), n, d, candidate.ids,
                                       options.lp_tolerance));
    if (sep.separable) {
      first = std::move(candidate);
      seeded = true;
      break;
    }
  }
  if (!seeded) {
    return Status::FailedPrecondition(
        "could not find a separable seed k-set; data too degenerate (ties "
        "at every probed function)");
  }

  KSetCollection found;
  found.Insert(first);
  std::deque<KSet> queue;
  queue.push_back(first);
  PreemptionGate gate(ctx, 64);

  // Swap candidates: only k-skyband members can appear in a separable
  // k-set (see the header), so the BFS inner loop shrinks from n to the
  // band when an index is available. The candidate order is ascending id
  // either way (band_ids are sorted), so the BFS discovery order — and
  // therefore the enumerated collection — is unchanged.
  std::vector<int32_t> swap_pool;
  if (candidates != nullptr) {
    swap_pool = candidates->band_ids();
  } else {
    swap_pool.resize(n);
    std::iota(swap_pool.begin(), swap_pool.end(), 0);
  }

  while (!queue.empty()) {
    const KSet current = queue.front();
    queue.pop_front();
    std::vector<char> inside(n, 0);
    for (int32_t id : current.ids) inside[static_cast<size_t>(id)] = 1;

    for (size_t swap_out = 0; swap_out < current.ids.size(); ++swap_out) {
      for (const int32_t cand : swap_pool) {
        if (inside[static_cast<size_t>(cand)]) continue;
        RRR_RETURN_IF_ERROR(gate.Check());
        KSet next = current;
        next.ids[swap_out] = cand;
        next.Normalize();
        if (found.Contains(next)) continue;

        lp::SeparationResult sep;
        RRR_ASSIGN_OR_RETURN(
            sep, lp::FindSeparatingWeights(dataset.flat(), n, d, next.ids,
                                           options.lp_tolerance));
        if (!sep.separable) continue;
        if (found.size() >= options.max_ksets) {
          return Status::ResourceExhausted(
              "k-set graph enumeration exceeded max_ksets");
        }
        found.Insert(next);
        queue.push_back(std::move(next));
      }
    }
  }
  return found;
}

}  // namespace core
}  // namespace rrr
