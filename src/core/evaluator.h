#ifndef RRR_CORE_EVALUATOR_H_
#define RRR_CORE_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "data/column_blocks.h"
#include "data/dataset.h"

namespace rrr {
namespace core {

class AngularSweep;
class CandidateIndex;

/// \brief Exact rank-regret of `subset` over all 2D linear ranking
/// functions: max over theta in [0, pi/2] of the best subset rank
/// (Definition 2 evaluated exactly). One angular sweep, O(E log n).
///
/// This is the implementation behind eval::ExactRankRegret2D; it lives in
/// core so the engine facade (also core) can audit representatives without
/// a core -> eval dependency cycle. `sweep` optionally reuses a prebuilt
/// AngularSweep over the same dataset (PreparedDataset shares one);
/// `ctx` preempts the sweep with Cancelled/DeadlineExceeded.
Result<int64_t> SweepExactRankRegret2D(const data::Dataset& dataset,
                                       const std::vector<int32_t>& subset,
                                       const ExecContext& ctx = {},
                                       const AngularSweep* sweep = nullptr);

/// Options for the sampled estimator (mirrors
/// eval::SampledRankRegretOptions, which delegates here).
struct SampledRegretOptions {
  /// Ranking functions drawn uniformly from the first orthant of the unit
  /// sphere (the paper's Section 6.1 uses 10,000).
  size_t num_functions = 10000;
  uint64_t seed = 23;
  /// Worker threads for the per-function rank scans: 0 = hardware
  /// concurrency, 1 = serial. The estimate is a max over draws from one
  /// seeded Rng, so the result is identical for every thread count.
  size_t threads = 0;
};

/// Observability for one SampledRankRegretEstimate run. The fallback count
/// is deterministic (a pure function of data, subset, and seed), so it is
/// identical for every thread count.
struct SampledRegretStats {
  /// Ranking functions whose rank was answered by a k-skyband scan.
  size_t skyband_scans = 0;
  /// Functions whose rank exceeded the band parameter and fell back to a
  /// full-dataset scan (0 when no CandidateIndex was supplied — every scan
  /// is then a full scan and neither counter moves).
  size_t full_scan_fallbacks = 0;
};

/// \brief Monte-Carlo lower bound on the rank-regret of `subset`: the max
/// over sampled functions of the subset's best rank (the paper's
/// measurement protocol for d > 2). `ctx` preempts between scan batches.
///
/// `candidates` (may be null) answers each per-function rank scan over its
/// k-skyband whenever the rank is <= candidates->k() — the common case for
/// representatives — falling back to a full scan otherwise, so the estimate
/// is bit-identical with and without the index. `stats` (may be null)
/// receives the band/fallback attribution. `blocks` (may be null, must
/// mirror `dataset`) routes the full-dataset rank scans — the whole
/// workload without an index, the fallbacks with one — through the blocked
/// scoring kernel; bit-identical estimate in every combination.
Result<int64_t> SampledRankRegretEstimate(
    const data::Dataset& dataset, const std::vector<int32_t>& subset,
    const SampledRegretOptions& options = {}, const ExecContext& ctx = {},
    const CandidateIndex* candidates = nullptr,
    SampledRegretStats* stats = nullptr,
    const data::ColumnBlocks* blocks = nullptr);

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_EVALUATOR_H_
