#include "core/kset_enum2d.h"

#include <algorithm>

#include "core/sweep.h"

namespace rrr {
namespace core {

Result<KSetCollection> EnumerateKSets2D(const data::Dataset& dataset,
                                        size_t k) {
  if (dataset.dims() != 2) {
    return Status::InvalidArgument("EnumerateKSets2D requires a 2D dataset");
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");

  KSetCollection out;
  const size_t n = dataset.size();
  if (n == 0) return out;
  const size_t kk = std::min(k, n);

  AngularSweep sweep(dataset);
  KSet current;
  current.ids.assign(sweep.InitialOrder().begin(),
                     sweep.InitialOrder().begin() + static_cast<long>(kk));
  out.Insert(current);

  if (kk < n) {
    bool boundary_crossed = false;
    sweep.Run([&](const SweepEvent& ev) {
      if (ev.upper_position == kk) {
        // The boundary exchange replaces item_down with item_up.
        auto it = std::find(current.ids.begin(), current.ids.end(),
                            ev.item_down);
        RRR_DCHECK(it != current.ids.end()) << "k-border bookkeeping";
        *it = ev.item_up;
        boundary_crossed = true;
      }
      // Record only settled orders: mid-cascade states of an equal-angle
      // tie group are not any function's top-k and would insert phantom
      // k-sets.
      if (ev.settled && boundary_crossed) {
        out.Insert(current);
        boundary_crossed = false;
      }
      return true;
    });
  }
  return out;
}

}  // namespace core
}  // namespace rrr
