#ifndef RRR_CORE_KBORDER_H_
#define RRR_CORE_KBORDER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace rrr {
namespace core {

/// One facet of the 2D top-k border (Section 3, Figure 3): for sweep
/// angles theta in [begin, end] the tuple `item` holds rank k exactly.
struct KBorderSegment {
  double begin = 0.0;
  double end = 0.0;
  int32_t item = 0;
};

/// \brief Extracts the top-k border of a 2D dataset as the sequence of
/// angular segments of its k-th ranked tuple.
///
/// In the dual space (Equation 2) these segments are precisely the facets
/// of level k in the line arrangement — the red chain of Figure 3. The
/// border is returned in sweep order; consecutive segments share endpoints
/// and jointly cover [0, pi/2]. A tuple may own several non-adjacent
/// segments (the paper's observation that d(t3) contributes two facets for
/// k = 2 is covered by a test). O(E log n) via the angular sweep, E being
/// the number of rank exchanges (at most n(n-1)/2).
///
/// Fails with InvalidArgument unless dims == 2 and 1 <= k <= n.
Result<std::vector<KBorderSegment>> ComputeKBorder2D(
    const data::Dataset& dataset, size_t k);

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_KBORDER_H_
