#include "core/solver.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/timer.h"
#include "geometry/convex_hull.h"
#include "geometry/dominance.h"

namespace rrr {
namespace core {

namespace {

/// Exact k = 1 representative: the tuples that are the unique top-1 of some
/// non-negative linear function. Prefilters to the skyline (maxima are
/// always Pareto-optimal, and separation from the skyline implies
/// separation from everything it dominates), then runs the per-candidate
/// separation LP (fanned out over `threads`).
Result<std::vector<int32_t>> SolveConvexMaxima(const data::Dataset& dataset,
                                               size_t threads) {
  const std::vector<int32_t> sky = geometry::Skyline(
      dataset.flat(), dataset.size(), dataset.dims());
  if (sky.size() <= 1) return sky;
  std::vector<double> cells;
  cells.reserve(sky.size() * dataset.dims());
  for (int32_t id : sky) {
    const double* r = dataset.row(static_cast<size_t>(id));
    cells.insert(cells.end(), r, r + dataset.dims());
  }
  Result<data::Dataset> compact = data::Dataset::FromFlat(
      std::move(cells), sky.size(), dataset.dims());
  RRR_CHECK(compact.ok()) << compact.status().ToString();
  std::vector<int32_t> maxima;
  RRR_ASSIGN_OR_RETURN(
      maxima, geometry::ConvexMaxima(compact->flat(), compact->size(),
                                     compact->dims(), threads));
  for (int32_t& id : maxima) id = sky[static_cast<size_t>(id)];
  std::sort(maxima.begin(), maxima.end());
  return maxima;
}

}  // namespace

std::string AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kAuto:
      return "AUTO";
    case Algorithm::k2dRrr:
      return "2DRRR";
    case Algorithm::kMdRrr:
      return "MDRRR";
    case Algorithm::kMdRc:
      return "MDRC";
    case Algorithm::kConvexMaxima:
      return "MAXIMA";
  }
  return "UNKNOWN";
}

Result<RrrResult> FindRankRegretRepresentative(const data::Dataset& dataset,
                                               const RrrOptions& options) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  RRR_RETURN_IF_ERROR(dataset.CheckFinite());

  Algorithm algorithm = options.algorithm;
  if (algorithm == Algorithm::kAuto) {
    if (dataset.dims() == 2) {
      algorithm = Algorithm::k2dRrr;
    } else if (options.k == 1 && dataset.dims() > 2) {
      algorithm = Algorithm::kConvexMaxima;
    } else {
      algorithm = Algorithm::kMdRc;
    }
  }
  if (algorithm == Algorithm::k2dRrr && dataset.dims() != 2) {
    return Status::InvalidArgument("2DRRR requires a 2D dataset");
  }
  if (algorithm == Algorithm::kConvexMaxima && options.k != 1) {
    return Status::InvalidArgument(
        "convex maxima solve is exact only for k == 1");
  }

  // A facade-level thread count overrides the per-algorithm sub-options so
  // one knob controls the whole solve.
  KSetSamplerOptions sampler_options = options.sampler;
  MdrcOptions mdrc_options = options.mdrc;
  if (options.threads != 0) {
    sampler_options.threads = options.threads;
    mdrc_options.threads = options.threads;
  }

  RrrResult result;
  result.algorithm_used = algorithm;
  Stopwatch timer;
  switch (algorithm) {
    case Algorithm::k2dRrr: {
      RRR_ASSIGN_OR_RETURN(
          result.representative,
          Solve2dRrr(dataset, options.k, options.rrr2d));
      break;
    }
    case Algorithm::kMdRrr: {
      RRR_ASSIGN_OR_RETURN(
          result.representative,
          SolveMdrrrSampled(dataset, options.k, options.mdrrr,
                            sampler_options));
      break;
    }
    case Algorithm::kMdRc: {
      RRR_ASSIGN_OR_RETURN(result.representative,
                           SolveMdrc(dataset, options.k, mdrc_options));
      break;
    }
    case Algorithm::kConvexMaxima: {
      RRR_ASSIGN_OR_RETURN(
          result.representative,
          SolveConvexMaxima(dataset, ResolveThreads(options.threads)));
      break;
    }
    case Algorithm::kAuto:
      return Status::Internal("kAuto must be resolved before dispatch");
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

Result<DualResult> SolveDualProblem(const data::Dataset& dataset,
                                    size_t max_size,
                                    const RrrOptions& base_options) {
  if (max_size == 0) return Status::InvalidArgument("max_size must be >= 1");
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");

  // Binary search the smallest feasible k in [1, n] (Section 2's reduction:
  // log n calls to the primal solver).
  size_t lo = 1;
  size_t hi = dataset.size();
  DualResult best;
  bool found = false;
  size_t probes = 0;
  size_t exhausted_probes = 0;
  while (lo <= hi) {
    const size_t mid = lo + (hi - lo) / 2;
    RrrOptions options = base_options;
    options.k = mid;
    Result<RrrResult> probe = FindRankRegretRepresentative(dataset, options);
    ++probes;
    if (!probe.ok() &&
        probe.status().code() == StatusCode::kResourceExhausted) {
      // The solver could not finish at this k (e.g. MDRC's node budget for
      // tiny k in high dimension): treat as infeasible and search upward.
      ++exhausted_probes;
      lo = mid + 1;
      continue;
    }
    if (!probe.ok()) return probe.status();
    RrrResult res = std::move(probe).value();
    if (res.representative.size() <= max_size) {
      best.k = mid;
      best.representative = std::move(res.representative);
      best.algorithm_used = res.algorithm_used;
      found = true;
      if (mid == 1) break;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  if (!found) {
    if (exhausted_probes == probes) {
      // Every probe died on the solver's own resource budget, so "no k met
      // the size budget" would misattribute the failure: the search never
      // saw a representative at all. Surface the real cause so callers can
      // raise the algorithm budget instead of the size budget.
      return Status::ResourceExhausted(
          "every probe of the dual binary search exhausted the solver's "
          "budget before producing a representative (raise the algorithm's "
          "resource limits, e.g. MdrcOptions::max_nodes)");
    }
    return Status::NotFound(
        "no k in [1, n] met the size budget with this algorithm");
  }
  return best;
}

}  // namespace core
}  // namespace rrr
