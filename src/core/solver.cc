#include "core/solver.h"

#include <cctype>
#include <string>
#include <utility>

#include "core/engine.h"

namespace rrr {
namespace core {

std::string AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kAuto:
      return "AUTO";
    case Algorithm::k2dRrr:
      return "2DRRR";
    case Algorithm::kMdRrr:
      return "MDRRR";
    case Algorithm::kMdRc:
      return "MDRC";
    case Algorithm::kConvexMaxima:
      return "MAXIMA";
  }
  return "UNKNOWN";
}

Result<Algorithm> ParseAlgorithm(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "auto") return Algorithm::kAuto;
  if (lower == "2drrr") return Algorithm::k2dRrr;
  if (lower == "mdrrr") return Algorithm::kMdRrr;
  if (lower == "mdrc") return Algorithm::kMdRc;
  if (lower == "maxima") return Algorithm::kConvexMaxima;
  return Status::InvalidArgument(
      "unknown algorithm '" + std::string(name) +
      "' (expected one of: auto, 2drrr, mdrrr, mdrc, maxima)");
}

Result<RrrResult> FindRankRegretRepresentative(const data::Dataset& dataset,
                                               const RrrOptions& options,
                                               const ExecContext& ctx) {
  // Thin wrapper over a temporary engine: prepare (validates and copies
  // the dataset), run one query, discard. Multi-query callers should hold
  // an RrrEngine to amortize the preparation and share the caches.
  EngineOptions engine_options;
  engine_options.defaults = options;
  engine_options.memoize_results = false;  // single query, nothing to reuse
  std::shared_ptr<RrrEngine> engine;
  RRR_ASSIGN_OR_RETURN(
      engine, RrrEngine::Create(data::Dataset(dataset),
                                std::move(engine_options)));
  QueryOptions query;
  query.exec = ctx;
  QueryResult result;
  RRR_ASSIGN_OR_RETURN(result, engine->Solve(options.k, query));
  RrrResult out;
  out.representative = std::move(result.representative);
  out.algorithm_used = result.diagnostics.algorithm_used;
  out.seconds = result.diagnostics.seconds;
  return out;
}

Result<DualResult> SolveDualProblem(const data::Dataset& dataset,
                                    size_t max_size,
                                    const RrrOptions& base_options,
                                    const ExecContext& ctx) {
  if (max_size == 0) return Status::InvalidArgument("max_size must be >= 1");
  // One temporary engine serves every probe of the binary search, so the
  // probes share the prepared artifacts (sweep, corner memo, samples) and
  // memoized results even through this one-shot entry point.
  EngineOptions engine_options;
  engine_options.defaults = base_options;
  std::shared_ptr<RrrEngine> engine;
  RRR_ASSIGN_OR_RETURN(
      engine, RrrEngine::Create(data::Dataset(dataset),
                                std::move(engine_options)));
  QueryOptions query;
  query.exec = ctx;
  return engine->SolveDual(max_size, query);
}

}  // namespace core
}  // namespace rrr
