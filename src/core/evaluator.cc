#include "core/evaluator.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>

#include "common/mutex.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/candidate_index.h"
#include "core/sweep.h"
#include "topk/rank.h"
#include "topk/scoring.h"

namespace rrr {
namespace core {

Result<int64_t> SweepExactRankRegret2D(const data::Dataset& dataset,
                                       const std::vector<int32_t>& subset,
                                       const ExecContext& ctx,
                                       const AngularSweep* sweep) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  if (dataset.dims() != 2) {
    return Status::InvalidArgument("ExactRankRegret2D requires 2D data");
  }
  if (subset.empty()) return Status::InvalidArgument("empty subset");
  RRR_RETURN_IF_ERROR(dataset.CheckFinite());
  const size_t n = dataset.size();
  std::vector<char> in_subset(n, 0);
  for (int32_t id : subset) {
    if (id < 0 || static_cast<size_t>(id) >= n) {
      return Status::OutOfRange("subset id out of range");
    }
    in_subset[static_cast<size_t>(id)] = 1;
  }

  std::unique_ptr<AngularSweep> own_sweep;
  if (sweep == nullptr) {
    own_sweep = std::make_unique<AngularSweep>(dataset);
    sweep = own_sweep.get();
  }
  const auto& order = sweep->InitialOrder();
  // Positions (0-based) currently held by subset members.
  std::set<size_t> member_positions;
  std::vector<size_t> pos(n);
  for (size_t i = 0; i < n; ++i) {
    pos[static_cast<size_t>(order[i])] = i;
    if (in_subset[static_cast<size_t>(order[i])]) member_positions.insert(i);
  }

  PreemptionGate gate(ctx, 1024);
  int64_t worst = static_cast<int64_t>(*member_positions.begin()) + 1;
  sweep->Run([&](const SweepEvent& ev) {
    if (gate.Preempted()) return false;
    const bool down_in = in_subset[static_cast<size_t>(ev.item_down)] != 0;
    const bool up_in = in_subset[static_cast<size_t>(ev.item_up)] != 0;
    if (down_in != up_in) {
      const size_t upper = ev.upper_position - 1;  // 0-based slot
      if (down_in) {
        // A member moved down one slot.
        member_positions.erase(upper);
        member_positions.insert(upper + 1);
      } else {
        // A member moved up one slot.
        member_positions.erase(upper + 1);
        member_positions.insert(upper);
      }
    }
    // Only settled orders are rankings some function realizes; taking the
    // max inside an equal-angle cascade would overstate the regret on
    // tie-heavy data.
    if (ev.settled) {
      worst = std::max(worst,
                       static_cast<int64_t>(*member_positions.begin()) + 1);
    }
    return true;
  });
  RRR_RETURN_IF_ERROR(gate.status());
  return worst;
}

Result<int64_t> SampledRankRegretEstimate(const data::Dataset& dataset,
                                          const std::vector<int32_t>& subset,
                                          const SampledRegretOptions& options,
                                          const ExecContext& ctx,
                                          const CandidateIndex* candidates,
                                          SampledRegretStats* stats,
                                          const data::ColumnBlocks* blocks) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  if (subset.empty()) return Status::InvalidArgument("empty subset");
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  for (int32_t id : subset) {
    if (id < 0 || static_cast<size_t>(id) >= dataset.size()) {
      return Status::OutOfRange("subset id out of range");
    }
  }
  if (candidates != nullptr) {
    RRR_CHECK(candidates->full_dataset() == &dataset)
        << "CandidateIndex built over a different dataset";
  }
  if (blocks != nullptr) {
    RRR_CHECK(blocks->source() == &dataset)
        << "blocks mirror a different dataset";
  }
  SampledRegretStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = SampledRegretStats{};

  // One per-function rank scan, over the band when possible. The fallback
  // count is a pure function of (data, subset, seed), so the stats are
  // thread-count invariant along with the estimate itself.
  std::atomic<size_t> fallbacks{0};
  auto min_rank = [&](const topk::LinearFunction& f) {
    if (candidates == nullptr) {
      return topk::MinRankOfSubset(dataset, f, subset, blocks);
    }
    size_t fell_back = 0;
    const int64_t rank =
        candidates->MinRankOfSubset(f, subset, &fell_back, blocks);
    if (fell_back != 0) fallbacks.fetch_add(1, std::memory_order_relaxed);
    return rank;
  };
  auto record_stats = [&] {
    if (candidates == nullptr) return;
    stats->full_scan_fallbacks = fallbacks.load();
    stats->skyband_scans = options.num_functions - stats->full_scan_fallbacks;
  };

  Rng rng(options.seed);
  const size_t threads = ResolveThreads(ctx.ThreadsOver(options.threads));
  if (threads <= 1) {
    PreemptionGate gate(ctx, 64);
    int64_t worst = 1;
    for (size_t s = 0; s < options.num_functions; ++s) {
      RRR_RETURN_IF_ERROR(gate.Check());
      topk::LinearFunction f(
          rng.UnitWeightVector(static_cast<int>(dataset.dims())));
      worst = std::max(worst, min_rank(f));
    }
    record_stats();
    return worst;
  }

  // Parallel path: the draws stay serial (one seeded Rng, same sequence as
  // the serial path) and the O(n) rank scans fan out. max() is commutative,
  // so the estimate is identical for every thread count.
  std::vector<topk::LinearFunction> funcs;
  funcs.reserve(options.num_functions);
  for (size_t s = 0; s < options.num_functions; ++s) {
    funcs.emplace_back(
        rng.UnitWeightVector(static_cast<int>(dataset.dims())));
  }
  std::vector<int64_t> per_chunk_worst;
  Mutex mu;
  std::atomic<bool> preempted{false};
  ParallelForChunked(
      threads, funcs.size(), 16, [&](size_t begin, size_t end) {
        if (preempted.load(std::memory_order_relaxed)) return;
        if (!ctx.CheckPreempted().ok()) {
          preempted.store(true, std::memory_order_relaxed);
          return;
        }
        int64_t local = 1;
        for (size_t s = begin; s < end; ++s) {
          local = std::max(local, min_rank(funcs[s]));
        }
        MutexLock lock(mu);
        per_chunk_worst.push_back(local);
      });
  if (preempted.load()) {
    Status cause = ctx.CheckPreempted();
    if (cause.ok()) cause = Status::Cancelled("evaluation preempted");
    return cause;
  }
  int64_t worst = 1;
  for (int64_t w : per_chunk_worst) worst = std::max(worst, w);
  record_stats();
  return worst;
}

}  // namespace core
}  // namespace rrr
