#include "core/kset_sampler.h"

#include <memory>

#include "common/random.h"
#include "geometry/dominance.h"
#include "topk/scoring.h"
#include "topk/threshold_algorithm.h"
#include "topk/topk.h"

namespace rrr {
namespace core {

Result<KSetSampleResult> SampleKSets(const data::Dataset& dataset, size_t k,
                                     const KSetSamplerOptions& options) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");

  // Optional sound search-space reduction: only k-skyband members can ever
  // appear in a top-k, and their relative id order (the tie-break) is
  // preserved by the compaction.
  const data::Dataset* search = &dataset;
  data::Dataset band_data;
  std::vector<int32_t> band_ids;
  if (options.skyband_prefilter) {
    band_ids = geometry::KSkyband(dataset.flat(), dataset.size(),
                                  dataset.dims(), k);
    std::vector<double> cells;
    cells.reserve(band_ids.size() * dataset.dims());
    for (int32_t id : band_ids) {
      const double* r = dataset.row(static_cast<size_t>(id));
      cells.insert(cells.end(), r, r + dataset.dims());
    }
    Result<data::Dataset> compacted = data::Dataset::FromFlat(
        std::move(cells), band_ids.size(), dataset.dims());
    RRR_CHECK(compacted.ok()) << compacted.status().ToString();
    band_data = std::move(compacted).value();
    search = &band_data;
  }

  std::unique_ptr<topk::ThresholdAlgorithmIndex> ta_index;
  if (options.use_threshold_algorithm) {
    ta_index = std::make_unique<topk::ThresholdAlgorithmIndex>(*search);
  }

  Rng rng(options.seed);
  KSetSampleResult out;
  size_t misses = 0;
  while (misses < options.termination_count &&
         out.samples_drawn < options.max_samples) {
    ++out.samples_drawn;
    topk::LinearFunction f(
        rng.UnitWeightVector(static_cast<int>(dataset.dims())));
    KSet s;
    s.ids = ta_index ? ta_index->TopKSet(f, k) : topk::TopKSet(*search, f, k);
    if (options.skyband_prefilter) {
      for (int32_t& id : s.ids) id = band_ids[static_cast<size_t>(id)];
    }
    if (out.ksets.Insert(std::move(s))) {
      misses = 0;
    } else {
      ++misses;
    }
  }
  return out;
}

}  // namespace core
}  // namespace rrr
