#include "core/kset_sampler.h"

#include <algorithm>
#include <memory>

#include "common/parallel.h"
#include "common/random.h"
#include "core/candidate_index.h"
#include "geometry/dominance.h"
#include "topk/scoring.h"
#include "topk/threshold_algorithm.h"
#include "topk/topk.h"

namespace rrr {
namespace core {

Result<KSetSampleResult> SampleKSets(const data::Dataset& dataset, size_t k,
                                     const KSetSamplerOptions& options,
                                     const ExecContext& ctx,
                                     const CandidateIndex* candidates,
                                     const data::ColumnBlocks* blocks) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  RRR_RETURN_IF_ERROR(dataset.CheckFinite());
  if (candidates != nullptr) {
    RRR_CHECK(candidates->full_dataset() == &dataset)
        << "CandidateIndex built over a different dataset";
    RRR_CHECK(candidates->k() >= std::min(k, dataset.size()))
        << "CandidateIndex band too small for this k";
  }
  if (blocks != nullptr) {
    RRR_CHECK(blocks->source() == &dataset)
        << "SampleKSets: blocks mirror a different dataset";
  }

  // Optional sound search-space reduction: only k-skyband members can ever
  // appear in a top-k, and their relative id order (the tie-break) is
  // preserved by the compaction. A shared CandidateIndex supersedes the
  // per-call reduction below (same effect, amortized across calls).
  const data::Dataset* search = &dataset;
  data::Dataset band_data;
  std::vector<int32_t> band_ids;
  if (options.skyband_prefilter && candidates == nullptr) {
    band_ids = geometry::KSkyband(dataset.flat(), dataset.size(),
                                  dataset.dims(), k);
    std::vector<double> cells;
    cells.reserve(band_ids.size() * dataset.dims());
    for (int32_t id : band_ids) {
      const double* r = dataset.row(static_cast<size_t>(id));
      cells.insert(cells.end(), r, r + dataset.dims());
    }
    Result<data::Dataset> compacted = data::Dataset::FromFlat(
        std::move(cells), band_ids.size(), dataset.dims());
    RRR_CHECK(compacted.ok()) << compacted.status().ToString();
    band_data = std::move(compacted).value();
    search = &band_data;
  }

  // The mirror only applies while the search space IS the caller's dataset;
  // the skyband prefilter above swaps in a compacted copy it cannot cover.
  const data::ColumnBlocks* search_blocks =
      search == &dataset ? blocks : nullptr;
  std::unique_ptr<topk::ThresholdAlgorithmIndex> ta_index;
  if (options.use_threshold_algorithm && candidates == nullptr) {
    ta_index =
        std::make_unique<topk::ThresholdAlgorithmIndex>(*search,
                                                        search_blocks);
  }

  auto top_k_set = [&](const topk::LinearFunction& f) {
    if (candidates != nullptr) return candidates->TopKSet(f, k);
    std::vector<int32_t> ids = ta_index
                                   ? ta_index->TopKSet(f, k)
                                   : topk::TopKSet(*search, f, k,
                                                   search_blocks);
    if (options.skyband_prefilter) {
      for (int32_t& id : ids) id = band_ids[static_cast<size_t>(id)];
    }
    return ids;
  };

  Rng rng(options.seed);
  KSetSampleResult out;
  size_t misses = 0;
  const size_t threads = ResolveThreads(ctx.ThreadsOver(options.threads));
  PreemptionGate gate(ctx, 64);

  if (threads <= 1) {
    // Serial path: evaluate each draw before deciding whether to stop.
    while (misses < options.termination_count &&
           out.samples_drawn < options.max_samples) {
      RRR_RETURN_IF_ERROR(gate.Check());
      ++out.samples_drawn;
      topk::LinearFunction f(
          rng.UnitWeightVector(static_cast<int>(dataset.dims())));
      KSet s;
      s.ids = top_k_set(f);
      if (out.ksets.Insert(std::move(s))) {
        misses = 0;
      } else {
        ++misses;
      }
    }
    return out;
  }

  // Parallel path: draw a batch of functions from the single Rng (cheap,
  // serial — the draw sequence is what determinism rests on), fan the
  // expensive top-k evaluations out, then replay the results in draw order
  // against the coupon-collector termination rule. Batch results past the
  // stopping point are discarded, so the recorded collection matches the
  // serial path sample for sample.
  const size_t batch_size = std::min<size_t>(
      std::max<size_t>(4 * threads, 16), options.termination_count);
  std::vector<topk::LinearFunction> funcs;
  std::vector<std::vector<int32_t>> results;
  while (misses < options.termination_count &&
         out.samples_drawn < options.max_samples) {
    RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
    const size_t batch =
        std::min(batch_size, options.max_samples - out.samples_drawn);
    funcs.clear();
    funcs.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      funcs.emplace_back(
          rng.UnitWeightVector(static_cast<int>(dataset.dims())));
    }
    results.assign(batch, {});
    ParallelFor(threads, batch,
                [&](size_t i) { results[i] = top_k_set(funcs[i]); });
    for (size_t i = 0; i < batch; ++i) {
      ++out.samples_drawn;
      KSet s;
      s.ids = std::move(results[i]);
      if (out.ksets.Insert(std::move(s))) {
        misses = 0;
      } else {
        ++misses;
      }
      if (misses >= options.termination_count) break;
    }
  }
  return out;
}

}  // namespace core
}  // namespace rrr
