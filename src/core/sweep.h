#ifndef RRR_CORE_SWEEP_H_
#define RRR_CORE_SWEEP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "data/column_blocks.h"
#include "data/dataset.h"

namespace rrr {
namespace core {

/// \brief An adjacent-rank exchange observed during the angular sweep.
///
/// At `angle` the items at ranks `upper_position` and `upper_position + 1`
/// (1-based; 1 = best) swap. `item_down` held the upper position before the
/// swap, `item_up` the lower one.
///
/// Exchanges sharing one exact angle form a group (a multi-item score tie
/// resolving all at once — e.g. a same-x block reordering at angle 0, or
/// coincident crossings). Orders *between* the group's exchanges are
/// bookkeeping states, not rankings any function realizes; `settled` marks
/// the group's last exchange, after which the maintained order is real
/// again. Consumers that interpret the order as a ranking (regret maxima,
/// k-set snapshots) must act only on settled events; consumers that track
/// incremental position state still apply every event.
struct SweepEvent {
  double angle = 0.0;
  size_t upper_position = 0;
  int32_t item_down = 0;
  int32_t item_up = 0;
  bool settled = true;
};

/// Callback invoked after each exchange is applied; return false to stop
/// the sweep early.
using SweepCallback = std::function<bool(const SweepEvent&)>;

/// \brief 2D angular ray sweep (Section 4): rotates the scoring direction
/// w(theta) = (cos theta, sin theta) from theta = 0 (x-axis) to pi/2
/// (y-axis), maintaining the full ranked order of the dataset and firing a
/// callback at every adjacent-rank exchange.
///
/// This is the shared engine behind FindRanges (Algorithm 1), the 2D k-set
/// enumeration of Section 6, and the exact 2D rank-regret evaluator. Instead
/// of the paper's `visited`-set deduplication of heap events it uses
/// standard stale-event invalidation (an event is dropped unless the pair is
/// still rank-adjacent and in the expected order when popped), which yields
/// the same exchange sequence with a simpler correctness argument.
class AngularSweep {
 public:
  /// The dataset must be 2-dimensional. `blocks` (may be null, used only
  /// during construction) is the dataset's columnar mirror: the initial
  /// theta = 0 scoring then runs through the blocked kernel with the
  /// endpoint function w = (1, 0) instead of strided row reads — the
  /// resulting order is identical (scores compare equal value-wise).
  explicit AngularSweep(const data::Dataset& dataset,
                        const data::ColumnBlocks* blocks = nullptr);

  /// Ranking at theta = 0 exactly (score = x, score ties by lower id — the
  /// library-wide tie-break of topk::Outranks), best first. Same-x groups
  /// are reordered for theta > 0 by exchange events fired at angle 0, and
  /// same-y groups snap to id order by events at exactly pi/2, so the
  /// sweep's order agrees with the top-k scans at both endpoint functions
  /// and everywhere in between.
  const std::vector<int32_t>& InitialOrder() const { return initial_order_; }

  /// \brief Runs the sweep, invoking `cb` for each exchange in
  /// non-decreasing angle order.
  ///
  /// Exchanges at equal angles are applied in a deterministic order (heap
  /// order on (angle, upper item id)). Returns the number of exchanges
  /// applied (including the one on which the callback stopped the sweep).
  /// O((n + E) log n): each of the E exchanges costs one heap pop and at
  /// most two pushes. Cannot fail; precondition violations (non-2D data)
  /// abort via RRR_CHECK in the constructor.
  size_t Run(const SweepCallback& cb) const;

  /// \brief Exchange angle of two items: the theta at which a and b score
  /// equally, or a negative value when they never swap in [0, pi/2).
  ///
  /// With a currently outranking b (a.x > b.x, or a.x == b.x with a.id <
  /// b.id), they exchange at tan(theta) = (a.x - b.x) / (b.y - a.y)
  /// provided b.y > a.y; a.x == b.x yields angle 0 (the id tie-break holds
  /// only at the theta = 0 endpoint). Same-y id-tie exchanges at pi/2 are
  /// handled inside Run, which knows the ids.
  static double ExchangeAngle(const double* a, const double* b);

  /// Approximate heap footprint in bytes (the ranked initial order).
  size_t ApproxBytes() const {
    return initial_order_.capacity() * sizeof(int32_t);
  }

 private:
  const data::Dataset& dataset_;
  std::vector<int32_t> initial_order_;
};

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_SWEEP_H_
