#ifndef RRR_CORE_KSET_H_
#define RRR_CORE_KSET_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "hitting/set_system.h"

namespace rrr {
namespace core {

/// \brief A k-set: k tuple ids strictly separable from the rest of the
/// dataset by a hyperplane with a non-negative normal (Section 5.1) —
/// equivalently, the exact top-k of some linear ranking function (Lemma 5).
///
/// Ids are kept sorted so equality and hashing are canonical.
struct KSet {
  std::vector<int32_t> ids;

  /// Canonicalizes (sorts) the id list.
  void Normalize();

  bool operator==(const KSet& other) const { return ids == other.ids; }

  /// Size of the intersection with another k-set (both must be normalized).
  size_t IntersectionSize(const KSet& other) const;
};

/// FNV-1a over the sorted ids.
struct KSetHash {
  size_t operator()(const KSet& s) const;
};

/// \brief Edges of the k-set graph (Definition 4): index pairs (i, j),
/// i < j, whose sets share exactly k-1 elements. O(|S|^2 k).
std::vector<std::pair<size_t, size_t>> KSetGraphEdges(
    const std::vector<KSet>& sets);

/// \brief Number of connected components of the k-set graph. Theorem 7
/// states a complete k-set collection yields exactly 1; the enumeration
/// algorithms rely on that. O(|S|^2 k) — dominated by edge construction.
size_t KSetGraphComponents(const std::vector<KSet>& sets);

/// \brief Deduplicating accumulator for k-sets; preserves first-insertion
/// order (useful for reproducible hitting-set inputs).
class KSetCollection {
 public:
  /// Inserts a k-set (normalizing it); returns true when it was new.
  bool Insert(KSet set);

  /// True iff the (normalized) set has been inserted before.
  bool Contains(const KSet& set) const;

  const std::vector<KSet>& sets() const { return sets_; }
  size_t size() const { return sets_.size(); }
  bool empty() const { return sets_.empty(); }

  /// View as a hitting-set instance (Section 5.2's mapping).
  hitting::SetSystem ToSetSystem() const;

 private:
  std::vector<KSet> sets_;
  std::unordered_set<KSet, KSetHash> seen_;
};

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_KSET_H_
