#ifndef RRR_CORE_DATASET_UPDATES_H_
#define RRR_CORE_DATASET_UPDATES_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/exec_context.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/version.h"
#include "core/engine.h"
#include "core/prepared_dataset.h"
#include "data/dataset.h"

namespace rrr {
namespace core {

/// Tuning for DynamicDataset's incremental artifact maintenance. None of
/// these affect any query result — only how much derived state a new
/// version inherits versus lazily rebuilds.
struct DynamicDatasetOptions {
  /// Shared-artifact configuration for every version's PreparedDataset.
  PreparedDataset::Options prepared;
  /// Maintain derived artifacts (columnar mirror, always-outranker counts)
  /// incrementally across versions. Off = every version starts cold and
  /// rebuilds lazily on first query — the differential tests run both ways
  /// to pin that maintenance is invisible.
  bool incremental_artifacts = true;
  /// Locality bound for Delete's count maintenance: a delete only has to
  /// recount rows the deleted row saturated (count == cap); past this many
  /// recounts the maintenance abandons the counts and the next query
  /// rebuilds them from scratch (each recount is an O(n d) early-exit
  /// scan, so unbounded recounting could cost more than one rebuild).
  size_t max_delete_recounts = 8;
  /// Masked-mirror compaction trigger: once deletes have killed more than
  /// this fraction of a mirror's physical lanes, the derived mirror is not
  /// carried forward and the next query pays one dense re-transpose
  /// instead of scanning mostly-dead tiles forever.
  double max_dead_fraction = 0.5;
};

/// \brief Incremental always-outranker counts for an append: extends
/// `old_counts` (counts over the first `old_rows` rows of `grown`, capped
/// at `cap` — the CandidateIndex::CountAlwaysOutrankers contract) to cover
/// all of `grown`.
///
/// Appended rows take the largest ids, so an appended row can only outrank
/// an existing one by STRICT coordinate dominance (the weak-dominance arm
/// of AlwaysOutranks needs the smaller id) — each existing row's count
/// either stays exact or saturates at `cap`, never needs a recount. Each
/// appended row's own count is computed against every earlier row. Output
/// is bit-identical to a fresh CountAlwaysOutrankers over `grown`; cost is
/// O(appended * n * d) instead of O(n^2 d).
Result<std::vector<uint32_t>> ExtendOutrankerCountsForAppend(
    const data::Dataset& grown, size_t old_rows, size_t cap,
    const std::vector<uint32_t>& old_counts, const ExecContext& ctx = {});

/// Outcome of ShrinkOutrankerCountsForDelete. `maintained` is false when
/// the locality bound was exceeded — `counts` is then empty and the caller
/// must fall back to a full rebuild.
struct ShrinkCountsOutcome {
  bool maintained = false;
  /// Counts indexed by post-delete compacted id (old ids above the deleted
  /// row shift down by one), capped at the same `cap`.
  std::vector<uint32_t> counts;
  /// Saturated rows that needed an O(n d) early-exit recount.
  size_t recounts = 0;
};

/// \brief Incremental always-outranker counts for a delete: shrinks
/// `old_counts` (over `old_data`, capped at `cap`) to the dataset with row
/// `deleted_id` removed.
///
/// Compaction preserves the survivors' relative id order, so every
/// pairwise AlwaysOutranks relation among them is unchanged — only the
/// deleted row's contributions vanish. A survivor the deleted row
/// always-outranked loses exactly one outranker: exact counts (< cap)
/// just decrement, saturated counts (== cap, true value unknown) are
/// recounted with an early exit at `cap`. More than `max_recounts` such
/// rows → maintained == false (rebuild beats recounting). Output is
/// bit-identical to a fresh count over the compacted dataset.
Result<ShrinkCountsOutcome> ShrinkOutrankerCountsForDelete(
    const data::Dataset& old_data, size_t deleted_id, size_t cap,
    const std::vector<uint32_t>& old_counts, size_t max_recounts,
    const ExecContext& ctx = {});

/// \brief Versioned, updatable dataset: the dynamic-data layer over
/// PreparedDataset (ROADMAP item 3).
///
/// Every row-state is one immutable PreparedDataset carrying its own
/// version token and shared-artifact caches — copy-on-write snapshots.
/// Writers (Insert/Delete/BatchAppend) serialize, build the next version
/// off to the side, and publish it atomically; readers grab Snapshot()
/// and keep a fully consistent view for as long as they hold it, caches
/// included: a query pinned to an old snapshot still hits that version's
/// memos, because nothing about an old version is ever invalidated — new
/// versions are new keys (see RrrEngine's version-keyed result memo).
///
/// Ids are dense row indices 0..size()-1 of the CURRENT version: an
/// append takes the next ids, a delete shifts every higher id down by
/// one (each version is compacted, which is what makes it bit-identical
/// to a from-scratch build over the same rows — the differential suite's
/// oracle contract).
///
/// Derived artifacts carry forward incrementally when the previous
/// version had them (see DynamicDatasetOptions): the columnar mirror via
/// appended tiles / validity masks, the k-skyband counts via the
/// append/delete primitives above. An update preempted via ExecContext
/// returns Cancelled/DeadlineExceeded with the current version untouched
/// and no partial artifact published anywhere.
///
/// Thread-safety: all methods are safe from any thread; writers serialize
/// with each other, readers never block writers beyond one mutex-guarded
/// pointer copy.
class DynamicDataset {
 public:
  /// Validates and prepares the initial rows (see PreparedDataset::Create;
  /// the dataset must be non-empty and stays non-empty forever — Delete
  /// refuses to remove the last row).
  static Result<std::shared_ptr<DynamicDataset>> Create(
      data::Dataset initial, DynamicDatasetOptions options = {});

  /// The current version's immutable snapshot (never null). Holders keep
  /// a consistent view — rows, version token, artifact caches — no matter
  /// what writers publish afterwards.
  std::shared_ptr<const PreparedDataset> Snapshot() const;

  /// The current version token (== Snapshot()->version()).
  DatasetVersion version() const { return Snapshot()->version(); }

  size_t size() const { return Snapshot()->size(); }
  size_t dims() const { return Snapshot()->dims(); }

  /// Appends one row (id = size()); returns the published version.
  /// InvalidArgument on dimension mismatch or non-finite values, in which
  /// case the current version is unchanged.
  Result<DatasetVersion> Insert(const std::vector<double>& row,
                                const ExecContext& ctx = {})
      RRR_EXCLUDES(writer_mu_);

  /// Appends `rows` in order (ids = size(), size()+1, ...) as ONE new
  /// version. An empty batch publishes nothing and returns the current
  /// version.
  Result<DatasetVersion> BatchAppend(
      const std::vector<std::vector<double>>& rows,
      const ExecContext& ctx = {}) RRR_EXCLUDES(writer_mu_);

  /// Deletes row `id` of the current version; higher ids shift down by
  /// one. InvalidArgument when out of range or when the delete would empty
  /// the dataset.
  Result<DatasetVersion> Delete(int32_t id, const ExecContext& ctx = {})
      RRR_EXCLUDES(writer_mu_);

 private:
  DynamicDataset(std::shared_ptr<const PreparedDataset> initial,
                 DynamicDatasetOptions options);

  /// Builds + publishes the next version from `cells` (the full new
  /// row-major buffer). `appended_from` == the old row count for appends
  /// (drives mirror/count extension), or SIZE_MAX with `deleted_id` set
  /// for deletes.
  Result<DatasetVersion> PublishNext(
      const std::shared_ptr<const PreparedDataset>& base,
      std::vector<double> cells, size_t new_rows, size_t appended_from,
      size_t deleted_id, const ExecContext& ctx) RRR_REQUIRES(writer_mu_);

  DynamicDatasetOptions options_;
  /// Serializes update builders: held across the whole build-and-publish
  /// of a new version, guarding no data itself (the build works on local
  /// state; publication takes mu_ at the very end). RRR_REQUIRES on
  /// PublishNext is what ties the capability to the builders' contract.
  Mutex writer_mu_ RRR_ACQUIRED_BEFORE(mu_);
  mutable Mutex mu_;
  std::shared_ptr<const PreparedDataset> current_ RRR_GUARDED_BY(mu_);
};

/// \brief Dynamic engine over `source`: every Solve/SolveDual/Evaluate
/// resolves the current snapshot at query entry (pin an explicit one via
/// QueryOptions::snapshot), with results memoized per dataset version.
Result<std::shared_ptr<RrrEngine>> NewDynamicEngine(
    std::shared_ptr<const DynamicDataset> source, EngineOptions options = {});

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_DATASET_UPDATES_H_
