#include "core/mdrrr.h"

#include "hitting/epsnet.h"
#include "hitting/greedy.h"

namespace rrr {
namespace core {

Result<std::vector<int32_t>> SolveMdrrr(const data::Dataset& dataset,
                                        const KSetCollection& ksets,
                                        const MdrrrOptions& options,
                                        const ExecContext& ctx) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (ksets.empty()) {
    return Status::InvalidArgument("MDRRR needs a non-empty k-set collection");
  }
  const hitting::SetSystem system = ksets.ToSetSystem();
  if (options.strategy == HittingStrategy::kGreedy) {
    return hitting::GreedyHittingSet(system);
  }
  hitting::EpsNetOptions net;
  net.seed = options.seed;
  net.vc_dim = options.vc_dim > 0 ? options.vc_dim
                                  : static_cast<int>(dataset.dims());
  net.doubling = hitting::DoublingStrategy::kAllMissed;
  return hitting::EpsNetHittingSet(system, net);
}

Result<std::vector<int32_t>> SolveMdrrrSampled(
    const data::Dataset& dataset, size_t k, const MdrrrOptions& options,
    const KSetSamplerOptions& sampler_options, const ExecContext& ctx,
    const CandidateIndex* candidates) {
  KSetSampleResult sample;
  RRR_ASSIGN_OR_RETURN(
      sample, SampleKSets(dataset, k, sampler_options, ctx, candidates));
  return SolveMdrrr(dataset, sample.ksets, options, ctx);
}

}  // namespace core
}  // namespace rrr
