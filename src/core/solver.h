#ifndef RRR_CORE_SOLVER_H_
#define RRR_CORE_SOLVER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "core/kset_sampler.h"
#include "core/mdrc.h"
#include "core/mdrrr.h"
#include "core/rrr2d.h"
#include "data/dataset.h"

namespace rrr {
namespace core {

/// Algorithm selector for the facade.
enum class Algorithm {
  /// 2DRRR for d == 2; exact convex maxima for k == 1 in higher dimensions
  /// (where MDRC's partition cannot terminate — adjacent 1-sets are
  /// disjoint); MDRC otherwise (the scalable defaults per Section 6).
  kAuto,
  /// Algorithm 2; 2D only.
  k2dRrr,
  /// Algorithm 3 over a K-SETr sample.
  kMdRrr,
  /// Algorithm 5.
  kMdRc,
  /// Exact order-1 representative (Section 2: the convex hull maxima), any
  /// dimension, via skyline prefilter + separation LP per candidate. The
  /// unique optimal solution for k == 1; rejects k > 1.
  kConvexMaxima,
};

/// Human-readable algorithm name ("2DRRR", "MDRRR", ...).
std::string AlgorithmName(Algorithm algorithm);

/// \brief Inverse of AlgorithmName: parses an algorithm selector,
/// case-insensitively, accepting both the canonical names ("2DRRR",
/// "MDRRR", "MDRC", "MAXIMA", "AUTO") and their lower-case CLI spellings.
///
/// Fails with InvalidArgument (naming the accepted spellings) on anything
/// else. Round-trips: ParseAlgorithm(AlgorithmName(a)) == a for every a.
Result<Algorithm> ParseAlgorithm(std::string_view name);

/// Options for FindRankRegretRepresentative.
struct RrrOptions {
  /// Rank budget: the representative must contain a top-k item for every
  /// linear ranking function.
  size_t k = 1;
  Algorithm algorithm = Algorithm::kAuto;
  /// Worker threads for the dispatched algorithm: 0 = hardware concurrency
  /// (the default), 1 = serial. Non-zero values override the `threads`
  /// field of the per-algorithm sub-options below; 0 leaves them as set.
  /// Every algorithm returns an identical representative for every thread
  /// count (parallelism only reorders internal evaluation).
  size_t threads = 0;
  Rrr2dOptions rrr2d;
  MdrrrOptions mdrrr;
  KSetSamplerOptions sampler;
  MdrcOptions mdrc;
};

/// Output of the facade.
struct RrrResult {
  /// Ids of the representative tuples, sorted.
  std::vector<int32_t> representative;
  /// The algorithm that actually ran (kAuto resolved).
  Algorithm algorithm_used = Algorithm::kAuto;
  /// Wall-clock seconds spent inside the algorithm.
  double seconds = 0.0;
};

/// \brief One-call entry point to the library: computes a rank-regret
/// representative of `dataset` for the options' k.
///
/// This is a thin wrapper over a temporary RrrEngine (core/engine.h): it
/// prepares the dataset, runs one query, and discards the engine. Callers
/// issuing more than one query against the same dataset should hold an
/// RrrEngine instead — it shares the prepared artifacts and memoizes
/// results across queries.
///
/// See the per-algorithm headers for the exact guarantees and costs
/// (2DRRR: optimal size / 2k regret, O(n^2 log n); MDRRR: k regret on the
/// sampled k-sets / log-factor size; MDRC: dk regret / small size in
/// practice).
///
/// Fails with InvalidArgument for an empty dataset, k == 0, or an
/// algorithm/dimension mismatch (k2dRrr on d != 2, kConvexMaxima with
/// k > 1); otherwise propagates the dispatched algorithm's Status (e.g.
/// MDRC's ResourceExhausted, or Cancelled/DeadlineExceeded when `ctx`
/// preempts the solve).
Result<RrrResult> FindRankRegretRepresentative(const data::Dataset& dataset,
                                               const RrrOptions& options,
                                               const ExecContext& ctx = {});

/// One oracle probe of the dual binary search (diagnostic trail).
struct DualProbe {
  /// The k this probe solved at.
  size_t k = 0;
  /// Algorithm the probe dispatched to (kAuto resolved — may differ across
  /// probes, e.g. convex maxima at k == 1, MDRC above).
  Algorithm algorithm_used = Algorithm::kAuto;
  /// Wall-clock seconds of this probe.
  double seconds = 0.0;
  /// Size of the probe's representative (0 when the probe failed).
  size_t representative_size = 0;
  /// True when the representative fit the caller's size budget.
  bool feasible = false;
  /// kOk, or kResourceExhausted when the solver's own budget died at this
  /// k (the search then continues upward).
  StatusCode status = StatusCode::kOk;
  /// True when an engine served this probe from its per-(k, algorithm)
  /// result memo (always false through the one-shot free function).
  bool from_cache = false;
};

/// Output of SolveDualProblem.
struct DualResult {
  /// Smallest k for which the solver's representative fit the size budget.
  size_t k = 0;
  std::vector<int32_t> representative;
  Algorithm algorithm_used = Algorithm::kAuto;
  /// Total wall-clock seconds across all probes.
  double seconds = 0.0;
  /// Every oracle probe in execution order, with per-probe timing and the
  /// algorithm it resolved to.
  std::vector<DualProbe> probes;
  /// True when any probe ran degraded (a shared-artifact build failed and
  /// the probe fell back to the legacy unpruned path — results are
  /// bit-identical, only throughput suffers; see Diagnostics::degraded).
  bool degraded = false;
  /// Block-max pruning totals summed over the non-cached probes (see
  /// Diagnostics::blocks_scanned; memo-hit probes did no scanning).
  uint64_t blocks_scanned = 0;
  uint64_t blocks_skipped = 0;
};

/// \brief The dual formulation (Section 2): given a maximum representative
/// size, binary-search the smallest k whose representative fits.
///
/// A thin wrapper over a temporary RrrEngine (core/engine.h), whose
/// prepared artifacts are shared by all O(log n) probes; hold an engine to
/// also share them with subsequent queries.
///
/// Fails with InvalidArgument for max_size == 0 or an empty dataset, and
/// with NotFound when even k = n produces a representative larger than
/// `max_size` (cannot happen for max_size >= 1 with MDRC/2DRRR); oracle
/// ResourceExhausted probes are treated as "too large" and the search
/// continues upward. When *every* probe is exhausted — no k produced any
/// representative at all — the failure is reported as ResourceExhausted
/// (the solver budget, not the size budget, is what failed). Returns
/// Cancelled/DeadlineExceeded when `ctx` preempts the search.
Result<DualResult> SolveDualProblem(const data::Dataset& dataset,
                                    size_t max_size,
                                    const RrrOptions& base_options,
                                    const ExecContext& ctx = {});

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_SOLVER_H_
