#include "core/kset.h"

#include <algorithm>

namespace rrr {
namespace core {

void KSet::Normalize() { std::sort(ids.begin(), ids.end()); }

size_t KSet::IntersectionSize(const KSet& other) const {
  size_t i = 0, j = 0, count = 0;
  while (i < ids.size() && j < other.ids.size()) {
    if (ids[i] < other.ids[j]) {
      ++i;
    } else if (ids[i] > other.ids[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

size_t KSetHash::operator()(const KSet& s) const {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (int32_t id : s.ids) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(id));
    h *= 1099511628211ull;  // FNV prime
  }
  return static_cast<size_t>(h);
}

std::vector<std::pair<size_t, size_t>> KSetGraphEdges(
    const std::vector<KSet>& sets) {
  std::vector<std::pair<size_t, size_t>> edges;
  const size_t k = sets.empty() ? 0 : sets[0].ids.size();
  for (size_t i = 0; i < sets.size(); ++i) {
    for (size_t j = i + 1; j < sets.size(); ++j) {
      if (k >= 1 && sets[i].IntersectionSize(sets[j]) == k - 1) {
        edges.emplace_back(i, j);
      }
    }
  }
  return edges;
}

namespace {

size_t FindRoot(std::vector<size_t>* parent, size_t x) {
  while ((*parent)[x] != x) {
    (*parent)[x] = (*parent)[(*parent)[x]];  // path halving
    x = (*parent)[x];
  }
  return x;
}

}  // namespace

size_t KSetGraphComponents(const std::vector<KSet>& sets) {
  if (sets.empty()) return 0;
  std::vector<size_t> parent(sets.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  size_t components = sets.size();
  for (const auto& [a, b] : KSetGraphEdges(sets)) {
    const size_t ra = FindRoot(&parent, a);
    const size_t rb = FindRoot(&parent, b);
    if (ra != rb) {
      parent[ra] = rb;
      --components;
    }
  }
  return components;
}

bool KSetCollection::Insert(KSet set) {
  set.Normalize();
  if (seen_.count(set) != 0) return false;
  seen_.insert(set);
  sets_.push_back(std::move(set));
  return true;
}

bool KSetCollection::Contains(const KSet& set) const {
  KSet copy = set;
  copy.Normalize();
  return seen_.count(copy) != 0;
}

hitting::SetSystem KSetCollection::ToSetSystem() const {
  hitting::SetSystem system;
  system.sets.reserve(sets_.size());
  for (const auto& s : sets_) system.sets.push_back(s.ids);
  return system;
}

}  // namespace core
}  // namespace rrr
