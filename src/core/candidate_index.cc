#include "core/candidate_index.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/random.h"
#include "topk/rank.h"
#include "topk/score_kernel.h"

namespace rrr {
namespace core {

bool AlwaysOutranks(const double* j_row, int32_t j, const double* i_row,
                    int32_t i, size_t d) {
  bool all_strict = true;
  for (size_t c = 0; c < d; ++c) {
    if (j_row[c] < i_row[c]) return false;
    if (j_row[c] == i_row[c]) all_strict = false;
  }
  return all_strict || j < i;
}

namespace {

/// Rows ordered by (coordinate sum desc, id asc). Any always-outranker of a
/// row precedes it in this order: strict dominance implies a strictly
/// larger sum, and weak dominance with an equal sum implies an identical
/// row, where the smaller id sorts first. With a columnar mirror the sums
/// come from the blocked kernel under the all-ones function — 1.0 * x == x
/// exactly, so the sums (and the order) are bit-identical to the row loop.
std::vector<int32_t> SumOrder(const data::Dataset& dataset,
                              std::vector<double>* sums,
                              const data::ColumnBlocks* blocks) {
  const size_t n = dataset.size();
  const size_t d = dataset.dims();
  sums->resize(n);
  if (blocks != nullptr) {
    RRR_DCHECK(blocks->source() == &dataset)
        << "SumOrder: blocks mirror a different dataset";
    topk::ScoreAll(topk::LinearFunction(geometry::Vec(d, 1.0)), *blocks,
                   sums->data());
  } else {
    for (size_t i = 0; i < n; ++i) {
      const double* row = dataset.row(i);
      double s = 0.0;
      for (size_t c = 0; c < d; ++c) s += row[c];
      (*sums)[i] = s;
    }
  }
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    const double sa = (*sums)[static_cast<size_t>(a)];
    const double sb = (*sums)[static_cast<size_t>(b)];
    if (sa != sb) return sa > sb;
    return a < b;
  });
  return order;
}

/// Always-outranker count of the row at sorted position `pos`, scanning at
/// most `prefix` predecessors, capped at `cap`.
uint32_t CountForRow(const data::Dataset& dataset,
                     const std::vector<int32_t>& order, size_t pos,
                     size_t prefix, uint32_t cap, size_t* scanned) {
  const size_t d = dataset.dims();
  const int32_t i = order[pos];
  const double* i_row = dataset.row(static_cast<size_t>(i));
  const size_t limit = std::min(pos, prefix);
  uint32_t count = 0;
  size_t q = 0;
  for (; q < limit && count < cap; ++q) {
    const int32_t j = order[q];
    if (AlwaysOutranks(dataset.row(static_cast<size_t>(j)), j, i_row, i, d)) {
      ++count;
    }
  }
  if (scanned != nullptr) *scanned += q;
  return count;
}

struct CountOutcome {
  std::vector<uint32_t> counts;  // indexed by original id
  bool aborted = false;          // work budget exceeded
};

Result<CountOutcome> CountWithBudget(const data::Dataset& dataset,
                                     const std::vector<int32_t>& order,
                                     uint32_t cap, size_t threads,
                                     size_t budget_pairs,
                                     const ExecContext& ctx) {
  const size_t n = dataset.size();
  CountOutcome out;
  out.counts.assign(n, 0);
  std::atomic<size_t> scanned_total{0};
  std::atomic<bool> over_budget{false};
  std::atomic<bool> preempted{false};
  ParallelForChunked(
      ResolveThreads(threads), n, 64, [&](size_t begin, size_t end) {
        if (over_budget.load(std::memory_order_relaxed) ||
            preempted.load(std::memory_order_relaxed)) {
          return;
        }
        if (!ctx.CheckPreempted().ok()) {
          preempted.store(true, std::memory_order_relaxed);
          return;
        }
        size_t scanned = 0;
        for (size_t pos = begin; pos < end; ++pos) {
          out.counts[static_cast<size_t>(order[pos])] =
              CountForRow(dataset, order, pos, n, cap, &scanned);
          if (budget_pairs != 0 && scanned > (budget_pairs >> 4)) {
            if (scanned_total.fetch_add(scanned, std::memory_order_relaxed) +
                    scanned >
                budget_pairs) {
              over_budget.store(true, std::memory_order_relaxed);
              return;
            }
            scanned = 0;
          }
        }
        scanned_total.fetch_add(scanned, std::memory_order_relaxed);
      });
  if (preempted.load()) {
    Status cause = ctx.CheckPreempted();
    if (cause.ok()) cause = Status::Cancelled("dominance count preempted");
    return cause;
  }
  if (budget_pairs != 0 && scanned_total.load() > budget_pairs) {
    out.aborted = true;
  }
  out.aborted = out.aborted || over_budget.load();
  return out;
}

}  // namespace

Result<std::vector<uint32_t>> CandidateIndex::CountAlwaysOutrankers(
    const data::Dataset& dataset, size_t cap, size_t threads,
    const ExecContext& ctx, const data::ColumnBlocks* blocks) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (cap == 0) return Status::InvalidArgument("cap must be >= 1");
  RRR_RETURN_IF_ERROR(dataset.CheckFinite());
  std::vector<double> sums;
  const std::vector<int32_t> order = SumOrder(dataset, &sums, blocks);
  const uint32_t capped = static_cast<uint32_t>(
      std::min<size_t>(cap, dataset.size()));
  CountOutcome counted;
  RRR_ASSIGN_OR_RETURN(
      counted, CountWithBudget(dataset, order, capped, threads, 0, ctx));
  return std::move(counted.counts);
}

CandidateIndex::CandidateIndex(const data::Dataset& full, size_t k,
                               data::Dataset band,
                               std::vector<int32_t> band_ids,
                               std::vector<char> in_band)
    : full_(&full),
      k_(k),
      band_(std::move(band)),
      band_ids_(std::move(band_ids)),
      in_band_(std::move(in_band)) {
  // The band is this index's hot scan surface (TA dense queries, the
  // MinRankOfSubset band count, the band sweep's initial scoring), so its
  // columnar mirror is built unconditionally — one O(band * d) pass,
  // serial: the band build itself already gated profitability.
  Result<data::ColumnBlocks> mirror = data::ColumnBlocks::Build(band_, 1);
  RRR_CHECK(mirror.ok()) << mirror.status().ToString();
  band_blocks_ =
      std::make_unique<data::ColumnBlocks>(std::move(mirror).value());
  ta_ = std::make_unique<topk::ThresholdAlgorithmIndex>(band_,
                                                        band_blocks_.get());
  if (band_.dims() == 2) {
    band_sweep_ = std::make_unique<AngularSweep>(band_, band_blocks_.get());
  }
}

Result<CandidateIndex::Outcome> CandidateIndex::Create(
    const data::Dataset& dataset, size_t k,
    const CandidateIndexOptions& options, const ExecContext& ctx,
    const std::vector<uint32_t>* counts, const data::ColumnBlocks* blocks) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  // NaNs would make the sum-order comparator's ordering undefined.
  RRR_RETURN_IF_ERROR(dataset.CheckFinite());
  const size_t n = dataset.size();
  const size_t kk = std::min(k, n);
  const size_t threads = ResolveThreads(ctx.ThreadsOver(options.threads));

  Outcome out;
  std::shared_ptr<const std::vector<uint32_t>> owned_counts;
  if (counts != nullptr) {
    RRR_CHECK(counts->size() == n)
        << "precomputed counts size mismatches the dataset";
  } else {
    if (n < options.min_dataset_size) {
      out.decline_reason = "dataset below min_dataset_size";
      return out;
    }
    std::vector<double> sums;
    const std::vector<int32_t> order = SumOrder(dataset, &sums, blocks);

    const size_t budget =
        options.budget_slack_per_tuple == 0
            ? 0
            : n * (kk + options.budget_slack_per_tuple);

    // Two-stage sampled pre-check. Stage 1 predicts the band fraction from
    // a handful of rows, each counted only against a short best-sum
    // prefix: on data where pruning wins, k dominators show up within that
    // prefix; on anti-correlated data almost none do, and we decline for
    // O(sample * prefix * d) instead of paying the O(n^2 d) count. Stage 2
    // projects the full count's cost from the same sample with the prefix
    // uncapped, so an over-budget count is declined in milliseconds
    // instead of after burning the whole budget.
    if (options.precheck_sample > 0) {
      const size_t sample = std::min(options.precheck_sample, n);
      const size_t prefix =
          std::min(n, std::max<size_t>(1, options.precheck_prefix_factor) * kk);
      Rng rng(0x5eedbad5ULL);
      std::vector<size_t> positions(sample);
      for (size_t s = 0; s < sample; ++s) {
        positions[s] = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      }
      size_t predicted_band = 0;
      for (size_t pos : positions) {
        const uint32_t c = CountForRow(dataset, order, pos, prefix,
                                       static_cast<uint32_t>(kk), nullptr);
        if (c < kk) ++predicted_band;
      }
      const double fraction =
          static_cast<double>(predicted_band) / static_cast<double>(sample);
      if (fraction > options.precheck_max_band_fraction) {
        out.decline_reason = "pre-check predicted a near-full band";
        return out;
      }
      RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
      if (budget != 0) {
        size_t sampled_pairs = 0;
        for (size_t pos : positions) {
          CountForRow(dataset, order, pos, n, static_cast<uint32_t>(kk),
                      &sampled_pairs);
        }
        const double projected = static_cast<double>(sampled_pairs) /
                                 static_cast<double>(sample) *
                                 static_cast<double>(n);
        if (projected > 1.25 * static_cast<double>(budget)) {
          out.decline_reason =
              "pre-check projected the dominance count over its work budget";
          return out;
        }
        RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
      }
    }
    CountOutcome counted;
    RRR_ASSIGN_OR_RETURN(
        counted, CountWithBudget(dataset, order, static_cast<uint32_t>(kk),
                                 threads, budget, ctx));
    if (counted.aborted) {
      out.decline_reason = "dominance count exceeded its work budget";
      return out;
    }
    owned_counts = std::make_shared<const std::vector<uint32_t>>(
        std::move(counted.counts));
    counts = owned_counts.get();
    out.counts = owned_counts;
  }

  std::vector<int32_t> band_ids;
  band_ids.reserve(n);
  std::vector<char> in_band(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if ((*counts)[i] < kk) {
      band_ids.push_back(static_cast<int32_t>(i));
      in_band[i] = 1;
    }
  }
  const double fraction =
      static_cast<double>(band_ids.size()) / static_cast<double>(n);
  if (fraction > options.max_band_fraction) {
    out.decline_reason = "band keeps too large a fraction of the rows";
    return out;
  }

  const size_t d = dataset.dims();
  std::vector<double> cells;
  cells.reserve(band_ids.size() * d);
  for (int32_t id : band_ids) {
    const double* row = dataset.row(static_cast<size_t>(id));
    cells.insert(cells.end(), row, row + d);
  }
  Result<data::Dataset> band =
      data::Dataset::FromFlat(std::move(cells), band_ids.size(), d);
  RRR_CHECK(band.ok()) << band.status().ToString();
  // The constructor below builds the band mirror + TA index infallibly, so
  // this is the last fallible point before they exist.
  RRR_FAILPOINT("core.artifact.ta_index");
  out.index = std::shared_ptr<const CandidateIndex>(
      new CandidateIndex(dataset, kk, std::move(band).value(),
                         std::move(band_ids), std::move(in_band)));
  return out;
}

std::vector<int32_t> CandidateIndex::TopK(const topk::LinearFunction& f,
                                          size_t k) const {
  k = std::min(k, full_->size());  // same clamp as topk::TopK
  RRR_CHECK(k <= k_) << "CandidateIndex: top-" << k
                     << " requested from a band built for k = " << k_;
  std::vector<int32_t> ids = ta_->TopK(f, k);
  for (int32_t& id : ids) id = band_ids_[static_cast<size_t>(id)];
  return ids;
}

std::vector<int32_t> CandidateIndex::TopKSet(const topk::LinearFunction& f,
                                             size_t k) const {
  k = std::min(k, full_->size());  // same clamp as topk::TopKSet
  RRR_CHECK(k <= k_) << "CandidateIndex: top-" << k
                     << " requested from a band built for k = " << k_;
  // Band ids ascend with original ids, so the sorted band-local set maps to
  // a sorted original-id set.
  std::vector<int32_t> ids = ta_->TopKSet(f, k);
  for (int32_t& id : ids) id = band_ids_[static_cast<size_t>(id)];
  return ids;
}

int32_t CandidateIndex::Top1(const topk::LinearFunction& f) const {
  return TopK(f, 1).front();
}

int64_t CandidateIndex::MinRankOfSubset(
    const topk::LinearFunction& f, const std::vector<int32_t>& subset,
    size_t* full_scan_fallbacks, const data::ColumnBlocks* full_blocks) const {
  RRR_CHECK(!subset.empty()) << "MinRankOfSubset: empty subset";
  const data::Dataset& full = *full_;
  // Best member under the tie-broken order (same arithmetic as
  // topk::MinRankOfSubset — subset members may lie outside the band).
  int32_t best = subset[0];
  double best_score = f.Score(full.row(static_cast<size_t>(best)));
  for (size_t i = 1; i < subset.size(); ++i) {
    const int32_t t = subset[i];
    const double s = f.Score(full.row(static_cast<size_t>(t)));
    if (topk::Outranks(s, t, best_score, best)) {
      best = t;
      best_score = s;
    }
  }
  if (in_band(best)) {
    // Count band outrankers, blockwise through the kernel. While the
    // running rank stays <= k_, it is the exact full-dataset rank (band
    // top-k_ == full top-k_, ordered); scores are bit-identical to the row
    // loop, so the certify/fallback decision is too.
    constexpr size_t kBlockRows = data::ColumnBlocks::kBlockRows;
    const data::ColumnBlocks& mirror = *band_blocks_;
    const double* w = f.weights().data();
    const size_t d = mirror.dims();
    double buf[kBlockRows];
    int64_t rank = 1;
    bool certified = true;
    const size_t num_blocks = mirror.num_blocks();
    const bool use_skip =
        topk::BlockSkipResolved(topk::BlockSkip::kAuto, mirror);
    topk::ScanStats scan_stats;
    for (size_t blk = 0; blk < num_blocks && certified; ++blk) {
      // A block upper-bounded strictly below best_score holds no outranker
      // (a tie at best_score could, so ties scan — same strict-loss rule
      // as the kernel entry points).
      if (use_skip &&
          topk::BlockUpperBound(w, d, mirror.block_max(blk),
                                mirror.block_min(blk)) < best_score) {
        ++scan_stats.blocks_skipped;
        continue;
      }
      ++scan_stats.blocks_scanned;
      topk::ScoreBlock(w, d, mirror.block(blk), buf);
      const size_t rows = mirror.block_rows(blk);
      const size_t base = blk * kBlockRows;
      for (size_t lane = 0; lane < rows; ++lane) {
        const int32_t id = band_ids_[base + lane];
        if (id == best) continue;
        if (topk::Outranks(buf[lane], id, best_score, best)) {
          if (++rank > static_cast<int64_t>(k_)) {
            certified = false;
            break;
          }
        }
      }
    }
    topk::AccumulateScanCounters(scan_stats);
    if (certified) return rank;
  }
  if (full_scan_fallbacks != nullptr) ++(*full_scan_fallbacks);
  return topk::MinRankOfSubset(full, f, subset, full_blocks);
}

size_t CandidateIndex::ApproxBytes() const {
  size_t bytes = band_.size() * band_.dims() * sizeof(double);
  bytes += band_ids_.capacity() * sizeof(int32_t);
  bytes += in_band_.capacity() * sizeof(char);
  if (band_blocks_ != nullptr) bytes += band_blocks_->ApproxBytes();
  if (ta_ != nullptr) bytes += ta_->ApproxBytes();
  if (band_sweep_ != nullptr) bytes += band_sweep_->ApproxBytes();
  return bytes;
}

}  // namespace core
}  // namespace rrr
