#ifndef RRR_CORE_FIND_RANGES_H_
#define RRR_CORE_FIND_RANGES_H_

#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "data/dataset.h"

namespace rrr {
namespace core {

class AngularSweep;
class CandidateIndex;

/// Result of Algorithm 1 for one item: the convex closure of the sweep
/// angles at which the item is in the top-k.
struct ItemRange {
  /// False when the item never enters the top-k; begin/end are then
  /// meaningless.
  bool in_topk = false;
  /// First angle (b[t] in the paper) at which the item is in the top-k.
  double begin = 0.0;
  /// Last angle (e[t]) at which the item is in the top-k.
  double end = 0.0;
};

/// \brief Algorithm 1 (FindRanges): one angular sweep computing, for every
/// item of a 2D dataset, the first and last ranking angle at which it ranks
/// in the top-k.
///
/// Within [begin, end] the item's rank can temporarily exceed k (the top-k
/// border is not convex) but by Theorem 1 it never exceeds 2k, which is what
/// gives 2DRRR its approximation factor. O(E log n) where E is the number of
/// rank exchanges (at most n(n-1)/2).
///
/// Fails with InvalidArgument unless dims == 2 and k >= 1; returns
/// Cancelled/DeadlineExceeded (with no partial output) when `ctx` preempts
/// the sweep, whose event loop is the preemption point.
///
/// `sweep` optionally supplies a prebuilt AngularSweep over the same
/// dataset (PreparedDataset shares one across queries, saving the
/// O(n log n) initial sort per call); when null a fresh sweep is built.
///
/// `candidates` (may be null) runs the sweep over the k-skyband instead of
/// the full dataset — every top-k boundary crossing is an exchange between
/// band members at the same angle in either sweep, so the per-item ranges
/// (and everything 2DRRR derives from them) are bit-identical while the
/// event count drops from O(n^2) to O(band^2). Takes precedence over
/// `sweep`; must be built over `dataset` with candidates->k() >= k.
Result<std::vector<ItemRange>> FindRanges(
    const data::Dataset& dataset, size_t k, const ExecContext& ctx = {},
    const AngularSweep* sweep = nullptr,
    const CandidateIndex* candidates = nullptr);

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_FIND_RANGES_H_
