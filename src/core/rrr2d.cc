#include "core/rrr2d.h"

#include "core/find_ranges.h"
#include "geometry/angles.h"

namespace rrr {
namespace core {

Result<std::vector<int32_t>> Solve2dRrr(const data::Dataset& dataset,
                                        size_t k,
                                        const Rrr2dOptions& options) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  std::vector<ItemRange> ranges;
  RRR_ASSIGN_OR_RETURN(ranges, FindRanges(dataset, k));

  std::vector<hitting::Interval> intervals;
  intervals.reserve(ranges.size());
  for (size_t id = 0; id < ranges.size(); ++id) {
    if (!ranges[id].in_topk) continue;
    intervals.push_back(hitting::Interval{ranges[id].begin, ranges[id].end,
                                          static_cast<int32_t>(id)});
  }
  // Every angle has a top-k, so the union of ranges covers [0, pi/2]; a
  // cover failure would indicate a sweep bug, surfaced as a Status.
  return hitting::CoverLine(intervals, 0.0, geometry::kHalfPi, options.cover);
}

}  // namespace core
}  // namespace rrr
