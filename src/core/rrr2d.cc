#include "core/rrr2d.h"

#include <algorithm>

#include "core/candidate_index.h"
#include "core/find_ranges.h"
#include "geometry/angles.h"
#include "topk/scoring.h"
#include "topk/topk.h"

namespace rrr {
namespace core {

Result<std::vector<int32_t>> Solve2dRrr(const data::Dataset& dataset,
                                        size_t k,
                                        const Rrr2dOptions& options,
                                        const ExecContext& ctx,
                                        const AngularSweep* sweep,
                                        const CandidateIndex* candidates,
                                        const data::ColumnBlocks* blocks) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  // NaN coordinates make the sweep comparators' ordering undefined (the
  // event heap can cycle); fail loudly instead.
  RRR_RETURN_IF_ERROR(dataset.CheckFinite());
  std::vector<ItemRange> ranges;
  RRR_ASSIGN_OR_RETURN(ranges,
                       FindRanges(dataset, k, ctx, sweep, candidates));
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());

  std::vector<hitting::Interval> intervals;
  intervals.reserve(ranges.size());
  for (size_t id = 0; id < ranges.size(); ++id) {
    if (!ranges[id].in_topk) continue;
    intervals.push_back(hitting::Interval{ranges[id].begin, ranges[id].end,
                                          static_cast<int32_t>(id)});
  }
  // Every angle has a top-k, so the union of ranges covers [0, pi/2]; a
  // cover failure would indicate a sweep bug, surfaced as a Status.
  std::vector<int32_t> cover;
  RRR_ASSIGN_OR_RETURN(
      cover,
      hitting::CoverLine(intervals, 0.0, geometry::kHalfPi, options.cover));

  // The interval model covers the endpoints with limit semantics; at the
  // exact endpoint functions w = (1, 0) and w = (0, 1) score ties resolve
  // by id instead, so on tie-heavy data the endpoint top-k can differ from
  // the limit top-k (see the AngularSweep docs). Patch the measure-zero
  // gap directly: if no chosen item is top-k at an endpoint, add that
  // endpoint's top-1.
  for (const auto& axis :
       {geometry::Vec{1.0, 0.0}, geometry::Vec{0.0, 1.0}}) {
    const topk::LinearFunction f(axis);
    const std::vector<int32_t> endpoint_topk =
        candidates != nullptr ? candidates->TopK(f, k)
                              : topk::TopK(dataset, f, k, blocks);
    const bool hit = std::any_of(
        cover.begin(), cover.end(), [&](int32_t id) {
          return std::find(endpoint_topk.begin(), endpoint_topk.end(), id) !=
                 endpoint_topk.end();
        });
    if (!hit) cover.push_back(endpoint_topk.front());
  }
  std::sort(cover.begin(), cover.end());
  cover.erase(std::unique(cover.begin(), cover.end()), cover.end());
  return cover;
}

}  // namespace core
}  // namespace rrr
