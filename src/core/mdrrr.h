#ifndef RRR_CORE_MDRRR_H_
#define RRR_CORE_MDRRR_H_

#include <cstdint>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "core/kset.h"
#include "core/kset_sampler.h"
#include "data/dataset.h"

namespace rrr {
namespace core {

/// Which hitting-set engine MDRRR runs over the k-set collection.
enum class HittingStrategy {
  /// Bronnimann-Goodrich eps-net weight doubling (the paper's Algorithm 3);
  /// O(d log(d c)) size factor for VC dimension d.
  kEpsNet,
  /// Classic greedy; ln|S| size factor, deterministic.
  kGreedy,
};

/// Tuning for SolveMdrrr.
struct MdrrrOptions {
  HittingStrategy strategy = HittingStrategy::kEpsNet;
  /// Seed for the eps-net sampler.
  uint64_t seed = 17;
  /// VC-dimension override for the eps-net engine; <= 0 means use the
  /// dataset dimensionality d (correct for half-space-induced k-sets,
  /// Section 5.2).
  int vc_dim = 0;
};

/// \brief Algorithm 3 (MDRRR): hitting set over a k-set collection.
///
/// Given the collection of all k-sets, the returned subset contains a
/// member of every k-set and therefore has rank-regret exactly <= k for
/// every linear ranking function (Lemma 5); the size is within an
/// O(d log(d c)) factor of optimal. With a sampled collection (K-SETr) the
/// guarantee holds for every k-set in the sample.
///
/// Cost is the hitting-set engine's: the eps-net strategy runs O(log c)
/// weight-doubling rounds over |S| = c sets of size k; greedy is
/// O(c^2 k) worst case. Both are polynomial in the collection, which is
/// the input here — enumeration/sampling cost is paid by the caller.
///
/// Fails with InvalidArgument when the dataset or k-set collection is
/// empty; propagates any Status from the hitting-set engine. Returns
/// Cancelled/DeadlineExceeded when `ctx` has already fired at entry (the
/// hitting-set engines themselves run to completion once started — their
/// cost is polynomial in the collection, which the caller controls).
Result<std::vector<int32_t>> SolveMdrrr(const data::Dataset& dataset,
                                        const KSetCollection& ksets,
                                        const MdrrrOptions& options = {},
                                        const ExecContext& ctx = {});

/// \brief Full MDRRR pipeline as evaluated in Section 6: K-SETr sampling
/// (Algorithm 4) followed by the hitting set (Algorithm 3).
///
/// Fails with InvalidArgument for k == 0 or an empty dataset; propagates
/// sampler and hitting-set errors (including the sampler's
/// Cancelled/DeadlineExceeded preemption statuses) otherwise. `candidates`
/// (may be null) is forwarded to SampleKSets — see there; the output is
/// bit-identical with and without it.
Result<std::vector<int32_t>> SolveMdrrrSampled(
    const data::Dataset& dataset, size_t k, const MdrrrOptions& options = {},
    const KSetSamplerOptions& sampler_options = {},
    const ExecContext& ctx = {}, const CandidateIndex* candidates = nullptr);

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_MDRRR_H_
