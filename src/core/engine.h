#ifndef RRR_CORE_ENGINE_H_
#define RRR_CORE_ENGINE_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/version.h"
#include "core/prepared_dataset.h"
#include "core/solver.h"
#include "data/dataset.h"

namespace rrr {
namespace core {

/// \brief Unified observability block returned by every engine query,
/// replacing the scattered per-algorithm counters (MdrcStats out-param,
/// sampler counts, ad-hoc timing fields).
///
/// Counters for machinery a query did not touch stay zero: a 2DRRR query
/// reports empty mdrc/sampler sections, an MDRC query reports no sampler
/// draws, and so on.
struct Diagnostics {
  /// The algorithm that actually ran (kAuto resolved).
  Algorithm algorithm_used = Algorithm::kAuto;
  /// Wall-clock seconds of this query (memo lookup time on cache hits).
  double seconds = 0.0;
  /// True when the representative came from the engine's per-(k,
  /// algorithm) result memo; the remaining counters then describe the
  /// original computing run.
  bool result_from_cache = false;
  /// True when a prepared-dataset shared artifact satisfied part of the
  /// work (K-SETr sample reused, warm MDRC corner hits, memoized maxima).
  bool reused_prepared_artifacts = false;
  /// MDRC partition counters (all zero unless MDRC ran). With the engine's
  /// shared corner cache, cache_hits includes corners computed by earlier
  /// queries — the cross-query reuse signal.
  MdrcStats mdrc;
  /// K-SETr counters (zero unless the sampler ran).
  size_t sampler_samples_drawn = 0;
  size_t sampler_ksets = 0;
  /// True when the sample came from the prepared dataset's (k, seed) memo.
  bool sampler_from_cache = false;
  /// Ranking functions drawn by Evaluate's sampled estimator (0 for the
  /// exact 2D path and for Solve/SolveDual queries).
  size_t eval_functions_sampled = 0;
  /// Size of the shared k-skyband candidate set the query's top-k probes
  /// ran over (0 when the index declined to build or the path has no top-k
  /// probes — results are bit-identical either way).
  size_t skyband_size = 0;
  /// Estimated dataset rows the k-skyband pruning kept out of top-k scans:
  /// pruned probes x (n - skyband_size). A throughput observability signal
  /// like `seconds`, not part of the deterministic-output contract.
  size_t skyband_scan_rows_saved = 0;
  /// True when the query's full-dataset scans ran through the shared
  /// columnar mirror and the blocked scoring kernel
  /// (topk/score_kernel.h). Throughput observability only — results are
  /// bit-identical with and without the mirror.
  bool columnar_kernel = false;
  /// Blocks the query's threshold-driven scans scored / proved skippable
  /// via block-max pruning (topk::ScanStats). Deltas of process-global
  /// counters taken around the query's compute, so concurrent queries
  /// attribute approximately; zero on memo hits. Observability only —
  /// skipping is bit-identity-safe by construction.
  uint64_t blocks_scanned = 0;
  uint64_t blocks_skipped = 0;
  /// True when a shared-artifact build (candidate index / columnar mirror)
  /// failed — or was in its failure cooldown — and the query proceeded on
  /// the legacy unpruned path instead of erroring. The representative is
  /// bit-identical to the artifact-assisted one (the null contracts those
  /// paths already honor); only throughput degrades. Preemption
  /// (Cancelled/DeadlineExceeded) is never degraded — it propagates.
  bool degraded = false;
  /// The dataset version this query answered against (the pinned snapshot,
  /// or the current version at query start for a dynamic engine). Every
  /// reuse flag above is scoped to this version: a memo or artifact hit
  /// can only come from work done on the same version's data.
  DatasetVersion dataset_version;

  /// One-line human-readable rendering, e.g.
  /// "MDRC 0.123s cached=no mdrc{nodes=93 leaves=47 ...}".
  std::string ToString() const;
};

/// Output of RrrEngine::Solve.
struct QueryResult {
  /// Ids of the representative tuples, sorted.
  std::vector<int32_t> representative;
  Diagnostics diagnostics;
};

/// Output of RrrEngine::Evaluate.
struct EvalReport {
  /// Measured rank-regret of the representative: exact for d == 2 (one
  /// angular sweep), a Monte-Carlo lower bound otherwise.
  int64_t rank_regret = 0;
  /// True when rank_regret is exact (the 2D sweep), false for the sampled
  /// estimate (the true max can only be larger).
  bool exact = false;
  /// rank_regret <= k: the representative meets the rank promise on every
  /// function checked.
  bool within_k = false;
  Diagnostics diagnostics;
};

/// Per-query options for RrrEngine calls.
struct QueryOptions {
  /// Algorithm override for this query; kAuto (the default) defers to the
  /// engine's configured default, which itself resolves by dimension/k.
  Algorithm algorithm = Algorithm::kAuto;
  /// Cancellation token, deadline, and worker-thread budget for this
  /// query. `exec.threads` (non-zero) overrides every thread setting the
  /// engine was configured with.
  ExecContext exec;
  /// Consult and populate the engine's per-(version, k, algorithm) result
  /// memo. Off forces a full recompute (still reusing prepared artifacts).
  bool use_cache = true;
  /// Pin this query to a specific dataset snapshot instead of the engine's
  /// current one — the consistent-read primitive of the dynamic layer: a
  /// caller holding a snapshot from DynamicDataset::Snapshot() can keep
  /// querying that immutable version while writers publish newer ones
  /// (old-snapshot queries still hit their own memos). Null (the default)
  /// resolves to the engine's current version. The snapshot must come from
  /// the same lineage the engine serves; SolveDual pins all its probes to
  /// one snapshot internally either way.
  std::shared_ptr<const PreparedDataset> snapshot;
};

/// Engine-wide configuration.
struct EngineOptions {
  /// Per-algorithm tuning and the default algorithm selector for every
  /// query (the `k` field is ignored — k is a per-query argument; the
  /// `threads` field is the engine-wide default budget, overridable per
  /// query via QueryOptions::exec.threads).
  RrrOptions defaults;
  /// Memoize Solve results per (dataset version, k, resolved algorithm).
  /// Sound because every solver is deterministic given its options (fixed
  /// at engine construction) and the version names the exact row-state.
  bool memoize_results = true;
  /// Cap on memoized results; past it, queries compute without caching.
  size_t max_result_cache_entries = 1024;
  /// Evaluate's sampled-estimator protocol for d > 2 data.
  size_t eval_num_functions = 10000;
  uint64_t eval_seed = 23;
  /// After a shared-artifact build failure, queries skip re-attempting
  /// that artifact class for this long (running degraded instead) so a
  /// persistently failing build is not hammered on every query. 0 retries
  /// immediately.
  uint64_t artifact_failure_cooldown_ms = 250;
  /// Shared-artifact caps for the underlying PreparedDataset.
  PreparedDataset::Options prepared;
};

/// \brief Prepare-once / query-many facade over the paper's algorithms.
///
/// Build an engine per dataset, then issue queries from any thread:
///
///   auto engine = *RrrEngine::Create(std::move(dataset));
///   auto r1 = engine->Solve(10);              // cold: runs the solver
///   auto r2 = engine->Solve(10);              // memo hit: bit-identical
///   auto d  = engine->SolveDual(25);          // probes share artifacts
///   auto ok = engine->Evaluate(r1->representative, 10);
///
/// Guarantees:
///  - *Concurrency*: Solve/SolveDual/Evaluate are const and safe to call
///    from many threads; shared artifacts are compute-once (a thread
///    requesting an in-flight artifact waits instead of duplicating work).
///  - *Determinism*: results are identical across repeat calls, thread
///    counts, and cache states (the memo can only return what the solver
///    would recompute).
///  - *Preemption*: a query whose QueryOptions::exec cancels or expires
///    returns Status Cancelled/DeadlineExceeded with no partial output and
///    without poisoning any shared cache.
///
/// The legacy free functions (FindRankRegretRepresentative,
/// SolveDualProblem) are thin wrappers constructing a temporary engine.
class RrrEngine {
 public:
  /// Supplier of the current dataset snapshot for a dynamic engine
  /// (typically DynamicDataset::Snapshot bound by NewDynamicEngine in
  /// core/dataset_updates.h). Must be thread-safe and never return null.
  using SnapshotFn =
      std::function<std::shared_ptr<const PreparedDataset>()>;

  /// Validates and prepares `dataset` (see PreparedDataset::Create).
  static Result<std::shared_ptr<RrrEngine>> Create(
      data::Dataset dataset, EngineOptions options = {});

  /// Wraps an existing prepared dataset (shareable across engines with
  /// different option sets).
  static Result<std::shared_ptr<RrrEngine>> Create(
      std::shared_ptr<const PreparedDataset> prepared,
      EngineOptions options = {});

  /// \brief Dynamic engine: every query resolves `source` ONCE at entry
  /// and answers consistently against that immutable snapshot, so updates
  /// published mid-query never tear a result (SolveDual's probes all see
  /// the snapshot of its first call). The result memo is keyed by dataset
  /// version: publishing a new version invalidates nothing and poisons
  /// nothing — new-version queries miss (recompute against the new data),
  /// pinned old-snapshot queries still hit their own entries.
  static Result<std::shared_ptr<RrrEngine>> CreateDynamic(
      SnapshotFn source, EngineOptions options = {});

  /// The snapshot the engine was created over; for a dynamic engine this
  /// is the version current at creation, not necessarily the one queries
  /// resolve now.
  const PreparedDataset& prepared() const { return *prepared_; }
  const EngineOptions& options() const { return options_; }

  /// \brief Rank-regret representative for rank budget `k`.
  ///
  /// Fails with InvalidArgument for k == 0 or an algorithm/dimension
  /// mismatch; propagates solver statuses (ResourceExhausted, Cancelled,
  /// DeadlineExceeded) otherwise.
  Result<QueryResult> Solve(size_t k, const QueryOptions& query = {}) const;

  /// \brief Dual problem: smallest k whose representative fits `max_size`,
  /// by binary search over memoizing Solve probes (Section 2's reduction).
  ///
  /// Error contract matches SolveDualProblem (InvalidArgument, NotFound,
  /// all-probes ResourceExhausted), plus Cancelled/DeadlineExceeded from
  /// the query's ExecContext.
  Result<DualResult> SolveDual(size_t max_size,
                               const QueryOptions& query = {}) const;

  /// \brief Audits a representative: exact 2D rank-regret (shared sweep)
  /// or the sampled lower bound for d > 2, with within-k verdict.
  ///
  /// Fails with InvalidArgument for k == 0 or an empty representative,
  /// OutOfRange for ids outside the dataset.
  Result<EvalReport> Evaluate(const std::vector<int32_t>& representative,
                              size_t k, const QueryOptions& query = {}) const;

  /// Approximate heap footprint of the per-(version, k, algorithm) result
  /// memo in bytes — the engine's slice of the service layer's memory
  /// budget. An estimate, not an allocation census.
  size_t ApproxMemoBytes() const;

  /// Drops every memoized result (evictable-cell protocol); the next query
  /// per key recomputes, bit-identically by the determinism guarantee.
  /// Returns the approximate bytes freed. Shared prepared-dataset
  /// artifacts are not touched — evict those via the PreparedDataset.
  size_t EvictMemos() const;

 private:
  /// Memo key: the dataset version is part of the identity, so an entry
  /// computed against one row-state can never answer for another — the
  /// precise invalidation the dynamic layer relies on (and a no-op for
  /// static engines, whose version is constant).
  struct ResultKey {
    DatasetVersion version;
    size_t k;
    Algorithm algorithm;
    bool operator==(const ResultKey& other) const {
      return version == other.version && k == other.k &&
             algorithm == other.algorithm;
    }
  };
  struct ResultKeyHash {
    size_t operator()(const ResultKey& key) const;
  };

  RrrEngine(std::shared_ptr<const PreparedDataset> prepared,
            SnapshotFn source, EngineOptions options);

  /// The snapshot this query answers against: its pin, else the dynamic
  /// source's current version, else the static prepared dataset. Called
  /// exactly once per query so one query never mixes versions.
  std::shared_ptr<const PreparedDataset> ResolveSnapshot(
      const QueryOptions& query) const;

  /// Applies the query override, the engine default, and the kAuto
  /// dimension/k rules; validates algorithm/dimension compatibility.
  Result<Algorithm> ResolveAlgorithm(const PreparedDataset& prepared, size_t k,
                                     const QueryOptions& query) const;

  /// Dispatches one uncached solve (shared artifacts still apply).
  Result<QueryResult> RunAlgorithm(const PreparedDataset& prepared, size_t k,
                                   Algorithm algorithm,
                                   const ExecContext& ctx) const;

  /// The two shared artifacts queries can survive without: both honor a
  /// null contract (a null index/mirror means the unpruned legacy path
  /// runs, bit-identically), so their build failures degrade instead of
  /// erroring. The algorithm-defining artifacts (k-sets, convex maxima)
  /// have no such fallback and keep their failures fatal.
  enum class ArtifactKind { kCandidates = 0, kBlocks = 1 };

  /// True while `kind` is inside its post-failure cooldown window (queries
  /// then skip the build attempt entirely and run degraded).
  bool ArtifactInCooldown(ArtifactKind kind) const;
  /// Opens (or extends) `kind`'s cooldown window after a failed build.
  void NoteArtifactFailure(ArtifactKind kind) const;

  /// SharedCandidateIndex with graceful degradation: a build failure other
  /// than preemption logs a warning, opens the cooldown, sets *degraded,
  /// and returns null so the caller proceeds on the legacy path.
  /// Cancelled/DeadlineExceeded propagate — preemption is the query's own
  /// verdict, not an artifact fault.
  Result<std::shared_ptr<const CandidateIndex>> DegradableCandidateIndex(
      const PreparedDataset& prepared, size_t k, const ExecContext& ctx,
      bool* degraded) const;
  /// SharedColumnBlocks under the same degradation contract.
  Result<std::shared_ptr<const data::ColumnBlocks>> DegradableColumnBlocks(
      const PreparedDataset& prepared, const ExecContext& ctx,
      bool* degraded) const;

  std::shared_ptr<const PreparedDataset> prepared_;
  SnapshotFn snapshot_source_;  // null for static engines
  EngineOptions options_;
  mutable Mutex degrade_mu_;
  /// Cooldown deadlines indexed by ArtifactKind.
  mutable std::array<std::chrono::steady_clock::time_point, 2>
      artifact_retry_after_ RRR_GUARDED_BY(degrade_mu_){};
  mutable internal::KeyedLazyCache<ResultKey, QueryResult, ResultKeyHash>
      result_cache_;
};

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_ENGINE_H_
