#include "core/mdrc.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "geometry/angles.h"
#include "topk/scoring.h"
#include "topk/topk.h"

namespace rrr {
namespace core {

namespace {

/// One partition-tree node: an axis-aligned box in angle space, plus its
/// branch path from the root ('0' = upper half, '1' = lower half per
/// split). Lexicographic path order equals the serial solver's traversal
/// order, which the leaf replay below depends on.
struct Node {
  std::vector<std::pair<double, double>> box;  // per-dimension [lo, hi]
  size_t level = 0;
  std::string path;
};

/// FNV-1a over the raw bytes of the corner coordinates. Corner coordinates
/// are dyadic fractions of pi/2 propagated top-down, so equal corners are
/// bit-identical doubles and byte hashing is sound.
struct CornerHash {
  size_t operator()(const geometry::Vec& v) const {
    uint64_t h = 1469598103934665603ull;
    for (double x : v) {
      uint64_t bits;
      std::memcpy(&bits, &x, sizeof(bits));
      for (int b = 0; b < 8; ++b) {
        h ^= (bits >> (8 * b)) & 0xffu;
        h *= 1099511628211ull;
      }
    }
    return static_cast<size_t>(h);
  }
};

/// Concurrent memoizing top-k evaluator keyed by the exact corner angle
/// vector, sharded to keep lock contention off the hot path. Entries are
/// compute-once (std::call_once): sibling cells share most corners, so a
/// thread that requests an in-flight corner waits for the computing thread
/// instead of duplicating an O(n log k) top-k scan. Results are returned by
/// value so no reference ever outlives a shard mutation. The per-shard
/// entry cap bounds memory on explosive instances: past it, corners are
/// recomputed instead of stored.
class ShardedCornerCache {
 public:
  ShardedCornerCache(const data::Dataset& dataset, size_t k,
                     size_t max_entries)
      : dataset_(dataset),
        k_(k),
        per_shard_cap_(std::max<size_t>(1, max_entries / kShards)) {}

  std::vector<int32_t> TopKAt(const geometry::Vec& angles) {
    Shard& shard = shards_[CornerHash{}(angles) % kShards];
    std::shared_ptr<Entry> entry;
    bool existed = false;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(angles);
      if (it != shard.map.end()) {
        entry = it->second;
        existed = true;
      } else if (shard.map.size() < per_shard_cap_) {
        entry = std::make_shared<Entry>();
        shard.map.emplace(angles, entry);
      }
    }
    if (entry == nullptr) {  // shard at capacity: evaluate without caching
      corner_evals.fetch_add(1, std::memory_order_relaxed);
      return Evaluate(angles);
    }
    if (existed) cache_hits.fetch_add(1, std::memory_order_relaxed);
    std::call_once(entry->once, [&] {
      corner_evals.fetch_add(1, std::memory_order_relaxed);
      entry->topk = Evaluate(angles);
    });
    return entry->topk;
  }

  std::atomic<size_t> corner_evals{0};
  std::atomic<size_t> cache_hits{0};

 private:
  static constexpr size_t kShards = 32;
  struct Entry {
    std::once_flag once;
    std::vector<int32_t> topk;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<geometry::Vec, std::shared_ptr<Entry>, CornerHash> map;
  };

  std::vector<int32_t> Evaluate(const geometry::Vec& angles) const {
    return topk::TopKSet(dataset_, topk::LinearFunction::FromAngles(angles),
                         k_);
  }

  const data::Dataset& dataset_;
  size_t k_;
  size_t per_shard_cap_;
  Shard shards_[kShards];
};

/// Intersection of the (sorted) top-k sets of all 2^dims corners of `box`.
std::vector<int32_t> CornerIntersection(const Node& node,
                                        ShardedCornerCache* cache) {
  const size_t dims = node.box.size();
  const size_t corners = size_t{1} << dims;
  std::vector<int32_t> common;
  geometry::Vec angles(dims);
  for (size_t mask = 0; mask < corners; ++mask) {
    for (size_t j = 0; j < dims; ++j) {
      angles[j] = (mask >> j & 1) ? node.box[j].second : node.box[j].first;
    }
    const std::vector<int32_t> corner_topk = cache->TopKAt(angles);
    if (mask == 0) {
      common = corner_topk;
    } else {
      std::vector<int32_t> next;
      std::set_intersection(common.begin(), common.end(), corner_topk.begin(),
                            corner_topk.end(), std::back_inserter(next));
      common = std::move(next);
    }
    if (common.empty()) break;
  }
  return common;
}

/// A resolved cell, carried from the parallel expansion to the serial
/// replay. `common` holds the full corner intersection so the replay can
/// apply the order-dependent reuse_chosen logic exactly as the serial
/// traversal would.
struct LeafRecord {
  std::string path;
  std::vector<int32_t> common;  // empty for depth-cap leaves
  int32_t fallback_item = -1;   // set for depth-cap leaves
};

/// Per-node outcome of one expansion round.
struct NodeOutcome {
  enum Kind : uint8_t { kInternal, kCommonLeaf, kDepthCapLeaf, kSkipped };
  Kind kind = kSkipped;
  std::vector<int32_t> common;
  int32_t fallback_item = -1;
};

}  // namespace

Result<std::vector<int32_t>> SolveMdrc(const data::Dataset& dataset, size_t k,
                                       const MdrcOptions& options,
                                       MdrcStats* stats) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  RRR_RETURN_IF_ERROR(dataset.CheckFinite());
  MdrcStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = MdrcStats{};

  const size_t d = dataset.dims();
  if (d == 1) {
    // One ranking function total; its top-1 is a perfect representative.
    return topk::TopK(dataset, topk::LinearFunction({1.0}), 1);
  }
  const size_t angle_dims = d - 1;
  const size_t max_level = options.max_splits_per_dim * angle_dims;
  const size_t threads = ResolveThreads(options.threads);

  ShardedCornerCache cache(dataset, std::min(k, dataset.size()),
                           options.max_cache_entries);

  std::atomic<size_t> nodes{0};
  std::atomic<size_t> leaves{0};
  std::atomic<size_t> depth_cap_leaves{0};
  std::atomic<size_t> max_depth{0};
  std::atomic<bool> exhausted{false};

  // Level-synchronous expansion: every node of one depth is independent, so
  // each round is a parallel map over the frontier. The tree (and therefore
  // the leaf set) is identical for every thread count; only the evaluation
  // order differs, and the replay below erases that difference.
  std::vector<Node> frontier;
  std::vector<LeafRecord> leaf_records;
  Node root;
  root.box.assign(angle_dims, {0.0, geometry::kHalfPi});
  frontier.push_back(std::move(root));

  while (!frontier.empty() && !exhausted.load(std::memory_order_relaxed)) {
    std::vector<NodeOutcome> outcomes(frontier.size());
    ParallelFor(threads, frontier.size(), [&](size_t i) {
      if (exhausted.load(std::memory_order_relaxed)) return;
      if (nodes.fetch_add(1, std::memory_order_relaxed) + 1 >
          options.max_nodes) {
        exhausted.store(true, std::memory_order_relaxed);
        return;
      }
      const Node& node = frontier[i];
      size_t seen = max_depth.load(std::memory_order_relaxed);
      while (node.level > seen &&
             !max_depth.compare_exchange_weak(seen, node.level,
                                              std::memory_order_relaxed)) {
      }

      NodeOutcome& out = outcomes[i];
      std::vector<int32_t> common = CornerIntersection(node, &cache);
      if (!common.empty()) {
        leaves.fetch_add(1, std::memory_order_relaxed);
        out.kind = NodeOutcome::kCommonLeaf;
        out.common = std::move(common);
        return;
      }
      if (node.level >= max_level) {
        // Degenerate geometry: corners disagree at sub-epsilon cell sizes.
        // Keep the guarantee "some item per cell" with the first corner's
        // best item; counted so callers can detect the fallback.
        depth_cap_leaves.fetch_add(1, std::memory_order_relaxed);
        geometry::Vec corner(angle_dims);
        for (size_t j = 0; j < angle_dims; ++j) corner[j] = node.box[j].first;
        out.kind = NodeOutcome::kDepthCapLeaf;
        out.fallback_item = cache.TopKAt(corner).front();
        return;
      }
      out.kind = NodeOutcome::kInternal;
    });
    if (exhausted.load(std::memory_order_relaxed)) break;

    std::vector<Node> next;
    next.reserve(2 * frontier.size());
    for (size_t i = 0; i < frontier.size(); ++i) {
      NodeOutcome& out = outcomes[i];
      Node& node = frontier[i];
      switch (out.kind) {
        case NodeOutcome::kCommonLeaf:
          leaf_records.push_back(
              LeafRecord{std::move(node.path), std::move(out.common), -1});
          break;
        case NodeOutcome::kDepthCapLeaf:
          leaf_records.push_back(
              LeafRecord{std::move(node.path), {}, out.fallback_item});
          break;
        case NodeOutcome::kInternal: {
          const size_t dim = node.level % angle_dims;
          const double mid =
              0.5 * (node.box[dim].first + node.box[dim].second);
          Node upper = node;
          upper.level = node.level + 1;
          upper.box[dim].first = mid;
          upper.path.push_back('0');  // visited first by the serial solver
          Node lower = std::move(node);
          lower.level = upper.level;
          lower.box[dim].second = mid;
          lower.path.push_back('1');
          next.push_back(std::move(upper));
          next.push_back(std::move(lower));
          break;
        }
        case NodeOutcome::kSkipped:
          break;
      }
    }
    frontier = std::move(next);
  }

  stats->nodes = nodes.load();
  stats->leaves = leaves.load();
  stats->depth_cap_leaves = depth_cap_leaves.load();
  stats->max_depth = max_depth.load();
  stats->corner_evals = cache.corner_evals.load();
  stats->cache_hits = cache.cache_hits.load();
  if (exhausted.load()) {
    return Status::ResourceExhausted(
        "MDRC node budget exceeded; k is likely too small relative to n "
        "for this dimensionality (raise MdrcOptions::max_nodes or k)");
  }

  // Serial replay in traversal order. reuse_chosen makes each leaf's
  // decision depend on every earlier leaf's decision, so the replay walks
  // the leaves exactly as the depth-first serial solver would reach them;
  // this is what makes the output thread-count-invariant.
  std::sort(leaf_records.begin(), leaf_records.end(),
            [](const LeafRecord& a, const LeafRecord& b) {
              return a.path < b.path;
            });
  std::unordered_set<int32_t> chosen;
  for (const LeafRecord& rec : leaf_records) {
    if (rec.common.empty()) {
      chosen.insert(rec.fallback_item);
      continue;
    }
    // Prefer an already-chosen tuple (any member of the intersection
    // satisfies Theorem 6, so reusing one shrinks the output for free);
    // otherwise take the smallest id for determinism.
    bool reused = false;
    if (options.reuse_chosen) {
      for (int32_t id : rec.common) {
        if (chosen.count(id) != 0) {
          reused = true;
          break;
        }
      }
    }
    if (!reused) chosen.insert(rec.common.front());
  }

  std::vector<int32_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace core
}  // namespace rrr
