#include "core/mdrc.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/logging.h"
#include "geometry/angles.h"
#include "topk/scoring.h"
#include "topk/topk.h"

namespace rrr {
namespace core {

namespace {

/// One recursion-tree node: an axis-aligned box in angle space.
struct Node {
  std::vector<std::pair<double, double>> box;  // per-dimension [lo, hi]
  size_t level = 0;
};

/// Memoizing top-k evaluator keyed by the exact corner angle vector.
/// Corner coordinates are dyadic fractions of pi/2, so exact double
/// comparison is a sound cache key and siblings share corner results. The
/// entry cap bounds memory on explosive instances: past it, corners are
/// recomputed instead of stored (the returned reference then aliases a
/// scratch slot that lives until the next TopKAt call).
class CornerCache {
 public:
  CornerCache(const data::Dataset& dataset, size_t k, size_t max_entries,
              MdrcStats* stats)
      : dataset_(dataset), k_(k), max_entries_(max_entries), stats_(stats) {}

  const std::vector<int32_t>& TopKAt(const geometry::Vec& angles) {
    auto it = cache_.find(angles);
    if (it != cache_.end()) {
      ++stats_->cache_hits;
      return it->second;
    }
    ++stats_->corner_evals;
    std::vector<int32_t> topk =
        topk::TopKSet(dataset_, topk::LinearFunction::FromAngles(angles), k_);
    if (cache_.size() >= max_entries_) {
      scratch_ = std::move(topk);
      return scratch_;
    }
    auto inserted = cache_.emplace(angles, std::move(topk));
    return inserted.first->second;
  }

 private:
  const data::Dataset& dataset_;
  size_t k_;
  size_t max_entries_;
  MdrcStats* stats_;
  std::map<geometry::Vec, std::vector<int32_t>> cache_;
  std::vector<int32_t> scratch_;
};

/// Intersection of the (sorted) top-k sets of all 2^dims corners of `box`.
std::vector<int32_t> CornerIntersection(const Node& node, CornerCache* cache) {
  const size_t dims = node.box.size();
  const size_t corners = size_t{1} << dims;
  std::vector<int32_t> common;
  geometry::Vec angles(dims);
  for (size_t mask = 0; mask < corners; ++mask) {
    for (size_t j = 0; j < dims; ++j) {
      angles[j] = (mask >> j & 1) ? node.box[j].second : node.box[j].first;
    }
    const std::vector<int32_t>& corner_topk = cache->TopKAt(angles);
    if (mask == 0) {
      common = corner_topk;
    } else {
      std::vector<int32_t> next;
      std::set_intersection(common.begin(), common.end(), corner_topk.begin(),
                            corner_topk.end(), std::back_inserter(next));
      common = std::move(next);
    }
    if (common.empty()) break;
  }
  return common;
}

}  // namespace

Result<std::vector<int32_t>> SolveMdrc(const data::Dataset& dataset, size_t k,
                                       const MdrcOptions& options,
                                       MdrcStats* stats) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  MdrcStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = MdrcStats{};

  const size_t d = dataset.dims();
  if (d == 1) {
    // One ranking function total; its top-1 is a perfect representative.
    return topk::TopK(dataset, topk::LinearFunction({1.0}), 1);
  }
  const size_t angle_dims = d - 1;
  const size_t max_level = options.max_splits_per_dim * angle_dims;

  CornerCache cache(dataset, std::min(k, dataset.size()),
                    options.max_cache_entries, stats);
  std::unordered_set<int32_t> chosen;

  std::vector<Node> stack;
  Node root;
  root.box.assign(angle_dims, {0.0, geometry::kHalfPi});
  stack.push_back(std::move(root));

  while (!stack.empty()) {
    Node node = std::move(stack.back());
    stack.pop_back();
    if (++stats->nodes > options.max_nodes) {
      return Status::ResourceExhausted(
          "MDRC node budget exceeded; k is likely too small relative to n "
          "for this dimensionality (raise MdrcOptions::max_nodes or k)");
    }
    stats->max_depth = std::max(stats->max_depth, node.level);

    const std::vector<int32_t> common = CornerIntersection(node, &cache);
    if (!common.empty()) {
      ++stats->leaves;
      // Prefer an already-chosen tuple (any member of the intersection
      // satisfies Theorem 6, so reusing one shrinks the output for free);
      // otherwise take the smallest id for determinism.
      bool reused = false;
      if (options.reuse_chosen) {
        for (int32_t id : common) {
          if (chosen.count(id) != 0) {
            reused = true;
            break;
          }
        }
      }
      if (!reused) chosen.insert(common.front());
      continue;
    }
    if (node.level >= max_level) {
      // Degenerate geometry: corners disagree at sub-epsilon cell sizes.
      // Keep the guarantee "some item per cell" with the first corner's
      // best item; counted so callers can detect the fallback.
      ++stats->depth_cap_leaves;
      geometry::Vec corner(angle_dims);
      for (size_t j = 0; j < angle_dims; ++j) corner[j] = node.box[j].first;
      chosen.insert(cache.TopKAt(corner).front());
      continue;
    }

    const size_t dim = node.level % angle_dims;
    const double mid =
        0.5 * (node.box[dim].first + node.box[dim].second);
    Node left = node;
    left.level = node.level + 1;
    left.box[dim].second = mid;
    Node right = std::move(node);
    right.level = left.level;
    right.box[dim].first = mid;
    stack.push_back(std::move(left));
    stack.push_back(std::move(right));
  }

  std::vector<int32_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace core
}  // namespace rrr
