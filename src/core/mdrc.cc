#include "core/mdrc.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/parallel.h"
#include "core/candidate_index.h"
#include "geometry/angles.h"
#include "topk/scoring.h"
#include "topk/topk.h"

namespace rrr {
namespace core {

namespace {

/// One partition-tree node: an axis-aligned box in angle space, plus its
/// branch path from the root ('0' = upper half, '1' = lower half per
/// split). Lexicographic path order equals the serial solver's traversal
/// order, which the leaf replay below depends on.
struct Node {
  std::vector<std::pair<double, double>> box;  // per-dimension [lo, hi]
  size_t level = 0;
  std::string path;
};

/// Intersection of the (sorted) top-k sets of all 2^dims corners of `box`.
/// `first_corner_front` receives the smallest id of the mask-0 corner's
/// top-k (the all-lows corner) — exactly what the depth-cap fallback used
/// to re-request from the cache just to take `.front()`.
std::vector<int32_t> CornerIntersection(const Node& node, size_t k,
                                        CornerTopKCache* cache,
                                        CornerTopKCache::Counters* counters,
                                        const CandidateIndex* candidates,
                                        const data::ColumnBlocks* blocks,
                                        int32_t* first_corner_front) {
  const size_t dims = node.box.size();
  const size_t corners = size_t{1} << dims;
  std::vector<int32_t> common;
  geometry::Vec angles(dims);
  for (size_t mask = 0; mask < corners; ++mask) {
    for (size_t j = 0; j < dims; ++j) {
      angles[j] = (mask >> j & 1) ? node.box[j].second : node.box[j].first;
    }
    const std::vector<int32_t> corner_topk =
        cache->TopKAt(k, angles, counters, candidates, blocks);
    if (mask == 0) {
      *first_corner_front = corner_topk.front();
      common = corner_topk;
    } else {
      std::vector<int32_t> next;
      std::set_intersection(common.begin(), common.end(), corner_topk.begin(),
                            corner_topk.end(), std::back_inserter(next));
      common = std::move(next);
    }
    if (common.empty()) break;
  }
  return common;
}

/// A resolved cell, carried from the parallel expansion to the serial
/// replay. `common` holds the full corner intersection so the replay can
/// apply the order-dependent reuse_chosen logic exactly as the serial
/// traversal would.
struct LeafRecord {
  std::string path;
  std::vector<int32_t> common;  // empty for depth-cap leaves
  int32_t fallback_item = -1;   // set for depth-cap leaves
};

/// Per-node outcome of one expansion round.
struct NodeOutcome {
  enum Kind : uint8_t { kInternal, kCommonLeaf, kDepthCapLeaf, kSkipped };
  Kind kind = kSkipped;
  std::vector<int32_t> common;
  int32_t fallback_item = -1;
};

}  // namespace

// FNV-1a over k plus the raw bytes of the corner coordinates. Corner
// coordinates are dyadic fractions of pi/2 propagated top-down, so equal
// corners are bit-identical doubles and byte hashing is sound.
size_t CornerTopKCache::KeyHash::operator()(const Key& key) const {
  uint64_t h = FnvMix(kFnvOffsetBasis, key.k);
  for (double x : key.angles) h = FnvMix(h, x);
  return static_cast<size_t>(h);
}

CornerTopKCache::CornerTopKCache(const data::Dataset& dataset,
                                 size_t max_entries)
    : dataset_(dataset),
      per_shard_cap_(std::max<size_t>(1, max_entries / kShards)) {}

std::vector<int32_t> CornerTopKCache::TopKAt(size_t k,
                                             const geometry::Vec& angles,
                                             Counters* counters,
                                             const CandidateIndex* candidates,
                                             const data::ColumnBlocks* blocks) {
  Key key{k, angles};
  Shard& shard = shards_[KeyHash{}(key) % kShards];
  std::shared_ptr<Entry> entry;
  bool existed = false;
  {
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      entry = it->second;
      existed = true;
    } else if (shard.map.size() < per_shard_cap_) {
      entry = std::make_shared<Entry>();
      shard.map.emplace(std::move(key), entry);
    }
  }
  if (entry == nullptr) {  // shard at capacity: evaluate without caching
    if (counters != nullptr) {
      counters->evals.fetch_add(1, std::memory_order_relaxed);
    }
    return Evaluate(k, angles, candidates, blocks);
  }
  if (existed && counters != nullptr) {
    counters->hits.fetch_add(1, std::memory_order_relaxed);
  }
  std::call_once(entry->once, [&] {
    if (counters != nullptr) {
      counters->evals.fetch_add(1, std::memory_order_relaxed);
    }
    entry->topk = Evaluate(k, angles, candidates, blocks);
    entry->ready.store(true, std::memory_order_release);
  });
  return entry->topk;
}

size_t CornerTopKCache::entries() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

size_t CornerTopKCache::ApproxBytes() const {
  size_t bytes = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& kv : shard.map) {
      bytes += sizeof(Key) + kv.first.angles.size() * sizeof(double);
      bytes += sizeof(Entry) + 2 * sizeof(void*);  // map-node overhead, roughly
      // A mid-fill entry's vector belongs to the filling thread until the
      // ready-release; count it only once published (acquire pairs with
      // the store in TopKAt).
      if (kv.second->ready.load(std::memory_order_acquire)) {
        bytes += kv.second->topk.capacity() * sizeof(int32_t);
      }
    }
  }
  return bytes;
}

void CornerTopKCache::Clear() {
  for (Shard& shard : shards_) {
    // Swap the map out under the lock and destroy it outside: in-flight
    // TopKAt callers hold their Entry by shared_ptr and are unaffected.
    std::unordered_map<Key, std::shared_ptr<Entry>, KeyHash> dropped;
    {
      MutexLock lock(shard.mu);
      dropped.swap(shard.map);
    }
  }
}

std::vector<int32_t> CornerTopKCache::Evaluate(
    size_t k, const geometry::Vec& angles, const CandidateIndex* candidates,
    const data::ColumnBlocks* blocks) const {
  const topk::LinearFunction f = topk::LinearFunction::FromAngles(angles);
  if (candidates != nullptr) return candidates->TopKSet(f, k);
  return topk::TopKSet(dataset_, f, k, blocks);
}

Result<std::vector<int32_t>> SolveMdrc(const data::Dataset& dataset, size_t k,
                                       const MdrcOptions& options,
                                       MdrcStats* stats,
                                       const ExecContext& ctx,
                                       CornerTopKCache* corner_cache,
                                       const CandidateIndex* candidates,
                                       const data::ColumnBlocks* blocks) {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  RRR_RETURN_IF_ERROR(dataset.CheckFinite());
  if (blocks != nullptr) {
    RRR_CHECK(blocks->source() == &dataset)
        << "SolveMdrc: blocks mirror a different dataset";
  }
  MdrcStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = MdrcStats{};

  const size_t d = dataset.dims();
  if (d == 1) {
    // One ranking function total; its top-1 is a perfect representative.
    return topk::TopK(dataset, topk::LinearFunction({1.0}), 1, blocks);
  }
  const size_t angle_dims = d - 1;
  const size_t max_level = options.max_splits_per_dim * angle_dims;
  const size_t threads = ResolveThreads(ctx.ThreadsOver(options.threads));
  const size_t kk = std::min(k, dataset.size());
  if (candidates != nullptr) {
    RRR_CHECK(candidates->full_dataset() == &dataset)
        << "CandidateIndex built over a different dataset";
    RRR_CHECK(candidates->k() >= kk)
        << "CandidateIndex band too small for this k";
    stats->skyband_size = candidates->band_size();
  }

  RRR_FAILPOINT("core.artifact.corner_topk");
  std::unique_ptr<CornerTopKCache> own_cache;
  if (corner_cache == nullptr) {
    own_cache = std::make_unique<CornerTopKCache>(dataset,
                                                  options.max_cache_entries);
    corner_cache = own_cache.get();
  } else {
    RRR_CHECK(corner_cache->dataset() == &dataset)
        << "shared CornerTopKCache built over a different dataset";
  }
  CornerTopKCache::Counters counters;

  std::atomic<size_t> nodes{0};
  std::atomic<size_t> leaves{0};
  std::atomic<size_t> depth_cap_leaves{0};
  std::atomic<size_t> max_depth{0};
  std::atomic<bool> exhausted{false};
  std::atomic<bool> preempted{false};

  // Level-synchronous expansion: every node of one depth is independent, so
  // each round is a parallel map over the frontier. The tree (and therefore
  // the leaf set) is identical for every thread count; only the evaluation
  // order differs, and the replay below erases that difference.
  std::vector<Node> frontier;
  std::vector<LeafRecord> leaf_records;
  Node root;
  root.box.assign(angle_dims, {0.0, geometry::kHalfPi});
  frontier.push_back(std::move(root));

  while (!frontier.empty() && !exhausted.load(std::memory_order_relaxed) &&
         !preempted.load(std::memory_order_relaxed)) {
    std::vector<NodeOutcome> outcomes(frontier.size());
    ParallelFor(threads, frontier.size(), [&](size_t i) {
      if (exhausted.load(std::memory_order_relaxed) ||
          preempted.load(std::memory_order_relaxed)) {
        return;
      }
      // Per-node preemption point: each node costs up to 2^(d-1) top-k
      // scans, so one cancel-flag load and clock read per node is noise.
      if (!ctx.CheckPreempted().ok()) {
        preempted.store(true, std::memory_order_relaxed);
        return;
      }
      if (nodes.fetch_add(1, std::memory_order_relaxed) + 1 >
          options.max_nodes) {
        exhausted.store(true, std::memory_order_relaxed);
        return;
      }
      const Node& node = frontier[i];
      size_t seen = max_depth.load(std::memory_order_relaxed);
      while (node.level > seen &&
             !max_depth.compare_exchange_weak(seen, node.level,
                                              std::memory_order_relaxed)) {
      }

      NodeOutcome& out = outcomes[i];
      int32_t first_corner_front = -1;
      std::vector<int32_t> common =
          CornerIntersection(node, kk, corner_cache, &counters, candidates,
                             blocks, &first_corner_front);
      if (!common.empty()) {
        leaves.fetch_add(1, std::memory_order_relaxed);
        out.kind = NodeOutcome::kCommonLeaf;
        out.common = std::move(common);
        return;
      }
      if (node.level >= max_level) {
        // Degenerate geometry: corners disagree at sub-epsilon cell sizes.
        // Keep the guarantee "some item per cell" with the all-lows
        // corner's smallest top-k id, already in hand from the
        // intersection above (this used to re-request the full corner
        // top-k from the cache just to take `.front()`); counted so
        // callers can detect the fallback.
        depth_cap_leaves.fetch_add(1, std::memory_order_relaxed);
        out.kind = NodeOutcome::kDepthCapLeaf;
        out.fallback_item = first_corner_front;
        return;
      }
      out.kind = NodeOutcome::kInternal;
    });
    if (exhausted.load(std::memory_order_relaxed) ||
        preempted.load(std::memory_order_relaxed)) {
      break;
    }

    std::vector<Node> next;
    next.reserve(2 * frontier.size());
    for (size_t i = 0; i < frontier.size(); ++i) {
      NodeOutcome& out = outcomes[i];
      Node& node = frontier[i];
      switch (out.kind) {
        case NodeOutcome::kCommonLeaf:
          leaf_records.push_back(
              LeafRecord{std::move(node.path), std::move(out.common), -1});
          break;
        case NodeOutcome::kDepthCapLeaf:
          leaf_records.push_back(
              LeafRecord{std::move(node.path), {}, out.fallback_item});
          break;
        case NodeOutcome::kInternal: {
          const size_t dim = node.level % angle_dims;
          const double mid =
              0.5 * (node.box[dim].first + node.box[dim].second);
          Node upper = node;
          upper.level = node.level + 1;
          upper.box[dim].first = mid;
          upper.path.push_back('0');  // visited first by the serial solver
          Node lower = std::move(node);
          lower.level = upper.level;
          lower.box[dim].second = mid;
          lower.path.push_back('1');
          next.push_back(std::move(upper));
          next.push_back(std::move(lower));
          break;
        }
        case NodeOutcome::kSkipped:
          break;
      }
    }
    frontier = std::move(next);
  }

  stats->nodes = nodes.load();
  stats->leaves = leaves.load();
  stats->depth_cap_leaves = depth_cap_leaves.load();
  stats->max_depth = max_depth.load();
  stats->corner_evals = counters.evals.load();
  stats->cache_hits = counters.hits.load();
  if (preempted.load()) {
    // Surface the precise cause (Cancelled vs DeadlineExceeded), with no
    // partial representative.
    Status cause = ctx.CheckPreempted();
    if (cause.ok()) cause = Status::Cancelled("MDRC expansion preempted");
    return cause;
  }
  if (exhausted.load()) {
    return Status::ResourceExhausted(
        "MDRC node budget exceeded; k is likely too small relative to n "
        "for this dimensionality (raise MdrcOptions::max_nodes or k)");
  }

  // Serial replay in traversal order. reuse_chosen makes each leaf's
  // decision depend on every earlier leaf's decision, so the replay walks
  // the leaves exactly as the depth-first serial solver would reach them;
  // this is what makes the output thread-count-invariant.
  std::sort(leaf_records.begin(), leaf_records.end(),
            [](const LeafRecord& a, const LeafRecord& b) {
              return a.path < b.path;
            });
  std::unordered_set<int32_t> chosen;
  for (const LeafRecord& rec : leaf_records) {
    if (rec.common.empty()) {
      chosen.insert(rec.fallback_item);
      continue;
    }
    // Prefer an already-chosen tuple (any member of the intersection
    // satisfies Theorem 6, so reusing one shrinks the output for free);
    // otherwise take the smallest id for determinism.
    bool reused = false;
    if (options.reuse_chosen) {
      for (int32_t id : rec.common) {
        if (chosen.count(id) != 0) {
          reused = true;
          break;
        }
      }
    }
    if (!reused) chosen.insert(rec.common.front());
  }

  std::vector<int32_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace core
}  // namespace rrr
