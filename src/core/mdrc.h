#ifndef RRR_CORE_MDRC_H_
#define RRR_CORE_MDRC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace rrr {
namespace core {

/// Tuning for SolveMdrc.
struct MdrcOptions {
  /// Depth cap, counted in bisections per angular dimension. 48 halvings
  /// shrink a cell below 1e-14 rad, at which point corner functions are
  /// numerically identical; a capped leaf falls back to the corner top-1.
  ///
  /// The cap is reachable in two situations: duplicate-heavy (degenerate)
  /// data, and k = 1 — where adjacent 1-sets are disjoint, so a cell
  /// straddling a winner-change direction can never have a common corner
  /// top-1 no matter how small it gets (a boundary case the paper does not
  /// discuss). In both cases the fallback item is within one rank exchange
  /// of optimal for every function in the (sub-1e-14 rad) cell.
  size_t max_splits_per_dim = 48;

  /// Budget on recursion-tree nodes. MDRC is designed for k a meaningful
  /// fraction of n (the paper uses 0.1%-10%); for tiny k in high dimension
  /// the partition must isolate every k-set boundary and the tree can grow
  /// combinatorially. Exceeding the budget aborts the solve with
  /// ResourceExhausted rather than consuming unbounded time and memory.
  size_t max_nodes = size_t{1} << 22;

  /// Cap on memoized corner top-k results. Past the cap new corners are
  /// evaluated without being cached (pure-CPU fallback), which bounds the
  /// solver's memory at roughly max_cache_entries * (k + d) * 8 bytes even
  /// on explosive instances.
  size_t max_cache_entries = size_t{1} << 21;

  /// When a leaf's corner intersection contains an already-chosen tuple,
  /// reuse it instead of adding a new one. Any intersection member
  /// satisfies Theorem 6, so this only shrinks the output (by 2-3x on the
  /// paper workloads at d >= 5 — see the micro_mdrc ablation). Off
  /// reproduces the paper's "return I[1]" literally.
  bool reuse_chosen = true;

  /// Worker threads for the partition expansion: 0 = hardware concurrency,
  /// 1 = serial. Child cells at one depth are expanded concurrently over a
  /// sharded corner-top-k memo; leaf decisions are replayed in the serial
  /// traversal order afterwards, so the representative is identical for
  /// every thread count (the equivalence tests pin this).
  size_t threads = 0;
};

/// Observability counters for a SolveMdrc run.
///
/// All counters are exact at threads = 1. Under parallel expansion the
/// structural counters (nodes, leaves, depth_cap_leaves, max_depth) stay
/// exact; corner_evals/cache_hits match the serial counts too (cache
/// entries are compute-once), except when the cache cap forces uncached
/// re-evaluations, whose hit/miss split can then differ slightly.
struct MdrcStats {
  /// Recursion-tree nodes visited.
  size_t nodes = 0;
  /// Nodes resolved by a common top-k item.
  size_t leaves = 0;
  /// Top-k corner evaluations that missed the memo cache.
  size_t corner_evals = 0;
  /// Corner evaluations served from the memo cache.
  size_t cache_hits = 0;
  /// Leaves forced by the depth cap (0 on non-degenerate data).
  size_t depth_cap_leaves = 0;
  /// Deepest node level reached.
  size_t max_depth = 0;
};

/// \brief Algorithm 5 (MDRC): function-space partitioning.
///
/// Recursively bisects the angle hyper-rectangle [0, pi/2]^(d-1) in
/// round-robin dimension order (a quadtree-flavored partition, Figure 8).
/// A node terminates when some tuple appears in the top-k of all 2^(d-1)
/// corner functions; that tuple then has rank <= d*k for *every* function
/// inside the node (Theorem 6, by induction over the arrangement lattice
/// with Theorem 1). The union of leaf tuples is the representative.
///
/// Corner top-k computations are memoized across sibling nodes (corners are
/// shared), which is what makes the algorithm near-constant in n in
/// practice. Measured rank-regret is typically <= k (Section 6).
///
/// Cost is O(nodes * 2^(d-1) * n log n) worst case — each uncached corner
/// evaluation is a top-k scan — but cache hits dominate on real data and
/// the node count is small for k a meaningful fraction of n (Section 6.3
/// reports near-constant scaling in n).
///
/// Fails with InvalidArgument for k == 0 or an empty dataset, and with
/// ResourceExhausted when the recursion exceeds options.max_nodes.
Result<std::vector<int32_t>> SolveMdrc(const data::Dataset& dataset, size_t k,
                                       const MdrcOptions& options = {},
                                       MdrcStats* stats = nullptr);

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_MDRC_H_
