#ifndef RRR_CORE_MDRC_H_
#define RRR_CORE_MDRC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/exec_context.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "data/column_blocks.h"
#include "data/dataset.h"
#include "geometry/vec.h"

namespace rrr {
namespace core {

class CandidateIndex;

/// Tuning for SolveMdrc.
struct MdrcOptions {
  /// Depth cap, counted in bisections per angular dimension. 48 halvings
  /// shrink a cell below 1e-14 rad, at which point corner functions are
  /// numerically identical; a capped leaf falls back to the corner top-1.
  ///
  /// The cap is reachable in two situations: duplicate-heavy (degenerate)
  /// data, and k = 1 — where adjacent 1-sets are disjoint, so a cell
  /// straddling a winner-change direction can never have a common corner
  /// top-1 no matter how small it gets (a boundary case the paper does not
  /// discuss). In both cases the fallback item is within one rank exchange
  /// of optimal for every function in the (sub-1e-14 rad) cell.
  size_t max_splits_per_dim = 48;

  /// Budget on recursion-tree nodes. MDRC is designed for k a meaningful
  /// fraction of n (the paper uses 0.1%-10%); for tiny k in high dimension
  /// the partition must isolate every k-set boundary and the tree can grow
  /// combinatorially. Exceeding the budget aborts the solve with
  /// ResourceExhausted rather than consuming unbounded time and memory.
  size_t max_nodes = size_t{1} << 22;

  /// Cap on memoized corner top-k results (only used when SolveMdrc builds
  /// its own private cache; a shared CornerTopKCache carries its own cap).
  /// Past the cap new corners are evaluated without being cached (pure-CPU
  /// fallback), which bounds the solver's memory at roughly
  /// max_cache_entries * (k + d) * 8 bytes even on explosive instances.
  size_t max_cache_entries = size_t{1} << 21;

  /// When a leaf's corner intersection contains an already-chosen tuple,
  /// reuse it instead of adding a new one. Any intersection member
  /// satisfies Theorem 6, so this only shrinks the output (by 2-3x on the
  /// paper workloads at d >= 5 — see the micro_mdrc ablation). Off
  /// reproduces the paper's "return I[1]" literally.
  bool reuse_chosen = true;

  /// Worker threads for the partition expansion: 0 = hardware concurrency,
  /// 1 = serial. Child cells at one depth are expanded concurrently over a
  /// sharded corner-top-k memo; leaf decisions are replayed in the serial
  /// traversal order afterwards, so the representative is identical for
  /// every thread count (the equivalence tests pin this).
  size_t threads = 0;
};

/// Observability counters for a SolveMdrc run.
///
/// All counters are exact at threads = 1 with a private cache. Under
/// parallel expansion the structural counters (nodes, leaves,
/// depth_cap_leaves, max_depth) stay exact; corner_evals/cache_hits match
/// the serial counts too (cache entries are compute-once), except when the
/// cache cap forces uncached re-evaluations, whose hit/miss split can then
/// differ slightly. With a shared CornerTopKCache (engine queries), corners
/// computed by *earlier* solves count as hits here — the split reflects the
/// shared cache's warmth, which is the reuse signal callers want.
struct MdrcStats {
  /// Recursion-tree nodes visited.
  size_t nodes = 0;
  /// Nodes resolved by a common top-k item.
  size_t leaves = 0;
  /// Top-k corner evaluations that missed the memo cache.
  size_t corner_evals = 0;
  /// Corner evaluations served from the memo cache.
  size_t cache_hits = 0;
  /// Leaves forced by the depth cap (0 on non-degenerate data).
  size_t depth_cap_leaves = 0;
  /// Deepest node level reached.
  size_t max_depth = 0;
  /// Size of the k-skyband candidate set the corner evaluations ran over
  /// (0 when no CandidateIndex was supplied — full-dataset scans).
  size_t skyband_size = 0;
};

/// \brief Concurrent memo of corner top-k evaluations keyed by
/// (k, exact corner angle vector), shareable across SolveMdrc calls.
///
/// Corner coordinates are dyadic fractions of pi/2 propagated top-down, so
/// equal corners are bit-identical doubles and exact-key hashing is sound —
/// and the same corners recur across queries at the same k (sibling cells
/// share corners; repeated solves share everything). PreparedDataset owns
/// one instance so every engine query against a dataset reuses all prior
/// corner work; SolveMdrc builds a private one when the caller passes none.
///
/// Entries are compute-once (std::call_once) and sharded to keep lock
/// contention off the hot path: a thread requesting an in-flight corner
/// waits for the computing thread instead of duplicating an O(n log k)
/// top-k scan. Results are returned by value so no reference outlives a
/// shard mutation. The per-shard entry cap bounds memory on explosive
/// instances: past it, corners are recomputed instead of stored.
class CornerTopKCache {
 public:
  /// Per-call hit/miss counters (per solve, not per cache — a shared cache
  /// serves many solves, each wanting its own Diagnostics).
  struct Counters {
    // rrr-lockfree: per-solve tallies, relaxed increments summed after join
    std::atomic<size_t> evals{0};
    std::atomic<size_t> hits{0};
  };

  /// `dataset` must outlive the cache; `max_entries` caps stored corners
  /// across all k (same meaning as MdrcOptions::max_cache_entries).
  CornerTopKCache(const data::Dataset& dataset, size_t max_entries);

  /// The (sorted-set) top-k of the corner function at `angles`, memoized
  /// under key (k, angles). Thread-safe; `counters` (may be null) receives
  /// this call's hit/miss attribution. `candidates` (may be null) answers
  /// cache misses with a Threshold Algorithm query over its k-skyband
  /// instead of a full scan — bit-identical by the CandidateIndex contract,
  /// so entries computed with and without an index are interchangeable; it
  /// must be built over this cache's dataset with candidates->k() >= k.
  /// `blocks` (may be null, must mirror this cache's dataset) routes
  /// uncached full scans through the blocked scoring kernel — also
  /// bit-identical, so all four miss paths fill interchangeable entries.
  std::vector<int32_t> TopKAt(size_t k, const geometry::Vec& angles,
                              Counters* counters,
                              const CandidateIndex* candidates = nullptr,
                              const data::ColumnBlocks* blocks = nullptr);

  /// Dataset this cache evaluates against (identity-checked by SolveMdrc).
  const data::Dataset* dataset() const { return &dataset_; }

  /// Corners currently memoized (across every k).
  size_t entries() const;

  /// Approximate heap footprint of the memoized corners in bytes (keys,
  /// stored top-k id lists, and map-node overhead) — the eviction-budget
  /// signal for the service layer. An estimate, not an allocation census.
  size_t ApproxBytes() const;

  /// Drops every memoized corner, so later TopKAt calls recompute.
  /// Thread-safe and race-free against in-flight TopKAt calls: a computing
  /// thread holds its entry by shared_ptr and finishes against it
  /// unaffected — it just no longer shares with future callers.
  void Clear();

 private:
  static constexpr size_t kShards = 32;
  struct Entry {
    std::once_flag once;
    std::vector<int32_t> topk;
    // rrr-lockfree: entries hit the shard map *before* call_once fills
    // `topk`; observers bypassing the once_flag (ApproxBytes) acquire
    // `ready` before touching the vector, the filler store-releases it.
    std::atomic<bool> ready{false};
  };
  struct Key {
    size_t k;
    geometry::Vec angles;
    bool operator==(const Key& other) const {
      return k == other.k && angles == other.angles;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<Key, std::shared_ptr<Entry>, KeyHash> map
        RRR_GUARDED_BY(mu);
  };

  std::vector<int32_t> Evaluate(size_t k, const geometry::Vec& angles,
                                const CandidateIndex* candidates,
                                const data::ColumnBlocks* blocks) const;

  const data::Dataset& dataset_;
  size_t per_shard_cap_;
  Shard shards_[kShards];
};

/// \brief Algorithm 5 (MDRC): function-space partitioning.
///
/// Recursively bisects the angle hyper-rectangle [0, pi/2]^(d-1) in
/// round-robin dimension order (a quadtree-flavored partition, Figure 8).
/// A node terminates when some tuple appears in the top-k of all 2^(d-1)
/// corner functions; that tuple then has rank <= d*k for *every* function
/// inside the node (Theorem 6, by induction over the arrangement lattice
/// with Theorem 1). The union of leaf tuples is the representative.
///
/// Corner top-k computations are memoized across sibling nodes (corners are
/// shared), which is what makes the algorithm near-constant in n in
/// practice; pass `corner_cache` to extend that memoization across solves
/// (the engine does). Measured rank-regret is typically <= k (Section 6).
///
/// Cost is O(nodes * 2^(d-1) * n log n) worst case — each uncached corner
/// evaluation is a top-k scan — but cache hits dominate on real data and
/// the node count is small for k a meaningful fraction of n (Section 6.3
/// reports near-constant scaling in n).
///
/// Fails with InvalidArgument for k == 0 or an empty dataset, and with
/// ResourceExhausted when the recursion exceeds options.max_nodes. Returns
/// Cancelled/DeadlineExceeded (no partial representative) when `ctx`
/// preempts the expansion, which is checked per node.
///
/// `candidates` (may be null) routes every uncached corner top-k through
/// the k-skyband candidate index (core/candidate_index.h) instead of a
/// full-dataset scan; the representative and stats are bit-identical either
/// way (the equivalence tests pin this). It must be built over `dataset`
/// with candidates->k() >= min(k, n). `blocks` (may be null, must mirror
/// `dataset`) routes the remaining full-scan corner evaluations through the
/// blocked scoring kernel — again bit-identical.
Result<std::vector<int32_t>> SolveMdrc(const data::Dataset& dataset, size_t k,
                                       const MdrcOptions& options = {},
                                       MdrcStats* stats = nullptr,
                                       const ExecContext& ctx = {},
                                       CornerTopKCache* corner_cache = nullptr,
                                       const CandidateIndex* candidates =
                                           nullptr,
                                       const data::ColumnBlocks* blocks =
                                           nullptr);

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_MDRC_H_
