#include "core/prepared_dataset.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "geometry/convex_hull.h"
#include "geometry/dominance.h"

namespace rrr {
namespace core {

size_t PreparedDataset::KSetKeyHash::operator()(const KSetKey& key) const {
  uint64_t h = FnvMix(kFnvOffsetBasis, key.k);
  h = FnvMix(h, key.seed);
  h = FnvMix(h, key.termination_count);
  h = FnvMix(h, key.max_samples);
  return static_cast<size_t>(h);
}

PreparedDataset::PreparedDataset(data::Dataset dataset, const Options& options)
    : data_(std::move(dataset)),
      kset_cache_(options.max_kset_cache_entries) {
  if (data_.dims() == 2) {
    sweep_ = std::make_unique<AngularSweep>(data_);
  }
  corner_cache_ = std::make_unique<CornerTopKCache>(
      data_, options.max_corner_cache_entries);
}

Result<std::shared_ptr<const PreparedDataset>> PreparedDataset::Create(
    data::Dataset dataset, const Options& options) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  RRR_RETURN_IF_ERROR(dataset.CheckFinite());
  // Not make_shared: the constructor is private, and the sweep must be
  // built against the dataset's final resting address.
  return std::shared_ptr<const PreparedDataset>(
      new PreparedDataset(std::move(dataset), options));
}

Result<std::shared_ptr<const std::vector<int32_t>>>
PreparedDataset::SharedSkyline(const ExecContext& ctx, bool* cache_hit) const {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  return skyline_.GetOrCompute(
      ctx, cache_hit, [this]() -> Result<std::vector<int32_t>> {
        return geometry::Skyline(data_.flat(), data_.size(), data_.dims());
      });
}

Result<std::shared_ptr<const std::vector<int32_t>>>
PreparedDataset::SharedConvexMaxima(size_t threads, const ExecContext& ctx,
                                    bool* cache_hit) const {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  return convex_maxima_.GetOrCompute(
      ctx, cache_hit, [this, threads, &ctx]() -> Result<std::vector<int32_t>> {
        // Prefilter to the skyline: maxima are always Pareto-optimal, and
        // separation from the skyline implies separation from everything
        // it dominates.
        std::shared_ptr<const std::vector<int32_t>> sky;
        RRR_ASSIGN_OR_RETURN(sky, SharedSkyline(ctx));
        if (sky->size() <= 1) return *sky;
        std::vector<double> cells;
        cells.reserve(sky->size() * data_.dims());
        for (int32_t id : *sky) {
          const double* r = data_.row(static_cast<size_t>(id));
          cells.insert(cells.end(), r, r + data_.dims());
        }
        Result<data::Dataset> compact = data::Dataset::FromFlat(
            std::move(cells), sky->size(), data_.dims());
        RRR_CHECK(compact.ok()) << compact.status().ToString();
        std::vector<int32_t> maxima;
        RRR_ASSIGN_OR_RETURN(
            maxima, geometry::ConvexMaxima(compact->flat(), compact->size(),
                                           compact->dims(), threads));
        for (int32_t& id : maxima) id = (*sky)[static_cast<size_t>(id)];
        std::sort(maxima.begin(), maxima.end());
        return maxima;
      });
}

Result<std::shared_ptr<const KSetSampleResult>> PreparedDataset::SharedKSets(
    size_t k, const KSetSamplerOptions& options, const ExecContext& ctx,
    bool* cache_hit) const {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  const KSetKey key{k, options.seed, options.termination_count,
                    options.max_samples};
  return kset_cache_.GetOrCompute(
      key, ctx, cache_hit, [this, k, &options, &ctx]() {
        return SampleKSets(data_, k, options, ctx);
      });
}

}  // namespace core
}  // namespace rrr
