#include "core/prepared_dataset.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "geometry/convex_hull.h"
#include "geometry/dominance.h"
#include "topk/score_kernel.h"

namespace rrr {
namespace core {

size_t PreparedDataset::KSetKeyHash::operator()(const KSetKey& key) const {
  uint64_t h = FnvMix(kFnvOffsetBasis, key.k);
  h = FnvMix(h, key.seed);
  h = FnvMix(h, key.termination_count);
  h = FnvMix(h, key.max_samples);
  return static_cast<size_t>(h);
}

PreparedDataset::PreparedDataset(data::Dataset dataset, const Options& options,
                                 DatasetVersion version)
    : data_(std::move(dataset)),
      options_(options),
      version_(version),
      kset_cache_(options.max_kset_cache_entries),
      candidate_cache_(options.max_candidate_cache_entries) {
  if (data_.dims() == 2) {
    sweep_ = std::make_unique<AngularSweep>(data_);
  }
  corner_cache_ = std::make_unique<CornerTopKCache>(
      data_, options.max_corner_cache_entries);
}

Result<std::shared_ptr<const PreparedDataset>> PreparedDataset::Create(
    data::Dataset dataset, const Options& options) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  RRR_RETURN_IF_ERROR(dataset.CheckFinite());
  // Not make_shared: the constructor is private, and the sweep must be
  // built against the dataset's final resting address.
  return std::shared_ptr<const PreparedDataset>(
      new PreparedDataset(std::move(dataset), options, NewDatasetOrigin()));
}

Result<std::shared_ptr<const PreparedDataset>> PreparedDataset::CreateVersioned(
    data::Dataset dataset, const Options& options, UpdateSeed seed) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  RRR_RETURN_IF_ERROR(dataset.CheckFinite());
  if (!seed.version.assigned()) {
    return Status::InvalidArgument("CreateVersioned: unassigned version");
  }
  const size_t n = dataset.size();
  if (seed.blocks != nullptr && (seed.blocks->rows() != n ||
                                 seed.blocks->dims() != dataset.dims())) {
    return Status::InvalidArgument(
        "CreateVersioned: seed mirror shape mismatches the dataset");
  }
  if (seed.counts != nullptr &&
      (seed.counts->size() != n || seed.counts_cap == 0)) {
    return Status::InvalidArgument(
        "CreateVersioned: seed counts shape mismatches the dataset");
  }
  std::shared_ptr<PreparedDataset> prepared(
      new PreparedDataset(std::move(dataset), options, seed.version));
  if (seed.blocks != nullptr) {
    // The seed mirror was built against the update layer's staging
    // dataset; the rows now live (bit-identically) inside this object.
    seed.blocks->RebindSource(&prepared->data_);
    prepared->column_blocks_.Put(std::move(*seed.blocks));
  }
  if (seed.counts != nullptr) {
    // Uncontended (the object is not yet published), but the counts are
    // guarded state: take the lock so the write is annotation-clean.
    MutexLock lock(prepared->candidate_counts_mu_);
    prepared->candidate_counts_.cap = std::min(seed.counts_cap, n);
    prepared->candidate_counts_.counts = std::move(seed.counts);
  }
  return std::shared_ptr<const PreparedDataset>(std::move(prepared));
}

Result<std::shared_ptr<const data::ColumnBlocks>>
PreparedDataset::SharedColumnBlocks(size_t threads, const ExecContext& ctx,
                                    bool* cache_hit) const {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  return column_blocks_.GetOrCompute(
      ctx, cache_hit,
      [this, threads, &ctx]() -> Result<data::ColumnBlocks> {
        RRR_FAILPOINT("core.artifact.column_blocks");
        return data::ColumnBlocks::Build(data_, threads, ctx);
      });
}

Result<std::shared_ptr<const std::vector<int32_t>>>
PreparedDataset::SharedSkyline(const ExecContext& ctx, bool* cache_hit) const {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  return skyline_.GetOrCompute(
      ctx, cache_hit, [this]() -> Result<std::vector<int32_t>> {
        RRR_FAILPOINT("core.artifact.skyline");
        return geometry::Skyline(data_.flat(), data_.size(), data_.dims());
      });
}

Result<std::shared_ptr<const std::vector<int32_t>>>
PreparedDataset::SharedConvexMaxima(size_t threads, const ExecContext& ctx,
                                    bool* cache_hit) const {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  return convex_maxima_.GetOrCompute(
      ctx, cache_hit, [this, threads, &ctx]() -> Result<std::vector<int32_t>> {
        RRR_FAILPOINT("core.artifact.convex_maxima");
        // Prefilter to the skyline: maxima are always Pareto-optimal, and
        // separation from the skyline implies separation from everything
        // it dominates.
        std::shared_ptr<const std::vector<int32_t>> sky;
        RRR_ASSIGN_OR_RETURN(sky, SharedSkyline(ctx));
        if (sky->size() <= 1) return *sky;
        std::vector<double> cells;
        cells.reserve(sky->size() * data_.dims());
        for (int32_t id : *sky) {
          const double* r = data_.row(static_cast<size_t>(id));
          cells.insert(cells.end(), r, r + data_.dims());
        }
        Result<data::Dataset> compact = data::Dataset::FromFlat(
            std::move(cells), sky->size(), data_.dims());
        RRR_CHECK(compact.ok()) << compact.status().ToString();
        // Kernel pre-certification: a candidate that is the STRICT top-1 of
        // some probe function — with a margin comfortably above the
        // separation LP's tolerance after |w|_1 normalization — is a
        // maximum by witness, so its LP is skipped. One blocked top-2 scan
        // per probe (the d axes and the diagonal, the directions skyline
        // winners concentrate on) over the compact mirror.
        const size_t d = compact->dims();
        data::ColumnBlocks compact_blocks;
        RRR_ASSIGN_OR_RETURN(compact_blocks,
                             data::ColumnBlocks::Build(*compact, threads,
                                                       ctx));
        std::vector<char> certified(compact->size(), 0);
        constexpr double kCertifyMargin = 1e-4;  // LP tolerance is 1e-7
        for (size_t probe = 0; probe <= d; ++probe) {
          geometry::Vec w(d, probe == d ? 1.0 : 0.0);
          double l1 = static_cast<double>(d);
          if (probe < d) {
            w[probe] = 1.0;
            l1 = 1.0;
          }
          const topk::LinearFunction f(std::move(w));
          const std::vector<int32_t> top2 =
              topk::TopKScan(compact_blocks, f, 2);
          const double s1 = f.Score(compact->row(static_cast<size_t>(top2[0])));
          const double s2 = f.Score(compact->row(static_cast<size_t>(top2[1])));
          if ((s1 - s2) / l1 > kCertifyMargin) {
            certified[static_cast<size_t>(top2[0])] = 1;
          }
        }
        std::vector<int32_t> maxima;
        RRR_ASSIGN_OR_RETURN(
            maxima, geometry::ConvexMaxima(compact->flat(), compact->size(),
                                           compact->dims(), threads,
                                           &certified));
        for (int32_t& id : maxima) id = (*sky)[static_cast<size_t>(id)];
        std::sort(maxima.begin(), maxima.end());
        return maxima;
      });
}

Result<std::shared_ptr<const KSetSampleResult>> PreparedDataset::SharedKSets(
    size_t k, const KSetSamplerOptions& options, const ExecContext& ctx,
    bool* cache_hit, const CandidateIndex* candidates) const {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  const KSetKey key{k, options.seed, options.termination_count,
                    options.max_samples};
  return kset_cache_.GetOrCompute(
      key, ctx, cache_hit,
      [this, k, &options, &ctx,
       candidates]() -> Result<KSetSampleResult> {
        RRR_FAILPOINT("core.artifact.ksets");
        // The draws scan the full dataset only without an index and
        // without the skyband prefilter's compaction; only then is the
        // shared columnar mirror fetched (bit-identical collection either
        // way — which is also why the mirror does not key the cache).
        std::shared_ptr<const data::ColumnBlocks> blocks;
        if (candidates == nullptr && !options.skyband_prefilter) {
          RRR_ASSIGN_OR_RETURN(
              blocks, SharedColumnBlocks(options.threads, ctx));
        }
        return SampleKSets(data_, k, options, ctx, candidates, blocks.get());
      });
}

Result<std::shared_ptr<const CandidateIndex>>
PreparedDataset::SharedCandidateIndex(size_t k, size_t threads,
                                      const ExecContext& ctx,
                                      bool* cache_hit) const {
  RRR_RETURN_IF_ERROR(ctx.CheckPreempted());
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  const size_t kk = std::min(k, data_.size());
  // Monotone slice: counts capped at cap >= kk classify the kk-band
  // exactly (a row is in iff its count < kk), so the largest successful
  // count is reused for every smaller k. A slot that declined WITHOUT
  // counts is retried (at most once per call) when counts covering kk have
  // appeared since — a larger-k build paid for them, and the slice path
  // skips the decline heuristics entirely — instead of serving the stale
  // negative entry forever.
  bool retried = false;
  for (;;) {
    std::shared_ptr<const std::vector<uint32_t>> counts;
    {
      MutexLock lock(candidate_counts_mu_);
      if (candidate_counts_.cap >= kk) counts = candidate_counts_.counts;
    }
    std::shared_ptr<const CandidateSlot> slot;
    RRR_ASSIGN_OR_RETURN(
        slot,
        candidate_cache_.GetOrCompute(
            kk, ctx, cache_hit,
            [this, kk, threads, &counts, &ctx]() -> Result<CandidateSlot> {
              RRR_FAILPOINT("core.artifact.candidate_index");
              CandidateIndexOptions build = options_.candidate;
              build.threads = threads != 0 ? threads : build.threads;
              // The shared mirror feeds the build's sort-by-sum pass (and
              // is cheap relative to the dominance count it precedes).
              std::shared_ptr<const data::ColumnBlocks> blocks;
              RRR_ASSIGN_OR_RETURN(blocks,
                                   SharedColumnBlocks(threads, ctx));
              CandidateIndex::Outcome outcome;
              RRR_ASSIGN_OR_RETURN(
                  outcome, CandidateIndex::Create(data_, kk, build, ctx,
                                                  counts.get(),
                                                  blocks.get()));
              if (outcome.counts != nullptr) {
                MutexLock lock(candidate_counts_mu_);
                if (kk > candidate_counts_.cap) {
                  candidate_counts_.cap = kk;
                  candidate_counts_.counts = outcome.counts;
                }
              }
              return CandidateSlot{std::move(outcome.index),
                                   counts != nullptr};
            }));
    // A counts-less decline is stale once counts covering kk exist (this
    // read, or appeared concurrently); drop it and rebuild through the
    // slice path. One retry bounds the loop — the rebuilt slot either
    // carries counts or was raced in by another counts-less compute, in
    // which case the next call retries.
    if (slot->index != nullptr || slot->built_from_counts || retried) {
      return slot->index;
    }
    if (counts == nullptr) {
      MutexLock lock(candidate_counts_mu_);
      if (candidate_counts_.cap < kk) return slot->index;
    }
    retried = true;
    candidate_cache_.Invalidate(kk);
  }
}

namespace {

size_t IdVectorBytes(const std::vector<int32_t>& ids) {
  return ids.capacity() * sizeof(int32_t);
}

size_t KSetSampleBytes(const KSetSampleResult& sample) {
  size_t bytes = 0;
  for (const KSet& set : sample.ksets.sets()) {
    bytes += sizeof(KSet) + set.ids.capacity() * sizeof(int32_t);
  }
  // The collection's dedup hash holds one copy of every set's id vector.
  return 2 * bytes;
}

}  // namespace

PreparedDataset::ArtifactBytes PreparedDataset::ApproxArtifactBytes() const {
  ArtifactBytes bytes;
  bytes.dataset = data_.size() * data_.dims() * sizeof(double);
  if (sweep_ != nullptr) bytes.dataset += sweep_->ApproxBytes();
  if (std::shared_ptr<const data::ColumnBlocks> blocks =
          column_blocks_.Peek()) {
    // Includes the per-block column bounds (2 * d doubles per block) that
    // back block-max pruning — the metadata rides the mirror's budget.
    bytes.column_blocks = blocks->ApproxBytes();
  }
  if (std::shared_ptr<const std::vector<int32_t>> sky = skyline_.Peek()) {
    bytes.skyline = IdVectorBytes(*sky);
  }
  if (std::shared_ptr<const std::vector<int32_t>> maxima =
          convex_maxima_.Peek()) {
    bytes.convex_maxima = IdVectorBytes(*maxima);
  }
  kset_cache_.ForEachReady(
      [&bytes](const KSetKey&, const KSetSampleResult& sample) {
        bytes.ksets += sizeof(KSetKey) + KSetSampleBytes(sample);
      });
  candidate_cache_.ForEachReady(
      [&bytes](const size_t&, const CandidateSlot& slot) {
        bytes.candidates += sizeof(CandidateSlot);
        if (slot.index != nullptr) bytes.candidates += slot.index->ApproxBytes();
      });
  bytes.corner_topk = corner_cache_->ApproxBytes();
  {
    MutexLock lock(candidate_counts_mu_);
    if (candidate_counts_.counts != nullptr) {
      bytes.candidate_counts =
          candidate_counts_.counts->capacity() * sizeof(uint32_t);
    }
  }
  return bytes;
}

size_t PreparedDataset::EvictSharedArtifacts() const {
  const size_t freed = ApproxArtifactBytes().evictable();
  column_blocks_.Evict();
  skyline_.Evict();
  convex_maxima_.Evict();
  kset_cache_.Clear();
  candidate_cache_.Clear();
  corner_cache_->Clear();
  {
    MutexLock lock(candidate_counts_mu_);
    candidate_counts_.cap = 0;
    candidate_counts_.counts.reset();
  }
  return freed;
}

}  // namespace core
}  // namespace rrr
