#ifndef RRR_CORE_RRR2D_H_
#define RRR_CORE_RRR2D_H_

#include <cstdint>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "data/column_blocks.h"
#include "data/dataset.h"
#include "hitting/interval_cover.h"

namespace rrr {
namespace core {

class AngularSweep;
class CandidateIndex;

/// Tuning for Solve2dRrr.
struct Rrr2dOptions {
  /// Interval-cover strategy. kSweep (default) is provably optimal in
  /// output size (realizing Theorem 3); kGreedyMaxCoverage follows the
  /// paper's Algorithm 2 pseudocode.
  hitting::CoverStrategy cover = hitting::CoverStrategy::kSweep;
};

/// \brief Algorithm 2 (2DRRR): computes a rank-regret representative of a 2D
/// dataset.
///
/// Guarantees (Theorems 2-4): output size <= the optimal RRR size for the
/// requested k, and every linear ranking function has some output item of
/// rank <= 2k. In practice (Section 6.2) the measured rank-regret is almost
/// always <= k. Runs in O(n^2 log n).
///
/// Fails with InvalidArgument unless dims == 2, k >= 1, and the dataset is
/// non-empty; propagates any Status from FindRanges or the interval cover.
/// Returns Cancelled/DeadlineExceeded (no partial output) when `ctx`
/// preempts the underlying sweep. `sweep` optionally reuses a prebuilt
/// AngularSweep over the same dataset (see FindRanges). `candidates` (may
/// be null) runs the sweep and the endpoint top-k patches over the
/// k-skyband — bit-identical output, O(band^2) instead of O(n^2) events
/// (see FindRanges); takes precedence over `sweep`. `blocks` (may be null,
/// must mirror `dataset`) routes the unpruned endpoint top-k patches
/// through the blocked scoring kernel — bit-identical again.
Result<std::vector<int32_t>> Solve2dRrr(const data::Dataset& dataset,
                                        size_t k,
                                        const Rrr2dOptions& options = {},
                                        const ExecContext& ctx = {},
                                        const AngularSweep* sweep = nullptr,
                                        const CandidateIndex* candidates =
                                            nullptr,
                                        const data::ColumnBlocks* blocks =
                                            nullptr);

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_RRR2D_H_
