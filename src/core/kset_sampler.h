#ifndef RRR_CORE_KSET_SAMPLER_H_
#define RRR_CORE_KSET_SAMPLER_H_

#include <cstdint>

#include "common/exec_context.h"
#include "common/result.h"
#include "core/kset.h"
#include "data/column_blocks.h"
#include "data/dataset.h"

namespace rrr {
namespace core {

class CandidateIndex;

/// Tuning for SampleKSets (the paper's termination condition c and seed).
struct KSetSamplerOptions {
  uint64_t seed = 13;
  /// Stop after this many consecutive samples that discover nothing new
  /// (the paper's experiments use 100).
  size_t termination_count = 100;
  /// Absolute cap on drawn samples (safety valve).
  size_t max_samples = 50'000'000;
  /// Restrict per-sample top-k computation to the k-skyband (tuples
  /// dominated by fewer than k others) — a sound prefilter, since no other
  /// tuple can enter any top-k. Pays the O(n^2 d) band computation once and
  /// wins when many samples are drawn on dominance-heavy data (see the
  /// micro_skyband ablation). Off by default to match the paper.
  bool skyband_prefilter = false;
  /// Answer per-sample top-k queries with the Threshold Algorithm index
  /// (topk/threshold_algorithm.h) instead of the linear scan. Pays
  /// O(d n log n) once; each query then stops early on correlated data.
  /// Results are identical either way. Composes with skyband_prefilter.
  bool use_threshold_algorithm = false;
  /// Worker threads for the per-sample top-k evaluations: 0 = hardware
  /// concurrency, 1 = serial. Ranking functions are always drawn from the
  /// single seeded Rng in sequence and their k-sets are recorded in draw
  /// order, so the sampled collection (and samples_drawn) is identical for
  /// every thread count; only the top-k scans fan out.
  size_t threads = 0;
};

/// Output of SampleKSets.
struct KSetSampleResult {
  KSetCollection ksets;
  /// Total ranking functions drawn.
  size_t samples_drawn = 0;
};

/// \brief Algorithm 4 (K-SETr): randomized k-set discovery via the coupon
/// collector's scheme.
///
/// Repeatedly draws a uniform ranking function (Marsaglia sampling on the
/// first orthant of the unit sphere) and records its top-k as a k-set,
/// stopping after `termination_count` consecutive non-discoveries. May miss
/// k-sets whose function-space cells are tiny; the hitting set computed from
/// the sample is therefore a lower bound certificate, not a proof (Section
/// 5.2.1 discusses why misses are rare and benign in practice).
///
/// Cost is O(samples * n (d + log k)) with the default linear-scan top-k;
/// the skyband prefilter and Threshold Algorithm options trade one-off
/// indexing for cheaper per-sample queries (identical output either way).
///
/// Fails with InvalidArgument for k == 0 or an empty dataset; returns
/// Cancelled/DeadlineExceeded (no partial collection) when `ctx` preempts
/// the draw loop, which is checked between samples (serial) or between
/// batches (parallel).
///
/// `candidates` (may be null) answers every per-sample top-k with a
/// Threshold Algorithm query over its k-skyband (core/candidate_index.h)
/// instead of the per-call prefilter/index the boolean options rebuild from
/// scratch; the sampled collection is bit-identical in all cases (the
/// sampler's invariance contract). It must be built over `dataset` with
/// candidates->k() >= k, and takes precedence over the two query-strategy
/// flags above. `blocks` (may be null, must mirror `dataset`) routes the
/// full-dataset scans — the default draw path, and the TA index's dense
/// queries — through the blocked scoring kernel; it is ignored when the
/// skyband prefilter compacts the search space to a different dataset.
Result<KSetSampleResult> SampleKSets(const data::Dataset& dataset, size_t k,
                                     const KSetSamplerOptions& options = {},
                                     const ExecContext& ctx = {},
                                     const CandidateIndex* candidates =
                                         nullptr,
                                     const data::ColumnBlocks* blocks =
                                         nullptr);

}  // namespace core
}  // namespace rrr

#endif  // RRR_CORE_KSET_SAMPLER_H_
