#include "eval/metrics.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "data/column_blocks.h"
#include "topk/rank.h"
#include "topk/score_kernel.h"
#include "topk/scoring.h"

namespace rrr {
namespace eval {

Result<EvaluationReport> Evaluate(const data::Dataset& dataset,
                                  const std::vector<int32_t>& subset,
                                  const EvaluateOptions& options) {
  if (subset.empty()) return Status::InvalidArgument("empty subset");
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (options.num_functions == 0) {
    return Status::InvalidArgument("need at least one evaluation function");
  }
  for (int32_t id : subset) {
    if (id < 0 || static_cast<size_t>(id) >= dataset.size()) {
      return Status::OutOfRange("subset id out of range");
    }
  }

  // One columnar mirror amortized over num_functions full scans (a rank
  // scan and a max-score scan per function); every per-function number is
  // bit-identical to the legacy row loops.
  Result<data::ColumnBlocks> mirror = data::ColumnBlocks::Build(dataset, 1);
  RRR_CHECK(mirror.ok()) << mirror.status().ToString();
  const data::ColumnBlocks& blocks = *mirror;

  Rng rng(options.seed);
  EvaluationReport report;
  report.size = subset.size();
  int64_t rank_sum = 0;
  size_t hits = 0;
  for (size_t s = 0; s < options.num_functions; ++s) {
    topk::LinearFunction f(
        rng.UnitWeightVector(static_cast<int>(dataset.dims())));
    const int64_t best_rank =
        topk::MinRankOfSubset(dataset, f, subset, &blocks);
    report.rank_regret = std::max(report.rank_regret, best_rank);
    rank_sum += best_rank;
    if (best_rank <= static_cast<int64_t>(options.k)) ++hits;

    // Same fold as the legacy loop: a 0.0 floor over the row maxima.
    const double best_all = std::max(0.0, topk::MaxScore(blocks, f));
    if (best_all > 0.0) {
      double best_subset = 0.0;
      for (int32_t id : subset) {
        best_subset = std::max(
            best_subset, f.Score(dataset.row(static_cast<size_t>(id))));
      }
      report.regret_ratio = std::max(
          report.regret_ratio, (best_all - best_subset) / best_all);
    }
  }
  report.mean_rank = static_cast<double>(rank_sum) /
                     static_cast<double>(options.num_functions);
  report.topk_hit_rate = static_cast<double>(hits) /
                         static_cast<double>(options.num_functions);
  return report;
}

std::string ToString(const EvaluationReport& report) {
  return StrFormat(
      "size=%zu rank_regret=%lld mean_rank=%.2f ratio=%.4f hit_rate=%.3f",
      report.size, static_cast<long long>(report.rank_regret),
      report.mean_rank, report.regret_ratio, report.topk_hit_rate);
}

}  // namespace eval
}  // namespace rrr
