#ifndef RRR_EVAL_REGRET_RATIO_H_
#define RRR_EVAL_REGRET_RATIO_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace rrr {
namespace eval {

/// Options for SampledRegretRatio.
struct RegretRatioOptions {
  size_t num_functions = 10000;
  uint64_t seed = 29;
};

/// \brief Monte-Carlo estimate of the classic (score-based) maximum
/// regret-ratio of `subset`: max over sampled linear functions f of
/// (max_D f - max_subset f) / max_D f [Nanongkai et al.].
///
/// This is the objective HD-RRMS optimizes and the quantity the paper
/// contrasts with rank-regret. Scores are assumed non-negative (normalized
/// data); functions whose dataset-wide best score is 0 are skipped.
Result<double> SampledRegretRatio(const data::Dataset& dataset,
                                  const std::vector<int32_t>& subset,
                                  const RegretRatioOptions& options = {});

}  // namespace eval
}  // namespace rrr

#endif  // RRR_EVAL_REGRET_RATIO_H_
