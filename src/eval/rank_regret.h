#ifndef RRR_EVAL_RANK_REGRET_H_
#define RRR_EVAL_RANK_REGRET_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/column_blocks.h"
#include "data/dataset.h"

namespace rrr {
namespace core {
class CandidateIndex;
}  // namespace core

namespace eval {

/// \brief Exact rank-regret of `subset` over all 2D linear ranking
/// functions: max over theta in [0, pi/2] of the best subset rank
/// (Definition 2 evaluated exactly).
///
/// One angular sweep, tracking the subset's best position incrementally
/// across every rank exchange. O(E log n).
Result<int64_t> ExactRankRegret2D(const data::Dataset& dataset,
                                  const std::vector<int32_t>& subset);

/// Options for the sampled multi-dimensional estimator.
struct SampledRankRegretOptions {
  /// Ranking functions drawn uniformly from the first orthant of the unit
  /// sphere (the paper's Section 6.1 uses 10,000).
  size_t num_functions = 10000;
  uint64_t seed = 23;
  /// Worker threads for the per-function rank scans: 0 = hardware
  /// concurrency, 1 = serial. The estimate is a max over draws from one
  /// seeded Rng, so the result is identical for every thread count.
  size_t threads = 0;
};

/// \brief Monte-Carlo lower bound on the rank-regret of `subset`: the max
/// over sampled functions of the subset's best rank.
///
/// This is the paper's measurement protocol for d > 2 (exact evaluation
/// would need the full dual arrangement). A reported value r means some
/// sampled function had regret r; the true max can only be larger.
Result<int64_t> SampledRankRegret(
    const data::Dataset& dataset, const std::vector<int32_t>& subset,
    const SampledRankRegretOptions& options = {});

/// Outcome of an exact bounded-rank-regret decision (any dimension).
struct RankRegretCertificate {
  /// True iff RR_L(subset) <= k over ALL linear ranking functions.
  bool within_k = false;
  /// When within_k is false: a concrete weight vector whose entire top-k
  /// avoids the subset (a user the subset fails), plus that user's best
  /// subset rank. Empty/0 when within_k.
  std::vector<double> witness_weights;
  int64_t witness_rank = 0;
};

/// \brief Exact decision "is the rank-regret of `subset` at most k?" in any
/// dimension, via complete k-set enumeration (Algorithm 6 + Lemma 5):
/// the answer is yes iff `subset` hits every k-set.
///
/// Exponential-ish in practice (the enumeration solves O(|S| k n) LPs), so
/// intended for small n — ground truth for tests and audits of the sampled
/// estimator. When the answer is no, the witness weight vector comes from
/// the separation LP of the missed k-set, so callers can show the exact
/// "unhappy user".
///
/// `threads` fans the per-k-set hit checks out (0 = hardware concurrency,
/// 1 = serial); the certificate — including which missed k-set supplies
/// the witness — is identical for every thread count, because the first
/// miss in enumeration order is always the one certified.
///
/// `candidates` (may be null) hands the underlying k-set enumeration the
/// shared k-skyband index — e.g. PreparedDataset::SharedCandidateIndex(k)
/// — shrinking its swap loops from n to the band with an identical
/// certificate (see EnumerateKSetsGraph). `blocks` (may be null, must
/// mirror `dataset` — e.g. PreparedDataset::SharedColumnBlocks()) routes
/// the enumeration's seed scans and the witness rank scan through the
/// blocked scoring kernel; identical certificate again.
Result<RankRegretCertificate> ExactRankRegretWithinK(
    const data::Dataset& dataset, const std::vector<int32_t>& subset,
    size_t k, size_t threads = 0,
    const core::CandidateIndex* candidates = nullptr,
    const data::ColumnBlocks* blocks = nullptr);

}  // namespace eval
}  // namespace rrr

#endif  // RRR_EVAL_RANK_REGRET_H_
