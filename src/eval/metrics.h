#ifndef RRR_EVAL_METRICS_H_
#define RRR_EVAL_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace rrr {
namespace eval {

/// Everything the paper's effectiveness figures report about one
/// representative, measured in one pass.
struct EvaluationReport {
  /// Representative size (the right-hand axis of Figures 10-28).
  size_t size = 0;
  /// Max best-rank over the evaluation functions (left-hand axis).
  int64_t rank_regret = 0;
  /// Mean best-rank over the evaluation functions (not plotted in the
  /// paper but indispensable when two subsets tie on the max).
  double mean_rank = 0.0;
  /// Classic score regret-ratio over the same functions (the baseline's
  /// objective).
  double regret_ratio = 0.0;
  /// Fraction of evaluation functions whose top-k was hit (k as passed to
  /// Evaluate; 1.0 means the sampled rank-regret is <= k).
  double topk_hit_rate = 0.0;
};

/// Options for Evaluate.
struct EvaluateOptions {
  /// Rank budget used for topk_hit_rate.
  size_t k = 1;
  size_t num_functions = 1000;
  uint64_t seed = 23;
};

/// \brief Scores `subset` against `dataset` on every §6 metric with a
/// single shared sample of ranking functions (so the columns of one report
/// are mutually consistent).
Result<EvaluationReport> Evaluate(const data::Dataset& dataset,
                                  const std::vector<int32_t>& subset,
                                  const EvaluateOptions& options = {});

/// One CSV-ish line: "size=5 rank_regret=12 mean_rank=3.1 ratio=0.08
/// hit_rate=0.97".
std::string ToString(const EvaluationReport& report);

}  // namespace eval
}  // namespace rrr

#endif  // RRR_EVAL_METRICS_H_
