#include "eval/regret_ratio.h"

#include <algorithm>

#include "common/random.h"
#include "topk/scoring.h"

namespace rrr {
namespace eval {

Result<double> SampledRegretRatio(const data::Dataset& dataset,
                                  const std::vector<int32_t>& subset,
                                  const RegretRatioOptions& options) {
  if (subset.empty()) return Status::InvalidArgument("empty subset");
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  for (int32_t id : subset) {
    if (id < 0 || static_cast<size_t>(id) >= dataset.size()) {
      return Status::OutOfRange("subset id out of range");
    }
  }
  Rng rng(options.seed);
  double worst = 0.0;
  for (size_t s = 0; s < options.num_functions; ++s) {
    topk::LinearFunction f(
        rng.UnitWeightVector(static_cast<int>(dataset.dims())));
    double best_all = 0.0;
    for (size_t i = 0; i < dataset.size(); ++i) {
      best_all = std::max(best_all, f.Score(dataset.row(i)));
    }
    if (best_all <= 0.0) continue;
    double best_subset = 0.0;
    for (int32_t id : subset) {
      best_subset =
          std::max(best_subset, f.Score(dataset.row(static_cast<size_t>(id))));
    }
    worst = std::max(worst, (best_all - best_subset) / best_all);
  }
  return worst;
}

}  // namespace eval
}  // namespace rrr
