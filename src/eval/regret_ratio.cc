#include "eval/regret_ratio.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"
#include "data/column_blocks.h"
#include "topk/score_kernel.h"
#include "topk/scoring.h"

namespace rrr {
namespace eval {

Result<double> SampledRegretRatio(const data::Dataset& dataset,
                                  const std::vector<int32_t>& subset,
                                  const RegretRatioOptions& options) {
  if (subset.empty()) return Status::InvalidArgument("empty subset");
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  for (int32_t id : subset) {
    if (id < 0 || static_cast<size_t>(id) >= dataset.size()) {
      return Status::OutOfRange("subset id out of range");
    }
  }
  // One columnar mirror amortized over the num_functions max-score scans;
  // the fold (0.0 floor over row maxima) matches the legacy loop exactly.
  Result<data::ColumnBlocks> mirror = data::ColumnBlocks::Build(dataset, 1);
  RRR_CHECK(mirror.ok()) << mirror.status().ToString();
  const data::ColumnBlocks& blocks = *mirror;

  Rng rng(options.seed);
  double worst = 0.0;
  for (size_t s = 0; s < options.num_functions; ++s) {
    topk::LinearFunction f(
        rng.UnitWeightVector(static_cast<int>(dataset.dims())));
    const double best_all = std::max(0.0, topk::MaxScore(blocks, f));
    if (best_all <= 0.0) continue;
    double best_subset = 0.0;
    for (int32_t id : subset) {
      best_subset =
          std::max(best_subset, f.Score(dataset.row(static_cast<size_t>(id))));
    }
    worst = std::max(worst, (best_all - best_subset) / best_all);
  }
  return worst;
}

}  // namespace eval
}  // namespace rrr
