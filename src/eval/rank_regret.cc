#include "eval/rank_regret.h"

#include <unordered_set>

#include "common/parallel.h"
#include "core/evaluator.h"
#include "core/kset_graph.h"
#include "lp/separation.h"
#include "topk/rank.h"
#include "topk/scoring.h"

namespace rrr {
namespace eval {

Result<int64_t> ExactRankRegret2D(const data::Dataset& dataset,
                                  const std::vector<int32_t>& subset) {
  // Implementation shared with the engine facade (core/evaluator.h).
  return core::SweepExactRankRegret2D(dataset, subset);
}

Result<RankRegretCertificate> ExactRankRegretWithinK(
    const data::Dataset& dataset, const std::vector<int32_t>& subset,
    size_t k, size_t threads, const core::CandidateIndex* candidates,
    const data::ColumnBlocks* blocks) {
  if (subset.empty()) return Status::InvalidArgument("empty subset");
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  const size_t n = dataset.size();
  std::unordered_set<int32_t> members;
  for (int32_t id : subset) {
    if (id < 0 || static_cast<size_t>(id) >= n) {
      return Status::OutOfRange("subset id out of range");
    }
    members.insert(id);
  }

  RankRegretCertificate cert;
  if (k >= n) {  // every tuple is top-n for every function
    cert.within_k = true;
    return cert;
  }

  core::KSetCollection ksets;
  RRR_ASSIGN_OR_RETURN(
      ksets,
      core::EnumerateKSetsGraph(dataset, k, {}, {}, candidates, blocks));
  const std::vector<core::KSet>& sets = ksets.sets();

  // Hit checks are independent per k-set; fan them out, then certify the
  // first miss in enumeration order (so the witness does not depend on the
  // thread count).
  std::vector<char> hit(sets.size(), 0);
  ParallelForChunked(
      ResolveThreads(threads), sets.size(), 8,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          for (int32_t id : sets[i].ids) {
            if (members.count(id) != 0) {
              hit[i] = 1;
              break;
            }
          }
        }
      });
  for (size_t i = 0; i < sets.size(); ++i) {
    if (hit[i]) continue;
    // Missed k-set: its separating weights realize a function whose whole
    // top-k avoids the subset (Lemma 5), i.e. regret > k there.
    lp::SeparationResult sep;
    RRR_ASSIGN_OR_RETURN(
        sep, lp::FindSeparatingWeights(dataset.flat(), n, dataset.dims(),
                                       sets[i].ids));
    if (!sep.separable) {
      return Status::Internal("enumerated k-set failed re-separation");
    }
    cert.within_k = false;
    cert.witness_weights = sep.weights;
    cert.witness_rank = topk::MinRankOfSubset(
        dataset, topk::LinearFunction(sep.weights), subset, blocks);
    return cert;
  }
  cert.within_k = true;
  return cert;
}

Result<int64_t> SampledRankRegret(const data::Dataset& dataset,
                                  const std::vector<int32_t>& subset,
                                  const SampledRankRegretOptions& options) {
  // Implementation shared with the engine facade (core/evaluator.h).
  core::SampledRegretOptions core_options;
  core_options.num_functions = options.num_functions;
  core_options.seed = options.seed;
  core_options.threads = options.threads;
  return core::SampledRankRegretEstimate(dataset, subset, core_options);
}

}  // namespace eval
}  // namespace rrr
