#include "eval/rank_regret.h"

#include <algorithm>
#include <mutex>
#include <set>
#include <unordered_set>

#include "common/parallel.h"
#include "common/random.h"
#include "core/kset_graph.h"
#include "core/sweep.h"
#include "lp/separation.h"
#include "topk/rank.h"
#include "topk/scoring.h"

namespace rrr {
namespace eval {

Result<int64_t> ExactRankRegret2D(const data::Dataset& dataset,
                                  const std::vector<int32_t>& subset) {
  if (dataset.dims() != 2) {
    return Status::InvalidArgument("ExactRankRegret2D requires 2D data");
  }
  if (subset.empty()) return Status::InvalidArgument("empty subset");
  RRR_RETURN_IF_ERROR(dataset.CheckFinite());
  const size_t n = dataset.size();
  std::vector<char> in_subset(n, 0);
  for (int32_t id : subset) {
    if (id < 0 || static_cast<size_t>(id) >= n) {
      return Status::OutOfRange("subset id out of range");
    }
    in_subset[static_cast<size_t>(id)] = 1;
  }

  core::AngularSweep sweep(dataset);
  const auto& order = sweep.InitialOrder();
  // Positions (0-based) currently held by subset members.
  std::set<size_t> member_positions;
  std::vector<size_t> pos(n);
  for (size_t i = 0; i < n; ++i) {
    pos[static_cast<size_t>(order[i])] = i;
    if (in_subset[static_cast<size_t>(order[i])]) member_positions.insert(i);
  }

  int64_t worst = static_cast<int64_t>(*member_positions.begin()) + 1;
  sweep.Run([&](const core::SweepEvent& ev) {
    const bool down_in = in_subset[static_cast<size_t>(ev.item_down)] != 0;
    const bool up_in = in_subset[static_cast<size_t>(ev.item_up)] != 0;
    if (down_in != up_in) {
      const size_t upper = ev.upper_position - 1;  // 0-based slot
      if (down_in) {
        // A member moved down one slot.
        member_positions.erase(upper);
        member_positions.insert(upper + 1);
      } else {
        // A member moved up one slot.
        member_positions.erase(upper + 1);
        member_positions.insert(upper);
      }
    }
    // Only settled orders are rankings some function realizes; taking the
    // max inside an equal-angle cascade would overstate the regret on
    // tie-heavy data.
    if (ev.settled) {
      worst = std::max(worst,
                       static_cast<int64_t>(*member_positions.begin()) + 1);
    }
    return true;
  });
  return worst;
}

Result<RankRegretCertificate> ExactRankRegretWithinK(
    const data::Dataset& dataset, const std::vector<int32_t>& subset,
    size_t k, size_t threads) {
  if (subset.empty()) return Status::InvalidArgument("empty subset");
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  const size_t n = dataset.size();
  std::unordered_set<int32_t> members;
  for (int32_t id : subset) {
    if (id < 0 || static_cast<size_t>(id) >= n) {
      return Status::OutOfRange("subset id out of range");
    }
    members.insert(id);
  }

  RankRegretCertificate cert;
  if (k >= n) {  // every tuple is top-n for every function
    cert.within_k = true;
    return cert;
  }

  core::KSetCollection ksets;
  RRR_ASSIGN_OR_RETURN(ksets, core::EnumerateKSetsGraph(dataset, k));
  const std::vector<core::KSet>& sets = ksets.sets();

  // Hit checks are independent per k-set; fan them out, then certify the
  // first miss in enumeration order (so the witness does not depend on the
  // thread count).
  std::vector<char> hit(sets.size(), 0);
  ParallelForChunked(
      ResolveThreads(threads), sets.size(), 8,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          for (int32_t id : sets[i].ids) {
            if (members.count(id) != 0) {
              hit[i] = 1;
              break;
            }
          }
        }
      });
  for (size_t i = 0; i < sets.size(); ++i) {
    if (hit[i]) continue;
    // Missed k-set: its separating weights realize a function whose whole
    // top-k avoids the subset (Lemma 5), i.e. regret > k there.
    lp::SeparationResult sep;
    RRR_ASSIGN_OR_RETURN(
        sep, lp::FindSeparatingWeights(dataset.flat(), n, dataset.dims(),
                                       sets[i].ids));
    if (!sep.separable) {
      return Status::Internal("enumerated k-set failed re-separation");
    }
    cert.within_k = false;
    cert.witness_weights = sep.weights;
    cert.witness_rank = topk::MinRankOfSubset(
        dataset, topk::LinearFunction(sep.weights), subset);
    return cert;
  }
  cert.within_k = true;
  return cert;
}

Result<int64_t> SampledRankRegret(const data::Dataset& dataset,
                                  const std::vector<int32_t>& subset,
                                  const SampledRankRegretOptions& options) {
  if (subset.empty()) return Status::InvalidArgument("empty subset");
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  for (int32_t id : subset) {
    if (id < 0 || static_cast<size_t>(id) >= dataset.size()) {
      return Status::OutOfRange("subset id out of range");
    }
  }
  Rng rng(options.seed);
  const size_t threads = ResolveThreads(options.threads);
  if (threads <= 1) {
    int64_t worst = 1;
    for (size_t s = 0; s < options.num_functions; ++s) {
      topk::LinearFunction f(
          rng.UnitWeightVector(static_cast<int>(dataset.dims())));
      worst = std::max(worst, topk::MinRankOfSubset(dataset, f, subset));
    }
    return worst;
  }

  // Parallel path: the draws stay serial (one seeded Rng, same sequence as
  // the serial path) and the O(n) rank scans fan out. max() is commutative,
  // so the estimate is identical for every thread count.
  std::vector<topk::LinearFunction> funcs;
  funcs.reserve(options.num_functions);
  for (size_t s = 0; s < options.num_functions; ++s) {
    funcs.emplace_back(
        rng.UnitWeightVector(static_cast<int>(dataset.dims())));
  }
  std::vector<int64_t> per_chunk_worst;
  std::mutex mu;
  ParallelForChunked(
      threads, funcs.size(), 16, [&](size_t begin, size_t end) {
        int64_t local = 1;
        for (size_t s = begin; s < end; ++s) {
          local = std::max(local,
                           topk::MinRankOfSubset(dataset, funcs[s], subset));
        }
        std::lock_guard<std::mutex> lock(mu);
        per_chunk_worst.push_back(local);
      });
  int64_t worst = 1;
  for (int64_t w : per_chunk_worst) worst = std::max(worst, w);
  return worst;
}

}  // namespace eval
}  // namespace rrr
