#ifndef RRR_SERVICE_PROTOCOL_H_
#define RRR_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rrr {
namespace service {

/// \brief The wire grammar of rrr_serverd: one request per line, one
/// response per line (STATS excepted), over a plain TCP stream.
///
///   request   = verb *( SP key "=" value ) LF
///   verb      = 1*ALPHA                ; case-insensitive, e.g. SOLVE
///   key       = 1*( ALPHA / "_" )
///   value     = 1*VCHAR                ; no spaces; lists comma-separated
///   response  = "OK" *( SP key "=" value ) LF
///             / "ERR" SP "code=" code SP "msg=" text LF   ; text may have SP
///   stats     = *( key SP value LF ) "END" LF             ; STATS only
///
/// `code` is the snake_case StatusCode name ("not_found",
/// "deadline_exceeded", ...), except admission-control rejections, which
/// use the dedicated "busy" code so load generators can tell overload
/// apart from a solver's own resource exhaustion.

/// A parsed request line: canonical upper-case verb plus key=value args in
/// wire order (later duplicates win in Find, matching a "last flag wins"
/// CLI convention).
struct Command {
  std::string verb;
  std::vector<std::pair<std::string, std::string>> args;

  /// The value for `key`, or null when absent.
  const std::string* Find(const std::string& key) const;

  /// Required string argument; InvalidArgument when missing.
  Result<std::string> GetString(const std::string& key) const;

  /// Optional argument with a default.
  std::string GetStringOr(const std::string& key,
                          const std::string& fallback) const;

  /// Required / optional non-negative integer argument.
  Result<uint64_t> GetUint(const std::string& key) const;
  Result<uint64_t> GetUintOr(const std::string& key, uint64_t fallback) const;
};

/// Parses one request line (no trailing newline). Empty lines and
/// malformed key=value pairs are InvalidArgument.
Result<Command> ParseCommand(const std::string& line);

/// Formats an OK response line (no trailing newline).
std::string FormatOk(
    const std::vector<std::pair<std::string, std::string>>& fields);

/// Formats an ERR response line for a non-ok status (no trailing newline).
/// `busy` statuses are those the caller tags via FormatBusy instead.
std::string FormatErr(const Status& status);

/// Formats the typed admission-control rejection: ERR code=busy.
std::string FormatBusy(const std::string& detail);

/// snake_case wire name of a status code ("deadline_exceeded", ...).
std::string_view WireCode(StatusCode code);

/// Comma-joined decimal ids ("" for an empty list).
std::string JoinIds(const std::vector<int32_t>& ids);

/// Inverse of JoinIds; InvalidArgument on any non-integer element.
Result<std::vector<int32_t>> ParseIdList(const std::string& text);

/// Comma-separated doubles ("1.5,2,3e-1"); InvalidArgument on junk.
Result<std::vector<double>> ParseDoubleList(const std::string& text);

}  // namespace service
}  // namespace rrr

#endif  // RRR_SERVICE_PROTOCOL_H_
