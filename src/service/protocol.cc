#include "service/protocol.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace rrr {
namespace service {

const std::string* Command::Find(const std::string& key) const {
  const std::string* found = nullptr;
  for (const auto& kv : args) {
    if (kv.first == key) found = &kv.second;
  }
  return found;
}

Result<std::string> Command::GetString(const std::string& key) const {
  const std::string* value = Find(key);
  if (value == nullptr) {
    return Status::InvalidArgument(verb + ": missing argument " + key);
  }
  return *value;
}

std::string Command::GetStringOr(const std::string& key,
                                 const std::string& fallback) const {
  const std::string* value = Find(key);
  return value == nullptr ? fallback : *value;
}

namespace {

Result<uint64_t> ParseUint(const std::string& verb, const std::string& key,
                           const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument(verb + ": empty integer for " + key);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || text[0] == '-') {
    return Status::InvalidArgument(verb + ": bad integer " + key + "=" + text);
  }
  return static_cast<uint64_t>(parsed);
}

}  // namespace

Result<uint64_t> Command::GetUint(const std::string& key) const {
  std::string text;
  RRR_ASSIGN_OR_RETURN(text, GetString(key));
  return ParseUint(verb, key, text);
}

Result<uint64_t> Command::GetUintOr(const std::string& key,
                                    uint64_t fallback) const {
  const std::string* value = Find(key);
  if (value == nullptr) return fallback;
  return ParseUint(verb, key, *value);
}

Result<Command> ParseCommand(const std::string& line) {
  Command cmd;
  std::istringstream in(line);
  std::string token;
  if (!(in >> token)) return Status::InvalidArgument("empty command line");
  for (char& c : token) {
    if (!std::isalpha(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("bad verb: " + token);
    }
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  cmd.verb = std::move(token);
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      return Status::InvalidArgument(cmd.verb + ": bad argument " + token +
                                     " (want key=value)");
    }
    cmd.args.emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }
  return cmd;
}

std::string FormatOk(
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string line = "OK";
  for (const auto& kv : fields) {
    line += " ";
    line += kv.first;
    line += "=";
    line += kv.second;
  }
  return line;
}

std::string FormatErr(const Status& status) {
  std::string line = "ERR code=";
  line += WireCode(status.code());
  line += " msg=";
  line += status.message();
  return line;
}

std::string FormatBusy(const std::string& detail) {
  return "ERR code=busy msg=" + detail;
}

std::string_view WireCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "internal";
}

std::string JoinIds(const std::vector<int32_t>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(ids[i]);
  }
  return out;
}

namespace {

/// Splits on commas; empty input yields an empty list.
std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size() && !text.empty()) {
    const size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

}  // namespace

Result<std::vector<int32_t>> ParseIdList(const std::string& text) {
  std::vector<int32_t> ids;
  for (const std::string& part : SplitCommas(text)) {
    errno = 0;
    char* end = nullptr;
    const long parsed = std::strtol(part.c_str(), &end, 10);
    if (part.empty() || errno != 0 || end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad id list element: " + part);
    }
    ids.push_back(static_cast<int32_t>(parsed));
  }
  return ids;
}

Result<std::vector<double>> ParseDoubleList(const std::string& text) {
  std::vector<double> values;
  for (const std::string& part : SplitCommas(text)) {
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(part.c_str(), &end);
    if (part.empty() || errno != 0 || end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad double list element: " + part);
    }
    values.push_back(parsed);
  }
  return values;
}

}  // namespace service
}  // namespace rrr
