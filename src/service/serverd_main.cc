// rrr_serverd: the RRR query daemon. Binds a loopback TCP port, serves the
// line protocol (service/protocol.h) until SIGINT/SIGTERM, then shuts down
// gracefully (drains admitted queries, joins every thread).
//
// Usage:
//   rrr_serverd [--port=N] [--workers=N] [--queue-depth=N] [--loaders=N]
//               [--budget-mb=N]
//
// --port=0 (default) binds an ephemeral port; the bound port is printed as
// "listening port=N" on stdout either way, so wrappers can scrape it.
// --budget-mb caps evictable artifact bytes across datasets (0 = no cap).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/logging.h"
#include "service/server.h"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int /*signum*/) { g_stop_requested = 1; }

bool ParseSizeFlag(const char* arg, const char* name, size_t* out) {
  const size_t name_len = std::strlen(name);
  if (std::strncmp(arg, name, name_len) != 0 || arg[name_len] != '=') {
    return false;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(arg + name_len + 1, &end, 10);
  if (end == arg + name_len + 1 || *end != '\0') {
    std::fprintf(stderr, "rrr_serverd: bad value for %s: %s\n", name, arg);
    std::exit(2);
  }
  *out = static_cast<size_t>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  rrr::service::RrrServer::Options options;
  size_t port = 0;
  size_t budget_mb = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseSizeFlag(arg, "--port", &port) ||
        ParseSizeFlag(arg, "--workers", &options.workers) ||
        ParseSizeFlag(arg, "--queue-depth", &options.queue_depth) ||
        ParseSizeFlag(arg, "--loaders", &options.loader_threads) ||
        ParseSizeFlag(arg, "--budget-mb", &budget_mb)) {
      continue;
    }
    std::fprintf(stderr, "rrr_serverd: unknown flag: %s\n", arg);
    return 2;
  }
  if (port > 65535) {
    std::fprintf(stderr, "rrr_serverd: --port out of range\n");
    return 2;
  }
  options.port = static_cast<uint16_t>(port);
  options.artifact_budget_bytes = budget_mb * 1024 * 1024;

  // A peer that vanishes mid-reply must surface as EPIPE from send() (the
  // write loop treats it as a broken connection), not kill the daemon.
  // MSG_NOSIGNAL in WriteAll covers reply writes; this covers every other
  // descriptor the process ever writes.
  std::signal(SIGPIPE, SIG_IGN);

  rrr::service::RrrServer server(options);
  const rrr::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "rrr_serverd: %s\n", started.ToString().c_str());
    return 1;
  }
  // Printed (and flushed) for wrappers that need the ephemeral port.
  std::printf("listening port=%u\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  RRR_LOG(INFO) << "rrr_serverd: stop signal received, shutting down";
  server.Stop();
  return 0;
}
