#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <sstream>
#include <thread>

#include "common/random.h"

namespace rrr {
namespace service {

bool IsRetryableCode(const std::string& code) {
  return code == "busy" || code == "io_error" || code == "unavailable";
}

const std::string* Reply::Find(const std::string& key) const {
  const std::string* found = nullptr;
  for (const auto& field : fields) {
    if (field.first == key) found = &field.second;
  }
  return found;
}

LineClient::~LineClient() { Close(); }

Status LineClient::Connect(const std::string& host, uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("connect failed to " + host + ":" +
                           std::to_string(port));
  }
  fd_ = fd;
  buffer_.clear();
  host_ = host;
  port_ = port;
  return Status::OK();
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status LineClient::SendLine(const std::string& line) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  const std::string framed = line + "\n";
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t wrote = ::send(fd_, framed.data() + sent,
                                 framed.size() - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("send failed");
    }
    sent += static_cast<size_t>(wrote);
  }
  return Status::OK();
}

Result<std::string> LineClient::ReadLine() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got == 0) return Status::IoError("connection closed by server");
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("recv failed");
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }
}

Result<Reply> LineClient::Request(const std::string& line) {
  Status sent = SendLine(line);
  if (!sent.ok()) return sent;
  Result<std::string> raw = ReadLine();
  if (!raw.ok()) return raw.status();
  return ParseReply(raw.value());
}

Result<Reply> LineClient::RequestWithRetry(const std::string& line,
                                           const RetryPolicy& policy,
                                           size_t* retries) {
  Rng jitter(policy.jitter_seed);
  const size_t max_attempts = std::max<size_t>(1, policy.max_attempts);
  Result<Reply> last = Status::FailedPrecondition("not connected");
  for (size_t attempt = 1;; ++attempt) {
    // A transport fault leaves the stream desynced (a half-written request
    // or half-read reply), so retries only ever run on a fresh connection.
    if (!connected() && !host_.empty()) {
      const Status reconnected = Connect(host_, port_);
      if (!reconnected.ok()) last = reconnected;
    }
    if (connected()) {
      last = Request(line);
      if (last.ok() &&
          (last.value().ok || !IsRetryableCode(last.value().code))) {
        return last;
      }
      if (!last.ok()) Close();
    }
    if (attempt >= max_attempts) return last;
    if (retries != nullptr) ++*retries;
    uint64_t backoff_ms =
        std::min(policy.max_backoff_ms,
                 policy.initial_backoff_ms << std::min<size_t>(attempt - 1, 20));
    if (backoff_ms > 0) {
      // Jitter down to [backoff/2, backoff] so synchronized clients do not
      // re-dogpile an overloaded server on the same tick.
      backoff_ms -= static_cast<uint64_t>(jitter.Uniform() *
                                          static_cast<double>(backoff_ms / 2));
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
  }
}

Result<std::map<std::string, std::string>> LineClient::RequestStats() {
  Status sent = SendLine("STATS");
  if (!sent.ok()) return sent;
  std::map<std::string, std::string> stats;
  for (;;) {
    Result<std::string> raw = ReadLine();
    if (!raw.ok()) return raw.status();
    const std::string& line = raw.value();
    if (line == "END") return stats;
    const size_t space = line.find(' ');
    if (space == std::string::npos) {
      return Status::IoError("malformed STATS line: " + line);
    }
    stats[line.substr(0, space)] = line.substr(space + 1);
  }
}

Result<Reply> ParseReply(const std::string& line) {
  Reply reply;
  std::istringstream in(line);
  std::string leader;
  in >> leader;
  if (leader == "OK") {
    reply.ok = true;
    std::string token;
    while (in >> token) {
      const size_t eq = token.find('=');
      if (eq == std::string::npos) {
        return Status::IoError("malformed OK field: " + token);
      }
      reply.fields.emplace_back(token.substr(0, eq), token.substr(eq + 1));
    }
    return reply;
  }
  if (leader == "ERR") {
    reply.ok = false;
    std::string token;
    if (in >> token && token.rfind("code=", 0) == 0) {
      reply.code = token.substr(5);
    } else {
      return Status::IoError("ERR reply missing code=: " + line);
    }
    // msg= is last and may contain spaces: take the raw remainder.
    const size_t msg_at = line.find(" msg=");
    if (msg_at != std::string::npos) reply.msg = line.substr(msg_at + 5);
    return reply;
  }
  return Status::IoError("unrecognized reply leader: " + line);
}

}  // namespace service
}  // namespace rrr
