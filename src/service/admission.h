#ifndef RRR_SERVICE_ADMISSION_H_
#define RRR_SERVICE_ADMISSION_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace rrr {
namespace service {

/// \brief Bounded query-dispatch pool: the server's admission-control
/// layer. A fixed worker set drains a FIFO whose depth is capped; once
/// `queue_depth` jobs are waiting, TrySubmit rejects with
/// ResourceExhausted (surfaced on the wire as the typed `busy` code)
/// instead of queuing unboundedly.
///
/// Deliberately separate from common/parallel.h's ThreadPool: that pool
/// is an unbounded compute fan-out helper, while admission control needs
/// exact queued/active accounting and rejection semantics. Jobs carry
/// their own cancellation/deadline (the server builds an ExecContext per
/// query); the queue never preempts a running job.
class AdmissionQueue {
 public:
  struct Options {
    size_t workers = 4;
    /// Max jobs waiting (excluding the ones running). 0 means every
    /// submission must find an idle worker or be rejected.
    size_t queue_depth = 16;
  };

  struct Stats {
    size_t accepted = 0;
    size_t rejected_busy = 0;
    size_t completed = 0;
    size_t queued = 0;  // waiting now
    size_t active = 0;  // running now
  };

  explicit AdmissionQueue(const Options& options);

  /// Stops accepting, drains every already-accepted job, joins workers.
  ~AdmissionQueue();

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits `job` unless the wait queue is full (ResourceExhausted) or the
  /// queue is shutting down (Cancelled). An admitted job ALWAYS runs —
  /// shutdown drains the queue — so submitters may block on its
  /// completion signal unconditionally.
  Status TrySubmit(std::function<void()> job);

  Stats GetStats() const;

 private:
  void WorkerLoop();

  Options options_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ RRR_GUARDED_BY(mu_);
  bool shutdown_ RRR_GUARDED_BY(mu_) = false;
  size_t active_ RRR_GUARDED_BY(mu_) = 0;
  size_t accepted_ RRR_GUARDED_BY(mu_) = 0;
  size_t rejected_busy_ RRR_GUARDED_BY(mu_) = 0;
  size_t completed_ RRR_GUARDED_BY(mu_) = 0;
  std::vector<std::thread> workers_;  // set in ctor, joined in dtor
};

}  // namespace service
}  // namespace rrr

#endif  // RRR_SERVICE_ADMISSION_H_
