#include "service/admission.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"

namespace rrr {
namespace service {

AdmissionQueue::AdmissionQueue(const Options& options) : options_(options) {
  const size_t workers = std::max<size_t>(1, options.workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AdmissionQueue::~AdmissionQueue() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    cv_.NotifyAll();
  }
  for (std::thread& worker : workers_) worker.join();
}

Status AdmissionQueue::TrySubmit(std::function<void()> job) {
  // Injected as ResourceExhausted so the server maps it to the same typed
  // `busy` the real queue-full path produces (and clients retry it).
  RRR_FAILPOINT("service.admission.submit");
  MutexLock lock(mu_);
  if (shutdown_) return Status::Cancelled("server shutting down");
  if (queue_.size() >= options_.queue_depth &&
      active_ >= workers_.size()) {
    ++rejected_busy_;
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(queue_.size()) +
        " queued, " + std::to_string(active_) + " active)");
  }
  queue_.push_back(std::move(job));
  ++accepted_;
  cv_.NotifyOne();
  return Status::OK();
}

void AdmissionQueue::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !shutdown_) cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    MutexLock lock(mu_);
    --active_;
    ++completed_;
  }
}

AdmissionQueue::Stats AdmissionQueue::GetStats() const {
  MutexLock lock(mu_);
  Stats stats;
  stats.accepted = accepted_;
  stats.rejected_busy = rejected_busy_;
  stats.completed = completed_;
  stats.queued = queue_.size();
  stats.active = active_;
  return stats;
}

}  // namespace service
}  // namespace rrr
