#ifndef RRR_SERVICE_CLIENT_H_
#define RRR_SERVICE_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rrr {
namespace service {

/// A parsed single-line response. `ok` mirrors the OK/ERR leader; ERR
/// responses carry `code` (wire snake_case) and `msg`.
struct Reply {
  bool ok = false;
  std::string code;  // ERR only
  std::string msg;   // ERR only
  std::vector<std::pair<std::string, std::string>> fields;  // OK only

  /// The value for `key` among the OK fields, or null when absent.
  const std::string* Find(const std::string& key) const;
};

/// \brief Retry discipline for LineClient::RequestWithRetry: capped
/// exponential backoff with seeded jitter, applied ONLY to typed-retryable
/// failures — the server's admission `busy` rejection and transport-level
/// I/O faults (broken/refused connection; the client reconnects first).
/// Semantic rejections (`invalid_argument`, `not_found`, ...) and spent
/// budgets (`deadline_exceeded`, `cancelled`) are never retried: repeating
/// them cannot succeed, and a deadline query's budget is already gone.
struct RetryPolicy {
  /// Total attempts including the first; 1 = no retry.
  size_t max_attempts = 4;
  /// Backoff before retry r (1-based): min(initial << (r - 1), max),
  /// jittered down to a uniform draw in [backoff/2, backoff].
  uint64_t initial_backoff_ms = 10;
  uint64_t max_backoff_ms = 500;
  /// Jitter rng seed — schedules replay identically for the same seed.
  uint64_t jitter_seed = 1;
};

/// True for wire error codes RequestWithRetry treats as transient
/// ("busy", "io_error", "unavailable").
bool IsRetryableCode(const std::string& code);

/// \brief Minimal blocking client for the rrr_serverd line protocol —
/// shared by the test suites and rrr_loadgen. One TCP connection, one
/// outstanding request at a time.
class LineClient {
 public:
  LineClient() = default;
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Connects to host:port (host is a dotted quad, e.g. "127.0.0.1").
  Status Connect(const std::string& host, uint16_t port);

  /// Severs the connection (safe to call repeatedly). A server-side query
  /// in flight on this connection observes the disconnect and cancels.
  void Close();

  bool connected() const { return fd_ >= 0; }

  /// Sends one raw request line (newline appended here).
  Status SendLine(const std::string& line);

  /// Reads one response line (newline stripped).
  Result<std::string> ReadLine();

  /// SendLine + ReadLine + parse. IoError on transport failure; protocol
  /// ERRs come back as an ok() Result whose Reply has ok=false.
  Result<Reply> Request(const std::string& line);

  /// Request with the retry discipline of `policy`: a `busy` reply or a
  /// transport fault backs off (capped exponential + seeded jitter) and
  /// retries — reconnecting to the last Connect target after a transport
  /// fault; every other reply returns immediately. Returns the final
  /// attempt's outcome. `retries`, when non-null, is incremented once per
  /// retry actually performed (loadgen's fault-phase metric).
  Result<Reply> RequestWithRetry(const std::string& line,
                                 const RetryPolicy& policy,
                                 size_t* retries = nullptr);

  /// Sends STATS and reads `key value` lines until END into a map.
  Result<std::map<std::string, std::string>> RequestStats();

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
  std::string host_;    // last Connect target, for retry reconnects
  uint16_t port_ = 0;
};

/// Parses one response line into a Reply (see protocol.h grammar).
Result<Reply> ParseReply(const std::string& line);

}  // namespace service
}  // namespace rrr

#endif  // RRR_SERVICE_CLIENT_H_
