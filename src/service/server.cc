#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>
#include <utility>

#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/solver.h"
#include "service/protocol.h"

namespace rrr {
namespace service {

namespace {

/// Completion slot a connection thread waits on while its query runs on
/// the admission pool.
struct JobState {
  Mutex mu;
  CondVar cv;
  bool done RRR_GUARDED_BY(mu) = false;
  std::string reply RRR_GUARDED_BY(mu);
};

/// Buffered newline-delimited reader over a connected socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next line without its newline; IoError on EOF or socket error.
  Result<std::string> ReadLine() {
    for (;;) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        // Injected only once a complete request arrived: an armed fault
        // hits the connection actually carrying traffic, never a peer
        // parked in recv() (a `once` would otherwise land on whichever
        // idle connection re-entered its read loop first).
        RRR_FAILPOINT("service.socket.read");
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return line;
      }
      char chunk[4096];
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got == 0) return Status::IoError("connection closed");
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("recv failed");
      }
      buffer_.append(chunk, static_cast<size_t>(got));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

/// Writes the whole buffer; false on a broken connection.
bool WriteAll(int fd, const std::string& data) {
  // Folded to the errno-style contract: an injected fault reads as the
  // peer breaking the connection mid-write.
  if (!RRR_FAILPOINT_STATUS("service.socket.write").ok()) return false;
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t wrote =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(wrote);
  }
  return true;
}

/// True when the peer closed or broke the connection. A non-blocking peek:
/// pending request bytes (a pipelining client) read as "still connected".
bool ClientDisconnected(int fd) {
  char probe;
  const ssize_t got = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  if (got > 0) return false;
  if (got == 0) return true;  // orderly shutdown
  return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
}

bool IsQueryVerb(const std::string& verb) {
  return verb == "SOLVE" || verb == "DUAL" || verb == "EVAL" ||
         verb == "SLEEP";
}

/// Spaces break the key=value grammar; error text goes underscore-joined.
std::string Sanitize(std::string text) {
  for (char& c : text) {
    if (c == ' ' || c == '\n' || c == '\t') c = '_';
  }
  return text;
}

std::string FormatBool(bool value) { return value ? "1" : "0"; }

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds);
  return buf;
}

}  // namespace

RrrServer::RrrServer(const Options& options)
    : options_(options),
      registry_(DatasetRegistry::Options{
          options.loader_threads, options.artifact_budget_bytes}),
      admission_(AdmissionQueue::Options{options.workers,
                                         options.queue_depth}) {}

RrrServer::~RrrServer() { Stop(); }

Status RrrServer::Start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Status::IoError("bind failed on port " +
                           std::to_string(options_.port));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::IoError("listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return Status::IoError("getsockname failed");
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  RRR_LOG(INFO) << "rrr_serverd listening on 127.0.0.1:" << port_;
  return Status::OK();
}

void RrrServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // Second caller still joins below only from the destructor path;
    // threads are joined exactly once because join() happens before the
    // first Stop returns.
  }
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  {
    // Wake connection threads blocked in recv; their in-flight queries
    // observe the dead socket in the wait loop and cancel.
    MutexLock lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Re-sweep: a connection the accept loop registered AFTER the sweep
    // above raced past it (accept returned before stopping_ was set, the
    // insert landed after the sweep). With the accept thread joined the
    // set is final, so this pass catches the stragglers — otherwise the
    // join below waits forever on a thread parked in recv.
    MutexLock lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    MutexLock lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& thread : threads) thread.join();
}

void RrrServer::AcceptLoop() {
  for (;;) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0 || stopping_.load(std::memory_order_acquire)) return;
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int cfd =
        ::accept(lfd, reinterpret_cast<sockaddr*>(&peer), &len);
    if (cfd < 0) {
      if (errno == EINTR && !stopping_.load(std::memory_order_acquire)) {
        continue;
      }
      return;  // listener shut down (Stop) or fatally broken
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(cfd);
      return;
    }
    // An injected accept fault drops this one connection (as a flaky NIC
    // would) and keeps the loop serving — never kills the listener.
    if (!RRR_FAILPOINT_STATUS("service.socket.accept").ok()) {
      ::close(cfd);
      continue;
    }
    {
      MutexLock lock(stats_mu_);
      ++counters_.connections_total;
    }
    MutexLock lock(conn_mu_);
    conn_fds_.insert(cfd);
    conn_threads_.emplace_back([this, cfd] { ServeConnection(cfd); });
  }
}

void RrrServer::ServeConnection(int fd) {
  LineReader reader(fd);
  bool quit = false;
  while (!quit && !stopping_.load(std::memory_order_acquire)) {
    Result<std::string> line = reader.ReadLine();
    if (!line.ok()) break;  // client went away
    if (line.value().empty()) continue;
    Result<Command> cmd = ParseCommand(line.value());
    std::string reply;
    if (!cmd.ok()) {
      MutexLock lock(stats_mu_);
      ++counters_.errors;
      reply = FormatErr(cmd.status());
    } else if (IsQueryVerb(cmd.value().verb)) {
      reply = DispatchQuery(cmd.value(), fd);
    } else {
      reply = HandleControl(cmd.value(), &quit);
    }
    if (!WriteAll(fd, reply + "\n")) break;
  }
  {
    // Deregister BEFORE close: once closed, the kernel may hand this fd
    // number to a concurrent accept, and erasing afterwards would strip
    // the NEW connection's registration — leaving it invisible to Stop's
    // shutdown sweep and its thread unjoinable.
    MutexLock lock(conn_mu_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
}

std::string RrrServer::HandleControl(const Command& cmd, bool* quit) {
  if (cmd.verb == "PING") return FormatOk({});
  if (cmd.verb == "QUIT") {
    *quit = true;
    return FormatOk({});
  }
  if (cmd.verb == "STATS") return RenderStats();
  if (cmd.verb == "FAILPOINT") return HandleFailpoint(cmd);
  if (cmd.verb == "REGISTER") {
    Result<std::string> name = cmd.GetString("name");
    if (!name.ok()) return FormatErr(name.status());
    Result<DatasetSpec> spec = DatasetSpec::FromCommand(cmd);
    if (!spec.ok()) return FormatErr(spec.status());
    const Status registered =
        registry_.Register(name.value(), std::move(spec).value());
    if (!registered.ok()) return FormatErr(registered);
    return FormatOk({{"name", name.value()}, {"state", "LOADING"}});
  }
  if (cmd.verb == "STATUS") {
    Result<std::string> name = cmd.GetString("name");
    if (!name.ok()) return FormatErr(name.status());
    Result<DatasetRegistry::EntryReport> report =
        registry_.Report(name.value());
    if (!report.ok()) return FormatErr(report.status());
    std::vector<std::pair<std::string, std::string>> fields;
    fields.emplace_back("state", DatasetStateName(report.value().state));
    if (report.value().state == DatasetState::kReady) {
      fields.emplace_back("version", report.value().version.ToString());
      fields.emplace_back("rows", std::to_string(report.value().rows));
      fields.emplace_back("dims", std::to_string(report.value().dims));
      fields.emplace_back("dynamic", FormatBool(report.value().dynamic));
    }
    if (report.value().state == DatasetState::kFailed) {
      fields.emplace_back("error", Sanitize(report.value().error));
    }
    return FormatOk(fields);
  }
  if (cmd.verb == "APPEND") {
    Result<std::string> name = cmd.GetString("name");
    if (!name.ok()) return FormatErr(name.status());
    std::vector<std::vector<double>> rows;
    if (const std::string* row = cmd.Find("row")) {
      Result<std::vector<double>> parsed = ParseDoubleList(*row);
      if (!parsed.ok()) return FormatErr(parsed.status());
      rows.push_back(std::move(parsed).value());
    } else if (const std::string* batch = cmd.Find("rows")) {
      // Semicolon-separated rows of comma-separated doubles.
      size_t start = 0;
      const std::string& text = *batch;
      while (start <= text.size()) {
        const size_t semi = text.find(';', start);
        const std::string part =
            semi == std::string::npos ? text.substr(start)
                                      : text.substr(start, semi - start);
        Result<std::vector<double>> parsed = ParseDoubleList(part);
        if (!parsed.ok()) return FormatErr(parsed.status());
        rows.push_back(std::move(parsed).value());
        if (semi == std::string::npos) break;
        start = semi + 1;
      }
    } else {
      return FormatErr(
          Status::InvalidArgument("APPEND: row= or rows= required"));
    }
    Result<DatasetVersion> version = registry_.Append(name.value(), rows);
    if (!version.ok()) return FormatErr(version.status());
    {
      MutexLock lock(stats_mu_);
      counters_.appended_rows += rows.size();
    }
    return FormatOk({{"version", version.value().ToString()},
                     {"appended", std::to_string(rows.size())}});
  }
  if (cmd.verb == "DELETE") {
    Result<std::string> name = cmd.GetString("name");
    if (!name.ok()) return FormatErr(name.status());
    Result<uint64_t> id = cmd.GetUint("id");
    if (!id.ok()) return FormatErr(id.status());
    Result<DatasetVersion> version = registry_.Delete(
        name.value(), static_cast<int32_t>(id.value()));
    if (!version.ok()) return FormatErr(version.status());
    return FormatOk({{"version", version.value().ToString()}});
  }
  if (cmd.verb == "UNREGISTER") {
    Result<std::string> name = cmd.GetString("name");
    if (!name.ok()) return FormatErr(name.status());
    const Status dropped = registry_.Unregister(name.value());
    if (!dropped.ok()) return FormatErr(dropped);
    return FormatOk({});
  }
  MutexLock lock(stats_mu_);
  ++counters_.errors;
  return FormatErr(Status::InvalidArgument("unknown verb: " + cmd.verb));
}

std::string RrrServer::HandleFailpoint(const Command& cmd) {
  FailpointRegistry& failpoints = FailpointRegistry::Instance();
  Result<uint64_t> clear = cmd.GetUintOr("clear", 0);
  if (!clear.ok()) return FormatErr(clear.status());
  if (clear.value() != 0) {
    failpoints.DisarmAll();
    return FormatOk({{"cleared", "1"}});
  }
  Result<uint64_t> list = cmd.GetUintOr("list", 0);
  if (!list.ok()) return FormatErr(list.status());
  if (list.value() != 0) {
    // One field per site: NAME=policy:evaluations:injections (the value
    // grammar forbids spaces; the canonical spec strings never have any).
    const std::vector<FailpointRegistry::SiteReport> sites =
        failpoints.List();
    std::vector<std::pair<std::string, std::string>> fields;
    fields.emplace_back("count", std::to_string(sites.size()));
    for (const FailpointRegistry::SiteReport& site : sites) {
      fields.emplace_back(site.site,
                          site.policy + ":" +
                              std::to_string(site.evaluations) + ":" +
                              std::to_string(site.injections));
    }
    return FormatOk(fields);
  }
  Result<std::string> site = cmd.GetString("site");
  if (!site.ok()) return FormatErr(site.status());
  Result<std::string> spec = cmd.GetString("spec");
  if (!spec.ok()) return FormatErr(spec.status());
  const Status armed = failpoints.Arm(site.value(), spec.value());
  if (!armed.ok()) return FormatErr(armed);
  return FormatOk({{"site", site.value()}, {"spec", spec.value()}});
}

std::string RrrServer::DispatchQuery(const Command& cmd, int fd) {
  Result<uint64_t> deadline_ms = cmd.GetUintOr("deadline_ms", 0);
  if (!deadline_ms.ok()) return FormatErr(deadline_ms.status());
  CancellationSource cancel;
  ExecContext ctx;
  ctx.cancel = cancel.token();
  if (deadline_ms.value() != 0) {
    // The deadline starts at ADMISSION and covers queue wait: an
    // overloaded server times queries out instead of running stale work.
    ctx.deadline =
        Deadline::After(static_cast<double>(deadline_ms.value()) / 1000.0);
  }

  // Resolve the dataset NOW — before queueing — so the query is pinned to
  // the version current at admission (APPEND/DELETE published while it
  // waits never tear it), and bad requests fail fast without a queue slot.
  // The admission stopwatch feeds the latency histogram: like the
  // deadline, it starts here and covers queue wait.
  const Stopwatch admitted_at;
  std::function<std::string()> work;
  if (cmd.verb == "SLEEP") {
    Result<uint64_t> ms = cmd.GetUint("ms");
    if (!ms.ok()) return FormatErr(ms.status());
    const uint64_t total_ms = ms.value();
    work = [this, total_ms, ctx, admitted_at]() -> std::string {
      const auto start = std::chrono::steady_clock::now();
      for (;;) {
        const Status preempted = ctx.CheckPreempted();
        if (!preempted.ok()) {
          QueryFacts facts;
          facts.latency_seconds = admitted_at.ElapsedSeconds();
          return FinishQuery(preempted, {}, facts);
        }
        const auto elapsed = std::chrono::duration_cast<
            std::chrono::milliseconds>(std::chrono::steady_clock::now() -
                                       start);
        if (elapsed.count() >= static_cast<int64_t>(total_ms)) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      QueryFacts facts;
      facts.latency_seconds = admitted_at.ElapsedSeconds();
      return FinishQuery(Status::OK(),
                         {{"slept_ms", std::to_string(total_ms)}}, facts);
    };
  } else {
    Result<std::string> name = cmd.GetString("name");
    if (!name.ok()) return FormatErr(name.status());
    Result<DatasetRegistry::Acquired> acquired =
        registry_.Acquire(name.value());
    if (!acquired.ok()) return FormatErr(acquired.status());
    core::QueryOptions query;
    query.exec = ctx;
    query.snapshot = acquired.value().snapshot;
    Result<uint64_t> use_cache = cmd.GetUintOr("cache", 1);
    if (!use_cache.ok()) return FormatErr(use_cache.status());
    query.use_cache = use_cache.value() != 0;
    if (const std::string* algo = cmd.Find("algo")) {
      Result<core::Algorithm> parsed = core::ParseAlgorithm(*algo);
      if (!parsed.ok()) return FormatErr(parsed.status());
      query.algorithm = parsed.value();
    }
    std::shared_ptr<core::RrrEngine> engine = acquired.value().engine;

    if (cmd.verb == "SOLVE") {
      Result<uint64_t> k = cmd.GetUint("k");
      if (!k.ok()) return FormatErr(k.status());
      work = [this, engine, query, admitted_at, k = k.value()]() -> std::string {
        Result<core::QueryResult> result =
            engine->Solve(static_cast<size_t>(k), query);
        QueryFacts facts;
        facts.latency_seconds = admitted_at.ElapsedSeconds();
        if (!result.ok()) return FinishQuery(result.status(), {}, facts);
        const core::QueryResult& r = result.value();
        facts.memo_hit = r.diagnostics.result_from_cache;
        facts.degraded = r.diagnostics.degraded;
        // Memo hits carry the ORIGINAL run's scan counters; folding them
        // in again would double-count the same blocks.
        if (!facts.memo_hit) {
          facts.blocks_scanned = r.diagnostics.blocks_scanned;
          facts.blocks_skipped = r.diagnostics.blocks_skipped;
        }
        return FinishQuery(
            Status::OK(),
            {{"k", std::to_string(k)},
             {"version", r.diagnostics.dataset_version.ToString()},
             {"algorithm", core::AlgorithmName(r.diagnostics.algorithm_used)},
             {"cached", FormatBool(r.diagnostics.result_from_cache)},
             {"seconds", FormatSeconds(r.diagnostics.seconds)},
             {"size", std::to_string(r.representative.size())},
             {"ids", JoinIds(r.representative)},
             {"degraded", FormatBool(r.diagnostics.degraded)}},
            facts);
      };
    } else if (cmd.verb == "DUAL") {
      Result<uint64_t> max_size = cmd.GetUint("max_size");
      if (!max_size.ok()) return FormatErr(max_size.status());
      work = [this, engine, query, admitted_at,
              max_size = max_size.value()]() -> std::string {
        Result<core::DualResult> result =
            engine->SolveDual(static_cast<size_t>(max_size), query);
        QueryFacts facts;
        facts.latency_seconds = admitted_at.ElapsedSeconds();
        if (!result.ok()) return FinishQuery(result.status(), {}, facts);
        const core::DualResult& r = result.value();
        facts.degraded = r.degraded;
        facts.blocks_scanned = r.blocks_scanned;
        facts.blocks_skipped = r.blocks_skipped;
        return FinishQuery(
            Status::OK(),
            {{"k", std::to_string(r.k)},
             {"algorithm", core::AlgorithmName(r.algorithm_used)},
             {"seconds", FormatSeconds(r.seconds)},
             {"size", std::to_string(r.representative.size())},
             {"ids", JoinIds(r.representative)},
             {"degraded", FormatBool(r.degraded)}},
            facts);
      };
    } else {  // EVAL
      Result<std::string> ids_text = cmd.GetString("ids");
      if (!ids_text.ok()) return FormatErr(ids_text.status());
      Result<std::vector<int32_t>> ids = ParseIdList(ids_text.value());
      if (!ids.ok()) return FormatErr(ids.status());
      Result<uint64_t> k = cmd.GetUint("k");
      if (!k.ok()) return FormatErr(k.status());
      work = [this, engine, query, admitted_at, ids = std::move(ids).value(),
              k = k.value()]() -> std::string {
        Result<core::EvalReport> result =
            engine->Evaluate(ids, static_cast<size_t>(k), query);
        QueryFacts facts;
        facts.latency_seconds = admitted_at.ElapsedSeconds();
        if (!result.ok()) return FinishQuery(result.status(), {}, facts);
        const core::EvalReport& r = result.value();
        facts.degraded = r.diagnostics.degraded;
        facts.blocks_scanned = r.diagnostics.blocks_scanned;
        facts.blocks_skipped = r.diagnostics.blocks_skipped;
        return FinishQuery(
            Status::OK(),
            {{"rank_regret", std::to_string(r.rank_regret)},
             {"exact", FormatBool(r.exact)},
             {"within_k", FormatBool(r.within_k)},
             {"version", r.diagnostics.dataset_version.ToString()},
             {"degraded", FormatBool(r.diagnostics.degraded)}},
            facts);
      };
    }
  }

  auto state = std::make_shared<JobState>();
  const Status admitted = admission_.TrySubmit([state, work] {
    std::string reply = work();
    MutexLock lock(state->mu);
    state->reply = std::move(reply);
    state->done = true;
    state->cv.NotifyAll();
  });
  if (!admitted.ok()) {
    if (admitted.code() == StatusCode::kResourceExhausted) {
      return FormatBusy(Sanitize(admitted.message()));
    }
    return FormatErr(admitted);
  }

  // Wait for completion, watching the socket: a client that disconnects
  // mid-query cancels it (the worker observes the token at its next
  // preemption point; the admitted job always finishes, so this wait
  // always terminates).
  bool disconnect_cancelled = false;
  for (;;) {
    {
      MutexLock lock(state->mu);
      if (!state->done) {
        state->cv.WaitFor(state->mu, std::chrono::milliseconds(20));
      }
      if (state->done) return state->reply;
    }
    if (!disconnect_cancelled && ClientDisconnected(fd)) {
      cancel.RequestCancel();
      disconnect_cancelled = true;
      MutexLock lock(stats_mu_);
      ++counters_.disconnect_cancels;
    }
  }
}

std::string RrrServer::FinishQuery(
    const Status& status,
    const std::vector<std::pair<std::string, std::string>>& fields,
    const QueryFacts& facts) {
  // Bucket by first bound >= latency; past the last bound, overflow.
  size_t bucket = kLatencyBuckets - 1;
  for (size_t i = 0; i + 1 < kLatencyBuckets; ++i) {
    if (facts.latency_seconds <= kLatencyBoundsSeconds[i]) {
      bucket = i;
      break;
    }
  }
  {
    MutexLock lock(stats_mu_);
    ++counters_.queries_total;
    if (facts.memo_hit) ++counters_.memo_hits;
    if (facts.degraded) ++counters_.degraded_queries;
    counters_.blocks_scanned += facts.blocks_scanned;
    counters_.blocks_skipped += facts.blocks_skipped;
    ++counters_.latency_buckets[bucket];
    if (status.code() == StatusCode::kDeadlineExceeded) {
      ++counters_.deadline_exceeded;
    } else if (status.code() == StatusCode::kCancelled) {
      ++counters_.cancelled;
    } else if (!status.ok()) {
      ++counters_.errors;
    }
  }
  // Budget enforcement rides query completion: the one place artifact
  // bytes can have just grown.
  registry_.EnforceBudget();
  if (!status.ok()) return FormatErr(status);
  return FormatOk(fields);
}

std::string RrrServer::RenderStats() {
  Counters counters;
  {
    MutexLock lock(stats_mu_);
    counters = counters_;
  }
  const DatasetRegistry::Stats registry = registry_.GetStats();
  const AdmissionQueue::Stats admission = admission_.GetStats();
  size_t connections = 0;
  {
    MutexLock lock(conn_mu_);
    connections = conn_fds_.size();
  }
  std::string out;
  const auto add = [&out](const std::string& key, size_t value) {
    out += key;
    out += " ";
    out += std::to_string(value);
    out += "\n";
  };
  add("datasets", registry.datasets);
  add("datasets_ready", registry.ready);
  add("queries_total", counters.queries_total);
  add("memo_hits", counters.memo_hits);
  add("deadline_exceeded", counters.deadline_exceeded);
  add("cancelled", counters.cancelled);
  add("disconnect_cancels", counters.disconnect_cancels);
  add("errors", counters.errors);
  add("degraded_queries", counters.degraded_queries);
  add("blocks_scanned", counters.blocks_scanned);
  add("blocks_skipped", counters.blocks_skipped);
  // Latency histogram: one line per kLatencyBoundsSeconds bucket plus the
  // overflow; labels mirror the bounds (sum of all buckets ==
  // queries_total).
  static constexpr const char* kLatencyLabels[] = {
      "100us", "316us", "1ms", "3.2ms", "10ms", "32ms",
      "100ms", "316ms", "1s",  "3.2s",  "10s"};
  static_assert(sizeof(kLatencyLabels) / sizeof(kLatencyLabels[0]) + 1 ==
                    kLatencyBuckets,
                "latency labels must match the bucket bounds");
  for (size_t i = 0; i + 1 < kLatencyBuckets; ++i) {
    add(std::string("latency_le_") + kLatencyLabels[i],
        counters.latency_buckets[i]);
  }
  add("latency_gt_10s", counters.latency_buckets[kLatencyBuckets - 1]);
  add("appended_rows", counters.appended_rows);
  add("connections", connections);
  add("connections_total", counters.connections_total);
  add("queue_depth", admission.queued);
  add("active_queries", admission.active);
  add("accepted", admission.accepted);
  add("busy_rejections", admission.rejected_busy);
  add("completed", admission.completed);
  add("cache_bytes", registry.cache_bytes);
  add("evictions", registry.evictions);
  add("evicted_bytes", registry.evicted_bytes);
  for (const DatasetRegistry::Stats::PerDataset& per : registry.per_dataset) {
    out += "dataset." + per.name + ".state ";
    out += DatasetStateName(per.state);
    out += "\n";
    add("dataset." + per.name + ".bytes", per.bytes);
  }
  out += "END";
  return out;
}

}  // namespace service
}  // namespace rrr
