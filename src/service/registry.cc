#include "service/registry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/failpoint.h"
#include "common/logging.h"
#include "data/csv.h"
#include "data/generators.h"

namespace rrr {
namespace service {

const char* DatasetStateName(DatasetState state) {
  switch (state) {
    case DatasetState::kLoading:
      return "LOADING";
    case DatasetState::kReady:
      return "READY";
    case DatasetState::kFailed:
      return "FAILED";
  }
  return "?";
}

Result<DatasetSpec> DatasetSpec::FromCommand(const Command& cmd) {
  DatasetSpec spec;
  const std::string* csv = cmd.Find("csv");
  const std::string* gen = cmd.Find("gen");
  if ((csv == nullptr) == (gen == nullptr)) {
    return Status::InvalidArgument(
        "REGISTER: exactly one of csv= / gen= required");
  }
  if (csv != nullptr) {
    spec.csv_path = *csv;
  } else {
    spec.generator = *gen;
    uint64_t n;
    RRR_ASSIGN_OR_RETURN(n, cmd.GetUint("n"));
    spec.n = static_cast<size_t>(n);
    uint64_t d;
    RRR_ASSIGN_OR_RETURN(d, cmd.GetUintOr("d", 2));
    spec.d = static_cast<size_t>(d);
    RRR_ASSIGN_OR_RETURN(spec.seed, cmd.GetUintOr("seed", 1));
  }
  uint64_t dynamic;
  RRR_ASSIGN_OR_RETURN(dynamic, cmd.GetUintOr("dynamic", 0));
  spec.dynamic = dynamic != 0;
  return spec;
}

DatasetRegistry::DatasetRegistry(const Options& options)
    : options_(options),
      loader_pool_(std::max<size_t>(1, options.loader_threads)) {}

DatasetRegistry::~DatasetRegistry() {
  // Stops re-prepare backoff loops from sleeping through further attempts;
  // the loader pool (destroyed first, declared last) then drains normally.
  draining_.store(true, std::memory_order_relaxed);
}

Result<data::Dataset> DatasetRegistry::Materialize(const DatasetSpec& spec) {
  if (!spec.csv_path.empty()) return data::ReadCsv(spec.csv_path);
  if (spec.n == 0) return Status::InvalidArgument("generator needs n >= 1");
  if (spec.generator == "uniform") {
    return data::GenerateUniform(spec.n, spec.d, spec.seed);
  }
  if (spec.generator == "correlated") {
    return data::GenerateCorrelated(spec.n, spec.d, spec.seed);
  }
  if (spec.generator == "anticorrelated") {
    return data::GenerateAnticorrelated(spec.n, spec.d, spec.seed);
  }
  if (spec.generator == "clustered") {
    return data::GenerateClustered(spec.n, spec.d, spec.seed);
  }
  if (spec.generator == "dot") return data::GenerateDotLike(spec.n, spec.seed);
  if (spec.generator == "bn") return data::GenerateBnLike(spec.n, spec.seed);
  return Status::InvalidArgument("unknown generator: " + spec.generator);
}

Status DatasetRegistry::Register(const std::string& name, DatasetSpec spec) {
  if (name.empty() || name.find(' ') != std::string::npos ||
      name.find('.') != std::string::npos) {
    return Status::InvalidArgument(
        "dataset names must be non-empty, space-free, and dot-free");
  }
  auto entry = std::make_shared<Entry>();
  entry->dynamic_spec = spec.dynamic;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
      // A FAILED entry is a dead end (its bounded re-prepares are spent):
      // re-REGISTER replaces it so clients can recover without a separate
      // UNREGISTER round trip. LOADING/READY entries stay protected.
      if (it->second->state != DatasetState::kFailed) {
        return Status::InvalidArgument("dataset already registered: " + name);
      }
      it->second = entry;
    } else {
      entries_.emplace(name, entry);
    }
  }
  RRR_LOG(INFO) << "registry: accepted " << name << " ("
                << (spec.csv_path.empty() ? "gen=" + spec.generator
                                          : "csv=" + spec.csv_path)
                << (spec.dynamic ? ", dynamic" : "") << ")";
  loader_pool_.Submit([this, entry, spec = std::move(spec)]() {
    LoadEntry(entry, spec);
  });
  return Status::OK();
}

Status DatasetRegistry::PrepareEntry(const std::shared_ptr<Entry>& entry,
                                     const DatasetSpec& spec) {
  RRR_FAILPOINT("service.registry.prepare");
  Result<data::Dataset> dataset = Materialize(spec);
  std::shared_ptr<core::RrrEngine> engine;
  std::shared_ptr<core::DynamicDataset> dynamic;
  std::shared_ptr<const core::PreparedDataset> fixed;
  Status failure = Status::OK();
  if (!dataset.ok()) {
    failure = dataset.status();
  } else if (spec.dynamic) {
    Result<std::shared_ptr<core::DynamicDataset>> built =
        core::DynamicDataset::Create(std::move(dataset).value());
    if (built.ok()) {
      dynamic = std::move(built).value();
      Result<std::shared_ptr<core::RrrEngine>> bound =
          core::NewDynamicEngine(dynamic);
      if (bound.ok()) {
        engine = std::move(bound).value();
      } else {
        failure = bound.status();
        dynamic.reset();
      }
    } else {
      failure = built.status();
    }
  } else {
    Result<std::shared_ptr<const core::PreparedDataset>> prepared =
        core::PreparedDataset::Create(std::move(dataset).value());
    if (prepared.ok()) {
      fixed = std::move(prepared).value();
      Result<std::shared_ptr<core::RrrEngine>> built =
          core::RrrEngine::Create(fixed);
      if (built.ok()) {
        engine = std::move(built).value();
      } else {
        failure = built.status();
        fixed.reset();
      }
    } else {
      failure = prepared.status();
    }
  }
  if (!failure.ok()) return failure;
  MutexLock lock(mu_);
  entry->engine = std::move(engine);
  entry->dynamic = std::move(dynamic);
  entry->fixed = std::move(fixed);
  entry->state = DatasetState::kReady;
  return Status::OK();
}

void DatasetRegistry::LoadEntry(std::shared_ptr<Entry> entry,
                                DatasetSpec spec) {
  // Bounded automatic re-prepare: transient failures (flaky CSV reads,
  // injected faults) get max_prepare_attempts tries with doubling backoff,
  // all inside this one pool task so shutdown never races a resubmit.
  // Deterministic failures just burn the (small, capped) budget and land
  // in kFailed with the final error preserved for STATUS post-mortems.
  const size_t max_attempts = std::max<size_t>(1, options_.max_prepare_attempts);
  Status failure = Status::OK();
  for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    failure = PrepareEntry(entry, spec);
    if (failure.ok()) return;
    {
      MutexLock lock(mu_);
      entry->error = failure.ToString();
      entry->attempts = attempt;
    }
    if (attempt == max_attempts || draining_.load(std::memory_order_relaxed)) {
      break;
    }
    RRR_LOG(WARNING) << "registry: prepare attempt " << attempt << "/"
                     << max_attempts << " failed (" << failure.ToString()
                     << "); retrying";
    std::this_thread::sleep_for(std::chrono::milliseconds(
        options_.prepare_backoff_ms << (attempt - 1)));
    {
      // Abandon the retry if the entry was unregistered while we slept.
      MutexLock lock(mu_);
      bool reachable = false;
      for (const auto& kv : entries_) {
        if (kv.second == entry) {
          reachable = true;
          break;
        }
      }
      if (!reachable) return;
    }
  }
  MutexLock lock(mu_);
  entry->state = DatasetState::kFailed;
  RRR_LOG(WARNING) << "registry: load failed after " << entry->attempts
                   << " attempt(s): " << entry->error;
}

Result<DatasetRegistry::EntryReport> DatasetRegistry::Report(
    const std::string& name) const {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown dataset: " + name);
  }
  const Entry& entry = *it->second;
  EntryReport report;
  report.state = entry.state;
  report.error = entry.error;
  report.dynamic = entry.dynamic_spec;
  if (entry.state == DatasetState::kReady) {
    const std::shared_ptr<const core::PreparedDataset> snapshot =
        entry.dynamic != nullptr ? entry.dynamic->Snapshot() : entry.fixed;
    report.version = snapshot->version();
    report.rows = snapshot->size();
    report.dims = snapshot->dims();
  }
  return report;
}

Result<DatasetRegistry::Acquired> DatasetRegistry::Acquire(
    const std::string& name) {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown dataset: " + name);
  }
  Entry& entry = *it->second;
  if (entry.state == DatasetState::kLoading) {
    return Status::FailedPrecondition("dataset still loading: " + name);
  }
  if (entry.state == DatasetState::kFailed) {
    return Status::FailedPrecondition("dataset failed to load: " +
                                      entry.error);
  }
  entry.last_touch = ++touch_clock_;
  Acquired acquired;
  acquired.engine = entry.engine;
  acquired.snapshot =
      entry.dynamic != nullptr ? entry.dynamic->Snapshot() : entry.fixed;
  return acquired;
}

Result<DatasetVersion> DatasetRegistry::Append(
    const std::string& name, const std::vector<std::vector<double>>& rows) {
  std::shared_ptr<core::DynamicDataset> dynamic;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::NotFound("unknown dataset: " + name);
    }
    if (it->second->state != DatasetState::kReady) {
      return Status::FailedPrecondition("dataset not READY: " + name);
    }
    dynamic = it->second->dynamic;
  }
  if (dynamic == nullptr) {
    return Status::FailedPrecondition(
        "dataset is not dynamic (REGISTER with dynamic=1): " + name);
  }
  // Outside the registry lock: writers serialize inside DynamicDataset,
  // and the publish can do real work (incremental artifact maintenance).
  return dynamic->BatchAppend(rows);
}

Result<DatasetVersion> DatasetRegistry::Delete(const std::string& name,
                                               int32_t id) {
  std::shared_ptr<core::DynamicDataset> dynamic;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::NotFound("unknown dataset: " + name);
    }
    if (it->second->state != DatasetState::kReady) {
      return Status::FailedPrecondition("dataset not READY: " + name);
    }
    dynamic = it->second->dynamic;
  }
  if (dynamic == nullptr) {
    return Status::FailedPrecondition(
        "dataset is not dynamic (REGISTER with dynamic=1): " + name);
  }
  return dynamic->Delete(id);
}

Status DatasetRegistry::Unregister(const std::string& name) {
  MutexLock lock(mu_);
  if (entries_.erase(name) == 0) {
    return Status::NotFound("unknown dataset: " + name);
  }
  return Status::OK();
}

size_t DatasetRegistry::EnforceBudget() {
  if (options_.artifact_budget_bytes == 0) return 0;
  // Snapshot the READY entries under the lock, size them outside it (the
  // accounting walks cache-internal locks; keep the lock graph flat).
  struct Candidate {
    uint64_t last_touch;
    std::shared_ptr<Entry> entry;
    std::shared_ptr<const core::PreparedDataset> snapshot;
    size_t bytes = 0;
  };
  std::vector<Candidate> candidates;
  {
    MutexLock lock(mu_);
    for (const auto& kv : entries_) {
      if (kv.second->state != DatasetState::kReady) continue;
      Candidate c;
      c.last_touch = kv.second->last_touch;
      c.entry = kv.second;
      c.snapshot = kv.second->dynamic != nullptr
                       ? kv.second->dynamic->Snapshot()
                       : kv.second->fixed;
      candidates.push_back(std::move(c));
    }
  }
  size_t total = 0;
  for (Candidate& c : candidates) {
    c.bytes = c.snapshot->ApproxArtifactBytes().evictable() +
              c.entry->engine->ApproxMemoBytes();
    total += c.bytes;
  }
  if (total <= options_.artifact_budget_bytes) return 0;
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.last_touch < b.last_touch;
            });
  size_t evicted = 0;
  for (const Candidate& c : candidates) {
    if (total <= options_.artifact_budget_bytes) break;
    const size_t freed = c.snapshot->EvictSharedArtifacts() +
                         c.entry->engine->EvictMemos();
    if (freed == 0) continue;
    total -= std::min(freed, total);
    ++evicted;
    MutexLock lock(mu_);
    ++evictions_;
    evicted_bytes_ += freed;
  }
  if (evicted > 0) {
    RRR_LOG(INFO) << "registry: evicted artifacts of " << evicted
                  << " dataset(s); ~" << total << " evictable bytes remain";
  }
  return evicted;
}

DatasetRegistry::Stats DatasetRegistry::GetStats() const {
  // Entry fields are guarded by mu_: copy state and the sizing handles out
  // under the lock, then run the byte accounting (which takes the caches'
  // own locks) outside it.
  struct Sized {
    std::string name;
    DatasetState state;
    std::shared_ptr<const core::PreparedDataset> snapshot;
    std::shared_ptr<core::RrrEngine> engine;
  };
  std::vector<Sized> snapshot;
  Stats stats;
  {
    MutexLock lock(mu_);
    stats.datasets = entries_.size();
    stats.evictions = evictions_;
    stats.evicted_bytes = evicted_bytes_;
    for (const auto& kv : entries_) {
      Sized sized;
      sized.name = kv.first;
      sized.state = kv.second->state;
      if (sized.state == DatasetState::kReady) {
        sized.snapshot = kv.second->dynamic != nullptr
                             ? kv.second->dynamic->Snapshot()
                             : kv.second->fixed;
        sized.engine = kv.second->engine;
      }
      snapshot.push_back(std::move(sized));
    }
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const Sized& a, const Sized& b) { return a.name < b.name; });
  for (const Sized& sized : snapshot) {
    Stats::PerDataset per;
    per.name = sized.name;
    per.state = sized.state;
    if (sized.state == DatasetState::kReady) {
      ++stats.ready;
      per.bytes = sized.snapshot->ApproxArtifactBytes().evictable() +
                  sized.engine->ApproxMemoBytes();
    }
    stats.cache_bytes += per.bytes;
    stats.per_dataset.push_back(std::move(per));
  }
  return stats;
}

}  // namespace service
}  // namespace rrr
