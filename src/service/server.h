#ifndef RRR_SERVICE_SERVER_H_
#define RRR_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "service/admission.h"
#include "service/registry.h"

namespace rrr {
namespace service {

/// \brief rrr_serverd's long-lived core: a plain-TCP line-protocol server
/// (service/protocol.h) over the dataset registry and the bounded query
/// pool. Embeddable for tests; the binary is a thin main() around it.
///
/// \par Dispatch model
/// One thread per connection reads requests. Control verbs (REGISTER,
/// STATUS, APPEND, DELETE, UNREGISTER, STATS, PING, QUIT) execute inline —
/// they are cheap and must stay responsive under query load. Query verbs
/// (SOLVE, DUAL, EVAL, SLEEP) resolve their dataset snapshot at ADMISSION
/// time — pinning the version before the job waits in queue, so an APPEND
/// published while the query is queued or running never tears its result —
/// then run on the admission pool; the connection thread waits, polling
/// its socket so a client disconnect cancels the query's ExecContext.
/// Per-query deadlines (`deadline_ms`) start at admission and cover queue
/// wait; an expired deadline surfaces as ERR code=deadline_exceeded.
class RrrServer {
 public:
  struct Options {
    /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see port()).
    uint16_t port = 0;
    /// Query workers (concurrent SOLVE/DUAL/EVAL/SLEEP executions).
    size_t workers = 4;
    /// Bounded admission queue depth; past it, queries get ERR code=busy.
    size_t queue_depth = 16;
    /// Registry loader threads for background REGISTER prepares.
    size_t loader_threads = 2;
    /// Evictable artifact-byte budget across datasets; 0 = unlimited.
    size_t artifact_budget_bytes = 0;
  };

  explicit RrrServer(const Options& options);

  /// Stops and joins everything still running.
  ~RrrServer();

  RrrServer(const RrrServer&) = delete;
  RrrServer& operator=(const RrrServer&) = delete;

  /// Binds, listens, and starts the accept loop. IoError on bind failure.
  Status Start();

  /// Graceful shutdown: stop accepting, shut down client sockets (their
  /// in-flight queries observe the disconnect and cancel), drain the
  /// admission pool, join all threads. Idempotent.
  void Stop();

  /// The bound port (after Start; resolves ephemeral port 0 bindings).
  uint16_t port() const { return port_; }

  DatasetRegistry& registry() { return registry_; }

 private:
  /// Fixed log-spaced latency histogram bounds (seconds): half-decade
  /// steps from 100us to 10s, with one overflow bucket past the last
  /// bound — kLatencyBuckets counters total.
  static constexpr double kLatencyBoundsSeconds[] = {
      100e-6, 316e-6, 1e-3, 3.16e-3, 10e-3, 31.6e-3,
      100e-3, 316e-3, 1.0,  3.16,    10.0};
  static constexpr size_t kLatencyBuckets =
      sizeof(kLatencyBoundsSeconds) / sizeof(kLatencyBoundsSeconds[0]) + 1;

  /// One STATS-able counter block (guarded; workers and connection
  /// threads update it concurrently).
  struct Counters {
    size_t queries_total = 0;
    size_t memo_hits = 0;
    size_t deadline_exceeded = 0;
    size_t cancelled = 0;
    size_t disconnect_cancels = 0;
    size_t errors = 0;
    size_t appended_rows = 0;
    size_t connections_total = 0;
    /// Queries that succeeded on a degraded path (a shared-artifact build
    /// failed and the engine fell back to the legacy scan, bit-identically).
    size_t degraded_queries = 0;
    /// Block-max pruning totals over every finished query's compute
    /// (memo hits contribute nothing — their scans ran in the original
    /// query). See core::Diagnostics::blocks_scanned.
    uint64_t blocks_scanned = 0;
    uint64_t blocks_skipped = 0;
    /// Per-query admission-to-completion latency histogram; bucket i
    /// counts latencies <= kLatencyBoundsSeconds[i], the last bucket
    /// overflows. Every finished query (ok, error, cancelled) lands in
    /// exactly one bucket.
    size_t latency_buckets[kLatencyBuckets] = {};
  };

  /// What a finished query reports into the counters beyond its status.
  struct QueryFacts {
    bool memo_hit = false;
    bool degraded = false;
    /// Admission-to-completion seconds (queue wait included, like the
    /// deadline).
    double latency_seconds = 0.0;
    uint64_t blocks_scanned = 0;
    uint64_t blocks_skipped = 0;
  };

  void AcceptLoop();
  void ServeConnection(int fd);

  /// Inline control verbs; returns the response line.
  std::string HandleControl(const Command& cmd, bool* quit);

  /// The FAILPOINT admin verb: arms/disarms fault-injection sites on a
  /// live server (site=NAME spec=POLICY | site=NAME off | clear=1 |
  /// list=1). Test/chaos tooling only — an unarmed server pays nothing.
  std::string HandleFailpoint(const Command& cmd);

  /// Query verbs: admission-time snapshot resolution, bounded dispatch,
  /// disconnect-polling wait. Returns the response line.
  std::string DispatchQuery(const Command& cmd, int fd);

  /// Runs on the worker at query end: folds `status` and the query's
  /// facts (memo hit, degradation, latency bucket, block-scan counters)
  /// into the counters, enforces the artifact budget, and renders the
  /// reply line.
  std::string FinishQuery(
      const Status& status,
      const std::vector<std::pair<std::string, std::string>>& fields,
      const QueryFacts& facts);

  /// Renders the multi-line STATS body (terminated by END).
  std::string RenderStats();

  Options options_;
  Mutex stats_mu_;
  Counters counters_ RRR_GUARDED_BY(stats_mu_);
  DatasetRegistry registry_;
  AdmissionQueue admission_;

  // rrr-lockfree: sticky shutdown flag, checked by accept/serve loops
  std::atomic<bool> stopping_{false};
  // rrr-lockfree: set once by Start before the accept thread launches
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;

  Mutex conn_mu_;
  std::unordered_set<int> conn_fds_ RRR_GUARDED_BY(conn_mu_);
  std::vector<std::thread> conn_threads_ RRR_GUARDED_BY(conn_mu_);
  std::thread accept_thread_;  // started by Start, joined by Stop
};

}  // namespace service
}  // namespace rrr

#endif  // RRR_SERVICE_SERVER_H_
