#ifndef RRR_SERVICE_REGISTRY_H_
#define RRR_SERVICE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/parallel.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/version.h"
#include "core/dataset_updates.h"
#include "core/engine.h"
#include "service/protocol.h"

namespace rrr {
namespace service {

/// How to materialize a registered dataset: a CSV path or a generator
/// spec. Exactly one of csv_path / generator is set.
struct DatasetSpec {
  std::string csv_path;
  /// One of: uniform | correlated | anticorrelated | clustered | dot | bn.
  std::string generator;
  size_t n = 0;  // generator rows
  size_t d = 0;  // generator dims (dot/bn fix their own)
  uint64_t seed = 1;
  /// Dynamic datasets are CreateDynamic-backed and accept APPEND/DELETE.
  bool dynamic = false;

  /// Parses REGISTER arguments (csv= | gen= n= [d=] [seed=] [dynamic=1]).
  static Result<DatasetSpec> FromCommand(const Command& cmd);
};

/// Lifecycle of a registry entry. REGISTER returns immediately with the
/// entry LOADING; a background prepare moves it to READY or FAILED.
enum class DatasetState { kLoading, kReady, kFailed };
const char* DatasetStateName(DatasetState state);

/// \brief Named-dataset registry with background preparation and a global
/// artifact memory budget enforced by LRU eviction.
///
/// Thread-safe throughout. Entries hold an RrrEngine (dynamic ones a
/// DynamicDataset too); Acquire pins the entry's current snapshot, so a
/// caller's whole query runs against one immutable version no matter what
/// APPEND/DELETE publish meanwhile.
///
/// \par Memory budget
/// `artifact_budget_bytes` caps the *evictable* bytes across all entries:
/// shared artifact caches (PreparedDataset::ApproxArtifactBytes().
/// evictable()) plus engine result memos. Raw dataset rows are not
/// evictable and do not count. EnforceBudget (called by the server after
/// each query) evicts least-recently-acquired READY entries until under
/// budget; evicted artifacts are rebuilt bit-identically on next touch
/// (every artifact is a deterministic pure function of the data), and
/// in-flight queries are unaffected — they hold artifacts by shared_ptr.
class DatasetRegistry {
 public:
  struct Options {
    /// Workers for background prepares (REGISTER returns before these run).
    size_t loader_threads = 2;
    /// Evictable-byte budget; 0 = unlimited (eviction never fires).
    size_t artifact_budget_bytes = 0;
    /// Prepare attempts per REGISTER before the entry lands in FAILED
    /// (bounded automatic re-prepare; transient faults heal themselves).
    size_t max_prepare_attempts = 3;
    /// Backoff before re-prepare attempt a: prepare_backoff_ms << (a - 1).
    uint64_t prepare_backoff_ms = 50;
  };

  /// An acquired entry: the engine plus the snapshot pinned at acquire
  /// time. Queries must pass `snapshot` via QueryOptions::snapshot.
  struct Acquired {
    std::shared_ptr<core::RrrEngine> engine;
    std::shared_ptr<const core::PreparedDataset> snapshot;
  };

  struct EntryReport {
    DatasetState state = DatasetState::kLoading;
    std::string error;            // FAILED only
    DatasetVersion version;       // READY only
    size_t rows = 0;              // READY only
    size_t dims = 0;              // READY only
    bool dynamic = false;
  };

  struct Stats {
    size_t datasets = 0;
    size_t ready = 0;
    /// Evictable artifact + memo bytes across READY entries (the budgeted
    /// quantity).
    size_t cache_bytes = 0;
    size_t evictions = 0;
    size_t evicted_bytes = 0;
    /// Per-dataset (name, state, evictable bytes), name-sorted.
    struct PerDataset {
      std::string name;
      DatasetState state = DatasetState::kLoading;
      size_t bytes = 0;
    };
    std::vector<PerDataset> per_dataset;
  };

  explicit DatasetRegistry(const Options& options);
  ~DatasetRegistry();

  /// Registers `name` and queues its background prepare. Re-REGISTER of a
  /// LOADING/READY name is InvalidArgument (a client bug, not a race to
  /// tolerate silently); a FAILED entry is replaced — its automatic
  /// re-prepare budget is spent, so a fresh REGISTER is the recovery path.
  Status Register(const std::string& name, DatasetSpec spec);

  /// State snapshot for STATUS.
  Result<EntryReport> Report(const std::string& name) const;

  /// READY entry's engine + pinned snapshot; NotFound for unknown names,
  /// FailedPrecondition while LOADING, the load error once FAILED. Bumps
  /// the entry's LRU touch.
  Result<Acquired> Acquire(const std::string& name);

  /// Appends rows (dynamic entries only) and returns the published
  /// version. Each row must have the entry's dims.
  Result<DatasetVersion> Append(const std::string& name,
                                const std::vector<std::vector<double>>& rows);

  /// Deletes row `id` of the current version (dynamic entries only).
  Result<DatasetVersion> Delete(const std::string& name, int32_t id);

  /// Drops the entry. An in-flight background load publishes into a
  /// dropped entry harmlessly (the shared_ptr keeps it alive, unreachable).
  Status Unregister(const std::string& name);

  /// Evicts least-recently-acquired entries until evictable bytes fit the
  /// budget; returns evictions performed by this call. No-op when
  /// unbudgeted or under budget.
  size_t EnforceBudget();

  Stats GetStats() const;

 private:
  struct Entry {
    DatasetState state = DatasetState::kLoading;
    std::string error;
    bool dynamic_spec = false;
    /// READY: always set. Dynamic entries resolve snapshots through
    /// `dynamic`; static ones pin `fixed`.
    std::shared_ptr<core::RrrEngine> engine;
    std::shared_ptr<core::DynamicDataset> dynamic;
    std::shared_ptr<const core::PreparedDataset> fixed;
    uint64_t last_touch = 0;
    /// Prepare attempts consumed (for the FAILED log line / post-mortems).
    size_t attempts = 0;
  };

  /// Builds the dataset named by `spec` (CSV read or generator run).
  static Result<data::Dataset> Materialize(const DatasetSpec& spec);

  /// One prepare attempt: materialize + engine build + publish READY.
  Status PrepareEntry(const std::shared_ptr<Entry>& entry,
                      const DatasetSpec& spec);

  /// The background prepare task: PrepareEntry with bounded retry/backoff;
  /// publishes FAILED (with the final error) once the budget is spent.
  void LoadEntry(std::shared_ptr<Entry> entry, DatasetSpec spec);

  Options options_;
  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_
      RRR_GUARDED_BY(mu_);
  uint64_t touch_clock_ RRR_GUARDED_BY(mu_) = 0;
  size_t evictions_ RRR_GUARDED_BY(mu_) = 0;
  size_t evicted_bytes_ RRR_GUARDED_BY(mu_) = 0;
  // rrr-lockfree: set once by the destructor, read by re-prepare backoff
  // loops on loader threads to stop sleeping through further attempts.
  std::atomic<bool> draining_{false};
  /// Declared last so it is destroyed FIRST: the destructor drains queued
  /// LoadEntry tasks, which lock mu_ and touch entries_ — both must still
  /// be alive while the pool winds down.
  ThreadPool loader_pool_;
};

}  // namespace service
}  // namespace rrr

#endif  // RRR_SERVICE_REGISTRY_H_
