#include "topk/threshold_algorithm.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/logging.h"
#include "common/mutex.h"
#include "topk/score_kernel.h"

namespace rrr {
namespace topk {

namespace {

/// k at or above n / kDenseScanFraction answers via the blocked kernel
/// scan when a mirror is available: TA's stopping rule cannot fire before
/// depth ~ k on any data, so a query returning a quarter of the dataset
/// pays the full sorted-access overhead (per-id seen-marking, random
/// lookups) on top of an effectively complete scan. Results are
/// bit-identical on both sides of the threshold.
constexpr size_t kDenseScanFraction = 4;

}  // namespace

ThresholdAlgorithmIndex::ScratchLease::ScratchLease(
    const ThresholdAlgorithmIndex* index)
    : index_(index) {
  {
    MutexLock lock(index->scratch_mu_);
    if (!index->scratch_pool_.empty()) {
      scratch_ = std::move(index->scratch_pool_.back());
      index->scratch_pool_.pop_back();
    }
  }
  if (scratch_ == nullptr) {
    scratch_ = std::make_unique<Scratch>();
    scratch_->stamp.assign(index->dataset_.size(), 0);
  }
  if (++scratch_->epoch == 0) {  // wrap: old stamps would alias epoch 0
    std::fill(scratch_->stamp.begin(), scratch_->stamp.end(), 0u);
    scratch_->epoch = 1;
  }
}

ThresholdAlgorithmIndex::ScratchLease::~ScratchLease() {
  MutexLock lock(index_->scratch_mu_);
  index_->scratch_pool_.push_back(std::move(scratch_));
}

ThresholdAlgorithmIndex::ThresholdAlgorithmIndex(
    const data::Dataset& dataset, const data::ColumnBlocks* blocks)
    : dataset_(dataset), blocks_(blocks) {
  RRR_CHECK(blocks == nullptr || blocks->source() == &dataset)
      << "TA: blocks mirror a different dataset";
  const size_t n = dataset.size();
  const size_t d = dataset.dims();
  columns_.resize(d);
  for (size_t j = 0; j < d; ++j) {
    auto& col = columns_[j];
    col.resize(n);
    std::iota(col.begin(), col.end(), 0);
    std::sort(col.begin(), col.end(), [&](int32_t a, int32_t b) {
      const double va = dataset.at(static_cast<size_t>(a), j);
      const double vb = dataset.at(static_cast<size_t>(b), j);
      if (va != vb) return va > vb;
      return a < b;
    });
  }
}

std::vector<int32_t> ThresholdAlgorithmIndex::TopK(const LinearFunction& f,
                                                   size_t k) const {
  const size_t n = dataset_.size();
  const size_t d = dataset_.dims();
  RRR_CHECK(f.dims() == d) << "TA: function dimensionality mismatch";
  k = std::min(k, n);
  if (k == 0) {
    last_scan_depth_.store(0, std::memory_order_relaxed);
    return {};
  }
  if (blocks_ != nullptr && k * kDenseScanFraction >= n) {
    // Dense query: skip sorted access entirely and run the fused blocked
    // scan (bit-identical output). Block-max pruning may skip tail blocks
    // once the heap fills, so the reported depth reflects the blocks
    // actually scored rather than a nominal full scan.
    ScanStats stats;
    std::vector<int32_t> out = TopKScan(*blocks_, f, k, BlockSkip::kAuto,
                                        &stats);
    last_scan_depth_.store(
        std::min(n, stats.blocks_scanned * data::ColumnBlocks::kBlockRows) *
            d,
        std::memory_order_relaxed);
    return out;
  }

  // Candidate heap keeps the best k seen so far; worst on top.
  struct Entry {
    double score;
    int32_t id;
  };
  auto worse = [](const Entry& a, const Entry& b) {
    // True when a is better than b: min-heap on "goodness" keeps the
    // weakest of the current top-k at the top.
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> best(worse);
  ScratchLease seen(this);

  size_t depth = 0;
  for (; depth < n; ++depth) {
    // One round of sorted access: position `depth` of every list.
    double threshold = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const int32_t id = columns_[j][depth];
      threshold +=
          f.weights()[j] * dataset_.at(static_cast<size_t>(id), j);
      if (seen.MarkSeen(id)) {
        const double score = f.Score(dataset_.row(static_cast<size_t>(id)));
        if (best.size() < k) {
          best.push(Entry{score, id});
        } else if (Outranks(score, id, best.top().score, best.top().id)) {
          best.pop();
          best.push(Entry{score, id});
        }
      }
    }
    // TA stopping rule: the k-th best already matches or beats every
    // unseen tuple's score ceiling. Ties are resolved conservatively (keep
    // scanning) because an unseen tuple with score == threshold could still
    // win the id tie-break only if its id is smaller — one extra round
    // settles it, so strict inequality is enough for exactness here: any
    // unseen tuple scores <= threshold, and an unseen tuple can only
    // displace the current k-th if its score is strictly greater OR equal
    // with smaller id; the equal-score case is covered once both of its
    // sorted positions pass `depth`, which the continued scan guarantees.
    if (best.size() == k && best.top().score > threshold) break;
    if (best.size() == k && best.top().score == threshold) {
      // Equal-score frontier: continue until the frontier strictly drops
      // (rare; exact-duplicate bands).
      continue;
    }
  }
  last_scan_depth_.store(std::min(depth + 1, n) * d, std::memory_order_relaxed);

  std::vector<int32_t> out(best.size());
  for (size_t i = out.size(); i-- > 0;) {
    out[i] = best.top().id;
    best.pop();
  }
  return out;
}

std::vector<int32_t> ThresholdAlgorithmIndex::TopKSet(const LinearFunction& f,
                                                      size_t k) const {
  std::vector<int32_t> ids = TopK(f, k);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace topk
}  // namespace rrr
