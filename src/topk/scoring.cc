#include "topk/scoring.h"

#include "common/logging.h"
#include "geometry/angles.h"

namespace rrr {
namespace topk {

LinearFunction::LinearFunction(geometry::Vec weights)
    : weights_(std::move(weights)) {
  RRR_CHECK(!weights_.empty()) << "LinearFunction: empty weights";
  double sum = 0.0;
  for (double w : weights_) {
    RRR_CHECK(w >= 0.0) << "LinearFunction: negative weight " << w;
    sum += w;
  }
  RRR_CHECK(sum > 0.0) << "LinearFunction: all-zero weights";
}

LinearFunction LinearFunction::FromAngles(const geometry::Vec& angles) {
  return LinearFunction(geometry::AnglesToWeights(angles));
}

double LinearFunction::Score(const double* row) const {
  double s = 0.0;
  for (size_t i = 0; i < weights_.size(); ++i) s += weights_[i] * row[i];
  return s;
}

double LinearFunction::Score(const data::Dataset& dataset, size_t i) const {
  RRR_DCHECK(dataset.dims() == dims()) << "Score: dimension mismatch";
  return Score(dataset.row(i));
}

bool Outranks(double score_a, int32_t a, double score_b, int32_t b) {
  if (score_a != score_b) return score_a > score_b;
  return a < b;
}

}  // namespace topk
}  // namespace rrr
