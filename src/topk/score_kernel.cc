#include "topk/score_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <queue>

#include "common/logging.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define RRR_SCORE_KERNEL_X86 1
#include <immintrin.h>
#endif

namespace rrr {
namespace topk {

namespace {

constexpr size_t kBlockRows = data::ColumnBlocks::kBlockRows;

#ifdef RRR_SCORE_KERNEL_X86
/// AVX2 block scorer. Compiled with a per-function target attribute so the
/// translation unit itself stays baseline x86-64; only executed after the
/// runtime __builtin_cpu_supports check below. Uses explicit mul then add —
/// never vfmadd — so each lane's rounding sequence matches the scalar loop
/// exactly (the kernel's bit-identity contract).
__attribute__((target("avx2"))) void ScoreBlockAvx2(const double* weights,
                                                    size_t d,
                                                    const double* cols,
                                                    double* out) {
  // Half a block (32 lanes) per round: 8 live accumulators fit the 16-ymm
  // register file with room for the broadcast weight and the column load,
  // the weight is broadcast once per column (not once per lane chunk), and
  // each column is consumed as one 256-byte contiguous stream. Per lane the
  // operation sequence is acc += w[j] * col[lane] in ascending j with
  // separate mul and add roundings — bit-identical to the scalar loop.
  for (size_t half = 0; half < kBlockRows; half += 32) {
    __m256d acc[8];
    for (int i = 0; i < 8; ++i) acc[i] = _mm256_setzero_pd();
    for (size_t j = 0; j < d; ++j) {
      const __m256d wj = _mm256_set1_pd(weights[j]);
      const double* col = cols + j * kBlockRows + half;
      for (int i = 0; i < 8; ++i) {
        acc[i] = _mm256_add_pd(
            acc[i], _mm256_mul_pd(wj, _mm256_loadu_pd(col + 4 * i)));
      }
    }
    for (int i = 0; i < 8; ++i) {
      _mm256_storeu_pd(out + half + 4 * i, acc[i]);
    }
  }
}

/// AVX-512F block scorer: the whole 64-lane block in one round — 8 zmm
/// accumulators (512 bytes of live state) leave half the 32-register file
/// for the broadcast weight and column loads. Same contract as the AVX2
/// path: explicit mul then add per lane in ascending j, never vfmadd, so
/// every lane's rounding sequence matches the scalar loop bit for bit.
__attribute__((target("avx512f"))) void ScoreBlockAvx512(
    const double* weights, size_t d, const double* cols, double* out) {
  __m512d acc[8];
  for (int i = 0; i < 8; ++i) acc[i] = _mm512_setzero_pd();
  for (size_t j = 0; j < d; ++j) {
    const __m512d wj = _mm512_set1_pd(weights[j]);
    const double* col = cols + j * kBlockRows;
    for (int i = 0; i < 8; ++i) {
      acc[i] = _mm512_add_pd(acc[i],
                             _mm512_mul_pd(wj, _mm512_loadu_pd(col + 8 * i)));
    }
  }
  for (int i = 0; i < 8; ++i) {
    _mm512_storeu_pd(out + 8 * i, acc[i]);
  }
}
#endif  // RRR_SCORE_KERNEL_X86

/// Widest path the host CPU can execute (build-time x86 gate included).
ScoreKernelPath WidestSupportedPath() {
#ifdef RRR_SCORE_KERNEL_X86
  if (__builtin_cpu_supports("avx512f")) return ScoreKernelPath::kAvx512;
  if (__builtin_cpu_supports("avx2")) return ScoreKernelPath::kAvx2;
#endif
  return ScoreKernelPath::kScalarBlocked;
}

/// Clamps a requested path to host support, warning when it narrows.
ScoreKernelPath ClampToSupported(ScoreKernelPath want, const char* origin) {
  const ScoreKernelPath widest = WidestSupportedPath();
  if (static_cast<int>(want) <= static_cast<int>(widest)) return want;
  RRR_LOG(WARNING) << "score kernel: " << origin << " requested "
                   << ScoreKernelPathName(want)
                   << " but this host supports at most "
                   << ScoreKernelPathName(widest) << "; using the latter";
  return widest;
}

/// Resolves the initial dispatch from RRR_SCORE_KERNEL. Unknown values fall
/// back to scalar (with one warning) rather than silently dispatching — a
/// typo must not leave the operator believing a forced path is in effect.
ScoreKernelPath PathFromEnv() {
  const char* force = std::getenv("RRR_SCORE_KERNEL");
  if (force == nullptr) return WidestSupportedPath();
  if (std::strcmp(force, "scalar") == 0) return ScoreKernelPath::kScalarBlocked;
  if (std::strcmp(force, "avx2") == 0) {
    return ClampToSupported(ScoreKernelPath::kAvx2, "RRR_SCORE_KERNEL");
  }
  if (std::strcmp(force, "avx512") == 0) {
    return ClampToSupported(ScoreKernelPath::kAvx512, "RRR_SCORE_KERNEL");
  }
  RRR_LOG(WARNING) << "score kernel: unknown RRR_SCORE_KERNEL value \""
                   << force << "\" (want scalar|avx2|avx512); "
                   << "falling back to the scalar path";
  return ScoreKernelPath::kScalarBlocked;
}

/// The installed path: -1 until first use (lazily resolved from the env so
/// tests can set RRR_SCORE_KERNEL before any kernel call), else a
/// ScoreKernelPath. A settable atomic rather than a read-once static so
/// ForceScoreKernelPath can sweep paths inside one bench process; relaxed
/// is enough because every path is bit-identical — readers racing a flip
/// get one of two correct kernels.
std::atomic<int> g_active_path{-1};

/// Process-wide scan accounting (relaxed; see ScanCountersSnapshot).
std::atomic<uint64_t> g_blocks_scanned{0};
std::atomic<uint64_t> g_blocks_skipped{0};

/// Folds a call's local tally into the globals and the caller's out-param.
void CommitScanStats(const ScanStats& local, ScanStats* out) {
  g_blocks_scanned.fetch_add(local.blocks_scanned, std::memory_order_relaxed);
  g_blocks_skipped.fetch_add(local.blocks_skipped, std::memory_order_relaxed);
  if (out != nullptr) *out = local;
}

/// Whether RRR_BLOCK_SKIP leaves pruning enabled (read once).
bool SkipEnabledByEnv() {
  static const bool enabled = [] {
    const char* v = std::getenv("RRR_BLOCK_SKIP");
    return v == nullptr ||
           (std::strcmp(v, "off") != 0 && std::strcmp(v, "0") != 0);
  }();
  return enabled;
}

/// Resolves the per-call skip policy against the mirror and the env.
bool ResolveSkip(BlockSkip skip, const data::ColumnBlocks& blocks) {
  if (!blocks.has_block_bounds()) return false;
  switch (skip) {
    case BlockSkip::kForceOn:
      return true;
    case BlockSkip::kForceOff:
      return false;
    case BlockSkip::kAuto:
      break;
  }
  return SkipEnabledByEnv();
}

}  // namespace

ScoreKernelPath ActiveScoreKernelPath() {
  int p = g_active_path.load(std::memory_order_relaxed);
  if (p < 0) {
    int expected = -1;
    g_active_path.compare_exchange_strong(
        expected, static_cast<int>(PathFromEnv()), std::memory_order_relaxed);
    p = g_active_path.load(std::memory_order_relaxed);
  }
  return static_cast<ScoreKernelPath>(p);
}

ScoreKernelPath ForceScoreKernelPath(ScoreKernelPath path) {
  const ScoreKernelPath actual =
      ClampToSupported(path, "ForceScoreKernelPath");
  g_active_path.store(static_cast<int>(actual), std::memory_order_relaxed);
  return actual;
}

const char* ScoreKernelPathName(ScoreKernelPath path) {
  switch (path) {
    case ScoreKernelPath::kScalarBlocked:
      return "scalar-blocked";
    case ScoreKernelPath::kAvx2:
      return "avx2";
    case ScoreKernelPath::kAvx512:
      return "avx512";
  }
  return "unknown";
}

ScanStats ScanCountersSnapshot() {
  ScanStats totals;
  totals.blocks_scanned = g_blocks_scanned.load(std::memory_order_relaxed);
  totals.blocks_skipped = g_blocks_skipped.load(std::memory_order_relaxed);
  return totals;
}

void AccumulateScanCounters(const ScanStats& stats) {
  CommitScanStats(stats, nullptr);
}

bool BlockSkipResolved(BlockSkip skip, const data::ColumnBlocks& blocks) {
  return ResolveSkip(skip, blocks);
}

double BlockUpperBound(const double* weights, size_t d, const double* maxs,
                       const double* mins) {
  // The exact lane-score operation sequence — 0.0 seed, ascending j,
  // separate mul and add — with each row term replaced by its sign-matched
  // bound. Rounding to nearest is monotone in each operand, so by induction
  // the fold stays >= every lane's fold at the bit level; no epsilon.
  double ub = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double w = weights[j];
    ub += w * (w >= 0.0 ? maxs[j] : mins[j]);
  }
  return ub;
}

void ScoreBlockScalar(const double* weights, size_t d, const double* cols,
                      double* out) {
  // Per-lane accumulation in ascending j — the exact operation sequence of
  // LinearFunction::Score (0.0 seed included, so a -0.0 first term rounds
  // the same way). The lane loop is what the compiler vectorizes.
  for (size_t lane = 0; lane < kBlockRows; ++lane) out[lane] = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double w = weights[j];
    const double* col = cols + j * kBlockRows;
    for (size_t lane = 0; lane < kBlockRows; ++lane) {
      out[lane] += w * col[lane];
    }
  }
}

bool ScoreBlockSimd(const double* weights, size_t d, const double* cols,
                    double* out) {
#ifdef RRR_SCORE_KERNEL_X86
  if (__builtin_cpu_supports("avx512f")) {
    ScoreBlockAvx512(weights, d, cols, out);
    return true;
  }
  if (__builtin_cpu_supports("avx2")) {
    ScoreBlockAvx2(weights, d, cols, out);
    return true;
  }
  return false;
#else
  (void)weights;
  (void)d;
  (void)cols;
  (void)out;
  return false;
#endif
}

void ScoreBlock(const double* weights, size_t d, const double* cols,
                double* out) {
  switch (ActiveScoreKernelPath()) {
#ifdef RRR_SCORE_KERNEL_X86
    case ScoreKernelPath::kAvx512:
      ScoreBlockAvx512(weights, d, cols, out);
      return;
    case ScoreKernelPath::kAvx2:
      ScoreBlockAvx2(weights, d, cols, out);
      return;
#else
    case ScoreKernelPath::kAvx512:
    case ScoreKernelPath::kAvx2:
      break;  // unreachable: non-x86 dispatch never installs a SIMD path
#endif
    case ScoreKernelPath::kScalarBlocked:
      break;
  }
  ScoreBlockScalar(weights, d, cols, out);
}

void ScoreAll(const LinearFunction& f, const data::ColumnBlocks& blocks,
              double* out) {
  RRR_DCHECK(f.dims() == blocks.dims()) << "ScoreAll: dimension mismatch";
  const double* w = f.weights().data();
  const size_t d = blocks.dims();
  const size_t num_blocks = blocks.num_blocks();
  double buf[kBlockRows];
  if (blocks.masked()) {
    // Dead lanes are scored like padding and dropped in the compaction
    // copy; live lanes land at their compacted ids. Each surviving score
    // went through the same per-lane arithmetic as in a dense mirror, so
    // the output is bit-identical to ScoreAll over a fresh dense build.
    for (size_t b = 0; b < num_blocks; ++b) {
      ScoreBlock(w, d, blocks.block(b), buf);
      const uint64_t mask = blocks.block_mask(b);
      const size_t rows = blocks.block_rows(b);
      double* dst = out + blocks.live_before(b);
      for (size_t lane = 0; lane < rows; ++lane) {
        if ((mask >> lane) & 1) *dst++ = buf[lane];
      }
    }
    return;
  }
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t rows = blocks.block_rows(b);
    if (rows == kBlockRows) {
      ScoreBlock(w, d, blocks.block(b), out + b * kBlockRows);
    } else {
      ScoreBlock(w, d, blocks.block(b), buf);
      std::copy(buf, buf + rows, out + b * kBlockRows);
    }
  }
}

std::vector<int32_t> TopKScan(const data::ColumnBlocks& blocks,
                              const LinearFunction& f, size_t k,
                              BlockSkip skip, ScanStats* stats) {
  RRR_DCHECK(f.dims() == blocks.dims()) << "TopKScan: dimension mismatch";
  const size_t n = blocks.rows();
  k = std::min(k, n);
  if (k == 0) {
    if (stats != nullptr) *stats = ScanStats{};
    return {};
  }
  const double* w = f.weights().data();
  const size_t d = blocks.dims();
  const bool use_skip = ResolveSkip(skip, blocks);
  ScanStats local;

  // Same bounded heap as the Threshold Algorithm's candidate set: min-heap
  // on "goodness", weakest of the current top-k on top. The total order is
  // strict (Outranks), so any correct selection yields the same ids — and
  // the final extraction sorts them into the same best-first order as
  // topk::TopK.
  struct Entry {
    double score;
    int32_t id;
  };
  auto worse = [](const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> best(worse);

  double buf[kBlockRows];
  const size_t num_blocks = blocks.num_blocks();
  const bool masked = blocks.masked();
  for (size_t b = 0; b < num_blocks; ++b) {
    // Strict loss only: a block with ub == threshold may hold a tying row
    // that wins by smaller id, so ties always scan (the bit-identity
    // contract's tie-order caveat).
    if (use_skip && best.size() == k &&
        BlockUpperBound(w, d, blocks.block_max(b), blocks.block_min(b)) <
            best.top().score) {
      ++local.blocks_skipped;
      continue;
    }
    ++local.blocks_scanned;
    ScoreBlock(w, d, blocks.block(b), buf);
    const size_t rows = blocks.block_rows(b);
    const uint64_t mask = blocks.block_mask(b);
    // Live lanes in physical order carry consecutive compacted ids; for
    // dense mirrors that degenerates to base + lane.
    int32_t id = static_cast<int32_t>(blocks.live_before(b));
    for (size_t lane = 0; lane < rows; ++lane) {
      if (masked && !((mask >> lane) & 1)) continue;
      const double score = buf[lane];
      if (best.size() < k) {
        best.push(Entry{score, id});
      } else if (Outranks(score, id, best.top().score, best.top().id)) {
        best.pop();
        best.push(Entry{score, id});
      }
      ++id;
    }
  }
  CommitScanStats(local, stats);

  std::vector<int32_t> out(best.size());
  for (size_t i = out.size(); i-- > 0;) {
    out[i] = best.top().id;
    best.pop();
  }
  return out;
}

double MaxScore(const data::ColumnBlocks& blocks, const LinearFunction& f,
                BlockSkip skip, ScanStats* stats) {
  RRR_DCHECK(f.dims() == blocks.dims()) << "MaxScore: dimension mismatch";
  RRR_CHECK(blocks.rows() > 0) << "MaxScore: empty mirror";
  const double* w = f.weights().data();
  const size_t d = blocks.dims();
  const bool use_skip = ResolveSkip(skip, blocks);
  ScanStats local;
  double buf[kBlockRows];
  // Padding lanes score 0.0 and all-negative data would let them win, so
  // the fold honors block_rows everywhere. The -infinity seed with a
  // strict > makes the fold NaN-robust exactly like a std::max chain: a
  // NaN score never wins a comparison, so unvalidated callers (the eval
  // metrics pre-date finiteness checks) see the max of the comparable
  // scores — bit-identical to their legacy row loops — instead of a
  // poisoned max. All-NaN input yields -infinity.
  double best = -std::numeric_limits<double>::infinity();
  const size_t num_blocks = blocks.num_blocks();
  const bool masked = blocks.masked();
  for (size_t b = 0; b < num_blocks; ++b) {
    // ub < best means no lane can beat the running max (ties lose the
    // strict > fold anyway, but skipping only on strict loss keeps one rule
    // everywhere); ub of NaN (poisoned bounds under a zero weight) fails
    // the < and scans.
    if (use_skip &&
        BlockUpperBound(w, d, blocks.block_max(b), blocks.block_min(b)) <
            best) {
      ++local.blocks_skipped;
      continue;
    }
    ++local.blocks_scanned;
    ScoreBlock(w, d, blocks.block(b), buf);
    const size_t rows = blocks.block_rows(b);
    const uint64_t mask = blocks.block_mask(b);
    for (size_t lane = 0; lane < rows; ++lane) {
      if (masked && !((mask >> lane) & 1)) continue;
      if (buf[lane] > best) best = buf[lane];
    }
  }
  CommitScanStats(local, stats);
  return best;
}

int64_t CountOutranking(const data::ColumnBlocks& blocks,
                        const LinearFunction& f, double score, int32_t id,
                        BlockSkip skip, ScanStats* stats) {
  RRR_DCHECK(f.dims() == blocks.dims())
      << "CountOutranking: dimension mismatch";
  const double* w = f.weights().data();
  const size_t d = blocks.dims();
  const bool use_skip = ResolveSkip(skip, blocks);
  ScanStats local;
  double buf[kBlockRows];
  int64_t count = 0;
  const size_t num_blocks = blocks.num_blocks();
  const bool masked = blocks.masked();
  for (size_t b = 0; b < num_blocks; ++b) {
    // ub < score: every lane scores strictly below the reference, and
    // outranking needs s > score or a tie — a strict loss rules both out.
    // ub == score must scan (a tying lane with row_id < id outranks).
    if (use_skip &&
        BlockUpperBound(w, d, blocks.block_max(b), blocks.block_min(b)) <
            score) {
      ++local.blocks_skipped;
      continue;
    }
    ++local.blocks_scanned;
    ScoreBlock(w, d, blocks.block(b), buf);
    const size_t rows = blocks.block_rows(b);
    const uint64_t mask = blocks.block_mask(b);
    int32_t row_id = static_cast<int32_t>(blocks.live_before(b));
    for (size_t lane = 0; lane < rows; ++lane) {
      if (masked && !((mask >> lane) & 1)) continue;
      const double s = buf[lane];
      // Outranks(s, row_id, score, id), branch-light: the strict score
      // comparison almost always decides.
      if (s > score) {
        ++count;
      } else if (s == score && row_id < id) {
        ++count;
      }
      ++row_id;
    }
  }
  CommitScanStats(local, stats);
  return count;
}

}  // namespace topk
}  // namespace rrr
