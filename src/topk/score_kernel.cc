#include "topk/score_kernel.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <queue>

#include "common/logging.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define RRR_SCORE_KERNEL_X86 1
#include <immintrin.h>
#endif

namespace rrr {
namespace topk {

namespace {

constexpr size_t kBlockRows = data::ColumnBlocks::kBlockRows;

#ifdef RRR_SCORE_KERNEL_X86
/// AVX2 block scorer. Compiled with a per-function target attribute so the
/// translation unit itself stays baseline x86-64; only executed after the
/// runtime __builtin_cpu_supports check below. Uses explicit mul then add —
/// never vfmadd — so each lane's rounding sequence matches the scalar loop
/// exactly (the kernel's bit-identity contract).
__attribute__((target("avx2"))) void ScoreBlockAvx2(const double* weights,
                                                    size_t d,
                                                    const double* cols,
                                                    double* out) {
  // Half a block (32 lanes) per round: 8 live accumulators fit the 16-ymm
  // register file with room for the broadcast weight and the column load,
  // the weight is broadcast once per column (not once per lane chunk), and
  // each column is consumed as one 256-byte contiguous stream. Per lane the
  // operation sequence is acc += w[j] * col[lane] in ascending j with
  // separate mul and add roundings — bit-identical to the scalar loop.
  for (size_t half = 0; half < kBlockRows; half += 32) {
    __m256d acc[8];
    for (int i = 0; i < 8; ++i) acc[i] = _mm256_setzero_pd();
    for (size_t j = 0; j < d; ++j) {
      const __m256d wj = _mm256_set1_pd(weights[j]);
      const double* col = cols + j * kBlockRows + half;
      for (int i = 0; i < 8; ++i) {
        acc[i] = _mm256_add_pd(
            acc[i], _mm256_mul_pd(wj, _mm256_loadu_pd(col + 4 * i)));
      }
    }
    for (int i = 0; i < 8; ++i) {
      _mm256_storeu_pd(out + half + 4 * i, acc[i]);
    }
  }
}
#endif  // RRR_SCORE_KERNEL_X86

/// True when the dispatched path should be SIMD: host support AND no
/// RRR_SCORE_KERNEL=scalar override (read once; the choice never changes
/// mid-process, so consumers see one consistent — and in every case
/// bit-identical — path).
bool UseSimd() {
  static const bool use = [] {
#ifdef RRR_SCORE_KERNEL_X86
    const char* force = std::getenv("RRR_SCORE_KERNEL");
    if (force != nullptr && std::strcmp(force, "scalar") == 0) return false;
    return static_cast<bool>(__builtin_cpu_supports("avx2"));
#else
    return false;
#endif
  }();
  return use;
}

}  // namespace

ScoreKernelPath ActiveScoreKernelPath() {
  return UseSimd() ? ScoreKernelPath::kAvx2 : ScoreKernelPath::kScalarBlocked;
}

const char* ScoreKernelPathName(ScoreKernelPath path) {
  switch (path) {
    case ScoreKernelPath::kScalarBlocked:
      return "scalar-blocked";
    case ScoreKernelPath::kAvx2:
      return "avx2";
  }
  return "unknown";
}

void ScoreBlockScalar(const double* weights, size_t d, const double* cols,
                      double* out) {
  // Per-lane accumulation in ascending j — the exact operation sequence of
  // LinearFunction::Score (0.0 seed included, so a -0.0 first term rounds
  // the same way). The lane loop is what the compiler vectorizes.
  for (size_t lane = 0; lane < kBlockRows; ++lane) out[lane] = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double w = weights[j];
    const double* col = cols + j * kBlockRows;
    for (size_t lane = 0; lane < kBlockRows; ++lane) {
      out[lane] += w * col[lane];
    }
  }
}

bool ScoreBlockSimd(const double* weights, size_t d, const double* cols,
                    double* out) {
#ifdef RRR_SCORE_KERNEL_X86
  if (!__builtin_cpu_supports("avx2")) return false;
  ScoreBlockAvx2(weights, d, cols, out);
  return true;
#else
  (void)weights;
  (void)d;
  (void)cols;
  (void)out;
  return false;
#endif
}

void ScoreBlock(const double* weights, size_t d, const double* cols,
                double* out) {
#ifdef RRR_SCORE_KERNEL_X86
  if (UseSimd()) {
    ScoreBlockAvx2(weights, d, cols, out);
    return;
  }
#endif
  ScoreBlockScalar(weights, d, cols, out);
}

void ScoreAll(const LinearFunction& f, const data::ColumnBlocks& blocks,
              double* out) {
  RRR_DCHECK(f.dims() == blocks.dims()) << "ScoreAll: dimension mismatch";
  const double* w = f.weights().data();
  const size_t d = blocks.dims();
  const size_t num_blocks = blocks.num_blocks();
  double buf[kBlockRows];
  if (blocks.masked()) {
    // Dead lanes are scored like padding and dropped in the compaction
    // copy; live lanes land at their compacted ids. Each surviving score
    // went through the same per-lane arithmetic as in a dense mirror, so
    // the output is bit-identical to ScoreAll over a fresh dense build.
    for (size_t b = 0; b < num_blocks; ++b) {
      ScoreBlock(w, d, blocks.block(b), buf);
      const uint64_t mask = blocks.block_mask(b);
      const size_t rows = blocks.block_rows(b);
      double* dst = out + blocks.live_before(b);
      for (size_t lane = 0; lane < rows; ++lane) {
        if ((mask >> lane) & 1) *dst++ = buf[lane];
      }
    }
    return;
  }
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t rows = blocks.block_rows(b);
    if (rows == kBlockRows) {
      ScoreBlock(w, d, blocks.block(b), out + b * kBlockRows);
    } else {
      ScoreBlock(w, d, blocks.block(b), buf);
      std::copy(buf, buf + rows, out + b * kBlockRows);
    }
  }
}

std::vector<int32_t> TopKScan(const data::ColumnBlocks& blocks,
                              const LinearFunction& f, size_t k) {
  RRR_DCHECK(f.dims() == blocks.dims()) << "TopKScan: dimension mismatch";
  const size_t n = blocks.rows();
  k = std::min(k, n);
  if (k == 0) return {};
  const double* w = f.weights().data();
  const size_t d = blocks.dims();

  // Same bounded heap as the Threshold Algorithm's candidate set: min-heap
  // on "goodness", weakest of the current top-k on top. The total order is
  // strict (Outranks), so any correct selection yields the same ids — and
  // the final extraction sorts them into the same best-first order as
  // topk::TopK.
  struct Entry {
    double score;
    int32_t id;
  };
  auto worse = [](const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> best(worse);

  double buf[kBlockRows];
  const size_t num_blocks = blocks.num_blocks();
  const bool masked = blocks.masked();
  for (size_t b = 0; b < num_blocks; ++b) {
    ScoreBlock(w, d, blocks.block(b), buf);
    const size_t rows = blocks.block_rows(b);
    const uint64_t mask = blocks.block_mask(b);
    // Live lanes in physical order carry consecutive compacted ids; for
    // dense mirrors that degenerates to base + lane.
    int32_t id = static_cast<int32_t>(blocks.live_before(b));
    for (size_t lane = 0; lane < rows; ++lane) {
      if (masked && !((mask >> lane) & 1)) continue;
      const double score = buf[lane];
      if (best.size() < k) {
        best.push(Entry{score, id});
      } else if (Outranks(score, id, best.top().score, best.top().id)) {
        best.pop();
        best.push(Entry{score, id});
      }
      ++id;
    }
  }

  std::vector<int32_t> out(best.size());
  for (size_t i = out.size(); i-- > 0;) {
    out[i] = best.top().id;
    best.pop();
  }
  return out;
}

double MaxScore(const data::ColumnBlocks& blocks, const LinearFunction& f) {
  RRR_DCHECK(f.dims() == blocks.dims()) << "MaxScore: dimension mismatch";
  RRR_CHECK(blocks.rows() > 0) << "MaxScore: empty mirror";
  const double* w = f.weights().data();
  const size_t d = blocks.dims();
  double buf[kBlockRows];
  // Padding lanes score 0.0 and all-negative data would let them win, so
  // the fold honors block_rows everywhere. The -infinity seed with a
  // strict > makes the fold NaN-robust exactly like a std::max chain: a
  // NaN score never wins a comparison, so unvalidated callers (the eval
  // metrics pre-date finiteness checks) see the max of the comparable
  // scores — bit-identical to their legacy row loops — instead of a
  // poisoned max. All-NaN input yields -infinity.
  double best = -std::numeric_limits<double>::infinity();
  const size_t num_blocks = blocks.num_blocks();
  const bool masked = blocks.masked();
  for (size_t b = 0; b < num_blocks; ++b) {
    ScoreBlock(w, d, blocks.block(b), buf);
    const size_t rows = blocks.block_rows(b);
    const uint64_t mask = blocks.block_mask(b);
    for (size_t lane = 0; lane < rows; ++lane) {
      if (masked && !((mask >> lane) & 1)) continue;
      if (buf[lane] > best) best = buf[lane];
    }
  }
  return best;
}

int64_t CountOutranking(const data::ColumnBlocks& blocks,
                        const LinearFunction& f, double score, int32_t id) {
  RRR_DCHECK(f.dims() == blocks.dims())
      << "CountOutranking: dimension mismatch";
  const double* w = f.weights().data();
  const size_t d = blocks.dims();
  double buf[kBlockRows];
  int64_t count = 0;
  const size_t num_blocks = blocks.num_blocks();
  const bool masked = blocks.masked();
  for (size_t b = 0; b < num_blocks; ++b) {
    ScoreBlock(w, d, blocks.block(b), buf);
    const size_t rows = blocks.block_rows(b);
    const uint64_t mask = blocks.block_mask(b);
    int32_t row_id = static_cast<int32_t>(blocks.live_before(b));
    for (size_t lane = 0; lane < rows; ++lane) {
      if (masked && !((mask >> lane) & 1)) continue;
      const double s = buf[lane];
      // Outranks(s, row_id, score, id), branch-light: the strict score
      // comparison almost always decides.
      if (s > score) {
        ++count;
      } else if (s == score && row_id < id) {
        ++count;
      }
      ++row_id;
    }
  }
  return count;
}

}  // namespace topk
}  // namespace rrr
