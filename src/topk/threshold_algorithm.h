#ifndef RRR_TOPK_THRESHOLD_ALGORITHM_H_
#define RRR_TOPK_THRESHOLD_ALGORITHM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "data/column_blocks.h"
#include "data/dataset.h"
#include "topk/scoring.h"

namespace rrr {
namespace topk {

/// \brief Fagin's Threshold Algorithm (TA) over per-attribute sorted lists
/// [Fagin, Lotem, Naor — cited as the access-based top-k substrate in the
/// paper's §7].
///
/// The index is built once (d sorted id lists, O(d n log n)); each top-k
/// query then does sorted round-robin access with random lookups and stops
/// as soon as k found items score at least the threshold
/// sum_j w_j * a_j(depth). On skewed/correlated data the scan depth is a
/// small fraction of n, which makes this the right engine for K-SETr-style
/// workloads: millions of top-k probes against one dataset.
///
/// Instance-optimal among algorithms using sorted+random access; worst case
/// O(n d) per query, matching the naive scan up to constants. Results are
/// identical to topk::TopK (same deterministic tie order).
class ThresholdAlgorithmIndex {
 public:
  /// Builds the sorted-access index. The dataset must outlive the index.
  /// `blocks` (may be null) is the dataset's columnar mirror
  /// (data/column_blocks.h, must outlive the index too): queries whose k is
  /// a large fraction of n — where sorted access degenerates toward a full
  /// scan anyway — are then answered by the blocked scoring kernel's fused
  /// scan instead, bit-identically (see TopK).
  explicit ThresholdAlgorithmIndex(const data::Dataset& dataset,
                                   const data::ColumnBlocks* blocks = nullptr);

  /// Ids of the top-k tuples under `f`, best first.
  std::vector<int32_t> TopK(const LinearFunction& f, size_t k) const;

  /// TopK + ascending-sorted ids (k-set form).
  std::vector<int32_t> TopKSet(const LinearFunction& f, size_t k) const;

  /// Tuples touched by sorted access on the most recent query (query-cost
  /// observability; n*d means the query degenerated to a full scan). Under
  /// concurrent queries (the parallel K-SETr sampler) this reports one of
  /// the in-flight queries' depths; the counter is atomic so reads stay
  /// well-defined either way.
  size_t last_scan_depth() const {
    return last_scan_depth_.load(std::memory_order_relaxed);
  }

  /// Approximate heap footprint in bytes: the d sorted id columns plus the
  /// pooled query scratch. An eviction-budget signal for the service-layer
  /// memory accounting, not an exact allocation census.
  size_t ApproxBytes() const {
    size_t bytes = 0;
    for (const std::vector<int32_t>& column : columns_) {
      bytes += column.capacity() * sizeof(int32_t);
    }
    MutexLock lock(scratch_mu_);
    for (const std::unique_ptr<Scratch>& scratch : scratch_pool_) {
      if (scratch != nullptr) {
        bytes += sizeof(Scratch) + scratch->stamp.capacity() * sizeof(uint32_t);
      }
    }
    return bytes;
  }

 private:
  /// \brief Reusable per-query "seen" marker: an epoch-stamped array
  /// instead of a per-call std::unordered_set, which used to dominate the
  /// TA inner loop at small k (hashing + rehash + allocation per query).
  ///
  /// A tuple is "seen this query" iff stamp[id] == epoch; bumping the epoch
  /// resets all marks in O(1). On the (once per 2^32 queries) epoch wrap
  /// the array is cleared explicitly so stale stamps can never alias.
  struct Scratch {
    std::vector<uint32_t> stamp;
    uint32_t epoch = 0;
  };

  /// Checks a scratch buffer out of the pool (TopK is const and called
  /// concurrently by the parallel K-SETr sampler, so the mutable scratch
  /// state is pooled behind a mutex touched once per query, never in the
  /// scan loop). Returns it on destruction.
  class ScratchLease {
   public:
    explicit ScratchLease(const ThresholdAlgorithmIndex* index);
    ~ScratchLease();
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;
    /// Marks `id` seen; true when it was not seen before in this query.
    bool MarkSeen(int32_t id) {
      uint32_t& stamp = scratch_->stamp[static_cast<size_t>(id)];
      if (stamp == scratch_->epoch) return false;
      stamp = scratch_->epoch;
      return true;
    }

   private:
    const ThresholdAlgorithmIndex* index_;
    std::unique_ptr<Scratch> scratch_;
  };

  const data::Dataset& dataset_;
  /// Columnar mirror for the dense-scan escape; may be null (sorted access
  /// then answers every query, including degenerate ones).
  const data::ColumnBlocks* blocks_;
  /// columns_[j] holds tuple ids sorted by attribute j descending
  /// (ties by id ascending, consistent with the library order).
  std::vector<std::vector<int32_t>> columns_;
  // rrr-lockfree: observability counter, relaxed store per query
  mutable std::atomic<size_t> last_scan_depth_{0};
  /// Pooled per-query scratch: TopK/TopKSet are const and run concurrently
  /// (the parallel K-SETr sampler), so the mutable pool is explicitly
  /// mutex-guarded — touched once per query at lease checkout/return,
  /// never inside the scan loop.
  mutable Mutex scratch_mu_;
  mutable std::vector<std::unique_ptr<Scratch>> scratch_pool_
      RRR_GUARDED_BY(scratch_mu_);
};

}  // namespace topk
}  // namespace rrr

#endif  // RRR_TOPK_THRESHOLD_ALGORITHM_H_
