#ifndef RRR_TOPK_RANK_H_
#define RRR_TOPK_RANK_H_

#include <cstdint>
#include <vector>

#include "data/column_blocks.h"
#include "data/dataset.h"
#include "topk/scoring.h"

namespace rrr {
namespace topk {

/// \brief Rank (1-based, 1 = best) of tuple `item` under `f`; the paper's
/// nabla_f(t). O(n). `blocks` (may be null) must mirror `dataset`; when
/// present the outranker count runs through the blocked scoring kernel —
/// bit-identical rank.
int64_t RankOf(const data::Dataset& dataset, const LinearFunction& f,
               int32_t item, const data::ColumnBlocks* blocks = nullptr);

/// \brief Minimum rank over `subset` under `f`; the paper's RR_f(X)
/// (Definition 1). Requires a non-empty subset. O(n + |subset|); the O(n)
/// count goes through the kernel when `blocks` is supplied.
int64_t MinRankOfSubset(const data::Dataset& dataset, const LinearFunction& f,
                        const std::vector<int32_t>& subset,
                        const data::ColumnBlocks* blocks = nullptr);

}  // namespace topk
}  // namespace rrr

#endif  // RRR_TOPK_RANK_H_
