#ifndef RRR_TOPK_RANK_H_
#define RRR_TOPK_RANK_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "topk/scoring.h"

namespace rrr {
namespace topk {

/// \brief Rank (1-based, 1 = best) of tuple `item` under `f`; the paper's
/// nabla_f(t). O(n).
int64_t RankOf(const data::Dataset& dataset, const LinearFunction& f,
               int32_t item);

/// \brief Minimum rank over `subset` under `f`; the paper's RR_f(X)
/// (Definition 1). Requires a non-empty subset. O(n + |subset|).
int64_t MinRankOfSubset(const data::Dataset& dataset, const LinearFunction& f,
                        const std::vector<int32_t>& subset);

}  // namespace topk
}  // namespace rrr

#endif  // RRR_TOPK_RANK_H_
