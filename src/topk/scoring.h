#ifndef RRR_TOPK_SCORING_H_
#define RRR_TOPK_SCORING_H_

#include <cstdint>

#include "common/result.h"
#include "data/dataset.h"
#include "geometry/vec.h"

namespace rrr {
namespace topk {

/// \brief A linear ranking function f(t) = sum_i w_i * t[i] with
/// non-negative weights (Equation 1 of the paper).
class LinearFunction {
 public:
  /// Takes ownership of the weight vector; weights must be non-negative and
  /// not all zero (checked).
  explicit LinearFunction(geometry::Vec weights);

  /// Function from d-1 sweep angles (geometry::AnglesToWeights).
  static LinearFunction FromAngles(const geometry::Vec& angles);

  /// Score of a raw row of `dims()` values.
  double Score(const double* row) const;

  /// Score of row i of `dataset` (dimensions must match).
  ///
  /// Convenience for user code, examples, and one-off lookups ONLY. Library
  /// hot loops must not call this (or Score(row)) per tuple of a full scan:
  /// every scan-shaped loop goes through the blocked columnar kernel
  /// (topk/score_kernel.h — ScoreAll / TopKScan / CountOutranking), which
  /// is bit-identical and vectorizes across rows. The in-tree call sites
  /// are grep-audited to subset-sized or random-access loops; new solvers
  /// that scan n rows through this API will be bounced in review.
  double Score(const data::Dataset& dataset, size_t i) const;

  size_t dims() const { return weights_.size(); }
  const geometry::Vec& weights() const { return weights_; }

 private:
  geometry::Vec weights_;
};

/// \brief Deterministic total order on tuples under a function: higher score
/// first; exact score ties broken by lower tuple id (the paper's "arbitrary
/// tie-breaker" made concrete so every component agrees on it).
///
/// Returns true when item `a` outranks item `b`.
bool Outranks(double score_a, int32_t a, double score_b, int32_t b);

}  // namespace topk
}  // namespace rrr

#endif  // RRR_TOPK_SCORING_H_
