#ifndef RRR_TOPK_SCORE_KERNEL_H_
#define RRR_TOPK_SCORE_KERNEL_H_

#include <cstdint>
#include <vector>

#include "data/column_blocks.h"
#include "topk/scoring.h"

namespace rrr {
namespace topk {

/// \brief Blocked columnar scoring kernel: the one vectorizable data path
/// under every solver's "evaluate a linear function over many tuples" loop.
///
/// All entry points score whole data::ColumnBlocks tiles at a time,
/// vectorizing ACROSS rows (one lane per row) while accumulating each row's
/// d terms in ascending attribute order — exactly the order of
/// LinearFunction::Score's scalar loop. Multiplications and additions are
/// never fused (the build sets -ffp-contract=off, and the SIMD path uses
/// explicit mul+add, not FMA), so every path — scalar row loop, blocked
/// scalar, SIMD — produces bit-identical scores. Consumers may therefore
/// switch freely between paths without tolerance-based comparisons; the
/// contract is pinned by tests/topk/score_kernel_test.cc.
///
/// Dispatch: ScoreBlock picks the widest path the host CPU supports at
/// runtime (AVX2 on x86-64 when available; set RRR_SCORE_KERNEL=scalar in
/// the environment to force the blocked-scalar reference path). Building
/// with -DRRR_NATIVE=ON additionally lets the compiler autovectorize the
/// scalar-blocked loop for the build host; the dispatched results are
/// identical either way.

/// Which inner path ScoreBlock dispatches to on this host/build.
enum class ScoreKernelPath {
  kScalarBlocked,  ///< autovectorizable scalar loop over the block lanes
  kAvx2,           ///< 4-wide AVX2 doubles, explicit mul+add (no FMA)
};

/// The dispatched path (after the RRR_SCORE_KERNEL env override).
ScoreKernelPath ActiveScoreKernelPath();

/// Stable lowercase name for bench/diagnostic output ("scalar-blocked",
/// "avx2").
const char* ScoreKernelPathName(ScoreKernelPath path);

/// \brief Scores one block: out[lane] = sum_j weights[j] * cols[j * 64 +
/// lane] for all data::ColumnBlocks::kBlockRows lanes, j ascending.
///
/// `cols` is ColumnBlocks::block(b) (d columns of kBlockRows doubles);
/// `out` receives kBlockRows scores, padding lanes included (callers
/// discard them via block_rows). Reference scalar path; always available.
void ScoreBlockScalar(const double* weights, size_t d, const double* cols,
                      double* out);

/// SIMD ScoreBlock; returns false (out untouched) when the CPU or build
/// lacks the vector path. Bit-identical to ScoreBlockScalar when it runs.
bool ScoreBlockSimd(const double* weights, size_t d, const double* cols,
                    double* out);

/// Runtime-dispatched ScoreBlock (SIMD when available, scalar otherwise).
void ScoreBlock(const double* weights, size_t d, const double* cols,
                double* out);

/// Scores every mirrored row: out[i] = f.Score(row i) for i in
/// [0, blocks.rows()), bit-identically. Masked mirrors (rows deleted after
/// the mirror was built — see data::ColumnBlocks::WithoutRow) are honored
/// here and in every entry point below: dead lanes are skipped and live
/// lanes map to compacted ids, so results stay bit-identical to a fresh
/// dense mirror of the same source.
void ScoreAll(const LinearFunction& f, const data::ColumnBlocks& blocks,
              double* out);

/// \brief Fused scoring + top-k selection over the mirror: bit-identical
/// ids, in bit-identical order, to topk::TopK(*blocks.source(), f, k) —
/// score descending, ties by ascending id. k is clamped to blocks.rows().
///
/// One pass: each block is scored into a stack buffer and folded into a
/// bounded heap, so no O(n) score materialization and no O(n) index sort.
std::vector<int32_t> TopKScan(const data::ColumnBlocks& blocks,
                              const LinearFunction& f, size_t k);

/// Maximum score over all mirrored rows (== max_i f.Score(row i); the
/// regret-ratio evaluators' full-scan numerator). Requires rows() > 0.
/// NaN scores never win the fold (std::max-chain semantics, matching the
/// legacy row loops on unvalidated data); all-NaN input yields -infinity.
double MaxScore(const data::ColumnBlocks& blocks, const LinearFunction& f);

/// \brief Rows outranking reference (score, id) under the library tie
/// order: |{ j : Outranks(f.Score(row j), j, score, id) }|.
///
/// The rank primitive: RankOf(item) == 1 + CountOutranking(f.Score(item),
/// item) (row `id` itself never outranks its own (score, id) pair, so it
/// needs no exclusion).
int64_t CountOutranking(const data::ColumnBlocks& blocks,
                        const LinearFunction& f, double score, int32_t id);

}  // namespace topk
}  // namespace rrr

#endif  // RRR_TOPK_SCORE_KERNEL_H_
