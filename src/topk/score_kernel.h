#ifndef RRR_TOPK_SCORE_KERNEL_H_
#define RRR_TOPK_SCORE_KERNEL_H_

#include <cstdint>
#include <vector>

#include "data/column_blocks.h"
#include "topk/scoring.h"

namespace rrr {
namespace topk {

/// \brief Blocked columnar scoring kernel: the one vectorizable data path
/// under every solver's "evaluate a linear function over many tuples" loop.
///
/// All entry points score whole data::ColumnBlocks tiles at a time,
/// vectorizing ACROSS rows (one lane per row) while accumulating each row's
/// d terms in ascending attribute order — exactly the order of
/// LinearFunction::Score's scalar loop. Multiplications and additions are
/// never fused (the build sets -ffp-contract=off, and the SIMD path uses
/// explicit mul+add, not FMA), so every path — scalar row loop, blocked
/// scalar, SIMD — produces bit-identical scores. Consumers may therefore
/// switch freely between paths without tolerance-based comparisons; the
/// contract is pinned by tests/topk/score_kernel_test.cc.
///
/// Dispatch: ScoreBlock picks the widest path the host CPU supports at
/// runtime (AVX-512F, then AVX2, then scalar on x86-64; set
/// RRR_SCORE_KERNEL=scalar|avx2|avx512 in the environment to pin a path —
/// an unknown value falls back to scalar with one warning, a supported name
/// the host can't run clamps down to the widest available, also with a
/// warning). Building with -DRRR_NATIVE=ON additionally lets the compiler
/// autovectorize the scalar-blocked loop for the build host; the dispatched
/// results are identical either way.
///
/// \par Block-max pruning
/// TopKScan/MaxScore/CountOutranking consult data::ColumnBlocks' per-block
/// column bounds: a block whose upper bound (BlockUpperBound — folded with
/// the exact arithmetic sequence of the lane scores, so round-to-nearest
/// monotonicity makes it a bit-level bound) loses *strictly* to the current
/// threshold cannot contribute and is skipped unscored. Ties always scan —
/// a tying row can still win by smaller id under the library tie order — so
/// skip-on results are bit-identical to skip-off (pinned by
/// tests/topk/block_skip_test.cc). RRR_BLOCK_SKIP=off disables skipping
/// process-wide; the BlockSkip parameter overrides per call (bench/tests).

/// Which inner path ScoreBlock dispatches to on this host/build.
enum class ScoreKernelPath {
  kScalarBlocked,  ///< autovectorizable scalar loop over the block lanes
  kAvx2,           ///< 4-wide AVX2 doubles, explicit mul+add (no FMA)
  kAvx512,         ///< 8-wide AVX-512F doubles, explicit mul+add (no FMA)
};

/// The dispatched path (after the RRR_SCORE_KERNEL env override).
ScoreKernelPath ActiveScoreKernelPath();

/// Stable lowercase name for bench/diagnostic output ("scalar-blocked",
/// "avx2", "avx512").
const char* ScoreKernelPathName(ScoreKernelPath path);

/// \brief Re-pins the dispatched path at runtime (bench/test hook for
/// sweeping paths inside one process; production code should rely on the
/// env override instead).
///
/// Requests the host can't honor clamp to the widest supported path with a
/// warning. Returns the path actually installed. Every path is
/// bit-identical, so flipping mid-process never changes results — only
/// throughput.
ScoreKernelPath ForceScoreKernelPath(ScoreKernelPath path);

/// Per-call override for block-max pruning in the scanning entry points.
enum class BlockSkip {
  kAuto,      ///< skip when bounds exist, unless RRR_BLOCK_SKIP=off
  kForceOn,   ///< skip when bounds exist, ignoring the env kill switch
  kForceOff,  ///< scan every block (the in-run baseline for benches)
};

/// Per-call scan accounting from the skipping entry points. Only the
/// threshold-driven scans (TopKScan/MaxScore/CountOutranking and the
/// candidate-index band walk) count here — ScoreAll must touch every block
/// by definition and would only dilute the skip rate.
struct ScanStats {
  uint64_t blocks_scanned = 0;
  uint64_t blocks_skipped = 0;
};

/// Process-wide totals of the same counters (relaxed atomics — exact as
/// totals, but deltas taken around a query attribute approximately when
/// queries run concurrently; observability only).
ScanStats ScanCountersSnapshot();

/// Folds an external skip-aware scan's tally (e.g. the candidate-index
/// band walk, which fuses scoring with its own certify logic) into the
/// process-wide counters.
void AccumulateScanCounters(const ScanStats& stats);

/// Resolves the skip policy exactly as the entry points do: bounds must
/// exist, kAuto honors RRR_BLOCK_SKIP. For scan loops that live outside
/// this file but follow the same skip rule.
bool BlockSkipResolved(BlockSkip skip, const data::ColumnBlocks& blocks);

/// \brief Upper bound on any lane score of a block with column maxima
/// `maxs` and minima `mins`: sum_j w[j] * (w[j] >= 0 ? maxs[j] : mins[j]),
/// folded seed-0.0 in ascending j with separate mul and add.
///
/// Because that is the exact operation sequence of the lane scores and
/// round-to-nearest is monotone, the result is >= every lane score *as
/// computed*, bit-level — no epsilon slop needed. NaN-poisoned bounds
/// (columns containing NaN) yield +inf or NaN, which never satisfies a
/// strict < threshold test, so poisoned blocks always scan.
double BlockUpperBound(const double* weights, size_t d, const double* maxs,
                       const double* mins);

/// \brief Scores one block: out[lane] = sum_j weights[j] * cols[j * 64 +
/// lane] for all data::ColumnBlocks::kBlockRows lanes, j ascending.
///
/// `cols` is ColumnBlocks::block(b) (d columns of kBlockRows doubles);
/// `out` receives kBlockRows scores, padding lanes included (callers
/// discard them via block_rows). Reference scalar path; always available.
void ScoreBlockScalar(const double* weights, size_t d, const double* cols,
                      double* out);

/// SIMD ScoreBlock; returns false (out untouched) when the CPU or build
/// lacks any vector path. Runs the widest SIMD tier the host supports
/// (AVX-512F, else AVX2) regardless of the dispatch override — the
/// bench/test probe for "what can this machine do". Bit-identical to
/// ScoreBlockScalar when it runs.
bool ScoreBlockSimd(const double* weights, size_t d, const double* cols,
                    double* out);

/// Runtime-dispatched ScoreBlock (SIMD when available, scalar otherwise).
void ScoreBlock(const double* weights, size_t d, const double* cols,
                double* out);

/// Scores every mirrored row: out[i] = f.Score(row i) for i in
/// [0, blocks.rows()), bit-identically. Masked mirrors (rows deleted after
/// the mirror was built — see data::ColumnBlocks::WithoutRow) are honored
/// here and in every entry point below: dead lanes are skipped and live
/// lanes map to compacted ids, so results stay bit-identical to a fresh
/// dense mirror of the same source.
void ScoreAll(const LinearFunction& f, const data::ColumnBlocks& blocks,
              double* out);

/// \brief Fused scoring + top-k selection over the mirror: bit-identical
/// ids, in bit-identical order, to topk::TopK(*blocks.source(), f, k) —
/// score descending, ties by ascending id. k is clamped to blocks.rows().
///
/// One pass: each block is scored into a stack buffer and folded into a
/// bounded heap, so no O(n) score materialization and no O(n) index sort.
/// Once the heap is full, blocks whose upper bound loses strictly to the
/// weakest held entry are skipped (see BlockSkip); `stats` (optional)
/// receives this call's scan/skip counts.
std::vector<int32_t> TopKScan(const data::ColumnBlocks& blocks,
                              const LinearFunction& f, size_t k,
                              BlockSkip skip = BlockSkip::kAuto,
                              ScanStats* stats = nullptr);

/// Maximum score over all mirrored rows (== max_i f.Score(row i); the
/// regret-ratio evaluators' full-scan numerator). Requires rows() > 0.
/// NaN scores never win the fold (std::max-chain semantics, matching the
/// legacy row loops on unvalidated data); all-NaN input yields -infinity.
/// Blocks upper-bounded strictly below the running max are skipped.
double MaxScore(const data::ColumnBlocks& blocks, const LinearFunction& f,
                BlockSkip skip = BlockSkip::kAuto,
                ScanStats* stats = nullptr);

/// \brief Rows outranking reference (score, id) under the library tie
/// order: |{ j : Outranks(f.Score(row j), j, score, id) }|.
///
/// The rank primitive: RankOf(item) == 1 + CountOutranking(f.Score(item),
/// item) (row `id` itself never outranks its own (score, id) pair, so it
/// needs no exclusion). Blocks upper-bounded strictly below `score` cannot
/// hold an outranking row (outranking at equal score needs the scan anyway
/// only when s == score, which a strict loss excludes) and are skipped.
int64_t CountOutranking(const data::ColumnBlocks& blocks,
                        const LinearFunction& f, double score, int32_t id,
                        BlockSkip skip = BlockSkip::kAuto,
                        ScanStats* stats = nullptr);

}  // namespace topk
}  // namespace rrr

#endif  // RRR_TOPK_SCORE_KERNEL_H_
