#ifndef RRR_TOPK_TOPK_H_
#define RRR_TOPK_TOPK_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "topk/scoring.h"

namespace rrr {
namespace topk {

/// \brief Ids of the top-k tuples of `dataset` under `f`, best first.
///
/// k is clamped to the dataset size. O(n + k log k) via selection;
/// deterministic under the library-wide tie order (score desc, id asc).
std::vector<int32_t> TopK(const data::Dataset& dataset,
                          const LinearFunction& f, size_t k);

/// Same ids as TopK but sorted ascending (set semantics) — the natural k-set
/// representation used by the enumeration algorithms.
std::vector<int32_t> TopKSet(const data::Dataset& dataset,
                             const LinearFunction& f, size_t k);

}  // namespace topk
}  // namespace rrr

#endif  // RRR_TOPK_TOPK_H_
