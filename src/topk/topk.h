#ifndef RRR_TOPK_TOPK_H_
#define RRR_TOPK_TOPK_H_

#include <cstdint>
#include <vector>

#include "data/column_blocks.h"
#include "data/dataset.h"
#include "topk/scoring.h"

namespace rrr {
namespace topk {

/// \brief Ids of the top-k tuples of `dataset` under `f`, best first.
///
/// k is clamped to the dataset size; deterministic under the library-wide
/// tie order (score desc, id asc). `blocks` (may be null) must be the
/// columnar mirror of `dataset`; when present the scan runs through the
/// blocked scoring kernel's fused TopKScan (topk/score_kernel.h) —
/// bit-identical ids in bit-identical order, without materializing n scores.
/// The legacy row loop (null blocks) is O(n + k log k) via selection.
std::vector<int32_t> TopK(const data::Dataset& dataset,
                          const LinearFunction& f, size_t k,
                          const data::ColumnBlocks* blocks = nullptr);

/// Same ids as TopK but sorted ascending (set semantics) — the natural k-set
/// representation used by the enumeration algorithms.
std::vector<int32_t> TopKSet(const data::Dataset& dataset,
                             const LinearFunction& f, size_t k,
                             const data::ColumnBlocks* blocks = nullptr);

}  // namespace topk
}  // namespace rrr

#endif  // RRR_TOPK_TOPK_H_
