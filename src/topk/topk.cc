#include "topk/topk.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "topk/score_kernel.h"

namespace rrr {
namespace topk {

std::vector<int32_t> TopK(const data::Dataset& dataset,
                          const LinearFunction& f, size_t k,
                          const data::ColumnBlocks* blocks) {
  if (blocks != nullptr) {
    RRR_DCHECK(blocks->source() == &dataset)
        << "TopK: blocks mirror a different dataset";
    RRR_DCHECK(blocks->rows() == dataset.size() &&
               blocks->dims() == dataset.dims())
        << "TopK: stale column mirror";
    return TopKScan(*blocks, f, k);
  }
  const size_t n = dataset.size();
  k = std::min(k, n);
  if (k == 0) return {};
  std::vector<double> scores(n);
  for (size_t i = 0; i < n; ++i) scores[i] = f.Score(dataset.row(i));
  std::vector<int32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  auto better = [&scores](int32_t a, int32_t b) {
    return Outranks(scores[static_cast<size_t>(a)], a,
                    scores[static_cast<size_t>(b)], b);
  };
  if (k < n) {
    std::nth_element(idx.begin(), idx.begin() + static_cast<long>(k - 1),
                     idx.end(), better);
    idx.resize(k);
  }
  std::sort(idx.begin(), idx.end(), better);
  return idx;
}

std::vector<int32_t> TopKSet(const data::Dataset& dataset,
                             const LinearFunction& f, size_t k,
                             const data::ColumnBlocks* blocks) {
  std::vector<int32_t> ids = TopK(dataset, f, k, blocks);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace topk
}  // namespace rrr
