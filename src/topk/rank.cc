#include "topk/rank.h"

#include "common/logging.h"

namespace rrr {
namespace topk {

int64_t RankOf(const data::Dataset& dataset, const LinearFunction& f,
               int32_t item) {
  const size_t n = dataset.size();
  RRR_CHECK(item >= 0 && static_cast<size_t>(item) < n)
      << "RankOf: item out of range";
  const double s = f.Score(dataset.row(static_cast<size_t>(item)));
  int64_t rank = 1;
  for (size_t j = 0; j < n; ++j) {
    const int32_t jj = static_cast<int32_t>(j);
    if (jj == item) continue;
    if (Outranks(f.Score(dataset.row(j)), jj, s, item)) ++rank;
  }
  return rank;
}

int64_t MinRankOfSubset(const data::Dataset& dataset, const LinearFunction& f,
                        const std::vector<int32_t>& subset) {
  RRR_CHECK(!subset.empty()) << "MinRankOfSubset: empty subset";
  // Best member under the tie-broken order.
  int32_t best = subset[0];
  double best_score = f.Score(dataset, static_cast<size_t>(best));
  for (size_t i = 1; i < subset.size(); ++i) {
    const int32_t t = subset[i];
    const double s = f.Score(dataset, static_cast<size_t>(t));
    if (Outranks(s, t, best_score, best)) {
      best = t;
      best_score = s;
    }
  }
  // Count tuples outranking the best member.
  int64_t rank = 1;
  const size_t n = dataset.size();
  for (size_t j = 0; j < n; ++j) {
    const int32_t jj = static_cast<int32_t>(j);
    if (jj == best) continue;
    if (Outranks(f.Score(dataset.row(j)), jj, best_score, best)) ++rank;
  }
  return rank;
}

}  // namespace topk
}  // namespace rrr
