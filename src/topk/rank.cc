#include "topk/rank.h"

#include "common/logging.h"
#include "topk/score_kernel.h"

namespace rrr {
namespace topk {

namespace {

/// Outrankers of (score, item) by legacy row loop (null blocks) or the
/// blocked kernel. The count is a pure predicate fold, so the two paths
/// agree exactly; row `item` never outranks its own pair, so neither path
/// excludes it.
int64_t OutrankerCount(const data::Dataset& dataset, const LinearFunction& f,
                       double score, int32_t item,
                       const data::ColumnBlocks* blocks) {
  if (blocks != nullptr) {
    RRR_DCHECK(blocks->source() == &dataset)
        << "rank: blocks mirror a different dataset";
    return CountOutranking(*blocks, f, score, item);
  }
  int64_t count = 0;
  const size_t n = dataset.size();
  for (size_t j = 0; j < n; ++j) {
    const int32_t jj = static_cast<int32_t>(j);
    if (Outranks(f.Score(dataset.row(j)), jj, score, item)) ++count;
  }
  return count;
}

}  // namespace

int64_t RankOf(const data::Dataset& dataset, const LinearFunction& f,
               int32_t item, const data::ColumnBlocks* blocks) {
  RRR_CHECK(item >= 0 && static_cast<size_t>(item) < dataset.size())
      << "RankOf: item out of range";
  const double s = f.Score(dataset.row(static_cast<size_t>(item)));
  return 1 + OutrankerCount(dataset, f, s, item, blocks);
}

int64_t MinRankOfSubset(const data::Dataset& dataset, const LinearFunction& f,
                        const std::vector<int32_t>& subset,
                        const data::ColumnBlocks* blocks) {
  RRR_CHECK(!subset.empty()) << "MinRankOfSubset: empty subset";
  // Best member under the tie-broken order (subset-sized, stays row-wise).
  int32_t best = subset[0];
  double best_score = f.Score(dataset.row(static_cast<size_t>(best)));
  for (size_t i = 1; i < subset.size(); ++i) {
    const int32_t t = subset[i];
    const double s = f.Score(dataset.row(static_cast<size_t>(t)));
    if (Outranks(s, t, best_score, best)) {
      best = t;
      best_score = s;
    }
  }
  return 1 + OutrankerCount(dataset, f, best_score, best, blocks);
}

}  // namespace topk
}  // namespace rrr
