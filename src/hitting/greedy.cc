#include "hitting/greedy.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace rrr {
namespace hitting {

Result<std::vector<int32_t>> GreedyHittingSet(const SetSystem& system) {
  const size_t m = system.sets.size();
  for (const auto& s : system.sets) {
    if (s.empty()) {
      return Status::InvalidArgument("empty set cannot be hit");
    }
  }
  // element -> indices of sets containing it (deduped per set).
  std::unordered_map<int32_t, std::vector<size_t>> element_sets;
  for (size_t i = 0; i < m; ++i) {
    std::unordered_set<int32_t> seen;
    for (int32_t e : system.sets[i]) {
      if (seen.insert(e).second) element_sets[e].push_back(i);
    }
  }
  std::unordered_map<int32_t, size_t> gain;  // unhit sets containing e
  for (const auto& [e, sets] : element_sets) gain[e] = sets.size();

  std::vector<char> hit(m, 0);
  size_t remaining = m;
  std::vector<int32_t> chosen;
  while (remaining > 0) {
    int32_t best = 0;
    size_t best_gain = 0;
    for (const auto& [e, g] : gain) {
      if (g > best_gain || (g == best_gain && g > 0 && e < best)) {
        best = e;
        best_gain = g;
      }
    }
    RRR_CHECK(best_gain > 0) << "greedy stalled with unhit sets remaining";
    chosen.push_back(best);
    for (size_t si : element_sets[best]) {
      if (hit[si]) continue;
      hit[si] = 1;
      --remaining;
      // Newly hit: every member's gain drops by one.
      std::unordered_set<int32_t> seen;
      for (int32_t e : system.sets[si]) {
        if (seen.insert(e).second) --gain[e];
      }
    }
    gain.erase(best);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

namespace {

/// Recursive branch-and-bound state for ExactHittingSet.
class BnB {
 public:
  BnB(const SetSystem& system, size_t max_nodes)
      : system_(system), max_nodes_(max_nodes) {}

  Result<std::vector<int32_t>> Run() {
    // Greedy gives the initial upper bound (and a feasibility check).
    Result<std::vector<int32_t>> greedy = GreedyHittingSet(system_);
    if (!greedy.ok()) return greedy.status();
    best_ = std::move(greedy).value();
    std::vector<int32_t> current;
    std::vector<char> hit(system_.sets.size(), 0);
    const Status st = Recurse(&current, &hit);
    if (!st.ok()) return st;
    std::sort(best_.begin(), best_.end());
    return best_;
  }

 private:
  Status Recurse(std::vector<int32_t>* current, std::vector<char>* hit) {
    if (++nodes_ > max_nodes_) {
      return Status::ResourceExhausted("exact hitting set node budget");
    }
    // Lower bound: greedily pack pairwise-disjoint unhit sets.
    size_t packing = 0;
    std::unordered_set<int32_t> used;
    int64_t branch_set = -1;
    size_t branch_size = SIZE_MAX;
    for (size_t i = 0; i < system_.sets.size(); ++i) {
      if ((*hit)[i]) continue;
      if (branch_set < 0 || system_.sets[i].size() < branch_size) {
        branch_set = static_cast<int64_t>(i);
        branch_size = system_.sets[i].size();
      }
      bool disjoint = true;
      for (int32_t e : system_.sets[i]) {
        if (used.count(e) != 0) {
          disjoint = false;
          break;
        }
      }
      if (disjoint) {
        ++packing;
        for (int32_t e : system_.sets[i]) used.insert(e);
      }
    }
    if (branch_set < 0) {  // all hit: candidate solution
      if (current->size() < best_.size()) best_ = *current;
      return Status::OK();
    }
    if (current->size() + packing >= best_.size()) return Status::OK();

    // Branch on each element of the smallest unhit set.
    for (int32_t e : system_.sets[static_cast<size_t>(branch_set)]) {
      std::vector<size_t> newly_hit;
      for (size_t i = 0; i < system_.sets.size(); ++i) {
        if ((*hit)[i]) continue;
        if (std::find(system_.sets[i].begin(), system_.sets[i].end(), e) !=
            system_.sets[i].end()) {
          (*hit)[i] = 1;
          newly_hit.push_back(i);
        }
      }
      current->push_back(e);
      RRR_RETURN_IF_ERROR(Recurse(current, hit));
      current->pop_back();
      for (size_t i : newly_hit) (*hit)[i] = 0;
    }
    return Status::OK();
  }

  const SetSystem& system_;
  size_t max_nodes_;
  size_t nodes_ = 0;
  std::vector<int32_t> best_;
};

}  // namespace

Result<std::vector<int32_t>> ExactHittingSet(const SetSystem& system,
                                             size_t max_nodes) {
  if (system.sets.empty()) return std::vector<int32_t>{};
  return BnB(system, max_nodes).Run();
}

}  // namespace hitting
}  // namespace rrr
