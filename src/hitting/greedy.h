#ifndef RRR_HITTING_GREEDY_H_
#define RRR_HITTING_GREEDY_H_

#include "common/result.h"
#include "hitting/set_system.h"

namespace rrr {
namespace hitting {

/// \brief Classic greedy hitting set: repeatedly choose the element that
/// hits the most currently-unhit sets (ties to the smallest id).
///
/// ln(|sets|)+1 approximation of the optimal hitting set [Karp/Johnson].
/// Fails with InvalidArgument when some set is empty.
Result<std::vector<int32_t>> GreedyHittingSet(const SetSystem& system);

/// \brief Exact minimum hitting set by branch and bound; exponential, meant
/// as the ground-truth oracle in tests and for tiny instances.
///
/// Branches over the elements of a smallest unhit set; prunes with a
/// disjoint-set packing lower bound. Fails with ResourceExhausted when
/// `max_nodes` search nodes are exceeded.
Result<std::vector<int32_t>> ExactHittingSet(const SetSystem& system,
                                             size_t max_nodes = 1u << 20);

}  // namespace hitting
}  // namespace rrr

#endif  // RRR_HITTING_GREEDY_H_
