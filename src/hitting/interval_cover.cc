#include "hitting/interval_cover.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"

namespace rrr {
namespace hitting {

namespace {

Result<std::vector<int32_t>> CoverBySweep(std::vector<Interval> intervals,
                                          double lo, double hi, double tol) {
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              if (a.end != b.end) return a.end > b.end;
              return a.id < b.id;
            });
  std::vector<int32_t> chosen;
  double covered_to = lo;
  size_t i = 0;
  const size_t m = intervals.size();
  while (covered_to < hi - tol) {
    // Among intervals starting at or before the frontier, take the one
    // reaching furthest right.
    double best_end = -std::numeric_limits<double>::infinity();
    int32_t best_id = -1;
    while (i < m && intervals[i].begin <= covered_to + tol) {
      if (intervals[i].end > best_end) {
        best_end = intervals[i].end;
        best_id = intervals[i].id;
      }
      ++i;
    }
    if (best_id < 0 || best_end <= covered_to + tol) {
      return Status::FailedPrecondition(
          StrFormat("intervals do not cover beyond %.17g", covered_to));
    }
    chosen.push_back(best_id);
    covered_to = best_end;
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

/// Length of intersection of [b, e] with the disjoint sorted uncovered
/// segments in `gaps` (pairs).
double OverlapLength(const std::vector<std::pair<double, double>>& gaps,
                     double b, double e) {
  double len = 0.0;
  for (const auto& [gb, ge] : gaps) {
    if (ge <= b) continue;
    if (gb >= e) break;
    len += std::min(e, ge) - std::max(b, gb);
  }
  return len;
}

/// Removes [b, e] from the disjoint sorted segments in `gaps`.
void Subtract(std::vector<std::pair<double, double>>* gaps, double b,
              double e) {
  std::vector<std::pair<double, double>> out;
  out.reserve(gaps->size() + 1);
  for (const auto& [gb, ge] : *gaps) {
    if (ge <= b || gb >= e) {
      out.emplace_back(gb, ge);
      continue;
    }
    if (gb < b) out.emplace_back(gb, b);
    if (ge > e) out.emplace_back(e, ge);
  }
  *gaps = std::move(out);
}

Result<std::vector<int32_t>> CoverByMaxCoverage(
    const std::vector<Interval>& intervals, double lo, double hi,
    double tol) {
  std::vector<std::pair<double, double>> gaps = {{lo, hi}};
  std::vector<char> used(intervals.size(), 0);
  std::vector<int32_t> chosen;
  while (!gaps.empty()) {
    // Drop slivers below tolerance (junction roundoff).
    double total_gap = 0.0;
    for (const auto& [gb, ge] : gaps) total_gap += ge - gb;
    if (total_gap <= tol) break;

    double best_cov = 0.0;
    int64_t best = -1;
    for (size_t t = 0; t < intervals.size(); ++t) {
      if (used[t]) continue;
      const double cov =
          OverlapLength(gaps, intervals[t].begin, intervals[t].end);
      if (cov > best_cov + tol ||
          (cov > best_cov - tol && best >= 0 && cov > 0 &&
           intervals[t].id < intervals[static_cast<size_t>(best)].id)) {
        best_cov = cov;
        best = static_cast<int64_t>(t);
      }
    }
    if (best < 0 || best_cov <= tol) {
      return Status::FailedPrecondition(
          "intervals do not cover the line segment");
    }
    used[static_cast<size_t>(best)] = 1;
    chosen.push_back(intervals[static_cast<size_t>(best)].id);
    Subtract(&gaps, intervals[static_cast<size_t>(best)].begin,
             intervals[static_cast<size_t>(best)].end);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace

Result<std::vector<int32_t>> CoverLine(const std::vector<Interval>& intervals,
                                       double lo, double hi,
                                       CoverStrategy strategy, double tol) {
  if (hi < lo) return Status::InvalidArgument("hi < lo");
  if (hi == lo) {
    // Point coverage: any interval containing lo.
    for (const auto& iv : intervals) {
      if (iv.begin <= lo + tol && iv.end >= lo - tol) {
        return std::vector<int32_t>{iv.id};
      }
    }
    return Status::FailedPrecondition("no interval contains the point");
  }
  if (strategy == CoverStrategy::kSweep) {
    return CoverBySweep(intervals, lo, hi, tol);
  }
  return CoverByMaxCoverage(intervals, lo, hi, tol);
}

}  // namespace hitting
}  // namespace rrr
