#ifndef RRR_HITTING_SET_SYSTEM_H_
#define RRR_HITTING_SET_SYSTEM_H_

#include <cstdint>
#include <vector>

namespace rrr {
namespace hitting {

/// \brief A finite set system (range space): a collection of sets over an
/// implicit universe of int32 element ids.
///
/// The MDRRR pipeline instantiates this with the collection of k-sets
/// (Section 5.2's "mapping to geometric hitting set"). Sets need not be
/// sorted; empty sets make any hitting-set query infeasible.
struct SetSystem {
  std::vector<std::vector<int32_t>> sets;

  /// Sorted unique ids appearing in any set (the universe D of the paper's
  /// mapping, D = union of the k-sets).
  std::vector<int32_t> Universe() const;

  /// True iff every set contains at least one chosen element.
  bool IsHit(const std::vector<int32_t>& chosen) const;

  /// Index of some set not hit by `chosen`, or -1 when all are hit.
  int64_t FirstMissed(const std::vector<int32_t>& chosen) const;
};

}  // namespace hitting
}  // namespace rrr

#endif  // RRR_HITTING_SET_SYSTEM_H_
