#include "hitting/epsnet.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"
#include "hitting/greedy.h"

namespace rrr {
namespace hitting {

namespace {

/// Drops elements whose removal keeps `chosen` a hitting set (reverse
/// greedy). Keeps the output minimal-by-inclusion; the eps-net sampler can
/// otherwise return nets far larger than needed on small universes.
void PruneRedundant(const SetSystem& system, std::vector<int32_t>* chosen) {
  // Membership count per chosen element is implicit: a set "pins" an
  // element when it is the only chosen member of that set.
  for (size_t i = chosen->size(); i-- > 0;) {
    std::vector<int32_t> without;
    without.reserve(chosen->size() - 1);
    for (size_t j = 0; j < chosen->size(); ++j) {
      if (j != i) without.push_back((*chosen)[j]);
    }
    if (system.IsHit(without)) *chosen = std::move(without);
  }
}

/// Fenwick tree over element weights supporting O(log n) weighted draws.
class WeightedSampler {
 public:
  explicit WeightedSampler(size_t n) : n_(n), tree_(n + 1, 0.0) {}

  void Set(size_t i, double w) {
    const double delta = w - Get(i);
    Add(i, delta);
  }

  double Get(size_t i) const {
    double sum = PrefixSum(i + 1) - PrefixSum(i);
    return sum;
  }

  void Add(size_t i, double delta) {
    for (size_t j = i + 1; j <= n_; j += j & (~j + 1)) tree_[j] += delta;
  }

  double Total() const { return PrefixSum(n_); }

  /// Index with the smallest prefix sum exceeding `target` in [0, Total()).
  size_t Draw(double target) const {
    size_t pos = 0;
    size_t mask = 1;
    while ((mask << 1) <= n_) mask <<= 1;
    double acc = 0.0;
    for (; mask > 0; mask >>= 1) {
      const size_t next = pos + mask;
      if (next <= n_ && acc + tree_[next] <= target) {
        pos = next;
        acc += tree_[next];
      }
    }
    return std::min(pos, n_ - 1);
  }

 private:
  double PrefixSum(size_t count) const {
    double s = 0.0;
    for (size_t j = count; j > 0; j -= j & (~j + 1)) s += tree_[j];
    return s;
  }

  size_t n_;
  std::vector<double> tree_;
};

}  // namespace

Result<std::vector<int32_t>> EpsNetHittingSet(const SetSystem& system,
                                              const EpsNetOptions& options) {
  if (system.sets.empty()) return std::vector<int32_t>{};
  for (const auto& s : system.sets) {
    if (s.empty()) return Status::InvalidArgument("empty set cannot be hit");
  }
  const std::vector<int32_t> universe = system.Universe();
  const size_t nu = universe.size();
  std::unordered_map<int32_t, size_t> pos;  // element id -> dense index
  for (size_t i = 0; i < nu; ++i) pos[universe[i]] = i;

  // Dense per-set member indices (deduped).
  std::vector<std::vector<size_t>> sets_dense(system.sets.size());
  for (size_t i = 0; i < system.sets.size(); ++i) {
    std::unordered_set<int32_t> seen;
    for (int32_t e : system.sets[i]) {
      if (seen.insert(e).second) sets_dense[i].push_back(pos[e]);
    }
  }

  Rng rng(options.seed);
  const double delta = std::max(1, options.vc_dim);

  for (size_t guess = 1;; guess *= 2) {
    // Fresh unit weights per guess (standard restart).
    WeightedSampler weights(nu);
    for (size_t i = 0; i < nu; ++i) weights.Add(i, 1.0);
    double max_weight = 1.0;

    // eps = 1/(2c); eps-net size O((delta/eps) log (delta/eps)).
    const double eps = 1.0 / (2.0 * static_cast<double>(guess));
    const double ratio = delta / eps;
    size_t net_size = static_cast<size_t>(
        std::ceil(2.0 * ratio * std::log2(std::max(2.0, ratio))));
    net_size = std::min(net_size, nu);

    const size_t max_rounds =
        options.rounds_per_guess_factor *
            std::max<size_t>(1, guess *
                static_cast<size_t>(std::ceil(std::log2(
                    static_cast<double>(nu) / static_cast<double>(guess) +
                    2.0)))) +
        8;

    for (size_t round = 0; round < max_rounds; ++round) {
      // Draw the weighted net (without replacement via rejection on a set).
      std::unordered_set<size_t> net;
      const size_t target = std::min(net_size, nu);
      size_t attempts = 0;
      while (net.size() < target && attempts < 64 * target + 64) {
        ++attempts;
        const double total = weights.Total();
        if (total <= 0.0) break;
        net.insert(weights.Draw(rng.Uniform() * total));
      }
      std::vector<int32_t> candidate;
      candidate.reserve(net.size());
      for (size_t i : net) candidate.push_back(universe[i]);

      // Identify missed sets.
      std::vector<size_t> missed;
      for (size_t si = 0; si < sets_dense.size(); ++si) {
        bool hit = false;
        for (size_t e : sets_dense[si]) {
          if (net.count(e) != 0) {
            hit = true;
            break;
          }
        }
        if (!hit) missed.push_back(si);
      }
      if (missed.empty()) {
        PruneRedundant(system, &candidate);
        std::sort(candidate.begin(), candidate.end());
        RRR_DCHECK(system.IsHit(candidate)) << "eps-net postcondition";
        return candidate;
      }

      if (options.doubling == DoublingStrategy::kLightestMissed) {
        size_t lightest = missed[0];
        double lightest_w = std::numeric_limits<double>::infinity();
        for (size_t si : missed) {
          double w = 0.0;
          for (size_t e : sets_dense[si]) w += weights.Get(e);
          if (w < lightest_w) {
            lightest_w = w;
            lightest = si;
          }
        }
        missed.assign(1, lightest);
      }
      for (size_t si : missed) {
        for (size_t e : sets_dense[si]) {
          const double w = weights.Get(e);
          weights.Add(e, w);  // double
          max_weight = std::max(max_weight, 2.0 * w);
        }
      }
      // Renormalize before doubles overflow.
      if (max_weight > 1e280) {
        for (size_t i = 0; i < nu; ++i) {
          weights.Set(i, weights.Get(i) * 1e-260);
        }
        max_weight *= 1e-260;
      }
    }
    if (guess > nu) {
      // Pathological sampling luck: fall back to the deterministic greedy so
      // the caller still gets a verified hitting set.
      return GreedyHittingSet(system);
    }
  }
}

}  // namespace hitting
}  // namespace rrr
