#ifndef RRR_HITTING_INTERVAL_COVER_H_
#define RRR_HITTING_INTERVAL_COVER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace rrr {
namespace hitting {

/// A closed interval [begin, end] tagged with the owning item id.
struct Interval {
  double begin = 0.0;
  double end = 0.0;
  int32_t id = 0;
};

/// Strategy for CoverLine.
enum class CoverStrategy {
  /// Classical left-to-right sweep: always extend furthest right. Provably
  /// minimum number of intervals; default, and the strategy that realizes
  /// Theorem 3's optimal-size guarantee for 2DRRR.
  kSweep,
  /// The paper's Algorithm 2 greedy: repeatedly pick the interval covering
  /// the most currently-uncovered length. Matches the paper's pseudocode;
  /// can exceed the optimum on adversarial families (see DESIGN.md).
  kGreedyMaxCoverage,
};

/// \brief Covers the segment [lo, hi] with a subset of `intervals`,
/// returning the chosen interval ids (sorted).
///
/// Fails with FailedPrecondition when the union of intervals does not cover
/// [lo, hi] (up to `tol` slack at junctions).
Result<std::vector<int32_t>> CoverLine(
    const std::vector<Interval>& intervals, double lo, double hi,
    CoverStrategy strategy = CoverStrategy::kSweep, double tol = 1e-12);

}  // namespace hitting
}  // namespace rrr

#endif  // RRR_HITTING_INTERVAL_COVER_H_
