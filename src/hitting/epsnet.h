#ifndef RRR_HITTING_EPSNET_H_
#define RRR_HITTING_EPSNET_H_

#include <cstdint>

#include "common/result.h"
#include "hitting/set_system.h"

namespace rrr {
namespace hitting {

/// Which sets get their weights doubled when the sampled net misses them.
enum class DoublingStrategy {
  /// Double every missed set (the paper's Algorithm 3 pseudocode).
  kAllMissed,
  /// Double only the lightest missed set (classical Bronnimann-Goodrich).
  kLightestMissed,
};

/// Tuning for EpsNetHittingSet.
struct EpsNetOptions {
  uint64_t seed = 7;
  /// VC dimension of the range space; d (the attribute count) for k-sets
  /// induced by half-spaces (Section 5.2).
  int vc_dim = 3;
  DoublingStrategy doubling = DoublingStrategy::kAllMissed;
  /// Safety valve: abort a size guess after this many doubling rounds times
  /// the guess; the guess is then doubled.
  size_t rounds_per_guess_factor = 16;
};

/// \brief Bronnimann-Goodrich weight-doubling hitting set over a finite set
/// system (the engine of MDRRR, Algorithm 3).
///
/// Guesses the optimal size c (doubling 1, 2, 4, ...); for each guess draws
/// weighted eps-nets with eps = 1/(2c) and doubles the weights of missed
/// sets until the net hits everything. The returned set is always verified
/// to hit every input set, so callers get correctness independent of the
/// sampling constants; the O(vc_dim * log(vc_dim * c)) size factor is the
/// expected behaviour, not a hard promise.
///
/// Fails with InvalidArgument when a set is empty.
Result<std::vector<int32_t>> EpsNetHittingSet(
    const SetSystem& system, const EpsNetOptions& options = EpsNetOptions());

}  // namespace hitting
}  // namespace rrr

#endif  // RRR_HITTING_EPSNET_H_
