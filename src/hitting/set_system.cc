#include "hitting/set_system.h"

#include <algorithm>
#include <unordered_set>

namespace rrr {
namespace hitting {

std::vector<int32_t> SetSystem::Universe() const {
  std::vector<int32_t> all;
  for (const auto& s : sets) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

bool SetSystem::IsHit(const std::vector<int32_t>& chosen) const {
  return FirstMissed(chosen) < 0;
}

int64_t SetSystem::FirstMissed(const std::vector<int32_t>& chosen) const {
  std::unordered_set<int32_t> picked(chosen.begin(), chosen.end());
  for (size_t i = 0; i < sets.size(); ++i) {
    bool hit = false;
    for (int32_t e : sets[i]) {
      if (picked.count(e) != 0) {
        hit = true;
        break;
      }
    }
    if (!hit) return static_cast<int64_t>(i);
  }
  return -1;
}

}  // namespace hitting
}  // namespace rrr
