#include "lp/separation.h"

#include <algorithm>
#include <cmath>

#include "lp/simplex.h"

namespace rrr {
namespace lp {

Result<SeparationResult> FindSeparatingWeights(
    const double* rows, size_t n, size_t d,
    const std::vector<int32_t>& inside, double tolerance) {
  if (rows == nullptr) return Status::InvalidArgument("rows is null");
  if (d == 0) return Status::InvalidArgument("d must be positive");
  if (inside.empty() || inside.size() >= n) {
    return Status::InvalidArgument(
        "inside must be a proper non-empty subset of the rows");
  }
  std::vector<char> is_inside(n, 0);
  for (int32_t idx : inside) {
    if (idx < 0 || static_cast<size_t>(idx) >= n) {
      return Status::OutOfRange("inside index out of range");
    }
    is_inside[static_cast<size_t>(idx)] = 1;
  }

  // Variables: v[0..d) >= 0, m = mp - mn, delta = dp - dn.
  const size_t kV = 0;
  const size_t kMp = d;
  const size_t kMn = d + 1;
  const size_t kDp = d + 2;
  const size_t kDn = d + 3;
  LpProblem p;
  p.num_vars = d + 4;
  p.objective.assign(p.num_vars, 0.0);
  p.objective[kDp] = 1.0;
  p.objective[kDn] = -1.0;

  p.constraints.reserve(n + 1);
  for (size_t i = 0; i < n; ++i) {
    Constraint c;
    c.coeffs.assign(p.num_vars, 0.0);
    const double* t = rows + i * d;
    if (is_inside[i]) {
      // v.t - m - delta >= 0
      for (size_t j = 0; j < d; ++j) c.coeffs[kV + j] = t[j];
      c.coeffs[kMp] = -1.0;
      c.coeffs[kMn] = 1.0;
    } else {
      // m - v.t - delta >= 0
      for (size_t j = 0; j < d; ++j) c.coeffs[kV + j] = -t[j];
      c.coeffs[kMp] = 1.0;
      c.coeffs[kMn] = -1.0;
    }
    c.coeffs[kDp] = -1.0;
    c.coeffs[kDn] = 1.0;
    c.sense = Sense::kGe;
    c.rhs = 0.0;
    p.constraints.push_back(std::move(c));
  }
  // Normalization pins the scale: sum(v) = 1.
  Constraint norm;
  norm.coeffs.assign(p.num_vars, 0.0);
  for (size_t j = 0; j < d; ++j) norm.coeffs[kV + j] = 1.0;
  norm.sense = Sense::kEq;
  norm.rhs = 1.0;
  p.constraints.push_back(std::move(norm));

  LpSolution sol;
  RRR_ASSIGN_OR_RETURN(sol, Solve(p));
  if (sol.status == LpStatus::kIterationLimit) {
    return Status::ResourceExhausted("separation LP hit iteration limit");
  }
  if (sol.status == LpStatus::kUnbounded) {
    // Cannot happen: delta is bounded by the data diameter once sum(v) = 1.
    return Status::Internal("separation LP reported unbounded");
  }

  SeparationResult out;
  if (sol.status == LpStatus::kInfeasible) {
    // The constraint system is feasible for delta negative enough, so the
    // simplex should never report infeasible; treat defensively as
    // non-separable.
    out.separable = false;
    return out;
  }
  out.margin = sol.objective_value;
  out.separable = sol.objective_value > tolerance;
  if (out.separable) {
    out.weights.assign(sol.x.begin(), sol.x.begin() + static_cast<long>(d));
    // Clamp tiny negatives introduced by pivoting roundoff.
    for (double& w : out.weights) w = std::max(w, 0.0);
  }
  return out;
}

}  // namespace lp
}  // namespace rrr
