#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace rrr {
namespace lp {

namespace {

/// Dense tableau simplex working state.
///
/// Layout: columns [0, n) are structural variables, [n, n+s) slacks/surplus,
/// [n+s, total) artificials; one extra implicit column holds the RHS. Row i
/// of `tab` is constraint i; `basis[i]` is the column basic in row i.
class Tableau {
 public:
  Tableau(const LpProblem& p, const SimplexOptions& opt)
      : opt_(opt), m_(p.constraints.size()), n_(p.num_vars) {
    // Count auxiliary columns. Rows are normalized to rhs >= 0 first, which
    // flips the sense of negative-rhs rows.
    size_t slacks = 0;
    size_t artificials = 0;
    senses_.reserve(m_);
    for (const auto& c : p.constraints) {
      Sense s = c.sense;
      if (c.rhs < 0) s = (s == Sense::kLe) ? Sense::kGe
                       : (s == Sense::kGe) ? Sense::kLe
                                           : Sense::kEq;
      senses_.push_back(s);
      if (s == Sense::kLe) {
        ++slacks;
      } else if (s == Sense::kGe) {
        ++slacks;  // surplus
        ++artificials;
      } else {
        ++artificials;
      }
    }
    num_slacks_ = slacks;
    num_art_ = artificials;
    cols_ = n_ + num_slacks_ + num_art_;
    tab_.assign(m_, std::vector<double>(cols_ + 1, 0.0));
    basis_.assign(m_, 0);

    size_t slack_at = n_;
    size_t art_at = n_ + num_slacks_;
    for (size_t i = 0; i < m_; ++i) {
      const Constraint& c = p.constraints[i];
      const double sign = (c.rhs < 0) ? -1.0 : 1.0;
      for (size_t j = 0; j < n_ && j < c.coeffs.size(); ++j) {
        tab_[i][j] = sign * c.coeffs[j];
      }
      tab_[i][cols_] = sign * c.rhs;
      switch (senses_[i]) {
        case Sense::kLe:
          tab_[i][slack_at] = 1.0;
          basis_[i] = static_cast<int>(slack_at++);
          break;
        case Sense::kGe:
          tab_[i][slack_at] = -1.0;
          ++slack_at;
          tab_[i][art_at] = 1.0;
          basis_[i] = static_cast<int>(art_at++);
          break;
        case Sense::kEq:
          tab_[i][art_at] = 1.0;
          basis_[i] = static_cast<int>(art_at++);
          break;
      }
    }
  }

  bool HasArtificials() const { return num_art_ > 0; }
  bool IsArtificial(size_t col) const { return col >= n_ + num_slacks_; }

  /// Runs one simplex phase on the reduced-cost row `z` (maximization).
  /// `allow_cols` limits entering columns. Returns the phase status.
  LpStatus Optimize(std::vector<double>* z, double* z_value, size_t max_col) {
    for (size_t iter = 0; iter < opt_.max_iterations; ++iter) {
      const bool bland = iter >= opt_.bland_threshold;
      // Pricing: pick the entering column with the most positive reduced
      // cost (Dantzig), or the first positive one (Bland).
      size_t enter = max_col;
      double best = opt_.tolerance;
      for (size_t j = 0; j < max_col; ++j) {
        if ((*z)[j] > best) {
          enter = j;
          if (bland) break;
          best = (*z)[j];
        }
      }
      if (enter == max_col) return LpStatus::kOptimal;

      // Ratio test: tightest row with positive pivot element; ties go to the
      // lowest basis index (lexicographic flavor, anti-cycling with Bland).
      size_t leave = m_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < m_; ++i) {
        const double a = tab_[i][enter];
        if (a > opt_.tolerance) {
          const double ratio = tab_[i][cols_] / a;
          if (ratio < best_ratio - opt_.tolerance ||
              (ratio < best_ratio + opt_.tolerance && leave < m_ &&
               basis_[i] < basis_[leave])) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == m_) return LpStatus::kUnbounded;

      Pivot(leave, enter, z, z_value);
    }
    return LpStatus::kIterationLimit;
  }

  /// Builds phase-1 reduced costs: maximize -(sum of artificials).
  void BuildPhase1Costs(std::vector<double>* z, double* z_value) const {
    z->assign(cols_, 0.0);
    *z_value = 0.0;
    for (size_t j = n_ + num_slacks_; j < cols_; ++j) (*z)[j] = -1.0;
    // Express in terms of the current basis (artificials are basic).
    for (size_t i = 0; i < m_; ++i) {
      const size_t b = static_cast<size_t>(basis_[i]);
      if (IsArtificial(b)) {
        // c_B = -1 for artificial rows: z_j = c_j - (-1)*row_j, and the
        // starting objective value is -(sum of artificial values).
        for (size_t j = 0; j < cols_; ++j) (*z)[j] += tab_[i][j];
        *z_value -= tab_[i][cols_];
      }
    }
    for (size_t i = 0; i < m_; ++i) (*z)[static_cast<size_t>(basis_[i])] = 0.0;
  }

  /// Builds phase-2 reduced costs for the caller objective `c`.
  void BuildPhase2Costs(const std::vector<double>& c, std::vector<double>* z,
                        double* z_value) const {
    z->assign(cols_, 0.0);
    for (size_t j = 0; j < n_ && j < c.size(); ++j) (*z)[j] = c[j];
    *z_value = 0.0;
    for (size_t i = 0; i < m_; ++i) {
      const size_t b = static_cast<size_t>(basis_[i]);
      const double cb = (b < n_ && b < c.size()) ? c[b] : 0.0;
      if (cb != 0.0) {
        for (size_t j = 0; j < cols_; ++j) (*z)[j] -= cb * tab_[i][j];
        *z_value += cb * tab_[i][cols_];
      }
    }
    for (size_t i = 0; i < m_; ++i) (*z)[static_cast<size_t>(basis_[i])] = 0.0;
  }

  /// Pivots artificial variables out of the basis after phase 1. Rows whose
  /// only nonzero columns are artificial are redundant and are blanked.
  void EvictArtificials() {
    for (size_t i = 0; i < m_; ++i) {
      const size_t b = static_cast<size_t>(basis_[i]);
      if (!IsArtificial(b)) continue;
      size_t enter = cols_;
      for (size_t j = 0; j < n_ + num_slacks_; ++j) {
        if (std::fabs(tab_[i][j]) > opt_.tolerance) {
          enter = j;
          break;
        }
      }
      if (enter == cols_) {
        // Redundant row: zero it so it can never constrain phase 2.
        std::fill(tab_[i].begin(), tab_[i].end(), 0.0);
        continue;
      }
      std::vector<double> dummy_z(cols_, 0.0);
      double dummy_v = 0.0;
      Pivot(i, enter, &dummy_z, &dummy_v);
    }
  }

  /// Extracts structural variable values from the basis.
  std::vector<double> ExtractX() const {
    std::vector<double> x(n_, 0.0);
    for (size_t i = 0; i < m_; ++i) {
      const size_t b = static_cast<size_t>(basis_[i]);
      if (b < n_) x[b] = tab_[i][cols_];
    }
    return x;
  }

  size_t structural_cols() const { return n_ + num_slacks_; }
  size_t total_cols() const { return cols_; }

 private:
  void Pivot(size_t row, size_t col, std::vector<double>* z, double* z_value) {
    const double p = tab_[row][col];
    RRR_DCHECK(std::fabs(p) > 0.0) << "zero pivot";
    const double inv = 1.0 / p;
    for (size_t j = 0; j <= cols_; ++j) tab_[row][j] *= inv;
    tab_[row][col] = 1.0;  // kill residual roundoff
    for (size_t i = 0; i < m_; ++i) {
      if (i == row) continue;
      const double f = tab_[i][col];
      if (f == 0.0) continue;
      for (size_t j = 0; j <= cols_; ++j) tab_[i][j] -= f * tab_[row][j];
      tab_[i][col] = 0.0;
    }
    const double zf = (*z)[col];
    if (zf != 0.0) {
      for (size_t j = 0; j < cols_; ++j) (*z)[j] -= zf * tab_[row][j];
      *z_value += zf * tab_[row][cols_];
      (*z)[col] = 0.0;
    }
    basis_[row] = static_cast<int>(col);
  }

  SimplexOptions opt_;
  size_t m_;
  size_t n_;
  size_t num_slacks_ = 0;
  size_t num_art_ = 0;
  size_t cols_ = 0;
  std::vector<Sense> senses_;
  std::vector<std::vector<double>> tab_;
  std::vector<int> basis_;
};

}  // namespace

Result<LpSolution> Solve(const LpProblem& problem,
                         const SimplexOptions& options) {
  if (problem.objective.size() != problem.num_vars) {
    return Status::InvalidArgument("objective size != num_vars");
  }
  for (const auto& c : problem.constraints) {
    if (c.coeffs.size() != problem.num_vars) {
      return Status::InvalidArgument("constraint width != num_vars");
    }
  }

  LpSolution sol;
  if (problem.constraints.empty()) {
    // No constraints: optimum is 0 iff no positive objective coefficient.
    for (double cj : problem.objective) {
      if (cj > options.tolerance) {
        sol.status = LpStatus::kUnbounded;
        return sol;
      }
    }
    sol.status = LpStatus::kOptimal;
    sol.x.assign(problem.num_vars, 0.0);
    sol.objective_value = 0.0;
    return sol;
  }

  Tableau tab(problem, options);
  std::vector<double> z;
  double z_value = 0.0;

  if (tab.HasArtificials()) {
    tab.BuildPhase1Costs(&z, &z_value);
    const LpStatus s1 = tab.Optimize(&z, &z_value, tab.total_cols());
    if (s1 == LpStatus::kIterationLimit) {
      sol.status = s1;
      return sol;
    }
    // Phase-1 objective is -(sum of artificials); feasible iff it reached 0.
    if (z_value < -options.tolerance * 100) {
      sol.status = LpStatus::kInfeasible;
      return sol;
    }
    tab.EvictArtificials();
  }

  tab.BuildPhase2Costs(problem.objective, &z, &z_value);
  const LpStatus s2 = tab.Optimize(&z, &z_value, tab.structural_cols());
  sol.status = s2;
  if (s2 == LpStatus::kOptimal) {
    sol.x = tab.ExtractX();
    sol.objective_value = 0.0;
    for (size_t j = 0; j < problem.num_vars; ++j) {
      sol.objective_value += problem.objective[j] * sol.x[j];
    }
  }
  return sol;
}

}  // namespace lp
}  // namespace rrr
