#ifndef RRR_LP_SEPARATION_H_
#define RRR_LP_SEPARATION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace rrr {
namespace lp {

/// Outcome of a linear separation query (Equation 4 of the paper).
struct SeparationResult {
  /// True iff the `inside` points can be strictly separated from the rest by
  /// a hyperplane with a non-negative normal so that every inside point
  /// scores strictly higher.
  bool separable = false;
  /// Normal vector v (|v|_1 = 1) achieving the separation; empty when not
  /// separable.
  std::vector<double> weights;
  /// Achieved margin: min over inside of v.t minus max over outside of v.t.
  double margin = 0.0;
};

/// \brief Decides whether the point set indexed by `inside` is a valid k-set
/// of the n x d row-major matrix `rows`.
///
/// Solves  max delta  s.t.  v.s - m >= delta  (s inside),
///                          m - v.t >= delta  (t outside),
///                          sum(v) = 1, v >= 0;
/// the set is separable iff the optimum delta is positive. This is the LP of
/// Equation 4 with the threshold point rho collapsed into the scalar m.
///
/// `tolerance` is the positivity threshold on delta (normalized data in
/// [0, 1] keeps margins well above it for genuine k-sets).
Result<SeparationResult> FindSeparatingWeights(
    const double* rows, size_t n, size_t d,
    const std::vector<int32_t>& inside, double tolerance = 1e-7);

}  // namespace lp
}  // namespace rrr

#endif  // RRR_LP_SEPARATION_H_
