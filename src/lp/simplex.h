#ifndef RRR_LP_SIMPLEX_H_
#define RRR_LP_SIMPLEX_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace rrr {
namespace lp {

/// Relational sense of a linear constraint row.
enum class Sense { kLe, kGe, kEq };

/// One linear constraint: coeffs . x  (sense)  rhs.
struct Constraint {
  std::vector<double> coeffs;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

/// \brief A linear program in the form
///   maximize  objective . x
///   subject to constraints, x >= 0.
///
/// Free variables must be modeled by the caller as differences of two
/// non-negative variables (the separation LP in separation.cc does this).
struct LpProblem {
  size_t num_vars = 0;
  std::vector<double> objective;
  std::vector<Constraint> constraints;
};

/// Outcome class of a solve.
enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

/// Optimal basis information returned by Solve().
struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective_value = 0.0;
  std::vector<double> x;
};

/// Tuning knobs for the simplex solver.
struct SimplexOptions {
  /// Feasibility / pivot tolerance.
  double tolerance = 1e-9;
  /// Hard cap on pivots per phase; kIterationLimit is returned beyond it.
  size_t max_iterations = 20000;
  /// Number of Dantzig-rule pivots before switching to Bland's rule
  /// (guards against cycling on degenerate problems).
  size_t bland_threshold = 5000;
};

/// \brief Solves `problem` with a dense two-phase primal simplex.
///
/// Phase 1 minimizes the sum of artificial variables to find a basic
/// feasible solution; phase 2 optimizes the caller's objective. Determinism:
/// ties in pricing and ratio tests are broken by lowest column/row index, so
/// repeated solves of the same problem return bit-identical answers.
///
/// Returns an error Status only for malformed input (dimension mismatches);
/// infeasible/unbounded are reported through LpSolution::status.
Result<LpSolution> Solve(const LpProblem& problem,
                         const SimplexOptions& options = SimplexOptions());

}  // namespace lp
}  // namespace rrr

#endif  // RRR_LP_SIMPLEX_H_
