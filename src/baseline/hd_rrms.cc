#include "baseline/hd_rrms.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"
#include "data/column_blocks.h"
#include "geometry/angles.h"
#include "hitting/greedy.h"
#include "topk/score_kernel.h"
#include "topk/scoring.h"

namespace rrr {
namespace baseline {

namespace {

/// Greedy set cover specialized to "items cover functions": returns at most
/// `budget` item ids covering every function whose admissible threshold is
/// met, or an empty vector when the budget is insufficient.
std::vector<int32_t> GreedyCoverWithinBudget(
    const std::vector<std::vector<float>>& scores,  // [function][item]
    const std::vector<float>& thresholds,           // per function
    size_t budget) {
  const size_t num_funcs = scores.size();
  const size_t n = scores.empty() ? 0 : scores[0].size();
  std::vector<char> covered(num_funcs, 0);
  size_t remaining = num_funcs;
  std::vector<int32_t> chosen;
  while (remaining > 0) {
    if (chosen.size() >= budget) return {};
    int32_t best_item = -1;
    size_t best_gain = 0;
    for (size_t i = 0; i < n; ++i) {
      size_t gain = 0;
      for (size_t j = 0; j < num_funcs; ++j) {
        if (!covered[j] && scores[j][i] >= thresholds[j]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_item = static_cast<int32_t>(i);
      }
    }
    if (best_item < 0) return {};  // some function unreachable at this x
    chosen.push_back(best_item);
    for (size_t j = 0; j < num_funcs; ++j) {
      if (!covered[j] &&
          scores[j][static_cast<size_t>(best_item)] >= thresholds[j]) {
        covered[j] = 1;
        --remaining;
      }
    }
  }
  return chosen;
}

}  // namespace

Result<HdRrmsResult> SolveHdRrms(const data::Dataset& dataset,
                                 size_t size_budget,
                                 const HdRrmsOptions& options) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (size_budget == 0) return Status::InvalidArgument("size budget is 0");
  const size_t n = dataset.size();
  const size_t d = dataset.dims();

  HdRrmsResult out;
  if (size_budget >= n) {
    out.representative.resize(n);
    std::iota(out.representative.begin(), out.representative.end(), 0);
    out.achieved_ratio = 0.0;
    return out;
  }

  // Discretize the function space.
  std::vector<geometry::Vec> functions;
  const size_t requested = std::max<size_t>(1, options.num_functions);
  if (options.discretization == Discretization::kRandomSphere || d == 1) {
    Rng rng(options.seed);
    functions.reserve(requested);
    for (size_t j = 0; j < requested; ++j) {
      functions.push_back(rng.UnitWeightVector(static_cast<int>(d)));
    }
  } else {
    // Regular grid over the angle cube [0, pi/2]^(d-1): the largest
    // per-axis resolution g with g^(d-1) <= requested.
    const size_t axes = d - 1;
    size_t g = 1;
    while (true) {
      size_t cells = 1;
      bool overflow = false;
      for (size_t a = 0; a < axes; ++a) {
        cells *= g + 1;
        if (cells > requested) {
          overflow = true;
          break;
        }
      }
      if (overflow) break;
      ++g;
    }
    g = std::max<size_t>(2, g);
    std::vector<size_t> idx(axes, 0);
    while (true) {
      geometry::Vec angles(axes);
      for (size_t a = 0; a < axes; ++a) {
        angles[a] = geometry::kHalfPi *
                    (static_cast<double>(idx[a]) / static_cast<double>(g - 1));
      }
      functions.push_back(geometry::AnglesToWeights(angles));
      // Odometer increment.
      size_t a = 0;
      for (; a < axes; ++a) {
        if (++idx[a] < g) break;
        idx[a] = 0;
      }
      if (a == axes) break;
    }
  }
  const size_t num_funcs = functions.size();

  // Materialize the score matrix once: one blocked-kernel pass per
  // function (double scores bit-identical to the row loop, demoted to
  // float afterwards exactly as before).
  Result<data::ColumnBlocks> mirror = data::ColumnBlocks::Build(dataset, 1);
  RRR_CHECK(mirror.ok()) << mirror.status().ToString();
  std::vector<double> row_scores(n);
  std::vector<std::vector<float>> scores(num_funcs,
                                         std::vector<float>(n, 0.0f));
  std::vector<float> max_score(num_funcs, 0.0f);
  for (size_t j = 0; j < num_funcs; ++j) {
    topk::LinearFunction f(functions[j]);
    topk::ScoreAll(f, *mirror, row_scores.data());
    for (size_t i = 0; i < n; ++i) {
      const auto s = static_cast<float>(row_scores[i]);
      scores[j][i] = s;
      max_score[j] = std::max(max_score[j], s);
    }
  }

  // Binary search the max regret-ratio x; x = 1 admits every tuple for
  // every function, so the upper bracket is always feasible.
  double lo = 0.0;
  double hi = 1.0;
  std::vector<float> thresholds(num_funcs);
  std::vector<int32_t> best;
  double best_ratio = 1.0;
  for (size_t step = 0; step < options.binary_search_steps; ++step) {
    const double x = 0.5 * (lo + hi);
    for (size_t j = 0; j < num_funcs; ++j) {
      thresholds[j] = static_cast<float>((1.0 - x) * max_score[j]);
    }
    std::vector<int32_t> candidate =
        GreedyCoverWithinBudget(scores, thresholds, size_budget);
    if (!candidate.empty()) {
      best = std::move(candidate);
      best_ratio = x;
      hi = x;
    } else {
      lo = x;
    }
  }
  if (best.empty()) {
    // Even x ~ 1 failed within the step budget; x = 1 always succeeds.
    for (size_t j = 0; j < num_funcs; ++j) thresholds[j] = 0.0f;
    best = GreedyCoverWithinBudget(scores, thresholds, size_budget);
    best_ratio = 1.0;
    if (best.empty()) return Status::Internal("x=1 cover must be feasible");
  }
  std::sort(best.begin(), best.end());
  out.representative = std::move(best);
  out.achieved_ratio = best_ratio;
  return out;
}

}  // namespace baseline
}  // namespace rrr
