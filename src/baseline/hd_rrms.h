#ifndef RRR_BASELINE_HD_RRMS_H_
#define RRR_BASELINE_HD_RRMS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace rrr {
namespace baseline {

/// How the continuous function space is discretized.
enum class Discretization {
  /// Uniform random sample of the weight sphere (Marsaglia), seeded.
  kRandomSphere,
  /// Deterministic regular grid over the (d-1)-dimensional angle cube —
  /// the structured discretization of the published HD-RRMS. The grid
  /// resolution is the largest g with g^(d-1) <= num_functions.
  kAngleGrid,
};

/// Tuning for SolveHdRrms.
struct HdRrmsOptions {
  /// Size of the function-space discretization.
  size_t num_functions = 300;
  /// Binary-search iterations on the regret ratio (halves the bracket each
  /// step; 20 steps resolve the ratio to ~1e-6).
  size_t binary_search_steps = 20;
  uint64_t seed = 31;
  Discretization discretization = Discretization::kRandomSphere;
};

/// Output of SolveHdRrms.
struct HdRrmsResult {
  /// Chosen tuple ids, sorted; size <= the requested budget.
  std::vector<int32_t> representative;
  /// Smallest feasible maximum regret-ratio found over the discretized
  /// functions.
  double achieved_ratio = 0.0;
};

/// \brief Re-implementation of HD-RRMS [Asudeh et al., SIGMOD 2017], the
/// paper's comparison baseline (Section 6.1): a regret-ratio minimizing set
/// of at most `size_budget` tuples.
///
/// Discretizes the linear function space with a uniform sample, then
/// binary-searches the regret ratio x: for a candidate x, tuple i
/// "satisfies" function f when score_f(i) >= (1 - x) * max_score_f, and a
/// greedy hitting set over the per-function satisfier sets decides whether
/// x is achievable within the budget. This gives the same controllable
/// additive approximation structure as the published algorithm.
///
/// Note what this baseline does NOT promise: any bound on rank-regret. The
/// paper's Figures 18-28 (and our reproductions) show its rank-regret can
/// approach n even while its score regret is tiny.
Result<HdRrmsResult> SolveHdRrms(const data::Dataset& dataset,
                                 size_t size_budget,
                                 const HdRrmsOptions& options = {});

}  // namespace baseline
}  // namespace rrr

#endif  // RRR_BASELINE_HD_RRMS_H_
