#ifndef RRR_COMMON_PARALLEL_H_
#define RRR_COMMON_PARALLEL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace rrr {

/// Number of hardware threads, never less than 1 (hardware_concurrency may
/// report 0 on exotic platforms).
size_t HardwareConcurrency();

/// Resolves a `threads` option field: 0 means "auto" (hardware concurrency),
/// any other value is taken literally. Every parallel-capable option struct
/// in the library uses this convention, so `threads = 1` always selects the
/// serial path and `threads = 0` scales to the machine.
size_t ResolveThreads(size_t threads_option);

/// \brief Fixed set of worker threads draining a shared FIFO task queue.
///
/// Deliberately work-stealing-free and dependency-light: one mutex, one
/// condition variable, one deque. Tasks must not block on other pool tasks
/// (ParallelFor guarantees this by running nested calls serially on the
/// calling worker). Workers are created lazily via EnsureWorkers so a
/// process that never goes parallel never spawns a thread.
class ThreadPool {
 public:
  /// Creates the pool with `num_threads` workers (may be 0; grow later).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Current worker count.
  size_t size() const;

  /// Grows the pool to at least `n` workers (capped at kMaxWorkers).
  void EnsureWorkers(size_t n);

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// True when the calling thread is one of this process's pool workers
  /// (used by ParallelFor to refuse nested parallelism).
  static bool OnWorkerThread();

  /// Lazily-constructed process-wide pool shared by every ParallelFor call.
  /// Sized on demand; destroyed at process exit.
  static ThreadPool& Shared();

  /// Hard cap on workers in one pool; a guard against runaway
  /// oversubscription, far above any sane `threads` setting.
  static constexpr size_t kMaxWorkers = 256;

 private:
  void WorkerLoop();

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ RRR_GUARDED_BY(mu_);
  std::vector<std::thread> workers_ RRR_GUARDED_BY(mu_);
  bool stop_ RRR_GUARDED_BY(mu_) = false;
};

/// \brief Runs body(begin, end) over disjoint chunks covering [0, n),
/// distributing chunks dynamically over `threads` threads (the caller
/// participates, so `threads` counts the caller).
///
/// Chunks are at least `grain` indices; scheduling is dynamic (an atomic
/// cursor), so the assignment of chunks to threads is nondeterministic but
/// the set of chunks is fixed. Callers that write results indexed by `i`
/// get deterministic output regardless of thread count.
///
/// Serial cases — threads <= 1, n <= grain, or a call made from inside a
/// pool worker (nested parallelism) — run body(0, n) on the calling thread
/// and touch no synchronization at all.
void ParallelForChunked(size_t threads, size_t n, size_t grain,
                        const std::function<void(size_t, size_t)>& body);

/// Element-wise convenience wrapper: body(i) for i in [0, n).
void ParallelFor(size_t threads, size_t n,
                 const std::function<void(size_t)>& body);

}  // namespace rrr

#endif  // RRR_COMMON_PARALLEL_H_
