#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace rrr {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  RRR_CHECK(lo <= hi) << "UniformInt: lo=" << lo << " > hi=" << hi;
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Exponential(double rate) {
  RRR_CHECK(rate > 0.0) << "Exponential: non-positive rate " << rate;
  std::exponential_distribution<double> dist(rate);
  return dist(engine_);
}

double Rng::LogNormal(double mu, double sigma) {
  std::lognormal_distribution<double> dist(mu, sigma);
  return dist(engine_);
}

std::vector<double> Rng::UnitWeightVector(int dims) {
  RRR_CHECK(dims >= 1) << "UnitWeightVector: dims=" << dims;
  std::vector<double> w(static_cast<size_t>(dims));
  double norm = 0.0;
  do {
    norm = 0.0;
    for (auto& wi : w) {
      wi = std::fabs(Gaussian());
      norm += wi * wi;
    }
  } while (norm == 0.0);  // astronomically unlikely; retry keeps the contract
  norm = std::sqrt(norm);
  for (auto& wi : w) wi /= norm;
  return w;
}

}  // namespace rrr
