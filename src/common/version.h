#ifndef RRR_COMMON_VERSION_H_
#define RRR_COMMON_VERSION_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace rrr {

/// \brief Identity token of one immutable dataset version.
///
/// A version names a specific row-state of a dataset: `origin` identifies
/// the lineage (one DynamicDataset, or one standalone PreparedDataset) and
/// `ordinal` counts the updates applied within it. Two PreparedDatasets
/// share a token iff they hold bit-identical rows produced by the same
/// update history, which is what makes the token a sound memo key: any
/// cache entry keyed by a DatasetVersion can never serve a result computed
/// against different data ("a memo hit from a previous version is a bug,
/// not a cache win").
///
/// Tokens are assigned, never reused: every origin comes from a
/// process-wide atomic counter, and ordinals only grow within an origin.
/// The zero token (origin == 0) is reserved for "unversioned" — it never
/// equals an assigned token.
struct DatasetVersion {
  uint64_t origin = 0;
  uint64_t ordinal = 0;

  bool assigned() const { return origin != 0; }

  bool operator==(const DatasetVersion& other) const {
    return origin == other.origin && ordinal == other.ordinal;
  }
  bool operator!=(const DatasetVersion& other) const {
    return !(*this == other);
  }

  /// "v<origin>.<ordinal>", or "v-unversioned" for the zero token.
  std::string ToString() const {
    if (!assigned()) return "v-unversioned";
    return "v" + std::to_string(origin) + "." + std::to_string(ordinal);
  }
};

/// Fresh lineage: a token with a never-before-seen origin, ordinal 0.
/// Thread-safe; every call returns a distinct origin.
inline DatasetVersion NewDatasetOrigin() {
  // rrr-lockfree: process-wide origin counter, fetch_add is the protocol
  static std::atomic<uint64_t> next{1};
  return DatasetVersion{next.fetch_add(1, std::memory_order_relaxed), 0};
}

}  // namespace rrr

#endif  // RRR_COMMON_VERSION_H_
