#ifndef RRR_COMMON_LOGGING_H_
#define RRR_COMMON_LOGGING_H_

#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace rrr {

/// \brief Severity of a log line; kFatal aborts the process after logging.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// \brief Destination override for emitted log lines.
///
/// The sink receives each line fully formatted — the
/// "[LEVEL date time tid file:line]" prefix included, no trailing
/// newline — *after* the threshold filter, and must be safe to invoke
/// from any thread (the logger serializes nothing beyond its own sink
/// lookup). Tests install a capturing sink; the server routes lines to
/// its own stream. kFatal lines still go to stderr (and abort) even with
/// a sink installed, so crash context is never lost in a sink buffer.
using LogSink = std::function<void(LogLevel level, const std::string& line)>;

/// Installs `sink` as the log destination; a null sink restores the
/// default (stderr). Thread-safe; affects lines emitted after the call.
void SetLogSink(LogSink sink);

namespace internal {

/// Minimum level that is emitted. Initialized from the RRR_LOG_LEVEL
/// environment variable ("debug", "info", "warning", "error"); defaults to
/// kWarning so library users are not spammed.
LogLevel GetLogThreshold();

/// Overrides the emit threshold (used by tests).
void SetLogThreshold(LogLevel level);

/// \brief Stream-style message collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// \brief Sink that swallows streamed values when a log line is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Turns a streamed LogMessage chain into void so it can sit in the false
/// branch of the ternary inside RRR_CHECK (glog's voidify idiom).
class LogMessageVoidify {
 public:
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace rrr

#define RRR_LOG_INTERNAL(level) \
  ::rrr::internal::LogMessage(level, __FILE__, __LINE__)

#define RRR_SEVERITY_DEBUG ::rrr::LogLevel::kDebug
#define RRR_SEVERITY_INFO ::rrr::LogLevel::kInfo
#define RRR_SEVERITY_WARNING ::rrr::LogLevel::kWarning
#define RRR_SEVERITY_ERROR ::rrr::LogLevel::kError
#define RRR_SEVERITY_FATAL ::rrr::LogLevel::kFatal

/// Usage: RRR_LOG(INFO) << "message " << value;
#define RRR_LOG(severity) RRR_LOG_INTERNAL(RRR_SEVERITY_##severity)

/// Aborts with a message when `cond` is false. Active in all build types:
/// used to enforce API contracts (Google style: crash on programmer error).
/// Supports streaming extra context: RRR_CHECK(x > 0) << "x=" << x;
#define RRR_CHECK(cond)                                            \
  (cond) ? (void)0                                                 \
         : ::rrr::internal::LogMessageVoidify() &                  \
               ::rrr::internal::LogMessage(::rrr::LogLevel::kFatal, \
                                           __FILE__, __LINE__)     \
                   << "Check failed: " #cond " "

#define RRR_CHECK_OK(status_expr)                                    \
  do {                                                               \
    const ::rrr::Status _rrr_s = (status_expr);                      \
    RRR_CHECK(_rrr_s.ok()) << _rrr_s.ToString();                     \
  } while (false)

/// Debug-only check; compiles to nothing in NDEBUG builds.
#ifdef NDEBUG
#define RRR_DCHECK(cond) \
  while (false) ::rrr::internal::NullStream()
#else
#define RRR_DCHECK(cond) RRR_CHECK(cond)
#endif

#endif  // RRR_COMMON_LOGGING_H_
