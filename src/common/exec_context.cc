#include "common/exec_context.h"

#include <limits>

namespace rrr {

Deadline Deadline::After(double seconds) {
  return At(std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds)));
}

Deadline Deadline::At(std::chrono::steady_clock::time_point when) {
  Deadline d;
  d.set_ = true;
  d.when_ = when;
  return d;
}

double Deadline::remaining_seconds() const {
  if (!set_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(when_ - std::chrono::steady_clock::now())
      .count();
}

Status ExecContext::CheckPreempted() const {
  if (cancel.cancelled()) {
    return Status::Cancelled("operation cancelled by caller");
  }
  if (deadline.expired()) {
    return Status::DeadlineExceeded("operation deadline expired");
  }
  return Status::OK();
}

Status PreemptionGate::Check() {
  if (!status_.ok()) return status_;
  if (ctx_->cancel.cancelled()) {
    status_ = Status::Cancelled("operation cancelled by caller");
    return status_;
  }
  if (count_++ % stride_ == 0 && ctx_->deadline.expired()) {
    status_ = Status::DeadlineExceeded("operation deadline expired");
  }
  return status_;
}

}  // namespace rrr
