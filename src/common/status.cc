#include "common/status.h"

namespace rrr {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIoError:
      return "io-error";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace rrr
