#include "common/failpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"

namespace rrr {

namespace {

// Accepts both "io_error" and "io-error" spellings (the wire protocol is
// snake_case, StatusCodeToString is dash-case).
Result<StatusCode> ParseStatusCode(std::string_view name) {
  std::string normalized(name);
  std::replace(normalized.begin(), normalized.end(), '_', '-');
  static constexpr StatusCode kCodes[] = {
      StatusCode::kInvalidArgument,   StatusCode::kNotFound,
      StatusCode::kOutOfRange,        StatusCode::kFailedPrecondition,
      StatusCode::kResourceExhausted, StatusCode::kUnimplemented,
      StatusCode::kInternal,          StatusCode::kIoError,
      StatusCode::kCancelled,         StatusCode::kDeadlineExceeded,
  };
  for (StatusCode code : kCodes) {
    if (normalized == StatusCodeToString(code)) return code;
  }
  return Status::InvalidArgument("unknown status code in failpoint spec: " +
                                 std::string(name));
}

Result<uint64_t> ParseU64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty number");
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad number in failpoint spec: " +
                                     std::string(s));
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

Status MakeInjected(StatusCode code, const char* site) {
  return Status(code, std::string("failpoint ") + site);
}

}  // namespace

std::atomic<bool> FailpointRegistry::any_armed_{false};

FailpointRegistry::FailpointRegistry() {
  const char* env = std::getenv("RRR_FAILPOINTS");
  if (env != nullptr && *env != '\0') {
    Status applied = ConfigureFromString(env);
    if (!applied.ok()) {
      RRR_LOG(WARNING) << "ignoring malformed RRR_FAILPOINTS: "
                       << applied.ToString();
    } else {
      RRR_LOG(INFO) << "failpoints armed from RRR_FAILPOINTS: " << env;
    }
  }
}

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

Result<FailpointRegistry::Policy> FailpointRegistry::ParsePolicy(
    const std::string& spec) {
  std::string body(Trim(spec));
  Policy policy;
  const size_t at = body.find('@');
  if (at != std::string::npos) {
    RRR_ASSIGN_OR_RETURN(policy.code, ParseStatusCode(body.substr(at + 1)));
    body.resize(at);
  }
  if (body == "off") {
    policy.kind = Policy::Kind::kOff;
    return policy;
  }
  if (body == "once") {
    policy.kind = Policy::Kind::kOnce;
    return policy;
  }
  if (body.rfind("every-", 0) == 0) {
    policy.kind = Policy::Kind::kEveryN;
    RRR_ASSIGN_OR_RETURN(policy.every_n, ParseU64(body.substr(6)));
    if (policy.every_n == 0) {
      return Status::InvalidArgument("every-N requires N >= 1: " + spec);
    }
    return policy;
  }
  if (body.rfind("prob-", 0) == 0) {
    policy.kind = Policy::Kind::kProbability;
    std::string rest = body.substr(5);
    const size_t seed_pos = rest.find("-seed-");
    if (seed_pos != std::string::npos) {
      RRR_ASSIGN_OR_RETURN(policy.seed, ParseU64(rest.substr(seed_pos + 6)));
      rest.resize(seed_pos);
    }
    RRR_ASSIGN_OR_RETURN(policy.probability, ParseDouble(rest));
    if (policy.probability < 0.0 || policy.probability > 1.0) {
      return Status::InvalidArgument("prob-P requires P in [0,1]: " + spec);
    }
    return policy;
  }
  if (body.rfind("delay-", 0) == 0) {
    if (at != std::string::npos) {
      return Status::InvalidArgument("delay takes no status code: " + spec);
    }
    policy.kind = Policy::Kind::kDelay;
    RRR_ASSIGN_OR_RETURN(policy.delay_ms, ParseU64(body.substr(6)));
    return policy;
  }
  return Status::InvalidArgument("unrecognized failpoint spec: " + spec);
}

std::string FailpointRegistry::PolicyToString(const Policy& policy) {
  std::string out;
  switch (policy.kind) {
    case Policy::Kind::kOff:
      return "off";
    case Policy::Kind::kOnce:
      out = "once";
      break;
    case Policy::Kind::kEveryN:
      out = StrFormat("every-%llu",
                      static_cast<unsigned long long>(policy.every_n));
      break;
    case Policy::Kind::kProbability:
      out = StrFormat("prob-%g-seed-%llu", policy.probability,
                      static_cast<unsigned long long>(policy.seed));
      break;
    case Policy::Kind::kDelay:
      return StrFormat("delay-%llu",
                       static_cast<unsigned long long>(policy.delay_ms));
  }
  out += '@';
  // Wire-friendly snake_case spelling.
  std::string code(StatusCodeToString(policy.code));
  std::replace(code.begin(), code.end(), '-', '_');
  out += code;
  return out;
}

Status FailpointRegistry::Arm(const std::string& site,
                              const std::string& spec) {
  Policy policy;
  RRR_ASSIGN_OR_RETURN(policy, ParsePolicy(spec));
  return Arm(site, policy);
}

Status FailpointRegistry::Arm(const std::string& site, const Policy& policy) {
  if (site.empty() || site.find_first_of(" =;") != std::string::npos) {
    return Status::InvalidArgument("bad failpoint site name: " + site);
  }
  MutexLock lock(mu_);
  Site& state = sites_[site];
  state.policy = policy;
  if (policy.kind == Policy::Kind::kProbability) {
    state.rng = Rng(policy.seed);
  }
  RecountArmed();
  return Status::OK();
}

bool FailpointRegistry::Disarm(const std::string& site) {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  const bool was_armed =
      it != sites_.end() && it->second.policy.kind != Policy::Kind::kOff;
  if (it != sites_.end()) {
    it->second.policy = Policy{};
  }
  RecountArmed();
  return was_armed;
}

void FailpointRegistry::DisarmAll() {
  MutexLock lock(mu_);
  sites_.clear();
  RecountArmed();
}

Status FailpointRegistry::ConfigureFromString(const std::string& config) {
  for (const std::string& part : Split(config, ';')) {
    std::string_view entry = Trim(part);
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("failpoint config entry needs site=spec: " +
                                     std::string(entry));
    }
    RRR_RETURN_IF_ERROR(Arm(std::string(Trim(entry.substr(0, eq))),
                            std::string(Trim(entry.substr(eq + 1)))));
  }
  return Status::OK();
}

std::vector<FailpointRegistry::SiteReport> FailpointRegistry::List() const {
  std::vector<SiteReport> reports;
  {
    MutexLock lock(mu_);
    reports.reserve(sites_.size());
    for (const auto& [name, state] : sites_) {
      SiteReport report;
      report.site = name;
      report.policy = PolicyToString(state.policy);
      report.evaluations = state.evaluations;
      report.injections = state.injections;
      reports.push_back(std::move(report));
    }
  }
  std::sort(reports.begin(), reports.end(),
            [](const SiteReport& a, const SiteReport& b) {
              return a.site < b.site;
            });
  return reports;
}

Status FailpointRegistry::Evaluate(const char* site) {
  uint64_t sleep_ms = 0;
  Status injected = Status::OK();
  {
    MutexLock lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return Status::OK();
    Site& state = it->second;
    if (state.policy.kind == Policy::Kind::kOff) return Status::OK();
    ++state.evaluations;
    switch (state.policy.kind) {
      case Policy::Kind::kOff:
        break;
      case Policy::Kind::kOnce:
        injected = MakeInjected(state.policy.code, site);
        state.policy = Policy{};  // self-disarm
        ++state.injections;
        RecountArmed();
        break;
      case Policy::Kind::kEveryN:
        if (state.evaluations % state.policy.every_n == 0) {
          injected = MakeInjected(state.policy.code, site);
          ++state.injections;
        }
        break;
      case Policy::Kind::kProbability:
        if (state.rng.Bernoulli(state.policy.probability)) {
          injected = MakeInjected(state.policy.code, site);
          ++state.injections;
        }
        break;
      case Policy::Kind::kDelay:
        sleep_ms = state.policy.delay_ms;
        ++state.injections;
        break;
    }
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return injected;
}

void FailpointRegistry::RecountArmed() {
  bool armed = false;
  for (const auto& [name, state] : sites_) {
    if (state.policy.kind != Policy::Kind::kOff) {
      armed = true;
      break;
    }
  }
  any_armed_.store(armed, std::memory_order_relaxed);
}

}  // namespace rrr
