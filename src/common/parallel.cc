#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/logging.h"

namespace rrr {

namespace {

/// Set for the lifetime of a pool worker thread; lets ParallelFor detect
/// nested parallelism and degrade to serial instead of deadlocking on a
/// pool whose workers are all busy running the outer loop.
thread_local bool t_on_pool_worker = false;

}  // namespace

size_t HardwareConcurrency() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

size_t ResolveThreads(size_t threads_option) {
  if (threads_option == 0) return HardwareConcurrency();
  return std::min(threads_option, ThreadPool::kMaxWorkers);
}

ThreadPool::ThreadPool(size_t num_threads) { EnsureWorkers(num_threads); }

ThreadPool::~ThreadPool() {
  // Swap the workers out under the lock, then join them unlocked: joining
  // while holding mu_ would deadlock against WorkerLoop's queue waits.
  std::vector<std::thread> workers;
  {
    MutexLock lock(mu_);
    stop_ = true;
    workers.swap(workers_);
  }
  cv_.NotifyAll();
  for (std::thread& w : workers) w.join();
}

size_t ThreadPool::size() const {
  MutexLock lock(mu_);
  return workers_.size();
}

void ThreadPool::EnsureWorkers(size_t n) {
  n = std::min(n, kMaxWorkers);
  MutexLock lock(mu_);
  RRR_CHECK(!stop_) << "EnsureWorkers on a stopped pool";
  while (workers_.size() < n) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    RRR_CHECK(!stop_) << "Submit on a stopped pool";
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

bool ThreadPool::OnWorkerThread() { return t_on_pool_worker; }

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(0);  // leaked: outlives exit races
  return *pool;
}

void ThreadPool::WorkerLoop() {
  t_on_pool_worker = true;
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one ParallelForChunked call: a chunk cursor plus a
/// countdown latch so the caller can wait for exactly its own helpers.
struct ParallelForState {
  // rrr-lockfree: dynamic chunk cursor, fetch_add is the whole protocol
  std::atomic<size_t> next{0};
  size_t n = 0;
  size_t grain = 1;
  const std::function<void(size_t, size_t)>* body = nullptr;

  Mutex mu;
  CondVar done_cv;
  size_t helpers_active RRR_GUARDED_BY(mu) = 0;

  void RunChunks() {
    while (true) {
      const size_t begin = next.fetch_add(grain);
      if (begin >= n) return;
      (*body)(begin, std::min(begin + grain, n));
    }
  }
};

}  // namespace

void ParallelForChunked(size_t threads, size_t n, size_t grain,
                        const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  grain = std::max<size_t>(grain, 1);
  if (threads <= 1 || n <= grain || ThreadPool::OnWorkerThread()) {
    body(0, n);
    return;
  }

  // Never more helpers than chunks-1: the caller runs chunks too.
  const size_t max_chunks = (n + grain - 1) / grain;
  const size_t helpers =
      std::min({threads - 1, max_chunks - 1, ThreadPool::kMaxWorkers});

  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  state->grain = grain;
  state->body = &body;
  {
    MutexLock lock(state->mu);
    state->helpers_active = helpers;
  }

  ThreadPool& pool = ThreadPool::Shared();
  pool.EnsureWorkers(helpers);
  for (size_t h = 0; h < helpers; ++h) {
    pool.Submit([state] {
      state->RunChunks();
      MutexLock lock(state->mu);
      if (--state->helpers_active == 0) state->done_cv.NotifyAll();
    });
  }

  state->RunChunks();
  MutexLock lock(state->mu);
  while (state->helpers_active != 0) state->done_cv.Wait(state->mu);
}

void ParallelFor(size_t threads, size_t n,
                 const std::function<void(size_t)>& body) {
  ParallelForChunked(threads, n, 1, [&body](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) body(i);
  });
}

}  // namespace rrr
