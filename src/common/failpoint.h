#ifndef RRR_COMMON_FAILPOINT_H_
#define RRR_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace rrr {

/// \brief Fault-injection registry: named sites threaded through every
/// fallible seam (`RRR_FAILPOINT("data.csv.read")`), armed at runtime with
/// a per-site policy so tests and the chaos harness can provoke error
/// paths deterministically.
///
/// \par Zero cost when disabled
/// An unarmed process pays ONE relaxed atomic load per site evaluation
/// (the global any-armed flag); the registry lock and the per-site policy
/// table are only consulted while at least one site is armed. Arming is a
/// test/chaos-time act — production traffic never takes the slow path.
///
/// \par Policy grammar (spec strings)
///   off                        disarm the site
///   once[@CODE]                inject exactly once, then self-disarm
///   every-N[@CODE]             inject on every Nth evaluation (N >= 1)
///   prob-P[-seed-S][@CODE]     inject with probability P in [0,1],
///                              drawn from a SEEDED rng (default seed 1)
///                              so chaos schedules replay identically
///   delay-MS                   sleep MS milliseconds, then pass
///
/// CODE is a snake_case StatusCode name ("io_error", "internal",
/// "resource_exhausted", ...; default io_error). Injected errors carry the
/// message `failpoint <site>` so they are attributable in logs and replies.
///
/// \par Configuration surfaces
///  - env: `RRR_FAILPOINTS="site=spec;site2=spec"` parsed on first use
///    (rrr_serverd and every test binary honor it);
///  - wire: the `FAILPOINT` admin verb of rrr_serverd
///    (service/protocol.h) arms a live server for the chaos suite;
///  - code: Arm/Disarm/DisarmAll below.
///
/// \par Naming convention
/// `<layer>.<component>.<operation>`, lower-case, dot-separated:
/// "data.csv.read", "core.artifact.column_blocks",
/// "service.registry.prepare", "service.socket.write". List() reports
/// every site name evaluated at least once while armed, so schedules can
/// be written against real names.
class FailpointRegistry {
 public:
  /// Per-site injection policy; parsed from the spec grammar above.
  struct Policy {
    enum class Kind { kOff, kOnce, kEveryN, kProbability, kDelay };
    Kind kind = Kind::kOff;
    StatusCode code = StatusCode::kIoError;
    uint64_t every_n = 1;      // kEveryN period
    double probability = 0.0;  // kProbability
    uint64_t seed = 1;         // kProbability rng seed
    uint64_t delay_ms = 0;     // kDelay
  };

  /// One armed (or previously armed) site's state, for FAILPOINT list /
  /// post-mortems.
  struct SiteReport {
    std::string site;
    std::string policy;      // canonical spec string ("off" once drained)
    uint64_t evaluations = 0;  // times the site ran while armed
    uint64_t injections = 0;   // times it actually injected
  };

  /// The process-wide registry (env-configured on first call).
  static FailpointRegistry& Instance();

  /// Fast-path guard: true iff any site is currently armed. A single
  /// relaxed load — the entire disabled-path cost of a failpoint site.
  static bool AnyArmed() {
    return any_armed_.load(std::memory_order_relaxed);
  }

  /// Slow path behind AnyArmed(): applies `site`'s policy. OK when the
  /// site is unarmed or the policy chooses not to fire this time; the
  /// configured error Status when it does. kDelay sleeps and returns OK.
  Status Evaluate(const char* site);

  /// Arms `site` with a parsed policy spec; `off` disarms. InvalidArgument
  /// on a malformed spec.
  Status Arm(const std::string& site, const std::string& spec);
  Status Arm(const std::string& site, const Policy& policy);

  /// Disarms one site; true iff it was armed.
  bool Disarm(const std::string& site);

  /// Disarms everything and forgets all site state (test isolation).
  void DisarmAll();

  /// Applies `config` = `site=spec[;site=spec...]` (the RRR_FAILPOINTS
  /// grammar; ';' separated, blanks ignored). First error aborts the rest.
  Status ConfigureFromString(const std::string& config);

  /// Every site with recorded state, name-sorted.
  std::vector<SiteReport> List() const;

  /// Parses one policy spec; InvalidArgument with the offending token on
  /// failure.
  static Result<Policy> ParsePolicy(const std::string& spec);

  /// Canonical spec string for a policy (ParsePolicy's inverse).
  static std::string PolicyToString(const Policy& policy);

 private:
  struct Site {
    Policy policy;
    uint64_t evaluations = 0;
    uint64_t injections = 0;
    Rng rng{1};  // kProbability draws; reseeded from the policy on Arm
  };

  FailpointRegistry();

  void RecountArmed() RRR_REQUIRES(mu_);

  // rrr-lockfree: written under mu_ (RecountArmed), read lock-free by
  // every RRR_FAILPOINT fast path; relaxed is enough because arming
  // happens-before the traffic a test injects into.
  static std::atomic<bool> any_armed_;

  mutable Mutex mu_;
  std::unordered_map<std::string, Site> sites_ RRR_GUARDED_BY(mu_);
};

}  // namespace rrr

/// \brief Fault-injection site for functions returning Status or
/// Result<T>: when armed and firing, returns the injected Status out of
/// the enclosing function. Disabled cost: one relaxed atomic load.
#define RRR_FAILPOINT(site)                                              \
  do {                                                                   \
    if (::rrr::FailpointRegistry::AnyArmed()) {                          \
      ::rrr::Status _rrr_fp =                                            \
          ::rrr::FailpointRegistry::Instance().Evaluate(site);           \
      if (!_rrr_fp.ok()) return _rrr_fp;                                 \
    }                                                                    \
  } while (false)

/// \brief Expression form for call sites that fold the Status themselves
/// (socket loops mapping to errno-style returns, constructors).
#define RRR_FAILPOINT_STATUS(site)                                       \
  (::rrr::FailpointRegistry::AnyArmed()                                  \
       ? ::rrr::FailpointRegistry::Instance().Evaluate(site)             \
       : ::rrr::Status::OK())

#endif  // RRR_COMMON_FAILPOINT_H_
