#ifndef RRR_COMMON_STATUS_H_
#define RRR_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace rrr {

/// \brief Machine-readable category of an operation outcome.
///
/// Mirrors the RocksDB/Arrow convention: functions that can fail return a
/// Status (or Result<T>) instead of throwing; kOk means success and every
/// other code carries a human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kResourceExhausted = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIoError = 8,
  /// The caller's CancellationToken was triggered before or during the
  /// operation; no partial output was produced.
  kCancelled = 9,
  /// The caller's Deadline expired before or during the operation; no
  /// partial output was produced.
  kDeadlineExceeded = 10,
};

/// \brief Returns the canonical lower-case name of a status code
/// (e.g. "invalid-argument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: a code plus an optional message.
///
/// Status is cheap to copy for the success case (no allocation) and is
/// intended to be consumed via ok() / code() / message(). The RRR_RETURN_IF_
/// ERROR macro propagates failures up the call stack.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string msg_;
};

}  // namespace rrr

/// Propagates a non-OK Status to the caller.
#define RRR_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::rrr::Status _rrr_status = (expr);             \
    if (!_rrr_status.ok()) return _rrr_status;      \
  } while (false)

#endif  // RRR_COMMON_STATUS_H_
