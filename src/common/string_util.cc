#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace rrr {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                          s[b] == '\n')) {
    ++b;
  }
  size_t e = s.size();
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty numeric field");
  // strtod needs a NUL-terminated buffer.
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: '" + buf + "'");
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace rrr
