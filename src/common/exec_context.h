#ifndef RRR_COMMON_EXEC_CONTEXT_H_
#define RRR_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>

#include "common/status.h"

namespace rrr {

class CancellationSource;

/// \brief Read-only view of a cancellation flag owned by a
/// CancellationSource.
///
/// Tokens are cheap to copy and safe to read from any thread; a
/// default-constructed token is never cancelled (the "no cancellation"
/// case, so APIs can take an ExecContext by value without forcing callers
/// to allocate a source).
class CancellationToken {
 public:
  /// Null token: cancelled() is always false.
  CancellationToken() = default;

  /// True once the owning source has requested cancellation.
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  // rrr-lockfree: read-only view of the source's sticky flag
  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// \brief Owner of a cancellation flag: hand token() to long-running calls
/// and RequestCancel() from any thread to make them return
/// Status::Cancelled at their next preemption point.
///
/// Cancellation is one-way and sticky — there is no reset; create a new
/// source per logical operation.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Flips the flag; every token observes it on its next check.
  void RequestCancel() { flag_->store(true, std::memory_order_release); }

  bool cancel_requested() const {
    return flag_->load(std::memory_order_acquire);
  }

  CancellationToken token() const { return CancellationToken(flag_); }

 private:
  // rrr-lockfree: sticky one-way cancel flag, release store / acquire load
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// \brief Optional wall-clock budget on an operation, measured against the
/// monotonic clock. A default-constructed Deadline never expires.
class Deadline {
 public:
  /// Unset deadline: expired() is always false.
  Deadline() = default;

  /// Deadline `seconds` from now (negative or zero: already expired).
  static Deadline After(double seconds);

  /// Deadline at an absolute steady-clock time point.
  static Deadline At(std::chrono::steady_clock::time_point when);

  bool has_deadline() const { return set_; }

  /// True once the monotonic clock has passed the deadline.
  bool expired() const {
    return set_ && std::chrono::steady_clock::now() >= when_;
  }

  /// Seconds until expiry; +infinity when unset, <= 0 when expired.
  double remaining_seconds() const;

 private:
  bool set_ = false;
  std::chrono::steady_clock::time_point when_{};
};

/// \brief Per-call execution context threaded through every long-running
/// algorithm entry point: cancellation, deadline, and the worker-thread
/// budget for the internal `common/parallel` loops.
///
/// Default-constructed ExecContext is fully permissive (never preempts,
/// leaves each algorithm's own `threads` option in charge), so adding an
/// `const ExecContext& ctx = {}` parameter is behavior-preserving for
/// existing callers.
struct ExecContext {
  CancellationToken cancel;
  Deadline deadline;
  /// Worker-thread budget: 0 leaves the callee's own `threads` option in
  /// charge; any other value overrides it (1 = serial, N = exactly N).
  size_t threads = 0;

  /// OK while neither the token nor the deadline has fired; otherwise
  /// Cancelled (checked first) or DeadlineExceeded. Algorithms call this at
  /// entry and at clean preemption points, returning the status with no
  /// partial output.
  Status CheckPreempted() const;

  /// The thread count an algorithm should hand to ResolveThreads:
  /// this context's budget when set, else the option's own value.
  size_t ThreadsOver(size_t option_threads) const {
    return threads != 0 ? threads : option_threads;
  }
};

/// \brief Strided preemption checker for hot loops.
///
/// Check() consults the cancellation token on every call (one atomic load)
/// but reads the clock only every `stride` calls, so it is cheap enough for
/// per-event loops like the angular sweep. Once a check fails the gate is
/// sticky: status() keeps returning the first failure.
class PreemptionGate {
 public:
  explicit PreemptionGate(const ExecContext& ctx, size_t stride = 256)
      : ctx_(&ctx), stride_(stride == 0 ? 1 : stride) {}

  /// OK, Cancelled, or DeadlineExceeded (deadline checked every `stride`
  /// calls).
  Status Check();

  /// Callback-loop form: true once preempted; the cause is in status().
  bool Preempted() {
    if (!status_.ok()) return true;
    status_ = Check();
    return !status_.ok();
  }

  const Status& status() const { return status_; }

 private:
  const ExecContext* ctx_;
  size_t stride_;
  size_t count_ = 0;
  Status status_;
};

}  // namespace rrr

#endif  // RRR_COMMON_EXEC_CONTEXT_H_
