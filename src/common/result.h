#ifndef RRR_COMMON_RESULT_H_
#define RRR_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace rrr {

/// \brief Either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
///
/// The accessor contract follows Arrow: ok() must be checked before value();
/// calling value() on an error Result aborts with the status message (this is
/// a programming error, not a runtime condition).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    RRR_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the status: OK() when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Returns the held value; aborts if this Result is an error.
  const T& value() const& {
    RRR_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& value() & {
    RRR_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& value() && {
    RRR_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(repr_));
  }

  /// Returns a copy of the held value, or `fallback` when this Result is an
  /// error. The fallback moves into the return value on the error path, so
  /// passing a large temporary costs one move, not a copy.
  T value_or(T fallback) const& {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }
  /// Rvalue overload: moves the held value out instead of deep-copying it
  /// (`std::move(result).value_or({})` for large representatives).
  T value_or(T fallback) && {
    if (ok()) return std::get<T>(std::move(repr_));
    return fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace rrr

/// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
/// move-assigns the value into `lhs` (which must already be declared).
#define RRR_ASSIGN_OR_RETURN(lhs, rexpr)             \
  do {                                               \
    auto _rrr_result = (rexpr);                      \
    if (!_rrr_result.ok()) return _rrr_result.status(); \
    lhs = std::move(_rrr_result).value();            \
  } while (false)

#endif  // RRR_COMMON_RESULT_H_
