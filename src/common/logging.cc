#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <memory>

#include "common/mutex.h"

namespace rrr {

namespace {

// The installed sink, shared so an emit can keep invoking a sink that a
// concurrent SetLogSink is swapping out. Function-local static (leaked)
// so logging works during static destruction.
Mutex& SinkMutex() {
  static Mutex* mu = new Mutex;
  return *mu;
}

std::shared_ptr<const LogSink>& SinkSlot() {
  static auto* slot = new std::shared_ptr<const LogSink>();
  return *slot;
}

std::shared_ptr<const LogSink> CurrentSink() {
  MutexLock lock(SinkMutex());
  return SinkSlot();
}

/// Small dense per-thread id for log prefixes: assigned on a thread's
/// first log line, far more readable than pthread handles.
size_t ThreadLogId() {
  // rrr-lockfree: monotone id allocator, one fetch_add per thread lifetime
  static std::atomic<size_t> next{1};
  thread_local size_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void SetLogSink(LogSink sink) {
  std::shared_ptr<const LogSink> installed =
      sink == nullptr ? nullptr
                      : std::make_shared<const LogSink>(std::move(sink));
  MutexLock lock(SinkMutex());
  SinkSlot() = std::move(installed);
}

namespace internal {

namespace {

LogLevel ParseLevelFromEnv() {
  const char* env = std::getenv("RRR_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarning;
}

LogLevel& MutableThreshold() {
  static LogLevel threshold = ParseLevelFromEnv();
  return threshold;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogLevel GetLogThreshold() { return MutableThreshold(); }

void SetLogThreshold(LogLevel level) { MutableThreshold() = level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Structured prefix: level, UTC wall time to the millisecond, dense
  // thread id, basename:line. One line per message, greppable by field.
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char stamp[40];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02d %02d:%02d:%02d.%03d",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << stamp << " t" << ThreadLogId()
          << " " << (base ? base + 1 : file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogThreshold() || level_ == LogLevel::kFatal) {
    const std::string line = stream_.str();
    std::shared_ptr<const LogSink> sink = CurrentSink();
    if (sink != nullptr && level_ != LogLevel::kFatal) {
      (*sink)(level_, line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace rrr
