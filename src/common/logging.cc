#include "common/logging.h"

#include <cstdio>
#include <cstring>

namespace rrr {
namespace internal {

namespace {

LogLevel ParseLevelFromEnv() {
  const char* env = std::getenv("RRR_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarning;
}

LogLevel& MutableThreshold() {
  static LogLevel threshold = ParseLevelFromEnv();
  return threshold;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogLevel GetLogThreshold() { return MutableThreshold(); }

void SetLogThreshold(LogLevel level) { MutableThreshold() = level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to keep lines short.
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogThreshold() || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace rrr
