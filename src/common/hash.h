#ifndef RRR_COMMON_HASH_H_
#define RRR_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace rrr {

/// 64-bit FNV-1a parameters, shared by every keyed cache in the library
/// (corner memo, k-set sample cache, engine result memo) so the mixing
/// logic lives in exactly one place.
inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

/// Folds `len` raw bytes into a running FNV-1a state `h` (seed with
/// kFnvOffsetBasis). Byte-hashing doubles is sound only when equal keys
/// are bit-identical — true for the dyadic corner angles and for integer
/// key fields, the only uses here.
inline uint64_t FnvMixBytes(uint64_t h, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Folds one trivially-copyable value's object representation into `h`.
template <typename T>
uint64_t FnvMix(uint64_t h, const T& value) {
  static_assert(std::is_trivially_copyable<T>::value,
                "FnvMix hashes raw object bytes");
  return FnvMixBytes(h, &value, sizeof(T));
}

}  // namespace rrr

#endif  // RRR_COMMON_HASH_H_
