#ifndef RRR_COMMON_STRING_UTIL_H_
#define RRR_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace rrr {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Parses a double; rejects trailing garbage and empty input.
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace rrr

#endif  // RRR_COMMON_STRING_UTIL_H_
