#ifndef RRR_COMMON_RANDOM_H_
#define RRR_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace rrr {

/// \brief Deterministic pseudo-random source used by every randomized
/// component in the library.
///
/// All algorithms that sample (K-SETr, MDRRR's eps-net, HD-RRMS, the
/// synthetic generators, the rank-regret estimator) take an explicit seed so
/// that runs are reproducible; tests rely on this.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal draw.
  double Gaussian() { return normal_(engine_); }

  /// Normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Exponential draw with the given rate (lambda).
  double Exponential(double rate);

  /// Log-normal draw: exp(N(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// \brief Uniform direction on the first orthant of the unit sphere
  /// in R^dims.
  ///
  /// Implements the paper's Algorithm 4 lines 4-6 (Marsaglia's method): draw
  /// d standard normals, take absolute values, normalize. Because the normal
  /// vector's direction is uniform on the sphere and the absolute value folds
  /// all orthants onto the first one, the result is exactly uniform over
  /// non-negative unit weight vectors, i.e. over linear ranking functions.
  std::vector<double> UnitWeightVector(int dims);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Underlying engine (for std distributions in callers).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace rrr

#endif  // RRR_COMMON_RANDOM_H_
