#ifndef RRR_COMMON_THREAD_ANNOTATIONS_H_
#define RRR_COMMON_THREAD_ANNOTATIONS_H_

/// \file
/// Clang thread-safety capability annotations (no-ops on GCC/MSVC).
///
/// These macros attach compile-time locking contracts to data and
/// functions: which mutex guards which member, which capabilities a
/// function requires, acquires, releases, or must not hold. Clang's
/// -Wthread-safety analysis (the `thread-safety` CI job builds with
/// -Werror=thread-safety) then rejects code that touches guarded state
/// without the right lock held — moving the repo's locking discipline
/// from review convention into the compiler.
///
/// The annotations only carry the analysis when the lock types are
/// themselves annotated, which libstdc++'s std::mutex is not; use
/// rrr::Mutex / rrr::MutexLock / rrr::CondVar (common/mutex.h) instead of
/// the std primitives everywhere in src/ (rrr_lint rule `unguarded-sync`
/// enforces this mechanically).
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define RRR_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define RRR_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op: GCC/MSVC
#endif

/// Declares a type to be a capability ("mutex" in diagnostics).
#define RRR_CAPABILITY(x) RRR_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define RRR_SCOPED_CAPABILITY \
  RRR_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define RRR_GUARDED_BY(x) RRR_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer itself is
/// not).
#define RRR_PT_GUARDED_BY(x) \
  RRR_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Lock-ordering edges, checked under -Wthread-safety-beta.
#define RRR_ACQUIRED_BEFORE(...) \
  RRR_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define RRR_ACQUIRED_AFTER(...) \
  RRR_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Function requires the listed capabilities held on entry (and still held
/// on exit).
#define RRR_REQUIRES(...) \
  RRR_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define RRR_REQUIRES_SHARED(...) \
  RRR_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (held on exit, not on entry).
#define RRR_ACQUIRE(...) \
  RRR_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define RRR_ACQUIRE_SHARED(...) \
  RRR_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on exit).
#define RRR_RELEASE(...) \
  RRR_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RRR_RELEASE_SHARED(...) \
  RRR_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// Function attempts to acquire and reports success as `ret`.
#define RRR_TRY_ACQUIRE(...) \
  RRR_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Function must be called WITHOUT the listed capabilities held (deadlock
/// guard for self-locking public entry points).
#define RRR_EXCLUDES(...) \
  RRR_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code reachable only
/// under a lock taken elsewhere).
#define RRR_ASSERT_CAPABILITY(x) \
  RRR_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Function returns a reference to the capability named `x`.
#define RRR_RETURN_CAPABILITY(x) \
  RRR_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: suppress the analysis for one function. Every use must
/// carry a comment explaining why the function is correct anyway (see
/// docs/ARCHITECTURE.md, "Invariants & enforcement").
#define RRR_NO_THREAD_SAFETY_ANALYSIS \
  RRR_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // RRR_COMMON_THREAD_ANNOTATIONS_H_
