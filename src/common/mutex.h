#ifndef RRR_COMMON_MUTEX_H_
#define RRR_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace rrr {

/// \brief Annotated exclusive mutex: std::mutex wrapped so clang's
/// thread-safety analysis (common/thread_annotations.h) can track it.
///
/// libstdc++'s std::mutex carries no capability annotations, so
/// `RRR_GUARDED_BY(some_std_mutex)` would warn on every correctly-locked
/// access — the analysis never learns that std::lock_guard acquired
/// anything. Every lock-protected structure in src/ therefore uses this
/// wrapper plus MutexLock/CondVar below; rrr_lint rule `unguarded-sync`
/// rejects new std::mutex / std::lock_guard / std::unique_lock /
/// std::scoped_lock uses in src/ so the discipline cannot erode.
///
/// The method names are std-style (lock/unlock/try_lock) so Mutex models
/// BasicLockable — which is what lets CondVar wait on it directly via
/// std::condition_variable_any.
class RRR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RRR_ACQUIRE() { mu_.lock(); }
  void unlock() RRR_RELEASE() { mu_.unlock(); }
  bool try_lock() RRR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// \brief RAII lock over Mutex, carrying the scoped-capability annotation
/// that std::scoped_lock cannot (it is not annotated for our Mutex).
///
/// The analysis treats construction as acquiring `mu` and destruction as
/// releasing it, so guarded members are accessible exactly within the
/// lexical scope of a MutexLock — the std::lock_guard usage pattern,
/// checked at compile time.
class RRR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RRR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RRR_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable paired with Mutex.
///
/// Wait/WaitFor require the caller to hold `mu` (annotated REQUIRES): the
/// capability is held on entry and again on exit, while the internal
/// unlock-during-wait happens inside std::condition_variable_any, out of
/// the analysis's sight — exactly the contract a condition wait has.
///
/// There is deliberately no predicate-lambda overload: a lambda body is
/// analyzed as its own unannotated function, so a predicate reading
/// guarded state would (correctly) fail the analysis. Write the standard
/// `while (!condition) cv.Wait(mu);` loop instead — the analysis then sees
/// the guarded reads under the lock they require.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires `mu`.
  void Wait(Mutex& mu) RRR_REQUIRES(mu) { cv_.wait(mu); }

  /// Wait with a timeout; returns with `mu` held whether or not notified.
  template <class Rep, class Period>
  void WaitFor(Mutex& mu,
               const std::chrono::duration<Rep, Period>& timeout)
      RRR_REQUIRES(mu) {
    cv_.wait_for(mu, timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace rrr

#endif  // RRR_COMMON_MUTEX_H_
