// Stopwatch is header-only; this translation unit exists so the build
// exercises the header under the project's warning flags.
#include "common/timer.h"
