// rrr_lint: dependency-light invariant checker for the RRR tree.
//
// Mechanically enforces the repo-specific contracts that clang's
// thread-safety capability analysis cannot see (see
// docs/ARCHITECTURE.md, "Invariants & enforcement"). The scanner is
// token/regex-level over the files `git ls-files` reports (or an explicit
// file list) — deliberately not libclang: the rules are shape checks with
// audited allowlists, and a build-free scanner can run anywhere, first
// thing, in CI.
//
// Rules (stable IDs):
//   scoring-loop            dot-product fold loops (`s += w[j] * row[j]`)
//                           outside the audited scoring allowlist — every
//                           scoring hot path must route through
//                           topk/score_kernel.h or stay in an audited file.
//   fp-contract             reintroduction of FMA contraction: any
//                           -ffp-contract override other than =off, any
//                           FP_CONTRACT pragma enabling it, and std::fma /
//                           __builtin_fma in library code. The scoring
//                           kernel's bit-identity contract depends on
//                           mul+add never fusing.
//   missing-preemption-gate long loops / ParallelFor bodies in src/core
//                           with no reachable ExecContext / PreemptionGate
//                           check — every long computation must be
//                           cancellable.
//   unguarded-sync          raw std sync primitives (std::mutex,
//                           std::lock_guard, ...) instead of the annotated
//                           rrr::Mutex/MutexLock/CondVar; annotated Mutex
//                           members that guard nothing; std::atomic members
//                           without a `rrr-lockfree:` justification.
//   memo-version-key        engine memo key structs missing a
//                           DatasetVersion member — a memo entry computed
//                           against one row-state must never answer for
//                           another.
//   swallowed-status        a statement-initial call to a function whose
//                           declared return type is Status / Result<...>
//                           with the value discarded on the floor — handle
//                           it, propagate it, or cast to (void) with a
//                           comment saying why failure is ignorable.
//   bad-suppression         a `rrr-lint: disable(...)` marker without a
//                           reason= clause.
//
// Escape hatch: `// rrr-lint: disable(<id>[,<id>...]) reason=<text>` on the
// offending line or the line directly above suppresses those rules there.
// Suppressions are counted and reported (and fail the run when reasonless).
//
// Output: human-readable lines on stdout plus optional machine-readable
// JSON (--json=PATH). Exit 0 when clean, 1 on violations, 2 on usage/IO
// errors.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Violation {
  std::string rule;
  std::string file;
  size_t line = 0;
  std::string message;
};

struct Suppression {
  std::string rule;
  std::string file;
  size_t line = 0;
  std::string reason;
};

/// One scanned file: raw lines, comment/string-stripped code lines (same
/// line numbering), and the per-line suppression markers.
struct FileText {
  std::string path;  // relative to the scan root
  std::vector<std::string> raw;
  std::vector<std::string> code;
  /// line (1-based) -> rules disabled there (marker on that line).
  std::map<size_t, std::set<std::string>> disabled;
  std::map<size_t, std::string> disable_reason;
  /// Lines (1-based) carrying a `rrr-lockfree:` justification.
  std::set<size_t> lockfree;
};

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool IsCppFile(const std::string& path) {
  return EndsWith(path, ".cc") || EndsWith(path, ".h") ||
         EndsWith(path, ".cpp") || EndsWith(path, ".hpp");
}

bool IsCMakeFile(const std::string& path) {
  return EndsWith(path, ".cmake") || Basename(path) == "CMakeLists.txt";
}

/// Blanks comments and string/char literal contents in C++ source while
/// preserving line structure, and harvests the rrr-lint markers from the
/// comment text. Handles //, /* */, "..." with escapes, '...', and basic
/// raw strings R"( ... )".
void StripCpp(FileText* file) {
  enum class State { kCode, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;
  file->code.resize(file->raw.size());
  std::string comment_this_line;
  for (size_t li = 0; li < file->raw.size(); ++li) {
    const std::string& in = file->raw[li];
    std::string out;
    out.reserve(in.size());
    comment_this_line.clear();
    for (size_t i = 0; i < in.size(); ++i) {
      const char c = in[i];
      const char next = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            comment_this_line += in.substr(i + 2);
            i = in.size();
          } else if (c == '/' && next == '*') {
            state = State::kBlock;
            ++i;
          } else if (c == '"') {
            if (!out.empty() && out.back() == 'R') {
              // Raw string literal: R"delim( ... )delim"
              size_t paren = in.find('(', i);
              raw_delim = ")";
              if (paren != std::string::npos) {
                raw_delim += in.substr(i + 1, paren - i - 1) + "\"";
                i = paren;
              }
              state = State::kRaw;
              out += '"';
            } else {
              state = State::kString;
              out += '"';
            }
          } else if (c == '\'') {
            state = State::kChar;
            out += '\'';
          } else {
            out += c;
          }
          break;
        case State::kBlock:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          } else {
            comment_this_line += c;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            state = State::kCode;
            out += '"';
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
            out += '\'';
          }
          break;
        case State::kRaw:
          if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
            i += raw_delim.size() - 1;
            state = State::kCode;
            out += '"';
          }
          break;
      }
    }
    file->code[li] = out;
    if (!comment_this_line.empty()) {
      // Harvest markers from this line's comment text.
      static const std::regex kDisable(
          R"(rrr-lint:\s*disable\(\s*([a-z0-9\-,\s]+?)\s*\)\s*(?:reason=\s*(.*))?$)");
      static const std::regex kLockfree(R"(rrr-lockfree:)");
      std::smatch m;
      if (std::regex_search(comment_this_line, m, kDisable)) {
        std::stringstream rules(m[1].str());
        std::string rule;
        while (std::getline(rules, rule, ',')) {
          rule.erase(0, rule.find_first_not_of(" \t"));
          rule.erase(rule.find_last_not_of(" \t") + 1);
          if (!rule.empty()) file->disabled[li + 1].insert(rule);
        }
        std::string reason = m[2].matched ? m[2].str() : "";
        while (!reason.empty() &&
               (reason.back() == ' ' || reason.back() == '\t')) {
          reason.pop_back();
        }
        file->disable_reason[li + 1] = reason;
      }
      if (std::regex_search(comment_this_line, kLockfree)) {
        file->lockfree.insert(li + 1);
      }
    }
  }
}

/// CMake/other files: '#' comments; no string subtleties worth modeling.
void StripHash(FileText* file) {
  file->code.resize(file->raw.size());
  for (size_t li = 0; li < file->raw.size(); ++li) {
    const std::string& in = file->raw[li];
    const size_t hash = in.find('#');
    file->code[li] = hash == std::string::npos ? in : in.substr(0, hash);
  }
}

class Linter {
 public:
  explicit Linter(std::string root) : root_(std::move(root)) {}

  void Scan(const std::string& rel_path);
  void Finish();

  const std::vector<Violation>& violations() const { return violations_; }
  const std::vector<Suppression>& suppressions() const {
    return suppressions_;
  }
  size_t files_scanned() const { return files_scanned_; }

  bool WriteJson(const std::string& path) const;

 private:
  void Report(const FileText& file, const std::string& rule, size_t line,
              const std::string& message);

  void CheckScoringLoop(const FileText& file);
  void CheckFpContract(const FileText& file);
  void CheckPreemptionGates(const FileText& file);
  void CheckUnguardedSync(const FileText& file);
  void CheckMemoVersionKey(const FileText& file);
  void CheckSuppressionReasons(const FileText& file);
  /// Whole-corpus rule (runs in Finish): needs every scanned file's
  /// declarations before any file's call sites can be judged.
  void CheckSwallowedStatus();

  /// Matches braces from the first '{' at or after (start_line, start_col)
  /// in code text; returns the 0-based line of the closing brace, or
  /// raw.size()-1 when unbalanced (EOF).
  static size_t MatchBraces(const FileText& file, size_t start_line);

  std::string root_;
  std::vector<FileText> files_;  // retained for whole-corpus rules
  std::vector<Violation> violations_;
  std::vector<Suppression> suppressions_;
  size_t files_scanned_ = 0;
};

void Linter::Report(const FileText& file, const std::string& rule,
                    size_t line, const std::string& message) {
  // A marker on the offending line or the line directly above suppresses.
  for (size_t at : {line, line > 1 ? line - 1 : line}) {
    auto it = file.disabled.find(at);
    if (it != file.disabled.end() && it->second.count(rule) > 0) {
      auto reason = file.disable_reason.find(at);
      suppressions_.push_back(
          {rule, file.path, at,
           reason != file.disable_reason.end() ? reason->second : ""});
      return;
    }
  }
  violations_.push_back({rule, file.path, line, message});
}

// ---------------------------------------------------------------------------
// Rule: scoring-loop
// ---------------------------------------------------------------------------

/// Files allowed to hold a scoring-shaped fold, each with the audit note
/// that justifies it.
const std::pair<const char*, const char*> kScoringAllowlist[] = {
    {"src/topk/score_kernel.cc", "the blocked kernel itself"},
    {"src/topk/scoring.cc",
     "the canonical ascending scalar fold the kernel must match"},
    {"src/geometry/vec.cc",
     "geometry dot products (LP/hyperplane math, not row scoring)"},
    {"src/lp/simplex.cc", "simplex tableau pivots, not row scoring"},
};

void Linter::CheckScoringLoop(const FileText& file) {
  if (!StartsWith(file.path, "src/") || !IsCppFile(file.path)) return;
  for (const auto& allow : kScoringAllowlist) {
    if (file.path == allow.first) return;
  }
  // `lhs += ... a[i] * b ...` / `... a * b[i] ...`: a compound-add of a
  // product with at least one subscripted operand — the shape of a
  // dot-product fold. (Plain `x += 2 * y` or `i += a * stride` with no
  // subscript adjacent to the `*` does not fire.)
  static const std::regex kFold(
      R"(\+=\s*[^;]*(\]\s*\*|\*\s*[A-Za-z_][A-Za-z0-9_.]*(->)?[A-Za-z0-9_]*\s*\[))");
  for (size_t li = 0; li < file.code.size(); ++li) {
    if (std::regex_search(file.code[li], kFold)) {
      Report(file, "scoring-loop", li + 1,
             "scoring-shaped fold (`s += a[j] * b[j]`) outside the audited "
             "allowlist; route through topk/score_kernel.h (ScoreAll / "
             "TopKScan) or add the file to the audited allowlist");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: fp-contract
// ---------------------------------------------------------------------------

void Linter::CheckFpContract(const FileText& file) {
  static const std::regex kContractFlag(R"(ffp-contract\s*=?\s*(?!off)\w+)");
  static const std::regex kContractPragma(
      R"(FP_CONTRACT\s+(ON|DEFAULT)|fp_contract\s*\(\s*on\s*\))",
      std::regex::icase);
  static const std::regex kFma(R"(\b(std::fma|__builtin_fmaf?|fmal?)\s*\()");
  const bool cpp = IsCppFile(file.path);
  const bool in_src = StartsWith(file.path, "src/");
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& code = file.code[li];
    if (std::regex_search(code, kContractFlag)) {
      Report(file, "fp-contract", li + 1,
             "-ffp-contract override other than =off: FMA contraction "
             "breaks the scoring kernel's cross-path bit-identity");
    }
    if (cpp && std::regex_search(code, kContractPragma)) {
      Report(file, "fp-contract", li + 1,
             "FP_CONTRACT pragma re-enables fused multiply-add; the "
             "scoring contract requires mul+add, never FMA");
    }
    if (cpp && in_src && std::regex_search(code, kFma)) {
      Report(file, "fp-contract", li + 1,
             "explicit fused multiply-add in library code; scoring paths "
             "must round twice (mul then add) to stay bit-identical");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: missing-preemption-gate
// ---------------------------------------------------------------------------

/// A loop/body longer than this (in physical lines) must reference a
/// preemption primitive. Long loops below the engine entry points are
/// exactly the ones that make deadlines/cancellation lie.
constexpr size_t kGateLineThreshold = 35;

size_t Linter::MatchBraces(const FileText& file, size_t start_line) {
  int depth = 0;
  bool seen_open = false;
  for (size_t li = start_line; li < file.code.size(); ++li) {
    for (char c : file.code[li]) {
      if (c == '{') {
        ++depth;
        seen_open = true;
      } else if (c == '}') {
        --depth;
        if (seen_open && depth == 0) return li;
      }
    }
    // A loop with no brace on its first two lines is a single-statement
    // loop — never long enough to matter.
    if (!seen_open && li > start_line + 1) return start_line;
  }
  return file.code.empty() ? 0 : file.code.size() - 1;
}

void Linter::CheckPreemptionGates(const FileText& file) {
  // src/service/ is covered too: its accept/serve/worker loops run for the
  // server's whole life and must reference either an ExecContext-style gate
  // or a shutdown flag, or Stop() hangs forever.
  if ((!StartsWith(file.path, "src/core/") &&
       !StartsWith(file.path, "src/service/")) ||
      !EndsWith(file.path, ".cc")) {
    return;
  }
  static const std::regex kLoopHeader(R"(^\s*(for|while)\s*\()");
  static const std::regex kParallelFor(R"(\bParallelFor(Chunked)?\s*\()");
  static const std::regex kGateRef(
      R"(\b(CheckPreempted|PreemptionGate|ExecContext|gate|ctx|preempted|cancelled|shutdown_?|stopping_?|stop_requested|quit|done)\b)");
  for (size_t li = 0; li < file.code.size(); ++li) {
    const bool is_loop = std::regex_search(file.code[li], kLoopHeader);
    const bool is_pfor = std::regex_search(file.code[li], kParallelFor);
    if (!is_loop && !is_pfor) continue;
    const size_t end = MatchBraces(file, li);
    if (end <= li || end - li < kGateLineThreshold) continue;
    bool gated = false;
    for (size_t b = li; b <= end && !gated; ++b) {
      gated = std::regex_search(file.code[b], kGateRef);
    }
    if (!gated) {
      Report(file, "missing-preemption-gate", li + 1,
             (is_pfor ? std::string("ParallelFor body")
                      : std::string("loop")) +
                 " spanning " + std::to_string(end - li + 1) +
                 " lines with no ExecContext/PreemptionGate reference; "
                 "long computations must be cancellable");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unguarded-sync
// ---------------------------------------------------------------------------

void Linter::CheckUnguardedSync(const FileText& file) {
  if (!StartsWith(file.path, "src/") || !IsCppFile(file.path)) return;
  const bool is_wrapper = file.path == "src/common/mutex.h";
  static const std::regex kStdSync(
      R"(\bstd::(mutex|shared_mutex|timed_mutex|recursive_mutex|condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|shared_lock)\b)");
  static const std::regex kMutexMember(
      R"(^\s*(mutable\s+)?(rrr::)?Mutex\s+([A-Za-z_]\w*)\s*(RRR_ACQUIRED_(BEFORE|AFTER)\([^;]*\)\s*)?;)");
  static const std::regex kAtomicDecl(R"(\bstd::atomic<)");
  const bool is_header = EndsWith(file.path, ".h") ||
                         EndsWith(file.path, ".hpp");
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& code = file.code[li];
    // Preprocessor lines (#include <mutex> for std::once_flag etc.) pass.
    const size_t first = code.find_first_not_of(" \t");
    if (first != std::string::npos && code[first] == '#') continue;
    if (!is_wrapper && std::regex_search(code, kStdSync)) {
      Report(file, "unguarded-sync", li + 1,
             "raw std synchronization primitive; use the annotated "
             "rrr::Mutex / rrr::MutexLock / rrr::CondVar (common/mutex.h) "
             "so clang's capability analysis can see the locking");
    }
    if (!is_header) continue;
    std::smatch m;
    if (std::regex_search(code, m, kMutexMember)) {
      const std::string name = m[3].str();
      bool guards_something = false;
      for (const std::string& other : file.code) {
        if (other.find("RRR_GUARDED_BY(" + name + ")") != std::string::npos ||
            other.find("RRR_PT_GUARDED_BY(" + name + ")") !=
                std::string::npos ||
            other.find("RRR_REQUIRES(" + name + ")") != std::string::npos) {
          guards_something = true;
          break;
        }
      }
      if (!guards_something) {
        Report(file, "unguarded-sync", li + 1,
               "Mutex member `" + name +
                   "` guards nothing: annotate the protected members with "
                   "RRR_GUARDED_BY(" + name +
                   ") (or document a serialization-only mutex via the "
                   "disable marker)");
      }
    }
    if (std::regex_search(code, kAtomicDecl)) {
      // Only declarations (ending in `;`), not parameters or typedefs.
      std::string trimmed = code;
      while (!trimmed.empty() &&
             (trimmed.back() == ' ' || trimmed.back() == '\t')) {
        trimmed.pop_back();
      }
      if (trimmed.empty() || trimmed.back() != ';') continue;
      if (trimmed.find("using") != std::string::npos ||
          trimmed.find("typedef") != std::string::npos) {
        continue;
      }
      bool documented = false;
      for (size_t back = 0; back <= 3 && back <= li; ++back) {
        if (file.lockfree.count(li + 1 - back) > 0) {
          documented = true;
          break;
        }
      }
      if (!documented) {
        Report(file, "unguarded-sync", li + 1,
               "std::atomic member without a `rrr-lockfree:` justification "
               "comment; document the lock-free protocol (who writes, who "
               "reads, which ordering) or guard it with a Mutex");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: memo-version-key
// ---------------------------------------------------------------------------

void Linter::CheckMemoVersionKey(const FileText& file) {
  if (file.path.find("engine") == std::string::npos || !IsCppFile(file.path)) {
    return;
  }
  static const std::regex kKeyStruct(R"(\bstruct\s+(\w*Key)\s*\{)");
  for (size_t li = 0; li < file.code.size(); ++li) {
    std::smatch m;
    if (!std::regex_search(file.code[li], m, kKeyStruct)) continue;
    const size_t end = MatchBraces(file, li);
    bool has_version = false;
    for (size_t b = li; b <= end && !has_version; ++b) {
      has_version =
          file.code[b].find("DatasetVersion") != std::string::npos;
    }
    if (!has_version) {
      Report(file, "memo-version-key", li + 1,
             "memo key struct `" + m[1].str() +
                 "` has no DatasetVersion member: an engine memo entry "
                 "computed against one row-state must never answer for "
                 "another (see RrrEngine::ResultKey)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: swallowed-status
// ---------------------------------------------------------------------------

/// Phase 1: function names split by declared return type — Status /
/// Result<...> into `fallible`, anything else into `infallible`. A name
/// in both sets is ambiguous at token level (e.g. a bool Insert here, a
/// Result<...> Insert there) and must not be flagged. Repo style makes
/// functions PascalCase, so lowercase identifiers (variables under
/// construction, `Status st(...)`) are never harvested.
void HarvestFunctionNames(const FileText& file, std::set<std::string>* fallible,
                          std::set<std::string>* infallible) {
  if (!IsCppFile(file.path)) return;
  static const std::regex kHead(
      R"(^\s*(?:virtual\s+|static\s+|inline\s+|friend\s+|explicit\s+|constexpr\s+|\[\[nodiscard\]\]\s+)*([A-Za-z_][\w:]*)\s*(<?))");
  static const std::regex kName(
      R"(^\s*[&*]*\s*(?:[A-Za-z_]\w*::)*([A-Z]\w*)\s*\()");
  // Statement keywords that can head a line and precede `Name(...)`:
  // treating them as return types would poison the sets.
  static const std::set<std::string> kNotTypes = {
      "return", "else",   "delete", "throw",  "new",       "case",
      "goto",   "using",  "typedef", "struct", "class",    "enum",
      "template", "namespace", "public", "private", "protected", "co_return",
  };
  for (const std::string& code : file.code) {
    std::smatch m;
    if (!std::regex_search(code, m, kHead) || m.position(0) != 0) continue;
    std::string type = m[1].str();
    if (StartsWith(type, "rrr::")) type = type.substr(5);
    if (kNotTypes.count(type) > 0) continue;
    size_t pos = static_cast<size_t>(m.position(0)) + m[0].length();
    if (m[2].str() == "<") {
      // Skip the template argument list (Result<...>, std::vector<...>).
      int depth = 1;
      while (pos < code.size() && depth > 0) {
        if (code[pos] == '<') ++depth;
        if (code[pos] == '>') --depth;
        ++pos;
      }
      if (depth > 0) continue;  // args span lines: skip (rare)
    }
    const std::string rest = code.substr(pos);
    std::smatch n;
    if (!std::regex_search(rest, n, kName) || n.position(0) != 0) continue;
    const bool is_fallible =
        type == "Status" || (type == "Result" && m[2].str() == "<");
    (is_fallible ? fallible : infallible)->insert(n[1].str());
  }
}

void Linter::CheckSwallowedStatus() {
  std::set<std::string> fallible;
  std::set<std::string> infallible;
  for (const FileText& file : files_) {
    HarvestFunctionNames(file, &fallible, &infallible);
  }
  // Names also declared with a non-Status return somewhere are ambiguous
  // at token level: a call site cannot be attributed, so never flagged.
  for (const std::string& name : infallible) fallible.erase(name);
  if (fallible.empty()) return;
  // A statement-initial call through a simple receiver chain:
  // `Foo(...)`, `obj.Foo(...)`, `ptr->Foo(...)`, `Ns::Foo(...)`.
  static const std::regex kCall(
      R"(^((?:[A-Za-z_]\w*(?:\.|->|::))*)([A-Z]\w*)\s*\()");
  for (const FileText& file : files_) {
    if (!StartsWith(file.path, "src/") || !IsCppFile(file.path)) continue;
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& code = file.code[li];
      const size_t first = code.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      const std::string trimmed = code.substr(first);
      std::smatch m;
      if (!std::regex_search(trimmed, m, kCall) || m.position(0) != 0) {
        continue;
      }
      if (fallible.count(m[2].str()) == 0) continue;
      // Statement-initial only: the previous non-blank code line must have
      // closed a statement/block, otherwise this line continues an
      // expression whose value IS consumed above (`Status s =\n  Foo();`).
      bool statement_start = true;
      for (size_t back = li; back > 0; --back) {
        const std::string& prev = file.code[back - 1];
        const size_t last = prev.find_last_not_of(" \t");
        if (last == std::string::npos) continue;  // blank line: keep looking
        const char c = prev[last];
        statement_start =
            c == ';' || c == '{' || c == '}' || c == ')' || c == ':';
        break;
      }
      if (!statement_start) continue;
      // The value must actually be dropped: the call's parentheses balance
      // straight into `;` (chained `.ok()` etc. means it was examined).
      int depth = 0;
      bool discarded = false;
      bool decided = false;
      for (size_t lj = li; lj < file.code.size() && lj < li + 20 && !decided;
           ++lj) {
        const std::string& s = file.code[lj];
        for (size_t ci = lj == li ? first : 0; ci < s.size(); ++ci) {
          if (s[ci] == '(') {
            ++depth;
          } else if (s[ci] == ')') {
            if (--depth == 0) {
              const size_t after = s.find_first_not_of(" \t", ci + 1);
              // Closing paren at end-of-line: the `;` (or a chain) sits on
              // the next line; one more sweep settles it.
              if (after == std::string::npos) {
                for (size_t lk = lj + 1;
                     lk < file.code.size() && lk < lj + 3; ++lk) {
                  const size_t f2 = file.code[lk].find_first_not_of(" \t");
                  if (f2 == std::string::npos) continue;
                  discarded = file.code[lk][f2] == ';';
                  break;
                }
              } else {
                discarded = s[after] == ';';
              }
              decided = true;
              break;
            }
          }
        }
      }
      if (discarded) {
        Report(file, "swallowed-status", li + 1,
               "call to `" + m[2].str() +
                   "` discards its Status/Result; handle the failure, "
                   "propagate it, or cast to (void) with a comment saying "
                   "why it is ignorable");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: bad-suppression
// ---------------------------------------------------------------------------

void Linter::CheckSuppressionReasons(const FileText& file) {
  for (const auto& entry : file.disabled) {
    auto reason = file.disable_reason.find(entry.first);
    if (reason == file.disable_reason.end() || reason->second.empty()) {
      violations_.push_back(
          {"bad-suppression", file.path, entry.first,
           "rrr-lint disable marker without reason=; every escape hatch "
           "must say why the contract does not apply"});
    }
  }
}

// ---------------------------------------------------------------------------

void Linter::Scan(const std::string& rel_path) {
  std::ifstream in(root_ + "/" + rel_path);
  if (!in) {
    std::cerr << "rrr_lint: cannot read " << root_ << "/" << rel_path
              << "\n";
    std::exit(2);
  }
  FileText file;
  file.path = rel_path;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    file.raw.push_back(line);
  }
  if (IsCppFile(rel_path)) {
    StripCpp(&file);
  } else {
    StripHash(&file);
  }
  ++files_scanned_;
  CheckScoringLoop(file);
  CheckFpContract(file);
  CheckPreemptionGates(file);
  CheckUnguardedSync(file);
  CheckMemoVersionKey(file);
  CheckSuppressionReasons(file);
  files_.push_back(std::move(file));
}

void Linter::Finish() {
  CheckSwallowedStatus();
  std::sort(violations_.begin(), violations_.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool Linter::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"tool\": \"rrr_lint\",\n";
  out << "  \"files_scanned\": " << files_scanned_ << ",\n";
  out << "  \"violations\": [";
  for (size_t i = 0; i < violations_.size(); ++i) {
    const Violation& v = violations_[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"rule\": \"" << JsonEscape(v.rule) << "\", \"file\": \""
        << JsonEscape(v.file) << "\", \"line\": " << v.line
        << ", \"message\": \"" << JsonEscape(v.message) << "\"}";
  }
  out << (violations_.empty() ? "],\n" : "\n  ],\n");
  out << "  \"suppressions\": [";
  for (size_t i = 0; i < suppressions_.size(); ++i) {
    const Suppression& s = suppressions_[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"rule\": \"" << JsonEscape(s.rule) << "\", \"file\": \""
        << JsonEscape(s.file) << "\", \"line\": " << s.line
        << ", \"reason\": \"" << JsonEscape(s.reason) << "\"}";
  }
  out << (suppressions_.empty() ? "],\n" : "\n  ],\n");
  out << "  \"counts\": {\"violations\": " << violations_.size()
      << ", \"suppressions\": " << suppressions_.size() << "}\n}\n";
  return true;
}

/// `git ls-files` in root, filtered to the file kinds the rules read.
std::vector<std::string> GitTrackedFiles(const std::string& root) {
  std::vector<std::string> files;
  const std::string cmd = "git -C '" + root + "' ls-files -z 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return files;
  std::string name;
  int c;
  while ((c = std::fgetc(pipe)) != EOF) {
    if (c == '\0') {
      // The fixture corpus is intentionally violating; tree scans skip it
      // (the ctest suite scans it explicitly, file by file).
      const bool fixture =
          name.find("tests/tools/fixtures/") != std::string::npos;
      if (!fixture && (IsCppFile(name) || IsCMakeFile(name))) {
        files.push_back(name);
      }
      name.clear();
    } else {
      name.push_back(static_cast<char>(c));
    }
  }
  pclose(pipe);
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  bool quiet = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--root=")) {
      root = arg.substr(7);
    } else if (StartsWith(arg, "--json=")) {
      json_path = arg.substr(7);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: rrr_lint [--root=DIR] [--json=PATH] [--quiet] "
                   "[files...]\n"
                   "Scans `git ls-files` under DIR (default .) when no "
                   "files are given;\nexplicit files are relative to "
                   "DIR.\n";
      return 0;
    } else if (StartsWith(arg, "--")) {
      std::cerr << "rrr_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    files = GitTrackedFiles(root);
    if (files.empty()) {
      std::cerr << "rrr_lint: no files (is " << root
                << " a git tree? pass files explicitly)\n";
      return 2;
    }
  }

  Linter linter(root);
  for (const std::string& f : files) linter.Scan(f);
  linter.Finish();

  if (!quiet) {
    for (const Violation& v : linter.violations()) {
      std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
                << v.message << "\n";
    }
    for (const Suppression& s : linter.suppressions()) {
      std::cout << "note: " << s.file << ":" << s.line << ": [" << s.rule
                << "] suppressed: " << s.reason << "\n";
    }
  }
  std::cout << "rrr_lint: " << linter.files_scanned() << " files, "
            << linter.violations().size() << " violation(s), "
            << linter.suppressions().size() << " suppression(s)\n";
  if (!json_path.empty() && !linter.WriteJson(json_path)) {
    std::cerr << "rrr_lint: cannot write " << json_path << "\n";
    return 2;
  }
  return linter.violations().empty() ? 0 : 1;
}
