#include "test_util.h"

#include <cmath>
#include <functional>

#include "core/find_ranges.h"
#include "geometry/angles.h"

namespace rrr {
namespace testing {

namespace {

/// Enumerates size-`r` subsets of `candidates`, invoking `fn` until it
/// returns true; returns whether any subset succeeded.
bool ForEachSubset(const std::vector<int32_t>& candidates, size_t r,
                   std::vector<int32_t>* current, size_t from,
                   const std::function<bool(const std::vector<int32_t>&)>& fn) {
  if (current->size() == r) return fn(*current);
  for (size_t i = from; i < candidates.size(); ++i) {
    current->push_back(candidates[i]);
    if (ForEachSubset(candidates, r, current, i + 1, fn)) return true;
    current->pop_back();
  }
  return false;
}

}  // namespace

int64_t BruteForceOptimalRrrSize2D(const data::Dataset& dataset, size_t k) {
  // Only items that ever appear in a top-k can help.
  Result<std::vector<core::ItemRange>> ranges =
      core::FindRanges(dataset, k);
  RRR_CHECK(ranges.ok()) << ranges.status().ToString();
  std::vector<int32_t> candidates;
  for (size_t id = 0; id < ranges->size(); ++id) {
    if ((*ranges)[id].in_topk) candidates.push_back(static_cast<int32_t>(id));
  }
  RRR_CHECK(!candidates.empty()) << "no top-k candidates";

  for (size_t r = 1; r <= candidates.size(); ++r) {
    std::vector<int32_t> current;
    const bool found = ForEachSubset(
        candidates, r, &current, 0,
        [&](const std::vector<int32_t>& subset) {
          Result<int64_t> regret = eval::ExactRankRegret2D(dataset, subset);
          RRR_CHECK(regret.ok()) << regret.status().ToString();
          return *regret <= static_cast<int64_t>(k);
        });
    if (found) return static_cast<int64_t>(r);
  }
  return static_cast<int64_t>(candidates.size());
}

std::vector<double> AngleGrid(size_t count) {
  RRR_CHECK(count >= 2) << "grid needs at least the two endpoints";
  std::vector<double> grid(count);
  for (size_t i = 0; i < count; ++i) {
    // Fraction first so the endpoints are exactly 0 and kHalfPi (the
    // multiply-then-divide order overshoots pi/2 by one ulp).
    grid[i] = geometry::kHalfPi *
              (static_cast<double>(i) / static_cast<double>(count - 1));
  }
  grid.back() = geometry::kHalfPi;
  return grid;
}

}  // namespace testing
}  // namespace rrr
