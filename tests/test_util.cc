#include "test_util.h"

#include <cmath>
#include <functional>
#include <sstream>

#include "common/random.h"
#include "core/find_ranges.h"
#include "data/generators.h"
#include "geometry/angles.h"

namespace rrr {
namespace testing {

namespace {

/// Enumerates size-`r` subsets of `candidates`, invoking `fn` until it
/// returns true; returns whether any subset succeeded.
bool ForEachSubset(const std::vector<int32_t>& candidates, size_t r,
                   std::vector<int32_t>* current, size_t from,
                   const std::function<bool(const std::vector<int32_t>&)>& fn) {
  if (current->size() == r) return fn(*current);
  for (size_t i = from; i < candidates.size(); ++i) {
    current->push_back(candidates[i]);
    if (ForEachSubset(candidates, r, current, i + 1, fn)) return true;
    current->pop_back();
  }
  return false;
}

}  // namespace

int64_t BruteForceOptimalRrrSize2D(const data::Dataset& dataset, size_t k) {
  // Only items that ever appear in a top-k can help.
  Result<std::vector<core::ItemRange>> ranges =
      core::FindRanges(dataset, k);
  RRR_CHECK(ranges.ok()) << ranges.status().ToString();
  std::vector<int32_t> candidates;
  for (size_t id = 0; id < ranges->size(); ++id) {
    if ((*ranges)[id].in_topk) candidates.push_back(static_cast<int32_t>(id));
  }
  RRR_CHECK(!candidates.empty()) << "no top-k candidates";

  for (size_t r = 1; r <= candidates.size(); ++r) {
    std::vector<int32_t> current;
    const bool found = ForEachSubset(
        candidates, r, &current, 0,
        [&](const std::vector<int32_t>& subset) {
          Result<int64_t> regret = eval::ExactRankRegret2D(dataset, subset);
          RRR_CHECK(regret.ok()) << regret.status().ToString();
          return *regret <= static_cast<int64_t>(k);
        });
    if (found) return static_cast<int64_t>(r);
  }
  return static_cast<int64_t>(candidates.size());
}

const std::vector<DataFamily>& AllDataFamilies() {
  static const std::vector<DataFamily> families = {
      DataFamily::kUniform, DataFamily::kCorrelated,
      DataFamily::kAnticorrelated, DataFamily::kDuplicateHeavy,
      DataFamily::kConstantColumn};
  return families;
}

const char* DataFamilyName(DataFamily family) {
  switch (family) {
    case DataFamily::kUniform:
      return "uniform";
    case DataFamily::kCorrelated:
      return "correlated";
    case DataFamily::kAnticorrelated:
      return "anticorrelated";
    case DataFamily::kDuplicateHeavy:
      return "duplicate-heavy";
    case DataFamily::kConstantColumn:
      return "constant-column";
  }
  return "unknown";
}

std::vector<std::vector<double>> FamilyRows(DataFamily family, size_t n,
                                            size_t d, uint64_t seed) {
  data::Dataset base;
  switch (family) {
    case DataFamily::kUniform:
    case DataFamily::kDuplicateHeavy:
    case DataFamily::kConstantColumn:
      base = data::GenerateUniform(n, d, seed);
      break;
    case DataFamily::kCorrelated:
      base = data::GenerateCorrelated(n, d, seed);
      break;
    case DataFamily::kAnticorrelated:
      base = data::GenerateAnticorrelated(n, d, seed);
      break;
  }
  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double* r = base.row(i);
    std::vector<double> row(r, r + d);
    if (family == DataFamily::kDuplicateHeavy) {
      // Quantized coordinates: heavy ties and exact duplicates.
      for (double& v : row) v = std::round(v * 8.0) / 8.0;
    } else if (family == DataFamily::kConstantColumn) {
      row[0] = 0.5;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string DynamicSchedule::ToString() const {
  std::ostringstream out;
  out << "schedule{family=" << DataFamilyName(family) << " seed=" << seed
      << " d=" << dims << " n0=" << initial_rows.size() << " ops=[";
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i > 0) out << " ";
    const DynamicOp& op = ops[i];
    switch (op.kind) {
      case DynamicOp::Kind::kInsert:
        out << "I";
        break;
      case DynamicOp::Kind::kBatchAppend:
        out << "B" << op.rows.size();
        break;
      case DynamicOp::Kind::kDelete:
        out << "D" << op.delete_id;
        break;
      case DynamicOp::Kind::kSolve:
        out << "S(k=" << op.k << ")";
        break;
      case DynamicOp::Kind::kSolveDual:
        out << "SD(m=" << op.max_size << ")";
        break;
      case DynamicOp::Kind::kEvaluate:
        out << "E";
        break;
      case DynamicOp::Kind::kSnapshotPin:
        out << "P(k=" << op.k << ")";
        break;
    }
  }
  out << "]}";
  return out.str();
}

DynamicSchedule MakeDynamicSchedule(DataFamily family, uint64_t seed,
                                    size_t dims, size_t num_ops) {
  DynamicSchedule schedule;
  schedule.seed = seed;
  schedule.family = family;
  schedule.dims = dims;
  // Distinct streams per (family, seed): ops, payload rows, and the initial
  // dataset must not alias across families sharing a seed.
  const uint64_t stream =
      seed * 1000003u + static_cast<uint64_t>(family) * 7919u;
  Rng rng(stream);
  const size_t n0 = 16 + static_cast<size_t>(rng.UniformInt(0, 32));
  schedule.initial_rows = FamilyRows(family, n0, dims, stream + 1);

  size_t size = n0;       // tracked so every delete id is valid at replay
  bool solved = false;    // Evaluate needs an earlier Solve
  uint64_t payload = 0;   // per-op payload seed counter

  // Forced prefix: every schedule exercises every mutation kind plus one
  // query, in a seed-dependent order.
  std::vector<DynamicOp::Kind> kinds = {
      DynamicOp::Kind::kSolve, DynamicOp::Kind::kInsert,
      DynamicOp::Kind::kDelete, DynamicOp::Kind::kBatchAppend};
  rng.Shuffle(&kinds);
  while (kinds.size() < num_ops) {
    const int64_t roll = rng.UniformInt(0, 99);
    DynamicOp::Kind kind;
    if (roll < 15) {
      kind = DynamicOp::Kind::kInsert;
    } else if (roll < 27) {
      kind = DynamicOp::Kind::kBatchAppend;
    } else if (roll < 42) {
      kind = DynamicOp::Kind::kDelete;
    } else if (roll < 67) {
      kind = DynamicOp::Kind::kSolve;
    } else if (roll < 77) {
      kind = DynamicOp::Kind::kSolveDual;
    } else if (roll < 88) {
      kind = DynamicOp::Kind::kEvaluate;
    } else {
      kind = DynamicOp::Kind::kSnapshotPin;
    }
    kinds.push_back(kind);
  }

  for (DynamicOp::Kind kind : kinds) {
    DynamicOp op;
    op.kind = kind;
    switch (kind) {
      case DynamicOp::Kind::kInsert:
        op.rows = FamilyRows(family, 1, dims, stream + 100 + payload++);
        ++size;
        break;
      case DynamicOp::Kind::kBatchAppend: {
        const size_t count = 2 + static_cast<size_t>(rng.UniformInt(0, 4));
        op.rows = FamilyRows(family, count, dims, stream + 100 + payload++);
        size += count;
        break;
      }
      case DynamicOp::Kind::kDelete:
        if (size < 2) continue;  // Delete refuses to empty the dataset
        op.delete_id = static_cast<int32_t>(
            rng.UniformInt(0, static_cast<int64_t>(size) - 1));
        --size;
        break;
      case DynamicOp::Kind::kSolve:
      case DynamicOp::Kind::kSnapshotPin:
        op.k = 1 + static_cast<size_t>(rng.UniformInt(0, 7));
        solved = solved || kind == DynamicOp::Kind::kSolve;
        break;
      case DynamicOp::Kind::kSolveDual:
        op.max_size = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
        break;
      case DynamicOp::Kind::kEvaluate:
        if (!solved) continue;
        break;
    }
    schedule.ops.push_back(std::move(op));
  }
  return schedule;
}

std::vector<double> AngleGrid(size_t count) {
  RRR_CHECK(count >= 2) << "grid needs at least the two endpoints";
  std::vector<double> grid(count);
  for (size_t i = 0; i < count; ++i) {
    // Fraction first so the endpoints are exactly 0 and kHalfPi (the
    // multiply-then-divide order overshoots pi/2 by one ulp).
    grid[i] = geometry::kHalfPi *
              (static_cast<double>(i) / static_cast<double>(count - 1));
  }
  grid.back() = geometry::kHalfPi;
  return grid;
}

}  // namespace testing
}  // namespace rrr
