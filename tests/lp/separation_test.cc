#include "lp/separation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace rrr {
namespace lp {
namespace {

TEST(SeparationTest, SingletonMaximumIsSeparable) {
  // (1, 1) dominates everything: {that point} is a 1-set.
  const std::vector<double> rows = {1.0, 1.0, 0.2, 0.3, 0.5, 0.1};
  Result<SeparationResult> sep = FindSeparatingWeights(rows.data(), 3, 2, {0});
  ASSERT_TRUE(sep.ok());
  EXPECT_TRUE(sep->separable);
  EXPECT_GT(sep->margin, 0.0);
  ASSERT_EQ(sep->weights.size(), 2u);
}

TEST(SeparationTest, DominatedSingletonIsNotSeparable) {
  // (0.2, 0.3) is dominated; no non-negative direction ranks it on top.
  const std::vector<double> rows = {1.0, 1.0, 0.2, 0.3, 0.5, 0.1};
  Result<SeparationResult> sep = FindSeparatingWeights(rows.data(), 3, 2, {1});
  ASSERT_TRUE(sep.ok());
  EXPECT_FALSE(sep->separable);
}

TEST(SeparationTest, WeightsActuallySeparate) {
  Rng rng(5);
  // Random 2D points: validate the returned weights realize the separation.
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<double> rows;
    const size_t n = 12;
    for (size_t i = 0; i < 2 * n; ++i) rows.push_back(rng.Uniform());
    // Candidate: top-2 of the diagonal function (always a valid 2-set).
    std::vector<std::pair<double, int32_t>> scored;
    for (size_t i = 0; i < n; ++i) {
      scored.push_back({rows[2 * i] + rows[2 * i + 1],
                        static_cast<int32_t>(i)});
    }
    std::sort(scored.begin(), scored.end(),
              [](auto& a, auto& b) { return a.first > b.first; });
    std::vector<int32_t> inside = {scored[0].second, scored[1].second};
    Result<SeparationResult> sep =
        FindSeparatingWeights(rows.data(), n, 2, inside);
    ASSERT_TRUE(sep.ok());
    ASSERT_TRUE(sep->separable);
    // min inside score must exceed max outside score under the weights.
    double min_in = 1e300, max_out = -1e300;
    for (size_t i = 0; i < n; ++i) {
      const double s =
          sep->weights[0] * rows[2 * i] + sep->weights[1] * rows[2 * i + 1];
      const bool is_in = (static_cast<int32_t>(i) == inside[0] ||
                          static_cast<int32_t>(i) == inside[1]);
      if (is_in) {
        min_in = std::min(min_in, s);
      } else {
        max_out = std::max(max_out, s);
      }
    }
    EXPECT_GT(min_in, max_out);
  }
}

TEST(SeparationTest, NonTopSetIsNotSeparable) {
  // {best, worst} of a collinear arrangement cannot be a 2-set: the middle
  // point scores between them for every direction.
  const std::vector<double> rows = {0.9, 0.9, 0.5, 0.5, 0.1, 0.1};
  Result<SeparationResult> sep =
      FindSeparatingWeights(rows.data(), 3, 2, {0, 2});
  ASSERT_TRUE(sep.ok());
  EXPECT_FALSE(sep->separable);
}

TEST(SeparationTest, WorksInThreeDimensions) {
  const std::vector<double> rows = {
      0.9, 0.1, 0.1,   // best on x
      0.1, 0.9, 0.1,   // best on y
      0.1, 0.1, 0.9,   // best on z
      0.2, 0.2, 0.2};  // dominated-ish interior
  for (int32_t i = 0; i < 3; ++i) {
    Result<SeparationResult> sep =
        FindSeparatingWeights(rows.data(), 4, 3, {i});
    ASSERT_TRUE(sep.ok());
    EXPECT_TRUE(sep->separable) << "corner " << i;
  }
  Result<SeparationResult> interior =
      FindSeparatingWeights(rows.data(), 4, 3, {3});
  ASSERT_TRUE(interior.ok());
  EXPECT_FALSE(interior->separable);
}

TEST(SeparationTest, PaperExampleTwoSets) {
  // Figure 6: the 2-sets of the running example are exactly
  // {t1,t7}, {t7,t3}, {t3,t5} (0-based: {0,6}, {6,2}, {2,4}).
  data::Dataset ds = testing::PaperFigure1Dataset();
  auto separable = [&](std::vector<int32_t> inside) {
    Result<SeparationResult> sep =
        FindSeparatingWeights(ds.flat(), ds.size(), 2, inside);
    RRR_CHECK(sep.ok()) << sep.status().ToString();
    return sep->separable;
  };
  EXPECT_TRUE(separable({0, 6}));
  EXPECT_TRUE(separable({2, 6}));
  EXPECT_TRUE(separable({2, 4}));
  // A few non-2-sets.
  EXPECT_FALSE(separable({0, 1}));
  EXPECT_FALSE(separable({3, 5}));
  EXPECT_FALSE(separable({0, 4}));
}

TEST(SeparationTest, RejectsBadArguments) {
  const std::vector<double> rows = {1.0, 0.0, 0.0, 1.0};
  EXPECT_FALSE(FindSeparatingWeights(nullptr, 2, 2, {0}).ok());
  EXPECT_FALSE(FindSeparatingWeights(rows.data(), 2, 2, {}).ok());
  EXPECT_FALSE(FindSeparatingWeights(rows.data(), 2, 2, {0, 1}).ok());
  EXPECT_FALSE(FindSeparatingWeights(rows.data(), 2, 2, {5}).ok());
  EXPECT_FALSE(FindSeparatingWeights(rows.data(), 2, 0, {0}).ok());
}

TEST(SeparationTest, WeightsAreNonNegativeAndNormalized) {
  const std::vector<double> rows = {1.0, 0.0, 0.0, 1.0, 0.4, 0.4};
  Result<SeparationResult> sep =
      FindSeparatingWeights(rows.data(), 3, 2, {0, 1});
  ASSERT_TRUE(sep.ok());
  ASSERT_TRUE(sep->separable);
  double sum = 0.0;
  for (double w : sep->weights) {
    EXPECT_GE(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-7);
}

}  // namespace
}  // namespace lp
}  // namespace rrr
