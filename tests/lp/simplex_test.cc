#include "lp/simplex.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace rrr {
namespace lp {
namespace {

LpProblem TwoVarProblem() {
  // max 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x,y >= 0.
  // Optimum at (4, 0): value 12.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {3.0, 2.0};
  p.constraints = {{{1.0, 1.0}, Sense::kLe, 4.0},
                   {{1.0, 3.0}, Sense::kLe, 6.0}};
  return p;
}

TEST(SimplexTest, SolvesBasicMaximization) {
  Result<LpSolution> sol = Solve(TwoVarProblem());
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, LpStatus::kOptimal);
  EXPECT_NEAR(sol->objective_value, 12.0, 1e-9);
  EXPECT_NEAR(sol->x[0], 4.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 0.0, 1e-9);
}

TEST(SimplexTest, InteriorOptimum) {
  // max x + y  s.t.  2x + y <= 4,  x + 2y <= 4  ->  (4/3, 4/3), value 8/3.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  p.constraints = {{{2.0, 1.0}, Sense::kLe, 4.0},
                   {{1.0, 2.0}, Sense::kLe, 4.0}};
  Result<LpSolution> sol = Solve(p);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, LpStatus::kOptimal);
  EXPECT_NEAR(sol->objective_value, 8.0 / 3.0, 1e-9);
  EXPECT_NEAR(sol->x[0], 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 4.0 / 3.0, 1e-9);
}

TEST(SimplexTest, DetectsUnbounded) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 0.0};
  p.constraints = {{{0.0, 1.0}, Sense::kLe, 5.0}};  // x unconstrained above
  Result<LpSolution> sol = Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, LpStatus::kUnbounded);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x <= 1 and x >= 2 cannot hold together.
  LpProblem p;
  p.num_vars = 1;
  p.objective = {1.0};
  p.constraints = {{{1.0}, Sense::kLe, 1.0}, {{1.0}, Sense::kGe, 2.0}};
  Result<LpSolution> sol = Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, LpStatus::kInfeasible);
}

TEST(SimplexTest, HandlesEqualityConstraints) {
  // max x + y  s.t.  x + y = 3,  x <= 2  ->  value 3.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  p.constraints = {{{1.0, 1.0}, Sense::kEq, 3.0},
                   {{1.0, 0.0}, Sense::kLe, 2.0}};
  Result<LpSolution> sol = Solve(p);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, LpStatus::kOptimal);
  EXPECT_NEAR(sol->objective_value, 3.0, 1e-9);
  EXPECT_NEAR(sol->x[0] + sol->x[1], 3.0, 1e-9);
}

TEST(SimplexTest, HandlesGeConstraints) {
  // min x + y (= max -x - y)  s.t.  x + 2y >= 4,  3x + y >= 3.
  // Optimum at intersection (0.4, 1.8): value 2.2.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {-1.0, -1.0};
  p.constraints = {{{1.0, 2.0}, Sense::kGe, 4.0},
                   {{3.0, 1.0}, Sense::kGe, 3.0}};
  Result<LpSolution> sol = Solve(p);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, LpStatus::kOptimal);
  EXPECT_NEAR(sol->objective_value, -2.2, 1e-9);
  EXPECT_NEAR(sol->x[0], 0.4, 1e-9);
  EXPECT_NEAR(sol->x[1], 1.8, 1e-9);
}

TEST(SimplexTest, NegativeRhsIsNormalized) {
  // -x <= -2 is x >= 2; max -x -> x = 2.
  LpProblem p;
  p.num_vars = 1;
  p.objective = {-1.0};
  p.constraints = {{{-1.0}, Sense::kLe, -2.0}};
  Result<LpSolution> sol = Solve(p);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, LpStatus::kOptimal);
  EXPECT_NEAR(sol->x[0], 2.0, 1e-9);
}

TEST(SimplexTest, RedundantConstraintsAreHarmless) {
  LpProblem p = TwoVarProblem();
  p.constraints.push_back({{1.0, 1.0}, Sense::kLe, 4.0});   // duplicate
  p.constraints.push_back({{1.0, 1.0}, Sense::kLe, 100.0});  // slack
  Result<LpSolution> sol = Solve(p);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, LpStatus::kOptimal);
  EXPECT_NEAR(sol->objective_value, 12.0, 1e-9);
}

TEST(SimplexTest, DegenerateVertexDoesNotCycle) {
  // Classic degeneracy: three constraints meeting at one vertex.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  p.constraints = {{{1.0, 0.0}, Sense::kLe, 1.0},
                   {{0.0, 1.0}, Sense::kLe, 1.0},
                   {{1.0, 1.0}, Sense::kLe, 2.0}};
  Result<LpSolution> sol = Solve(p);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, LpStatus::kOptimal);
  EXPECT_NEAR(sol->objective_value, 2.0, 1e-9);
}

TEST(SimplexTest, BealeCyclingExampleTerminates) {
  // Beale's classic degenerate LP, on which naive Dantzig pivoting cycles
  // forever:
  //   max 0.75x1 - 150x2 + 0.02x3 - 6x4
  //   s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 <= 0
  //        0.5x1 - 90x2 - 0.02x3 + 3x4 <= 0
  //        x3 <= 1
  // Optimum value: 0.05 at x = (1/25? ...) -> known optimum 1/20.
  LpProblem p;
  p.num_vars = 4;
  p.objective = {0.75, -150.0, 0.02, -6.0};
  p.constraints = {
      {{0.25, -60.0, -0.04, 9.0}, Sense::kLe, 0.0},
      {{0.5, -90.0, -0.02, 3.0}, Sense::kLe, 0.0},
      {{0.0, 0.0, 1.0, 0.0}, Sense::kLe, 1.0}};
  Result<LpSolution> sol = Solve(p);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, LpStatus::kOptimal) << "anti-cycling failed";
  EXPECT_NEAR(sol->objective_value, 0.05, 1e-9);
}

TEST(SimplexTest, NoConstraintsZeroObjective) {
  LpProblem p;
  p.num_vars = 3;
  p.objective = {0.0, -1.0, 0.0};
  Result<LpSolution> sol = Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, LpStatus::kOptimal);
  EXPECT_NEAR(sol->objective_value, 0.0, 1e-12);
}

TEST(SimplexTest, NoConstraintsPositiveObjectiveIsUnbounded) {
  LpProblem p;
  p.num_vars = 1;
  p.objective = {1.0};
  Result<LpSolution> sol = Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, LpStatus::kUnbounded);
}

TEST(SimplexTest, RejectsMalformedObjective) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0};  // wrong width
  EXPECT_FALSE(Solve(p).ok());
}

TEST(SimplexTest, RejectsMalformedConstraint) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  p.constraints = {{{1.0}, Sense::kLe, 1.0}};  // wrong width
  EXPECT_FALSE(Solve(p).ok());
}

TEST(SimplexTest, SolutionSatisfiesAllConstraints) {
  // Random LPs: whenever kOptimal is reported the returned point must be
  // primal feasible and reproduce the reported objective.
  Rng rng(42);
  for (int rep = 0; rep < 50; ++rep) {
    LpProblem p;
    p.num_vars = 3;
    p.objective = {rng.Uniform(-1, 1), rng.Uniform(-1, 1),
                   rng.Uniform(-1, 1)};
    const int m = 5;
    for (int i = 0; i < m; ++i) {
      Constraint c;
      c.coeffs = {rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)};
      c.sense = Sense::kLe;
      c.rhs = rng.Uniform(0.5, 2.0);
      p.constraints.push_back(c);
    }
    Result<LpSolution> sol = Solve(p);
    ASSERT_TRUE(sol.ok());
    ASSERT_EQ(sol->status, LpStatus::kOptimal);  // box-like: always feasible
    double obj = 0.0;
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_GE(sol->x[j], -1e-9);
      obj += p.objective[j] * sol->x[j];
    }
    EXPECT_NEAR(obj, sol->objective_value, 1e-7);
    for (const auto& c : p.constraints) {
      double lhs = 0.0;
      for (size_t j = 0; j < 3; ++j) lhs += c.coeffs[j] * sol->x[j];
      EXPECT_LE(lhs, c.rhs + 1e-7);
    }
  }
}

TEST(SimplexTest, MatchesBruteForceOnRandomVertexEnumeration) {
  // 2-variable LPs solved independently by enumerating constraint-pair
  // intersections.
  Rng rng(77);
  for (int rep = 0; rep < 30; ++rep) {
    LpProblem p;
    p.num_vars = 2;
    p.objective = {rng.Uniform(0.1, 1.0), rng.Uniform(0.1, 1.0)};
    for (int i = 0; i < 4; ++i) {
      p.constraints.push_back({{rng.Uniform(0.1, 1.0), rng.Uniform(0.1, 1.0)},
                               Sense::kLe,
                               rng.Uniform(0.5, 2.0)});
    }
    Result<LpSolution> sol = Solve(p);
    ASSERT_TRUE(sol.ok());
    ASSERT_EQ(sol->status, LpStatus::kOptimal);

    // Brute force: candidate vertices are axis intercepts and pairwise
    // constraint intersections.
    std::vector<std::pair<double, double>> candidates = {{0.0, 0.0}};
    const auto& cs = p.constraints;
    for (size_t i = 0; i < cs.size(); ++i) {
      if (cs[i].coeffs[0] > 0) {
        candidates.push_back({cs[i].rhs / cs[i].coeffs[0], 0.0});
      }
      if (cs[i].coeffs[1] > 0) {
        candidates.push_back({0.0, cs[i].rhs / cs[i].coeffs[1]});
      }
      for (size_t j = i + 1; j < cs.size(); ++j) {
        const double det = cs[i].coeffs[0] * cs[j].coeffs[1] -
                           cs[j].coeffs[0] * cs[i].coeffs[1];
        if (std::fabs(det) < 1e-12) continue;
        const double x =
            (cs[i].rhs * cs[j].coeffs[1] - cs[j].rhs * cs[i].coeffs[1]) / det;
        const double y =
            (cs[i].coeffs[0] * cs[j].rhs - cs[j].coeffs[0] * cs[i].rhs) / det;
        candidates.push_back({x, y});
      }
    }
    double best = 0.0;
    for (const auto& [x, y] : candidates) {
      if (x < -1e-9 || y < -1e-9) continue;
      bool feasible = true;
      for (const auto& c : cs) {
        if (c.coeffs[0] * x + c.coeffs[1] * y > c.rhs + 1e-9) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        best = std::max(best, p.objective[0] * x + p.objective[1] * y);
      }
    }
    EXPECT_NEAR(sol->objective_value, best, 1e-6);
  }
}

}  // namespace
}  // namespace lp
}  // namespace rrr
