// Randomized cross-invariant harness: every workload family x seed runs the
// full algorithm suite and checks the paper's guarantees in one sweep.
// Complements the per-module tests with distribution diversity.
#include <gtest/gtest.h>

#include "core/kset_enum2d.h"
#include "core/mdrc.h"
#include "core/mdrrr.h"
#include "core/rrr2d.h"
#include "core/solver.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "eval/rank_regret.h"
#include "geometry/dominance.h"
#include "test_util.h"

namespace rrr {
namespace {

enum class Family {
  kUniform,
  kCorrelated,
  kAnticorrelated,
  kClustered,
  kDotLike,
  kBnLike,
};

data::Dataset Generate(Family family, size_t n, size_t d, uint64_t seed) {
  switch (family) {
    case Family::kUniform:
      return data::GenerateUniform(n, d, seed);
    case Family::kCorrelated:
      return data::GenerateCorrelated(n, d, seed, 0.8);
    case Family::kAnticorrelated:
      return data::GenerateAnticorrelated(n, d, seed);
    case Family::kClustered:
      return data::GenerateClustered(n, d, seed, 4);
    case Family::kDotLike:
      return data::GenerateDotLike(n, seed).ProjectPrefix(d);
    case Family::kBnLike:
      return data::GenerateBnLike(n, seed).ProjectPrefix(d);
  }
  return data::GenerateUniform(n, d, seed);
}

const char* FamilyName(Family family) {
  switch (family) {
    case Family::kUniform:
      return "uniform";
    case Family::kCorrelated:
      return "correlated";
    case Family::kAnticorrelated:
      return "anticorrelated";
    case Family::kClustered:
      return "clustered";
    case Family::kDotLike:
      return "dot-like";
    case Family::kBnLike:
      return "bn-like";
  }
  return "?";
}

class PropertyHarness2DTest
    : public ::testing::TestWithParam<std::tuple<Family, int>> {};

TEST_P(PropertyHarness2DTest, AllGuaranteesHoldIn2D) {
  const auto [family, seed] = GetParam();
  SCOPED_TRACE(FamilyName(family));
  const data::Dataset ds =
      Generate(family, 120, 2, static_cast<uint64_t>(seed));
  const size_t k = 4;

  // 2DRRR: regret <= 2k, and size <= |exact k-hitting set|.
  Result<std::vector<int32_t>> rrr2d = core::Solve2dRrr(ds, k);
  ASSERT_TRUE(rrr2d.ok());
  Result<int64_t> regret_2d = eval::ExactRankRegret2D(ds, *rrr2d);
  ASSERT_TRUE(regret_2d.ok());
  EXPECT_LE(*regret_2d, static_cast<int64_t>(2 * k));

  // MDRRR on exact 2D k-sets: regret <= k.
  Result<core::KSetCollection> ksets = core::EnumerateKSets2D(ds, k);
  ASSERT_TRUE(ksets.ok());
  Result<std::vector<int32_t>> mdrrr = core::SolveMdrrr(ds, *ksets);
  ASSERT_TRUE(mdrrr.ok());
  Result<int64_t> regret_mdrrr = eval::ExactRankRegret2D(ds, *mdrrr);
  ASSERT_TRUE(regret_mdrrr.ok());
  EXPECT_LE(*regret_mdrrr, static_cast<int64_t>(k));

  // MDRC: regret <= d*k = 2k.
  Result<std::vector<int32_t>> mdrc = core::SolveMdrc(ds, k);
  ASSERT_TRUE(mdrc.ok());
  Result<int64_t> regret_mdrc = eval::ExactRankRegret2D(ds, *mdrc);
  ASSERT_TRUE(regret_mdrc.ok());
  EXPECT_LE(*regret_mdrc, static_cast<int64_t>(2 * k));

  // Every k-set member must be inside the k-skyband (soundness chain).
  const std::vector<int32_t> band =
      geometry::KSkyband(ds.flat(), ds.size(), ds.dims(), k);
  for (const core::KSet& s : ksets->sets()) {
    for (int32_t id : s.ids) {
      EXPECT_TRUE(std::binary_search(band.begin(), band.end(), id));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, PropertyHarness2DTest,
    ::testing::Combine(
        ::testing::Values(Family::kUniform, Family::kCorrelated,
                          Family::kAnticorrelated, Family::kClustered,
                          Family::kDotLike, Family::kBnLike),
        ::testing::Values(1, 2)));

class PropertyHarnessMDTest
    : public ::testing::TestWithParam<std::tuple<Family, int>> {};

TEST_P(PropertyHarnessMDTest, AllGuaranteesHoldIn4D) {
  const auto [family, seed] = GetParam();
  SCOPED_TRACE(FamilyName(family));
  const data::Dataset ds =
      Generate(family, 400, 4, static_cast<uint64_t>(seed));
  const size_t k = 16;  // 4% of n

  core::RrrOptions opts;
  opts.k = k;
  eval::EvaluateOptions eval_opts;
  eval_opts.k = 4 * k;  // the d*k bound
  eval_opts.num_functions = 800;

  for (core::Algorithm algorithm :
       {core::Algorithm::kMdRc, core::Algorithm::kMdRrr}) {
    opts.algorithm = algorithm;
    Result<core::RrrResult> res =
        core::FindRankRegretRepresentative(ds, opts);
    ASSERT_TRUE(res.ok()) << core::AlgorithmName(algorithm);
    Result<eval::EvaluationReport> report =
        eval::Evaluate(ds, res->representative, eval_opts);
    ASSERT_TRUE(report.ok());
    // d*k bound on the sampled estimate for MDRC; MDRRR's k-guarantee is
    // per-sampled-k-set, so d*k is a safe common envelope here too.
    EXPECT_LE(report->rank_regret, static_cast<int64_t>(4 * k))
        << core::AlgorithmName(algorithm) << " " << ToString(*report);
    EXPECT_DOUBLE_EQ(report->topk_hit_rate, 1.0)
        << core::AlgorithmName(algorithm);
    EXPECT_LT(report->size, ds.size() / 4)
        << core::AlgorithmName(algorithm);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, PropertyHarnessMDTest,
    ::testing::Combine(
        ::testing::Values(Family::kUniform, Family::kCorrelated,
                          Family::kAnticorrelated, Family::kClustered,
                          Family::kDotLike, Family::kBnLike),
        ::testing::Values(1, 2)));

}  // namespace
}  // namespace rrr
