// Cross-checks between independent implementations of the same quantities:
// the strongest class of tests in the suite (two algorithms must agree, or
// one bounds the other by a theorem).
#include <gtest/gtest.h>

#include "core/kset_enum2d.h"
#include "core/kset_graph.h"
#include "core/kset_sampler.h"
#include "core/mdrc.h"
#include "core/mdrrr.h"
#include "core/rrr2d.h"
#include "data/generators.h"
#include "eval/rank_regret.h"
#include "hitting/greedy.h"
#include "test_util.h"

namespace rrr {
namespace {

class CrossAlgorithm2DTest : public ::testing::TestWithParam<int> {
 protected:
  data::Dataset MakeData() const {
    return data::GenerateUniform(80, 2, static_cast<uint64_t>(GetParam()));
  }
};

TEST_P(CrossAlgorithm2DTest, MdrrrNeverBeatsExactHittingSetSize) {
  const data::Dataset ds = MakeData();
  const size_t k = 3;
  Result<core::KSetCollection> ksets = core::EnumerateKSets2D(ds, k);
  ASSERT_TRUE(ksets.ok());
  Result<std::vector<int32_t>> mdrrr = core::SolveMdrrr(ds, *ksets);
  ASSERT_TRUE(mdrrr.ok());
  Result<std::vector<int32_t>> exact =
      hitting::ExactHittingSet(ksets->ToSetSystem(), 1u << 22);
  ASSERT_TRUE(exact.ok());
  EXPECT_GE(mdrrr->size(), exact->size());
}

TEST_P(CrossAlgorithm2DTest, TwoDrrrSizeAtMostExactKHittingSetSize) {
  // The optimal hitting set of the k-set collection is a valid RRR with
  // regret exactly <= k, so 2DRRR (Theorem 3: <= OPT) can never be larger.
  const data::Dataset ds = MakeData();
  const size_t k = 3;
  Result<core::KSetCollection> ksets = core::EnumerateKSets2D(ds, k);
  ASSERT_TRUE(ksets.ok());
  Result<std::vector<int32_t>> exact =
      hitting::ExactHittingSet(ksets->ToSetSystem(), 1u << 22);
  ASSERT_TRUE(exact.ok());
  Result<std::vector<int32_t>> rrr2d = core::Solve2dRrr(ds, k);
  ASSERT_TRUE(rrr2d.ok());
  EXPECT_LE(rrr2d->size(), exact->size());
}

TEST_P(CrossAlgorithm2DTest, AllAlgorithmsStayWithinTheirRegretBounds) {
  const data::Dataset ds = MakeData();
  for (size_t k : {1u, 4u}) {
    Result<core::KSetCollection> ksets = core::EnumerateKSets2D(ds, k);
    ASSERT_TRUE(ksets.ok());

    Result<std::vector<int32_t>> rrr2d = core::Solve2dRrr(ds, k);
    Result<std::vector<int32_t>> mdrrr = core::SolveMdrrr(ds, *ksets);
    Result<std::vector<int32_t>> mdrc = core::SolveMdrc(ds, k);
    ASSERT_TRUE(rrr2d.ok());
    ASSERT_TRUE(mdrrr.ok());
    ASSERT_TRUE(mdrc.ok());

    EXPECT_LE(*eval::ExactRankRegret2D(ds, *rrr2d),
              static_cast<int64_t>(2 * k));
    EXPECT_LE(*eval::ExactRankRegret2D(ds, *mdrrr),
              static_cast<int64_t>(k));
    EXPECT_LE(*eval::ExactRankRegret2D(ds, *mdrc),
              static_cast<int64_t>(2 * k));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossAlgorithm2DTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(CrossAlgorithm3DTest, SamplerPlusGraphAgreeOnSmallInput) {
  const data::Dataset ds = data::GenerateUniform(12, 3, 55);
  const size_t k = 2;
  Result<core::KSetCollection> graph = core::EnumerateKSetsGraph(ds, k);
  ASSERT_TRUE(graph.ok());
  core::KSetSamplerOptions opts;
  opts.termination_count = 5000;
  Result<core::KSetSampleResult> sampled = core::SampleKSets(ds, k, opts);
  ASSERT_TRUE(sampled.ok());
  // Patient sampling on a tiny instance finds every k-set with an interior
  // witness region; graph enumeration may additionally contain boundary
  // cases, so sampled <= graph with containment.
  EXPECT_LE(sampled->ksets.size(), graph->size());
  for (const core::KSet& s : sampled->ksets.sets()) {
    EXPECT_TRUE(graph->Contains(s));
  }
  EXPECT_GE(sampled->ksets.size(), graph->size() - 1);
}

TEST(CrossAlgorithmMDTest, MdrcAndMdrrrBothCoverSampledFunctions) {
  const data::Dataset ds = data::GenerateDotLike(400, 66).ProjectPrefix(4);
  const size_t k = 20;
  Result<std::vector<int32_t>> mdrc = core::SolveMdrc(ds, k);
  Result<std::vector<int32_t>> mdrrr = core::SolveMdrrrSampled(ds, k);
  ASSERT_TRUE(mdrc.ok());
  ASSERT_TRUE(mdrrr.ok());
  eval::SampledRankRegretOptions eval_opts;
  eval_opts.num_functions = 2000;
  eval_opts.seed = 4242;
  EXPECT_LE(*eval::SampledRankRegret(ds, *mdrc, eval_opts),
            static_cast<int64_t>(4 * k));
  EXPECT_LE(*eval::SampledRankRegret(ds, *mdrrr, eval_opts),
            static_cast<int64_t>(2 * k));
}

}  // namespace
}  // namespace rrr
