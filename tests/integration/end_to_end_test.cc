// Full pipelines a downstream user would run: generate/load data, normalize,
// solve, evaluate — through the public facade only.
#include <cstdio>

#include <gtest/gtest.h>

#include "baseline/hd_rrms.h"
#include "core/solver.h"
#include "data/csv.h"
#include "data/generators.h"
#include "data/normalize.h"
#include "eval/rank_regret.h"
#include "test_util.h"

namespace rrr {
namespace {

TEST(EndToEndTest, CsvToRepresentativePipeline) {
  // Write raw (unnormalized) data with mixed directions, read it back,
  // normalize, and solve.
  const std::string path = ::testing::TempDir() + "rrr_e2e_flights.csv";
  {
    Result<data::Dataset> raw = data::Dataset::FromRows(
        {{30.0, 900.0}, {5.0, 300.0}, {12.0, 2000.0}, {45.0, 2500.0},
         {2.0, 150.0}, {8.0, 1200.0}, {3.0, 600.0}, {20.0, 1800.0}},
        {"delay_min", "distance_mi"});
    ASSERT_TRUE(raw.ok());
    ASSERT_TRUE(data::WriteCsv(path, *raw).ok());
  }
  Result<data::Dataset> loaded = data::ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  Result<data::Dataset> normalized = data::MinMaxNormalize(
      *loaded,
      {data::Direction::kLowerBetter, data::Direction::kHigherBetter});
  ASSERT_TRUE(normalized.ok());

  core::RrrOptions opts;
  opts.k = 2;
  Result<core::RrrResult> res =
      core::FindRankRegretRepresentative(*normalized, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->algorithm_used, core::Algorithm::k2dRrr);
  Result<int64_t> regret =
      eval::ExactRankRegret2D(*normalized, res->representative);
  ASSERT_TRUE(regret.ok());
  EXPECT_LE(*regret, 4);
  std::remove(path.c_str());
}

TEST(EndToEndTest, DotLikeWorkloadAllAlgorithms) {
  const data::Dataset ds = data::GenerateDotLike(500, 77).ProjectPrefix(3);
  const size_t k = 25;  // 5% of n
  for (core::Algorithm algorithm :
       {core::Algorithm::kMdRrr, core::Algorithm::kMdRc}) {
    core::RrrOptions opts;
    opts.k = k;
    opts.algorithm = algorithm;
    Result<core::RrrResult> res =
        core::FindRankRegretRepresentative(ds, opts);
    ASSERT_TRUE(res.ok()) << core::AlgorithmName(algorithm);
    EXPECT_LE(res->representative.size(), 40u)
        << core::AlgorithmName(algorithm);
    eval::SampledRankRegretOptions eval_opts;
    eval_opts.num_functions = 2000;
    Result<int64_t> regret =
        eval::SampledRankRegret(ds, res->representative, eval_opts);
    ASSERT_TRUE(regret.ok());
    EXPECT_LE(*regret, static_cast<int64_t>(3 * k))
        << core::AlgorithmName(algorithm);
  }
}

TEST(EndToEndTest, BnLikeWorkloadWithDualProblem) {
  const data::Dataset ds = data::GenerateBnLike(800, 88).ProjectPrefix(3);
  core::RrrOptions base;
  Result<core::DualResult> dual = core::SolveDualProblem(ds, 10, base);
  ASSERT_TRUE(dual.ok());
  EXPECT_LE(dual->representative.size(), 10u);
  // The returned k is honest: measured regret respects the MDRC bound.
  eval::SampledRankRegretOptions eval_opts;
  eval_opts.num_functions = 1500;
  Result<int64_t> regret =
      eval::SampledRankRegret(ds, dual->representative, eval_opts);
  ASSERT_TRUE(regret.ok());
  EXPECT_LE(*regret, static_cast<int64_t>(3 * dual->k));
}

TEST(EndToEndTest, PaperComparisonProtocol) {
  // Section 6.1: "we first run the algorithm MDRC, and then pass the output
  // size of it as the input to HD-RRMS." The rank collapse of HD-RRMS needs
  // congregated scores at scale (Figures 18/20 use n up to 400K); 20K rows
  // of the delay-skewed DOT-like workload suffice for the qualitative gap.
  const data::Dataset ds = data::GenerateDotLike(20000, 99).ProjectPrefix(3);
  const size_t k = 200;  // 1% of n
  core::RrrOptions opts;
  opts.k = k;
  opts.algorithm = core::Algorithm::kMdRc;
  Result<core::RrrResult> mdrc = core::FindRankRegretRepresentative(ds, opts);
  ASSERT_TRUE(mdrc.ok());
  baseline::HdRrmsOptions hd_opts;
  hd_opts.num_functions = 200;
  Result<baseline::HdRrmsResult> hd = baseline::SolveHdRrms(
      ds, mdrc->representative.size(), hd_opts);
  ASSERT_TRUE(hd.ok());
  EXPECT_LE(hd->representative.size(), mdrc->representative.size());

  eval::SampledRankRegretOptions eval_opts;
  eval_opts.num_functions = 2000;
  const int64_t mdrc_regret =
      *eval::SampledRankRegret(ds, mdrc->representative, eval_opts);
  const int64_t hd_regret =
      *eval::SampledRankRegret(ds, hd->representative, eval_opts);
  // The paper's qualitative claim: MDRC bounds rank-regret, HD-RRMS does
  // not (its regret lands orders of magnitude higher).
  EXPECT_LE(mdrc_regret, static_cast<int64_t>(3 * k));
  EXPECT_GT(hd_regret, mdrc_regret);
}

TEST(EndToEndTest, RepeatedSolvesAreIdempotent) {
  const data::Dataset ds = data::GenerateUniform(150, 3, 12);
  core::RrrOptions opts;
  opts.k = 7;
  Result<core::RrrResult> a = core::FindRankRegretRepresentative(ds, opts);
  Result<core::RrrResult> b = core::FindRankRegretRepresentative(ds, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->representative, b->representative);
}

}  // namespace
}  // namespace rrr
