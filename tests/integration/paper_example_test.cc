// End-to-end checks against every concrete number the paper states for its
// running example (Figures 1-6 and the Section 4/5 walk-throughs).
#include <gtest/gtest.h>

#include "core/find_ranges.h"
#include "core/kset_enum2d.h"
#include "core/kset_graph.h"
#include "core/mdrc.h"
#include "core/mdrrr.h"
#include "core/rrr2d.h"
#include "eval/rank_regret.h"
#include "geometry/convex_hull.h"
#include "geometry/dominance.h"
#include "test_util.h"
#include "topk/rank.h"
#include "topk/topk.h"

namespace rrr {
namespace {

class PaperExampleTest : public ::testing::Test {
 protected:
  data::Dataset ds_ = testing::PaperFigure1Dataset();
};

TEST_F(PaperExampleTest, Figure2DiagonalRanking) {
  // "the items are ranked as t7, t3, t5, t1, t2, t6, and t4, based on
  // f = x1 + x2".
  topk::LinearFunction f({1.0, 1.0});
  EXPECT_EQ(topk::TopK(ds_, f, 7),
            (std::vector<int32_t>{6, 2, 4, 0, 1, 5, 3}));
}

TEST_F(PaperExampleTest, Figure3XAxisRankingAndTopTwo) {
  // "the ordering of items based on f = x1 is t7, t1, t3, t2, t5, t4, t6;
  // hence, for any set X containing t7 or t1, RR_f(X) <= 2."
  topk::LinearFunction f({1.0, 0.0});
  EXPECT_EQ(topk::TopK(ds_, f, 7),
            (std::vector<int32_t>{6, 0, 2, 1, 4, 3, 5}));
  EXPECT_LE(topk::MinRankOfSubset(ds_, f, {6, 3}), 2);
  EXPECT_LE(topk::MinRankOfSubset(ds_, f, {0, 4}), 2);
}

TEST_F(PaperExampleTest, Figure6KSetsByBothEnumerators) {
  Result<core::KSetCollection> sweep = core::EnumerateKSets2D(ds_, 2);
  Result<core::KSetCollection> graph = core::EnumerateKSetsGraph(ds_, 2);
  ASSERT_TRUE(sweep.ok());
  ASSERT_TRUE(graph.ok());
  for (const auto* c : {&*sweep, &*graph}) {
    EXPECT_EQ(c->size(), 3u);
    EXPECT_TRUE(c->Contains(core::KSet{{0, 6}}));  // {t1, t7}
    EXPECT_TRUE(c->Contains(core::KSet{{2, 6}}));  // {t7, t3}
    EXPECT_TRUE(c->Contains(core::KSet{{2, 4}}));  // {t3, t5}
  }
}

TEST_F(PaperExampleTest, SkylineAndConvexMaxima) {
  // t7 dominates t1; t3 dominates t2 and t4; t5 dominates t6: the skyline
  // is {t3, t5, t7}.
  const std::vector<int32_t> sky =
      geometry::Skyline(ds_.flat(), ds_.size(), 2);
  EXPECT_EQ(sky, (std::vector<int32_t>{2, 4, 6}));
  // Convex maxima (order-1 RRR): t7, t3, t5 only.
  Result<std::vector<int32_t>> maxima =
      geometry::ConvexMaxima(ds_.flat(), ds_.size(), 2);
  ASSERT_TRUE(maxima.ok());
  EXPECT_EQ(*maxima, (std::vector<int32_t>{2, 4, 6}));
}

TEST_F(PaperExampleTest, Section4TwoDrrrWalkthrough) {
  // "if we execute Algorithm 2 on the ranges provided in Figure 4, it
  // returns the set {t3, t1}" — with the paper's max-coverage greedy.
  core::Rrr2dOptions paper_greedy;
  paper_greedy.cover = hitting::CoverStrategy::kGreedyMaxCoverage;
  Result<std::vector<int32_t>> rep = core::Solve2dRrr(ds_, 2, paper_greedy);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(*rep, (std::vector<int32_t>{0, 2}));  // {t1, t3}
  // And the 2k guarantee holds.
  Result<int64_t> regret = eval::ExactRankRegret2D(ds_, *rep);
  ASSERT_TRUE(regret.ok());
  EXPECT_LE(*regret, 4);
}

TEST_F(PaperExampleTest, AllThreeAlgorithmsProduceValidRepresentatives) {
  const size_t k = 2;
  // 2DRRR.
  Result<std::vector<int32_t>> rrr2d = core::Solve2dRrr(ds_, k);
  ASSERT_TRUE(rrr2d.ok());
  // MDRRR over the exact k-set collection.
  Result<core::KSetCollection> ksets = core::EnumerateKSets2D(ds_, k);
  ASSERT_TRUE(ksets.ok());
  Result<std::vector<int32_t>> mdrrr = core::SolveMdrrr(ds_, *ksets);
  ASSERT_TRUE(mdrrr.ok());
  // MDRC.
  Result<std::vector<int32_t>> mdrc = core::SolveMdrc(ds_, k);
  ASSERT_TRUE(mdrc.ok());

  Result<int64_t> r1 = eval::ExactRankRegret2D(ds_, *rrr2d);
  Result<int64_t> r2 = eval::ExactRankRegret2D(ds_, *mdrrr);
  Result<int64_t> r3 = eval::ExactRankRegret2D(ds_, *mdrc);
  EXPECT_LE(*r1, 4);  // 2k
  EXPECT_LE(*r2, 2);  // k (exact collection)
  EXPECT_LE(*r3, 4);  // dk
  // The optimal size is 2; 2DRRR must attain it (Theorem 3).
  EXPECT_EQ(rrr2d->size(), 2u);
  EXPECT_EQ(testing::BruteForceOptimalRrrSize2D(ds_, k), 2);
}

TEST_F(PaperExampleTest, FindRangesMatchesFigure4Shape) {
  // Figure 4 plots ranges for exactly t1, t3, t5, t7; t1 and t7 start at
  // 0, t3 and t5 end at pi/2 ordering their begins b7=b1=0 < b3 < b5.
  Result<std::vector<core::ItemRange>> ranges = core::FindRanges(ds_, 2);
  ASSERT_TRUE(ranges.ok());
  EXPECT_TRUE((*ranges)[0].in_topk);
  EXPECT_TRUE((*ranges)[2].in_topk);
  EXPECT_TRUE((*ranges)[4].in_topk);
  EXPECT_TRUE((*ranges)[6].in_topk);
  EXPECT_FALSE((*ranges)[1].in_topk);
  EXPECT_FALSE((*ranges)[3].in_topk);
  EXPECT_FALSE((*ranges)[5].in_topk);
  EXPECT_LT((*ranges)[0].end, (*ranges)[6].end);   // t1 exits before t7
  EXPECT_LT((*ranges)[2].begin, (*ranges)[4].begin);  // t3 enters before t5
}

}  // namespace
}  // namespace rrr
