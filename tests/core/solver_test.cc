#include "core/solver.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "eval/rank_regret.h"
#include "geometry/convex_hull.h"
#include "test_util.h"

namespace rrr {
namespace core {
namespace {

TEST(SolverTest, AlgorithmNames) {
  EXPECT_EQ(AlgorithmName(Algorithm::k2dRrr), "2DRRR");
  EXPECT_EQ(AlgorithmName(Algorithm::kMdRrr), "MDRRR");
  EXPECT_EQ(AlgorithmName(Algorithm::kMdRc), "MDRC");
  EXPECT_EQ(AlgorithmName(Algorithm::kAuto), "AUTO");
  EXPECT_EQ(AlgorithmName(Algorithm::kConvexMaxima), "MAXIMA");
}

TEST(SolverTest, ParseAlgorithmRoundTripsEveryName) {
  for (Algorithm algorithm :
       {Algorithm::kAuto, Algorithm::k2dRrr, Algorithm::kMdRrr,
        Algorithm::kMdRc, Algorithm::kConvexMaxima}) {
    Result<Algorithm> parsed = ParseAlgorithm(AlgorithmName(algorithm));
    ASSERT_TRUE(parsed.ok()) << AlgorithmName(algorithm);
    EXPECT_EQ(*parsed, algorithm);
  }
}

TEST(SolverTest, ParseAlgorithmAcceptsCliSpellings) {
  EXPECT_EQ(*ParseAlgorithm("auto"), Algorithm::kAuto);
  EXPECT_EQ(*ParseAlgorithm("2drrr"), Algorithm::k2dRrr);
  EXPECT_EQ(*ParseAlgorithm("mdrrr"), Algorithm::kMdRrr);
  EXPECT_EQ(*ParseAlgorithm("mdrc"), Algorithm::kMdRc);
  EXPECT_EQ(*ParseAlgorithm("maxima"), Algorithm::kConvexMaxima);
  EXPECT_EQ(*ParseAlgorithm("MdRc"), Algorithm::kMdRc);  // case-insensitive
}

TEST(SolverTest, ParseAlgorithmRejectsUnknownNames) {
  for (const char* bad : {"", "2d", "greedy", "mdrc ", "autoo"}) {
    Result<Algorithm> parsed = ParseAlgorithm(bad);
    EXPECT_FALSE(parsed.ok()) << "'" << bad << "'";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SolverTest, AutoPicks2DrrrForTwoDims) {
  const data::Dataset ds = data::GenerateUniform(50, 2, 1);
  RrrOptions opts;
  opts.k = 3;
  Result<RrrResult> res = FindRankRegretRepresentative(ds, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->algorithm_used, Algorithm::k2dRrr);
  EXPECT_FALSE(res->representative.empty());
  EXPECT_GE(res->seconds, 0.0);
}

TEST(SolverTest, AutoPicksMdrcForHigherDims) {
  const data::Dataset ds = data::GenerateUniform(50, 4, 2);
  RrrOptions opts;
  opts.k = 3;
  Result<RrrResult> res = FindRankRegretRepresentative(ds, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->algorithm_used, Algorithm::kMdRc);
}

TEST(SolverTest, AutoPicksExactMaximaForKOneInHighDims) {
  // k = 1 in d >= 3 cannot terminate under MDRC's partition (disjoint
  // 1-sets); kAuto must route to the exact maxima solve instead.
  const data::Dataset ds = data::GenerateUniform(60, 3, 21);
  RrrOptions opts;
  opts.k = 1;
  Result<RrrResult> res = FindRankRegretRepresentative(ds, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->algorithm_used, Algorithm::kConvexMaxima);
  // The result is exactly the convex maxima.
  Result<std::vector<int32_t>> direct =
      geometry::ConvexMaxima(ds.flat(), ds.size(), ds.dims());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(res->representative, *direct);
  // And it is a true order-1 representative on sampled functions.
  eval::SampledRankRegretOptions eval_opts;
  eval_opts.num_functions = 2000;
  Result<int64_t> regret =
      eval::SampledRankRegret(ds, res->representative, eval_opts);
  ASSERT_TRUE(regret.ok());
  EXPECT_EQ(*regret, 1);
}

TEST(SolverTest, AutoPrefers2DrrrOverMaximaForKOneInTwoDims) {
  // d == 2 with k == 1 satisfies both special rules; 2DRRR must win (it is
  // exact and size-optimal in 2D, and the maxima LP adds nothing there).
  const data::Dataset ds = data::GenerateUniform(60, 2, 31);
  RrrOptions opts;
  opts.k = 1;
  Result<RrrResult> res = FindRankRegretRepresentative(ds, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->algorithm_used, Algorithm::k2dRrr);
}

TEST(SolverTest, AutoHandlesKAtLeastN) {
  // k >= n: every tuple is in every top-k, so any single item represents.
  for (size_t dims : {2u, 3u}) {
    const data::Dataset ds = data::GenerateUniform(12, dims, 32);
    for (size_t k : {ds.size(), 2 * ds.size()}) {
      RrrOptions opts;
      opts.k = k;
      Result<RrrResult> res = FindRankRegretRepresentative(ds, opts);
      ASSERT_TRUE(res.ok()) << "d=" << dims << " k=" << k;
      EXPECT_EQ(res->algorithm_used,
                dims == 2 ? Algorithm::k2dRrr : Algorithm::kMdRc);
      EXPECT_EQ(res->representative.size(), 1u);
    }
  }
}

TEST(SolverTest, AutoHandlesOneDimensionalData) {
  // d == 1: a single ranking function exists; its top-1 is the whole
  // answer for every k. kAuto routes to MDRC, whose d == 1 fast path
  // returns exactly that.
  Result<data::Dataset> ds =
      data::Dataset::FromRows({{0.3}, {0.9}, {0.1}, {0.7}});
  ASSERT_TRUE(ds.ok());
  for (size_t k : {1u, 3u, 10u}) {
    RrrOptions opts;
    opts.k = k;
    Result<RrrResult> res = FindRankRegretRepresentative(*ds, opts);
    ASSERT_TRUE(res.ok()) << "k=" << k;
    EXPECT_EQ(res->algorithm_used, Algorithm::kMdRc);
    EXPECT_EQ(res->representative, (std::vector<int32_t>{1}));
  }
}

TEST(SolverTest, DimensionMismatchErrorsAreInvalidArgument) {
  const data::Dataset ds3 = data::GenerateUniform(20, 3, 33);
  RrrOptions opts;
  opts.k = 2;
  opts.algorithm = Algorithm::k2dRrr;  // 2DRRR on d == 3
  Result<RrrResult> res = FindRankRegretRepresentative(ds3, opts);
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);

  Result<data::Dataset> ds1 = data::Dataset::FromRows({{0.2}, {0.8}});
  ASSERT_TRUE(ds1.ok());
  res = FindRankRegretRepresentative(*ds1, opts);  // 2DRRR on d == 1
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);

  opts.algorithm = Algorithm::kConvexMaxima;  // maxima with k > 1
  res = FindRankRegretRepresentative(ds3, opts);
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverTest, ConvexMaximaRejectsKGreaterThanOne) {
  const data::Dataset ds = data::GenerateUniform(20, 3, 22);
  RrrOptions opts;
  opts.k = 2;
  opts.algorithm = Algorithm::kConvexMaxima;
  EXPECT_FALSE(FindRankRegretRepresentative(ds, opts).ok());
}

TEST(SolverTest, ExplicitAlgorithmIsRespected) {
  const data::Dataset ds = data::GenerateUniform(80, 3, 3);
  RrrOptions opts;
  opts.k = 5;
  opts.algorithm = Algorithm::kMdRrr;
  Result<RrrResult> res = FindRankRegretRepresentative(ds, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->algorithm_used, Algorithm::kMdRrr);
}

TEST(SolverTest, TwoDrrrOnHighDimsIsRejected) {
  const data::Dataset ds = data::GenerateUniform(20, 3, 4);
  RrrOptions opts;
  opts.k = 2;
  opts.algorithm = Algorithm::k2dRrr;
  EXPECT_FALSE(FindRankRegretRepresentative(ds, opts).ok());
}

TEST(SolverTest, RejectsBadArguments) {
  data::Dataset empty;
  RrrOptions opts;
  EXPECT_FALSE(FindRankRegretRepresentative(empty, opts).ok());
  const data::Dataset ds = data::GenerateUniform(10, 2, 5);
  opts.k = 0;
  EXPECT_FALSE(FindRankRegretRepresentative(ds, opts).ok());
}

TEST(SolverTest, RejectsNonFiniteData) {
  Result<data::Dataset> ds = data::Dataset::FromRows(
      {{0.5, 0.5}, {std::nan(""), 0.2}});
  ASSERT_TRUE(ds.ok());
  RrrOptions opts;
  opts.k = 1;
  Result<RrrResult> res = FindRankRegretRepresentative(*ds, opts);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverTest, ReportsElapsedTime) {
  const data::Dataset ds = data::GenerateUniform(500, 3, 23);
  RrrOptions opts;
  opts.k = 10;
  Result<RrrResult> res = FindRankRegretRepresentative(ds, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_GE(res->seconds, 0.0);
  EXPECT_LT(res->seconds, 60.0);
}

TEST(SolverTest, AllAlgorithmsMeetTheirBoundsOnOneDataset) {
  const data::Dataset ds = data::GenerateUniform(80, 2, 6);
  const size_t k = 4;
  for (Algorithm algorithm :
       {Algorithm::k2dRrr, Algorithm::kMdRrr, Algorithm::kMdRc}) {
    RrrOptions opts;
    opts.k = k;
    opts.algorithm = algorithm;
    Result<RrrResult> res = FindRankRegretRepresentative(ds, opts);
    ASSERT_TRUE(res.ok()) << AlgorithmName(algorithm);
    Result<int64_t> regret =
        eval::ExactRankRegret2D(ds, res->representative);
    ASSERT_TRUE(regret.ok());
    // Weakest common guarantee: d*k = 2k (2DRRR promises 2k, MDRC d*k;
    // MDRRR can exceed k only on k-sets its sample missed).
    EXPECT_LE(*regret, static_cast<int64_t>(2 * k))
        << AlgorithmName(algorithm);
  }
}

TEST(DualProblemTest, FindsSmallKForGenerousBudget) {
  const data::Dataset ds = data::GenerateUniform(200, 2, 7);
  RrrOptions base;
  Result<DualResult> dual = SolveDualProblem(ds, 8, base);
  ASSERT_TRUE(dual.ok());
  EXPECT_GE(dual->k, 1u);
  EXPECT_LE(dual->representative.size(), 8u);
  // Feasibility: re-solving at the returned k meets the budget.
  RrrOptions check = base;
  check.k = dual->k;
  Result<RrrResult> res = FindRankRegretRepresentative(ds, check);
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res->representative.size(), 8u);
}

TEST(DualProblemTest, TightBudgetNeedsLargerK) {
  const data::Dataset ds = data::GenerateAnticorrelated(300, 2, 8);
  RrrOptions base;
  Result<DualResult> tight = SolveDualProblem(ds, 2, base);
  Result<DualResult> loose = SolveDualProblem(ds, 12, base);
  ASSERT_TRUE(tight.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_GE(tight->k, loose->k);
  EXPECT_LE(tight->representative.size(), 2u);
}

TEST(DualProblemTest, BudgetOfOneIsAlwaysFeasibleAtKEqualN) {
  // k = n makes any single item a representative, so max_size = 1 always
  // has a solution.
  const data::Dataset ds = data::GenerateUniform(60, 3, 9);
  RrrOptions base;
  Result<DualResult> dual = SolveDualProblem(ds, 1, base);
  ASSERT_TRUE(dual.ok());
  EXPECT_EQ(dual->representative.size(), 1u);
}

TEST(DualProblemTest, BudgetAtLeastNIsSatisfiedByKOne) {
  // max_size >= n: every k fits, so the search must return the smallest
  // k = 1 (and must not fall off either end of the binary search).
  const data::Dataset ds = data::GenerateUniform(40, 2, 11);
  RrrOptions base;
  for (size_t budget : {ds.size(), 2 * ds.size()}) {
    Result<DualResult> dual = SolveDualProblem(ds, budget, base);
    ASSERT_TRUE(dual.ok()) << "budget " << budget;
    EXPECT_EQ(dual->k, 1u);
    EXPECT_LE(dual->representative.size(), budget);
  }
}

TEST(DualProblemTest, SingletonDataset) {
  const data::Dataset ds = data::GenerateUniform(1, 3, 12);
  RrrOptions base;
  Result<DualResult> dual = SolveDualProblem(ds, 1, base);
  ASSERT_TRUE(dual.ok());
  EXPECT_EQ(dual->k, 1u);
  EXPECT_EQ(dual->representative, (std::vector<int32_t>{0}));
}

TEST(DualProblemTest, AllProbesExhaustedIsResourceExhaustedNotNotFound) {
  // With a zero node budget every MDRC probe dies with ResourceExhausted;
  // reporting NotFound ("no k met the size budget") would send the caller
  // to raise max_size when the actual failure is the solver budget.
  const data::Dataset ds = data::GenerateUniform(60, 3, 13);
  RrrOptions base;
  base.k = 2;  // force MDRC (kAuto picks it for d > 2, k > 1)
  base.algorithm = Algorithm::kMdRc;
  base.mdrc.max_nodes = 0;
  Result<DualResult> dual = SolveDualProblem(ds, 5, base);
  ASSERT_FALSE(dual.ok());
  EXPECT_EQ(dual.status().code(), StatusCode::kResourceExhausted);
}

TEST(DualProblemTest, PartialExhaustionStillFindsFeasibleK) {
  // Small-but-nonzero node budget: small-k probes exhaust, large-k probes
  // resolve quickly; the search must keep walking upward and succeed.
  const data::Dataset ds = data::GenerateUniform(120, 3, 14);
  RrrOptions base;
  base.algorithm = Algorithm::kMdRc;
  base.mdrc.max_nodes = 3000;
  Result<DualResult> dual = SolveDualProblem(ds, 6, base);
  ASSERT_TRUE(dual.ok());
  EXPECT_LE(dual->representative.size(), 6u);
  // Feasibility check at the returned k.
  RrrOptions check = base;
  check.k = dual->k;
  Result<RrrResult> res = FindRankRegretRepresentative(ds, check);
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res->representative.size(), 6u);
}

TEST(DualProblemTest, RejectsBadArguments) {
  const data::Dataset ds = data::GenerateUniform(10, 2, 10);
  RrrOptions base;
  EXPECT_FALSE(SolveDualProblem(ds, 0, base).ok());
  data::Dataset empty;
  EXPECT_FALSE(SolveDualProblem(empty, 3, base).ok());
}

}  // namespace
}  // namespace core
}  // namespace rrr
