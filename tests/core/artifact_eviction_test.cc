// Eviction protocol of the shared-artifact caches: evicting only severs
// cache references (in-flight holders keep their shared_ptrs), and every
// artifact rebuilds bit-identically on the next touch because it is a
// deterministic pure function of the dataset. The concurrent hammer below
// is the TSan witness that eviction never races a live query.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/engine.h"
#include "core/prepared_dataset.h"
#include "data/generators.h"

namespace rrr {
namespace core {
namespace {

std::shared_ptr<const PreparedDataset> Prepare(size_t n, size_t d,
                                               uint64_t seed) {
  Result<std::shared_ptr<const PreparedDataset>> prepared =
      PreparedDataset::Create(data::GenerateUniform(n, d, seed));
  EXPECT_TRUE(prepared.ok());
  return prepared.value();
}

TEST(ArtifactEviction, EvictedArtifactsRebuildBitIdentically) {
  std::shared_ptr<const PreparedDataset> prepared = Prepare(400, 3, 21);
  Result<std::shared_ptr<RrrEngine>> engine = RrrEngine::Create(prepared);
  ASSERT_TRUE(engine.ok());

  Result<QueryResult> warm = engine.value()->Solve(3);
  ASSERT_TRUE(warm.ok());
  const std::vector<int32_t> ids_before = warm.value().representative;
  const size_t bytes_warm = prepared->ApproxArtifactBytes().evictable() +
                            engine.value()->ApproxMemoBytes();
  ASSERT_GT(bytes_warm, 0u);

  const size_t freed =
      prepared->EvictSharedArtifacts() + engine.value()->EvictMemos();
  EXPECT_EQ(freed, bytes_warm);
  EXPECT_EQ(prepared->ApproxArtifactBytes().evictable(), 0u);
  EXPECT_EQ(engine.value()->ApproxMemoBytes(), 0u);

  // Rebuild on next touch: same representative, artifacts repopulate.
  Result<QueryResult> rebuilt = engine.value()->Solve(3);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(rebuilt.value().diagnostics.result_from_cache);
  EXPECT_EQ(rebuilt.value().representative, ids_before);
  EXPECT_GT(prepared->ApproxArtifactBytes().evictable(), 0u);
}

TEST(ArtifactEviction, ByteAccountingCoversEveryArtifactClass) {
  std::shared_ptr<const PreparedDataset> prepared = Prepare(300, 3, 5);
  Result<std::shared_ptr<RrrEngine>> engine = RrrEngine::Create(prepared);
  ASSERT_TRUE(engine.ok());
  const PreparedDataset::ArtifactBytes cold = prepared->ApproxArtifactBytes();
  EXPECT_GT(cold.dataset, 0u);  // raw rows always counted, never evictable
  EXPECT_EQ(cold.total(), cold.dataset + cold.evictable());

  ASSERT_TRUE(engine.value()->Solve(4).ok());
  const PreparedDataset::ArtifactBytes warm = prepared->ApproxArtifactBytes();
  EXPECT_GT(warm.evictable(), cold.evictable());
  EXPECT_EQ(warm.dataset, cold.dataset);
  EXPECT_GT(engine.value()->ApproxMemoBytes(), 0u);
}

TEST(ArtifactEviction, LazyCellEvictSkipsIdleAndComputing) {
  std::shared_ptr<const PreparedDataset> prepared = Prepare(100, 2, 3);
  // Nothing computed yet: eviction finds nothing and frees nothing.
  EXPECT_EQ(prepared->EvictSharedArtifacts(), 0u);
}

TEST(ArtifactEviction, ConcurrentEvictionNeverRacesQueries) {
  std::shared_ptr<const PreparedDataset> prepared = Prepare(500, 3, 17);
  Result<std::shared_ptr<RrrEngine>> created = RrrEngine::Create(prepared);
  ASSERT_TRUE(created.ok());
  std::shared_ptr<RrrEngine> engine = created.value();

  // Baseline answers to compare every concurrent result against.
  std::vector<std::vector<int32_t>> expected;
  for (size_t k = 2; k <= 5; ++k) {
    Result<QueryResult> result = engine->Solve(k);
    ASSERT_TRUE(result.ok());
    expected.push_back(result.value().representative);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 30; ++i) {
        const size_t k = 2 + (static_cast<size_t>(t) + i) % 4;
        Result<QueryResult> result = engine->Solve(k);
        if (!result.ok() ||
            result.value().representative != expected[k - 2]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::thread evictor([&] {
    while (!stop.load()) {
      prepared->EvictSharedArtifacts();
      engine->EvictMemos();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (std::thread& worker : workers) worker.join();
  stop.store(true);
  evictor.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ArtifactEviction, RebuildFaultDegradesThenHealsBitIdentically) {
  FailpointRegistry::Instance().DisarmAll();
  std::shared_ptr<const PreparedDataset> prepared = Prepare(350, 3, 9);
  EngineOptions options;
  options.memoize_results = false;  // every Solve recomputes: no memo veil
  options.artifact_failure_cooldown_ms = 0;  // re-attempt immediately
  Result<std::shared_ptr<RrrEngine>> created =
      RrrEngine::Create(prepared, options);
  ASSERT_TRUE(created.ok());
  std::shared_ptr<RrrEngine> engine = created.value();

  // Warm build, then the oracle answer and a non-empty evictable pool.
  Result<QueryResult> warm = engine->Solve(3);
  ASSERT_TRUE(warm.ok());
  const std::vector<int32_t> oracle = warm.value().representative;
  EXPECT_FALSE(warm.value().diagnostics.degraded);
  ASSERT_GT(prepared->ApproxArtifactBytes().evictable(), 0u);

  // Evict everything, then make the candidate-index REBUILD die: the
  // query must fall back to the legacy unpruned path, not error.
  ASSERT_GT(prepared->EvictSharedArtifacts(), 0u);
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("core.artifact.candidate_index", "once")
                  .ok());
  Result<QueryResult> degraded = engine->Solve(3);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded.value().diagnostics.degraded);
  EXPECT_EQ(degraded.value().diagnostics.skyband_size, 0u);  // no index ran
  EXPECT_EQ(degraded.value().representative, oracle);

  // Fault cleared (once self-disarmed): the next query rebuilds the
  // artifact bit-identically and sheds the degraded flag.
  Result<QueryResult> healed = engine->Solve(3);
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed.value().diagnostics.degraded);
  EXPECT_EQ(healed.value().representative, oracle);
  EXPECT_GT(prepared->ApproxArtifactBytes().evictable(), 0u);
  FailpointRegistry::Instance().DisarmAll();
}

TEST(ArtifactEviction, CooldownSkipsRebuildAttemptsUntilItExpires) {
  FailpointRegistry::Instance().DisarmAll();
  std::shared_ptr<const PreparedDataset> prepared = Prepare(200, 3, 13);
  EngineOptions options;
  options.memoize_results = false;
  options.artifact_failure_cooldown_ms = 60'000;  // effectively forever
  Result<std::shared_ptr<RrrEngine>> created =
      RrrEngine::Create(prepared, options);
  ASSERT_TRUE(created.ok());
  std::shared_ptr<RrrEngine> engine = created.value();

  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("core.artifact.candidate_index", "once")
                  .ok());
  Result<QueryResult> first = engine->Solve(3);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().diagnostics.degraded);

  // The fault is gone (once drained) but the cooldown is live: the next
  // query must not even attempt the build — degraded again, same answer.
  Result<QueryResult> second = engine->Solve(3);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().diagnostics.degraded);
  EXPECT_EQ(second.value().representative, first.value().representative);
  EXPECT_EQ(second.value().diagnostics.skyband_size, 0u);
  FailpointRegistry::Instance().DisarmAll();
}

}  // namespace
}  // namespace core
}  // namespace rrr
