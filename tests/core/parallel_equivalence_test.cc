// threads = 1 must reproduce the serial solver bit-for-bit, and threads = N
// must reproduce threads = 1: parallelism in this library only reorders
// internal evaluation, never the result. These tests pin that contract for
// every parallelized hot path (MDRC, K-SETr/MDRRR, the evaluators, and the
// convex-maxima LP loop).
#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/kset_sampler.h"
#include "core/mdrc.h"
#include "core/mdrrr.h"
#include "core/solver.h"
#include "data/generators.h"
#include "eval/rank_regret.h"
#include "geometry/convex_hull.h"
#include "test_util.h"

namespace rrr {
namespace core {
namespace {

constexpr size_t kThreads = 4;  // oversubscribes small CI machines: fine

TEST(ParallelEquivalenceTest, MdrcIdenticalAcrossThreadCounts) {
  for (uint64_t seed : {7u, 21u}) {
    const data::Dataset ds =
        data::GenerateDotLike(2000, seed).ProjectPrefix(4);
    MdrcOptions serial;
    serial.threads = 1;
    MdrcOptions parallel;
    parallel.threads = kThreads;
    Result<std::vector<int32_t>> a = SolveMdrc(ds, 40, serial);
    Result<std::vector<int32_t>> b = SolveMdrc(ds, 40, parallel);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "seed " << seed;
  }
}

TEST(ParallelEquivalenceTest, MdrcReuseChosenOrderDependenceIsPreserved) {
  // reuse_chosen makes every leaf decision depend on all earlier leaves —
  // the hardest case for parallel equivalence (the replay must walk leaves
  // in exactly the serial traversal order).
  const data::Dataset ds = data::GenerateBnLike(900, 3).ProjectPrefix(5);
  for (bool reuse : {true, false}) {
    MdrcOptions serial;
    serial.threads = 1;
    serial.reuse_chosen = reuse;
    MdrcOptions parallel = serial;
    parallel.threads = kThreads;
    Result<std::vector<int32_t>> a = SolveMdrc(ds, 60, serial);
    Result<std::vector<int32_t>> b = SolveMdrc(ds, 60, parallel);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "reuse_chosen = " << reuse;
  }
}

TEST(ParallelEquivalenceTest, MdrcStructuralStatsMatch) {
  const data::Dataset ds = data::GenerateUniform(500, 3, 11);
  MdrcOptions serial;
  serial.threads = 1;
  MdrcOptions parallel;
  parallel.threads = kThreads;
  MdrcStats s1, sN;
  ASSERT_TRUE(SolveMdrc(ds, 10, serial, &s1).ok());
  ASSERT_TRUE(SolveMdrc(ds, 10, parallel, &sN).ok());
  // The partition tree is identical; only cache hit/eval counts may drift
  // under concurrency (racing threads can evaluate a corner twice).
  EXPECT_EQ(s1.nodes, sN.nodes);
  EXPECT_EQ(s1.leaves, sN.leaves);
  EXPECT_EQ(s1.depth_cap_leaves, sN.depth_cap_leaves);
  EXPECT_EQ(s1.max_depth, sN.max_depth);
  EXPECT_EQ(s1.corner_evals + s1.cache_hits, sN.corner_evals + sN.cache_hits);
}

TEST(ParallelEquivalenceTest, MdrcResourceExhaustionAgreesAcrossThreads) {
  const data::Dataset ds = data::GenerateUniform(300, 5, 3);
  MdrcOptions serial;
  serial.threads = 1;
  serial.max_nodes = 2000;
  MdrcOptions parallel = serial;
  parallel.threads = kThreads;
  Result<std::vector<int32_t>> a = SolveMdrc(ds, 2, serial);
  Result<std::vector<int32_t>> b = SolveMdrc(ds, 2, parallel);
  EXPECT_FALSE(a.ok());
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParallelEquivalenceTest, KSetSamplerIdenticalAcrossThreadCounts) {
  const data::Dataset ds = data::GenerateDotLike(600, 5).ProjectPrefix(3);
  KSetSamplerOptions serial;
  serial.seed = 99;
  serial.threads = 1;
  serial.termination_count = 60;
  KSetSamplerOptions parallel = serial;
  parallel.threads = kThreads;
  Result<KSetSampleResult> a = SampleKSets(ds, 12, serial);
  Result<KSetSampleResult> b = SampleKSets(ds, 12, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->samples_drawn, b->samples_drawn);
  ASSERT_EQ(a->ksets.size(), b->ksets.size());
  // Insertion order (not just the set) must match: the hitting-set stage
  // is sensitive to it.
  for (size_t i = 0; i < a->ksets.size(); ++i) {
    EXPECT_EQ(a->ksets.sets()[i].ids, b->ksets.sets()[i].ids) << "set " << i;
  }
}

TEST(ParallelEquivalenceTest, KSetSamplerOptionsComposeWithThreads) {
  const data::Dataset ds = data::GenerateCorrelated(400, 3, 17);
  for (bool skyband : {false, true}) {
    for (bool ta : {false, true}) {
      KSetSamplerOptions serial;
      serial.threads = 1;
      serial.termination_count = 40;
      serial.skyband_prefilter = skyband;
      serial.use_threshold_algorithm = ta;
      KSetSamplerOptions parallel = serial;
      parallel.threads = kThreads;
      Result<KSetSampleResult> a = SampleKSets(ds, 8, serial);
      Result<KSetSampleResult> b = SampleKSets(ds, 8, parallel);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ASSERT_EQ(a->ksets.size(), b->ksets.size())
          << "skyband=" << skyband << " ta=" << ta;
      for (size_t i = 0; i < a->ksets.size(); ++i) {
        EXPECT_EQ(a->ksets.sets()[i].ids, b->ksets.sets()[i].ids);
      }
    }
  }
}

TEST(ParallelEquivalenceTest, MdrrrIdenticalAcrossThreadCounts) {
  const data::Dataset ds = data::GenerateDotLike(500, 31).ProjectPrefix(3);
  KSetSamplerOptions serial;
  serial.threads = 1;
  KSetSamplerOptions parallel = serial;
  parallel.threads = kThreads;
  Result<std::vector<int32_t>> a = SolveMdrrrSampled(ds, 10, {}, serial);
  Result<std::vector<int32_t>> b = SolveMdrrrSampled(ds, 10, {}, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(ParallelEquivalenceTest, SampledRankRegretIdenticalAcrossThreadCounts) {
  const data::Dataset ds = data::GenerateUniform(800, 4, 5);
  const std::vector<int32_t> subset = {1, 100, 250, 600};
  eval::SampledRankRegretOptions serial;
  serial.num_functions = 3000;
  serial.threads = 1;
  eval::SampledRankRegretOptions parallel = serial;
  parallel.threads = kThreads;
  Result<int64_t> a = eval::SampledRankRegret(ds, subset, serial);
  Result<int64_t> b = eval::SampledRankRegret(ds, subset, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(ParallelEquivalenceTest, ExactWithinKIdenticalAcrossThreadCounts) {
  const data::Dataset ds = testing::PaperFigure1Dataset();
  // A subset that misses some 2-set: both paths must produce the same
  // verdict and the same witness (first missed set in enumeration order).
  const std::vector<int32_t> subset = {0};
  Result<eval::RankRegretCertificate> a =
      eval::ExactRankRegretWithinK(ds, subset, 2, 1);
  Result<eval::RankRegretCertificate> b =
      eval::ExactRankRegretWithinK(ds, subset, 2, kThreads);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->within_k, b->within_k);
  EXPECT_EQ(a->witness_rank, b->witness_rank);
  EXPECT_EQ(a->witness_weights, b->witness_weights);
}

TEST(ParallelEquivalenceTest, ConvexMaximaIdenticalAcrossThreadCounts) {
  const data::Dataset ds = data::GenerateAnticorrelated(300, 3, 9);
  Result<std::vector<int32_t>> a =
      geometry::ConvexMaxima(ds.flat(), ds.size(), ds.dims(), 1);
  Result<std::vector<int32_t>> b =
      geometry::ConvexMaxima(ds.flat(), ds.size(), ds.dims(), kThreads);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(ParallelEquivalenceTest, FacadeThreadsOverrideProducesSameResult) {
  const data::Dataset ds = data::GenerateUniform(400, 3, 13);
  RrrOptions serial;
  serial.k = 8;
  serial.threads = 1;
  RrrOptions parallel = serial;
  parallel.threads = kThreads;
  Result<RrrResult> a = FindRankRegretRepresentative(ds, serial);
  Result<RrrResult> b = FindRankRegretRepresentative(ds, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->algorithm_used, b->algorithm_used);
  EXPECT_EQ(a->representative, b->representative);
}

}  // namespace
}  // namespace core
}  // namespace rrr
