// Property tests for the incremental k-skyband count maintenance in
// isolation: after ANY sequence of appends and deletes, the maintained
// always-outranker counts must be bit-identical to a fresh
// CountAlwaysOutrankers over the current rows, band classification must
// equal a fresh CandidateIndex::Create, monotone-in-k slicing must hold,
// and the delete path's locality bound must fall back cleanly.
#include "core/dataset_updates.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/candidate_index.h"
#include "data/dataset.h"
#include "test_util.h"

namespace rrr {
namespace core {
namespace {

using rrr::testing::DataFamily;
using rrr::testing::FamilyRows;
using rrr::testing::MakeDataset;

std::vector<uint32_t> FreshCounts(const data::Dataset& dataset, size_t cap) {
  Result<std::vector<uint32_t>> counts =
      CandidateIndex::CountAlwaysOutrankers(dataset, cap, /*threads=*/1);
  RRR_CHECK(counts.ok()) << counts.status().ToString();
  return *counts;
}

CandidateIndexOptions ForcedBuild() {
  CandidateIndexOptions options;
  options.min_dataset_size = 0;
  options.max_band_fraction = 1.0;
  options.precheck_sample = 0;
  options.budget_slack_per_tuple = 0;
  return options;
}

TEST(CandidateMaintenanceTest, ExtendMatchesFreshCountsAfterEveryAppend) {
  for (DataFamily family : rrr::testing::AllDataFamilies()) {
    SCOPED_TRACE(rrr::testing::DataFamilyName(family));
    for (size_t d : {size_t{2}, size_t{4}}) {
      for (size_t cap : {size_t{1}, size_t{3}, size_t{8}, size_t{1000}}) {
        SCOPED_TRACE("d=" + std::to_string(d) + " cap=" + std::to_string(cap));
        std::vector<std::vector<double>> rows = FamilyRows(family, 40, d, 5);
        std::vector<uint32_t> counts = FreshCounts(MakeDataset(rows), cap);
        for (size_t batch = 0; batch < 6; ++batch) {
          const size_t old_rows = rows.size();
          const std::vector<std::vector<double>> appended =
              FamilyRows(family, 1 + batch % 4, d, 100 + batch);
          rows.insert(rows.end(), appended.begin(), appended.end());
          const data::Dataset grown = MakeDataset(rows);
          Result<std::vector<uint32_t>> extended =
              ExtendOutrankerCountsForAppend(grown, old_rows, cap, counts);
          ASSERT_TRUE(extended.ok()) << extended.status().ToString();
          EXPECT_EQ(*extended, FreshCounts(grown, cap)) << "batch " << batch;
          counts = std::move(*extended);
        }
      }
    }
  }
}

TEST(CandidateMaintenanceTest, ShrinkMatchesFreshCountsAfterEveryDelete) {
  for (DataFamily family : rrr::testing::AllDataFamilies()) {
    SCOPED_TRACE(rrr::testing::DataFamilyName(family));
    for (size_t cap : {size_t{1}, size_t{4}, size_t{1000}}) {
      SCOPED_TRACE("cap=" + std::to_string(cap));
      std::vector<std::vector<double>> rows = FamilyRows(family, 48, 3, 9);
      std::vector<uint32_t> counts = FreshCounts(MakeDataset(rows), cap);
      Rng rng(13);
      for (size_t step = 0; step < 12; ++step) {
        const size_t deleted = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(rows.size()) - 1));
        const data::Dataset old_data = MakeDataset(rows);
        // An unbounded recount budget: maintenance must always succeed and
        // must be exact.
        Result<ShrinkCountsOutcome> shrunk = ShrinkOutrankerCountsForDelete(
            old_data, deleted, cap, counts, /*max_recounts=*/rows.size());
        ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
        ASSERT_TRUE(shrunk->maintained);
        rows.erase(rows.begin() + static_cast<int64_t>(deleted));
        EXPECT_EQ(shrunk->counts, FreshCounts(MakeDataset(rows), cap))
            << "step " << step << " deleted " << deleted;
        counts = std::move(shrunk->counts);
      }
    }
  }
}

TEST(CandidateMaintenanceTest, MixedUpdateSequenceStaysExact) {
  for (DataFamily family : rrr::testing::AllDataFamilies()) {
    SCOPED_TRACE(rrr::testing::DataFamilyName(family));
    const size_t cap = 5;
    std::vector<std::vector<double>> rows = FamilyRows(family, 24, 2, 21);
    std::vector<uint32_t> counts = FreshCounts(MakeDataset(rows), cap);
    Rng rng(17);
    for (size_t step = 0; step < 20; ++step) {
      if (rows.size() > 2 && rng.Bernoulli(0.5)) {
        const size_t deleted = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(rows.size()) - 1));
        Result<ShrinkCountsOutcome> shrunk = ShrinkOutrankerCountsForDelete(
            MakeDataset(rows), deleted, cap, counts,
            /*max_recounts=*/rows.size());
        ASSERT_TRUE(shrunk.ok());
        ASSERT_TRUE(shrunk->maintained);
        rows.erase(rows.begin() + static_cast<int64_t>(deleted));
        counts = std::move(shrunk->counts);
      } else {
        const size_t old_rows = rows.size();
        const std::vector<std::vector<double>> appended =
            FamilyRows(family, 1 + step % 3, 2, 300 + step);
        rows.insert(rows.end(), appended.begin(), appended.end());
        Result<std::vector<uint32_t>> extended = ExtendOutrankerCountsForAppend(
            MakeDataset(rows), old_rows, cap, counts);
        ASSERT_TRUE(extended.ok());
        counts = std::move(*extended);
      }
      EXPECT_EQ(counts, FreshCounts(MakeDataset(rows), cap))
          << "step " << step;
    }
  }
}

TEST(CandidateMaintenanceTest, MaintainedCountsSliceMonotonicallyInK) {
  // The cache contract SharedCandidateIndex relies on: counts capped at a
  // larger cap slice down to any smaller cap by min(), and band membership
  // derived from maintained counts matches a fresh forced Create per k.
  const size_t big_cap = 9;
  std::vector<std::vector<double>> rows =
      FamilyRows(DataFamily::kAnticorrelated, 36, 3, 31);
  std::vector<uint32_t> counts = FreshCounts(MakeDataset(rows), big_cap);
  const size_t old_rows = rows.size();
  const std::vector<std::vector<double>> appended =
      FamilyRows(DataFamily::kAnticorrelated, 10, 3, 32);
  rows.insert(rows.end(), appended.begin(), appended.end());
  const data::Dataset grown = MakeDataset(rows);
  Result<std::vector<uint32_t>> extended =
      ExtendOutrankerCountsForAppend(grown, old_rows, big_cap, counts);
  ASSERT_TRUE(extended.ok());

  for (size_t small_cap : {size_t{1}, size_t{3}, size_t{6}, big_cap}) {
    SCOPED_TRACE("cap " + std::to_string(small_cap));
    const std::vector<uint32_t> fresh_small = FreshCounts(grown, small_cap);
    for (size_t i = 0; i < extended->size(); ++i) {
      EXPECT_EQ(std::min((*extended)[i], static_cast<uint32_t>(small_cap)),
                fresh_small[i])
          << "row " << i;
    }
    // Band classification: a row is in the k-skyband iff it has fewer than
    // k always-outrankers.
    Result<CandidateIndex::Outcome> outcome =
        CandidateIndex::Create(grown, small_cap, ForcedBuild());
    ASSERT_TRUE(outcome.ok());
    ASSERT_NE(outcome->index, nullptr);
    std::vector<int32_t> expected_band;
    for (size_t i = 0; i < extended->size(); ++i) {
      if ((*extended)[i] < small_cap) {
        expected_band.push_back(static_cast<int32_t>(i));
      }
    }
    EXPECT_EQ(outcome->index->band_ids(), expected_band);
  }
}

TEST(CandidateMaintenanceTest, DeleteRecountLimitFallsBackToRebuild) {
  // A row dominating everything saturates every other row's count at
  // cap=1; deleting it forces a recount of every survivor, which must
  // abort at the locality bound with maintained == false and no counts.
  std::vector<std::vector<double>> rows = FamilyRows(DataFamily::kUniform,
                                                     30, 2, 41);
  for (std::vector<double>& row : rows) {
    for (double& v : row) v = std::min(v, 0.9);
  }
  rows.push_back({1.0, 1.0});
  const int32_t king = static_cast<int32_t>(rows.size()) - 1;
  const data::Dataset old_data = MakeDataset(rows);
  const std::vector<uint32_t> counts = FreshCounts(old_data, 1);

  Result<ShrinkCountsOutcome> bounded = ShrinkOutrankerCountsForDelete(
      old_data, static_cast<size_t>(king), 1, counts, /*max_recounts=*/2);
  ASSERT_TRUE(bounded.ok());
  EXPECT_FALSE(bounded->maintained);
  EXPECT_TRUE(bounded->counts.empty());

  // With enough budget the same delete maintains exactly.
  Result<ShrinkCountsOutcome> unbounded = ShrinkOutrankerCountsForDelete(
      old_data, static_cast<size_t>(king), 1, counts,
      /*max_recounts=*/rows.size());
  ASSERT_TRUE(unbounded.ok());
  ASSERT_TRUE(unbounded->maintained);
  std::vector<std::vector<double>> survivors(rows.begin(), rows.end() - 1);
  EXPECT_EQ(unbounded->counts, FreshCounts(MakeDataset(survivors), 1));
}

TEST(CandidateMaintenanceTest, PrimitivesValidateTheirArguments) {
  const data::Dataset ds =
      MakeDataset(FamilyRows(DataFamily::kUniform, 8, 2, 51));
  const std::vector<uint32_t> counts = FreshCounts(ds, 3);
  EXPECT_FALSE(ExtendOutrankerCountsForAppend(ds, 9, 3, counts).ok());
  EXPECT_FALSE(ExtendOutrankerCountsForAppend(ds, 4, 3, counts).ok());
  EXPECT_FALSE(ExtendOutrankerCountsForAppend(ds, 8, 0, counts).ok());
  EXPECT_FALSE(ShrinkOutrankerCountsForDelete(ds, 8, 3, counts, 4).ok());
  EXPECT_FALSE(ShrinkOutrankerCountsForDelete(ds, 0, 0, counts, 4).ok());
  const std::vector<uint32_t> short_counts(4, 0);
  EXPECT_FALSE(ShrinkOutrankerCountsForDelete(ds, 0, 3, short_counts, 4).ok());
}

}  // namespace
}  // namespace core
}  // namespace rrr
