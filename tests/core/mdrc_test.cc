#include "core/mdrc.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "eval/rank_regret.h"
#include "geometry/convex_hull.h"
#include "test_util.h"

namespace rrr {
namespace core {
namespace {

TEST(MdrcTest, RejectsBadArguments) {
  data::Dataset ds = data::GenerateUniform(10, 2, 1);
  EXPECT_FALSE(SolveMdrc(ds, 0).ok());
  data::Dataset empty;
  EXPECT_FALSE(SolveMdrc(empty, 1).ok());
}

TEST(MdrcTest, OneDimensionalDataReturnsTopItem) {
  data::Dataset ds = testing::MakeDataset({{0.2}, {0.9}, {0.5}});
  Result<std::vector<int32_t>> rep = SolveMdrc(ds, 2);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(*rep, (std::vector<int32_t>{1}));
}

TEST(MdrcTest, SingleDominatingPointResolvesAtRoot) {
  data::Dataset ds = testing::MakeDataset(
      {{0.9, 0.9}, {0.1, 0.5}, {0.5, 0.1}});
  MdrcStats stats;
  Result<std::vector<int32_t>> rep = SolveMdrc(ds, 1, {}, &stats);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(*rep, (std::vector<int32_t>{0}));
  EXPECT_EQ(stats.nodes, 1u);
  EXPECT_EQ(stats.leaves, 1u);
  EXPECT_EQ(stats.depth_cap_leaves, 0u);
}

TEST(MdrcTest, PaperExampleKTwoSmallOutputWithBoundedRegret) {
  data::Dataset ds = testing::PaperFigure1Dataset();
  Result<std::vector<int32_t>> rep = SolveMdrc(ds, 2);
  ASSERT_TRUE(rep.ok());
  EXPECT_LE(rep->size(), 3u);
  Result<int64_t> regret = eval::ExactRankRegret2D(ds, *rep);
  ASSERT_TRUE(regret.ok());
  EXPECT_LE(*regret, 4);  // d*k = 2*2 (Theorem 6)
}

class MdrcGuarantee2DTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MdrcGuarantee2DTest, ExactRegretWithinDK) {
  const auto [seed, n, k] = GetParam();
  const data::Dataset ds = data::GenerateUniform(
      static_cast<size_t>(n), 2, static_cast<uint64_t>(seed));
  MdrcStats stats;
  Result<std::vector<int32_t>> rep =
      SolveMdrc(ds, static_cast<size_t>(k), {}, &stats);
  ASSERT_TRUE(rep.ok());
  if (k >= 2) {
    // For k >= 2 adjacent k-sets share k-1 items, so every sufficiently
    // small cell resolves; the depth cap is unreachable on generic data.
    // k = 1 is different: adjacent 1-sets are disjoint, so cells straddling
    // a winner-change angle never resolve and the cap fires by design
    // (see SolveMdrc docs).
    EXPECT_EQ(stats.depth_cap_leaves, 0u)
        << "non-degenerate data hit the cap";
  }
  Result<int64_t> regret = eval::ExactRankRegret2D(ds, *rep);
  ASSERT_TRUE(regret.ok());
  EXPECT_LE(*regret, 2 * k) << "Theorem 6 (d=2) violated";
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, MdrcGuarantee2DTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(30, 150, 500),
                       ::testing::Values(1, 4, 12)));

class MdrcGuaranteeMDTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MdrcGuaranteeMDTest, SampledRegretWithinDK) {
  const auto [seed, d, k] = GetParam();
  const data::Dataset ds = data::GenerateUniform(
      300, static_cast<size_t>(d), static_cast<uint64_t>(seed));
  Result<std::vector<int32_t>> rep = SolveMdrc(ds, static_cast<size_t>(k));
  ASSERT_TRUE(rep.ok());
  eval::SampledRankRegretOptions eval_opts;
  eval_opts.num_functions = 3000;
  Result<int64_t> regret = eval::SampledRankRegret(ds, *rep, eval_opts);
  ASSERT_TRUE(regret.ok());
  EXPECT_LE(*regret, static_cast<int64_t>(d) * k);
}

// k stays a few percent of n: MDRC's design regime (the paper sweeps
// 0.1%-10% of n). Tiny k at high d explodes the partition; that behaviour
// is pinned separately in NodeBudgetStopsPathologicalSettings.
INSTANTIATE_TEST_SUITE_P(
    RandomInputs, MdrcGuaranteeMDTest,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::Values(3, 4, 5),
                       ::testing::Values(10, 25)));

TEST(MdrcTest, NodeBudgetStopsPathologicalSettings) {
  // k = 2 in d = 5 forces near-exhaustive partitioning; the budget turns a
  // runaway solve into a clean error.
  const data::Dataset ds = data::GenerateUniform(300, 5, 3);
  MdrcOptions opts;
  opts.max_nodes = 2000;
  Result<std::vector<int32_t>> rep = SolveMdrc(ds, 2, opts);
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kResourceExhausted);
}

TEST(MdrcTest, StatsAreCoherent) {
  const data::Dataset ds = data::GenerateUniform(400, 3, 11);
  MdrcStats stats;
  Result<std::vector<int32_t>> rep = SolveMdrc(ds, 8, {}, &stats);
  ASSERT_TRUE(rep.ok());
  // Binary recursion tree: nodes = 2 * internal + 1 when every node is a
  // leaf or has two children.
  const size_t internal = stats.nodes - stats.leaves - stats.depth_cap_leaves;
  EXPECT_EQ(stats.nodes, 2 * internal + 1);
  EXPECT_GE(stats.cache_hits, 1u) << "corner memoization never fired";
  EXPECT_LE(rep->size(), stats.leaves + stats.depth_cap_leaves);
}

TEST(MdrcTest, DeterministicAcrossRuns) {
  const data::Dataset ds = data::GenerateBnLike(200, 12).ProjectPrefix(4);
  Result<std::vector<int32_t>> a = SolveMdrc(ds, 5);
  Result<std::vector<int32_t>> b = SolveMdrc(ds, 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(MdrcTest, KGreaterEqualNReturnsOneItem) {
  const data::Dataset ds = data::GenerateUniform(20, 3, 13);
  Result<std::vector<int32_t>> rep = SolveMdrc(ds, 50);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->size(), 1u);
}

TEST(MdrcTest, DuplicateHeavyDataTerminatesViaDepthCapOrLeaves) {
  // All points identical: every corner's top-k is {0, 1, ..., k-1}; the
  // root resolves immediately.
  data::Dataset ds = testing::MakeDataset(
      {{0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}});
  MdrcStats stats;
  Result<std::vector<int32_t>> rep = SolveMdrc(ds, 2, {}, &stats);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->size(), 1u);
  EXPECT_EQ(stats.nodes, 1u);
}

TEST(MdrcTest, LargerKShrinksOrKeepsWorkload) {
  // Section 6: MDRC gets *faster* as k grows because corner top-k sets
  // intersect sooner. Proxy: fewer recursion nodes.
  const data::Dataset ds = data::GenerateDotLike(2000, 14).ProjectPrefix(3);
  MdrcStats small_k, large_k;
  ASSERT_TRUE(SolveMdrc(ds, 5, {}, &small_k).ok());
  ASSERT_TRUE(SolveMdrc(ds, 100, {}, &large_k).ok());
  EXPECT_LE(large_k.nodes, small_k.nodes);
}

TEST(MdrcTest, KOneOutputIn2DIsWithinTheConvexMaxima) {
  // Order-1 representatives can only use tuples that win somewhere; MDRC's
  // k = 1 leaves pick corner winners, so the 2D output must be a subset of
  // the convex maxima.
  const data::Dataset ds = data::GenerateUniform(100, 2, 16);
  Result<std::vector<int32_t>> rep = SolveMdrc(ds, 1);
  ASSERT_TRUE(rep.ok());
  Result<std::vector<int32_t>> maxima =
      geometry::ConvexMaxima(ds.flat(), ds.size(), ds.dims());
  ASSERT_TRUE(maxima.ok());
  for (int32_t id : *rep) {
    EXPECT_TRUE(std::binary_search(maxima->begin(), maxima->end(), id));
  }
}

TEST(MdrcTest, LeafReuseOnlyShrinksTheOutput) {
  // Both modes carry the Theorem 6 guarantee; reuse must never be larger.
  const data::Dataset ds = data::GenerateDotLike(800, 15).ProjectPrefix(4);
  const size_t k = 24;
  MdrcOptions with_reuse;
  MdrcOptions without_reuse;
  without_reuse.reuse_chosen = false;
  Result<std::vector<int32_t>> a = SolveMdrc(ds, k, with_reuse);
  Result<std::vector<int32_t>> b = SolveMdrc(ds, k, without_reuse);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(a->size(), b->size());
  eval::SampledRankRegretOptions eval_opts;
  eval_opts.num_functions = 1500;
  EXPECT_LE(*eval::SampledRankRegret(ds, *a, eval_opts),
            static_cast<int64_t>(4 * k));
  EXPECT_LE(*eval::SampledRankRegret(ds, *b, eval_opts),
            static_cast<int64_t>(4 * k));
}

TEST(MdrcTest, OutputSizeStaysSmallOnPaperLikeWorkloads) {
  // Section 6 reports MDRC outputs < 40 across all settings.
  for (uint64_t seed : {1u, 2u}) {
    const data::Dataset dot =
        data::GenerateDotLike(3000, seed).ProjectPrefix(3);
    Result<std::vector<int32_t>> rep = SolveMdrc(dot, 30);
    ASSERT_TRUE(rep.ok());
    EXPECT_LE(rep->size(), 40u);
  }
}

}  // namespace
}  // namespace core
}  // namespace rrr
