#include "core/kset.h"

#include <gtest/gtest.h>

namespace rrr {
namespace core {
namespace {

TEST(KSetTest, NormalizeSorts) {
  KSet s{{5, 1, 3}};
  s.Normalize();
  EXPECT_EQ(s.ids, (std::vector<int32_t>{1, 3, 5}));
}

TEST(KSetTest, EqualityIsOrderSensitiveUntilNormalized) {
  KSet a{{1, 2}};
  KSet b{{2, 1}};
  EXPECT_FALSE(a == b);
  b.Normalize();
  EXPECT_TRUE(a == b);
}

TEST(KSetTest, IntersectionSize) {
  KSet a{{1, 3, 5, 7}};
  KSet b{{3, 4, 5, 9}};
  EXPECT_EQ(a.IntersectionSize(b), 2u);
  EXPECT_EQ(b.IntersectionSize(a), 2u);
  EXPECT_EQ(a.IntersectionSize(a), 4u);
  EXPECT_EQ(a.IntersectionSize(KSet{{}}), 0u);
}

TEST(KSetHashTest, EqualSetsHashEqual) {
  KSetHash h;
  EXPECT_EQ(h(KSet{{1, 2, 3}}), h(KSet{{1, 2, 3}}));
  EXPECT_NE(h(KSet{{1, 2, 3}}), h(KSet{{1, 2, 4}}));
  EXPECT_NE(h(KSet{{1, 2}}), h(KSet{{2, 1}}));  // unnormalized differ
}

TEST(KSetCollectionTest, InsertDeduplicates) {
  KSetCollection c;
  EXPECT_TRUE(c.Insert(KSet{{3, 1}}));
  EXPECT_FALSE(c.Insert(KSet{{1, 3}}));  // same set, different order
  EXPECT_TRUE(c.Insert(KSet{{1, 2}}));
  EXPECT_EQ(c.size(), 2u);
}

TEST(KSetCollectionTest, PreservesInsertionOrder) {
  KSetCollection c;
  c.Insert(KSet{{9}});
  c.Insert(KSet{{1}});
  c.Insert(KSet{{5}});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.sets()[0].ids, (std::vector<int32_t>{9}));
  EXPECT_EQ(c.sets()[1].ids, (std::vector<int32_t>{1}));
  EXPECT_EQ(c.sets()[2].ids, (std::vector<int32_t>{5}));
}

TEST(KSetCollectionTest, ContainsNormalizesQuery) {
  KSetCollection c;
  c.Insert(KSet{{4, 2}});
  EXPECT_TRUE(c.Contains(KSet{{2, 4}}));
  EXPECT_TRUE(c.Contains(KSet{{4, 2}}));
  EXPECT_FALSE(c.Contains(KSet{{2, 5}}));
}

TEST(KSetCollectionTest, ToSetSystemMirrorsSets) {
  KSetCollection c;
  c.Insert(KSet{{2, 1}});
  c.Insert(KSet{{3}});
  const hitting::SetSystem sys = c.ToSetSystem();
  ASSERT_EQ(sys.sets.size(), 2u);
  EXPECT_EQ(sys.sets[0], (std::vector<int32_t>{1, 2}));
  EXPECT_EQ(sys.sets[1], (std::vector<int32_t>{3}));
}

TEST(KSetGraphUtilTest, EdgesRequireSharedKMinusOne) {
  const std::vector<KSet> sets = {
      KSet{{1, 2}}, KSet{{2, 3}}, KSet{{4, 5}}, KSet{{1, 3}}};
  const auto edges = KSetGraphEdges(sets);
  // {1,2}-{2,3}, {1,2}-{1,3}, {2,3}-{1,3}; {4,5} is isolated.
  EXPECT_EQ(edges.size(), 3u);
  EXPECT_EQ(KSetGraphComponents(sets), 2u);
}

TEST(KSetGraphUtilTest, EmptyAndSingleton) {
  EXPECT_EQ(KSetGraphComponents({}), 0u);
  EXPECT_EQ(KSetGraphComponents({KSet{{1, 2}}}), 1u);
  EXPECT_TRUE(KSetGraphEdges({KSet{{1, 2}}}).empty());
}

TEST(KSetCollectionTest, EmptyCollection) {
  KSetCollection c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.size(), 0u);
  EXPECT_TRUE(c.ToSetSystem().sets.empty());
}

}  // namespace
}  // namespace core
}  // namespace rrr
