#include "core/rrr2d.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "eval/rank_regret.h"
#include "test_util.h"

namespace rrr {
namespace core {
namespace {

TEST(Rrr2dTest, RejectsBadArguments) {
  data::Dataset ds3d = data::GenerateUniform(10, 3, 1);
  EXPECT_FALSE(Solve2dRrr(ds3d, 2).ok());
  data::Dataset ds2d = data::GenerateUniform(10, 2, 1);
  EXPECT_FALSE(Solve2dRrr(ds2d, 0).ok());
  data::Dataset empty;
  EXPECT_FALSE(Solve2dRrr(empty, 1).ok());
}

TEST(Rrr2dTest, PaperExampleKTwo) {
  // Section 4 walks Algorithm 2 on Figure 1 with k = 2 and obtains a
  // 2-element representative ({t3, t1} with the paper's greedy). Our
  // sweep cover must match that optimal size and the exact rank-regret
  // must satisfy the 2k guarantee.
  data::Dataset ds = testing::PaperFigure1Dataset();
  Result<std::vector<int32_t>> rep = Solve2dRrr(ds, 2);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->size(), 2u);
  Result<int64_t> regret = eval::ExactRankRegret2D(ds, *rep);
  ASSERT_TRUE(regret.ok());
  EXPECT_LE(*regret, 4);  // 2k bound (Theorem 4)
}

TEST(Rrr2dTest, PaperGreedyStrategyAlsoSolvesTheExample) {
  data::Dataset ds = testing::PaperFigure1Dataset();
  Rrr2dOptions opts;
  opts.cover = hitting::CoverStrategy::kGreedyMaxCoverage;
  Result<std::vector<int32_t>> rep = Solve2dRrr(ds, 2, opts);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->size(), 2u);
  // The paper's walk-through returns {t3, t1} = 0-based {0, 2}.
  EXPECT_EQ(*rep, (std::vector<int32_t>{0, 2}));
}

TEST(Rrr2dTest, KOneReturnsSingleItemCoveringConvexHullBand) {
  // k = 1: the representative must give every function a top-1 item; with
  // an undominated single point that's 1 item.
  data::Dataset ds = testing::MakeDataset(
      {{0.9, 0.9}, {0.5, 0.1}, {0.1, 0.5}});
  Result<std::vector<int32_t>> rep = Solve2dRrr(ds, 1);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(*rep, (std::vector<int32_t>{0}));
}

TEST(Rrr2dTest, KEqualNReturnsOneItem) {
  data::Dataset ds = testing::PaperFigure1Dataset();
  Result<std::vector<int32_t>> rep = Solve2dRrr(ds, 7);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->size(), 1u);
}

class Rrr2dGuaranteesTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Rrr2dGuaranteesTest, RegretWithinTwoKAndIdsValid) {
  const auto [seed, n, k] = GetParam();
  const data::Dataset ds = data::GenerateUniform(
      static_cast<size_t>(n), 2, static_cast<uint64_t>(seed));
  Result<std::vector<int32_t>> rep =
      Solve2dRrr(ds, static_cast<size_t>(k));
  ASSERT_TRUE(rep.ok());
  ASSERT_FALSE(rep->empty());
  for (int32_t id : *rep) {
    EXPECT_GE(id, 0);
    EXPECT_LT(static_cast<size_t>(id), ds.size());
  }
  Result<int64_t> regret = eval::ExactRankRegret2D(ds, *rep);
  ASSERT_TRUE(regret.ok());
  EXPECT_LE(*regret, 2 * k) << "Theorem 4 violated";
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, Rrr2dGuaranteesTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(20, 100, 400),
                       ::testing::Values(1, 3, 10)));

class Rrr2dOptimalityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Rrr2dOptimalityTest, OutputSizeAtMostBruteForceOptimal) {
  // Theorem 3: |2DRRR| <= optimal RRR size (the output may have regret up
  // to 2k, which is how it can even undercut the k-regret optimum).
  const auto [seed, k] = GetParam();
  const data::Dataset ds =
      data::GenerateUniform(14, 2, static_cast<uint64_t>(seed));
  Result<std::vector<int32_t>> rep =
      Solve2dRrr(ds, static_cast<size_t>(k));
  ASSERT_TRUE(rep.ok());
  const int64_t optimal =
      testing::BruteForceOptimalRrrSize2D(ds, static_cast<size_t>(k));
  EXPECT_LE(static_cast<int64_t>(rep->size()), optimal);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, Rrr2dOptimalityTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(1, 2, 4)));

TEST(Rrr2dTest, LargerKNeverNeedsMoreItems) {
  const data::Dataset ds = data::GenerateUniform(300, 2, 9);
  size_t prev = SIZE_MAX;
  for (size_t k : {1, 2, 4, 8, 16, 32}) {
    Result<std::vector<int32_t>> rep = Solve2dRrr(ds, k);
    ASSERT_TRUE(rep.ok());
    EXPECT_LE(rep->size(), prev);
    prev = rep->size();
  }
}

TEST(Rrr2dTest, AnticorrelatedNeedsMoreThanCorrelated) {
  const size_t n = 500, k = 5;
  Result<std::vector<int32_t>> anti =
      Solve2dRrr(data::GenerateAnticorrelated(n, 2, 10), k);
  Result<std::vector<int32_t>> corr =
      Solve2dRrr(data::GenerateCorrelated(n, 2, 10, 0.95), k);
  ASSERT_TRUE(anti.ok());
  ASSERT_TRUE(corr.ok());
  EXPECT_GE(anti->size(), corr->size());
}

}  // namespace
}  // namespace core
}  // namespace rrr
