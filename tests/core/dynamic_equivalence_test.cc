// The dynamic-data layer's central contract: every version a DynamicDataset
// publishes answers every query BIT-IDENTICALLY to a from-scratch engine
// built over the same rows — no matter which artifacts were carried forward
// incrementally, how the updates interleaved with queries, or which snapshot
// a query pinned. This driver replays seeded random schedules of
// {insert, delete, batch-append, Solve, SolveDual, Evaluate, snapshot-pin}
// against an oracle engine rebuilt from the mirrored rows after every
// mutation; any failure prints the replayable seed and schedule.
#include "core/dataset_updates.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/prepared_dataset.h"
#include "data/dataset.h"
#include "test_util.h"

namespace rrr {
namespace core {
namespace {

using rrr::testing::DataFamily;
using rrr::testing::DynamicOp;
using rrr::testing::DynamicSchedule;
using rrr::testing::MakeDataset;

constexpr size_t kSeedsPerFamily = 48;  // x5 families = 240 schedules
constexpr size_t kOpsPerSchedule = 12;

/// Per-seed configuration axes, derived from the seed bits so the matrix
/// covers serial/parallel, warm/cold artifact maintenance, forced/declined
/// candidate indexes, and both dimensionalities without a nested loop
/// blowing up the runtime.
struct Axes {
  size_t threads = 1;
  bool incremental = true;
  bool force_candidate = false;
  size_t dims = 2;

  std::string ToString() const {
    return "axes{threads=" + std::to_string(threads) +
           " incremental=" + std::string(incremental ? "on" : "off") +
           " candidate=" + std::string(force_candidate ? "forced" : "auto") +
           " d=" + std::to_string(dims) + "}";
  }
};

Axes AxesFromSeed(uint64_t seed) {
  Axes axes;
  axes.threads = (seed & 1) != 0 ? 4 : 1;
  axes.incremental = ((seed >> 1) & 1) != 0;
  axes.force_candidate = ((seed >> 2) & 1) != 0;
  axes.dims = ((seed >> 3) & 1) != 0 ? 3 : 2;
  return axes;
}

EngineOptions MakeEngineOptions(const Axes& axes) {
  EngineOptions options;
  options.defaults.threads = axes.threads;
  // Degenerate families exhaust MDRC's node budget at tiny k; cap it low so
  // the failure (shared by both engines) is cheap.
  options.defaults.mdrc.max_nodes = 16384;
  options.eval_num_functions = 200;
  if (axes.force_candidate) {
    CandidateIndexOptions& candidate = options.prepared.candidate;
    candidate.min_dataset_size = 0;
    candidate.max_band_fraction = 1.0;
    candidate.precheck_sample = 0;
    candidate.budget_slack_per_tuple = 0;
  }
  return options;
}

/// A snapshot pinned mid-schedule, re-queried after later mutations.
struct Pin {
  std::shared_ptr<const PreparedDataset> snapshot;
  size_t k = 0;
  std::vector<int32_t> expected;
};

void RunSchedule(const DynamicSchedule& schedule, const Axes& axes) {
  const EngineOptions engine_options = MakeEngineOptions(axes);
  DynamicDatasetOptions dyn_options;
  dyn_options.prepared = engine_options.prepared;
  dyn_options.incremental_artifacts = axes.incremental;

  Result<std::shared_ptr<DynamicDataset>> dyn =
      DynamicDataset::Create(MakeDataset(schedule.initial_rows), dyn_options);
  ASSERT_TRUE(dyn.ok()) << dyn.status().ToString();
  Result<std::shared_ptr<RrrEngine>> dyn_engine =
      NewDynamicEngine(*dyn, engine_options);
  ASSERT_TRUE(dyn_engine.ok()) << dyn_engine.status().ToString();

  // The oracle: the rows the dynamic dataset must hold, mirrored by the
  // driver, with a from-scratch engine rebuilt lazily after every mutation.
  std::vector<std::vector<double>> rows = schedule.initial_rows;
  std::shared_ptr<RrrEngine> oracle;
  const auto oracle_engine = [&]() -> RrrEngine& {
    if (oracle == nullptr) {
      Result<std::shared_ptr<RrrEngine>> fresh =
          RrrEngine::Create(MakeDataset(rows), engine_options);
      RRR_CHECK(fresh.ok()) << fresh.status().ToString();
      oracle = *fresh;
    }
    return *oracle;
  };

  // After every mutation the published snapshot's cells must equal the
  // mirrored rows bit-exactly (compaction/append layout contract).
  const auto check_cells = [&]() {
    const std::shared_ptr<const PreparedDataset> snap = (*dyn)->Snapshot();
    ASSERT_EQ(snap->size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      const double* row = snap->dataset().row(i);
      for (size_t j = 0; j < schedule.dims; ++j) {
        ASSERT_EQ(row[j], rows[i][j]) << "row " << i << " col " << j;
      }
    }
  };

  std::vector<int32_t> last_rep;
  size_t last_k = 1;
  std::vector<Pin> pins;
  uint64_t expected_ordinal = 0;

  for (size_t step = 0; step < schedule.ops.size(); ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    const DynamicOp& op = schedule.ops[step];
    switch (op.kind) {
      case DynamicOp::Kind::kInsert: {
        Result<DatasetVersion> v = (*dyn)->Insert(op.rows[0]);
        ASSERT_TRUE(v.ok()) << v.status().ToString();
        EXPECT_EQ(v->ordinal, ++expected_ordinal);
        rows.push_back(op.rows[0]);
        oracle.reset();
        check_cells();
        break;
      }
      case DynamicOp::Kind::kBatchAppend: {
        Result<DatasetVersion> v = (*dyn)->BatchAppend(op.rows);
        ASSERT_TRUE(v.ok()) << v.status().ToString();
        EXPECT_EQ(v->ordinal, ++expected_ordinal);
        rows.insert(rows.end(), op.rows.begin(), op.rows.end());
        oracle.reset();
        check_cells();
        break;
      }
      case DynamicOp::Kind::kDelete: {
        Result<DatasetVersion> v = (*dyn)->Delete(op.delete_id);
        ASSERT_TRUE(v.ok()) << v.status().ToString();
        EXPECT_EQ(v->ordinal, ++expected_ordinal);
        rows.erase(rows.begin() + op.delete_id);
        oracle.reset();
        check_cells();
        break;
      }
      case DynamicOp::Kind::kSolve: {
        const size_t k = std::min(op.k, rows.size());
        Result<QueryResult> got = (*dyn_engine)->Solve(k);
        Result<QueryResult> want = oracle_engine().Solve(k);
        ASSERT_EQ(got.status().code(), want.status().code())
            << "dynamic: " << got.status().ToString()
            << " oracle: " << want.status().ToString();
        if (!got.ok()) break;
        EXPECT_EQ(got->representative, want->representative);
        EXPECT_EQ(got->diagnostics.algorithm_used,
                  want->diagnostics.algorithm_used);
        EXPECT_EQ(got->diagnostics.dataset_version, (*dyn)->version());
        last_rep = got->representative;
        last_k = k;
        break;
      }
      case DynamicOp::Kind::kSolveDual: {
        Result<DualResult> got = (*dyn_engine)->SolveDual(op.max_size);
        Result<DualResult> want = oracle_engine().SolveDual(op.max_size);
        ASSERT_EQ(got.status().code(), want.status().code())
            << "dynamic: " << got.status().ToString()
            << " oracle: " << want.status().ToString();
        if (!got.ok()) break;
        EXPECT_EQ(got->k, want->k);
        EXPECT_EQ(got->representative, want->representative);
        break;
      }
      case DynamicOp::Kind::kEvaluate: {
        if (last_rep.empty()) break;  // the earlier Solve failed
        Result<EvalReport> got = (*dyn_engine)->Evaluate(last_rep, last_k);
        Result<EvalReport> want = oracle_engine().Evaluate(last_rep, last_k);
        ASSERT_EQ(got.status().code(), want.status().code())
            << "dynamic: " << got.status().ToString()
            << " oracle: " << want.status().ToString();
        if (!got.ok()) break;
        EXPECT_EQ(got->rank_regret, want->rank_regret);
        EXPECT_EQ(got->exact, want->exact);
        EXPECT_EQ(got->within_k, want->within_k);
        break;
      }
      case DynamicOp::Kind::kSnapshotPin: {
        const std::shared_ptr<const PreparedDataset> snap = (*dyn)->Snapshot();
        const size_t k = std::min(op.k, rows.size());
        QueryOptions pinned;
        pinned.snapshot = snap;
        Result<QueryResult> got = (*dyn_engine)->Solve(k, pinned);
        Result<QueryResult> want = oracle_engine().Solve(k);
        ASSERT_EQ(got.status().code(), want.status().code())
            << "dynamic: " << got.status().ToString()
            << " oracle: " << want.status().ToString();
        if (!got.ok()) break;
        EXPECT_EQ(got->representative, want->representative);
        pins.push_back({snap, k, want->representative});
        break;
      }
    }
  }

  // Consistent reads outlive the writers: every pinned snapshot still
  // answers with the rows it froze — from its own memo entry, untouched by
  // every version published since.
  for (size_t i = 0; i < pins.size(); ++i) {
    SCOPED_TRACE("pin " + std::to_string(i));
    QueryOptions pinned;
    pinned.snapshot = pins[i].snapshot;
    Result<QueryResult> replay = (*dyn_engine)->Solve(pins[i].k, pinned);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_EQ(replay->representative, pins[i].expected);
    EXPECT_TRUE(replay->diagnostics.result_from_cache);
    EXPECT_EQ(replay->diagnostics.dataset_version,
              pins[i].snapshot->version());
  }
}

class DynamicEquivalenceTest
    : public ::testing::TestWithParam<DataFamily> {};

TEST_P(DynamicEquivalenceTest, RandomSchedulesMatchOracleRebuilds) {
  const DataFamily family = GetParam();
  for (uint64_t seed = 0; seed < kSeedsPerFamily; ++seed) {
    const Axes axes = AxesFromSeed(seed);
    const DynamicSchedule schedule =
        rrr::testing::MakeDynamicSchedule(family, seed, axes.dims,
                                          kOpsPerSchedule);
    SCOPED_TRACE(schedule.ToString() + " " + axes.ToString());
    RunSchedule(schedule, axes);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, DynamicEquivalenceTest,
    ::testing::ValuesIn(rrr::testing::AllDataFamilies()),
    [](const ::testing::TestParamInfo<DataFamily>& info) {
      std::string name = rrr::testing::DataFamilyName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

/// The stale-memo footgun, pinned as a regression test: before the
/// version-keyed memo, a dynamic engine would happily answer a post-update
/// query from a pre-update entry (and report reuse flags from the wrong
/// row-state). Now the version is part of the key and of Diagnostics.
TEST(DynamicMemoTest, MemoEntriesAreScopedToTheDatasetVersion) {
  Result<std::shared_ptr<DynamicDataset>> dyn = DynamicDataset::Create(
      MakeDataset(rrr::testing::FamilyRows(DataFamily::kUniform, 32, 2, 7)));
  ASSERT_TRUE(dyn.ok());
  Result<std::shared_ptr<RrrEngine>> engine = NewDynamicEngine(*dyn);
  ASSERT_TRUE(engine.ok());

  const std::shared_ptr<const PreparedDataset> old_snap = (*dyn)->Snapshot();
  Result<QueryResult> cold = (*engine)->Solve(3);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->diagnostics.result_from_cache);
  EXPECT_EQ(cold->diagnostics.dataset_version, old_snap->version());

  // Publish a new version that changes the answer's inputs.
  ASSERT_TRUE((*dyn)->Insert({0.99, 0.98}).ok());

  // The same query against the new version must MISS the memo: the old
  // entry's key names the old version.
  Result<QueryResult> fresh = (*engine)->Solve(3);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->diagnostics.result_from_cache);
  EXPECT_EQ(fresh->diagnostics.dataset_version, (*dyn)->version());

  // While a query pinned to the old snapshot still HITS its own entry and
  // reports the version its reuse flags are scoped to.
  QueryOptions pinned;
  pinned.snapshot = old_snap;
  Result<QueryResult> replay = (*engine)->Solve(3, pinned);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->diagnostics.result_from_cache);
  EXPECT_EQ(replay->diagnostics.dataset_version, old_snap->version());
  EXPECT_EQ(replay->representative, cold->representative);

  // And the new version's repeat query hits its own (new) entry.
  Result<QueryResult> warm = (*engine)->Solve(3);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->diagnostics.result_from_cache);
  EXPECT_EQ(warm->representative, fresh->representative);
}

/// SolveDual pins all its probes to one snapshot: a writer publishing
/// mid-search must never tear the binary search across versions. (Driven
/// deterministically here; the concurrency test hammers the real race.)
TEST(DynamicMemoTest, SolveDualProbesShareOneSnapshot) {
  Result<std::shared_ptr<DynamicDataset>> dyn = DynamicDataset::Create(
      MakeDataset(rrr::testing::FamilyRows(DataFamily::kUniform, 40, 2, 11)));
  ASSERT_TRUE(dyn.ok());
  Result<std::shared_ptr<RrrEngine>> engine = NewDynamicEngine(*dyn);
  ASSERT_TRUE(engine.ok());

  const std::shared_ptr<const PreparedDataset> snap = (*dyn)->Snapshot();
  Result<DualResult> before = (*engine)->SolveDual(2);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE((*dyn)->Delete(0).ok());

  // Pinned to the old snapshot, the dual result must replay identically.
  QueryOptions pinned;
  pinned.snapshot = snap;
  Result<DualResult> pinned_replay = (*engine)->SolveDual(2, pinned);
  ASSERT_TRUE(pinned_replay.ok());
  EXPECT_EQ(pinned_replay->k, before->k);
  EXPECT_EQ(pinned_replay->representative, before->representative);
}

}  // namespace
}  // namespace core
}  // namespace rrr
