#include "core/find_ranges.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "geometry/angles.h"
#include "test_util.h"
#include "topk/rank.h"
#include "topk/scoring.h"

namespace rrr {
namespace core {
namespace {

TEST(FindRangesTest, RejectsBadArguments) {
  data::Dataset ds3d = data::GenerateUniform(10, 3, 1);
  EXPECT_FALSE(FindRanges(ds3d, 2).ok());
  data::Dataset ds2d = data::GenerateUniform(10, 2, 1);
  EXPECT_FALSE(FindRanges(ds2d, 0).ok());
}

TEST(FindRangesTest, EmptyDataset) {
  Result<data::Dataset> ds = data::Dataset::FromFlat({}, 0, 2);
  ASSERT_TRUE(ds.ok());
  Result<std::vector<ItemRange>> ranges = FindRanges(*ds, 3);
  ASSERT_TRUE(ranges.ok());
  EXPECT_TRUE(ranges->empty());
}

TEST(FindRangesTest, KGreaterEqualNMakesEveryRangeFull) {
  data::Dataset ds = testing::PaperFigure1Dataset();
  Result<std::vector<ItemRange>> ranges = FindRanges(ds, 7);
  ASSERT_TRUE(ranges.ok());
  for (const auto& r : *ranges) {
    EXPECT_TRUE(r.in_topk);
    EXPECT_DOUBLE_EQ(r.begin, 0.0);
    EXPECT_DOUBLE_EQ(r.end, geometry::kHalfPi);
  }
}

TEST(FindRangesTest, PaperExampleKTwoMembers) {
  // Figure 4: for k = 2 only t1, t3, t5, t7 ever enter the top-2.
  data::Dataset ds = testing::PaperFigure1Dataset();
  Result<std::vector<ItemRange>> ranges = FindRanges(ds, 2);
  ASSERT_TRUE(ranges.ok());
  std::vector<int32_t> members;
  for (size_t id = 0; id < ranges->size(); ++id) {
    if ((*ranges)[id].in_topk) members.push_back(static_cast<int32_t>(id));
  }
  EXPECT_EQ(members, (std::vector<int32_t>{0, 2, 4, 6}));
  // t1 and t7 are in the initial top-2 (ranking by x): ranges start at 0.
  EXPECT_DOUBLE_EQ((*ranges)[0].begin, 0.0);
  EXPECT_DOUBLE_EQ((*ranges)[6].begin, 0.0);
  // t5 is in the final top-2 (ranking by y): range ends at pi/2.
  EXPECT_DOUBLE_EQ((*ranges)[4].end, geometry::kHalfPi);
}

class FindRangesOracleTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FindRangesOracleTest, RangesBoundTopKMembershipExactly) {
  const auto [seed, n, k] = GetParam();
  const data::Dataset ds = data::GenerateUniform(
      static_cast<size_t>(n), 2, static_cast<uint64_t>(seed));
  Result<std::vector<ItemRange>> ranges =
      FindRanges(ds, static_cast<size_t>(k));
  ASSERT_TRUE(ranges.ok());

  for (double theta : testing::AngleGrid(160)) {
    topk::LinearFunction f({std::cos(theta), std::sin(theta)});
    for (size_t id = 0; id < ds.size(); ++id) {
      const int64_t rank = topk::RankOf(ds, f, static_cast<int32_t>(id));
      const auto& r = (*ranges)[id];
      if (rank <= k) {
        // In the top-k here: the item's range must contain theta.
        ASSERT_TRUE(r.in_topk) << "id " << id << " theta " << theta;
        EXPECT_LE(r.begin, theta + 1e-9);
        EXPECT_GE(r.end, theta - 1e-9);
      }
      if (r.in_topk) {
        // Theorem 1: inside its range the rank never exceeds 2k.
        if (theta >= r.begin - 1e-12 && theta <= r.end + 1e-12) {
          EXPECT_LE(rank, 2 * k) << "id " << id << " theta " << theta;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, FindRangesOracleTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(12, 60, 200),
                       ::testing::Values(1, 3, 8)));

TEST(FindRangesTest, RangeEndpointsWitnessTopKMembership) {
  // At begin and at end (nudged inside), the item must be in the top-k.
  const data::Dataset ds = data::GenerateUniform(80, 2, 5);
  const size_t k = 4;
  Result<std::vector<ItemRange>> ranges = FindRanges(ds, k);
  ASSERT_TRUE(ranges.ok());
  for (size_t id = 0; id < ds.size(); ++id) {
    const auto& r = (*ranges)[id];
    if (!r.in_topk) continue;
    for (double theta : {r.begin + 1e-9, r.end - 1e-9}) {
      theta = std::clamp(theta, 0.0, geometry::kHalfPi);
      topk::LinearFunction f({std::cos(theta), std::sin(theta)});
      EXPECT_LE(topk::RankOf(ds, f, static_cast<int32_t>(id)),
                static_cast<int64_t>(k) + 1)
          << "id " << id;
    }
  }
}

TEST(FindRangesTest, UnionOfRangesCoversFunctionSpace) {
  const data::Dataset ds = data::GenerateUniform(100, 2, 6);
  Result<std::vector<ItemRange>> ranges = FindRanges(ds, 3);
  ASSERT_TRUE(ranges.ok());
  for (double theta : testing::AngleGrid(100)) {
    bool covered = false;
    for (const auto& r : *ranges) {
      if (r.in_topk && r.begin <= theta && r.end >= theta) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "theta " << theta;
  }
}

}  // namespace
}  // namespace core
}  // namespace rrr
