#include "core/engine.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/find_ranges.h"
#include "core/kset_graph.h"
#include "core/kset_sampler.h"
#include "core/mdrc.h"
#include "core/mdrrr.h"
#include "core/rrr2d.h"
#include "data/generators.h"
#include "eval/rank_regret.h"
#include "test_util.h"

namespace rrr {
namespace core {
namespace {

std::shared_ptr<RrrEngine> MakeEngine(const data::Dataset& ds,
                                      EngineOptions options = {}) {
  Result<std::shared_ptr<RrrEngine>> engine =
      RrrEngine::Create(data::Dataset(ds), std::move(options));
  RRR_CHECK(engine.ok()) << engine.status().ToString();
  return *engine;
}

TEST(EngineCreateTest, RejectsEmptyAndNonFiniteData) {
  EXPECT_EQ(RrrEngine::Create(data::Dataset()).status().code(),
            StatusCode::kInvalidArgument);
  Result<data::Dataset> nan_data =
      data::Dataset::FromRows({{0.5, 0.5}, {std::nan(""), 0.2}});
  ASSERT_TRUE(nan_data.ok());
  EXPECT_EQ(RrrEngine::Create(std::move(*nan_data)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RrrEngine::Create(std::shared_ptr<const PreparedDataset>())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineSolveTest, RejectsBadQueries) {
  auto engine = MakeEngine(data::GenerateUniform(30, 3, 1));
  EXPECT_EQ(engine->Solve(0).status().code(), StatusCode::kInvalidArgument);
  QueryOptions query;
  query.algorithm = Algorithm::k2dRrr;  // 3D data
  EXPECT_EQ(engine->Solve(2, query).status().code(),
            StatusCode::kInvalidArgument);
  query.algorithm = Algorithm::kConvexMaxima;  // k > 1
  EXPECT_EQ(engine->Solve(2, query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineSolveTest, MatchesLegacyFacadeOnEveryAlgorithm) {
  const data::Dataset ds2 = data::GenerateUniform(120, 2, 5);
  const data::Dataset ds3 = data::GenerateUniform(120, 3, 6);
  struct Case {
    const data::Dataset* ds;
    Algorithm algorithm;
    size_t k;
  };
  const std::vector<Case> cases = {
      {&ds2, Algorithm::k2dRrr, 4},
      {&ds3, Algorithm::kMdRrr, 5},
      {&ds3, Algorithm::kMdRc, 5},
      {&ds3, Algorithm::kConvexMaxima, 1},
  };
  for (const Case& c : cases) {
    auto engine = MakeEngine(*c.ds);
    QueryOptions query;
    query.algorithm = c.algorithm;
    Result<QueryResult> via_engine = engine->Solve(c.k, query);
    ASSERT_TRUE(via_engine.ok()) << AlgorithmName(c.algorithm) << ": "
                                 << via_engine.status().ToString();
    RrrOptions legacy;
    legacy.k = c.k;
    legacy.algorithm = c.algorithm;
    Result<RrrResult> via_free = FindRankRegretRepresentative(*c.ds, legacy);
    ASSERT_TRUE(via_free.ok());
    EXPECT_EQ(via_engine->representative, via_free->representative)
        << AlgorithmName(c.algorithm);
    EXPECT_EQ(via_engine->diagnostics.algorithm_used, c.algorithm);
  }
}

// Acceptance (a): a second identical Solve(k) on one engine returns a
// bit-identical representative and hits the memo. The >= 10x wall-clock
// claim at n = 50k is recorded by bench_engine_reuse in
// BENCH_engine_reuse.json; here we pin the mechanism plus a conservative
// timing bound at test scale.
TEST(EngineSolveTest, RepeatSolveHitsMemoBitIdentical) {
  const data::Dataset ds = data::GenerateDotLike(5000, 42).ProjectPrefix(3);
  auto engine = MakeEngine(ds);
  Result<QueryResult> cold = engine->Solve(50);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->diagnostics.result_from_cache);
  EXPECT_GT(cold->diagnostics.mdrc.nodes, 0u);  // MDRC ran for real

  Result<QueryResult> warm = engine->Solve(50);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->diagnostics.result_from_cache);
  EXPECT_TRUE(warm->diagnostics.reused_prepared_artifacts);
  EXPECT_EQ(warm->representative, cold->representative);  // bit-identical
  EXPECT_LE(warm->diagnostics.seconds, cold->diagnostics.seconds);
  if (cold->diagnostics.seconds > 0.01) {
    // At any realistic scale the memo lookup is orders of magnitude
    // faster; only assert the ratio when the cold solve is long enough to
    // measure it robustly.
    EXPECT_LE(warm->diagnostics.seconds * 10, cold->diagnostics.seconds);
  }
}

TEST(EngineSolveTest, SharedCornerCacheMakesUncachedRerunsCheap) {
  const data::Dataset ds = data::GenerateUniform(2000, 4, 7);
  auto engine = MakeEngine(ds);
  QueryOptions no_memo;
  no_memo.use_cache = false;
  Result<QueryResult> first = engine->Solve(40, no_memo);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->diagnostics.result_from_cache);
  EXPECT_GT(first->diagnostics.mdrc.corner_evals, 0u);

  // Second full run (memo bypassed): every corner top-k is already in the
  // shared cache, so the partition re-expands without a single scan.
  Result<QueryResult> second = engine->Solve(40, no_memo);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->diagnostics.result_from_cache);
  EXPECT_EQ(second->diagnostics.mdrc.corner_evals, 0u);
  EXPECT_GT(second->diagnostics.mdrc.cache_hits, 0u);
  EXPECT_TRUE(second->diagnostics.reused_prepared_artifacts);
  EXPECT_EQ(second->representative, first->representative);
}

TEST(EngineSolveTest, SamplerCacheSharedAcrossQueries) {
  const data::Dataset ds = data::GenerateUniform(200, 3, 8);
  auto engine = MakeEngine(ds);
  QueryOptions query;
  query.algorithm = Algorithm::kMdRrr;
  query.use_cache = false;  // force both queries through the sampler path
  Result<QueryResult> first = engine->Solve(5, query);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->diagnostics.sampler_from_cache);
  EXPECT_GT(first->diagnostics.sampler_samples_drawn, 0u);
  Result<QueryResult> second = engine->Solve(5, query);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->diagnostics.sampler_from_cache);
  EXPECT_EQ(second->representative, first->representative);
}

// Acceptance (b): SolveDual reuses prepared artifacts across probes — every
// probe goes through the memoizing Solve on one shared PreparedDataset, so
// a repeated dual query is served entirely from the memo and a direct
// Solve at the answer's k hits the probe's cached result.
TEST(EngineDualTest, DualReusesPreparedArtifactsAcrossProbes) {
  const data::Dataset ds = data::GenerateUniform(400, 2, 9);
  auto engine = MakeEngine(ds);
  Result<DualResult> first = engine->SolveDual(8);
  ASSERT_TRUE(first.ok());
  EXPECT_GE(first->probes.size(), 2u);  // binary search probed multiple k
  for (const DualProbe& probe : first->probes) {
    EXPECT_GT(probe.k, 0u);
    EXPECT_EQ(probe.algorithm_used, Algorithm::k2dRrr);
    EXPECT_GE(probe.seconds, 0.0);
    EXPECT_FALSE(probe.from_cache);  // distinct k per probe on a cold engine
  }
  EXPECT_GE(first->seconds, 0.0);

  // A direct Solve at the returned k is served from the probe's memo entry.
  Result<QueryResult> direct = engine->Solve(first->k);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(direct->diagnostics.result_from_cache);
  EXPECT_EQ(direct->representative, first->representative);

  // A repeated dual search replays every probe from the memo.
  Result<DualResult> again = engine->SolveDual(8);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->k, first->k);
  EXPECT_EQ(again->representative, first->representative);
  ASSERT_EQ(again->probes.size(), first->probes.size());
  for (const DualProbe& probe : again->probes) {
    EXPECT_TRUE(probe.from_cache);
  }
}

TEST(EngineDualTest, MatchesLegacyDualAndRecordsProbes) {
  const data::Dataset ds = data::GenerateUniform(200, 3, 10);
  RrrOptions base;
  base.algorithm = Algorithm::kMdRc;
  // Keep small-k probes (where MDRC's partition explodes) cheap: they
  // exhaust quickly and the search walks upward, exercising the probe
  // trail's ResourceExhausted records too.
  base.mdrc.max_nodes = 20000;
  Result<DualResult> legacy = SolveDualProblem(ds, 6, base);
  ASSERT_TRUE(legacy.ok());
  EngineOptions options;
  options.defaults = base;
  auto engine = MakeEngine(ds, options);
  Result<DualResult> via_engine = engine->SolveDual(6);
  ASSERT_TRUE(via_engine.ok());
  EXPECT_EQ(via_engine->k, legacy->k);
  EXPECT_EQ(via_engine->representative, legacy->representative);
  // The per-probe diagnostic trail (satellite): k, algorithm, timing.
  EXPECT_FALSE(legacy->probes.empty());
  for (const DualProbe& probe : legacy->probes) {
    if (probe.status == StatusCode::kOk) {
      EXPECT_EQ(probe.algorithm_used, Algorithm::kMdRc);
      EXPECT_GE(probe.seconds, 0.0);
    } else {
      EXPECT_EQ(probe.status, StatusCode::kResourceExhausted);
      EXPECT_FALSE(probe.feasible);
    }
  }
}

// Acceptance (c): concurrent Solve calls from 8 threads are TSan-clean
// (this test runs under the CI sanitizer jobs) and thread-count-invariant.
TEST(EngineConcurrencyTest, EightThreadsSolveConsistently) {
  const data::Dataset ds = data::GenerateUniform(800, 3, 11);
  auto engine = MakeEngine(ds);

  // Serial reference results, one per queried k.
  const std::vector<size_t> ks = {2, 4, 8, 16};
  std::vector<std::vector<int32_t>> reference;
  for (size_t k : ks) {
    Result<RrrResult> ref = FindRankRegretRepresentative(
        ds, [&] {
          RrrOptions o;
          o.k = k;
          return o;
        }());
    ASSERT_TRUE(ref.ok());
    reference.push_back(ref->representative);
  }

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Half the threads bypass the memo so the shared caches (corner
      // memo, sampler slots) see real concurrent compute traffic.
      QueryOptions query;
      query.use_cache = (t % 2 == 0);
      for (size_t round = 0; round < ks.size(); ++round) {
        const size_t idx = (static_cast<size_t>(t) + round) % ks.size();
        Result<QueryResult> got = engine->Solve(ks[idx], query);
        if (!got.ok() || got->representative != reference[idx]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(EngineConcurrencyTest, ConcurrentDualAndEvaluate) {
  const data::Dataset ds = data::GenerateUniform(300, 2, 12);
  auto engine = MakeEngine(ds);
  Result<DualResult> reference = engine->SolveDual(6);
  ASSERT_TRUE(reference.ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      Result<DualResult> dual = engine->SolveDual(6);
      if (!dual.ok() || dual->representative != reference->representative) {
        failures.fetch_add(1);
        return;
      }
      Result<EvalReport> eval =
          engine->Evaluate(dual->representative, dual->k);
      if (!eval.ok()) failures.fetch_add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
}

// Acceptance (d): an already-expired deadline and a pre-cancelled token
// return DeadlineExceeded/Cancelled from every algorithm without partial
// output — both through the engine and through the raw entry points.
TEST(EnginePreemptionTest, PreCancelledAndExpiredFromEveryAlgorithm) {
  const data::Dataset ds2 = data::GenerateUniform(100, 2, 13);
  const data::Dataset ds3 = data::GenerateUniform(100, 3, 14);
  struct Case {
    const data::Dataset* ds;
    Algorithm algorithm;
    size_t k;
  };
  const std::vector<Case> cases = {
      {&ds2, Algorithm::k2dRrr, 3},
      {&ds3, Algorithm::kMdRrr, 3},
      {&ds3, Algorithm::kMdRc, 3},
      {&ds3, Algorithm::kConvexMaxima, 1},
  };
  CancellationSource source;
  source.RequestCancel();
  for (const Case& c : cases) {
    auto engine = MakeEngine(*c.ds);
    QueryOptions cancelled;
    cancelled.algorithm = c.algorithm;
    cancelled.exec.cancel = source.token();
    EXPECT_EQ(engine->Solve(c.k, cancelled).status().code(),
              StatusCode::kCancelled)
        << AlgorithmName(c.algorithm);

    QueryOptions expired;
    expired.algorithm = c.algorithm;
    expired.exec.deadline = Deadline::After(-1.0);
    EXPECT_EQ(engine->Solve(c.k, expired).status().code(),
              StatusCode::kDeadlineExceeded)
        << AlgorithmName(c.algorithm);
  }
}

TEST(EnginePreemptionTest, RawEntryPointsHonourPreCancellation) {
  const data::Dataset ds2 = data::GenerateUniform(60, 2, 15);
  const data::Dataset ds3 = data::GenerateUniform(60, 3, 16);
  CancellationSource source;
  source.RequestCancel();
  ExecContext cancelled;
  cancelled.cancel = source.token();
  ExecContext expired;
  expired.deadline = Deadline::After(-1.0);

  EXPECT_EQ(FindRanges(ds2, 2, cancelled).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(Solve2dRrr(ds2, 2, {}, cancelled).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(SampleKSets(ds3, 2, {}, cancelled).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(SolveMdrrrSampled(ds3, 2, {}, {}, cancelled).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(SolveMdrc(ds3, 2, {}, nullptr, cancelled).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(EnumerateKSetsGraph(ds3, 2, {}, cancelled).status().code(),
            StatusCode::kCancelled);

  EXPECT_EQ(FindRanges(ds2, 2, expired).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Solve2dRrr(ds2, 2, {}, expired).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(SampleKSets(ds3, 2, {}, expired).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(SolveMdrrrSampled(ds3, 2, {}, {}, expired).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(SolveMdrc(ds3, 2, {}, nullptr, expired).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(EnumerateKSetsGraph(ds3, 2, {}, expired).status().code(),
            StatusCode::kDeadlineExceeded);

  // SolveMdrrr proper (collection-input form).
  Result<KSetSampleResult> sample = SampleKSets(ds3, 2, {});
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(SolveMdrrr(ds3, sample->ksets, {}, cancelled).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(SolveMdrrr(ds3, sample->ksets, {}, expired).status().code(),
            StatusCode::kDeadlineExceeded);
}

TEST(EnginePreemptionTest, MidSolveCancellationStopsLongSampler) {
  // A sampler configured to effectively never terminate on its own: the
  // solve ends promptly only if mid-loop cancellation works.
  const data::Dataset ds = data::GenerateUniform(500, 3, 17);
  EngineOptions options;
  options.defaults.algorithm = Algorithm::kMdRrr;
  options.defaults.sampler.termination_count = 1u << 30;
  options.defaults.sampler.max_samples = 1u << 30;
  auto engine = MakeEngine(ds, options);

  CancellationSource source;
  QueryOptions query;
  query.exec.cancel = source.token();
  std::atomic<bool> done{false};
  Result<QueryResult> outcome = Status::Internal("unset");
  std::thread solver([&] {
    outcome = engine->Solve(3, query);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  source.RequestCancel();
  solver.join();
  ASSERT_TRUE(done.load());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);

  // The cancelled compute must not have poisoned the shared caches: a
  // fresh un-preempted query with a sane sampler succeeds.
  EngineOptions sane;
  sane.defaults.algorithm = Algorithm::kMdRrr;
  auto engine2 = MakeEngine(ds, sane);
  EXPECT_TRUE(engine2->Solve(3).ok());
}

TEST(EnginePreemptionTest, DeadlineBoundsLongMdrcSolve) {
  // MDRC at a k far below the paper's regime grows a deep partition tree;
  // a short deadline must cut it off near the budget, not run unbounded.
  const data::Dataset ds = data::GenerateUniform(20000, 4, 18);
  auto engine = MakeEngine(ds);
  QueryOptions query;
  query.algorithm = Algorithm::kMdRc;
  query.exec.deadline = Deadline::After(0.05);
  const auto start = std::chrono::steady_clock::now();
  Result<QueryResult> outcome = engine->Solve(2, query);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!outcome.ok()) {
    EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
    // Generous bound: preemption is per-node, so overshoot is bounded by
    // one frontier round, not the whole solve.
    EXPECT_LT(elapsed, 10.0);
  }
  // (If the machine solved it inside the deadline, that is also correct.)
}

TEST(EngineEvaluateTest, ExactIn2dMatchesEvalModule) {
  const data::Dataset ds = data::GenerateUniform(150, 2, 19);
  auto engine = MakeEngine(ds);
  Result<QueryResult> solved = engine->Solve(4);
  ASSERT_TRUE(solved.ok());
  Result<EvalReport> report = engine->Evaluate(solved->representative, 4);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->exact);
  Result<int64_t> direct = eval::ExactRankRegret2D(ds, solved->representative);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(report->rank_regret, *direct);
  EXPECT_EQ(report->within_k, report->rank_regret <= 4);
  // 2DRRR promises 2k.
  EXPECT_LE(report->rank_regret, 8);
}

TEST(EngineEvaluateTest, SampledAboveTwoDims) {
  const data::Dataset ds = data::GenerateUniform(200, 3, 20);
  EngineOptions options;
  options.eval_num_functions = 500;
  auto engine = MakeEngine(ds, options);
  Result<QueryResult> solved = engine->Solve(6);
  ASSERT_TRUE(solved.ok());
  Result<EvalReport> report = engine->Evaluate(solved->representative, 6);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->exact);
  EXPECT_EQ(report->diagnostics.eval_functions_sampled, 500u);
  EXPECT_GE(report->rank_regret, 1);
  EXPECT_EQ(engine->Evaluate(solved->representative, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineDiagnosticsTest, ToStringNamesTheMachineryUsed) {
  const data::Dataset ds = data::GenerateUniform(300, 3, 21);
  auto engine = MakeEngine(ds);
  Result<QueryResult> mdrc = engine->Solve(6);
  ASSERT_TRUE(mdrc.ok());
  const std::string text = mdrc->diagnostics.ToString();
  EXPECT_NE(text.find("MDRC"), std::string::npos);
  EXPECT_NE(text.find("mdrc{"), std::string::npos);

  QueryOptions query;
  query.algorithm = Algorithm::kMdRrr;
  Result<QueryResult> mdrrr = engine->Solve(6, query);
  ASSERT_TRUE(mdrrr.ok());
  EXPECT_NE(mdrrr->diagnostics.ToString().find("sampler{"),
            std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace rrr
