#include "core/kborder.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "geometry/angles.h"
#include "test_util.h"
#include "topk/rank.h"
#include "topk/scoring.h"

namespace rrr {
namespace core {
namespace {

TEST(KBorderTest, RejectsBadArguments) {
  const data::Dataset ds3 = data::GenerateUniform(10, 3, 1);
  EXPECT_FALSE(ComputeKBorder2D(ds3, 2).ok());
  const data::Dataset ds = data::GenerateUniform(10, 2, 1);
  EXPECT_FALSE(ComputeKBorder2D(ds, 0).ok());
  EXPECT_FALSE(ComputeKBorder2D(ds, 11).ok());
}

TEST(KBorderTest, SegmentsTileTheSweepRange) {
  const data::Dataset ds = data::GenerateUniform(60, 2, 2);
  Result<std::vector<KBorderSegment>> border = ComputeKBorder2D(ds, 5);
  ASSERT_TRUE(border.ok());
  ASSERT_FALSE(border->empty());
  EXPECT_DOUBLE_EQ(border->front().begin, 0.0);
  EXPECT_DOUBLE_EQ(border->back().end, geometry::kHalfPi);
  for (size_t i = 1; i < border->size(); ++i) {
    EXPECT_DOUBLE_EQ((*border)[i - 1].end, (*border)[i].begin);
    EXPECT_NE((*border)[i - 1].item, (*border)[i].item);
  }
}

TEST(KBorderTest, PaperExampleTopTwoBorder) {
  // Figure 3's red chain for k = 2, as the sweep walks it: the rank-2
  // tuple is t1, t3, t7, t5 and t3 again — t3 contributing two facets is
  // exactly the paper's "a dual hyperplane may contain more than one facet
  // of the top-k border".
  data::Dataset ds = testing::PaperFigure1Dataset();
  Result<std::vector<KBorderSegment>> border = ComputeKBorder2D(ds, 2);
  ASSERT_TRUE(border.ok());
  std::vector<int32_t> owners;
  for (const auto& seg : *border) owners.push_back(seg.item);
  EXPECT_EQ(owners, (std::vector<int32_t>{0, 2, 6, 4, 2}));
}

class KBorderOracleTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KBorderOracleTest, SegmentOwnerHasRankKInsideItsSegment) {
  const auto [seed, k] = GetParam();
  const data::Dataset ds =
      data::GenerateUniform(40, 2, static_cast<uint64_t>(seed));
  Result<std::vector<KBorderSegment>> border =
      ComputeKBorder2D(ds, static_cast<size_t>(k));
  ASSERT_TRUE(border.ok());
  for (const auto& seg : *border) {
    if (seg.end - seg.begin < 1e-9) continue;  // too thin to probe safely
    const double mid = 0.5 * (seg.begin + seg.end);
    topk::LinearFunction f({std::cos(mid), std::sin(mid)});
    EXPECT_EQ(topk::RankOf(ds, f, seg.item), k)
        << "segment [" << seg.begin << ", " << seg.end << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInputs, KBorderOracleTest,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 3, 10)));

TEST(KBorderTest, KEqualsNBorderIsTheMinimum) {
  // The n-th ranked tuple: the loser of every function.
  data::Dataset ds = testing::MakeDataset(
      {{0.9, 0.9}, {0.5, 0.4}, {0.1, 0.05}});
  Result<std::vector<KBorderSegment>> border = ComputeKBorder2D(ds, 3);
  ASSERT_TRUE(border.ok());
  ASSERT_EQ(border->size(), 1u);
  EXPECT_EQ(border->front().item, 2);
}

TEST(KBorderTest, BorderChangesAreLocal) {
  // Consecutive owners must be exchange partners: their ranks differ by
  // one at the junction, so re-ranking at the junction +- epsilon flips
  // their order.
  const data::Dataset ds = data::GenerateUniform(30, 2, 4);
  const size_t k = 4;
  Result<std::vector<KBorderSegment>> border = ComputeKBorder2D(ds, k);
  ASSERT_TRUE(border.ok());
  for (size_t i = 1; i < border->size(); ++i) {
    const double before = (*border)[i].begin - 1e-7;
    const double after = (*border)[i].begin + 1e-7;
    if (before <= 0 || after >= geometry::kHalfPi) continue;
    topk::LinearFunction fb({std::cos(before), std::sin(before)});
    topk::LinearFunction fa({std::cos(after), std::sin(after)});
    // Old owner at rank k before; new owner at rank k after.
    EXPECT_EQ(topk::RankOf(ds, fb, (*border)[i - 1].item), k);
    EXPECT_EQ(topk::RankOf(ds, fa, (*border)[i].item), k);
  }
}

}  // namespace
}  // namespace core
}  // namespace rrr
