// Concurrency contract of the dynamic-data layer, written to run under
// ThreadSanitizer: concurrent writers and readers never observe a torn
// version (every Snapshot is a fully consistent immutable PreparedDataset),
// writers serialize into a strictly increasing version sequence, and an
// update preempted mid-build leaves the current version untouched with no
// partial artifact published anywhere.
#include "core/dataset_updates.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/exec_context.h"
#include "core/engine.h"
#include "core/prepared_dataset.h"
#include "data/dataset.h"
#include "test_util.h"

namespace rrr {
namespace core {
namespace {

using rrr::testing::DataFamily;
using rrr::testing::FamilyRows;
using rrr::testing::MakeDataset;

std::vector<std::vector<double>> SnapshotRows(const PreparedDataset& snap) {
  std::vector<std::vector<double>> rows;
  rows.reserve(snap.size());
  for (size_t i = 0; i < snap.size(); ++i) {
    const double* r = snap.dataset().row(i);
    rows.emplace_back(r, r + snap.dims());
  }
  return rows;
}

/// Solves over a private from-scratch engine built from the snapshot's own
/// rows — the oracle for "this version's carried-forward artifacts answer
/// like a cold build".
std::vector<int32_t> OracleSolve(const PreparedDataset& snap, size_t k) {
  Result<std::shared_ptr<RrrEngine>> oracle =
      RrrEngine::Create(MakeDataset(SnapshotRows(snap)));
  RRR_CHECK(oracle.ok()) << oracle.status().ToString();
  Result<QueryResult> solved = (*oracle)->Solve(k);
  RRR_CHECK(solved.ok()) << solved.status().ToString();
  return solved->representative;
}

TEST(DynamicConcurrencyTest, WritersAndReadersNeverTearAVersion) {
  Result<std::shared_ptr<DynamicDataset>> created = DynamicDataset::Create(
      MakeDataset(FamilyRows(DataFamily::kUniform, 40, 2, 3)));
  ASSERT_TRUE(created.ok());
  const std::shared_ptr<DynamicDataset> dyn = *created;
  Result<std::shared_ptr<RrrEngine>> engine = NewDynamicEngine(dyn);
  ASSERT_TRUE(engine.ok());

  constexpr size_t kWriters = 2;
  constexpr size_t kOpsPerWriter = 40;
  std::atomic<int64_t> appended{0};
  std::atomic<int64_t> deleted{0};
  std::atomic<int64_t> published{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w]() {
      for (size_t i = 0; i < kOpsPerWriter; ++i) {
        if (i % 3 == 2) {
          // Always-valid target: writers never shrink the dataset below
          // the initial 40 rows minus in-flight deletes.
          if (dyn->Delete(0).ok()) {
            deleted.fetch_add(1);
            published.fetch_add(1);
          }
        } else {
          const std::vector<std::vector<double>> rows = FamilyRows(
              DataFamily::kUniform, 1 + i % 2, 2, 1000 + w * 100 + i);
          if (dyn->BatchAppend(rows).ok()) {
            appended.fetch_add(static_cast<int64_t>(rows.size()));
            published.fetch_add(1);
          } else {
            failed.store(true);
          }
        }
      }
    });
  }
  for (size_t r = 0; r < 2; ++r) {
    threads.emplace_back([&, r]() {
      uint64_t last_ordinal = 0;
      for (size_t i = 0; i < 150; ++i) {
        const std::shared_ptr<const PreparedDataset> snap = dyn->Snapshot();
        // A torn publish would show as an inconsistent shape or a version
        // going backwards within one reader.
        if (snap->size() == 0 || snap->dims() != 2 ||
            snap->version().ordinal < last_ordinal ||
            !snap->version().assigned()) {
          failed.store(true);
          break;
        }
        last_ordinal = snap->version().ordinal;
        if (i % 50 == 25) {
          // A query pinned to this snapshot must answer exactly like a
          // cold engine over the same rows, and keep doing so while
          // writers publish past it.
          QueryOptions pinned;
          pinned.snapshot = snap;
          Result<QueryResult> got = (*engine)->Solve(2 + r, pinned);
          if (!got.ok() ||
              got->representative != OracleSolve(*snap, 2 + r)) {
            failed.store(true);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  const std::shared_ptr<const PreparedDataset> fin = dyn->Snapshot();
  EXPECT_EQ(static_cast<int64_t>(fin->size()),
            40 + appended.load() - deleted.load());
  EXPECT_EQ(fin->version().ordinal,
            static_cast<uint64_t>(published.load()));
  // The surviving artifacts (mirror tiles, maintained counts) must answer
  // like a cold build over the final rows.
  Result<QueryResult> final_solve = (*engine)->Solve(3);
  ASSERT_TRUE(final_solve.ok());
  EXPECT_EQ(final_solve->representative, OracleSolve(*fin, 3));
}

TEST(DynamicConcurrencyTest, PreemptedUpdatePublishesNothing) {
  Result<std::shared_ptr<DynamicDataset>> created = DynamicDataset::Create(
      MakeDataset(FamilyRows(DataFamily::kCorrelated, 32, 2, 7)));
  ASSERT_TRUE(created.ok());
  const std::shared_ptr<DynamicDataset> dyn = *created;
  // Materialize artifacts so a preempted update has real incremental
  // maintenance to abandon, not just a dataset copy.
  Result<std::shared_ptr<RrrEngine>> engine = NewDynamicEngine(dyn);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Solve(3).ok());

  const DatasetVersion before = dyn->version();
  const size_t size_before = dyn->size();

  CancellationSource cancelled;
  cancelled.RequestCancel();
  ExecContext ctx;
  ctx.cancel = cancelled.token();
  EXPECT_EQ(dyn->Insert({0.1, 0.2}, ctx).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(dyn->Delete(0, ctx).status().code(), StatusCode::kCancelled);

  ExecContext expired;
  expired.deadline = Deadline::After(-1.0);
  EXPECT_EQ(dyn->BatchAppend({{0.3, 0.4}}, expired).status().code(),
            StatusCode::kDeadlineExceeded);

  EXPECT_EQ(dyn->version(), before);
  EXPECT_EQ(dyn->size(), size_before);
  // The untouched version still answers correctly after the aborts.
  Result<QueryResult> solve = (*engine)->Solve(3);
  ASSERT_TRUE(solve.ok());
  EXPECT_EQ(solve->diagnostics.dataset_version, before);
}

TEST(DynamicConcurrencyTest, MidFlightCancellationLeavesACleanVersion) {
  // 2D data: the kAuto path is the exact sweep solver, which stays fast
  // at every size this test grows to (MDRC's node budget does not).
  Result<std::shared_ptr<DynamicDataset>> created = DynamicDataset::Create(
      MakeDataset(FamilyRows(DataFamily::kAnticorrelated, 48, 2, 11)));
  ASSERT_TRUE(created.ok());
  const std::shared_ptr<DynamicDataset> dyn = *created;
  Result<std::shared_ptr<RrrEngine>> engine = NewDynamicEngine(dyn);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Solve(4).ok());  // materialize artifacts

  uint64_t expected_ordinal = dyn->version().ordinal;
  for (size_t round = 0; round < 12; ++round) {
    CancellationSource source;
    ExecContext ctx;
    ctx.cancel = source.token();
    std::thread canceller([&source, round]() {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
      source.RequestCancel();
    });
    const std::vector<std::vector<double>> batch =
        FamilyRows(DataFamily::kAnticorrelated, 150, 2, 2000 + round);
    const Result<DatasetVersion> published = dyn->BatchAppend(batch, ctx);
    canceller.join();
    if (published.ok()) {
      // The whole batch landed as one clean version.
      ++expected_ordinal;
      EXPECT_EQ(published->ordinal, expected_ordinal);
    } else {
      EXPECT_EQ(published.status().code(), StatusCode::kCancelled);
    }
    EXPECT_EQ(dyn->version().ordinal, expected_ordinal);
  }

  // Whatever mix of published and aborted rounds happened, the current
  // version's artifacts answer exactly like a cold rebuild.
  Result<QueryResult> solve = (*engine)->Solve(4);
  ASSERT_TRUE(solve.ok());
  EXPECT_EQ(solve->representative, OracleSolve(*dyn->Snapshot(), 4));
}

}  // namespace
}  // namespace core
}  // namespace rrr
