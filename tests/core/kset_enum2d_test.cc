#include "core/kset_enum2d.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "lp/separation.h"
#include "test_util.h"
#include "topk/topk.h"

namespace rrr {
namespace core {
namespace {

TEST(KSetEnum2DTest, RejectsBadArguments) {
  data::Dataset ds3d = data::GenerateUniform(10, 3, 1);
  EXPECT_FALSE(EnumerateKSets2D(ds3d, 2).ok());
  data::Dataset ds2d = data::GenerateUniform(10, 2, 1);
  EXPECT_FALSE(EnumerateKSets2D(ds2d, 0).ok());
}

TEST(KSetEnum2DTest, PaperExampleTwoSets) {
  // Figure 6: S = {{t1,t7}, {t7,t3}, {t3,t5}} for k = 2.
  data::Dataset ds = testing::PaperFigure1Dataset();
  Result<KSetCollection> ksets = EnumerateKSets2D(ds, 2);
  ASSERT_TRUE(ksets.ok());
  ASSERT_EQ(ksets->size(), 3u);
  EXPECT_TRUE(ksets->Contains(KSet{{0, 6}}));
  EXPECT_TRUE(ksets->Contains(KSet{{2, 6}}));
  EXPECT_TRUE(ksets->Contains(KSet{{2, 4}}));
}

TEST(KSetEnum2DTest, KOneEnumeratesConvexMaximaInSweepOrder) {
  data::Dataset ds = testing::PaperFigure1Dataset();
  Result<KSetCollection> ksets = EnumerateKSets2D(ds, 1);
  ASSERT_TRUE(ksets.ok());
  // Winners along the sweep: t7, then t3, then t5.
  ASSERT_EQ(ksets->size(), 3u);
  EXPECT_EQ(ksets->sets()[0].ids, (std::vector<int32_t>{6}));
  EXPECT_EQ(ksets->sets()[1].ids, (std::vector<int32_t>{2}));
  EXPECT_EQ(ksets->sets()[2].ids, (std::vector<int32_t>{4}));
}

TEST(KSetEnum2DTest, KGreaterEqualNGivesSingleFullSet) {
  data::Dataset ds = testing::PaperFigure1Dataset();
  Result<KSetCollection> ksets = EnumerateKSets2D(ds, 9);
  ASSERT_TRUE(ksets.ok());
  ASSERT_EQ(ksets->size(), 1u);
  EXPECT_EQ(ksets->sets()[0].ids.size(), 7u);
}

class KSetEnum2DOracleTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KSetEnum2DOracleTest, SampledTopKSetsAreAllEnumerated) {
  // Lemma 5 direction: every realized top-k set is a k-set, and the sweep
  // must have found it.
  const auto [seed, n, k] = GetParam();
  const data::Dataset ds = data::GenerateUniform(
      static_cast<size_t>(n), 2, static_cast<uint64_t>(seed));
  Result<KSetCollection> ksets =
      EnumerateKSets2D(ds, static_cast<size_t>(k));
  ASSERT_TRUE(ksets.ok());
  for (double theta : testing::AngleGrid(500)) {
    KSet observed;
    observed.ids = topk::TopKSet(
        ds,
        topk::LinearFunction({std::cos(theta), std::sin(theta)}),
        static_cast<size_t>(k));
    EXPECT_TRUE(ksets->Contains(observed)) << "theta " << theta;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, KSetEnum2DOracleTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(10, 60, 150),
                       ::testing::Values(1, 3, 7)));

TEST(KSetEnum2DTest, EveryEnumeratedSetIsLpSeparable) {
  const data::Dataset ds = data::GenerateUniform(40, 2, 5);
  const size_t k = 4;
  Result<KSetCollection> ksets = EnumerateKSets2D(ds, k);
  ASSERT_TRUE(ksets.ok());
  for (const KSet& s : ksets->sets()) {
    ASSERT_EQ(s.ids.size(), k);
    Result<lp::SeparationResult> sep =
        lp::FindSeparatingWeights(ds.flat(), ds.size(), 2, s.ids);
    ASSERT_TRUE(sep.ok());
    EXPECT_TRUE(sep->separable);
  }
}

TEST(KSetEnum2DTest, EverySetHasAGraphNeighborInTheCollection) {
  // The sweep walks the k-set graph (Definition 4) edge by edge, so every
  // discovered set other than the first must share k-1 items with some
  // other discovered set (a connectivity witness for Theorem 7).
  const data::Dataset ds = data::GenerateUniform(80, 2, 6);
  const size_t k = 5;
  Result<KSetCollection> ksets = EnumerateKSets2D(ds, k);
  ASSERT_TRUE(ksets.ok());
  const auto& sets = ksets->sets();
  ASSERT_GT(sets.size(), 1u);
  for (size_t i = 0; i < sets.size(); ++i) {
    bool has_neighbor = false;
    for (size_t j = 0; j < sets.size() && !has_neighbor; ++j) {
      if (i != j && sets[i].IntersectionSize(sets[j]) == k - 1) {
        has_neighbor = true;
      }
    }
    EXPECT_TRUE(has_neighbor) << "set " << i << " is isolated";
  }
}

TEST(KSetEnum2DTest, TheoremSevenGraphIsConnected) {
  // Theorem 7: the k-set graph of a complete collection is connected.
  for (uint64_t seed : {8u, 9u}) {
    const data::Dataset ds = data::GenerateUniform(60, 2, seed);
    for (size_t k : {2u, 5u}) {
      Result<KSetCollection> ksets = EnumerateKSets2D(ds, k);
      ASSERT_TRUE(ksets.ok());
      EXPECT_EQ(KSetGraphComponents(ksets->sets()), 1u)
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(KSetEnum2DTest, CorrelatedDataHasFewerKSetsThanAnticorrelated) {
  const size_t n = 200, k = 5;
  Result<KSetCollection> corr =
      EnumerateKSets2D(data::GenerateCorrelated(n, 2, 7, 0.95), k);
  Result<KSetCollection> anti =
      EnumerateKSets2D(data::GenerateAnticorrelated(n, 2, 7), k);
  ASSERT_TRUE(corr.ok());
  ASSERT_TRUE(anti.ok());
  EXPECT_LT(corr->size(), anti->size());
}

}  // namespace
}  // namespace core
}  // namespace rrr
