#include "core/kset_sampler.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/kset_enum2d.h"
#include "core/kset_graph.h"
#include "data/generators.h"
#include "test_util.h"

namespace rrr {
namespace core {
namespace {

TEST(KSetSamplerTest, RejectsBadArguments) {
  data::Dataset ds = data::GenerateUniform(10, 2, 1);
  EXPECT_FALSE(SampleKSets(ds, 0).ok());
  data::Dataset empty;
  EXPECT_FALSE(SampleKSets(empty, 2).ok());
}

TEST(KSetSamplerTest, DeterministicUnderSeed) {
  const data::Dataset ds = data::GenerateUniform(50, 3, 2);
  KSetSamplerOptions opts;
  opts.seed = 7;
  Result<KSetSampleResult> a = SampleKSets(ds, 5, opts);
  Result<KSetSampleResult> b = SampleKSets(ds, 5, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->samples_drawn, b->samples_drawn);
  ASSERT_EQ(a->ksets.size(), b->ksets.size());
  for (size_t i = 0; i < a->ksets.size(); ++i) {
    EXPECT_EQ(a->ksets.sets()[i].ids, b->ksets.sets()[i].ids);
  }
}

TEST(KSetSamplerTest, AllSampledSetsHaveSizeK) {
  const data::Dataset ds = data::GenerateUniform(60, 3, 3);
  const size_t k = 4;
  Result<KSetSampleResult> sample = SampleKSets(ds, k);
  ASSERT_TRUE(sample.ok());
  EXPECT_FALSE(sample->ksets.empty());
  for (const KSet& s : sample->ksets.sets()) {
    EXPECT_EQ(s.ids.size(), k);
    EXPECT_TRUE(std::is_sorted(s.ids.begin(), s.ids.end()));
  }
}

TEST(KSetSamplerTest, SubsetOfExact2DEnumeration) {
  // K-SETr can only find true k-sets (Lemma 5), never spurious ones.
  const data::Dataset ds = data::GenerateUniform(60, 2, 4);
  const size_t k = 3;
  Result<KSetCollection> exact = EnumerateKSets2D(ds, k);
  Result<KSetSampleResult> sample = SampleKSets(ds, k);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(sample.ok());
  EXPECT_LE(sample->ksets.size(), exact->size());
  for (const KSet& s : sample->ksets.sets()) {
    EXPECT_TRUE(exact->Contains(s));
  }
}

TEST(KSetSamplerTest, FindsEverythingOnTinyInputsWithPatience) {
  // With a generous termination budget the coupon collector finds the whole
  // (small) collection.
  const data::Dataset ds = data::GenerateUniform(14, 2, 5);
  const size_t k = 2;
  Result<KSetCollection> exact = EnumerateKSets2D(ds, k);
  KSetSamplerOptions opts;
  opts.termination_count = 3000;
  Result<KSetSampleResult> sample = SampleKSets(ds, k, opts);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->ksets.size(), exact->size());
}

TEST(KSetSamplerTest, SubsetOfExactGraphEnumerationIn3D) {
  const data::Dataset ds = data::GenerateUniform(14, 3, 6);
  const size_t k = 2;
  Result<KSetCollection> exact = EnumerateKSetsGraph(ds, k);
  Result<KSetSampleResult> sample = SampleKSets(ds, k);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(sample.ok());
  for (const KSet& s : sample->ksets.sets()) {
    EXPECT_TRUE(exact->Contains(s));
  }
}

TEST(KSetSamplerTest, TerminationCountStopsEarly) {
  const data::Dataset ds = data::GenerateUniform(300, 3, 7);
  KSetSamplerOptions patient;
  patient.termination_count = 200;
  KSetSamplerOptions hasty;
  hasty.termination_count = 5;
  Result<KSetSampleResult> a = SampleKSets(ds, 10, patient);
  Result<KSetSampleResult> b = SampleKSets(ds, 10, hasty);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(a->ksets.size(), b->ksets.size());
  EXPECT_GE(a->samples_drawn, b->samples_drawn);
}

TEST(KSetSamplerTest, MaxSamplesCapIsHonored) {
  const data::Dataset ds = data::GenerateAnticorrelated(500, 4, 8);
  KSetSamplerOptions opts;
  opts.max_samples = 50;
  opts.termination_count = 1000000;
  Result<KSetSampleResult> sample = SampleKSets(ds, 20, opts);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->samples_drawn, 50u);
}

TEST(KSetSamplerTest, SkybandPrefilterIsTransparent) {
  // The prefilter is a pure optimization: identical k-sets, identical ids.
  const data::Dataset ds = data::GenerateCorrelated(120, 3, 21, 0.8);
  const size_t k = 6;
  KSetSamplerOptions plain;
  plain.seed = 77;
  KSetSamplerOptions filtered = plain;
  filtered.skyband_prefilter = true;
  Result<KSetSampleResult> a = SampleKSets(ds, k, plain);
  Result<KSetSampleResult> b = SampleKSets(ds, k, filtered);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->ksets.size(), b->ksets.size());
  for (size_t i = 0; i < a->ksets.size(); ++i) {
    EXPECT_EQ(a->ksets.sets()[i].ids, b->ksets.sets()[i].ids);
  }
}

TEST(KSetSamplerTest, ThresholdAlgorithmEngineIsTransparent) {
  const data::Dataset ds = data::GenerateDotLike(150, 31).ProjectPrefix(3);
  const size_t k = 8;
  KSetSamplerOptions plain;
  plain.seed = 55;
  KSetSamplerOptions ta = plain;
  ta.use_threshold_algorithm = true;
  Result<KSetSampleResult> a = SampleKSets(ds, k, plain);
  Result<KSetSampleResult> b = SampleKSets(ds, k, ta);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->ksets.size(), b->ksets.size());
  for (size_t i = 0; i < a->ksets.size(); ++i) {
    EXPECT_EQ(a->ksets.sets()[i].ids, b->ksets.sets()[i].ids);
  }
}

TEST(KSetSamplerTest, TaAndSkybandComposeTransparently) {
  const data::Dataset ds = data::GenerateCorrelated(200, 3, 32, 0.85);
  const size_t k = 5;
  KSetSamplerOptions plain;
  plain.seed = 56;
  KSetSamplerOptions both = plain;
  both.use_threshold_algorithm = true;
  both.skyband_prefilter = true;
  Result<KSetSampleResult> a = SampleKSets(ds, k, plain);
  Result<KSetSampleResult> b = SampleKSets(ds, k, both);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->ksets.size(), b->ksets.size());
  for (size_t i = 0; i < a->ksets.size(); ++i) {
    EXPECT_EQ(a->ksets.sets()[i].ids, b->ksets.sets()[i].ids);
  }
}

TEST(KSetSamplerTest, KGreaterEqualNGivesOneSet) {
  const data::Dataset ds = data::GenerateUniform(10, 3, 9);
  Result<KSetSampleResult> sample = SampleKSets(ds, 10);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->ksets.size(), 1u);
  EXPECT_EQ(sample->ksets.sets()[0].ids.size(), 10u);
}

}  // namespace
}  // namespace core
}  // namespace rrr
