// The k-skyband candidate-pruning layer (core/candidate_index.h) carries a
// bit-identical-output contract: every solver and evaluator must produce
// exactly the same representatives, regrets, and ranks with and without the
// index, for every thread count, on every dataset family — including the
// tie-heavy ones (duplicates, constant-ish columns) where plain Pareto
// dominance pruning would break the (score desc, id asc) tie order under
// zero-weight corner/endpoint functions. These tests pin that contract plus
// the band's monotonicity in k.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/candidate_index.h"
#include "core/engine.h"
#include "core/evaluator.h"
#include "core/find_ranges.h"
#include "core/kset_graph.h"
#include "core/kset_sampler.h"
#include "core/mdrc.h"
#include "core/mdrrr.h"
#include "core/rrr2d.h"
#include "data/generators.h"
#include "eval/rank_regret.h"
#include "topk/rank.h"
#include "topk/topk.h"
#include "test_util.h"

namespace rrr {
namespace core {
namespace {

/// Options that force the index to build regardless of profitability — the
/// equivalence contract must hold even where pruning does not pay.
CandidateIndexOptions ForceBuild() {
  CandidateIndexOptions options;
  options.min_dataset_size = 0;
  options.max_band_fraction = 1.0;
  options.precheck_sample = 0;
  options.budget_slack_per_tuple = 0;
  return options;
}

std::shared_ptr<const CandidateIndex> MustBuild(const data::Dataset& ds,
                                                size_t k) {
  Result<CandidateIndex::Outcome> outcome =
      CandidateIndex::Create(ds, k, ForceBuild());
  RRR_CHECK(outcome.ok()) << outcome.status().ToString();
  RRR_CHECK(outcome->index != nullptr) << outcome->decline_reason;
  return outcome->index;
}

struct Family {
  std::string name;
  data::Dataset data;
};

/// The ISSUE's dataset families: uniform, correlated, anti-correlated,
/// duplicate-heavy, and a constant-ish column.
std::vector<Family> Families(size_t n, size_t d, uint64_t seed) {
  std::vector<Family> families;
  families.push_back({"uniform", data::GenerateUniform(n, d, seed)});
  families.push_back(
      {"correlated", data::GenerateCorrelated(n, d, seed + 1, 0.9)});
  families.push_back(
      {"anticorrelated", data::GenerateAnticorrelated(n, d, seed + 2)});
  {
    // Duplicate-heavy: a small distinct pool cycled to n rows, coordinates
    // quantized so cross-row score ties are common too.
    const data::Dataset pool = data::GenerateUniform(n / 8 + 2, d, seed + 3);
    std::vector<std::vector<double>> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const double* r = pool.row(i % pool.size());
      std::vector<double> row(r, r + d);
      for (double& v : row) v = std::round(v * 8.0) / 8.0;
      rows.push_back(std::move(row));
    }
    families.push_back({"duplicate-heavy", testing::MakeDataset(rows)});
  }
  {
    // Constant-ish column: column 0 identical everywhere — every function
    // weighting it alone resolves purely by the id tie-break, the case
    // plain dominance pruning gets wrong.
    const data::Dataset base = data::GenerateUniform(n, d, seed + 4);
    std::vector<std::vector<double>> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const double* r = base.row(i);
      std::vector<double> row(r, r + d);
      row[0] = 0.5;
      rows.push_back(std::move(row));
    }
    families.push_back({"constant-column", testing::MakeDataset(rows)});
  }
  return families;
}

/// Probe functions that stress the tie order: every axis, the diagonal,
/// and a few random draws.
std::vector<topk::LinearFunction> ProbeFunctions(size_t d, uint64_t seed) {
  std::vector<topk::LinearFunction> funcs;
  for (size_t axis = 0; axis < d; ++axis) {
    geometry::Vec w(d, 0.0);
    w[axis] = 1.0;
    funcs.emplace_back(std::move(w));
  }
  funcs.emplace_back(geometry::Vec(d, 1.0));
  Rng rng(seed);
  for (int i = 0; i < 6; ++i) {
    funcs.emplace_back(rng.UnitWeightVector(static_cast<int>(d)));
  }
  return funcs;
}

TEST(SkybandEquivalenceTest, TopKMatchesFullScanOnEveryFamily) {
  for (const Family& family : Families(300, 3, 7)) {
    for (size_t k : {1u, 7u, 40u}) {
      const auto index = MustBuild(family.data, k);
      for (const topk::LinearFunction& f : ProbeFunctions(3, 99)) {
        EXPECT_EQ(index->TopK(f, k), topk::TopK(family.data, f, k))
            << family.name << " k=" << k;
        EXPECT_EQ(index->TopKSet(f, k), topk::TopKSet(family.data, f, k))
            << family.name << " k=" << k;
        EXPECT_EQ(index->Top1(f), topk::TopK(family.data, f, 1).front())
            << family.name;
      }
    }
  }
}

TEST(SkybandEquivalenceTest, TopKClampAndOversizedK) {
  const data::Dataset ds = data::GenerateUniform(50, 3, 3);
  const auto index = MustBuild(ds, ds.size() + 10);
  EXPECT_EQ(index->band_size(), ds.size());  // k >= n keeps everything
  for (const topk::LinearFunction& f : ProbeFunctions(3, 5)) {
    EXPECT_EQ(index->TopK(f, ds.size() + 10),
              topk::TopK(ds, f, ds.size() + 10));
  }
}

TEST(SkybandEquivalenceTest, BandIsMonotoneInK) {
  for (const Family& family : Families(250, 3, 11)) {
    std::vector<int32_t> previous;
    for (size_t k = 1; k <= 12; ++k) {
      const auto index = MustBuild(family.data, k);
      const std::vector<int32_t>& band = index->band_ids();
      EXPECT_TRUE(std::includes(band.begin(), band.end(), previous.begin(),
                                previous.end()))
          << family.name << ": (k=" << k << ")-band lost members of the "
          << "(k-1)-band";
      previous = band;
    }
  }
}

TEST(SkybandEquivalenceTest, SlicedCountsMatchDirectBuild) {
  const data::Dataset ds = data::GenerateCorrelated(300, 3, 17, 0.8);
  Result<std::vector<uint32_t>> counts =
      CandidateIndex::CountAlwaysOutrankers(ds, 20);
  ASSERT_TRUE(counts.ok());
  for (size_t k : {1u, 5u, 20u}) {
    Result<CandidateIndex::Outcome> sliced =
        CandidateIndex::Create(ds, k, ForceBuild(), {}, &counts.value());
    ASSERT_TRUE(sliced.ok());
    ASSERT_NE(sliced->index, nullptr);
    EXPECT_EQ(sliced->index->band_ids(), MustBuild(ds, k)->band_ids())
        << "k=" << k;
  }
}

TEST(SkybandEquivalenceTest, Solve2dRrrPrunedMatchesUnpruned) {
  for (const Family& family : Families(300, 2, 23)) {
    for (size_t k : {1u, 5u, 20u}) {
      const auto index = MustBuild(family.data, k);
      Result<std::vector<int32_t>> unpruned = Solve2dRrr(family.data, k);
      Result<std::vector<int32_t>> pruned =
          Solve2dRrr(family.data, k, {}, {}, nullptr, index.get());
      ASSERT_TRUE(unpruned.ok()) << family.name;
      ASSERT_TRUE(pruned.ok()) << family.name;
      EXPECT_EQ(*unpruned, *pruned) << family.name << " k=" << k;
    }
  }
}

TEST(SkybandEquivalenceTest, FindRangesPrunedMatchesUnpruned) {
  for (const Family& family : Families(250, 2, 29)) {
    const size_t k = 6;
    const auto index = MustBuild(family.data, k);
    Result<std::vector<ItemRange>> unpruned = FindRanges(family.data, k);
    Result<std::vector<ItemRange>> pruned =
        FindRanges(family.data, k, {}, nullptr, index.get());
    ASSERT_TRUE(unpruned.ok());
    ASSERT_TRUE(pruned.ok());
    ASSERT_EQ(unpruned->size(), pruned->size());
    for (size_t i = 0; i < unpruned->size(); ++i) {
      EXPECT_EQ((*unpruned)[i].in_topk, (*pruned)[i].in_topk)
          << family.name << " id " << i;
      if ((*unpruned)[i].in_topk) {
        EXPECT_EQ((*unpruned)[i].begin, (*pruned)[i].begin)
            << family.name << " id " << i;
        EXPECT_EQ((*unpruned)[i].end, (*pruned)[i].end)
            << family.name << " id " << i;
      }
    }
  }
}

TEST(SkybandEquivalenceTest, MdrcPrunedMatchesUnprunedAcrossThreadCounts) {
  for (const Family& family : Families(300, 3, 31)) {
    for (size_t k : {3u, 15u}) {
      const auto index = MustBuild(family.data, k);
      for (size_t threads : {size_t{1}, size_t{4}}) {
        MdrcOptions options;
        options.threads = threads;
        // The constant-column family is degenerate by design: MDRC splits
        // to the depth cap along the tied axis and exhausts any node
        // budget. Cap it low — the contract then is that the pruned solve
        // fails (or succeeds) exactly like the unpruned one.
        options.max_nodes = 20000;
        MdrcStats unpruned_stats;
        MdrcStats pruned_stats;
        Result<std::vector<int32_t>> unpruned =
            SolveMdrc(family.data, k, options, &unpruned_stats);
        Result<std::vector<int32_t>> pruned = SolveMdrc(
            family.data, k, options, &pruned_stats, {}, nullptr, index.get());
        ASSERT_EQ(unpruned.status().code(), pruned.status().code())
            << family.name;
        if (!unpruned.ok()) continue;
        EXPECT_EQ(*unpruned, *pruned)
            << family.name << " k=" << k << " threads=" << threads;
        // The partition tree — and with it every structural counter — must
        // not notice the pruning.
        EXPECT_EQ(unpruned_stats.nodes, pruned_stats.nodes) << family.name;
        EXPECT_EQ(unpruned_stats.leaves, pruned_stats.leaves) << family.name;
        EXPECT_EQ(unpruned_stats.depth_cap_leaves,
                  pruned_stats.depth_cap_leaves)
            << family.name;
        EXPECT_EQ(unpruned_stats.max_depth, pruned_stats.max_depth)
            << family.name;
        EXPECT_EQ(pruned_stats.skyband_size, index->band_size());
        EXPECT_EQ(unpruned_stats.skyband_size, 0u);
      }
    }
  }
}

TEST(SkybandEquivalenceTest, SamplerAndMdrrrPrunedMatchUnpruned) {
  for (const Family& family : Families(250, 3, 37)) {
    const size_t k = 10;
    const auto index = MustBuild(family.data, k);
    KSetSamplerOptions sampler;
    sampler.termination_count = 40;
    Result<KSetSampleResult> unpruned = SampleKSets(family.data, k, sampler);
    Result<KSetSampleResult> pruned =
        SampleKSets(family.data, k, sampler, {}, index.get());
    ASSERT_TRUE(unpruned.ok()) << family.name;
    ASSERT_TRUE(pruned.ok()) << family.name;
    EXPECT_EQ(unpruned->samples_drawn, pruned->samples_drawn) << family.name;
    ASSERT_EQ(unpruned->ksets.size(), pruned->ksets.size()) << family.name;
    for (size_t i = 0; i < unpruned->ksets.size(); ++i) {
      EXPECT_EQ(unpruned->ksets.sets()[i].ids, pruned->ksets.sets()[i].ids)
          << family.name << " sample " << i;
    }

    Result<std::vector<int32_t>> mdrrr_unpruned =
        SolveMdrrrSampled(family.data, k, {}, sampler);
    Result<std::vector<int32_t>> mdrrr_pruned =
        SolveMdrrrSampled(family.data, k, {}, sampler, {}, index.get());
    ASSERT_TRUE(mdrrr_unpruned.ok()) << family.name;
    ASSERT_TRUE(mdrrr_pruned.ok()) << family.name;
    EXPECT_EQ(*mdrrr_unpruned, *mdrrr_pruned) << family.name;
  }
}

TEST(SkybandEquivalenceTest, MinRankOfSubsetExactIncludingFallbacks) {
  for (const Family& family : Families(300, 3, 41)) {
    const size_t k = 8;
    const auto index = MustBuild(family.data, k);
    Rng rng(5);
    for (const topk::LinearFunction& f : ProbeFunctions(3, 43)) {
      // Subsets drawn from the whole id space: members are usually outside
      // the band, exercising the full-scan fallback as well as the fast
      // certified path.
      for (int trial = 0; trial < 4; ++trial) {
        std::vector<int32_t> subset;
        const size_t size = 1 + static_cast<size_t>(rng.UniformInt(0, 4));
        for (size_t i = 0; i < size; ++i) {
          subset.push_back(static_cast<int32_t>(rng.UniformInt(
              0, static_cast<int64_t>(family.data.size()) - 1)));
        }
        EXPECT_EQ(index->MinRankOfSubset(f, subset),
                  topk::MinRankOfSubset(family.data, f, subset))
            << family.name;
      }
    }
  }
}

TEST(SkybandEquivalenceTest, SampledEvaluatorPrunedMatchesUnpruned) {
  for (const Family& family : Families(300, 3, 47)) {
    const size_t k = 10;
    const auto index = MustBuild(family.data, k);
    // A representative-like subset without paying a solver run: the
    // diagonal's top-k (regret usually <= k — the certified band path)
    // plus two arbitrary ids (usually band outsiders — the fallback path).
    std::vector<int32_t> subset =
        index->TopKSet(topk::LinearFunction(geometry::Vec(3, 1.0)), k);
    subset.push_back(static_cast<int32_t>(family.data.size() / 2));
    subset.push_back(static_cast<int32_t>(family.data.size() - 1));
    SampledRegretOptions options;
    options.num_functions = 400;
    for (size_t threads : {size_t{1}, size_t{4}}) {
      options.threads = threads;
      SampledRegretStats stats;
      Result<int64_t> unpruned =
          SampledRankRegretEstimate(family.data, subset, options);
      Result<int64_t> pruned = SampledRankRegretEstimate(
          family.data, subset, options, {}, index.get(), &stats);
      ASSERT_TRUE(unpruned.ok()) << family.name;
      ASSERT_TRUE(pruned.ok()) << family.name;
      EXPECT_EQ(*unpruned, *pruned)
          << family.name << " threads=" << threads;
      EXPECT_EQ(stats.skyband_scans + stats.full_scan_fallbacks,
                options.num_functions)
          << family.name;
    }
  }
}

TEST(SkybandEquivalenceTest, ExactEvaluatorUnaffectedByEnginePruning) {
  // The exact 2D evaluator tracks ranks beyond k, so it never prunes; pin
  // that the engine's pruned 2D representatives still satisfy it exactly
  // like the legacy ones.
  for (const Family& family : Families(250, 2, 53)) {
    const size_t k = 6;
    const auto index = MustBuild(family.data, k);
    Result<std::vector<int32_t>> unpruned = Solve2dRrr(family.data, k);
    Result<std::vector<int32_t>> pruned =
        Solve2dRrr(family.data, k, {}, {}, nullptr, index.get());
    ASSERT_TRUE(unpruned.ok());
    ASSERT_TRUE(pruned.ok());
    Result<int64_t> regret_unpruned =
        SweepExactRankRegret2D(family.data, *unpruned);
    Result<int64_t> regret_pruned =
        SweepExactRankRegret2D(family.data, *pruned);
    ASSERT_TRUE(regret_unpruned.ok());
    ASSERT_TRUE(regret_pruned.ok());
    EXPECT_EQ(*regret_unpruned, *regret_pruned) << family.name;
  }
}

TEST(SkybandEquivalenceTest, KSetGraphIndexedMatchesLegacy) {
  for (const Family& family : Families(60, 3, 59)) {
    const size_t k = 3;
    const auto index = MustBuild(family.data, k);
    Result<KSetCollection> legacy = EnumerateKSetsGraph(family.data, k);
    Result<KSetCollection> indexed =
        EnumerateKSetsGraph(family.data, k, {}, {}, index.get());
    ASSERT_EQ(legacy.ok(), indexed.ok()) << family.name;
    if (!legacy.ok()) continue;  // degenerate seeds fail both paths alike
    ASSERT_EQ(legacy->size(), indexed->size()) << family.name;
    for (size_t i = 0; i < legacy->size(); ++i) {
      EXPECT_EQ(legacy->sets()[i].ids, indexed->sets()[i].ids)
          << family.name << " set " << i;
    }

    // The exact certificate built on the enumeration must agree too.
    const std::vector<int32_t> subset =
        index->TopKSet(topk::LinearFunction(geometry::Vec(3, 1.0)), k);
    Result<eval::RankRegretCertificate> cert_legacy =
        eval::ExactRankRegretWithinK(family.data, subset, k);
    Result<eval::RankRegretCertificate> cert_indexed =
        eval::ExactRankRegretWithinK(family.data, subset, k, 0, index.get());
    ASSERT_EQ(cert_legacy.ok(), cert_indexed.ok()) << family.name;
    if (cert_legacy.ok()) {
      EXPECT_EQ(cert_legacy->within_k, cert_indexed->within_k) << family.name;
      EXPECT_EQ(cert_legacy->witness_weights, cert_indexed->witness_weights)
          << family.name;
      EXPECT_EQ(cert_legacy->witness_rank, cert_indexed->witness_rank)
          << family.name;
    }
  }
}

TEST(SkybandEquivalenceTest, EngineWithForcedPruningMatchesDirectSolvers) {
  for (const Family& family : Families(300, 3, 61)) {
    EngineOptions options;
    options.prepared.candidate = ForceBuild();
    // Degenerate families (constant column) exhaust any MDRC node budget;
    // keep it small so the exhausted path is compared too, cheaply.
    options.defaults.mdrc.max_nodes = 20000;
    Result<std::shared_ptr<RrrEngine>> engine =
        RrrEngine::Create(family.data, options);
    ASSERT_TRUE(engine.ok()) << family.name;
    const size_t k = 12;

    QueryOptions mdrc_query;
    mdrc_query.algorithm = Algorithm::kMdRc;
    Result<QueryResult> mdrc = (*engine)->Solve(k, mdrc_query);
    MdrcOptions direct_options;
    direct_options.max_nodes = options.defaults.mdrc.max_nodes;
    Result<std::vector<int32_t>> direct =
        SolveMdrc(family.data, k, direct_options);
    ASSERT_EQ(mdrc.status().code(), direct.status().code()) << family.name;
    if (mdrc.ok()) {
      EXPECT_EQ(mdrc->representative, *direct) << family.name;
      EXPECT_GT(mdrc->diagnostics.skyband_size, 0u) << family.name;
      EXPECT_EQ(mdrc->diagnostics.mdrc.skyband_size,
                mdrc->diagnostics.skyband_size)
          << family.name;
    }

    QueryOptions mdrrr_query;
    mdrrr_query.algorithm = Algorithm::kMdRrr;
    Result<QueryResult> mdrrr = (*engine)->Solve(k, mdrrr_query);
    ASSERT_TRUE(mdrrr.ok()) << family.name;
    Result<std::vector<int32_t>> direct_mdrrr =
        SolveMdrrrSampled(family.data, k);
    ASSERT_TRUE(direct_mdrrr.ok()) << family.name;
    EXPECT_EQ(mdrrr->representative, *direct_mdrrr) << family.name;

    Result<EvalReport> eval = (*engine)->Evaluate(mdrrr->representative, k);
    ASSERT_TRUE(eval.ok()) << family.name;
    Result<int64_t> direct_eval = SampledRankRegretEstimate(
        family.data, mdrrr->representative,
        SampledRegretOptions{/*num_functions=*/10000, /*seed=*/23,
                             /*threads=*/0});
    ASSERT_TRUE(direct_eval.ok()) << family.name;
    EXPECT_EQ(eval->rank_regret, *direct_eval) << family.name;
  }
}

TEST(SkybandEquivalenceTest, EngineDeclinedIndexStillSolves) {
  // Default build policy declines tiny datasets; the engine must run
  // unpruned and report skyband_size == 0.
  const data::Dataset ds = data::GenerateUniform(120, 3, 67);
  Result<std::shared_ptr<RrrEngine>> engine = RrrEngine::Create(ds);
  ASSERT_TRUE(engine.ok());
  QueryOptions query;
  query.algorithm = Algorithm::kMdRc;
  Result<QueryResult> result = (*engine)->Solve(5, query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->diagnostics.skyband_size, 0u);
  Result<std::vector<int32_t>> direct = SolveMdrc(ds, 5);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(result->representative, *direct);
}

TEST(SkybandEquivalenceTest, DeclinedBuildRetriesOnceCountsAppear) {
  // Budget so tight that a small-k count always aborts on anti-correlated
  // data, while k = n always fits (its budget is ~n^2). After the large-k
  // build pays for the counts, the small k's stale cost-decline must be
  // retried through the slice path instead of being cached forever.
  PreparedDataset::Options options;
  options.candidate.min_dataset_size = 0;
  options.candidate.max_band_fraction = 1.0;
  options.candidate.precheck_sample = 0;
  options.candidate.budget_slack_per_tuple = 1;
  const size_t n = 1200;
  Result<std::shared_ptr<const PreparedDataset>> prepared =
      PreparedDataset::Create(data::GenerateAnticorrelated(n, 3, 3), options);
  ASSERT_TRUE(prepared.ok());
  Result<std::shared_ptr<const CandidateIndex>> small =
      (*prepared)->SharedCandidateIndex(3, 1);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(*small, nullptr) << "tight budget should decline the count";
  Result<std::shared_ptr<const CandidateIndex>> all =
      (*prepared)->SharedCandidateIndex(n, 1);
  ASSERT_TRUE(all.ok());
  ASSERT_NE(*all, nullptr) << "k = n fits any budget and keeps every row";
  Result<std::shared_ptr<const CandidateIndex>> retried =
      (*prepared)->SharedCandidateIndex(3, 1);
  ASSERT_TRUE(retried.ok());
  ASSERT_NE(*retried, nullptr)
      << "counts from the k = n build must rescue the declined k";
  EXPECT_EQ((*retried)->band_ids(),
            MustBuild((*prepared)->dataset(), 3)->band_ids());
}

TEST(SkybandEquivalenceTest, PreparedDatasetSharesAndSlicesTheIndex) {
  PreparedDataset::Options options;
  options.candidate = ForceBuild();
  Result<std::shared_ptr<const PreparedDataset>> prepared =
      PreparedDataset::Create(data::GenerateCorrelated(400, 3, 71, 0.8),
                              options);
  ASSERT_TRUE(prepared.ok());
  bool hit = false;
  Result<std::shared_ptr<const CandidateIndex>> big =
      (*prepared)->SharedCandidateIndex(20, 1, {}, &hit);
  ASSERT_TRUE(big.ok());
  ASSERT_NE(*big, nullptr);
  EXPECT_FALSE(hit);
  Result<std::shared_ptr<const CandidateIndex>> again =
      (*prepared)->SharedCandidateIndex(20, 1, {}, &hit);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(big->get(), again->get()) << "same k must share one index";
  // Smaller k slices the cached counts; the band must equal a direct build.
  Result<std::shared_ptr<const CandidateIndex>> small =
      (*prepared)->SharedCandidateIndex(4, 1, {}, &hit);
  ASSERT_TRUE(small.ok());
  ASSERT_NE(*small, nullptr);
  EXPECT_EQ((*small)->band_ids(),
            MustBuild((*prepared)->dataset(), 4)->band_ids());
}

}  // namespace
}  // namespace core
}  // namespace rrr
