#include "core/mdrrr.h"

#include <gtest/gtest.h>

#include "core/kset_enum2d.h"
#include "core/kset_graph.h"
#include "data/generators.h"
#include "eval/rank_regret.h"
#include "hitting/greedy.h"
#include "test_util.h"

namespace rrr {
namespace core {
namespace {

TEST(MdrrrTest, RejectsBadArguments) {
  data::Dataset ds = data::GenerateUniform(10, 2, 1);
  KSetCollection empty;
  EXPECT_FALSE(SolveMdrrr(ds, empty).ok());
  data::Dataset no_rows;
  KSetCollection some;
  some.Insert(KSet{{0}});
  EXPECT_FALSE(SolveMdrrr(no_rows, some).ok());
}

TEST(MdrrrTest, PaperExampleHitsAllTwoSets) {
  // k-sets {t1,t7}, {t7,t3}, {t3,t5}: {t7, t3} (or {t7, t5}, ...) hits all;
  // minimum hitting set size is 2.
  data::Dataset ds = testing::PaperFigure1Dataset();
  Result<KSetCollection> ksets = EnumerateKSets2D(ds, 2);
  ASSERT_TRUE(ksets.ok());
  for (HittingStrategy strategy :
       {HittingStrategy::kEpsNet, HittingStrategy::kGreedy}) {
    MdrrrOptions opts;
    opts.strategy = strategy;
    Result<std::vector<int32_t>> rep = SolveMdrrr(ds, *ksets, opts);
    ASSERT_TRUE(rep.ok());
    EXPECT_TRUE(ksets->ToSetSystem().IsHit(*rep));
    // Exact guarantee (Section 5.2): rank-regret <= k with the complete
    // k-set collection.
    Result<int64_t> regret = eval::ExactRankRegret2D(ds, *rep);
    ASSERT_TRUE(regret.ok());
    EXPECT_LE(*regret, 2);
  }
}

class MdrrrGuaranteeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MdrrrGuaranteeTest, ExactCollectionGivesRankRegretAtMostK) {
  const auto [seed, k] = GetParam();
  const data::Dataset ds =
      data::GenerateUniform(60, 2, static_cast<uint64_t>(seed));
  Result<KSetCollection> ksets =
      EnumerateKSets2D(ds, static_cast<size_t>(k));
  ASSERT_TRUE(ksets.ok());
  Result<std::vector<int32_t>> rep = SolveMdrrr(ds, *ksets);
  ASSERT_TRUE(rep.ok());
  Result<int64_t> regret = eval::ExactRankRegret2D(ds, *rep);
  ASSERT_TRUE(regret.ok());
  EXPECT_LE(*regret, k);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, MdrrrGuaranteeTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 3, 8)));

TEST(MdrrrTest, ThreeDExactCollectionSatisfiesSampledRegret) {
  const data::Dataset ds = data::GenerateUniform(18, 3, 5);
  const size_t k = 3;
  Result<KSetCollection> ksets = EnumerateKSetsGraph(ds, k);
  ASSERT_TRUE(ksets.ok());
  Result<std::vector<int32_t>> rep = SolveMdrrr(ds, *ksets);
  ASSERT_TRUE(rep.ok());
  eval::SampledRankRegretOptions eval_opts;
  eval_opts.num_functions = 5000;
  Result<int64_t> regret = eval::SampledRankRegret(ds, *rep, eval_opts);
  ASSERT_TRUE(regret.ok());
  EXPECT_LE(*regret, static_cast<int64_t>(k));
}

TEST(MdrrrTest, SampledPipelineHitsItsOwnSample) {
  const data::Dataset ds = data::GenerateUniform(200, 3, 6);
  const size_t k = 10;
  KSetSamplerOptions sampler;
  sampler.seed = 42;
  Result<KSetSampleResult> sample = SampleKSets(ds, k, sampler);
  ASSERT_TRUE(sample.ok());
  Result<std::vector<int32_t>> rep = SolveMdrrr(ds, sample->ksets);
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(sample->ksets.ToSetSystem().IsHit(*rep));
  // Regret measured with the *same* function distribution stays around k;
  // allow slack for k-sets the sampler missed (Section 5.2.1).
  eval::SampledRankRegretOptions eval_opts;
  eval_opts.num_functions = 2000;
  eval_opts.seed = 999;
  Result<int64_t> regret = eval::SampledRankRegret(ds, *rep, eval_opts);
  ASSERT_TRUE(regret.ok());
  EXPECT_LE(*regret, static_cast<int64_t>(2 * k));
}

TEST(MdrrrTest, GreedyAndEpsNetBothHit) {
  const data::Dataset ds = data::GenerateUniform(100, 2, 7);
  Result<KSetCollection> ksets = EnumerateKSets2D(ds, 5);
  ASSERT_TRUE(ksets.ok());
  MdrrrOptions greedy;
  greedy.strategy = HittingStrategy::kGreedy;
  MdrrrOptions epsnet;
  epsnet.strategy = HittingStrategy::kEpsNet;
  Result<std::vector<int32_t>> a = SolveMdrrr(ds, *ksets, greedy);
  Result<std::vector<int32_t>> b = SolveMdrrr(ds, *ksets, epsnet);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const hitting::SetSystem sys = ksets->ToSetSystem();
  EXPECT_TRUE(sys.IsHit(*a));
  EXPECT_TRUE(sys.IsHit(*b));
}

TEST(MdrrrTest, SolveMdrrrSampledEndToEnd) {
  const data::Dataset ds = data::GenerateDotLike(150, 8).ProjectPrefix(3);
  Result<std::vector<int32_t>> rep = SolveMdrrrSampled(ds, 5);
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(rep->empty());
  EXPECT_LT(rep->size(), ds.size() / 2);
}

}  // namespace
}  // namespace core
}  // namespace rrr
