// Audit of the library-wide tie-break contract (topk/scoring.h): higher
// score first, exact score ties broken by lower tuple id. Every component
// that orders tuples — the top-k scans, the 2D angular sweep, the k-set
// enumerations — must agree on this order, or duplicate-score tuples get
// different ranks in different components and the solvers' certificates
// stop composing. These tests pin the contract on duplicate-heavy data.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/kset_enum2d.h"
#include "core/kset_graph.h"
#include "core/mdrc.h"
#include "core/rrr2d.h"
#include "core/sweep.h"
#include "geometry/angles.h"
#include "data/generators.h"
#include "eval/rank_regret.h"
#include "topk/scoring.h"
#include "topk/topk.h"
#include "test_util.h"

namespace rrr {
namespace core {
namespace {

/// Duplicate-heavy 2D dataset: exact coordinate duplicates (ids 0/1, 2/3,
/// 8), same-score-at-45-degrees pairs (4/5), an x-tie with distinct y
/// (9 vs 0/1, score tie at theta = 0) and a y-tie with distinct x (10 vs 7,
/// score tie at theta = pi/2).
data::Dataset DuplicateHeavy2D() {
  return testing::MakeDataset({{0.8, 0.2},
                               {0.8, 0.2},
                               {0.5, 0.5},
                               {0.5, 0.5},
                               {0.7, 0.3},
                               {0.3, 0.7},
                               {0.9, 0.1},
                               {0.1, 0.9},
                               {0.5, 0.5},
                               {0.8, 0.6},
                               {0.15, 0.9}});
}

TEST(TieBreakTest, OutranksIsAStrictWeakOrdering) {
  // Exhaustive check over a duplicate-rich score/id set: irreflexivity,
  // asymmetry, transitivity, and transitivity of equivalence.
  struct Item {
    double score;
    int32_t id;
  };
  std::vector<Item> items;
  int32_t next_id = 0;
  for (double s : {0.0, 0.25, 0.25, 0.5, 0.5, 0.5, 1.0}) {
    items.push_back({s, next_id++});
  }
  auto lt = [](const Item& a, const Item& b) {
    return topk::Outranks(a.score, a.id, b.score, b.id);
  };
  for (const Item& a : items) {
    EXPECT_FALSE(lt(a, a)) << "irreflexivity";
    for (const Item& b : items) {
      if (lt(a, b)) {
        EXPECT_FALSE(lt(b, a)) << "asymmetry";
      }
      for (const Item& c : items) {
        if (lt(a, b) && lt(b, c)) {
          EXPECT_TRUE(lt(a, c)) << "transitivity";
        }
        // Equivalence (neither outranks) must also be transitive.
        const bool ab_equiv = !lt(a, b) && !lt(b, a);
        const bool bc_equiv = !lt(b, c) && !lt(c, b);
        if (ab_equiv && bc_equiv) {
          EXPECT_TRUE(!lt(a, c) && !lt(c, a)) << "equivalence transitivity";
        }
      }
    }
  }
  // The tie-break makes the order total: distinct items never tie.
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t j = i + 1; j < items.size(); ++j) {
      EXPECT_TRUE(lt(items[i], items[j]) || lt(items[j], items[i]));
    }
  }
}

TEST(TieBreakTest, ExactDuplicatesKeepIdOrderThroughTheSweep) {
  // Exact coordinate duplicates tie under every function; the documented
  // order (lower id first) must hold in the sweep's initial order and be
  // preserved across every exchange (duplicates never swap).
  const data::Dataset ds = DuplicateHeavy2D();
  AngularSweep sweep(ds);
  const std::vector<int32_t>& order = sweep.InitialOrder();
  auto pos = [&](int32_t id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));  // duplicates (0.8, 0.2)
  EXPECT_LT(pos(2), pos(3));  // duplicates (0.5, 0.5)
  EXPECT_LT(pos(3), pos(8));  // triple duplicate: 2 < 3 < 8
  sweep.Run([&](const SweepEvent& ev) {
    // No exchange may ever involve an exact-duplicate pair.
    const double* a = ds.row(static_cast<size_t>(ev.item_down));
    const double* b = ds.row(static_cast<size_t>(ev.item_up));
    EXPECT_FALSE(a[0] == b[0] && a[1] == b[1])
        << "duplicates " << ev.item_down << "/" << ev.item_up << " swapped";
    return true;
  });
}

TEST(TieBreakTest, SweepOrderMatchesTopKOrderBetweenEvents) {
  // Between consecutive exchange angles the sweep's full order must equal
  // the sort the top-k scan produces — including all duplicate ties. Checks
  // the midpoint of every event gap (and both endpoints' limits).
  const data::Dataset ds = DuplicateHeavy2D();
  const size_t n = ds.size();
  AngularSweep sweep(ds);
  std::vector<double> event_angles{0.0};
  sweep.Run([&](const SweepEvent& ev) {
    event_angles.push_back(ev.angle);
    return true;
  });
  event_angles.push_back(geometry::kHalfPi);
  std::vector<int32_t> current = sweep.InitialOrder();
  size_t next_event = 1;  // index into event_angles of the next exchange
  // Re-run, checking the order against TopK at each gap midpoint.
  sweep.Run([&](const SweepEvent& ev) {
    const double prev = event_angles[next_event - 1];
    const double mid = 0.5 * (prev + ev.angle);
    // Check only midpoints of gaps that are comfortably wide: inside a
    // cluster of numerically-coincident crossings the exact tie-break at
    // the crossing itself is ambiguous (same guard as sweep_test).
    if (mid - prev > 1e-9 && ev.angle - mid > 1e-9) {
      EXPECT_EQ(testing::TopKAtAngle(ds, mid, n), current)
          << "midpoint " << mid;
    }
    // Apply the exchange to the tracked order.
    auto it = std::find(current.begin(), current.end(), ev.item_down);
    EXPECT_NE(it, current.end());
    EXPECT_NE(it + 1, current.end());
    EXPECT_EQ(*(it + 1), ev.item_up);
    std::iter_swap(it, it + 1);
    ++next_event;
    return true;
  });
  // Last gap: up to pi/2. Skipped when the final events sit at exactly
  // pi/2 (endpoint id-tie exchanges model the exact weight vector (0, 1),
  // which a cos/sin-parameterized probe cannot reach: cos(pi/2) != 0 in
  // floating point).
  const double mid =
      0.5 * (event_angles[next_event - 1] + geometry::kHalfPi);
  if (mid - event_angles[next_event - 1] > 1e-9 &&
      geometry::kHalfPi - mid > 1e-9) {
    EXPECT_EQ(testing::TopKAtAngle(ds, mid, n), current);
  }
}

TEST(TieBreakTest, Enum2DContainsEverySampledKSetOnDuplicateData) {
  // Sweep-enumerated k-sets and scan-computed k-sets must agree on
  // duplicate-heavy data; a tie-break mismatch would make some sampled
  // top-k set miss from the enumeration.
  const data::Dataset ds = DuplicateHeavy2D();
  for (size_t k : {1u, 2u, 3u, 4u}) {
    Result<KSetCollection> enumerated = EnumerateKSets2D(ds, k);
    ASSERT_TRUE(enumerated.ok());
    for (double theta : testing::AngleGrid(257)) {
      KSet probe;
      probe.ids = topk::TopKSet(
          ds, topk::LinearFunction::FromAngles({theta}), k);
      EXPECT_TRUE(enumerated->Contains(probe))
          << "k=" << k << " theta=" << theta;
    }
  }
}

TEST(TieBreakTest, MdrcHandlesDuplicateHeavyDataConsistently) {
  // MDRC's corner evaluations go through the same TopKSet; on duplicate
  // data its output must still satisfy the d*k bound under the exact 2D
  // evaluator (which orders via the sweep — the other side of the
  // contract).
  const data::Dataset ds = DuplicateHeavy2D();
  for (size_t k : {2u, 3u}) {
    MdrcStats stats;
    Result<std::vector<int32_t>> rep = SolveMdrc(ds, k, {}, &stats);
    ASSERT_TRUE(rep.ok());
    Result<int64_t> regret = eval::ExactRankRegret2D(ds, *rep);
    ASSERT_TRUE(regret.ok());
    EXPECT_LE(*regret, static_cast<int64_t>(2 * k));
  }
}

TEST(TieBreakTest, ThetaZeroEndpointUsesTheIdTieBreak) {
  // Two tuples tied on x: under the endpoint function w = (1, 0) their
  // scores tie exactly, so the global tie-break (lower id) decides. The
  // sweep must start in that order and fire an angle-0 exchange to restore
  // the y-descending order for every theta > 0.
  const data::Dataset ds = testing::MakeDataset({{0.5, 0.2}, {0.5, 0.8}});
  EXPECT_EQ(topk::TopK(ds, topk::LinearFunction({1.0, 0.0}), 2),
            (std::vector<int32_t>{0, 1}));
  AngularSweep sweep(ds);
  EXPECT_EQ(sweep.InitialOrder(), (std::vector<int32_t>{0, 1}));
  std::vector<SweepEvent> events;
  sweep.Run([&](const SweepEvent& ev) {
    events.push_back(ev);
    return true;
  });
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].angle, 0.0);
  EXPECT_EQ(events[0].item_up, 1);
  // Regression: the exact evaluator must see rank 2 for {1} at theta = 0
  // (it used to report 1, silently using the theta -> 0+ limit order at
  // the closed endpoint).
  EXPECT_EQ(*eval::ExactRankRegret2D(ds, {1}), 2);
  EXPECT_EQ(*eval::ExactRankRegret2D(ds, {0}), 2);  // rank 2 for theta > 0
}

TEST(TieBreakTest, ThetaHalfPiEndpointUsesTheIdTieBreak) {
  // Two tuples tied on y: under w = (0, 1) the lower id wins, so the sweep
  // must exchange them at exactly pi/2.
  const data::Dataset ds = testing::MakeDataset({{0.2, 0.5}, {0.8, 0.5}});
  EXPECT_EQ(topk::TopK(ds, topk::LinearFunction({0.0, 1.0}), 2),
            (std::vector<int32_t>{0, 1}));
  AngularSweep sweep(ds);
  EXPECT_EQ(sweep.InitialOrder(), (std::vector<int32_t>{1, 0}));
  std::vector<SweepEvent> events;
  sweep.Run([&](const SweepEvent& ev) {
    events.push_back(ev);
    return true;
  });
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].angle, geometry::kHalfPi);
  EXPECT_EQ(events[0].item_up, 0);
  // Regression: {1} is rank 1 for every theta < pi/2 but rank 2 at the
  // endpoint; the evaluator used to miss the endpoint and report 1.
  EXPECT_EQ(*eval::ExactRankRegret2D(ds, {1}), 2);
  EXPECT_EQ(*eval::ExactRankRegret2D(ds, {0}), 2);
}

TEST(TieBreakTest, EndpointKSetsAreEnumerated) {
  // The k-sets of the endpoint functions (exact weight vectors) must be in
  // the sweep-based enumeration on tie-heavy data.
  const data::Dataset ds = DuplicateHeavy2D();
  for (size_t k : {1u, 2u, 3u}) {
    Result<KSetCollection> sets = EnumerateKSets2D(ds, k);
    ASSERT_TRUE(sets.ok());
    for (const auto& weights :
         {std::vector<double>{1.0, 0.0}, std::vector<double>{0.0, 1.0}}) {
      KSet probe;
      probe.ids = topk::TopKSet(ds, topk::LinearFunction(weights), k);
      EXPECT_TRUE(sets->Contains(probe)) << "k=" << k;
    }
  }
}

TEST(TieBreakTest, TwoDrrrCoversTheEndpointFunctions) {
  // 2DRRR's interval cover works in limit semantics; the endpoint
  // functions (1,0) and (0,1) rank ties by id, so on tie data the solver
  // must add endpoint coverage or its own exact evaluator rejects the
  // output (regret 2 for k = 1 on both of these).
  const data::Dataset xtie = testing::MakeDataset({{0.5, 0.1}, {0.5, 0.9}});
  Result<std::vector<int32_t>> rep = Solve2dRrr(xtie, 1);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(*rep, (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(*eval::ExactRankRegret2D(xtie, *rep), 1);

  const data::Dataset ytie = testing::MakeDataset({{0.2, 0.5}, {0.8, 0.5}});
  rep = Solve2dRrr(ytie, 1);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(*rep, (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(*eval::ExactRankRegret2D(ytie, *rep), 1);

  // Duplicate-heavy data: the cover must satisfy its k under the exact
  // evaluator (which includes both endpoints).
  const data::Dataset ds = DuplicateHeavy2D();
  for (size_t k : {1u, 2u, 3u}) {
    Result<std::vector<int32_t>> cover = Solve2dRrr(ds, k);
    ASSERT_TRUE(cover.ok());
    EXPECT_LE(*eval::ExactRankRegret2D(ds, *cover),
              static_cast<int64_t>(k))
        << "k=" << k;
  }
}

TEST(TieBreakTest, TieCascadesDoNotLeakPhantomOrders) {
  // Eight tuples all tied on x: exactly two realizable rankings exist
  // (theta = 0: id order; theta > 0: y order). The angle-0 exchange
  // cascade that reorders the block must not leak its intermediate
  // bubble-sort states into consumers — the regret of {0, 7} is
  // max(rank 1 at theta = 0, rank 2 for theta > 0) = 2, and an evaluator
  // observing mid-cascade orders would report up to 7.
  const data::Dataset ds = testing::MakeDataset(
      {{0.5, 0.1},
       {0.5, 0.9},
       {0.5, 0.8},
       {0.5, 0.7},
       {0.5, 0.6},
       {0.5, 0.5},
       {0.5, 0.4},
       {0.5, 0.85}});
  EXPECT_EQ(*eval::ExactRankRegret2D(ds, {0, 7}), 2);
  EXPECT_EQ(*eval::ExactRankRegret2D(ds, {0}), 8);  // bottom for theta > 0
  EXPECT_EQ(*eval::ExactRankRegret2D(ds, {1}), 2);  // top for theta > 0

  // Exactly two k-sets exist for every k < n (one per realizable order,
  // and they may coincide); mid-cascade phantom k-sets must not appear.
  for (size_t k : {1u, 2u, 3u}) {
    Result<KSetCollection> sets = EnumerateKSets2D(ds, k);
    ASSERT_TRUE(sets.ok());
    EXPECT_LE(sets->size(), 2u) << "k=" << k;
    KSet endpoint;
    endpoint.ids = topk::TopKSet(ds, topk::LinearFunction({1.0, 0.0}), k);
    EXPECT_TRUE(sets->Contains(endpoint));
    KSet interior;
    interior.ids = topk::TopKSet(
        ds, topk::LinearFunction::FromAngles({0.3}), k);
    EXPECT_TRUE(sets->Contains(interior));
  }

  // The settled flag itself: every angle-0 event except the last is
  // unsettled, and the final maintained order is the y-descending one.
  AngularSweep sweep(ds);
  size_t unsettled = 0;
  size_t settled = 0;
  sweep.Run([&](const SweepEvent& ev) {
    EXPECT_EQ(ev.angle, 0.0);
    if (ev.settled) {
      ++settled;
    } else {
      ++unsettled;
    }
    return true;
  });
  EXPECT_EQ(settled, 1u);
  EXPECT_GT(unsettled, 0u);
}

TEST(TieBreakTest, DuplicateBandsProduceIdenticalRanksEverywhere) {
  // A dataset that is *only* duplicates: two bands of identical points.
  // Every component must rank band members purely by id.
  const data::Dataset ds = testing::MakeDataset(
      {{0.6, 0.6}, {0.2, 0.2}, {0.6, 0.6}, {0.2, 0.2}, {0.6, 0.6}});
  // TopK: high band by id, then low band by id.
  EXPECT_EQ(testing::TopKAtAngle(ds, 0.3, 5),
            (std::vector<int32_t>{0, 2, 4, 1, 3}));
  // Sweep initial order agrees, and no exchange ever fires.
  AngularSweep sweep(ds);
  EXPECT_EQ(sweep.InitialOrder(), (std::vector<int32_t>{0, 2, 4, 1, 3}));
  EXPECT_EQ(sweep.Run([](const SweepEvent&) { return true; }), 0u);
  // Exactly one k-set per k (the order never changes).
  for (size_t k : {1u, 2u, 3u}) {
    Result<KSetCollection> sets = EnumerateKSets2D(ds, k);
    ASSERT_TRUE(sets.ok());
    EXPECT_EQ(sets->size(), 1u) << "k=" << k;
  }
  // The exact evaluator sees rank 1 for {0} and rank 2 for {2} alone.
  EXPECT_EQ(*eval::ExactRankRegret2D(ds, {0}), 1);
  EXPECT_EQ(*eval::ExactRankRegret2D(ds, {2}), 2);
}

}  // namespace
}  // namespace core
}  // namespace rrr
