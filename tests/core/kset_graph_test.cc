#include "core/kset_graph.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/kset_enum2d.h"
#include "data/generators.h"
#include "lp/separation.h"
#include "test_util.h"
#include "topk/topk.h"

namespace rrr {
namespace core {
namespace {

std::vector<std::vector<int32_t>> SortedSets(const KSetCollection& c) {
  std::vector<std::vector<int32_t>> out;
  for (const auto& s : c.sets()) out.push_back(s.ids);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(KSetGraphTest, RejectsBadArguments) {
  data::Dataset ds = data::GenerateUniform(10, 2, 1);
  EXPECT_FALSE(EnumerateKSetsGraph(ds, 0).ok());
  EXPECT_FALSE(EnumerateKSetsGraph(ds, 10).ok());  // k >= n
  EXPECT_FALSE(EnumerateKSetsGraph(ds, 15).ok());
  data::Dataset empty;
  EXPECT_FALSE(EnumerateKSetsGraph(empty, 1).ok());
}

TEST(KSetGraphTest, PaperExampleTwoSets) {
  data::Dataset ds = testing::PaperFigure1Dataset();
  Result<KSetCollection> ksets = EnumerateKSetsGraph(ds, 2);
  ASSERT_TRUE(ksets.ok());
  EXPECT_EQ(SortedSets(*ksets),
            (std::vector<std::vector<int32_t>>{{0, 6}, {2, 4}, {2, 6}}));
}

class KSetGraphVs2DTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KSetGraphVs2DTest, MatchesSweepEnumerationIn2D) {
  // Two totally different algorithms (LP-validated BFS vs angular sweep)
  // must produce identical collections.
  const auto [seed, n, k] = GetParam();
  const data::Dataset ds = data::GenerateUniform(
      static_cast<size_t>(n), 2, static_cast<uint64_t>(seed));
  Result<KSetCollection> graph =
      EnumerateKSetsGraph(ds, static_cast<size_t>(k));
  Result<KSetCollection> sweep =
      EnumerateKSets2D(ds, static_cast<size_t>(k));
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(SortedSets(*graph), SortedSets(*sweep));
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, KSetGraphVs2DTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(8, 14, 22),
                       ::testing::Values(1, 2, 4)));

TEST(KSetGraphTest, ThreeDSampledTopKSetsAreEnumerated) {
  // Lemma 5 in 3D: random functions' top-k sets must all be in the exact
  // enumeration.
  const data::Dataset ds = data::GenerateUniform(16, 3, 4);
  const size_t k = 3;
  Result<KSetCollection> ksets = EnumerateKSetsGraph(ds, k);
  ASSERT_TRUE(ksets.ok());
  Rng rng(5);
  for (int rep = 0; rep < 400; ++rep) {
    KSet observed;
    observed.ids = topk::TopKSet(
        ds, topk::LinearFunction(rng.UnitWeightVector(3)), k);
    EXPECT_TRUE(ksets->Contains(observed));
  }
}

TEST(KSetGraphTest, MaxKSetsBudgetIsEnforced) {
  const data::Dataset ds = data::GenerateAnticorrelated(30, 2, 6);
  KSetGraphOptions opts;
  opts.max_ksets = 2;
  Result<KSetCollection> ksets = EnumerateKSetsGraph(ds, 3, opts);
  EXPECT_FALSE(ksets.ok());
  EXPECT_EQ(ksets.status().code(), StatusCode::kResourceExhausted);
}

TEST(KSetGraphTest, MatchesBruteForceSubsetEnumeration) {
  // Ground truth by definition: test every C(n, k) subset with the
  // separation LP and compare collections. n and k kept tiny on purpose.
  const data::Dataset ds = data::GenerateUniform(9, 3, 7);
  const size_t k = 2;
  Result<KSetCollection> graph = EnumerateKSetsGraph(ds, k);
  ASSERT_TRUE(graph.ok());

  std::vector<std::vector<int32_t>> brute;
  for (int32_t a = 0; a < static_cast<int32_t>(ds.size()); ++a) {
    for (int32_t b = a + 1; b < static_cast<int32_t>(ds.size()); ++b) {
      Result<lp::SeparationResult> sep = lp::FindSeparatingWeights(
          ds.flat(), ds.size(), ds.dims(), {a, b});
      ASSERT_TRUE(sep.ok());
      if (sep->separable) brute.push_back({a, b});
    }
  }
  std::sort(brute.begin(), brute.end());
  EXPECT_EQ(SortedSets(*graph), brute);
}

TEST(KSetGraphTest, CollectionSizeRespectsKnownCounts) {
  // A square with an interior point, k = 1: the three corner points facing
  // the positive orthant are the only 1-sets.
  data::Dataset ds = testing::MakeDataset(
      {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {0.5, 0.5}});
  Result<KSetCollection> ksets = EnumerateKSetsGraph(ds, 1);
  ASSERT_TRUE(ksets.ok());
  EXPECT_EQ(SortedSets(*ksets),
            (std::vector<std::vector<int32_t>>{{3}}));
}

}  // namespace
}  // namespace core
}  // namespace rrr
