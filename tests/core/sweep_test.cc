#include "core/sweep.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "test_util.h"
#include "topk/scoring.h"
#include "topk/topk.h"

namespace rrr {
namespace core {
namespace {

TEST(ExchangeAngleTest, KnownCrossing) {
  // a = (1, 0), b = (0, 1): equal scores at theta = pi/4.
  const double a[2] = {1.0, 0.0};
  const double b[2] = {0.0, 1.0};
  EXPECT_NEAR(AngularSweep::ExchangeAngle(a, b), M_PI / 4, 1e-15);
}

TEST(ExchangeAngleTest, DominatedPairNeverSwaps) {
  const double a[2] = {0.9, 0.9};
  const double b[2] = {0.5, 0.5};
  EXPECT_LT(AngularSweep::ExchangeAngle(a, b), 0.0);
}

TEST(ExchangeAngleTest, EqualXNeverSwaps) {
  const double a[2] = {0.5, 0.8};
  const double b[2] = {0.5, 0.2};
  EXPECT_LT(AngularSweep::ExchangeAngle(a, b), 0.0);
}

TEST(ExchangeAngleTest, AngleIsWhereScoresCross) {
  const double a[2] = {0.8, 0.2};
  const double b[2] = {0.3, 0.9};
  const double theta = AngularSweep::ExchangeAngle(a, b);
  ASSERT_GT(theta, 0.0);
  const double sa = a[0] * std::cos(theta) + a[1] * std::sin(theta);
  const double sb = b[0] * std::cos(theta) + b[1] * std::sin(theta);
  EXPECT_NEAR(sa, sb, 1e-12);
}

TEST(AngularSweepTest, InitialOrderIsXThenYDescending) {
  data::Dataset ds = testing::MakeDataset(
      {{0.5, 0.9}, {0.8, 0.1}, {0.5, 0.2}, {0.9, 0.4}});
  AngularSweep sweep(ds);
  EXPECT_EQ(sweep.InitialOrder(), (std::vector<int32_t>{3, 1, 0, 2}));
}

TEST(AngularSweepTest, PaperExampleEventCountAndFinalOrder) {
  data::Dataset ds = testing::PaperFigure1Dataset();
  AngularSweep sweep(ds);
  std::vector<int32_t> order = sweep.InitialOrder();
  // Start: ranking by x (t7, t1, t3, t2, t5, t4, t6).
  EXPECT_EQ(order, (std::vector<int32_t>{6, 0, 2, 1, 4, 3, 5}));
  sweep.Run([&](const SweepEvent& ev) {
    std::swap(order[ev.upper_position - 1], order[ev.upper_position]);
    EXPECT_EQ(order[ev.upper_position - 1], ev.item_up);
    EXPECT_EQ(order[ev.upper_position], ev.item_down);
    return true;
  });
  // End: ranking by y: t5(.72), t3(.6), t6(.52), t2(.45), t7(.43),
  // t4(.42), t1(.28).
  EXPECT_EQ(order, (std::vector<int32_t>{4, 2, 5, 1, 6, 3, 0}));
}

TEST(AngularSweepTest, EventsAreMonotoneInAngle) {
  const data::Dataset ds = data::GenerateUniform(100, 2, 17);
  AngularSweep sweep(ds);
  double last = 0.0;
  sweep.Run([&](const SweepEvent& ev) {
    EXPECT_GE(ev.angle, last - 1e-12);
    last = std::max(last, ev.angle);
    EXPECT_LE(ev.angle, M_PI / 2 + 1e-12);
    return true;
  });
}

TEST(AngularSweepTest, EarlyStopHonored) {
  const data::Dataset ds = data::GenerateUniform(50, 2, 18);
  AngularSweep sweep(ds);
  size_t seen = 0;
  const size_t applied = sweep.Run([&](const SweepEvent&) {
    ++seen;
    return seen < 5;
  });
  EXPECT_EQ(seen, 5u);
  EXPECT_EQ(applied, 5u);
}

TEST(AngularSweepTest, TinyInputs) {
  data::Dataset one = testing::MakeDataset({{0.3, 0.7}});
  EXPECT_EQ(AngularSweep(one).Run([](const SweepEvent&) { return true; }),
            0u);
  data::Dataset dominated = testing::MakeDataset({{0.9, 0.9}, {0.1, 0.1}});
  EXPECT_EQ(
      AngularSweep(dominated).Run([](const SweepEvent&) { return true; }),
      0u);
  data::Dataset crossing = testing::MakeDataset({{0.9, 0.1}, {0.1, 0.9}});
  EXPECT_EQ(
      AngularSweep(crossing).Run([](const SweepEvent&) { return true; }),
      1u);
}

TEST(AngularSweepTest, DuplicatePointsNeverSwap) {
  data::Dataset ds =
      testing::MakeDataset({{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}});
  EXPECT_EQ(AngularSweep(ds).Run([](const SweepEvent&) { return true; }), 0u);
}

class SweepReplayTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SweepReplayTest, ReplayMatchesDirectSortAtSampledAngles) {
  // The fundamental sweep property: applying all exchanges with angle <=
  // theta to the initial order reproduces the ranking at theta.
  const auto [seed, n] = GetParam();
  const data::Dataset ds = data::GenerateUniform(
      static_cast<size_t>(n), 2, static_cast<uint64_t>(seed));
  AngularSweep sweep(ds);

  std::vector<SweepEvent> events;
  sweep.Run([&](const SweepEvent& ev) {
    events.push_back(ev);
    return true;
  });

  std::vector<int32_t> order = sweep.InitialOrder();
  size_t applied = 0;
  for (double theta : testing::AngleGrid(60)) {
    while (applied < events.size() && events[applied].angle <= theta) {
      const auto& ev = events[applied];
      std::swap(order[ev.upper_position - 1], order[ev.upper_position]);
      ++applied;
    }
    // Compare against a direct sort, skipping angles too close to an event
    // (where the exact tie-break at the crossing is ambiguous).
    const bool near_event =
        (applied < events.size() &&
         std::fabs(events[applied].angle - theta) < 1e-9) ||
        (applied > 0 && std::fabs(events[applied - 1].angle - theta) < 1e-9);
    if (near_event) continue;
    const std::vector<int32_t> direct =
        testing::TopKAtAngle(ds, theta, ds.size());
    EXPECT_EQ(order, direct) << "theta=" << theta;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, SweepReplayTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(8, 40, 150)));

}  // namespace
}  // namespace core
}  // namespace rrr
