#include "geometry/hyperplane.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/random.h"

namespace rrr {
namespace geometry {
namespace {

TEST(HyperplaneTest, EvalSignsMatchSides) {
  const Hyperplane h{{1.0, 1.0}, 1.0};  // x + y = 1
  EXPECT_GT(h.Eval({1.0, 1.0}), 0.0);
  EXPECT_LT(h.Eval({0.0, 0.0}), 0.0);
  EXPECT_NEAR(h.Eval({0.5, 0.5}), 0.0, 1e-15);
}

TEST(HyperplaneTest, DualOfPaperEquationTwo) {
  const Hyperplane d = DualOf({0.8, 0.28});
  EXPECT_EQ(d.normal, (Vec{0.8, 0.28}));
  EXPECT_DOUBLE_EQ(d.offset, 1.0);
  // The dual hyperplane passes through (1/t1, 0) and (0, 1/t2).
  EXPECT_NEAR(d.Eval({1.0 / 0.8, 0.0}), 0.0, 1e-15);
  EXPECT_NEAR(d.Eval({0.0, 1.0 / 0.28}), 0.0, 1e-12);
}

TEST(HyperplaneTest, RayIntersectionOrdersLikeScores) {
  // In the dual, intersections closer to the origin mean better rank
  // (Section 3): the parameter must be 1 / score.
  Rng rng(31);
  for (int rep = 0; rep < 50; ++rep) {
    const Vec t = {rng.Uniform(0.1, 1.0), rng.Uniform(0.1, 1.0)};
    const Vec w = rng.UnitWeightVector(2);
    const double score = t[0] * w[0] + t[1] * w[1];
    const double param = RayIntersectionParam(DualOf(t), w);
    EXPECT_NEAR(param, 1.0 / score, 1e-12);
  }
}

TEST(HyperplaneTest, ParallelRayGivesInfinity) {
  const Hyperplane d = DualOf({1.0, 0.0});
  EXPECT_TRUE(std::isinf(RayIntersectionParam(d, {0.0, 1.0})));
}

TEST(HyperplaneTest, DualOrderingEqualsScoreOrdering) {
  // For random items and a random function, ordering by ray-intersection
  // parameter (ascending) equals ordering by score (descending).
  Rng rng(32);
  const size_t n = 20;
  std::vector<Vec> items;
  for (size_t i = 0; i < n; ++i) {
    items.push_back({rng.Uniform(0.1, 1.0), rng.Uniform(0.1, 1.0),
                     rng.Uniform(0.1, 1.0)});
  }
  const Vec w = rng.UnitWeightVector(3);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double si = Dot(items[i], w);
      const double sj = Dot(items[j], w);
      const double pi = RayIntersectionParam(DualOf(items[i]), w);
      const double pj = RayIntersectionParam(DualOf(items[j]), w);
      EXPECT_EQ(si > sj, pi < pj);
    }
  }
}

}  // namespace
}  // namespace geometry
}  // namespace rrr
