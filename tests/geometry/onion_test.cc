#include "geometry/onion.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "geometry/convex_hull.h"
#include "test_util.h"
#include "topk/scoring.h"
#include "topk/topk.h"

namespace rrr {
namespace geometry {
namespace {

TEST(OnionLayersTest, EveryPointInExactlyOneLayer) {
  const data::Dataset ds = data::GenerateUniform(60, 3, 1);
  Result<std::vector<std::vector<int32_t>>> layers =
      OnionLayers(ds.flat(), ds.size(), ds.dims());
  ASSERT_TRUE(layers.ok());
  std::vector<int32_t> all;
  for (const auto& layer : *layers) {
    EXPECT_FALSE(layer.empty());
    all.insert(all.end(), layer.begin(), layer.end());
  }
  std::sort(all.begin(), all.end());
  std::vector<int32_t> expected(ds.size());
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(all, expected);
}

TEST(OnionLayersTest, LayerZeroIsTheConvexMaxima) {
  const data::Dataset ds = data::GenerateUniform(40, 2, 2);
  Result<std::vector<std::vector<int32_t>>> layers =
      OnionLayers(ds.flat(), ds.size(), ds.dims());
  Result<std::vector<int32_t>> maxima =
      ConvexMaxima(ds.flat(), ds.size(), ds.dims());
  ASSERT_TRUE(layers.ok());
  ASSERT_TRUE(maxima.ok());
  std::vector<int32_t> layer0 = (*layers)[0];
  std::sort(layer0.begin(), layer0.end());
  EXPECT_EQ(layer0, *maxima);
}

TEST(OnionLayersTest, PaperExampleLayers) {
  data::Dataset ds = testing::PaperFigure1Dataset();
  Result<std::vector<std::vector<int32_t>>> layers =
      OnionLayers(ds.flat(), ds.size(), ds.dims());
  ASSERT_TRUE(layers.ok());
  // Layer 0 = {t3, t5, t7} (the order-1 representative).
  std::vector<int32_t> layer0 = (*layers)[0];
  std::sort(layer0.begin(), layer0.end());
  EXPECT_EQ(layer0, (std::vector<int32_t>{2, 4, 6}));
}

class OnionCoverTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(OnionCoverTest, TopKIsWithinFirstKLayers) {
  // The onion-index property: for every sampled non-negative function, the
  // top-k lies in the union of the first k layers.
  const auto [seed, d] = GetParam();
  const data::Dataset ds = data::GenerateUniform(
      50, static_cast<size_t>(d), static_cast<uint64_t>(seed));
  Rng rng(static_cast<uint64_t>(seed) + 7);
  for (size_t k : {1u, 2u, 4u}) {
    Result<std::vector<int32_t>> cover =
        FirstKOnionLayers(ds.flat(), ds.size(), ds.dims(), k);
    ASSERT_TRUE(cover.ok());
    for (int rep = 0; rep < 60; ++rep) {
      topk::LinearFunction f(rng.UnitWeightVector(d));
      for (int32_t id : topk::TopK(ds, f, k)) {
        EXPECT_TRUE(std::binary_search(cover->begin(), cover->end(), id))
            << "top-" << k << " member " << id << " outside first " << k
            << " layers";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInputs, OnionCoverTest,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(2, 3, 4)));

TEST(OnionLayersTest, DuplicateHeavyDataStillTerminates) {
  data::Dataset ds = testing::MakeDataset(
      {{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}, {0.9, 0.9}});
  Result<std::vector<std::vector<int32_t>>> layers =
      OnionLayers(ds.flat(), ds.size(), ds.dims());
  ASSERT_TRUE(layers.ok());
  size_t total = 0;
  for (const auto& layer : *layers) total += layer.size();
  EXPECT_EQ(total, 4u);
}

TEST(OnionLayersTest, EmptyInput) {
  Result<std::vector<std::vector<int32_t>>> layers = OnionLayers(nullptr, 0, 2);
  ASSERT_TRUE(layers.ok());
  EXPECT_TRUE(layers->empty());
}

TEST(FirstKOnionLayersTest, IsMuchBiggerThanRrrOptimum) {
  // The onion cover is correct but bulky — the reason the paper's
  // algorithms exist. Compare sizes on the paper example.
  data::Dataset ds = testing::PaperFigure1Dataset();
  Result<std::vector<int32_t>> onion =
      FirstKOnionLayers(ds.flat(), ds.size(), 2, 2);
  ASSERT_TRUE(onion.ok());
  EXPECT_GE(onion->size(), 4u);  // layers 0+1
  EXPECT_EQ(testing::BruteForceOptimalRrrSize2D(ds, 2), 2);
}

TEST(FirstKOnionLayersTest, RejectsKZero) {
  data::Dataset ds = testing::PaperFigure1Dataset();
  EXPECT_FALSE(FirstKOnionLayers(ds.flat(), ds.size(), 2, 0).ok());
}

}  // namespace
}  // namespace geometry
}  // namespace rrr
