#include "geometry/convex_hull.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "test_util.h"
#include "topk/scoring.h"
#include "topk/topk.h"

namespace rrr {
namespace geometry {
namespace {

TEST(ConvexHull2DTest, Square) {
  // Four corners plus an interior point.
  const std::vector<double> rows = {0, 0, 1, 0, 1, 1, 0, 1, 0.5, 0.5};
  std::vector<int32_t> hull = ConvexHull2D(rows.data(), 5);
  std::sort(hull.begin(), hull.end());
  EXPECT_EQ(hull, (std::vector<int32_t>{0, 1, 2, 3}));
}

TEST(ConvexHull2DTest, CollinearPointsKeepExtremes) {
  const std::vector<double> rows = {0, 0, 1, 1, 2, 2, 3, 3};
  std::vector<int32_t> hull = ConvexHull2D(rows.data(), 4);
  std::sort(hull.begin(), hull.end());
  EXPECT_EQ(hull, (std::vector<int32_t>{0, 3}));
}

TEST(ConvexHull2DTest, DegenerateSizes) {
  const std::vector<double> one = {0.5, 0.5};
  EXPECT_EQ(ConvexHull2D(one.data(), 1), (std::vector<int32_t>{0}));
  const std::vector<double> dup = {0.5, 0.5, 0.5, 0.5};
  EXPECT_EQ(ConvexHull2D(dup.data(), 2), (std::vector<int32_t>{0}));
  EXPECT_TRUE(ConvexHull2D(nullptr, 0).empty());
}

TEST(ConvexHull2DTest, AllInputPointsInsideHull) {
  Rng rng(41);
  std::vector<double> rows;
  const size_t n = 60;
  for (size_t i = 0; i < 2 * n; ++i) rows.push_back(rng.Uniform());
  const std::vector<int32_t> hull = ConvexHull2D(rows.data(), n);
  ASSERT_GE(hull.size(), 3u);
  // Every point must be on or inside the CCW hull polygon.
  for (size_t p = 0; p < n; ++p) {
    for (size_t e = 0; e < hull.size(); ++e) {
      const int32_t a = hull[e];
      const int32_t b = hull[(e + 1) % hull.size()];
      const double cross =
          (rows[2 * b] - rows[2 * a]) * (rows[2 * p + 1] - rows[2 * a + 1]) -
          (rows[2 * b + 1] - rows[2 * a + 1]) * (rows[2 * p] - rows[2 * a]);
      EXPECT_GE(cross, -1e-12) << "point " << p << " outside edge " << e;
    }
  }
}

TEST(ConvexMaximaTest, PaperExampleMatchesOneSets) {
  // Section 5.1: each point of the convex hull (facing the positive
  // orthant) is a 1-set. For Figure 1 the order-1 representative is
  // {t7, t3, t5} plus t1 (vertex between t7 and t3 on the upper-right
  // chain): verify against brute force over sampled functions.
  data::Dataset ds = testing::PaperFigure1Dataset();
  Result<std::vector<int32_t>> maxima =
      ConvexMaxima(ds.flat(), ds.size(), ds.dims());
  ASSERT_TRUE(maxima.ok());
  // Brute force: which items are top-1 for some sampled function?
  std::vector<char> seen(ds.size(), 0);
  for (double theta : testing::AngleGrid(2000)) {
    seen[static_cast<size_t>(testing::TopKAtAngle(ds, theta, 1)[0])] = 1;
  }
  std::vector<int32_t> expected;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (seen[i]) expected.push_back(static_cast<int32_t>(i));
  }
  EXPECT_EQ(*maxima, expected);
}

TEST(ConvexMaximaTest, EveryMaximaItemWinsSomewhereIn3D) {
  const data::Dataset ds = data::GenerateUniform(40, 3, 43);
  Result<std::vector<int32_t>> maxima =
      ConvexMaxima(ds.flat(), ds.size(), ds.dims());
  ASSERT_TRUE(maxima.ok());
  EXPECT_FALSE(maxima->empty());
  // Cross-check: every top-1 of a sampled function is in the maxima set.
  Rng rng(44);
  for (int rep = 0; rep < 300; ++rep) {
    topk::LinearFunction f(rng.UnitWeightVector(3));
    const int32_t winner = topk::TopK(ds, f, 1)[0];
    EXPECT_TRUE(std::binary_search(maxima->begin(), maxima->end(), winner));
  }
}

TEST(ConvexMaximaTest, TrivialSizes) {
  const std::vector<double> one = {0.5, 0.5};
  Result<std::vector<int32_t>> m = ConvexMaxima(one.data(), 1, 2);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, (std::vector<int32_t>{0}));
  EXPECT_TRUE(ConvexMaxima(one.data(), 0, 2)->empty());
  EXPECT_FALSE(ConvexMaxima(nullptr, 3, 2).ok());
}

}  // namespace
}  // namespace geometry
}  // namespace rrr
