#include "geometry/dominance.h"

#include <algorithm>
#include <utility>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"

namespace rrr {
namespace geometry {
namespace {

TEST(DominatesTest, StrictAndNonStrictCases) {
  const double a[2] = {0.5, 0.5};
  const double b[2] = {0.4, 0.5};
  const double c[2] = {0.5, 0.5};
  const double d[2] = {0.6, 0.4};
  EXPECT_TRUE(Dominates(a, b, 2));
  EXPECT_FALSE(Dominates(b, a, 2));
  EXPECT_FALSE(Dominates(a, c, 2));  // equal: no strict coordinate
  EXPECT_FALSE(Dominates(a, d, 2));  // incomparable
  EXPECT_FALSE(Dominates(d, a, 2));
}

TEST(SkylineTest, SimpleStaircase) {
  // (.9,.1), (.5,.5), (.1,.9) are mutually incomparable; (.4,.4) dominated.
  const std::vector<double> rows = {0.9, 0.1, 0.5, 0.5, 0.1, 0.9, 0.4, 0.4};
  EXPECT_EQ(Skyline(rows.data(), 4, 2), (std::vector<int32_t>{0, 1, 2}));
}

TEST(SkylineTest, SinglePointAndEmpty) {
  const std::vector<double> rows = {0.3, 0.7};
  EXPECT_EQ(Skyline(rows.data(), 1, 2), (std::vector<int32_t>{0}));
  EXPECT_TRUE(Skyline(nullptr, 0, 2).empty());
}

TEST(SkylineTest, DuplicatesKeepLowestIndex) {
  const std::vector<double> rows = {0.5, 0.5, 0.5, 0.5, 0.2, 0.2};
  EXPECT_EQ(Skyline(rows.data(), 3, 2), (std::vector<int32_t>{0}));
}

TEST(SkylineTest, TotalOrderChainKeepsOnlyMaximum) {
  const std::vector<double> rows = {0.1, 0.1, 0.2, 0.2, 0.3, 0.3, 0.9, 0.9};
  EXPECT_EQ(Skyline(rows.data(), 4, 2), (std::vector<int32_t>{3}));
}

class SkylineOracleTest : public ::testing::TestWithParam<
                              std::tuple<int, int, int>> {};

TEST_P(SkylineOracleTest, MatchesQuadraticOracle) {
  const auto [seed, n, d] = GetParam();
  const data::Dataset ds = data::GenerateUniform(
      static_cast<size_t>(n), static_cast<size_t>(d),
      static_cast<uint64_t>(seed));
  const std::vector<int32_t> sky = Skyline(ds.flat(), ds.size(), ds.dims());

  // Oracle: i survives iff nothing dominates it and no equal row precedes.
  std::vector<int32_t> expected;
  for (size_t i = 0; i < ds.size(); ++i) {
    bool out = false;
    for (size_t j = 0; j < ds.size() && !out; ++j) {
      if (i == j) continue;
      if (Dominates(ds.row(j), ds.row(i), ds.dims())) out = true;
      if (!out && j < i &&
          std::equal(ds.row(j), ds.row(j) + ds.dims(), ds.row(i))) {
        out = true;
      }
    }
    if (!out) expected.push_back(static_cast<int32_t>(i));
  }
  EXPECT_EQ(sky, expected) << "seed=" << seed << " n=" << n << " d=" << d;
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, SkylineOracleTest,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(20, 100),
                       ::testing::Values(2, 3, 5)));

TEST(KSkybandTest, KOneEqualsSkyline) {
  const data::Dataset ds = data::GenerateUniform(150, 3, 11);
  EXPECT_EQ(KSkyband(ds.flat(), ds.size(), ds.dims(), 1),
            Skyline(ds.flat(), ds.size(), ds.dims()));
}

TEST(KSkybandTest, GrowsMonotonicallyWithK) {
  const data::Dataset ds = data::GenerateUniform(200, 2, 12);
  size_t prev = 0;
  for (size_t k : {1u, 2u, 4u, 8u, 16u}) {
    const size_t size = KSkyband(ds.flat(), ds.size(), ds.dims(), k).size();
    EXPECT_GE(size, prev);
    prev = size;
  }
  // k >= n: nothing can have k dominators.
  EXPECT_EQ(KSkyband(ds.flat(), ds.size(), ds.dims(), ds.size()).size(),
            ds.size());
}

TEST(KSkybandTest, ContainsEveryTopKMemberOfSampledFunctions) {
  // Soundness of the prefilter: anything in some top-k is in the skyband.
  const data::Dataset ds = data::GenerateUniform(120, 3, 13);
  const size_t k = 5;
  const std::vector<int32_t> band =
      KSkyband(ds.flat(), ds.size(), ds.dims(), k);
  Rng rng(14);
  for (int rep = 0; rep < 200; ++rep) {
    // Inline top-k by full sort to avoid a topk-module dependency here.
    std::vector<double> w = rng.UnitWeightVector(3);
    std::vector<std::pair<double, int32_t>> scored;
    for (size_t i = 0; i < ds.size(); ++i) {
      double s = 0.0;
      for (size_t j = 0; j < 3; ++j) s += w[j] * ds.at(i, j);
      scored.push_back({-s, static_cast<int32_t>(i)});
    }
    std::sort(scored.begin(), scored.end());
    for (size_t pos = 0; pos < k; ++pos) {
      EXPECT_TRUE(std::binary_search(band.begin(), band.end(),
                                     scored[pos].second))
          << "top-" << k << " member escaped the " << k << "-skyband";
    }
  }
}

TEST(KSkybandTest, DuplicatesCountAsDominators) {
  const std::vector<double> rows = {0.5, 0.5, 0.5, 0.5, 0.5, 0.5};
  // k = 1: only the first copy survives; k = 3: all three.
  EXPECT_EQ(KSkyband(rows.data(), 3, 2, 1), (std::vector<int32_t>{0}));
  EXPECT_EQ(KSkyband(rows.data(), 3, 2, 2), (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(KSkyband(rows.data(), 3, 2, 3),
            (std::vector<int32_t>{0, 1, 2}));
}

TEST(SkylineTest, AnticorrelatedHasLargeSkylineCorrelatedSmall) {
  const size_t n = 400;
  const auto anti = data::GenerateAnticorrelated(n, 2, 9);
  const auto corr = data::GenerateCorrelated(n, 2, 9, 0.95);
  const size_t anti_size = Skyline(anti.flat(), n, 2).size();
  const size_t corr_size = Skyline(corr.flat(), n, 2).size();
  EXPECT_GT(anti_size, corr_size * 2);
}

}  // namespace
}  // namespace geometry
}  // namespace rrr
