#include "geometry/angles.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "geometry/vec.h"

namespace rrr {
namespace geometry {
namespace {

TEST(AnglesTest, ZeroAnglesGiveFirstAxis) {
  EXPECT_TRUE(ApproxEqual(AnglesToWeights({0.0, 0.0}), {1.0, 0.0, 0.0}));
}

TEST(AnglesTest, AllHalfPiGivesLastAxis) {
  const Vec w = AnglesToWeights({kHalfPi, kHalfPi});
  EXPECT_NEAR(w[0], 0.0, 1e-15);
  EXPECT_NEAR(w[1], 0.0, 1e-15);
  EXPECT_NEAR(w[2], 1.0, 1e-15);
}

TEST(AnglesTest, TwoDMatchesPaperSweepAngle) {
  // d = 2: w = (cos theta, sin theta), the sweep parameterization of §4.
  for (double theta : {0.0, 0.3, kHalfPi / 2, 1.2, kHalfPi}) {
    const Vec w = AnglesToWeights({theta});
    EXPECT_NEAR(w[0], std::cos(theta), 1e-15);
    EXPECT_NEAR(w[1], std::sin(theta), 1e-15);
  }
}

TEST(AnglesTest, WeightsAreUnitAndNonNegative) {
  Rng rng(21);
  for (int dims = 2; dims <= 7; ++dims) {
    for (int rep = 0; rep < 40; ++rep) {
      Vec angles(static_cast<size_t>(dims - 1));
      for (double& a : angles) a = rng.Uniform(0.0, kHalfPi);
      const Vec w = AnglesToWeights(angles);
      ASSERT_EQ(w.size(), static_cast<size_t>(dims));
      double norm2 = 0.0;
      for (double wi : w) {
        EXPECT_GE(wi, 0.0);
        norm2 += wi * wi;
      }
      EXPECT_NEAR(norm2, 1.0, 1e-12);
    }
  }
}

TEST(AnglesTest, RoundTripAnglesToWeightsToAngles) {
  Rng rng(22);
  for (int dims = 2; dims <= 6; ++dims) {
    for (int rep = 0; rep < 40; ++rep) {
      Vec angles(static_cast<size_t>(dims - 1));
      // Stay off the poles so angles are uniquely recoverable.
      for (double& a : angles) a = rng.Uniform(0.05, kHalfPi - 0.05);
      Result<Vec> back = WeightsToAngles(AnglesToWeights(angles));
      ASSERT_TRUE(back.ok());
      ASSERT_EQ(back->size(), angles.size());
      for (size_t i = 0; i < angles.size(); ++i) {
        EXPECT_NEAR((*back)[i], angles[i], 1e-9);
      }
    }
  }
}

TEST(AnglesTest, RoundTripWeightsToAnglesToWeights) {
  Rng rng(23);
  for (int dims = 2; dims <= 6; ++dims) {
    for (int rep = 0; rep < 40; ++rep) {
      const Vec w = rng.UnitWeightVector(dims);
      Result<Vec> angles = WeightsToAngles(w);
      ASSERT_TRUE(angles.ok());
      const Vec w2 = AnglesToWeights(*angles);
      for (size_t i = 0; i < w.size(); ++i) EXPECT_NEAR(w2[i], w[i], 1e-9);
    }
  }
}

TEST(AnglesTest, UnnormalizedInputIsNormalized) {
  Result<Vec> angles = WeightsToAngles({3.0, 4.0});
  ASSERT_TRUE(angles.ok());
  const Vec w = AnglesToWeights(*angles);
  EXPECT_NEAR(w[0], 0.6, 1e-12);
  EXPECT_NEAR(w[1], 0.8, 1e-12);
}

TEST(AnglesTest, ZeroSuffixGetsCanonicalZeroAngles) {
  // (0, 1, 0): trailing zero makes the last angle ambiguous; the canonical
  // inverse must still map back to the same weights.
  Result<Vec> angles = WeightsToAngles({0.0, 1.0, 0.0});
  ASSERT_TRUE(angles.ok());
  const Vec w = AnglesToWeights(*angles);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[1], 1.0, 1e-12);
  EXPECT_NEAR(w[2], 0.0, 1e-12);
}

TEST(AnglesTest, RejectsInvalidWeightVectors) {
  EXPECT_FALSE(WeightsToAngles({}).ok());
  EXPECT_FALSE(WeightsToAngles({0.0, 0.0}).ok());
  EXPECT_FALSE(WeightsToAngles({0.5, -0.1}).ok());
}

TEST(AnglesTest, SingleDimensionHasNoAngles) {
  Result<Vec> angles = WeightsToAngles({2.0});
  ASSERT_TRUE(angles.ok());
  EXPECT_TRUE(angles->empty());
  EXPECT_TRUE(ApproxEqual(AnglesToWeights({}), {1.0}));
}

}  // namespace
}  // namespace geometry
}  // namespace rrr
