#include "geometry/vec.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rrr {
namespace geometry {
namespace {

TEST(VecTest, DotBasic) {
  EXPECT_DOUBLE_EQ(Dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(VecTest, DotAgainstRawRow) {
  const double row[3] = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot({1.0, 2.0, 3.0}, row, 3), 32.0);
}

TEST(VecTest, L2NormOfPythagoreanTriple) {
  EXPECT_DOUBLE_EQ(L2Norm({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(L2Norm({0.0, 0.0}), 0.0);
}

TEST(VecTest, NormalizedHasUnitNorm) {
  const Vec v = Normalized({3.0, 4.0});
  EXPECT_DOUBLE_EQ(v[0], 0.6);
  EXPECT_DOUBLE_EQ(v[1], 0.8);
  EXPECT_NEAR(L2Norm(v), 1.0, 1e-15);
}

TEST(VecTest, AddSubScale) {
  EXPECT_EQ(Add({1.0, 2.0}, {3.0, 4.0}), (Vec{4.0, 6.0}));
  EXPECT_EQ(Sub({3.0, 4.0}, {1.0, 2.0}), (Vec{2.0, 2.0}));
  EXPECT_EQ(Scale({1.0, -2.0}, 3.0), (Vec{3.0, -6.0}));
}

TEST(VecTest, ApproxEqualRespectsTolerance) {
  EXPECT_TRUE(ApproxEqual({1.0, 2.0}, {1.0 + 1e-13, 2.0}, 1e-12));
  EXPECT_FALSE(ApproxEqual({1.0, 2.0}, {1.0 + 1e-11, 2.0}, 1e-12));
  EXPECT_FALSE(ApproxEqual({1.0}, {1.0, 2.0}));
}

TEST(VecDeathTest, DotSizeMismatchAborts) {
  EXPECT_DEATH({ (void)Dot(Vec{1.0}, Vec{1.0, 2.0}); }, "size mismatch");
}

TEST(VecDeathTest, NormalizedZeroVectorAborts) {
  EXPECT_DEATH({ (void)Normalized({0.0, 0.0}); }, "zero vector");
}

}  // namespace
}  // namespace geometry
}  // namespace rrr
