#include "eval/regret_ratio.h"

#include <numeric>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "test_util.h"

namespace rrr {
namespace eval {
namespace {

TEST(RegretRatioTest, FullDatasetHasZeroRegret) {
  const data::Dataset ds = data::GenerateUniform(40, 3, 1);
  std::vector<int32_t> all(ds.size());
  std::iota(all.begin(), all.end(), 0);
  Result<double> ratio = SampledRegretRatio(ds, all);
  ASSERT_TRUE(ratio.ok());
  EXPECT_DOUBLE_EQ(*ratio, 0.0);
}

TEST(RegretRatioTest, DominatingSingletonHasZeroRegret) {
  data::Dataset ds = testing::MakeDataset(
      {{0.9, 0.9}, {0.2, 0.3}, {0.4, 0.1}});
  Result<double> ratio = SampledRegretRatio(ds, {0});
  ASSERT_TRUE(ratio.ok());
  EXPECT_DOUBLE_EQ(*ratio, 0.0);
}

TEST(RegretRatioTest, WeakSingletonHasLargeRegret) {
  data::Dataset ds = testing::MakeDataset(
      {{1.0, 1.0}, {0.1, 0.1}});
  Result<double> ratio = SampledRegretRatio(ds, {1});
  ASSERT_TRUE(ratio.ok());
  EXPECT_NEAR(*ratio, 0.9, 1e-9);  // (s0 - s1)/s0 = 0.9 for every function
}

TEST(RegretRatioTest, RatioIsInUnitInterval) {
  const data::Dataset ds = data::GenerateUniform(100, 4, 2);
  Result<double> ratio = SampledRegretRatio(ds, {0, 1, 2});
  ASSERT_TRUE(ratio.ok());
  EXPECT_GE(*ratio, 0.0);
  EXPECT_LE(*ratio, 1.0);
}

TEST(RegretRatioTest, SupersetNeverHasLargerRegret) {
  const data::Dataset ds = data::GenerateUniform(80, 3, 3);
  RegretRatioOptions opts;
  opts.num_functions = 1000;
  Result<double> small = SampledRegretRatio(ds, {5}, opts);
  Result<double> large = SampledRegretRatio(ds, {5, 17, 33, 60}, opts);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LE(*large, *small);
}

TEST(RegretRatioTest, DeterministicUnderSeed) {
  const data::Dataset ds = data::GenerateUniform(60, 3, 4);
  Result<double> a = SampledRegretRatio(ds, {1, 2, 3});
  Result<double> b = SampledRegretRatio(ds, {1, 2, 3});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(*a, *b);
}

TEST(RegretRatioTest, RejectsBadArguments) {
  const data::Dataset ds = data::GenerateUniform(10, 2, 5);
  EXPECT_FALSE(SampledRegretRatio(ds, {}).ok());
  EXPECT_FALSE(SampledRegretRatio(ds, {11}).ok());
  data::Dataset empty;
  EXPECT_FALSE(SampledRegretRatio(empty, {0}).ok());
}

}  // namespace
}  // namespace eval
}  // namespace rrr
