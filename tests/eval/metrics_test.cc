#include "eval/metrics.h"

#include <numeric>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "eval/rank_regret.h"
#include "eval/regret_ratio.h"
#include "test_util.h"

namespace rrr {
namespace eval {
namespace {

TEST(EvaluateTest, FullDatasetIsPerfect) {
  const data::Dataset ds = data::GenerateUniform(30, 3, 1);
  std::vector<int32_t> all(ds.size());
  std::iota(all.begin(), all.end(), 0);
  Result<EvaluationReport> report = Evaluate(ds, all);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->size, 30u);
  EXPECT_EQ(report->rank_regret, 1);
  EXPECT_DOUBLE_EQ(report->mean_rank, 1.0);
  EXPECT_DOUBLE_EQ(report->regret_ratio, 0.0);
  EXPECT_DOUBLE_EQ(report->topk_hit_rate, 1.0);
}

TEST(EvaluateTest, MatchesStandaloneEvaluators) {
  // Same seed and function count as the standalone estimators: the report
  // must agree with both.
  const data::Dataset ds = data::GenerateUniform(80, 3, 2);
  const std::vector<int32_t> subset = {5, 40, 77};
  EvaluateOptions opts;
  opts.num_functions = 800;
  opts.seed = 99;
  Result<EvaluationReport> report = Evaluate(ds, subset, opts);
  ASSERT_TRUE(report.ok());

  SampledRankRegretOptions rank_opts;
  rank_opts.num_functions = 800;
  rank_opts.seed = 99;
  EXPECT_EQ(report->rank_regret, *SampledRankRegret(ds, subset, rank_opts));

  RegretRatioOptions ratio_opts;
  ratio_opts.num_functions = 800;
  ratio_opts.seed = 99;
  EXPECT_DOUBLE_EQ(report->regret_ratio,
                   *SampledRegretRatio(ds, subset, ratio_opts));
}

TEST(EvaluateTest, HitRateReflectsK) {
  const data::Dataset ds = data::GenerateUniform(100, 2, 3);
  const std::vector<int32_t> subset = {10, 60};
  EvaluateOptions strict;
  strict.k = 1;
  EvaluateOptions loose;
  loose.k = 100;
  Result<EvaluationReport> a = Evaluate(ds, subset, strict);
  Result<EvaluationReport> b = Evaluate(ds, subset, loose);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(a->topk_hit_rate, b->topk_hit_rate);
  EXPECT_DOUBLE_EQ(b->topk_hit_rate, 1.0);  // k = n always hits
}

TEST(EvaluateTest, MeanNeverExceedsMax) {
  const data::Dataset ds = data::GenerateUniform(70, 4, 4);
  Result<EvaluationReport> report = Evaluate(ds, {1, 2, 3});
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->mean_rank,
            static_cast<double>(report->rank_regret));
  EXPECT_GE(report->mean_rank, 1.0);
}

TEST(EvaluateTest, ToStringHasAllFields) {
  EvaluationReport r;
  r.size = 5;
  r.rank_regret = 12;
  r.mean_rank = 3.1;
  r.regret_ratio = 0.08;
  r.topk_hit_rate = 0.97;
  const std::string s = ToString(r);
  EXPECT_NE(s.find("size=5"), std::string::npos);
  EXPECT_NE(s.find("rank_regret=12"), std::string::npos);
  EXPECT_NE(s.find("hit_rate=0.970"), std::string::npos);
}

TEST(EvaluateTest, RejectsBadArguments) {
  const data::Dataset ds = data::GenerateUniform(10, 2, 5);
  EXPECT_FALSE(Evaluate(ds, {}).ok());
  EXPECT_FALSE(Evaluate(ds, {55}).ok());
  EvaluateOptions opts;
  opts.k = 0;
  EXPECT_FALSE(Evaluate(ds, {0}, opts).ok());
  opts.k = 1;
  opts.num_functions = 0;
  EXPECT_FALSE(Evaluate(ds, {0}, opts).ok());
}

}  // namespace
}  // namespace eval
}  // namespace rrr
