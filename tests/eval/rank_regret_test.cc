#include "eval/rank_regret.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "test_util.h"
#include "topk/rank.h"
#include "topk/scoring.h"

namespace rrr {
namespace eval {
namespace {

TEST(ExactRankRegret2DTest, RejectsBadArguments) {
  const data::Dataset ds3 = data::GenerateUniform(10, 3, 1);
  EXPECT_FALSE(ExactRankRegret2D(ds3, {0}).ok());
  const data::Dataset ds = data::GenerateUniform(10, 2, 1);
  EXPECT_FALSE(ExactRankRegret2D(ds, {}).ok());
  EXPECT_FALSE(ExactRankRegret2D(ds, {100}).ok());
  EXPECT_FALSE(ExactRankRegret2D(ds, {-1}).ok());
}

TEST(ExactRankRegret2DTest, FullDatasetHasRegretOne) {
  const data::Dataset ds = data::GenerateUniform(40, 2, 2);
  std::vector<int32_t> all(ds.size());
  std::iota(all.begin(), all.end(), 0);
  Result<int64_t> regret = ExactRankRegret2D(ds, all);
  ASSERT_TRUE(regret.ok());
  EXPECT_EQ(*regret, 1);
}

TEST(ExactRankRegret2DTest, DominatingSingletonHasRegretOne) {
  data::Dataset ds = testing::MakeDataset(
      {{0.9, 0.9}, {0.1, 0.2}, {0.3, 0.1}});
  Result<int64_t> regret = ExactRankRegret2D(ds, {0});
  ASSERT_TRUE(regret.ok());
  EXPECT_EQ(*regret, 1);
}

TEST(ExactRankRegret2DTest, WorstSingletonHasRegretN) {
  // A point dominated by all others always ranks last.
  data::Dataset ds = testing::MakeDataset(
      {{0.9, 0.9}, {0.8, 0.7}, {0.1, 0.1}});
  Result<int64_t> regret = ExactRankRegret2D(ds, {2});
  ASSERT_TRUE(regret.ok());
  EXPECT_EQ(*regret, 3);
}

TEST(ExactRankRegret2DTest, PaperExampleKnownSubsets) {
  data::Dataset ds = testing::PaperFigure1Dataset();
  // {t7, t3}: t7 covers the x-heavy half, t3 the rest, never worse than 2.
  Result<int64_t> regret = ExactRankRegret2D(ds, {2, 6});
  ASSERT_TRUE(regret.ok());
  EXPECT_EQ(*regret, 2);
  // {t7} alone: at theta = pi/2 (f = x2), t7 ranks 5th.
  Result<int64_t> alone = ExactRankRegret2D(ds, {6});
  ASSERT_TRUE(alone.ok());
  EXPECT_EQ(*alone, 5);
}

class ExactVsGridTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExactVsGridTest, SweepMatchesDenseGridEvaluation) {
  const auto [seed, n] = GetParam();
  const data::Dataset ds = data::GenerateUniform(
      static_cast<size_t>(n), 2, static_cast<uint64_t>(seed) + 50);
  // A few fixed subsets of different sizes.
  const std::vector<std::vector<int32_t>> subsets = {
      {0},
      {0, static_cast<int32_t>(n / 2)},
      {1, static_cast<int32_t>(n / 3), static_cast<int32_t>(n - 1)}};
  for (const auto& subset : subsets) {
    Result<int64_t> exact = ExactRankRegret2D(ds, subset);
    ASSERT_TRUE(exact.ok());
    // Dense grid lower bound: exact must dominate every sampled angle and
    // be achieved near some angle.
    int64_t grid_worst = 1;
    for (double theta : testing::AngleGrid(4000)) {
      topk::LinearFunction f({std::cos(theta), std::sin(theta)});
      grid_worst =
          std::max(grid_worst, topk::MinRankOfSubset(ds, f, subset));
    }
    EXPECT_GE(*exact, grid_worst);
    // The grid is dense enough relative to event spacing for small n that
    // it should actually attain the exact value.
    EXPECT_EQ(*exact, grid_worst) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInputs, ExactVsGridTest,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(10, 25)));

TEST(SampledRankRegretTest, NeverExceedsExactIn2D) {
  const data::Dataset ds = data::GenerateUniform(60, 2, 3);
  const std::vector<int32_t> subset = {3, 30, 55};
  Result<int64_t> exact = ExactRankRegret2D(ds, subset);
  SampledRankRegretOptions opts;
  opts.num_functions = 3000;
  Result<int64_t> sampled = SampledRankRegret(ds, subset, opts);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(sampled.ok());
  EXPECT_LE(*sampled, *exact);
  EXPECT_GE(*sampled, 1);
}

TEST(SampledRankRegretTest, DeterministicUnderSeed) {
  const data::Dataset ds = data::GenerateUniform(50, 4, 4);
  SampledRankRegretOptions opts;
  opts.seed = 5;
  opts.num_functions = 500;
  Result<int64_t> a = SampledRankRegret(ds, {1, 2}, opts);
  Result<int64_t> b = SampledRankRegret(ds, {1, 2}, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SampledRankRegretTest, MoreFunctionsOnlyIncreaseTheBound) {
  const data::Dataset ds = data::GenerateUniform(100, 3, 5);
  const std::vector<int32_t> subset = {10, 20};
  SampledRankRegretOptions few;
  few.num_functions = 100;
  SampledRankRegretOptions many;
  many.num_functions = 5000;
  Result<int64_t> a = SampledRankRegret(ds, subset, few);
  Result<int64_t> b = SampledRankRegret(ds, subset, many);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(*a, *b);  // the 100 functions are a prefix of the 5000
}

TEST(ExactRankRegretWithinKTest, AgreesWithSweepEvaluatorIn2D) {
  const data::Dataset ds = data::GenerateUniform(16, 2, 31);
  for (size_t k : {1u, 2u, 4u}) {
    const std::vector<std::vector<int32_t>> subsets = {
        {0}, {2, 9}, {1, 7, 13}};
    for (const std::vector<int32_t>& subset : subsets) {
      Result<int64_t> exact = ExactRankRegret2D(ds, subset);
      Result<RankRegretCertificate> cert =
          ExactRankRegretWithinK(ds, subset, k);
      ASSERT_TRUE(exact.ok());
      ASSERT_TRUE(cert.ok());
      EXPECT_EQ(cert->within_k, *exact <= static_cast<int64_t>(k))
          << "k=" << k;
    }
  }
}

TEST(ExactRankRegretWithinKTest, WitnessActuallyFails) {
  const data::Dataset ds = data::GenerateUniform(14, 3, 32);
  // A deliberately bad subset: one middling item.
  const std::vector<int32_t> subset = {7};
  Result<RankRegretCertificate> cert = ExactRankRegretWithinK(ds, subset, 2);
  ASSERT_TRUE(cert.ok());
  if (!cert->within_k) {
    ASSERT_EQ(cert->witness_weights.size(), 3u);
    // The witness function's best subset rank must genuinely exceed k.
    EXPECT_GT(cert->witness_rank, 2);
    topk::LinearFunction f(cert->witness_weights);
    EXPECT_EQ(topk::MinRankOfSubset(ds, f, subset), cert->witness_rank);
  }
}

TEST(ExactRankRegretWithinKTest, FullSubsetAlwaysWithinK) {
  const data::Dataset ds = data::GenerateUniform(12, 3, 33);
  std::vector<int32_t> all(ds.size());
  std::iota(all.begin(), all.end(), 0);
  Result<RankRegretCertificate> cert = ExactRankRegretWithinK(ds, all, 1);
  ASSERT_TRUE(cert.ok());
  EXPECT_TRUE(cert->within_k);
}

TEST(ExactRankRegretWithinKTest, KGreaterEqualNIsTriviallyTrue) {
  const data::Dataset ds = data::GenerateUniform(8, 3, 34);
  Result<RankRegretCertificate> cert = ExactRankRegretWithinK(ds, {0}, 8);
  ASSERT_TRUE(cert.ok());
  EXPECT_TRUE(cert->within_k);
}

TEST(ExactRankRegretWithinKTest, CrossChecksSampledEstimator) {
  // If the sampled estimator reports regret > k, the exact certificate
  // must refute within-k too (the converse may not hold: sampling misses).
  const data::Dataset ds = data::GenerateUniform(15, 3, 35);
  const std::vector<int32_t> subset = {3, 11};
  const size_t k = 3;
  SampledRankRegretOptions opts;
  opts.num_functions = 3000;
  Result<int64_t> sampled = SampledRankRegret(ds, subset, opts);
  Result<RankRegretCertificate> cert =
      ExactRankRegretWithinK(ds, subset, k);
  ASSERT_TRUE(sampled.ok());
  ASSERT_TRUE(cert.ok());
  if (*sampled > static_cast<int64_t>(k)) {
    EXPECT_FALSE(cert->within_k);
  }
}

TEST(ExactRankRegretWithinKTest, RejectsBadArguments) {
  const data::Dataset ds = data::GenerateUniform(10, 3, 36);
  EXPECT_FALSE(ExactRankRegretWithinK(ds, {}, 2).ok());
  EXPECT_FALSE(ExactRankRegretWithinK(ds, {0}, 0).ok());
  EXPECT_FALSE(ExactRankRegretWithinK(ds, {77}, 2).ok());
}

TEST(SampledRankRegretTest, RejectsBadArguments) {
  const data::Dataset ds = data::GenerateUniform(10, 3, 6);
  EXPECT_FALSE(SampledRankRegret(ds, {}).ok());
  EXPECT_FALSE(SampledRankRegret(ds, {42}).ok());
  data::Dataset empty;
  EXPECT_FALSE(SampledRankRegret(empty, {0}).ok());
}

}  // namespace
}  // namespace eval
}  // namespace rrr
