// Pins every rrr_lint rule to its fixture: each violating snippet under
// tests/tools/fixtures/ must trip exactly its own rule (and the clean
// counterpart none), suppressions must be honored and counted, and the
// real tree must scan clean. The lint binary and fixture root arrive via
// compile definitions (RRR_LINT_BINARY / RRR_LINT_FIXTURES / RRR_LINT_REPO)
// so the test works from any build directory.

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

/// Runs the lint binary with `args`, capturing stdout+stderr.
LintRun RunLint(const std::string& args) {
  const std::string cmd =
      std::string(RRR_LINT_BINARY) + " " + args + " 2>&1";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buf;
  size_t got;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    run.output.append(buf.data(), got);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

/// Lints one fixture file (path relative to the fixture root).
LintRun LintFixture(const std::string& rel_path) {
  return RunLint("--root=" + std::string(RRR_LINT_FIXTURES) + " " +
                 rel_path);
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Asserts the run tripped `expected_rule` (>= 1 finding) and NO other
/// rule: every "[rule-id]" tag in violation lines must be the expected one.
void ExpectOnlyRule(const LintRun& run, const std::string& expected_rule,
                    size_t expected_count = 1) {
  EXPECT_EQ(run.exit_code, 1) << run.output;
  std::istringstream lines(run.output);
  std::string line;
  size_t findings = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("note:", 0) == 0) continue;     // suppression report
    if (line.rfind("rrr_lint:", 0) == 0) continue;  // summary
    const size_t open = line.find('[');
    const size_t close = line.find(']');
    ASSERT_NE(open, std::string::npos) << line;
    ASSERT_NE(close, std::string::npos) << line;
    EXPECT_EQ(line.substr(open + 1, close - open - 1), expected_rule)
        << run.output;
    ++findings;
  }
  EXPECT_EQ(findings, expected_count) << run.output;
}

void ExpectClean(const LintRun& run) {
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("0 violation(s)"), std::string::npos)
      << run.output;
}

TEST(RrrLintFixtures, ScoringLoopTripsOnHandRolledFold) {
  ExpectOnlyRule(LintFixture("src/core/scoring_loop_bad.cc"),
                 "scoring-loop");
}

TEST(RrrLintFixtures, ScoringLoopCleanCounterpart) {
  ExpectClean(LintFixture("src/core/scoring_loop_clean.cc"));
}

TEST(RrrLintFixtures, ScoringLoopTripsOnHandRolledBlockBound) {
  ExpectOnlyRule(LintFixture("src/topk/block_bound_fold_bad.cc"),
                 "scoring-loop");
}

TEST(RrrLintFixtures, ScoringLoopIgnoresSkipAwareKernelConsumers) {
  ExpectClean(LintFixture("src/topk/block_skip_clean.cc"));
}

TEST(RrrLintFixtures, FpContractTripsOnStdFma) {
  ExpectOnlyRule(LintFixture("src/topk/fp_contract_bad.cc"), "fp-contract");
}

TEST(RrrLintFixtures, FpContractTripsOnPragma) {
  ExpectOnlyRule(LintFixture("src/topk/fp_contract_pragma_bad.cc"),
                 "fp-contract");
}

TEST(RrrLintFixtures, FpContractTripsOnBuildFlagButNotInComments) {
  // The fixture has the same flag twice: once commented (stripped before
  // matching) and once live — exactly one finding proves both halves.
  ExpectOnlyRule(LintFixture("CMakeLists_contract_bad.cmake"),
                 "fp-contract");
}

TEST(RrrLintFixtures, PreemptionGateTripsOnLongUngatedLoop) {
  ExpectOnlyRule(LintFixture("src/core/gate_missing_bad.cc"),
                 "missing-preemption-gate");
}

TEST(RrrLintFixtures, PreemptionGateCleanWhenGatePumped) {
  ExpectClean(LintFixture("src/core/gate_present_clean.cc"));
}

TEST(RrrLintFixtures, PreemptionGateTripsOnServiceAcceptLoop) {
  // src/service/ loops are covered too: a long-lived accept loop with no
  // shutdown signal would make RrrServer::Stop hang forever.
  ExpectOnlyRule(LintFixture("src/service/accept_loop_bad.cc"),
                 "missing-preemption-gate");
}

TEST(RrrLintFixtures, PreemptionGateCleanWhenServiceLoopChecksShutdown) {
  // A shutdown-flag check counts as a gate for service loops (they exit
  // via Stop(), not via a per-query ExecContext).
  ExpectClean(LintFixture("src/service/accept_loop_clean.cc"));
}

TEST(RrrLintFixtures, UnguardedSyncTripsOnAllThreeShapes) {
  // Raw std::mutex member, undocumented std::atomic member, and a Mutex
  // that guards nothing: three findings, all unguarded-sync.
  ExpectOnlyRule(LintFixture("src/common/unguarded_sync_bad.h"),
                 "unguarded-sync", 3);
}

TEST(RrrLintFixtures, UnguardedSyncCleanWhenAnnotated) {
  ExpectClean(LintFixture("src/common/guarded_sync_clean.h"));
}

TEST(RrrLintFixtures, MemoVersionKeyTripsOnVersionlessKey) {
  ExpectOnlyRule(LintFixture("src/core/engine_key_bad.h"),
                 "memo-version-key");
}

TEST(RrrLintFixtures, MemoVersionKeyCleanWithVersionMember) {
  ExpectClean(LintFixture("src/core/engine_key_clean.h"));
}

TEST(RrrLintFixtures, SwallowedStatusTripsOnDiscardedCalls) {
  // Two dropped values (a Status and a Result<int>), plus a void call and
  // the declarations themselves, which must NOT fire.
  ExpectOnlyRule(LintFixture("src/service/swallowed_status_bad.cc"),
                 "swallowed-status", 2);
}

TEST(RrrLintFixtures, SwallowedStatusCleanWhenHandledVoidedOrContinued) {
  ExpectClean(LintFixture("src/service/swallowed_status_clean.cc"));
}

TEST(RrrLintFixtures, DisableMarkerSuppressesAndIsCounted) {
  const LintRun run = LintFixture("src/core/suppressed_ok.cc");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("1 suppression(s)"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("note: src/core/suppressed_ok.cc"),
            std::string::npos)
      << run.output;
}

TEST(RrrLintFixtures, ReasonlessDisableMarkerIsItselfAViolation) {
  ExpectOnlyRule(LintFixture("src/core/suppressed_no_reason_bad.cc"),
                 "bad-suppression");
}

TEST(RrrLintFixtures, JsonReportCarriesCounts) {
  const std::string json_path =
      ::testing::TempDir() + "/rrr_lint_fixture.json";
  const LintRun run = RunLint("--root=" + std::string(RRR_LINT_FIXTURES) +
                              " --json=" + json_path +
                              " src/core/scoring_loop_bad.cc");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  std::ifstream in(json_path);
  ASSERT_TRUE(in.good()) << json_path;
  std::stringstream body;
  body << in.rdbuf();
  const std::string json = body.str();
  EXPECT_NE(json.find("\"rule\": \"scoring-loop\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"violations\": 1"), std::string::npos) << json;
  EXPECT_EQ(CountOccurrences(json, "\"file\": "), 1u) << json;
  std::remove(json_path.c_str());
}

/// The contract the CI lint job enforces, asserted here too so a plain
/// `ctest` run catches regressions first: the real tree lints clean.
TEST(RrrLintTree, RepositoryScansClean) {
  const LintRun run = RunLint("--root=" + std::string(RRR_LINT_REPO));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

}  // namespace
