// Fixture: the same accept/dispatch loop shape as accept_loop_bad.cc, but
// checking a shutdown flag every iteration — the pattern src/service/
// loops must follow so Stop() can end them. Must lint clean.

#include <atomic>
#include <cstddef>
#include <vector>

namespace fixture {

int PollSocket();
void HandleRequest(int fd);

// rrr-lockfree: sticky stop flag set once by the shutdown path
std::atomic<bool> stopping_{false};

void AcceptUntilStopped() {
  std::vector<int> backlog;
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) {
      return;
    }
    const int fd = PollSocket();
    if (fd < 0) {
      continue;
    }
    backlog.push_back(fd);
    if (backlog.size() < 4) {
      continue;
    }
    for (const int pending : backlog) {
      HandleRequest(pending);
    }
    backlog.clear();
    std::size_t histogram[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    histogram[static_cast<std::size_t>(fd) % 8] += 1;
    std::size_t total = 0;
    total += histogram[0];
    total += histogram[1];
    total += histogram[2];
    total += histogram[3];
    total += histogram[4];
    total += histogram[5];
    total += histogram[6];
    total += histogram[7];
    if (total == 0) {
      backlog.shrink_to_fit();
    }
    std::size_t widened = total;
    widened = widened + histogram[0] + 2;
    widened = widened + histogram[1] + 3;
    widened = widened + histogram[2] + 5;
    widened = widened + histogram[3] + 7;
    if (widened > 100) {
      backlog.reserve(widened);
    }
  }
}

}  // namespace fixture
