// Fixture: statement-initial calls that drop a Status/Result on the
// floor. Self-contained — the fallible names are harvested from the
// declarations below, the call sites swallow them. Expected: exactly two
// swallowed-status findings (Flush and Drain).

struct Status {
  bool ok() const { return true; }
};

template <typename T>
struct Result {
  T value;
  bool ok() const { return true; }
};

class Sink {
 public:
  Status Flush();
  Result<int> Drain();
  void Reset();
};

void Pump(Sink* sink) {
  sink->Flush();  // swallowed: Status dropped
  sink->Drain();  // swallowed: Result<int> dropped
  sink->Reset();  // void return: fine
}
