// Clean counterpart of swallowed_status_bad.cc: every Status/Result is
// examined, propagated, explicitly voided, or consumed by a continuation
// line (the statement-initial heuristic must not fire on any of these).

struct Status {
  bool ok() const { return true; }
};

template <typename T>
struct Result {
  T value;
  bool ok() const { return true; }
};

class Sink {
 public:
  Status Flush();
  Result<int> Drain();
};

Status Pump(Sink* sink) {
  Status flushed = sink->Flush();
  if (!flushed.ok()) return flushed;
  (void)sink->Drain();  // best-effort prefetch; a miss only costs latency
  Status copied =
      sink->Flush();  // continuation line: consumed by the init above
  return copied;
}
