// Fixture: a disable marker with no reason= clause. Must trip
// bad-suppression (the scoring-loop finding itself is suppressed, but a
// reasonless escape hatch is a violation in its own right).
#include <cstddef>

namespace rrr {
namespace core {

double UnjustifiedFold(const double* w, const double* row, size_t d) {
  double s = 0.0;
  for (size_t j = 0; j < d; ++j) {
    // rrr-lint: disable(scoring-loop)
    s += w[j] * row[j];
  }
  return s;
}

}  // namespace core
}  // namespace rrr
