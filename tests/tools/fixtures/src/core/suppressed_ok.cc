// Fixture: a scoring-shaped fold carrying a well-formed disable marker.
// Must report zero violations and exactly one counted suppression.
#include <cstddef>

namespace rrr {
namespace core {

double JustifiedFold(const double* w, const double* row, size_t d) {
  double s = 0.0;
  for (size_t j = 0; j < d; ++j) {
    // rrr-lint: disable(scoring-loop) reason=fixture demonstrating the audited escape hatch
    s += w[j] * row[j];
  }
  return s;
}

}  // namespace core
}  // namespace rrr
