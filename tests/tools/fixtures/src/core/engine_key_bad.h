// Fixture: an engine memo key struct with no DatasetVersion member. Must
// trip memo-version-key and nothing else. The filename contains "engine"
// to land in the rule's scope.
#ifndef FIXTURE_ENGINE_KEY_BAD_H_
#define FIXTURE_ENGINE_KEY_BAD_H_

#include <cstddef>
#include <string>

namespace rrr {
namespace core {

struct StaleResultKey {
  std::string function_fingerprint;
  size_t k = 0;

  bool operator==(const StaleResultKey& other) const {
    return function_fingerprint == other.function_fingerprint &&
           k == other.k;
  }
};

}  // namespace core
}  // namespace rrr

#endif  // FIXTURE_ENGINE_KEY_BAD_H_
