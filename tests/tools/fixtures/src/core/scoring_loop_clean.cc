// Fixture: clean counterpart of scoring_loop_bad.cc — scoring routed
// through the kernel API, plus compound-adds that are NOT fold-shaped
// (no subscript adjacent to the multiply). Must trip no rule.
#include <cstddef>
#include <vector>

namespace rrr {
namespace core {

double KernelRoutedScore(const std::vector<double>& scores, size_t i) {
  // ScoreAll(blocks, f, &scores) would have filled `scores` upstream.
  return scores[i];
}

size_t StrideArithmetic(size_t i, size_t stride, size_t width) {
  size_t offset = 0;
  offset += i * stride;  // scalar * scalar: not a fold
  offset += width * 2;
  return offset;
}

}  // namespace core
}  // namespace rrr
