// Fixture: clean counterpart of gate_missing_bad.cc — the same long-loop
// shape, but pumping a PreemptionGate each round. Must trip no rule.
#include <cstddef>
#include <vector>

namespace rrr {
namespace core {

struct FakeStatus {
  bool ok = true;
};

struct FakeGate {
  FakeStatus Check() { return FakeStatus{}; }
};

size_t LongGatedLoop(std::vector<double>& cells, size_t rounds) {
  FakeGate gate;  // stands in for PreemptionGate gate(ctx);
  size_t work = 0;
  for (size_t r = 0; r < rounds; ++r) {
    const FakeStatus preempted = gate.Check();
    if (!preempted.ok) {
      break;
    }
    double acc = 0.0;
    for (size_t i = 0; i < cells.size(); ++i) {
      acc = acc + cells[i];
    }
    if (acc > 0.0) {
      for (size_t i = 0; i < cells.size(); ++i) {
        cells[i] = cells[i] / 2.0;
      }
    } else {
      for (size_t i = 0; i < cells.size(); ++i) {
        cells[i] = cells[i] * 2.0;
      }
    }
    double lo = 0.0;
    double hi = 0.0;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i] < lo) {
        lo = cells[i];
      }
      if (cells[i] > hi) {
        hi = cells[i];
      }
    }
    if (hi - lo < 1e-12) {
      break;
    }
    double mean = 0.0;
    for (size_t i = 0; i < cells.size(); ++i) {
      mean = mean + cells[i] / static_cast<double>(cells.size());
    }
    if (mean > hi) {
      work += 2;
    }
    work += cells.size() + 1;
  }
  return work;
}

}  // namespace core
}  // namespace rrr
