// Fixture: clean counterpart of engine_key_bad.h — the memo key carries
// the DatasetVersion it was computed against. Must trip no rule.
#ifndef FIXTURE_ENGINE_KEY_CLEAN_H_
#define FIXTURE_ENGINE_KEY_CLEAN_H_

#include <cstddef>
#include <string>

#include "common/version.h"

namespace rrr {
namespace core {

struct VersionedResultKey {
  DatasetVersion version;
  std::string function_fingerprint;
  size_t k = 0;

  bool operator==(const VersionedResultKey& other) const {
    return version == other.version &&
           function_fingerprint == other.function_fingerprint &&
           k == other.k;
  }
};

}  // namespace core
}  // namespace rrr

#endif  // FIXTURE_ENGINE_KEY_CLEAN_H_
