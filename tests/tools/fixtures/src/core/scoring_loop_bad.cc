// Fixture: a hand-rolled dot-product fold outside the audited allowlist.
// Must trip scoring-loop and nothing else.
#include <cstddef>

namespace rrr {
namespace core {

double HandRolledScore(const double* w, const double* row, size_t d) {
  double s = 0.0;
  for (size_t j = 0; j < d; ++j) {
    s += w[j] * row[j];
  }
  return s;
}

}  // namespace core
}  // namespace rrr
