// Fixture: a long compute loop in src/core with no preemption reference.
// Must trip missing-preemption-gate and nothing else.
#include <cstddef>
#include <vector>

namespace rrr {
namespace core {

size_t LongUngatedLoop(std::vector<double>& cells, size_t rounds) {
  size_t work = 0;
  for (size_t r = 0; r < rounds; ++r) {
    double acc = 0.0;
    for (size_t i = 0; i < cells.size(); ++i) {
      acc = acc + cells[i];
    }
    if (acc > 0.0) {
      for (size_t i = 0; i < cells.size(); ++i) {
        cells[i] = cells[i] / 2.0;
      }
    } else {
      for (size_t i = 0; i < cells.size(); ++i) {
        cells[i] = cells[i] * 2.0;
      }
    }
    double lo = 0.0;
    double hi = 0.0;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i] < lo) {
        lo = cells[i];
      }
      if (cells[i] > hi) {
        hi = cells[i];
      }
    }
    if (hi - lo < 1e-12) {
      break;
    }
    work += cells.size();
    cells.push_back(hi - lo);
    cells.push_back(lo - hi);
    if (cells.size() > rounds * 64) {
      cells.resize(rounds);
    }
    double mean = 0.0;
    for (size_t i = 0; i < cells.size(); ++i) {
      mean = mean + cells[i] / static_cast<double>(cells.size());
    }
    if (mean > hi) {
      work += 2;
    }
    work += 1;
  }
  return work;
}

}  // namespace core
}  // namespace rrr
