// Fixture: clean counterpart of unguarded_sync_bad.h — annotated Mutex
// guarding a member, and a justified lock-free atomic. Must trip no rule.
#ifndef FIXTURE_GUARDED_SYNC_CLEAN_H_
#define FIXTURE_GUARDED_SYNC_CLEAN_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace rrr {

class GoodSync {
 public:
  size_t hits() const { return hits_.load(std::memory_order_relaxed); }

 private:
  mutable Mutex mu_;
  std::vector<int> values_ RRR_GUARDED_BY(mu_);
  // rrr-lockfree: observability counter, single writer, relaxed reads
  std::atomic<size_t> hits_{0};
};

}  // namespace rrr

#endif  // FIXTURE_GUARDED_SYNC_CLEAN_H_
