// Fixture: all three unguarded-sync shapes — a raw std primitive, a Mutex
// member that guards nothing, and an undocumented std::atomic member.
// Must trip unguarded-sync (three findings) and nothing else. Scanned
// only, never compiled.
#ifndef FIXTURE_UNGUARDED_SYNC_BAD_H_
#define FIXTURE_UNGUARDED_SYNC_BAD_H_

#include <atomic>
#include <cstddef>
#include <mutex>

namespace rrr {

class BadSync {
 public:
  size_t count() const { return count_.load(); }

 private:
  std::mutex raw_mu_;
  std::atomic<size_t> count_{0};
};

class OrphanMutex {
 private:
  Mutex lonely_mu_;
  size_t value_ = 0;
};

}  // namespace rrr

#endif  // FIXTURE_UNGUARDED_SYNC_BAD_H_
