// Fixture: a hand-rolled block-upper-bound fold (`ub += w[j] * maxs[j]`)
// outside the audited kernel — the skip-safety proof covers only
// score_kernel.cc's BlockUpperBound, whose operation order mirrors the
// lane fold; a private copy can drift and silently skip live blocks.
// Must trip scoring-loop and nothing else.
#include <cstddef>

namespace rrr {
namespace topk {

double HandRolledBlockBound(const double* w, const double* maxs, size_t d) {
  double ub = 0.0;
  for (size_t j = 0; j < d; ++j) {
    ub += w[j] * maxs[j];
  }
  return ub;
}

}  // namespace topk
}  // namespace rrr
