// Fixture: clean counterpart of block_bound_fold_bad.cc — a skip-aware
// scan routed through the kernel's audited entry points (BlockUpperBound
// for the bound, TopKScan for the scan), with counter bookkeeping whose
// compound-adds are NOT fold-shaped. Must trip no rule.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rrr {
namespace topk {

struct ScanTally {
  uint64_t scanned = 0;
  uint64_t skipped = 0;
};

void FoldTally(ScanTally* total, const ScanTally& one) {
  // Counter accumulation: compound-adds without a subscripted product.
  total->scanned += one.scanned;
  total->skipped += one.skipped;
}

double SkipFraction(const ScanTally& tally) {
  const uint64_t blocks = tally.scanned + tally.skipped;
  if (blocks == 0) return 0.0;
  return static_cast<double>(tally.skipped) / static_cast<double>(blocks);
}

}  // namespace topk
}  // namespace rrr
