// Fixture: FP_CONTRACT pragma re-enabling contraction. Must trip
// fp-contract (pragma form) and nothing else.
#pragma STDC FP_CONTRACT ON

namespace rrr {
namespace topk {

double MulAdd(double a, double b, double c) { return a * b + c; }

}  // namespace topk
}  // namespace rrr
