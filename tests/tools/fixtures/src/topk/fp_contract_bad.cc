// Fixture: explicit fused multiply-add in library code. Must trip
// fp-contract and nothing else.
#include <cmath>

namespace rrr {
namespace topk {

double FusedScore(double w, double v, double acc) {
  return std::fma(w, v, acc);
}

}  // namespace topk
}  // namespace rrr
