# Fixture: a build file overriding the global contraction setting. Must
# trip fp-contract; the commented flag below must NOT (comments are
# stripped before matching).
# add_compile_options(-ffp-contract=fast)
add_compile_options(-ffp-contract=fast)
