#include "common/string_util.h"

#include <gtest/gtest.h>

namespace rrr {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoSeparatorYieldsWhole) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "yy", "zzz"};
  EXPECT_EQ(Split(Join(parts, ";"), ';'), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, StripsAllWhitespaceKinds) {
  EXPECT_EQ(Trim("  a b \t\r\n"), "a b");
  EXPECT_EQ(Trim("\t\n "), "");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim(""), "");
}

TEST(ParseDoubleTest, ParsesPlainAndScientific) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e-3").value(), -0.001);
  EXPECT_DOUBLE_EQ(ParseDouble("  42 ").value(), 42.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("3.2x").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("   ").ok());
  EXPECT_FALSE(ParseDouble("1.2 3.4").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, HandlesLongOutput) {
  const std::string long_str(500, 'a');
  EXPECT_EQ(StrFormat("%s", long_str.c_str()).size(), 500u);
}

}  // namespace
}  // namespace rrr
