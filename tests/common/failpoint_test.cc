// Contract tests for the fault-injection registry: the policy grammar,
// per-policy firing semantics (once self-disarms, every-N is periodic,
// prob is seeded-deterministic), the RRR_FAILPOINT macro's early-return
// behavior in Status- and Result-returning functions, and the zero-cost
// disabled fast path (AnyArmed flips back to false when nothing is armed).

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/timer.h"

namespace rrr {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

Status GuardedStatusOp() {
  RRR_FAILPOINT("test.op.status");
  return Status::OK();
}

Result<int> GuardedResultOp() {
  RRR_FAILPOINT("test.op.result");
  return 42;
}

TEST_F(FailpointTest, DisabledSitesAreInvisible) {
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
  EXPECT_TRUE(GuardedStatusOp().ok());
  Result<int> r = GuardedResultOp();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  // Unarmed evaluations never take the slow path, so nothing is recorded.
  EXPECT_TRUE(FailpointRegistry::Instance().List().empty());
}

TEST_F(FailpointTest, OnceFiresExactlyOnceThenSelfDisarms) {
  ASSERT_TRUE(
      FailpointRegistry::Instance().Arm("test.op.status", "once").ok());
  EXPECT_TRUE(FailpointRegistry::AnyArmed());

  Status injected = GuardedStatusOp();
  EXPECT_EQ(injected.code(), StatusCode::kIoError);
  EXPECT_EQ(injected.message(), "failpoint test.op.status");

  EXPECT_TRUE(GuardedStatusOp().ok());
  EXPECT_FALSE(FailpointRegistry::AnyArmed());

  std::vector<FailpointRegistry::SiteReport> sites =
      FailpointRegistry::Instance().List();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].site, "test.op.status");
  EXPECT_EQ(sites[0].policy, "off");
  EXPECT_EQ(sites[0].injections, 1u);
}

TEST_F(FailpointTest, OnceWithExplicitCodePropagatesThroughResult) {
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("test.op.result", "once@resource_exhausted")
                  .ok());
  Result<int> r = GuardedResultOp();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(GuardedResultOp().ok());
}

TEST_F(FailpointTest, EveryNFiresPeriodically) {
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("test.op.status", "every-3@internal")
                  .ok());
  int failures = 0;
  for (int i = 0; i < 9; ++i) {
    if (!GuardedStatusOp().ok()) ++failures;
  }
  EXPECT_EQ(failures, 3);  // evaluations 3, 6, 9
}

TEST_F(FailpointTest, ProbabilisticIsSeededDeterministic) {
  auto run = [](uint64_t seed) {
    FailpointRegistry::Instance().DisarmAll();
    EXPECT_TRUE(FailpointRegistry::Instance()
                    .Arm("test.op.status",
                         "prob-0.5-seed-" + std::to_string(seed))
                    .ok());
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += GuardedStatusOp().ok() ? '.' : 'X';
    }
    return pattern;
  };
  const std::string a = run(7);
  const std::string b = run(7);
  const std::string c = run(8);
  EXPECT_EQ(a, b);          // same seed -> same schedule
  EXPECT_NE(a, c);          // different seed -> different schedule
  EXPECT_NE(a.find('X'), std::string::npos);  // p=0.5 over 64: fires
  EXPECT_NE(a.find('.'), std::string::npos);  // ... and passes
}

TEST_F(FailpointTest, DelaySleepsThenPasses) {
  ASSERT_TRUE(
      FailpointRegistry::Instance().Arm("test.op.status", "delay-30").ok());
  Stopwatch timer;
  EXPECT_TRUE(GuardedStatusOp().ok());
  EXPECT_GE(timer.ElapsedSeconds(), 0.025);
}

TEST_F(FailpointTest, ConfigStringArmsMultipleSites) {
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .ConfigureFromString(
                      " test.op.status = once@not_found ; test.op.result = "
                      "every-2 ;")
                  .ok());
  EXPECT_EQ(GuardedStatusOp().code(), StatusCode::kNotFound);
  EXPECT_TRUE(GuardedResultOp().ok());
  EXPECT_FALSE(GuardedResultOp().ok());
}

TEST_F(FailpointTest, MalformedSpecsAreRejected) {
  FailpointRegistry& reg = FailpointRegistry::Instance();
  EXPECT_FALSE(reg.Arm("s", "sometimes").ok());
  EXPECT_FALSE(reg.Arm("s", "every-0").ok());
  EXPECT_FALSE(reg.Arm("s", "prob-1.5").ok());
  EXPECT_FALSE(reg.Arm("s", "once@no_such_code").ok());
  EXPECT_FALSE(reg.Arm("s", "delay-10@io_error").ok());
  EXPECT_FALSE(reg.Arm("bad site", "once").ok());
  EXPECT_FALSE(reg.ConfigureFromString("missing-equals").ok());
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
}

TEST_F(FailpointTest, PolicyRoundTripsThroughToString) {
  for (const char* spec :
       {"once@io_error", "every-5@internal", "prob-0.25-seed-9@io_error",
        "delay-15", "off"}) {
    Result<FailpointRegistry::Policy> parsed =
        FailpointRegistry::ParsePolicy(spec);
    ASSERT_TRUE(parsed.ok()) << spec;
    EXPECT_EQ(FailpointRegistry::PolicyToString(parsed.value()), spec);
  }
}

TEST_F(FailpointTest, DisarmRestoresFastPath) {
  ASSERT_TRUE(
      FailpointRegistry::Instance().Arm("test.op.status", "every-1").ok());
  EXPECT_FALSE(GuardedStatusOp().ok());
  EXPECT_TRUE(FailpointRegistry::Instance().Disarm("test.op.status"));
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
  EXPECT_TRUE(GuardedStatusOp().ok());
  EXPECT_FALSE(FailpointRegistry::Instance().Disarm("test.op.status"));
}

}  // namespace
}  // namespace rrr
