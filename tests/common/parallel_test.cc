#include "common/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace rrr {
namespace {

TEST(ParallelTest, HardwareConcurrencyIsAtLeastOne) {
  EXPECT_GE(HardwareConcurrency(), 1u);
}

TEST(ParallelTest, ResolveThreadsZeroMeansAuto) {
  EXPECT_EQ(ResolveThreads(0), HardwareConcurrency());
  EXPECT_EQ(ResolveThreads(1), 1u);
  EXPECT_EQ(ResolveThreads(7), 7u);
  EXPECT_EQ(ResolveThreads(100000), ThreadPool::kMaxWorkers);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> count{0};
  std::atomic<int> done{0};
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < kTasks) std::this_thread::yield();
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
  }  // ~ThreadPool must run every queued task before joining
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, EnsureWorkersGrows) {
  ThreadPool pool(1);
  pool.EnsureWorkers(4);
  EXPECT_EQ(pool.size(), 4u);
  pool.EnsureWorkers(2);  // never shrinks
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelFor(4, kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ChunkedCoversRangeWithoutOverlap) {
  constexpr size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelForChunked(4, kN, 64, [&](size_t begin, size_t end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end, kN);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SerialFallbacksRunInline) {
  // threads = 1 and tiny n must both run on the calling thread.
  const std::thread::id self = std::this_thread::get_id();
  ParallelFor(1, 100, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), self);
  });
  ParallelForChunked(8, 3, 64, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 3u);
    EXPECT_EQ(std::this_thread::get_id(), self);
  });
}

TEST(ParallelForTest, ZeroIterationsIsANoop) {
  bool called = false;
  ParallelFor(4, 0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, NestedCallsDegradeToSerialWithoutDeadlock) {
  // An inner ParallelFor issued from a pool worker must run inline on that
  // worker; a pool-wide wait there could deadlock a single-worker pool.
  std::atomic<size_t> inner_total{0};
  ParallelFor(4, 8, [&](size_t) {
    ParallelFor(4, 100, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 800u);
}

TEST(ParallelForTest, ParallelSumMatchesSerial) {
  constexpr size_t kN = 100000;
  std::vector<int64_t> values(kN);
  std::iota(values.begin(), values.end(), 1);
  std::atomic<int64_t> sum{0};
  ParallelForChunked(8, kN, 1024, [&](size_t begin, size_t end) {
    int64_t local = 0;
    for (size_t i = begin; i < end; ++i) local += values[i];
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), static_cast<int64_t>(kN) * (kN + 1) / 2);
}

TEST(ParallelForTest, ManyConcurrentLoopsFromManyThreads) {
  // Several caller threads hammering the shared pool at once: the per-call
  // completion latch must never cross wires between calls.
  std::vector<std::thread> callers;
  std::atomic<int64_t> grand_total{0};
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&grand_total] {
      for (int round = 0; round < 20; ++round) {
        std::atomic<int64_t> local{0};
        ParallelFor(3, 500, [&](size_t) { local.fetch_add(1); });
        grand_total.fetch_add(local.load());
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(grand_total.load(), int64_t{4} * 20 * 500);
}

}  // namespace
}  // namespace rrr
