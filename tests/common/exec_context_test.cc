#include "common/exec_context.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rrr {
namespace {

TEST(CancellationTest, DefaultTokenNeverCancelled) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationTest, SourceFlipsEveryToken) {
  CancellationSource source;
  CancellationToken a = source.token();
  CancellationToken b = a;  // copies observe the same flag
  EXPECT_FALSE(a.cancelled());
  EXPECT_FALSE(source.cancel_requested());
  source.RequestCancel();
  EXPECT_TRUE(source.cancel_requested());
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  EXPECT_TRUE(source.token().cancelled());
}

TEST(CancellationTest, TokenOutlivesSource) {
  CancellationToken token;
  {
    CancellationSource source;
    token = source.token();
    source.RequestCancel();
  }
  EXPECT_TRUE(token.cancelled());  // shared flag keeps the state alive
}

TEST(CancellationTest, CancelFromAnotherThreadIsObserved) {
  CancellationSource source;
  CancellationToken token = source.token();
  std::thread canceller([&source] { source.RequestCancel(); });
  canceller.join();
  EXPECT_TRUE(token.cancelled());
}

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.has_deadline());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.remaining_seconds() > 1e18);
}

TEST(DeadlineTest, PastDeadlineIsExpired) {
  Deadline d = Deadline::After(-1.0);
  EXPECT_TRUE(d.has_deadline());
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_seconds(), 0.0);
}

TEST(DeadlineTest, FutureDeadlineIsNotExpired) {
  Deadline d = Deadline::After(3600.0);
  EXPECT_TRUE(d.has_deadline());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 3000.0);
}

TEST(ExecContextTest, DefaultIsPermissive) {
  ExecContext ctx;
  EXPECT_TRUE(ctx.CheckPreempted().ok());
  EXPECT_EQ(ctx.ThreadsOver(4), 4u);
  EXPECT_EQ(ctx.ThreadsOver(0), 0u);
}

TEST(ExecContextTest, CancelledTokenWins) {
  CancellationSource source;
  source.RequestCancel();
  ExecContext ctx;
  ctx.cancel = source.token();
  ctx.deadline = Deadline::After(-1.0);  // both fired: Cancelled reported
  EXPECT_EQ(ctx.CheckPreempted().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, ExpiredDeadlineReported) {
  ExecContext ctx;
  ctx.deadline = Deadline::After(-0.001);
  EXPECT_EQ(ctx.CheckPreempted().code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecContextTest, ThreadBudgetOverridesOption) {
  ExecContext ctx;
  ctx.threads = 2;
  EXPECT_EQ(ctx.ThreadsOver(0), 2u);
  EXPECT_EQ(ctx.ThreadsOver(16), 2u);
}

TEST(PreemptionGateTest, PermissiveContextNeverTrips) {
  ExecContext ctx;
  PreemptionGate gate(ctx);
  for (int i = 0; i < 10000; ++i) ASSERT_TRUE(gate.Check().ok());
  EXPECT_FALSE(gate.Preempted());
}

TEST(PreemptionGateTest, CancellationSeenOnNextCheck) {
  CancellationSource source;
  ExecContext ctx;
  ctx.cancel = source.token();
  PreemptionGate gate(ctx);
  EXPECT_TRUE(gate.Check().ok());
  source.RequestCancel();
  // Cancellation is checked every call, regardless of the clock stride.
  EXPECT_EQ(gate.Check().code(), StatusCode::kCancelled);
  EXPECT_TRUE(gate.Preempted());
  EXPECT_EQ(gate.status().code(), StatusCode::kCancelled);
}

TEST(PreemptionGateTest, DeadlineSeenOnFirstAndStridedChecks) {
  ExecContext ctx;
  ctx.deadline = Deadline::After(-1.0);
  PreemptionGate first(ctx, 1 << 20);
  // The very first Check consults the clock even with a huge stride.
  EXPECT_EQ(first.Check().code(), StatusCode::kDeadlineExceeded);

  // A gate that passed its first check trips within one stride.
  ExecContext live;
  live.deadline = Deadline::After(0.02);
  PreemptionGate gate(live, 4);
  EXPECT_TRUE(gate.Check().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  Status status;
  for (int i = 0; i < 8 && status.ok(); ++i) status = gate.Check();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(PreemptionGateTest, FailureIsSticky) {
  CancellationSource source;
  source.RequestCancel();
  ExecContext ctx;
  ctx.cancel = source.token();
  PreemptionGate gate(ctx);
  EXPECT_FALSE(gate.Check().ok());
  EXPECT_FALSE(gate.Check().ok());
  EXPECT_EQ(gate.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace rrr
