#include "common/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace rrr {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "gone");
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> good = 7;
  Result<int> bad = Status::Internal("x");
  EXPECT_EQ(good.value_or(-1), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, ValueOrOnRvalueMovesHeldValue) {
  // A large representative must move out of an rvalue Result, not copy:
  // the moved-from Result's vector loses its buffer.
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3, 4};
  const int* buffer = r.value().data();
  std::vector<int> v = std::move(r).value_or(std::vector<int>{});
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.data(), buffer);  // same heap buffer: moved, not copied
}

TEST(ResultTest, ValueOrOnRvalueErrorUsesFallback) {
  Result<std::vector<int>> r = Status::Internal("x");
  std::vector<int> v = std::move(r).value_or(std::vector<int>{9});
  EXPECT_EQ(v, (std::vector<int>{9}));
}

TEST(ResultTest, ValueOrOnLvalueLeavesHeldValueIntact) {
  Result<std::vector<int>> r = std::vector<int>{5, 6};
  std::vector<int> v = r.value_or(std::vector<int>{});
  EXPECT_EQ(v, (std::vector<int>{5, 6}));
  EXPECT_EQ(r.value(), (std::vector<int>{5, 6}));  // copy, source untouched
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r = std::vector<int>{1};
  r->push_back(2);
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(ResultTest, AssignOrReturnMacroExtractsValue) {
  auto inner = []() -> Result<int> { return 10; };
  auto outer = [&]() -> Result<int> {
    int v = 0;
    RRR_ASSIGN_OR_RETURN(v, inner());
    return v + 1;
  };
  Result<int> r = outer();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 11);
}

TEST(ResultTest, AssignOrReturnMacroPropagatesError) {
  auto inner = []() -> Result<int> { return Status::OutOfRange("oops"); };
  auto outer = [&]() -> Result<int> {
    int v = 0;
    RRR_ASSIGN_OR_RETURN(v, inner());
    return v;
  };
  Result<int> r = outer();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH({ (void)r.value(); }, "boom");
}

TEST(ResultDeathTest, OkStatusWithoutValueAborts) {
  EXPECT_DEATH({ Result<int> r{Status::OK()}; (void)r; }, "Check failed");
}

}  // namespace
}  // namespace rrr
