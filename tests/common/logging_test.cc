#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace rrr {
namespace {

TEST(LoggingTest, ThresholdCanBeOverridden) {
  const LogLevel original = internal::GetLogThreshold();
  internal::SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(internal::GetLogThreshold(), LogLevel::kError);
  internal::SetLogThreshold(original);
}

TEST(LoggingTest, NonFatalLogDoesNotAbort) {
  RRR_LOG(INFO) << "informational " << 42;
  RRR_LOG(WARNING) << "warning";
  RRR_LOG(ERROR) << "error but not fatal";
  SUCCEED();
}

TEST(LoggingTest, CheckPassesOnTrue) {
  RRR_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalseWithMessage) {
  EXPECT_DEATH({ RRR_CHECK(false) << "ctx " << 7; }, "Check failed.*ctx 7");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH({ RRR_LOG(FATAL) << "fatal msg"; }, "fatal msg");
}

TEST(LoggingDeathTest, CheckOkAbortsOnErrorStatus) {
  EXPECT_DEATH({ RRR_CHECK_OK(Status::Internal("bad state")); },
               "bad state");
}

TEST(LoggingTest, CheckOkPassesOnOk) {
  RRR_CHECK_OK(Status::OK());
  SUCCEED();
}

TEST(LoggingTest, DcheckCompilesInBothModes) {
  RRR_DCHECK(true) << "unused";
  SUCCEED();
}

}  // namespace
}  // namespace rrr
