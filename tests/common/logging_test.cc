#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace rrr {
namespace {

/// Installs a capturing sink for the test's scope; restores stderr after.
class ScopedCaptureSink {
 public:
  ScopedCaptureSink() {
    SetLogSink([this](LogLevel level, const std::string& line) {
      MutexLock lock(mu_);
      levels_.push_back(level);
      lines_.push_back(line);
    });
  }
  ~ScopedCaptureSink() { SetLogSink(nullptr); }

  std::vector<std::string> lines() const {
    MutexLock lock(mu_);
    return lines_;
  }
  std::vector<LogLevel> levels() const {
    MutexLock lock(mu_);
    return levels_;
  }

 private:
  mutable Mutex mu_;
  std::vector<LogLevel> levels_;
  std::vector<std::string> lines_;
};

TEST(LoggingTest, ThresholdCanBeOverridden) {
  const LogLevel original = internal::GetLogThreshold();
  internal::SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(internal::GetLogThreshold(), LogLevel::kError);
  internal::SetLogThreshold(original);
}

TEST(LoggingTest, NonFatalLogDoesNotAbort) {
  RRR_LOG(INFO) << "informational " << 42;
  RRR_LOG(WARNING) << "warning";
  RRR_LOG(ERROR) << "error but not fatal";
  SUCCEED();
}

TEST(LoggingTest, CheckPassesOnTrue) {
  RRR_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalseWithMessage) {
  EXPECT_DEATH({ RRR_CHECK(false) << "ctx " << 7; }, "Check failed.*ctx 7");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH({ RRR_LOG(FATAL) << "fatal msg"; }, "fatal msg");
}

TEST(LoggingDeathTest, CheckOkAbortsOnErrorStatus) {
  EXPECT_DEATH({ RRR_CHECK_OK(Status::Internal("bad state")); },
               "bad state");
}

TEST(LoggingTest, CheckOkPassesOnOk) {
  RRR_CHECK_OK(Status::OK());
  SUCCEED();
}

TEST(LoggingTest, DcheckCompilesInBothModes) {
  RRR_DCHECK(true) << "unused";
  SUCCEED();
}

TEST(LoggingTest, SinkReceivesFormattedLinesAboveThreshold) {
  const LogLevel original = internal::GetLogThreshold();
  internal::SetLogThreshold(LogLevel::kInfo);
  {
    ScopedCaptureSink capture;
    RRR_LOG(DEBUG) << "below threshold";
    RRR_LOG(INFO) << "sink line " << 7;
    const std::vector<std::string> lines = capture.lines();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("sink line 7"), std::string::npos) << lines[0];
    // Structured prefix: level tag, timestamp, thread id, file:line.
    EXPECT_EQ(lines[0].rfind("[INFO ", 0), 0u) << lines[0];
    EXPECT_NE(lines[0].find(" t"), std::string::npos) << lines[0];
    EXPECT_NE(lines[0].find("logging_test.cc:"), std::string::npos)
        << lines[0];
    ASSERT_EQ(capture.levels().size(), 1u);
    EXPECT_EQ(capture.levels()[0], LogLevel::kInfo);
  }
  internal::SetLogThreshold(original);
}

TEST(LoggingTest, NullSinkRestoresStderrWithoutCrashing) {
  {
    ScopedCaptureSink capture;
    RRR_LOG(ERROR) << "captured";
    ASSERT_EQ(capture.lines().size(), 1u);
  }
  RRR_LOG(ERROR) << "back on stderr";  // must not invoke the dead sink
  SUCCEED();
}

TEST(LoggingTest, PrefixCarriesUtcTimestampShape) {
  ScopedCaptureSink capture;
  RRR_LOG(ERROR) << "stamp";
  const std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  // "[ERROR YYYY-MM-DD HH:MM:SS.mmm ..." — check the date separators.
  const std::string& line = lines[0];
  ASSERT_GT(line.size(), 26u) << line;
  EXPECT_EQ(line[11], '-') << line;
  EXPECT_EQ(line[14], '-') << line;
  EXPECT_EQ(line[20], ':') << line;
  EXPECT_EQ(line[23], ':') << line;
  EXPECT_EQ(line[26], '.') << line;
}

}  // namespace
}  // namespace rrr
