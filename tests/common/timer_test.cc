#include "common/timer.h"

#include <gtest/gtest.h>

namespace rrr {
namespace {

/// Burns deterministic CPU work the optimizer cannot elide.
double BurnCpu() {
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  return sink;
}

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotonic) {
  Stopwatch sw;
  const double a = sw.ElapsedSeconds();
  const double b = sw.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(StopwatchTest, MillisMatchesSeconds) {
  Stopwatch sw;
  EXPECT_GT(BurnCpu(), 0.0);
  const double ms = sw.ElapsedMillis();
  const double s = sw.ElapsedSeconds();
  EXPECT_GE(ms, 0.0);
  EXPECT_NEAR(ms, s * 1e3, s * 1e3 * 0.5 + 1.0);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch sw;
  EXPECT_GT(BurnCpu(), 0.0);
  const double before = sw.ElapsedSeconds();
  sw.Restart();
  const double after = sw.ElapsedSeconds();
  EXPECT_LE(after, before + 1e-3);
}

}  // namespace
}  // namespace rrr
