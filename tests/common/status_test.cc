#include "common/status.h"

#include <gtest/gtest.h>

namespace rrr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "not-found: x");
  EXPECT_EQ(Status::Internal("y").ToString(), "internal: y");
  EXPECT_EQ(Status::IoError("z").ToString(), "io-error: z");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Cancelled("").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("inner"); };
  auto outer = [&]() -> Status {
    RRR_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto ok = []() -> Status { return Status::OK(); };
  auto outer = [&]() -> Status {
    RRR_RETURN_IF_ERROR(ok());
    return Status::NotFound("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "resource-exhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCancelled), "cancelled");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "deadline-exceeded");
}

}  // namespace
}  // namespace rrr
