#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace rrr {
namespace {

TEST(RngTest, DeterministicUnderSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Uniform(), b.Uniform());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformStaysInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(6);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialIsPositiveWithRightMean) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(0.5);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.1);  // mean = 1/rate
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(8);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, UnitWeightVectorIsUnitAndNonNegative) {
  Rng rng(9);
  for (int dims = 1; dims <= 8; ++dims) {
    for (int rep = 0; rep < 50; ++rep) {
      const std::vector<double> w = rng.UnitWeightVector(dims);
      ASSERT_EQ(w.size(), static_cast<size_t>(dims));
      double norm2 = 0.0;
      for (double wi : w) {
        EXPECT_GE(wi, 0.0);
        norm2 += wi * wi;
      }
      EXPECT_NEAR(norm2, 1.0, 1e-12);
    }
  }
}

TEST(RngTest, UnitWeightVectorCoversOrthantUniformly) {
  // Marsaglia sampling: by symmetry each coordinate should exceed the others
  // about equally often.
  Rng rng(10);
  const int dims = 3;
  std::vector<int> argmax_counts(dims, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const std::vector<double> w = rng.UnitWeightVector(dims);
    argmax_counts[static_cast<size_t>(
        std::max_element(w.begin(), w.end()) - w.begin())]++;
  }
  for (int c : argmax_counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / dims, 0.02);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
}

TEST(RngDeathTest, UniformIntRejectsInvertedBounds) {
  Rng rng(13);
  EXPECT_DEATH({ (void)rng.UniformInt(3, 2); }, "lo=3 > hi=2");
}

TEST(RngDeathTest, ExponentialRejectsNonPositiveRate) {
  Rng rng(14);
  EXPECT_DEATH({ (void)rng.Exponential(0.0); }, "non-positive rate");
}

}  // namespace
}  // namespace rrr
