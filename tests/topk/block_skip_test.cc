// Skip-safety equivalence suite for block-max pruning: every scanning entry
// point (TopKScan / MaxScore / CountOutranking) with BlockSkip::kForceOn is
// BIT-IDENTICAL (EXPECT_EQ, never a tolerance) to kForceOff — across
// dataset families chosen to stress the bounds (duplicates = score ties,
// constant columns = bounds exactly equal to every value, anti-correlated =
// adversarially flat score landscape), across derived mirrors whose bounds
// are stale-but-conservative (masked / appended), across kernel paths, and
// under concurrent scans (the counters are relaxed atomics; TSan runs this
// file). The pruning may only change which blocks get scored, never what
// comes out.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "data/column_blocks.h"
#include "data/generators.h"
#include "topk/score_kernel.h"
#include "topk/scoring.h"
#include "test_util.h"

namespace rrr {
namespace topk {
namespace {

data::ColumnBlocks MustBuild(const data::Dataset& ds, size_t threads = 1) {
  Result<data::ColumnBlocks> blocks = data::ColumnBlocks::Build(ds, threads);
  RRR_CHECK(blocks.ok()) << blocks.status().ToString();
  return std::move(blocks).value();
}

struct Family {
  std::string name;
  data::Dataset data;
};

/// The bound-stressing families: ties (duplicate-heavy), bounds met with
/// equality by every lane (constant-column), flat score landscapes
/// (anticorrelated), near-identical columns (correlated), plain uniform.
std::vector<Family> Families(size_t n, size_t d, uint64_t seed) {
  std::vector<Family> families;
  families.push_back({"uniform", data::GenerateUniform(n, d, seed)});
  families.push_back({"correlated", data::GenerateCorrelated(n, d, seed)});
  families.push_back(
      {"anticorrelated", data::GenerateAnticorrelated(n, d, seed)});
  {
    const data::Dataset pool = data::GenerateUniform(n / 8 + 2, d, seed + 1);
    std::vector<std::vector<double>> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const double* r = pool.row(i % pool.size());
      std::vector<double> row(r, r + d);
      for (double& v : row) v = std::round(v * 8.0) / 8.0;
      rows.push_back(std::move(row));
    }
    families.push_back({"duplicate-heavy", testing::MakeDataset(rows)});
  }
  {
    const data::Dataset base = data::GenerateUniform(n, d, seed + 2);
    std::vector<std::vector<double>> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const double* r = base.row(i);
      std::vector<double> row(r, r + d);
      row[0] = 0.5;
      rows.push_back(std::move(row));
    }
    families.push_back({"constant-column", testing::MakeDataset(rows)});
  }
  return families;
}

/// Axis probes (zero weights — the bound term for a zero weight must stay
/// exactly zero), the diagonal, and random draws.
std::vector<LinearFunction> ProbeFunctions(size_t d, uint64_t seed) {
  std::vector<LinearFunction> funcs;
  for (size_t axis = 0; axis < d; ++axis) {
    geometry::Vec w(d, 0.0);
    w[axis] = 1.0;
    funcs.emplace_back(std::move(w));
  }
  funcs.emplace_back(geometry::Vec(d, 1.0));
  Rng rng(seed);
  for (int i = 0; i < 4; ++i) {
    funcs.emplace_back(rng.UnitWeightVector(static_cast<int>(d)));
  }
  return funcs;
}

/// The core equivalence check over one mirror: every entry point, skip
/// forced on vs forced off, plus the block-accounting invariant that every
/// block is either scanned or skipped, never both or neither.
void ExpectSkipEquivalent(const data::ColumnBlocks& blocks,
                          const LinearFunction& f, const std::string& tag) {
  const size_t n = blocks.rows();
  for (size_t k : {size_t{1}, size_t{13}, n / 2, n}) {
    if (k == 0) continue;
    ScanStats on_stats;
    const std::vector<int32_t> on =
        TopKScan(blocks, f, k, BlockSkip::kForceOn, &on_stats);
    const std::vector<int32_t> off =
        TopKScan(blocks, f, k, BlockSkip::kForceOff);
    EXPECT_EQ(on, off) << tag << " k=" << k;
    EXPECT_EQ(on_stats.blocks_scanned + on_stats.blocks_skipped,
              blocks.num_blocks())
        << tag << " k=" << k;
  }
  EXPECT_EQ(MaxScore(blocks, f, BlockSkip::kForceOn),
            MaxScore(blocks, f, BlockSkip::kForceOff))
      << tag;
  // Reference points spanning rank extremes: the top-1 (near-total
  // skipping), a middling row, the very last row (no skipping possible).
  const std::vector<int32_t> extremes = TopKScan(blocks, f, n);
  for (int32_t id : {extremes.front(), extremes[extremes.size() / 2],
                     extremes.back()}) {
    const double score = f.Score(blocks.source()->row(
        static_cast<size_t>(id)));
    EXPECT_EQ(CountOutranking(blocks, f, score, id, BlockSkip::kForceOn),
              CountOutranking(blocks, f, score, id, BlockSkip::kForceOff))
        << tag << " id=" << id;
  }
}

TEST(BlockSkipTest, SkipOnMatchesSkipOffOnEveryFamily) {
  for (size_t d : {size_t{2}, size_t{4}}) {
    for (const Family& family : Families(300, d, 211)) {
      const data::ColumnBlocks blocks = MustBuild(family.data);
      ASSERT_TRUE(blocks.has_block_bounds()) << family.name;
      for (const LinearFunction& f : ProbeFunctions(d, 223)) {
        ExpectSkipEquivalent(blocks, f, family.name);
      }
    }
  }
}

TEST(BlockSkipTest, BoundsCoverEveryLaneAndParallelBuildMatchesSerial) {
  for (const Family& family : Families(300, 3, 227)) {
    const data::ColumnBlocks serial = MustBuild(family.data, 1);
    const data::ColumnBlocks parallel = MustBuild(family.data, 4);
    for (size_t b = 0; b < serial.num_blocks(); ++b) {
      for (size_t j = 0; j < serial.dims(); ++j) {
        // The transpose-pass bounds are deterministic: chunked parallel
        // build produces the same doubles as the serial one.
        EXPECT_EQ(serial.block_max(b)[j], parallel.block_max(b)[j])
            << family.name;
        EXPECT_EQ(serial.block_min(b)[j], parallel.block_min(b)[j])
            << family.name;
        const double* col = serial.column(b, j);
        for (size_t lane = 0; lane < serial.block_rows(b); ++lane) {
          EXPECT_GE(serial.block_max(b)[j], col[lane])
              << family.name << " block " << b << " col " << j;
          EXPECT_LE(serial.block_min(b)[j], col[lane])
              << family.name << " block " << b << " col " << j;
        }
      }
    }
  }
}

TEST(BlockSkipTest, NaNPoisonsBoundsSoPoisonedBlocksAlwaysScan) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const data::Dataset ds =
      testing::MakeDataset({{0.9, 0.1}, {nan, 0.8}, {0.2, 0.3}, {0.4, nan}});
  const data::ColumnBlocks blocks = MustBuild(ds);
  ASSERT_EQ(blocks.num_blocks(), 1u);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(blocks.block_max(0)[0], inf);
  EXPECT_EQ(blocks.block_min(0)[0], -inf);
  EXPECT_EQ(blocks.block_max(0)[1], inf);
  EXPECT_EQ(blocks.block_min(0)[1], -inf);
  for (const LinearFunction& f : ProbeFunctions(2, 229)) {
    // A poisoned ub (+inf, or NaN when a zero weight multiplies it) never
    // wins a strict-loss comparison, so the block scans and the NaN
    // semantics of every entry point are exactly the skip-off ones.
    ScanStats stats;
    EXPECT_EQ(TopKScan(blocks, f, 2, BlockSkip::kForceOn, &stats),
              TopKScan(blocks, f, 2, BlockSkip::kForceOff));
    EXPECT_EQ(stats.blocks_skipped, 0u);
    EXPECT_EQ(MaxScore(blocks, f, BlockSkip::kForceOn),
              MaxScore(blocks, f, BlockSkip::kForceOff));
  }
}

TEST(BlockSkipTest, MaskedMirrorKeepsStaleBoundsAndStaysEquivalent) {
  for (const Family& family : Families(150, 3, 233)) {
    std::vector<std::vector<double>> rows;
    for (size_t i = 0; i < family.data.size(); ++i) {
      const double* r = family.data.row(i);
      rows.emplace_back(r, r + 3);
    }
    data::ColumnBlocks masked = MustBuild(family.data);
    // Delete the global top row of axis 0 — the lane that SET block 0's
    // bound — so the inherited bound goes stale, plus a spread of others.
    const LinearFunction axis0(geometry::Vec{1.0, 0.0, 0.0});
    const size_t top =
        static_cast<size_t>(TopKScan(masked, axis0, 1).front());
    std::vector<data::Dataset> keep_alive;
    keep_alive.reserve(4);
    for (size_t victim : {top, size_t{0}, size_t{80}}) {
      rows.erase(rows.begin() + static_cast<int64_t>(victim));
      keep_alive.push_back(testing::MakeDataset(rows));
      Result<data::ColumnBlocks> next =
          masked.WithoutRow(&keep_alive.back(), victim);
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      masked = std::move(*next);
    }
    ASSERT_TRUE(masked.masked());
    ASSERT_TRUE(masked.has_block_bounds());
    // Stale is fine — a bound over dead lanes is still an upper bound over
    // the live ones — and pruning still matches skip-off bit-for-bit.
    for (const LinearFunction& f : ProbeFunctions(3, 239)) {
      ExpectSkipEquivalent(masked, f, family.name + "/masked");
    }
  }
}

TEST(BlockSkipTest, AppendedMirrorRecomputesBoundaryAndStaysEquivalent) {
  // 150 base rows = two full tiles + a partial; the appends refill the
  // partial tile (whose bound must WIDEN to cover the new lanes) and cross
  // into fresh tiles.
  for (size_t appended : {size_t{1}, size_t{41}, size_t{107}}) {
    for (const Family& family : Families(150 + appended, 3, 241)) {
      std::vector<std::vector<double>> rows;
      for (size_t i = 0; i < family.data.size(); ++i) {
        const double* r = family.data.row(i);
        rows.emplace_back(r, r + 3);
      }
      const std::vector<std::vector<double>> base_rows(rows.begin(),
                                                       rows.begin() + 150);
      const data::Dataset base_data = testing::MakeDataset(base_rows);
      const data::ColumnBlocks base = MustBuild(base_data);
      Result<data::ColumnBlocks> grown =
          data::ColumnBlocks::BuildAppended(base, family.data);
      ASSERT_TRUE(grown.ok()) << grown.status().ToString();
      ASSERT_TRUE(grown->has_block_bounds());
      // The appended mirror's bounds must cover the appended lanes too —
      // same invariant the fresh build satisfies by construction.
      const data::ColumnBlocks fresh = MustBuild(family.data);
      for (size_t b = 0; b < grown->num_blocks(); ++b) {
        for (size_t j = 0; j < 3; ++j) {
          EXPECT_EQ(grown->block_max(b)[j], fresh.block_max(b)[j])
              << family.name << " appended=" << appended << " block " << b;
          EXPECT_EQ(grown->block_min(b)[j], fresh.block_min(b)[j])
              << family.name << " appended=" << appended << " block " << b;
        }
      }
      for (const LinearFunction& f : ProbeFunctions(3, 251)) {
        ExpectSkipEquivalent(*grown, f, family.name + "/appended");
      }
    }
  }
}

TEST(BlockSkipTest, EveryKernelPathAgreesWithSkipOn) {
  const ScoreKernelPath restore = ActiveScoreKernelPath();
  const data::Dataset ds = data::GenerateUniform(500, 4, 257);
  const data::ColumnBlocks blocks = MustBuild(ds);
  const std::vector<LinearFunction> probes = ProbeFunctions(4, 263);
  std::vector<std::vector<int32_t>> want;
  for (const LinearFunction& f : probes) {
    want.push_back(TopKScan(blocks, f, 25, BlockSkip::kForceOff));
  }
  for (ScoreKernelPath path : {ScoreKernelPath::kScalarBlocked,
                               ScoreKernelPath::kAvx2,
                               ScoreKernelPath::kAvx512}) {
    const ScoreKernelPath installed = ForceScoreKernelPath(path);
    // The force clamps to host support (an unsupported request narrows,
    // never crashes) and round-trips through the active-path query.
    EXPECT_EQ(ActiveScoreKernelPath(), installed);
    if (installed != path) continue;  // host can't run this tier
    for (size_t p = 0; p < probes.size(); ++p) {
      EXPECT_EQ(TopKScan(blocks, probes[p], 25, BlockSkip::kForceOn),
                want[p])
          << ScoreKernelPathName(path) << " probe " << p;
    }
  }
  ForceScoreKernelPath(restore);
}

TEST(BlockSkipTest, ConcurrentSkippedScansStayIdenticalAndCountersAdvance) {
  const data::Dataset ds = data::GenerateUniform(1000, 3, 269);
  const data::ColumnBlocks blocks = MustBuild(ds);
  const std::vector<LinearFunction> probes = ProbeFunctions(3, 271);
  std::vector<std::vector<int32_t>> want;
  for (const LinearFunction& f : probes) {
    want.push_back(TopKScan(blocks, f, 50, BlockSkip::kForceOff));
  }
  const ScanStats before = ScanCountersSnapshot();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ParallelFor(threads, probes.size() * 4, [&](size_t task) {
      const size_t p = task % probes.size();
      EXPECT_EQ(TopKScan(blocks, probes[p], 50, BlockSkip::kForceOn),
                want[p])
          << "threads=" << threads << " probe " << p;
    });
  }
  const ScanStats after = ScanCountersSnapshot();
  // 2 sweeps x |probes| x 4 replicas, each touching every block once.
  EXPECT_EQ(after.blocks_scanned + after.blocks_skipped -
                before.blocks_scanned - before.blocks_skipped,
            2 * probes.size() * 4 * blocks.num_blocks());
}

}  // namespace
}  // namespace topk
}  // namespace rrr
