#include "topk/topk.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "test_util.h"

namespace rrr {
namespace topk {
namespace {

TEST(TopKTest, PaperExampleDiagonalOrdering) {
  // Figure 2: ranking by f = x1 + x2 is t7, t3, t5, t1, t2, t6, t4
  // (0-based: 6, 2, 4, 0, 1, 5, 3).
  data::Dataset ds = testing::PaperFigure1Dataset();
  LinearFunction f({1.0, 1.0});
  EXPECT_EQ(TopK(ds, f, 7), (std::vector<int32_t>{6, 2, 4, 0, 1, 5, 3}));
}

TEST(TopKTest, PaperExampleXAxisOrdering) {
  // Section 3: ranking by f = x1 is t7, t1, t3, t2, t5, t4, t6.
  data::Dataset ds = testing::PaperFigure1Dataset();
  LinearFunction f({1.0, 0.0});
  EXPECT_EQ(TopK(ds, f, 7), (std::vector<int32_t>{6, 0, 2, 1, 4, 3, 5}));
}

TEST(TopKTest, PrefixConsistency) {
  data::Dataset ds = testing::PaperFigure1Dataset();
  LinearFunction f({1.0, 1.0});
  const auto full = TopK(ds, f, 7);
  for (size_t k = 1; k <= 7; ++k) {
    const auto top = TopK(ds, f, k);
    ASSERT_EQ(top.size(), k);
    EXPECT_TRUE(std::equal(top.begin(), top.end(), full.begin()));
  }
}

TEST(TopKTest, KLargerThanNClamps) {
  data::Dataset ds = testing::MakeDataset({{1.0}, {2.0}});
  EXPECT_EQ(TopK(ds, LinearFunction({1.0}), 10).size(), 2u);
}

TEST(TopKTest, KZeroIsEmpty) {
  data::Dataset ds = testing::MakeDataset({{1.0}});
  EXPECT_TRUE(TopK(ds, LinearFunction({1.0}), 0).empty());
}

TEST(TopKTest, TiesBreakByLowerId) {
  data::Dataset ds =
      testing::MakeDataset({{0.5, 0.5}, {0.5, 0.5}, {0.9, 0.9}});
  const auto top = TopK(ds, LinearFunction({1.0, 1.0}), 2);
  EXPECT_EQ(top, (std::vector<int32_t>{2, 0}));
}

TEST(TopKTest, TopKSetIsSortedSameMembers) {
  const data::Dataset ds = data::GenerateUniform(100, 3, 5);
  LinearFunction f({0.2, 0.3, 0.5});
  auto ranked = TopK(ds, f, 10);
  auto set = TopKSet(ds, f, 10);
  EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
  std::sort(ranked.begin(), ranked.end());
  EXPECT_EQ(ranked, set);
}

class TopKOracleTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TopKOracleTest, MatchesFullSortOracle) {
  const auto [seed, n, k] = GetParam();
  const data::Dataset ds = data::GenerateUniform(
      static_cast<size_t>(n), 3, static_cast<uint64_t>(seed));
  Rng rng(static_cast<uint64_t>(seed) + 1000);
  for (int rep = 0; rep < 5; ++rep) {
    LinearFunction f(rng.UnitWeightVector(3));
    // Oracle: full stable sort by the tie-broken order.
    std::vector<int32_t> all(ds.size());
    std::iota(all.begin(), all.end(), 0);
    std::vector<double> scores(ds.size());
    for (size_t i = 0; i < ds.size(); ++i) scores[i] = f.Score(ds.row(i));
    std::sort(all.begin(), all.end(), [&](int32_t a, int32_t b) {
      return Outranks(scores[static_cast<size_t>(a)], a,
                      scores[static_cast<size_t>(b)], b);
    });
    all.resize(std::min<size_t>(static_cast<size_t>(k), ds.size()));
    EXPECT_EQ(TopK(ds, f, static_cast<size_t>(k)), all);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, TopKOracleTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(10, 100, 500),
                       ::testing::Values(1, 5, 50)));

}  // namespace
}  // namespace topk
}  // namespace rrr
