#include "topk/rank.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "test_util.h"
#include "topk/topk.h"

namespace rrr {
namespace topk {
namespace {

TEST(RankOfTest, PaperExampleRanks) {
  data::Dataset ds = testing::PaperFigure1Dataset();
  LinearFunction f({1.0, 1.0});
  // Figure 2 ordering: t7, t3, t5, t1, t2, t6, t4.
  EXPECT_EQ(RankOf(ds, f, 6), 1);
  EXPECT_EQ(RankOf(ds, f, 2), 2);
  EXPECT_EQ(RankOf(ds, f, 4), 3);
  EXPECT_EQ(RankOf(ds, f, 0), 4);
  EXPECT_EQ(RankOf(ds, f, 1), 5);
  EXPECT_EQ(RankOf(ds, f, 5), 6);
  EXPECT_EQ(RankOf(ds, f, 3), 7);
}

TEST(RankOfTest, ConsistentWithTopKPositions) {
  const data::Dataset ds = data::GenerateUniform(80, 3, 6);
  Rng rng(7);
  for (int rep = 0; rep < 10; ++rep) {
    LinearFunction f(rng.UnitWeightVector(3));
    const auto order = TopK(ds, f, ds.size());
    for (size_t pos = 0; pos < order.size(); ++pos) {
      EXPECT_EQ(RankOf(ds, f, order[pos]), static_cast<int64_t>(pos) + 1);
    }
  }
}

TEST(RankOfTest, TiesGiveDistinctRanks) {
  data::Dataset ds =
      testing::MakeDataset({{0.5, 0.5}, {0.5, 0.5}, {0.1, 0.1}});
  LinearFunction f({1.0, 1.0});
  EXPECT_EQ(RankOf(ds, f, 0), 1);
  EXPECT_EQ(RankOf(ds, f, 1), 2);
  EXPECT_EQ(RankOf(ds, f, 2), 3);
}

TEST(MinRankOfSubsetTest, EqualsMinOfIndividualRanks) {
  const data::Dataset ds = data::GenerateUniform(60, 4, 8);
  Rng rng(9);
  for (int rep = 0; rep < 10; ++rep) {
    LinearFunction f(rng.UnitWeightVector(4));
    const std::vector<int32_t> subset = {3, 17, 42, 55};
    int64_t expected = ds.size() + 1;
    for (int32_t id : subset) {
      expected = std::min(expected, RankOf(ds, f, id));
    }
    EXPECT_EQ(MinRankOfSubset(ds, f, subset), expected);
  }
}

TEST(MinRankOfSubsetTest, SingletonEqualsRankOf) {
  const data::Dataset ds = data::GenerateUniform(30, 2, 10);
  LinearFunction f({0.6, 0.8});
  for (int32_t id : {0, 7, 29}) {
    EXPECT_EQ(MinRankOfSubset(ds, f, {id}), RankOf(ds, f, id));
  }
}

TEST(MinRankOfSubsetTest, FullSetHasRankOne) {
  const data::Dataset ds = data::GenerateUniform(25, 2, 11);
  std::vector<int32_t> all(ds.size());
  std::iota(all.begin(), all.end(), 0);
  LinearFunction f({0.5, 0.5});
  EXPECT_EQ(MinRankOfSubset(ds, f, all), 1);
}

TEST(RankDeathTest, RejectsOutOfRangeItem) {
  data::Dataset ds = testing::MakeDataset({{1.0}});
  LinearFunction f({1.0});
  EXPECT_DEATH({ (void)RankOf(ds, f, 5); }, "out of range");
  EXPECT_DEATH({ (void)MinRankOfSubset(ds, f, {}); }, "empty subset");
}

}  // namespace
}  // namespace topk
}  // namespace rrr
