#include "topk/scoring.h"

#include <cmath>

#include <gtest/gtest.h>

#include "geometry/angles.h"
#include "test_util.h"

namespace rrr {
namespace topk {
namespace {

TEST(LinearFunctionTest, ScoreIsDotProduct) {
  LinearFunction f({0.5, 2.0});
  const double row[2] = {4.0, 3.0};
  EXPECT_DOUBLE_EQ(f.Score(row), 8.0);
  EXPECT_EQ(f.dims(), 2u);
}

TEST(LinearFunctionTest, ScoreOnDatasetRow) {
  data::Dataset ds = testing::MakeDataset({{1.0, 2.0}, {3.0, 4.0}});
  LinearFunction f({1.0, 1.0});
  EXPECT_DOUBLE_EQ(f.Score(ds, 0), 3.0);
  EXPECT_DOUBLE_EQ(f.Score(ds, 1), 7.0);
}

TEST(LinearFunctionTest, FromAnglesMatchesSphericalWeights) {
  LinearFunction f = LinearFunction::FromAngles({0.7});
  EXPECT_NEAR(f.weights()[0], std::cos(0.7), 1e-15);
  EXPECT_NEAR(f.weights()[1], std::sin(0.7), 1e-15);
}

TEST(LinearFunctionTest, ZeroWeightOnSomeAxesIsAllowed) {
  LinearFunction f({0.0, 1.0});
  const double row[2] = {100.0, 2.0};
  EXPECT_DOUBLE_EQ(f.Score(row), 2.0);
}

TEST(LinearFunctionDeathTest, RejectsEmptyNegativeAndAllZero) {
  EXPECT_DEATH({ LinearFunction f({}); (void)f; }, "empty weights");
  EXPECT_DEATH({ LinearFunction f({0.5, -0.1}); (void)f; },
               "negative weight");
  EXPECT_DEATH({ LinearFunction f({0.0, 0.0}); (void)f; },
               "all-zero weights");
}

TEST(OutranksTest, HigherScoreWins) {
  EXPECT_TRUE(Outranks(2.0, 5, 1.0, 1));
  EXPECT_FALSE(Outranks(1.0, 1, 2.0, 5));
}

TEST(OutranksTest, TiesBreakByLowerId) {
  EXPECT_TRUE(Outranks(1.0, 1, 1.0, 2));
  EXPECT_FALSE(Outranks(1.0, 2, 1.0, 1));
}

TEST(OutranksTest, IsAStrictTotalOrder) {
  // Irreflexive and asymmetric on a few samples.
  EXPECT_FALSE(Outranks(1.0, 3, 1.0, 3));
  for (double sa : {0.0, 1.0}) {
    for (double sb : {0.0, 1.0}) {
      for (int32_t a = 0; a < 3; ++a) {
        for (int32_t b = 0; b < 3; ++b) {
          if (a == b && sa == sb) continue;
          EXPECT_NE(Outranks(sa, a, sb, b), Outranks(sb, b, sa, a));
        }
      }
    }
  }
}

}  // namespace
}  // namespace topk
}  // namespace rrr
