#include "topk/threshold_algorithm.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "test_util.h"
#include "topk/topk.h"

namespace rrr {
namespace topk {
namespace {

TEST(ThresholdAlgorithmTest, PaperExampleMatchesNaive) {
  data::Dataset ds = testing::PaperFigure1Dataset();
  ThresholdAlgorithmIndex index(ds);
  for (double theta : testing::AngleGrid(50)) {
    LinearFunction f({std::cos(theta), std::sin(theta)});
    for (size_t k = 1; k <= 7; ++k) {
      EXPECT_EQ(index.TopK(f, k), TopK(ds, f, k))
          << "theta=" << theta << " k=" << k;
    }
  }
}

TEST(ThresholdAlgorithmTest, KZeroAndKBeyondN) {
  data::Dataset ds = testing::PaperFigure1Dataset();
  ThresholdAlgorithmIndex index(ds);
  LinearFunction f({0.5, 0.5});
  EXPECT_TRUE(index.TopK(f, 0).empty());
  EXPECT_EQ(index.TopK(f, 100).size(), 7u);
}

TEST(ThresholdAlgorithmTest, ZeroWeightAxesAreHandled) {
  // w = (0, 1): the x-list contributes nothing; TA must still terminate
  // and agree.
  const data::Dataset ds = data::GenerateUniform(50, 2, 3);
  ThresholdAlgorithmIndex index(ds);
  LinearFunction f({0.0, 1.0});
  EXPECT_EQ(index.TopK(f, 5), TopK(ds, f, 5));
}

TEST(ThresholdAlgorithmTest, DuplicateRowsKeepIdOrder)  {
  data::Dataset ds = testing::MakeDataset(
      {{0.5, 0.5}, {0.5, 0.5}, {0.9, 0.9}, {0.5, 0.5}});
  ThresholdAlgorithmIndex index(ds);
  LinearFunction f({1.0, 1.0});
  EXPECT_EQ(index.TopK(f, 3), (std::vector<int32_t>{2, 0, 1}));
}

class TaOracleTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TaOracleTest, AgreesWithNaiveTopKEverywhere) {
  const auto [seed, n, d] = GetParam();
  const data::Dataset ds = data::GenerateUniform(
      static_cast<size_t>(n), static_cast<size_t>(d),
      static_cast<uint64_t>(seed));
  ThresholdAlgorithmIndex index(ds);
  Rng rng(static_cast<uint64_t>(seed) + 99);
  for (int rep = 0; rep < 25; ++rep) {
    LinearFunction f(rng.UnitWeightVector(d));
    for (size_t k : {1u, 5u, 17u}) {
      ASSERT_EQ(index.TopK(f, k), TopK(ds, f, k))
          << "seed=" << seed << " rep=" << rep << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, TaOracleTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(30, 200, 800),
                       ::testing::Values(2, 4, 6)));

TEST(ThresholdAlgorithmTest, CorrelatedDataStopsEarly) {
  // On strongly correlated data the lists agree near the top, so TA should
  // touch far fewer than n*d entries.
  const size_t n = 5000;
  const data::Dataset ds = data::GenerateCorrelated(n, 3, 5, 0.95);
  ThresholdAlgorithmIndex index(ds);
  LinearFunction f({0.4, 0.3, 0.3});
  (void)index.TopK(f, 10);
  EXPECT_LT(index.last_scan_depth(), n * 3 / 4)
      << "TA degenerated to a full scan on correlated data";
}

TEST(ThresholdAlgorithmTest, ScanDepthNeverExceedsFullScan) {
  const data::Dataset ds = data::GenerateAnticorrelated(500, 3, 6);
  ThresholdAlgorithmIndex index(ds);
  LinearFunction f({0.2, 0.5, 0.3});
  (void)index.TopK(f, 20);
  EXPECT_LE(index.last_scan_depth(), 500u * 3u);
}

TEST(ThresholdAlgorithmTest, TopKSetIsSorted) {
  const data::Dataset ds = data::GenerateUniform(100, 3, 7);
  ThresholdAlgorithmIndex index(ds);
  LinearFunction f({0.3, 0.3, 0.4});
  const auto set = index.TopKSet(f, 10);
  EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
  EXPECT_EQ(set, TopKSet(ds, f, 10));
}

}  // namespace
}  // namespace topk
}  // namespace rrr
